package fairassign

import (
	"math/rand"
	"testing"
)

// resolveAssignment solves the given population from scratch for
// comparison with the workspace's repaired matching.
func resolveAssignment(t *testing.T, objects []Object, functions []Function) []Pair {
	t.Helper()
	s, err := NewSolver(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return res.Pairs
}

func pairKeySet(t *testing.T, pairs []Pair) map[[2]uint64]int {
	t.Helper()
	m := make(map[[2]uint64]int, len(pairs))
	for _, p := range pairs {
		m[[2]uint64{p.FunctionID, p.ObjectID}]++
	}
	return m
}

func sameAssignment(t *testing.T, label string, got, want []Pair) {
	t.Helper()
	g, w := pairKeySet(t, got), pairKeySet(t, want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for k, n := range w {
		if g[k] != n {
			t.Fatalf("%s: pair f%d-o%d count %d, want %d", label, k[0], k[1], g[k], n)
		}
	}
}

func TestWorkspaceLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objects := GenerateObjects(Independent, 120, 3, 1)
	functions := GenerateFunctions(20, 3, 2)

	ws, err := NewWorkspace(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	live := map[uint64]Object{}
	for _, o := range objects {
		live[o.ID] = o
	}
	liveFuncs := map[uint64]Function{}
	for _, f := range functions {
		liveFuncs[f.ID] = f
	}
	check := func(label string) {
		t.Helper()
		var objs []Object
		for _, o := range live {
			objs = append(objs, o)
		}
		var funcs []Function
		for _, f := range liveFuncs {
			funcs = append(funcs, f)
		}
		sameAssignment(t, label, ws.Assignment(), resolveAssignment(t, objs, funcs))
		if err := ws.Verify(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}
	check("initial")

	// A newcomer logs in.
	newF := GenerateFunctions(1, 3, 99)[0]
	newF.ID = 5000
	if err := ws.AddFunction(newF); err != nil {
		t.Fatal(err)
	}
	liveFuncs[newF.ID] = newF
	check("after function arrival")

	// An assigned object sells.
	sold := ws.Assignment()[0].ObjectID
	if err := ws.RemoveObject(sold); err != nil {
		t.Fatal(err)
	}
	delete(live, sold)
	check("after object departure")

	// Fresh supply is listed.
	newO := GenerateObjects(Correlated, 1, 3, 123)[0]
	newO.ID = 6000
	if err := ws.AddObject(newO); err != nil {
		t.Fatal(err)
	}
	live[newO.ID] = newO
	check("after object arrival")

	// A user logs out.
	var anyF uint64
	for id := range liveFuncs {
		anyF = id
		break
	}
	if err := ws.RemoveFunction(anyF); err != nil {
		t.Fatal(err)
	}
	delete(liveFuncs, anyF)
	check("after function departure")

	// A burst of random churn.
	nextID := uint64(9000)
	for i := 0; i < 20; i++ {
		switch rng.Intn(4) {
		case 0:
			nextID++
			o := GenerateObjects(AntiCorrelated, 1, 3, int64(nextID))[0]
			o.ID = nextID
			if err := ws.AddObject(o); err != nil {
				t.Fatal(err)
			}
			live[o.ID] = o
		case 1:
			nextID++
			f := GenerateFunctions(1, 3, int64(nextID))[0]
			f.ID = nextID
			if err := ws.AddFunction(f); err != nil {
				t.Fatal(err)
			}
			liveFuncs[f.ID] = f
		case 2:
			for id := range live {
				if len(live) > 2 {
					if err := ws.RemoveObject(id); err != nil {
						t.Fatal(err)
					}
					delete(live, id)
				}
				break
			}
		default:
			for id := range liveFuncs {
				if len(liveFuncs) > 1 {
					if err := ws.RemoveFunction(id); err != nil {
						t.Fatal(err)
					}
					delete(liveFuncs, id)
				}
				break
			}
		}
	}
	check("after churn")

	st := ws.Stats()
	if st.Mutations != 24 {
		t.Fatalf("mutations = %d, want 24", st.Mutations)
	}
	if st.Resolves != 1 {
		t.Fatalf("resolves = %d — mutations must repair, not re-solve", st.Resolves)
	}
	if st.Objects != len(live) || st.Functions != len(liveFuncs) {
		t.Fatalf("stats population %d/%d, want %d/%d", st.Objects, st.Functions, len(live), len(liveFuncs))
	}
}

func TestWorkspaceNormalizesLikeSolver(t *testing.T) {
	objects := GenerateObjects(Independent, 50, 2, 3)
	ws, err := NewWorkspace(objects, []Function{{ID: 1, Weights: []float64{2, 6}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	// Un-normalized arrival: same weights scaled; must behave like the
	// normalized {0.25, 0.75}.
	if err := ws.AddFunction(Function{ID: 2, Weights: []float64{1, 3}}); err != nil {
		t.Fatal(err)
	}
	asg := ws.Assignment()
	if len(asg) != 2 {
		t.Fatalf("assignment has %d pairs, want 2", len(asg))
	}
	sameAssignment(t, "normalized arrivals", asg,
		resolveAssignment(t, objects, []Function{
			{ID: 1, Weights: []float64{2, 6}},
			{ID: 2, Weights: []float64{1, 3}},
		}))
	if err := ws.AddFunction(Function{ID: 3, Weights: []float64{0, 0}}); err == nil {
		t.Fatal("zero-weight function accepted")
	}
}
