// Package fairassign computes fair one-to-one assignments between user
// preference functions and multidimensional objects, implementing the
// skyline-based stable-matching algorithm of "A Fair Assignment Algorithm
// for Multiple Preference Queries" (U, Mamoulis, Mouratidis — PVLDB 2(1),
// 2009) together with the paper's baselines and problem variants.
//
// Model. Each object has D attribute values under a "larger is better"
// convention; each user expresses a monotone preference function with
// normalized weights (Σα = 1) — linear by default (f(o) = Σ α_i·o_i, the
// paper's model), or any pluggable monotone family via Function.Scorer:
// order-weighted averages (OWA, subsuming the egalitarian Minimax, Best,
// and Median), Chebyshev weighted max, and Lp norms. When many users query
// simultaneously, an object can only be granted to one of them, and the
// system must produce the stable matching: iteratively, the
// (function, object) pair with the globally highest score is assigned and
// removed. Capacities (identical instances of objects or identical users)
// and priorities (γ multipliers, e.g. seniority classes) are supported.
//
// Quick start:
//
//	objects := fairassign.GenerateObjects(fairassign.AntiCorrelated, 10000, 4, 1)
//	functions := fairassign.GenerateFunctions(500, 4, 2)
//	solver, err := fairassign.NewSolver(objects, functions, fairassign.Options{})
//	if err != nil { ... }
//	result, err := solver.Solve()
//	for _, pair := range result.Pairs { ... }
//
// The default algorithm is SB (the paper's contribution). The baselines
// (BruteForce, Chain), the disk-resident-function variant (SBAlt) and the
// prioritized two-skyline variant (TwoSkylines) are selectable through
// Options.Algorithm for comparison studies; all produce the identical
// stable matching and differ only in cost.
//
// Concurrency. Options.Workers parallelizes the search phases inside a
// single solve (byte-identical output to the sequential run — see the
// Workers field), and SolveBatch runs many independent problems
// concurrently for multi-tenant serving. The two compose: a batch of B
// problems at Parallelism P with W workers each uses up to P·W
// goroutines.
//
// Dynamic workloads. NewWorkspace is the long-lived incremental form of
// the solver: it builds the index and search state once and then
// repairs the stable matching in place as objects and functions arrive
// or depart (AddObject, RemoveObject, AddFunction, RemoveFunction) —
// orders of magnitude cheaper than re-solving, with the identical
// matching. A Workspace is safe for concurrent use under a
// single-writer / many-readers contract: mutations are serialized
// internally, and Workspace.Snapshot returns a View — an immutable,
// epoch-pinned observation of the matching, population, and object
// index that stays consistent (byte-identical output) no matter how
// the workspace mutates afterwards. See the Workspace and View types.
package fairassign

import (
	"fmt"
	"time"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/geom"
)

// Object is a database object: an identifier, D attribute values (larger
// is better), and an optional capacity (number of identical instances;
// 0 means 1).
type Object struct {
	ID         uint64
	Attributes []float64
	Capacity   int
}

// Function is a user preference: an identifier, D non-negative weights,
// an optional priority Gamma (0 means 1), an optional capacity, and an
// optional Scorer selecting the preference family the weights
// parameterize. Weights are normalized to sum to 1 by NewSolver unless
// they already do (within WeightNormalizationTolerance), so that no
// user is favored (Section 3 of the paper); Gamma is the sanctioned way
// to express priority.
//
// A nil Scorer means the paper's linear model f(o) = Σ wᵢ·oᵢ. Setting
// Scorer (OWA, Minimax, Best, Median, Chebyshev, Lp — see the Scorer
// type) reinterprets the weights under that monotone family; every
// algorithm, the Workspace, and the query helpers accept any mix of
// families in one problem.
type Function struct {
	ID       uint64
	Weights  []float64
	Gamma    float64
	Capacity int
	Scorer   *Scorer
}

// Pair is one unit of assignment.
type Pair struct {
	FunctionID uint64
	ObjectID   uint64
	Score      float64
}

// Stats reports the cost of a Solve call using the paper's metrics.
type Stats struct {
	IOAccesses      int64         // simulated-disk page accesses (buffer misses)
	CPUTime         time.Duration // wall-clock compute time
	PeakMemoryBytes int64         // high-water mark of search structures
	Loops           int64         // algorithm outer iterations
	TopKSearches    int64         // top-1 / TA searches issued
}

// Result is the output of Solve.
type Result struct {
	Pairs []Pair
	Stats Stats
}

// Algorithm selects the assignment algorithm.
type Algorithm string

// Available algorithms. All produce the same stable matching.
const (
	// SB is the paper's skyline-based algorithm (Algorithm 3): the
	// recommended default.
	SB Algorithm = "sb"
	// BruteForce keeps one resumable top-1 search per function
	// (Section 4.1 baseline).
	BruteForce Algorithm = "bruteforce"
	// Chain adapts the spatial Chain algorithm (Section 2.1 baseline).
	Chain Algorithm = "chain"
	// SBAlt batches best-pair search over disk-resident coefficient
	// lists (Section 7.6) — for function sets too large for memory.
	SBAlt Algorithm = "sbalt"
	// TwoSkylines maintains a second skyline over the functions
	// (Section 6.2) — fastest for prioritized assignments.
	TwoSkylines Algorithm = "twoskylines"
)

// Options tunes a Solver.
type Options struct {
	// Algorithm to run (default SB).
	Algorithm Algorithm
	// PageSize of the simulated disk in bytes (default 4096).
	PageSize int
	// BufferFraction sizes the LRU buffer as a fraction of the object
	// index (default 0.02; negative disables buffering).
	BufferFraction float64
	// OmegaFraction is ω, the bound on resumable-search queues as a
	// fraction of |F| (default 0.025).
	OmegaFraction float64
	// NormalizeWeights rescales every function's weights to sum to 1
	// (default true via zero value: set SkipNormalization to opt out).
	SkipNormalization bool
	// Workers sets the number of goroutines used inside each solve for
	// the per-object search phases of the skyline-based algorithms (SB,
	// TwoSkylines). 0 and 1 run sequentially; n > 1 uses n workers;
	// negative uses one worker per available CPU. Determinism guarantee:
	// the emitted matching — pair set, emission order, and every score
	// bit — is identical for every Workers value; only wall-clock time
	// changes. Algorithms that do not use the engine (BruteForce, Chain,
	// SBAlt) ignore the setting.
	Workers int
	// BuildWorkers bounds the parallel STR bulk-load that constructs
	// each index (the object R-tree and Chain's function weight tree).
	// 0 (the default) and negative values use all cores; 1 restores the
	// fully sequential build; n > 1 uses n workers. Unlike Workers, the
	// knob affects index construction only, and the built tree is
	// byte-identical — same page images, allocation order, and physical
	// I/O counts — at every setting, so it is purely a build wall-clock
	// control.
	BuildWorkers int
	// DisableNodeCache turns off the decoded-node cache tier of the
	// object index's buffer pool, re-parsing page bytes on every node
	// access. Results and I/O counts are identical either way; the knob
	// exists so the benchmark pipeline can measure the cache's effect.
	DisableNodeCache bool
	// Durable enables write-ahead logging on a Workspace: every Apply
	// batch (and every single mutation) is encoded, checksummed, and
	// fsynced into WALDir before it is acknowledged, and an initial
	// snapshot is written at construction, so a crash at any moment
	// recovers the exact acknowledged state through OpenWorkspace.
	// Requires WALDir; ignored by Solver. See the package's durability
	// section in the README for file formats and recovery semantics.
	Durable bool
	// WALDir is the durability directory holding snapshot files and WAL
	// segments. Setting it without Durable enables snapshot-only
	// warm-start mode: SaveSnapshot persists restore points, but
	// mutations between snapshots are not logged and a crash rewinds to
	// the last snapshot.
	WALDir string
	// WALNoSync skips the per-commit fsync: records are still written
	// and checksummed, but a crash may lose acknowledged batches
	// (recovery still lands on a consistent earlier state). A
	// benchmarking knob for isolating the fsync cost; leave false in
	// production.
	WALNoSync bool
}

// assignConfig maps public options to the internal engine configuration
// — the single site, so Solver, NewWorkspace, and OpenWorkspace cannot
// drift.
func (o Options) assignConfig() assign.Config {
	return assign.Config{
		PageSize:         o.PageSize,
		BufferFrac:       o.BufferFraction,
		OmegaFrac:        o.OmegaFraction,
		Workers:          o.Workers,
		BuildWorkers:     o.BuildWorkers,
		DisableNodeCache: o.DisableNodeCache,
		Durable:          o.Durable,
		WALDir:           o.WALDir,
		WALNoSync:        o.WALNoSync,
	}
}

// Solver holds a validated problem instance.
type Solver struct {
	problem *assign.Problem
	opts    Options
	run     func(*assign.Problem, assign.Config) (*assign.Result, error)
}

// NewSolver validates the inputs and prepares a solver. All objects and
// functions must share one dimensionality; IDs must be unique per side.
func NewSolver(objects []Object, functions []Function, opts Options) (*Solver, error) {
	if len(objects) == 0 && len(functions) == 0 {
		return nil, fmt.Errorf("fairassign: nothing to assign")
	}
	dims := problemDims(objects, functions)
	if dims == 0 {
		return nil, fmt.Errorf("fairassign: cannot derive dimensionality (no objects and no function carries explicit weights)")
	}
	p := &assign.Problem{Dims: dims}
	for _, o := range objects {
		p.Objects = append(p.Objects, assign.Object{
			ID:       o.ID,
			Point:    geom.Point(o.Attributes).Clone(),
			Capacity: o.Capacity,
		})
	}
	for _, f := range functions {
		af, err := resolveFunction(f, opts, dims)
		if err != nil {
			return nil, err
		}
		p.Functions = append(p.Functions, af)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	run, err := runnerFor(opts.Algorithm)
	if err != nil {
		return nil, err
	}
	return &Solver{problem: p, opts: opts, run: run}, nil
}

func runnerFor(a Algorithm) (func(*assign.Problem, assign.Config) (*assign.Result, error), error) {
	switch a {
	case "", SB:
		return assign.SB, nil
	case BruteForce:
		return assign.BruteForce, nil
	case Chain:
		return assign.Chain, nil
	case SBAlt:
		return assign.SBAlt, nil
	case TwoSkylines:
		return assign.SBTwoSkylines, nil
	default:
		return nil, fmt.Errorf("fairassign: unknown algorithm %q", a)
	}
}

// Dims returns the problem dimensionality.
func (s *Solver) Dims() int { return s.problem.Dims }

// Solve computes the stable assignment.
func (s *Solver) Solve() (*Result, error) {
	cfg := s.opts.assignConfig()
	// Solvers are one-shot: durability is a Workspace concern.
	cfg.Durable, cfg.WALDir, cfg.WALNoSync = false, "", false
	r, err := s.run(s.problem, cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Stats: Stats{
			IOAccesses:      r.Stats.IO.Accesses(),
			CPUTime:         r.Stats.CPUTime,
			PeakMemoryBytes: r.Stats.PeakMem,
			Loops:           r.Stats.Loops,
			TopKSearches:    r.Stats.TopKRuns,
		},
	}
	for _, pr := range r.Pairs {
		out.Pairs = append(out.Pairs, Pair{FunctionID: pr.FuncID, ObjectID: pr.ObjectID, Score: pr.Score})
	}
	return out, nil
}

// Verify checks that pairs form a stable matching for this solver's
// problem (Definition 1); useful in tests and audits.
func (s *Solver) Verify(pairs []Pair) error {
	conv := make([]assign.Pair, len(pairs))
	for i, pr := range pairs {
		conv[i] = assign.Pair{FuncID: pr.FunctionID, ObjectID: pr.ObjectID, Score: pr.Score}
	}
	return assign.IsStable(s.problem, conv)
}

// Distribution names a synthetic object distribution.
type Distribution string

// Available distributions (Section 7 workloads).
const (
	Independent    Distribution = "independent"
	Correlated     Distribution = "correlated"
	AntiCorrelated Distribution = "anti"
	ZillowLike     Distribution = "zillow"
	NBALike        Distribution = "nba"
)

// GenerateObjects produces n synthetic objects of the given distribution
// in [0,1]^dims (ZillowLike and NBALike are always 5-dimensional).
func GenerateObjects(kind Distribution, n, dims int, seed int64) []Object {
	var objs []assign.Object
	switch kind {
	case Correlated:
		objs = datagen.Objects(datagen.Correlated, n, dims, seed)
	case AntiCorrelated:
		objs = datagen.Objects(datagen.AntiCorrelated, n, dims, seed)
	case ZillowLike:
		objs = datagen.ZillowLike(n, seed)
	case NBALike:
		objs = datagen.NBALikeN(n, seed)
	default:
		objs = datagen.Objects(datagen.Independent, n, dims, seed)
	}
	out := make([]Object, len(objs))
	for i, o := range objs {
		out[i] = Object{ID: o.ID, Attributes: o.Point, Capacity: o.Capacity}
	}
	return out
}

// GenerateFunctions produces n normalized preference functions with
// independently drawn weights.
func GenerateFunctions(n, dims int, seed int64) []Function {
	funcs := datagen.Functions(n, dims, seed)
	out := make([]Function, len(funcs))
	for i, f := range funcs {
		out[i] = Function{ID: f.ID, Weights: f.Weights, Gamma: f.Gamma, Capacity: f.Capacity}
	}
	return out
}
