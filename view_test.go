package fairassign

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func snapshotTestWorkspace(t *testing.T) *Workspace {
	t.Helper()
	objects := GenerateObjects(Independent, 200, 3, 11)
	functions := GenerateFunctions(20, 3, 13)
	ws, err := NewWorkspace(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func samePublicPairs(t *testing.T, label string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].FunctionID != want[i].FunctionID || got[i].ObjectID != want[i].ObjectID ||
			math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// A public View is frozen across mutations; a fresh snapshot and the
// live accessors agree; Verify and TopK answer from the pinned epoch.
func TestPublicViewSnapshotIsolation(t *testing.T) {
	ws := snapshotTestWorkspace(t)
	defer ws.Close()

	view, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	before := view.Assignment()
	beforeStats := view.Stats()
	pref := Function{ID: 999, Weights: []float64{2, 1, 1}}
	beforeTop, err := view.TopK(pref, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate: retire the first two assigned objects, add replacements,
	// rotate a candidate.
	for i, p := range before[:2] {
		if err := ws.RemoveObject(p.ObjectID); err != nil {
			t.Fatal(err)
		}
		if err := ws.AddObject(Object{ID: 5_000 + uint64(i), Attributes: []float64{0.9, 0.8, 0.7}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.RemoveFunction(before[0].FunctionID); err != nil {
		t.Fatal(err)
	}

	samePublicPairs(t, "pinned view after mutations", view.Assignment(), before)
	if view.Stats() != beforeStats {
		t.Fatalf("pinned view stats drifted")
	}
	afterTop, err := view.TopK(pref, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(afterTop) != len(beforeTop) {
		t.Fatalf("pinned TopK drifted in size")
	}
	for i := range afterTop {
		if afterTop[i].Object.ID != beforeTop[i].Object.ID ||
			math.Float64bits(afterTop[i].Score) != math.Float64bits(beforeTop[i].Score) {
			t.Fatalf("pinned TopK[%d] drifted: %+v vs %+v", i, afterTop[i], beforeTop[i])
		}
	}
	if err := view.Verify(); err != nil {
		t.Fatalf("pinned view Verify: %v", err)
	}

	fresh, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Epoch() <= view.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", view.Epoch(), fresh.Epoch())
	}
	samePublicPairs(t, "fresh view vs live", fresh.Assignment(), ws.Assignment())
	if err := fresh.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := fresh.AssignmentOf(before[1].FunctionID); len(got) == 0 {
		t.Fatalf("fresh view lost function %d", before[1].FunctionID)
	}
}

// Public typed errors are errors.Is-able through the API surface.
func TestPublicWorkspaceTypedErrors(t *testing.T) {
	ws := snapshotTestWorkspace(t)
	a := ws.Assignment()

	if err := ws.AddObject(Object{ID: a[0].ObjectID, Attributes: []float64{1, 2, 3}}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate AddObject: %v", err)
	}
	if err := ws.RemoveObject(31_337_000); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown RemoveObject: %v", err)
	}
	view, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ws.Close()
	if err := ws.AddObject(Object{ID: 1, Attributes: []float64{1, 2, 3}}); !errors.Is(err, ErrWorkspaceClosed) {
		t.Fatalf("AddObject after Close: %v", err)
	}
	if _, err := ws.Snapshot(); !errors.Is(err, ErrWorkspaceClosed) {
		t.Fatalf("Snapshot after Close: %v", err)
	}
	// The pre-close view still answers, then fails typed after its own
	// Close.
	if len(view.Assignment()) == 0 {
		t.Fatal("pre-close view lost its assignment")
	}
	view.Close()
	if err := view.Verify(); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("Verify on closed view: %v", err)
	}
	if _, err := view.TopK(Function{ID: 1, Weights: []float64{1, 1, 1}}, 3); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("TopK on closed view: %v", err)
	}
}

// Concurrent smoke through the public API: one mutating goroutine, many
// snapshot readers (exercised under -race by CI).
func TestPublicWorkspaceConcurrentReaders(t *testing.T) {
	ws := snapshotTestWorkspace(t)
	defer ws.Close()

	var done atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				v, err := ws.Snapshot()
				if err != nil {
					t.Errorf("Snapshot: %v", err)
					return
				}
				st := v.Stats()
				pairs := v.Assignment()
				if len(pairs) != st.AssignedUnits {
					t.Errorf("view inconsistent: %d pairs, stats say %d", len(pairs), st.AssignedUnits)
				}
				v.Close()
			}
		}()
	}
	for i := 0; i < 60; i++ {
		if err := ws.AddObject(Object{ID: 10_000 + uint64(i), Attributes: []float64{0.5, 0.5, 0.5}}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := ws.RemoveObject(10_000 + uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	done.Store(true)
	wg.Wait()
}
