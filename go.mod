module fairassign

go 1.24
