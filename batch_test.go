package fairassign

import (
	"math"
	"testing"
)

func batchItems(n int) []BatchItem {
	items := make([]BatchItem, n)
	for i := range items {
		seed := int64(100 + i)
		kind := []Distribution{Independent, Correlated, AntiCorrelated}[i%3]
		items[i] = BatchItem{
			Objects:   GenerateObjects(kind, 150+10*i, 3, seed),
			Functions: GenerateFunctions(20+i, 3, seed+1),
		}
	}
	return items
}

// TestSolveBatchMatchesIndividualSolves checks that concurrent batch
// solving returns, per item, exactly what a standalone Solve returns.
func TestSolveBatchMatchesIndividualSolves(t *testing.T) {
	items := batchItems(9)
	got := SolveBatch(items, BatchOptions{Parallelism: 4})
	if len(got) != len(items) {
		t.Fatalf("got %d results, want %d", len(got), len(items))
	}
	for i, item := range items {
		if got[i].Err != nil {
			t.Fatalf("item %d: %v", i, got[i].Err)
		}
		solver, err := NewSolver(item.Objects, item.Functions, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := solver.Solve()
		if err != nil {
			t.Fatal(err)
		}
		g, w := got[i].Result.Pairs, want.Pairs
		if len(g) != len(w) {
			t.Fatalf("item %d: %d pairs, want %d", i, len(g), len(w))
		}
		for j := range g {
			if g[j] != w[j] || math.IsNaN(g[j].Score) {
				t.Fatalf("item %d pair %d: %+v, want %+v", i, j, g[j], w[j])
			}
		}
	}
}

// TestSolveBatchIsolatesErrors checks that one invalid tenant reports its
// error in its own slot and the rest of the batch still solves.
func TestSolveBatchIsolatesErrors(t *testing.T) {
	items := batchItems(3)
	items[1] = BatchItem{} // nothing to assign: NewSolver must fail
	got := SolveBatch(items, BatchOptions{Parallelism: 3})
	if got[1].Err == nil {
		t.Fatal("empty item should report an error")
	}
	if got[1].Result != nil {
		t.Fatal("failed item should carry no result")
	}
	for _, i := range []int{0, 2} {
		if got[i].Err != nil {
			t.Fatalf("item %d: %v", i, got[i].Err)
		}
		if len(got[i].Result.Pairs) == 0 {
			t.Fatalf("item %d: no pairs", i)
		}
	}
}

// TestSolveBatchPerItemOptions checks option override and inheritance.
func TestSolveBatchPerItemOptions(t *testing.T) {
	items := batchItems(2)
	items[1].Options = &Options{Algorithm: BruteForce}
	got := SolveBatch(items, BatchOptions{
		Parallelism: 2,
		Defaults:    Options{Algorithm: SB, Workers: 2},
	})
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	// Both algorithms compute the same stable matching, so contents agree.
	if len(got[0].Result.Pairs) == 0 || len(got[1].Result.Pairs) == 0 {
		t.Fatal("empty results")
	}
}

// TestSolveBatchEmptyAndSequential covers the edge paths.
func TestSolveBatchEmptyAndSequential(t *testing.T) {
	if out := SolveBatch(nil, BatchOptions{}); len(out) != 0 {
		t.Fatalf("nil batch returned %d results", len(out))
	}
	items := batchItems(2)
	out := SolveBatch(items, BatchOptions{Parallelism: 1})
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
}
