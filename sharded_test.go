package fairassign

import (
	"errors"
	"math"
	"testing"
)

func shardedTwin(t *testing.T, shards int) (*ShardedWorkspace, *Workspace) {
	t.Helper()
	objects := GenerateObjects(Independent, 150, 3, 21)
	functions := GenerateFunctions(12, 3, 22)
	sw, err := NewShardedWorkspace(objects, functions, ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sw.Close)
	ws, err := NewWorkspace(objects, functions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ws.Close)
	return sw, ws
}

// TestShardedWorkspaceMatchesWorkspace drives identical mutations into
// a 4-shard workspace and its single-workspace twin and requires
// byte-identical assignments, invariant stats, and identical TopK
// output — the public-API face of the shard-count invariance the
// conformance sweep asserts exhaustively.
func TestShardedWorkspaceMatchesWorkspace(t *testing.T) {
	sw, ws := shardedTwin(t, 4)
	if sw.Shards() != 4 {
		t.Fatalf("Shards() = %d", sw.Shards())
	}
	if p := sw.Partition(); p != "spatial" {
		t.Fatalf("Partition() = %q, want spatial for a continuous population", p)
	}

	muts := []Mutation{
		AddObjectOp(Object{ID: 5000, Attributes: []float64{0.9, 0.2, 0.4}}),
		AddFunctionOp(Function{ID: 5000, Weights: []float64{1, 2, 3}}),
		RemoveObjectOp(7),
		AddObjectOp(Object{ID: 5001, Attributes: []float64{0.05, 0.95, 0.5}, Capacity: 2}),
		RemoveFunctionOp(3),
	}
	for i, m := range muts {
		if err := sw.Apply([]Mutation{m}); err != nil {
			t.Fatalf("sharded mutation %d: %v", i, err)
		}
		if err := ws.Apply([]Mutation{m}); err != nil {
			t.Fatalf("twin mutation %d: %v", i, err)
		}
		got, want := sw.Assignment(), ws.Assignment()
		if len(got) != len(want) {
			t.Fatalf("after mutation %d: %d pairs, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].FunctionID != want[j].FunctionID || got[j].ObjectID != want[j].ObjectID ||
				math.Float64bits(got[j].Score) != math.Float64bits(want[j].Score) {
				t.Fatalf("after mutation %d: pair %d differs: %+v vs %+v", i, j, got[j], want[j])
			}
		}
	}
	if err := sw.Verify(); err != nil {
		t.Fatal(err)
	}
	ss, ts := sw.Stats(), ws.Stats()
	if ss.Objects != ts.Objects || ss.Functions != ts.Functions || ss.AssignedUnits != ts.AssignedUnits {
		t.Fatalf("invariant stats differ: sharded %+v vs %+v", ss, ts)
	}
	if len(ss.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries", len(ss.PerShard))
	}

	// TopK through the ceiling merge equals the single-tree search.
	sv, err := sw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	wv, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer wv.Close()
	pref := Function{Weights: []float64{0.2, 0.5, 0.3}}
	got, err := sv.TopK(pref, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wv.TopK(pref, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("TopK: %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Object.ID != want[i].Object.ID || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("TopK result %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestShardedQueueRouting checks the per-shard lanes: object mutations
// land on their owning shard's lane, commits coalesce, and the result
// matches a direct Apply twin.
func TestShardedQueueRouting(t *testing.T) {
	sw, ws := shardedTwin(t, 3)
	// Routing is observable before enqueueing.
	add := AddObjectOp(Object{ID: 9000, Attributes: []float64{0.5, 0.5, 0.5}})
	if sh := sw.RouteMutation(add); sh < 0 || sh >= 3 {
		t.Fatalf("RouteMutation(add) = %d", sh)
	}
	if sh := sw.RouteMutation(AddFunctionOp(Function{ID: 9000, Weights: []float64{1, 1, 1}})); sh != -1 {
		t.Fatalf("function op routed to shard %d, want -1 (global lane)", sh)
	}

	q := NewShardedQueue(sw, 16)
	muts := []Mutation{
		add,
		AddObjectOp(Object{ID: 9001, Attributes: []float64{0.9, 0.1, 0.2}}),
		RemoveObjectOp(5),
		AddFunctionOp(Function{ID: 9000, Weights: []float64{1, 1, 1}}),
		RemoveObjectOp(11),
	}
	acks := make([]<-chan error, len(muts))
	for i, m := range muts {
		acks[i] = q.Enqueue(m)
	}
	for i, ch := range acks {
		if err := <-ch; err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	q.Close()
	if err := ws.Apply(muts); err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, "sharded queue vs direct", sw.Assignment(), ws.Assignment())
	qs := q.Stats()
	if qs.Mutations != int64(len(muts)) {
		t.Fatalf("queue stats: %+v, want %d mutations", qs, len(muts))
	}
	// RemoveObject of a routed object reports its actual owner.
	if sh, want := sw.RouteMutation(RemoveObjectOp(9001)), sw.RouteMutation(AddObjectOp(Object{ID: 9001, Attributes: []float64{0.9, 0.1, 0.2}})); sh != want {
		t.Fatalf("remove routed to %d, owner is %d", sh, want)
	}
}

// TestShardedWorkspaceRejectsDurability pins the public error for the
// unsupported durable configuration.
func TestShardedWorkspaceRejectsDurability(t *testing.T) {
	objects := GenerateObjects(Independent, 40, 2, 31)
	functions := GenerateFunctions(6, 2, 32)
	opts := ShardedOptions{Shards: 2}
	opts.Durable = true
	if _, err := NewShardedWorkspace(objects, functions, opts); !errors.Is(err, ErrDurabilityUnsupported) {
		t.Fatalf("Durable: err = %v, want ErrDurabilityUnsupported", err)
	}
	opts = ShardedOptions{Shards: 2}
	opts.WALDir = t.TempDir()
	if _, err := NewShardedWorkspace(objects, functions, opts); !errors.Is(err, ErrDurabilityUnsupported) {
		t.Fatalf("WALDir: err = %v, want ErrDurabilityUnsupported", err)
	}
}
