package snapshot

import (
	"errors"
	"path"
	"reflect"
	"testing"

	"fairassign/internal/vfs"
)

func sampleData() *Data {
	return &Data{
		Epoch: 12,
		Dims:  2,
		Counters: Counters{
			Mutations: 3, Commits: 12, ChainSteps: 7, Searches: 40, Resolves: 5,
		},
		Objects: []ObjectRec{
			{ID: 1, Capacity: 1, Point: []float64{0.1, 0.9}},
			{ID: 2, Capacity: 3, Point: []float64{0.5, 0.5}},
		},
		Functions: []FunctionRec{
			{ID: 10, Capacity: 1, Gamma: 1.5, FamKind: 0, FamP: 0, Weights: []float64{0.3, 0.7}},
			{ID: 11, Capacity: 2, Gamma: 0, FamKind: 3, FamP: 2, Weights: []float64{0.6, 0.4}},
		},
		Pairs:    []Pair{{FuncID: 10, ObjID: 1, Score: 0.66}, {FuncID: 11, ObjID: 2, Score: 0.5}},
		ObjCaps:  []CapEntry{{ID: 1, Remaining: 0}, {ID: 2, Remaining: 2}},
		FuncCaps: []CapEntry{{ID: 10, Remaining: 0}, {ID: 11, Remaining: 1}},
		Avail:    []uint64{2},
		ObjStore: StoreImage{
			PageSize: 256, Next: 3, Root: 2, Height: 1, Size: 2,
			Pages: []PageImage{{ID: 0, Data: []byte{1, 2, 3}}, {ID: 2, Data: []byte{9}}},
		},
		FuncStore: StoreImage{
			PageSize: 256, Next: 1, Root: 0, Height: 1, Size: 1,
			Pages: []PageImage{{ID: 0, Data: []byte{4, 5}}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := sampleData()
	got, err := Decode(Encode(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("roundtrip mismatch:\n want %+v\n got  %+v", d, got)
	}
}

func TestDecodeCorruptionDetected(t *testing.T) {
	buf := Encode(sampleData())
	// Every single-bit flip anywhere in the file must be rejected with a
	// typed error (header crc, section crc, or structural check) — and
	// never panic.
	for bit := 0; bit < len(buf)*8; bit += 5 {
		mut := make([]byte, len(buf))
		copy(mut, buf)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := Decode(mut); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("bit %d: err = %v, want ErrBadSnapshot", bit, err)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf := Encode(sampleData())
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("cut %d: err = %v, want ErrBadSnapshot", cut, err)
		}
	}
	// Trailing garbage is also rejected.
	if _, err := Decode(append(append([]byte{}, buf...), 0)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("trailing byte accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("dur")
	d := sampleData()
	name, err := WriteFile(fs, "dur", d)
	if err != nil {
		t.Fatal(err)
	}
	if name != FileName(d.Epoch) {
		t.Fatalf("name = %s", name)
	}
	got, err := ReadFile(fs, "dur", d.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatal("file roundtrip mismatch")
	}
	epochs, err := List(fs, "dur")
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || epochs[0] != 12 {
		t.Fatalf("epochs = %v", epochs)
	}
}

func TestReadFileEpochNameMismatch(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("dur")
	d := sampleData()
	if _, err := WriteFile(fs, "dur", d); err != nil {
		t.Fatal(err)
	}
	// A file renamed to the wrong epoch must not be trusted.
	raw, _ := fs.ReadAll(path.Join("dur", FileName(12)))
	fs.WriteAll(path.Join("dur", FileName(13)), raw)
	if _, err := ReadFile(fs, "dur", 13); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("epoch mismatch: err = %v", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	recs := []MutationRec{
		{Kind: BatchAddObject, Object: ObjectRec{ID: 5, Capacity: 2, Point: []float64{1, 2, 3}}},
		{Kind: BatchRemoveObject, ID: 4},
		{Kind: BatchAddFunction, Function: FunctionRec{ID: 9, Capacity: 1, Gamma: 2, FamKind: 1, FamP: 0, Weights: []float64{0.5, 0.25, 0.25}}},
		{Kind: BatchRemoveFunction, ID: 9},
	}
	got, err := DecodeBatch(EncodeBatch(recs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatalf("batch roundtrip mismatch:\n want %+v\n got  %+v", recs, got)
	}
}

func TestBatchCorruptionTyped(t *testing.T) {
	buf := EncodeBatch([]MutationRec{
		{Kind: BatchAddObject, Object: ObjectRec{ID: 1, Point: []float64{0.5}}},
		{Kind: BatchRemoveFunction, ID: 2},
	})
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeBatch(buf[:cut]); !errors.Is(err, ErrBadBatch) {
			t.Fatalf("cut %d: err = %v, want ErrBadBatch", cut, err)
		}
	}
	for bit := 0; bit < len(buf)*8; bit++ {
		mut := make([]byte, len(buf))
		copy(mut, buf)
		mut[bit/8] ^= 1 << (bit % 8)
		if out, err := DecodeBatch(mut); err != nil && !errors.Is(err, ErrBadBatch) {
			t.Fatalf("bit %d: err = %v, want ErrBadBatch", bit, err)
		} else {
			_ = out // batches have no checksum of their own (the WAL record
			// covers them); a flip may decode to different values, but it
			// must never panic or return an untyped error.
		}
	}
}

func TestDecodeHugeCountsRejected(t *testing.T) {
	// A forged section claiming 2^32-ish element counts must be rejected
	// by plausibility checks before any allocation (OOM safety), not
	// after attempting to allocate.
	d := sampleData()
	buf := Encode(d)
	// Decode must handle arbitrary prefixes of valid data plus garbage
	// without allocating absurd amounts; exercised more deeply by the
	// fuzz targets — this is the deterministic smoke.
	garbage := make([]byte, 64)
	for i := range garbage {
		garbage[i] = 0xFF
	}
	if _, err := Decode(garbage); !errors.Is(err, ErrBadSnapshot) {
		t.Fatal("garbage accepted")
	}
	if _, err := Decode(append(buf[:20:20], garbage...)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatal("mixed garbage accepted")
	}
}
