package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotDecode drives the snapshot decoder with arbitrary bytes.
// The decoder guards every recovery path, so the contract is absolute:
// no panic, no unbounded allocation, and every rejection is a typed
// ErrBadSnapshot. Anything it accepts must round-trip stably through
// the canonical encoding.
func FuzzSnapshotDecode(f *testing.F) {
	valid := Encode(sampleData())
	f.Add(valid)
	f.Add(valid[:headerSize])       // header only, no sections
	f.Add(valid[:len(valid)/2])     // truncated mid-section
	f.Add(append(valid, 0))         // trailing garbage
	f.Add([]byte{})                 // empty
	f.Add([]byte("FASNAP01"))       // magic alone
	f.Add(bytes.Repeat(valid, 2))   // doubled file
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+9] ^= 0x40 // corrupt a section header byte
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input: the canonical re-encoding must decode cleanly
		// and be a fixed point.
		b1 := Encode(d)
		d2, err := Decode(b1)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !bytes.Equal(Encode(d2), b1) {
			t.Fatal("canonical encoding is not stable")
		}
	})
}

// FuzzBatchDecode drives the WAL batch payload decoder. The WAL record
// checksum normally guards these bytes, but replay must stay safe even
// against a log written by a diverged or hostile process: typed
// ErrBadBatch on rejection, allocations bounded by the input, no panic.
func FuzzBatchDecode(f *testing.F) {
	sample := []MutationRec{
		{Kind: BatchAddObject, Object: ObjectRec{ID: 7, Capacity: 2, Point: []float64{0.5, 0.25, 0.125}}},
		{Kind: BatchAddFunction, Function: FunctionRec{ID: 9, Capacity: 1, Gamma: 0.5, FamKind: 1, FamP: 2, Weights: []float64{0.5, 0.5}}},
		{Kind: BatchRemoveObject, ID: 3},
		{Kind: BatchRemoveFunction, ID: 4},
	}
	valid := EncodeBatch(sample)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])            // truncated final mutation
	f.Add(append(valid, 1, 2, 3))          // trailing bytes
	f.Add([]byte{})                        // short payload
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})  // implausible count
	f.Add(EncodeBatch(nil))                // empty batch
	f.Fuzz(func(t *testing.T, data []byte) {
		muts, err := DecodeBatch(data)
		if err != nil {
			if !errors.Is(err, ErrBadBatch) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		b1 := EncodeBatch(muts)
		m2, err := DecodeBatch(b1)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !bytes.Equal(EncodeBatch(m2), b1) {
			t.Fatal("canonical batch encoding is not stable")
		}
	})
}
