package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadBatch marks a WAL batch payload that cannot be decoded. The WAL
// layer checksums every record, so hitting this during replay means the
// log diverged from the workspace that wrote it — a typed error, never
// a panic.
var ErrBadBatch = errors.New("snapshot: bad mutation batch")

// Mutation kinds on the wire (match assign.MutationKind values).
const (
	BatchAddObject      = 1
	BatchRemoveObject   = 2
	BatchAddFunction    = 3
	BatchRemoveFunction = 4
)

// MutationRec is one logged mutation in engine form: scorer families
// already resolved and weights already normalized, so replay bypasses
// the public translation layer and reapplies exactly what was applied.
type MutationRec struct {
	Kind     uint8
	ID       uint64      // remove-object / remove-function target
	Object   ObjectRec   // add-object payload
	Function FunctionRec // add-function payload
}

// EncodeBatch serializes one Apply batch for a WAL record payload.
func EncodeBatch(muts []MutationRec) []byte {
	var e enc
	e.u32(uint32(len(muts)))
	for i := range muts {
		m := &muts[i]
		e.b = append(e.b, m.Kind)
		switch m.Kind {
		case BatchAddObject:
			e.u64(m.Object.ID).i64(m.Object.Capacity).u32(uint32(len(m.Object.Point)))
			for _, v := range m.Object.Point {
				e.f64(v)
			}
		case BatchAddFunction:
			f := &m.Function
			e.u64(f.ID).i64(f.Capacity).f64(f.Gamma).u32(f.FamKind).f64(f.FamP)
			e.u32(uint32(len(f.Weights)))
			for _, v := range f.Weights {
				e.f64(v)
			}
		default:
			e.u64(m.ID)
		}
	}
	return e.take()
}

// DecodeBatch parses one WAL record payload. Malformed input returns an
// error wrapping ErrBadBatch; allocations are bounded by len(data).
func DecodeBatch(data []byte) ([]MutationRec, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: short payload", ErrBadBatch)
	}
	n := binary.LittleEndian.Uint32(data)
	r := dec{b: data[4:]}
	// Every mutation costs at least kind + one u64.
	if uint64(n) > uint64(r.len())/9+1 {
		return nil, fmt.Errorf("%w: implausible mutation count %d", ErrBadBatch, n)
	}
	muts := make([]MutationRec, 0, n)
	for i := uint32(0); i < n; i++ {
		if r.err != nil || r.len() < 1 {
			return nil, fmt.Errorf("%w: truncated at mutation %d", ErrBadBatch, i)
		}
		kind := r.b[0]
		r.b = r.b[1:]
		m := MutationRec{Kind: kind}
		switch kind {
		case BatchAddObject:
			m.Object.ID, m.Object.Capacity = r.u64(), r.i64()
			dims := r.u32()
			if r.err != nil || dims > maxDims || uint64(dims) > uint64(r.len())/8 {
				return nil, fmt.Errorf("%w: bad point dims at mutation %d", ErrBadBatch, i)
			}
			m.Object.Point = r.f64s(int(dims))
		case BatchAddFunction:
			f := &m.Function
			f.ID, f.Capacity, f.Gamma = r.u64(), r.i64(), r.f64()
			f.FamKind, f.FamP = r.u32(), r.f64()
			dims := r.u32()
			if r.err != nil || dims > maxDims || uint64(dims) > uint64(r.len())/8 {
				return nil, fmt.Errorf("%w: bad weight dims at mutation %d", ErrBadBatch, i)
			}
			f.Weights = r.f64s(int(dims))
		case BatchRemoveObject, BatchRemoveFunction:
			m.ID = r.u64()
		default:
			return nil, fmt.Errorf("%w: unknown mutation kind %d", ErrBadBatch, kind)
		}
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated at mutation %d", ErrBadBatch, i)
		}
		muts = append(muts, m)
	}
	if r.len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, r.len())
	}
	return muts, nil
}
