// Package snapshot persists a pinned workspace epoch — page images of
// both versioned stores, the R-tree headers, the matching, the capacity
// tables, the availability frontier, and the solver counters — to a
// compact, versioned, CRC-checksummed file, and decodes it back. The
// assign layer turns a decoded Data into a ready-to-serve workspace in
// O(file) time with no re-solve (warm-start); together with the WAL
// (internal/wal) the snapshot is the durable source of truth — the
// workspace's live page files are scratch and are never read during
// recovery.
//
// # File format
//
// Little-endian throughout.
//
//	header:   magic "FASNAP01" (8) | version u32 | dims u32 |
//	          epoch u64 | reserved u32 | crc u32 (over version..reserved)
//	section:  kind u32 | reserved u32 | payloadLen u64 | crc u32 (payload)
//	footer:   a section with kind 0 whose payload is the section count
//
// Every section payload carries its own CRC-32 (Castagnoli); a missing
// footer means the file was truncated. Decoding is fully bounds-checked
// against the input length before any count-sized allocation, so
// arbitrary input returns ErrBadSnapshot — never a panic or an
// unbounded allocation.
//
// Snapshot files are written atomically: encode to "<name>.tmp", fsync,
// rename over the final name, fsync the directory. A crash at any byte
// of that sequence leaves either no snapshot or a complete one.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path"
	"sort"
	"strconv"
	"strings"

	"fairassign/internal/vfs"
)

// ErrBadSnapshot marks a snapshot file that cannot be trusted:
// truncated, checksum-corrupt, structurally invalid, or written by an
// unsupported format version. Recovery falls back to the previous good
// snapshot when one exists.
var ErrBadSnapshot = errors.New("snapshot: bad snapshot")

const (
	magic         = "FASNAP01"
	formatVersion = 1
	headerSize    = 8 + 4 + 4 + 8 + 4 + 4
	secHdrSize    = 4 + 4 + 8 + 4

	// maxDims bounds the dimensionality a decoder will accept; real
	// workspaces use a handful of dimensions.
	maxDims = 4096
	// maxPageSize bounds a store image's page size.
	maxPageSize = 1 << 24
)

// Section kinds.
const (
	secFooter    = 0
	secCounters  = 1
	secObjects   = 2
	secFunctions = 3
	secPairs     = 4
	secObjCaps   = 5
	secFuncCaps  = 6
	secAvail     = 7
	secObjStore  = 8
	secFuncStore = 9
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ObjectRec is one persisted object.
type ObjectRec struct {
	ID       uint64
	Capacity int64
	Point    []float64
}

// FunctionRec is one persisted preference function, with its scoring
// family so non-linear workspaces restore exactly.
type FunctionRec struct {
	ID       uint64
	Capacity int64
	Gamma    float64
	FamKind  uint32
	FamP     float64
	Weights  []float64
}

// Pair is one persisted assignment unit.
type Pair struct {
	FuncID uint64
	ObjID  uint64
	Score  float64
}

// CapEntry is one capacity-table row: remaining units for an ID.
type CapEntry struct {
	ID        uint64
	Remaining int64
}

// PageImage is one live page's current bytes (trailing zeros trimmed).
type PageImage struct {
	ID   int64
	Data []byte
}

// StoreImage freezes one page store plus the R-tree rooted in it: the
// live pages pin the node contents, the root/height/size header pins
// the entry point (the Meta idea from internal/rtree, serialized).
type StoreImage struct {
	PageSize int
	// Next is the allocation watermark: restore allocates IDs 0..Next-1
	// and frees the holes, reproducing the store's ID space.
	Next   int64
	Root   int64
	Height int
	Size   int
	Pages  []PageImage
}

// Counters carries the workspace's lifetime solver counters so a
// recovered workspace reports the same Stats as the one that saved.
type Counters struct {
	Mutations  uint64
	Commits    uint64
	ChainSteps uint64
	Searches   uint64
	Resolves   uint64
}

// Data is one decoded (or to-be-encoded) snapshot: everything needed to
// rebuild a serving workspace at the captured epoch.
type Data struct {
	Epoch     uint64
	Dims      int
	Counters  Counters
	Objects   []ObjectRec
	Functions []FunctionRec
	Pairs     []Pair
	ObjCaps   []CapEntry
	FuncCaps  []CapEntry
	// Avail is the sorted ID set of the availability frontier (the
	// skyline of objects with remaining capacity) — a logical checksum:
	// restore recomputes the frontier from the capacity tables and
	// rejects the snapshot if the sets differ.
	Avail     []uint64
	ObjStore  StoreImage
	FuncStore StoreImage
}

// FileName returns the snapshot file name for an epoch:
// "snap-<epoch as 16 hex digits>.fasnap".
func FileName(epoch uint64) string {
	return fmt.Sprintf("snap-%016x.fasnap", epoch)
}

// ParseFileName inverts FileName; ok is false for other files
// (including in-flight ".tmp" writes).
func ParseFileName(name string) (epoch uint64, ok bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".fasnap") {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".fasnap")
	if len(hexpart) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// List returns the epochs of the well-named snapshot files in dir,
// ascending. Name-level only: a listed snapshot may still fail its
// checksums when read.
func List(fs vfs.FS, dir string) ([]uint64, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: list %s: %w", dir, err)
	}
	var epochs []uint64
	for _, n := range names {
		if e, ok := ParseFileName(n); ok {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// Encode serializes the snapshot.
func Encode(d *Data) []byte {
	var buf bytes.Buffer

	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(d.Dims))
	binary.LittleEndian.PutUint64(hdr[16:], d.Epoch)
	binary.LittleEndian.PutUint32(hdr[28:], crc32.Checksum(hdr[8:28], crcTable))
	buf.Write(hdr[:])

	sections := 0
	writeSection := func(kind uint32, payload []byte) {
		var sh [secHdrSize]byte
		binary.LittleEndian.PutUint32(sh[0:], kind)
		binary.LittleEndian.PutUint64(sh[8:], uint64(len(payload)))
		binary.LittleEndian.PutUint32(sh[16:], crc32.Checksum(payload, crcTable))
		buf.Write(sh[:])
		buf.Write(payload)
		sections++
	}

	var e enc
	e.u64(d.Counters.Mutations).u64(d.Counters.Commits).u64(d.Counters.ChainSteps)
	e.u64(d.Counters.Searches).u64(d.Counters.Resolves)
	writeSection(secCounters, e.take())

	e.u64(uint64(len(d.Objects)))
	for _, o := range d.Objects {
		e.u64(o.ID).i64(o.Capacity)
		for _, v := range o.Point {
			e.f64(v)
		}
	}
	writeSection(secObjects, e.take())

	e.u64(uint64(len(d.Functions)))
	for _, f := range d.Functions {
		e.u64(f.ID).i64(f.Capacity).f64(f.Gamma).u32(f.FamKind).f64(f.FamP)
		for _, v := range f.Weights {
			e.f64(v)
		}
	}
	writeSection(secFunctions, e.take())

	e.u64(uint64(len(d.Pairs)))
	for _, p := range d.Pairs {
		e.u64(p.FuncID).u64(p.ObjID).f64(p.Score)
	}
	writeSection(secPairs, e.take())

	encCaps := func(caps []CapEntry) []byte {
		e.u64(uint64(len(caps)))
		for _, c := range caps {
			e.u64(c.ID).i64(c.Remaining)
		}
		return e.take()
	}
	writeSection(secObjCaps, encCaps(d.ObjCaps))
	writeSection(secFuncCaps, encCaps(d.FuncCaps))

	e.u64(uint64(len(d.Avail)))
	for _, id := range d.Avail {
		e.u64(id)
	}
	writeSection(secAvail, e.take())

	encStore := func(si *StoreImage) []byte {
		e.u32(uint32(si.PageSize)).u32(0).i64(si.Next).i64(si.Root)
		e.u32(uint32(si.Height)).u32(0).u64(uint64(si.Size)).u64(uint64(len(si.Pages)))
		for _, p := range si.Pages {
			e.i64(p.ID).u32(uint32(len(p.Data)))
			e.bytes(p.Data)
		}
		return e.take()
	}
	writeSection(secObjStore, encStore(&d.ObjStore))
	writeSection(secFuncStore, encStore(&d.FuncStore))

	e.u64(uint64(sections + 1))
	writeSection(secFooter, e.take())

	return buf.Bytes()
}

// Decode parses a snapshot image. Any malformation — short input, bad
// magic, checksum mismatch, implausible counts, missing footer —
// returns an error wrapping ErrBadSnapshot; Decode never panics and
// never allocates more than O(len(data)).
func Decode(data []byte) (*Data, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: short header", ErrBadSnapshot)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if crc := binary.LittleEndian.Uint32(data[28:]); crc != crc32.Checksum(data[8:28], crcTable) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrBadSnapshot)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrBadSnapshot, v)
	}
	d := &Data{
		Dims:  int(binary.LittleEndian.Uint32(data[12:])),
		Epoch: binary.LittleEndian.Uint64(data[16:]),
	}
	if d.Dims < 1 || d.Dims > maxDims {
		return nil, fmt.Errorf("%w: implausible dims %d", ErrBadSnapshot, d.Dims)
	}

	rest := data[headerSize:]
	seen := make(map[uint32]bool)
	sections := 0
	footer := false
	for len(rest) > 0 {
		if len(rest) < secHdrSize {
			return nil, fmt.Errorf("%w: truncated section header", ErrBadSnapshot)
		}
		kind := binary.LittleEndian.Uint32(rest[0:])
		if rsvd := binary.LittleEndian.Uint32(rest[4:]); rsvd != 0 {
			return nil, fmt.Errorf("%w: section %d reserved field %d", ErrBadSnapshot, kind, rsvd)
		}
		plen := binary.LittleEndian.Uint64(rest[8:])
		crc := binary.LittleEndian.Uint32(rest[16:])
		rest = rest[secHdrSize:]
		if plen > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: truncated section %d", ErrBadSnapshot, kind)
		}
		payload := rest[:plen]
		rest = rest[plen:]
		if crc32.Checksum(payload, crcTable) != crc {
			return nil, fmt.Errorf("%w: section %d checksum mismatch", ErrBadSnapshot, kind)
		}
		if seen[kind] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrBadSnapshot, kind)
		}
		seen[kind] = true
		sections++
		r := dec{b: payload}
		var err error
		switch kind {
		case secFooter:
			want := r.u64()
			if r.err != nil || r.len() != 0 || want != uint64(sections) {
				return nil, fmt.Errorf("%w: bad footer", ErrBadSnapshot)
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("%w: trailing bytes after footer", ErrBadSnapshot)
			}
			footer = true
		case secCounters:
			d.Counters = Counters{
				Mutations: r.u64(), Commits: r.u64(), ChainSteps: r.u64(),
				Searches: r.u64(), Resolves: r.u64(),
			}
			err = r.done("counters")
		case secObjects:
			err = decodeObjects(&r, d)
		case secFunctions:
			err = decodeFunctions(&r, d)
		case secPairs:
			err = decodePairs(&r, d)
		case secObjCaps:
			d.ObjCaps, err = decodeCaps(&r)
		case secFuncCaps:
			d.FuncCaps, err = decodeCaps(&r)
		case secAvail:
			err = decodeAvail(&r, d)
		case secObjStore:
			err = decodeStore(&r, &d.ObjStore)
		case secFuncStore:
			err = decodeStore(&r, &d.FuncStore)
		default:
			return nil, fmt.Errorf("%w: unknown section %d", ErrBadSnapshot, kind)
		}
		if err != nil {
			return nil, err
		}
		if footer {
			break
		}
	}
	if !footer {
		return nil, fmt.Errorf("%w: missing footer (truncated file)", ErrBadSnapshot)
	}
	for k := uint32(secCounters); k <= secFuncStore; k++ {
		if !seen[k] {
			return nil, fmt.Errorf("%w: missing section %d", ErrBadSnapshot, k)
		}
	}
	return d, nil
}

func decodeObjects(r *dec, d *Data) error {
	n := r.u64()
	recSize := uint64(8 + 8 + 8*d.Dims)
	if r.err != nil || n > uint64(r.len())/recSize {
		return fmt.Errorf("%w: implausible object count", ErrBadSnapshot)
	}
	d.Objects = make([]ObjectRec, n)
	for i := range d.Objects {
		o := &d.Objects[i]
		o.ID, o.Capacity = r.u64(), r.i64()
		o.Point = r.f64s(d.Dims)
	}
	return r.done("objects")
}

func decodeFunctions(r *dec, d *Data) error {
	n := r.u64()
	recSize := uint64(8 + 8 + 8 + 4 + 8 + 8*d.Dims)
	if r.err != nil || n > uint64(r.len())/recSize {
		return fmt.Errorf("%w: implausible function count", ErrBadSnapshot)
	}
	d.Functions = make([]FunctionRec, n)
	for i := range d.Functions {
		f := &d.Functions[i]
		f.ID, f.Capacity, f.Gamma = r.u64(), r.i64(), r.f64()
		f.FamKind, f.FamP = r.u32(), r.f64()
		f.Weights = r.f64s(d.Dims)
	}
	return r.done("functions")
}

func decodePairs(r *dec, d *Data) error {
	n := r.u64()
	if r.err != nil || n > uint64(r.len())/24 {
		return fmt.Errorf("%w: implausible pair count", ErrBadSnapshot)
	}
	d.Pairs = make([]Pair, n)
	for i := range d.Pairs {
		p := &d.Pairs[i]
		p.FuncID, p.ObjID, p.Score = r.u64(), r.u64(), r.f64()
	}
	return r.done("pairs")
}

func decodeCaps(r *dec) ([]CapEntry, error) {
	n := r.u64()
	if r.err != nil || n > uint64(r.len())/16 {
		return nil, fmt.Errorf("%w: implausible capacity count", ErrBadSnapshot)
	}
	caps := make([]CapEntry, n)
	for i := range caps {
		caps[i].ID, caps[i].Remaining = r.u64(), r.i64()
	}
	return caps, r.done("caps")
}

func decodeAvail(r *dec, d *Data) error {
	n := r.u64()
	if r.err != nil || n > uint64(r.len())/8 {
		return fmt.Errorf("%w: implausible frontier count", ErrBadSnapshot)
	}
	d.Avail = make([]uint64, n)
	for i := range d.Avail {
		d.Avail[i] = r.u64()
	}
	return r.done("avail")
}

func decodeStore(r *dec, si *StoreImage) error {
	si.PageSize = int(r.u32())
	r.u32()
	si.Next = r.i64()
	si.Root = r.i64()
	si.Height = int(r.u32())
	r.u32()
	size := r.u64()
	n := r.u64()
	if r.err != nil {
		return fmt.Errorf("%w: truncated store image", ErrBadSnapshot)
	}
	if si.PageSize < 32 || si.PageSize > maxPageSize {
		return fmt.Errorf("%w: implausible page size %d", ErrBadSnapshot, si.PageSize)
	}
	if size > math.MaxInt32 || si.Next < 0 {
		return fmt.Errorf("%w: implausible store image", ErrBadSnapshot)
	}
	si.Size = int(size)
	if n > uint64(r.len())/12 {
		return fmt.Errorf("%w: implausible page count", ErrBadSnapshot)
	}
	si.Pages = make([]PageImage, n)
	for i := range si.Pages {
		p := &si.Pages[i]
		p.ID = r.i64()
		dlen := r.u32()
		if r.err != nil || int(dlen) > si.PageSize {
			return fmt.Errorf("%w: bad page image length", ErrBadSnapshot)
		}
		p.Data = r.raw(int(dlen))
		if p.ID < 0 || p.ID >= si.Next {
			return fmt.Errorf("%w: page id %d outside watermark %d", ErrBadSnapshot, p.ID, si.Next)
		}
		if i > 0 && p.ID <= si.Pages[i-1].ID {
			return fmt.Errorf("%w: page ids not strictly ascending", ErrBadSnapshot)
		}
	}
	return r.done("store image")
}

// WriteFile atomically persists the snapshot into dir and returns its
// file name: encode, write "<name>.tmp", fsync, rename over the final
// name, fsync the directory. The rename is the commit point.
func WriteFile(fs vfs.FS, dir string, d *Data) (string, error) {
	name := FileName(d.Epoch)
	tmp := path.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("snapshot: create %s: %w", tmp, err)
	}
	if _, err := f.Write(Encode(d)); err != nil {
		f.Close()
		return "", fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("snapshot: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("snapshot: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, path.Join(dir, name)); err != nil {
		return "", fmt.Errorf("snapshot: rename %s: %w", tmp, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return "", fmt.Errorf("snapshot: sync dir %s: %w", dir, err)
	}
	return name, nil
}

// ReadFile loads and decodes one snapshot file; decode failures wrap
// ErrBadSnapshot.
func ReadFile(fs vfs.FS, dir string, epoch uint64) (*Data, error) {
	f, err := fs.Open(path.Join(dir, FileName(epoch)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: open %s: %w", FileName(epoch), err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", FileName(epoch), err)
	}
	d, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", FileName(epoch), err)
	}
	if d.Epoch != epoch {
		return nil, fmt.Errorf("%w: %s: header epoch %d does not match name", ErrBadSnapshot, FileName(epoch), d.Epoch)
	}
	return d, nil
}

// enc is a little-endian append-only encoder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) *enc {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
	return e
}
func (e *enc) u64(v uint64) *enc {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
	return e
}
func (e *enc) i64(v int64) *enc     { return e.u64(uint64(v)) }
func (e *enc) f64(v float64) *enc   { return e.u64(math.Float64bits(v)) }
func (e *enc) bytes(p []byte) *enc  { e.b = append(e.b, p...); return e }

// take returns the accumulated bytes and resets the encoder.
func (e *enc) take() []byte {
	out := e.b
	e.b = nil
	return out
}

// dec is a bounds-checked little-endian reader over one section
// payload; the first short read latches err and every later read
// returns zero.
type dec struct {
	b   []byte
	err error
}

func (r *dec) len() int { return len(r.b) }

func (r *dec) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *dec) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *dec) i64() int64   { return int64(r.u64()) }
func (r *dec) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *dec) f64s(n int) []float64 {
	if r.err != nil || len(r.b) < 8*n {
		r.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[8*i:]))
	}
	r.b = r.b[8*n:]
	return out
}

func (r *dec) raw(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b)
	r.b = r.b[n:]
	return out
}

func (r *dec) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated payload", ErrBadSnapshot)
	}
}

// done asserts the payload was consumed exactly.
func (r *dec) done(what string) error {
	if r.err != nil {
		return fmt.Errorf("%w: truncated %s section", ErrBadSnapshot, what)
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in %s section", ErrBadSnapshot, len(r.b), what)
	}
	return nil
}
