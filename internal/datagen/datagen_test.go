package datagen

import (
	"math"
	"testing"

	"fairassign/internal/assign"
	"fairassign/internal/rtree"
	"fairassign/internal/skyline"
)

func pearson(objs []assign.Object, d1, d2 int) float64 {
	n := float64(len(objs))
	var sx, sy, sxx, syy, sxy float64
	for _, o := range objs {
		x, y := o.Point[d1], o.Point[d2]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	return cov / math.Sqrt(vx*vy)
}

func inUnitBox(t *testing.T, objs []assign.Object, dims int) {
	t.Helper()
	for _, o := range objs {
		if len(o.Point) != dims {
			t.Fatalf("object %d has %d dims, want %d", o.ID, len(o.Point), dims)
		}
		for d, v := range o.Point {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("object %d dim %d = %v out of [0,1]", o.ID, d, v)
			}
		}
	}
}

func TestObjectsDeterministic(t *testing.T) {
	for _, k := range []Kind{Independent, Correlated, AntiCorrelated} {
		a := Objects(k, 100, 4, 42)
		b := Objects(k, 100, 4, 42)
		for i := range a {
			if !a[i].Point.Equal(b[i].Point) {
				t.Fatalf("%v: object %d differs between runs", k, i)
			}
		}
		c := Objects(k, 100, 4, 43)
		same := 0
		for i := range a {
			if a[i].Point.Equal(c[i].Point) {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%v: different seeds produced identical data", k)
		}
	}
}

func TestObjectsInRangeAllKinds(t *testing.T) {
	for _, k := range []Kind{Independent, Correlated, AntiCorrelated} {
		for _, dims := range []int{2, 3, 6} {
			inUnitBox(t, Objects(k, 500, dims, 1), dims)
		}
	}
}

func TestCorrelationSigns(t *testing.T) {
	n := 5000
	corr := Objects(Correlated, n, 3, 7)
	anti := Objects(AntiCorrelated, n, 3, 7)
	indep := Objects(Independent, n, 3, 7)
	if r := pearson(corr, 0, 1); r < 0.5 {
		t.Errorf("correlated data: r(0,1) = %v, want strongly positive", r)
	}
	if r := pearson(anti, 0, 1); r > -0.1 {
		t.Errorf("anti-correlated data: r(0,1) = %v, want negative", r)
	}
	if r := pearson(indep, 0, 1); math.Abs(r) > 0.1 {
		t.Errorf("independent data: r(0,1) = %v, want near zero", r)
	}
}

func skylineSize(t *testing.T, objs []assign.Object) int {
	t.Helper()
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	return len(skyline.SFS(items))
}

func TestSkylineSizeOrdering(t *testing.T) {
	// The defining property of the three distributions (Section 7):
	// |sky(anti)| > |sky(indep)| > |sky(corr)|.
	n := 4000
	sAnti := skylineSize(t, Objects(AntiCorrelated, n, 4, 3))
	sInd := skylineSize(t, Objects(Independent, n, 4, 3))
	sCorr := skylineSize(t, Objects(Correlated, n, 4, 3))
	if !(sAnti > sInd && sInd > sCorr) {
		t.Errorf("skyline sizes anti=%d indep=%d corr=%d violate expected ordering", sAnti, sInd, sCorr)
	}
}

func TestFunctionsNormalized(t *testing.T) {
	funcs := Functions(300, 5, 11)
	for _, f := range funcs {
		sum := 0.0
		for _, w := range f.Weights {
			if w < 0 {
				t.Fatalf("function %d has negative weight", f.ID)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("function %d weights sum to %v", f.ID, sum)
		}
	}
}

func TestClusteredFunctions(t *testing.T) {
	funcs := ClusteredFunctions(2000, 4, 3, 0.05, 13)
	if len(funcs) != 2000 {
		t.Fatalf("len = %d", len(funcs))
	}
	for _, f := range funcs {
		sum := 0.0
		for _, w := range f.Weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("clustered function %d not normalized: %v", f.ID, sum)
		}
	}
	// With a single cluster and σ=0.05, weights should be far more
	// concentrated than with nine clusters.
	spread := func(fs []assign.Function) float64 {
		var mean, m2 float64
		for _, f := range fs {
			mean += f.Weights[0]
		}
		mean /= float64(len(fs))
		for _, f := range fs {
			d := f.Weights[0] - mean
			m2 += d * d
		}
		return m2 / float64(len(fs))
	}
	one := ClusteredFunctions(2000, 4, 1, 0.05, 17)
	nine := ClusteredFunctions(2000, 4, 9, 0.05, 17)
	if spread(one) > spread(nine) {
		t.Errorf("C=1 spread %v should be below C=9 spread %v", spread(one), spread(nine))
	}
}

func TestCapacityAndGammaHelpers(t *testing.T) {
	funcs := Functions(50, 3, 19)
	capped := WithFunctionCapacity(funcs, 4)
	for _, f := range capped {
		if f.Capacity != 4 {
			t.Fatal("capacity not applied")
		}
	}
	if funcs[0].Capacity == 4 {
		t.Fatal("WithFunctionCapacity must not mutate input")
	}
	objs := Objects(Independent, 50, 3, 19)
	oc := WithObjectCapacity(objs, 8)
	if oc[0].Capacity != 8 || objs[0].Capacity == 8 {
		t.Fatal("WithObjectCapacity wrong")
	}
	pri := WithRandomGamma(funcs, 16, 3)
	seen := map[float64]bool{}
	for _, f := range pri {
		if f.Gamma < 1 || f.Gamma > 16 {
			t.Fatalf("gamma %v out of range", f.Gamma)
		}
		seen[f.Gamma] = true
	}
	if len(seen) < 4 {
		t.Errorf("gamma values not spread: %v", seen)
	}
	rc := WithRandomFunctionCapacity(funcs, 9, 5)
	for _, f := range rc {
		if f.Capacity < 1 || f.Capacity > 9 {
			t.Fatalf("capacity %d out of range", f.Capacity)
		}
	}
}

func TestZillowLikeShape(t *testing.T) {
	objs := ZillowLike(5000, 23)
	if len(objs) != 5000 {
		t.Fatalf("len = %d", len(objs))
	}
	inUnitBox(t, objs, 5)
	// Heavy positive skew on the living-area column (index 2): the mean
	// sits well below the midpoint after min-max scaling.
	var mean float64
	for _, o := range objs {
		mean += o.Point[2]
	}
	mean /= float64(len(objs))
	if mean > 0.35 {
		t.Errorf("living area mean %v — expected log-normal skew toward 0", mean)
	}
	// Bathrooms and living area correlate (both driven by home size).
	if r := pearson(objs, 0, 2); r < 0.3 {
		t.Errorf("bath/living correlation %v, want positive", r)
	}
}

func TestNBALikeShape(t *testing.T) {
	objs := NBALike(29)
	if len(objs) != 12278 {
		t.Fatalf("NBA dataset must have 12278 rows, got %d", len(objs))
	}
	inUnitBox(t, objs, 5)
	// Stats correlate positively through the ability factor.
	if r := pearson(objs, 0, 3); r < 0.2 {
		t.Errorf("points/steals correlation %v, want positive", r)
	}
	// Role trade-off: rebounds vs assists correlate less than
	// points vs steals.
	if pearson(objs, 1, 2) > pearson(objs, 0, 3) {
		t.Errorf("rebounds/assists should correlate weaker than points/steals")
	}
}

func TestKindString(t *testing.T) {
	if Independent.String() != "independent" ||
		Correlated.String() != "correlated" ||
		AntiCorrelated.String() != "anti-correlated" ||
		Kind(99).String() != "unknown" {
		t.Error("Kind.String broken")
	}
}
