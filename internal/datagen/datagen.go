// Package datagen produces the paper's experimental workloads
// (Section 7): independent, correlated and anti-correlated object sets
// following the Börzsönyi et al. methodology; uniformly random and
// clustered (Gaussian around C centers, σ = 0.05) normalized preference
// functions; and synthetic stand-ins for the two real datasets (Zillow
// and NBA) that reproduce their documented shape — size, dimensionality,
// skew, and inter-attribute correlation. All generators are
// deterministic given a seed.
package datagen

import (
	"math"
	"math/rand"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
	"fairassign/internal/score"
)

// Kind selects the synthetic object distribution.
type Kind int

const (
	// Independent: attribute values uniform and independent.
	Independent Kind = iota
	// Correlated: objects good in one dimension are likely good in all.
	Correlated
	// AntiCorrelated: objects good in one dimension are likely poor in
	// the others — the hardest case, with large skylines.
	AntiCorrelated
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Independent:
		return "independent"
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anti-correlated"
	default:
		return "unknown"
	}
}

// Objects generates n objects of the given distribution in [0,1]^dims.
func Objects(kind Kind, n, dims int, seed int64) []assign.Object {
	rng := rand.New(rand.NewSource(seed))
	out := make([]assign.Object, n)
	for i := 0; i < n; i++ {
		var p geom.Point
		switch kind {
		case Correlated:
			p = correlatedPoint(rng, dims)
		case AntiCorrelated:
			p = antiCorrelatedPoint(rng, dims)
		default:
			p = independentPoint(rng, dims)
		}
		out[i] = assign.Object{ID: uint64(i + 1), Point: p}
	}
	return out
}

func independentPoint(rng *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	for d := range p {
		p[d] = rng.Float64()
	}
	return p
}

// correlatedPoint places a point near the main diagonal: a base value
// drawn toward the middle of the range plus small per-dimension jitter.
// Out-of-range draws are rejected and redrawn (as in the Börzsönyi
// methodology) rather than clamped: clamping would pile up exact
// duplicates at the corners of the space and manufacture score ties.
func correlatedPoint(rng *rand.Rand, dims int) geom.Point {
	for {
		base := 0.5 + 0.2*rng.NormFloat64()
		if base < 0 || base > 1 {
			continue
		}
		p := make(geom.Point, dims)
		ok := true
		for d := range p {
			v := base + 0.05*rng.NormFloat64()
			if v < 0 || v > 1 {
				ok = false
				break
			}
			p[d] = v
		}
		if ok {
			return p
		}
	}
}

// antiCorrelatedPoint places a point near the anti-diagonal hyperplane
// Σx ≈ dims/2: good values in one dimension trade against the others.
// The point starts at the plane's center and mass is shifted between
// random dimension pairs, which keeps every coordinate strictly inside
// [0,1] (no clamping, hence no manufactured duplicates) while preserving
// the coordinate sum.
func antiCorrelatedPoint(rng *rand.Rand, dims int) geom.Point {
	base := 0.5 + 0.05*rng.NormFloat64()
	if base < 0.05 {
		base = 0.05
	}
	if base > 0.95 {
		base = 0.95
	}
	p := make(geom.Point, dims)
	for d := range p {
		p[d] = base
	}
	for k := 0; k < 4*dims; k++ {
		i, j := rng.Intn(dims), rng.Intn(dims)
		if i == j {
			continue
		}
		room := p[i]
		if 1-p[j] < room {
			room = 1 - p[j]
		}
		delta := rng.Float64() * room * 0.9
		p[i] -= delta
		p[j] += delta
	}
	return p
}

// Functions generates n normalized linear preference functions with
// independently drawn weights (the paper's default).
func Functions(n, dims int, seed int64) []assign.Function {
	rng := rand.New(rand.NewSource(seed))
	out := make([]assign.Function, n)
	for i := 0; i < n; i++ {
		out[i] = assign.Function{ID: uint64(i + 1), Weights: randomWeights(rng, dims)}
	}
	return out
}

func randomWeights(rng *rand.Rand, dims int) []float64 {
	w := make([]float64, dims)
	sum := 0.0
	for d := range w {
		w[d] = rng.Float64()
		sum += w[d]
	}
	for d := range w {
		w[d] /= sum
	}
	return w
}

// ClusteredFunctions generates functions whose weights cluster around c
// random centers with Gaussian spread sd (σ = 0.05 in Figure 12), then
// renormalizes to Σα = 1.
func ClusteredFunctions(n, dims, c int, sd float64, seed int64) []assign.Function {
	rng := rand.New(rand.NewSource(seed))
	if c < 1 {
		c = 1
	}
	centers := make([][]float64, c)
	for i := range centers {
		centers[i] = randomWeights(rng, dims)
	}
	out := make([]assign.Function, n)
	for i := 0; i < n; i++ {
		ctr := centers[rng.Intn(c)]
		w := make([]float64, dims)
		sum := 0.0
		for d := range w {
			v := ctr[d] + sd*rng.NormFloat64()
			if v < 1e-9 {
				v = 1e-9
			}
			w[d] = v
			sum += v
		}
		for d := range w {
			w[d] /= sum
		}
		out[i] = assign.Function{ID: uint64(i + 1), Weights: w}
	}
	return out
}

// ScorerModes lists the family-assignment policies WithScorerFamilies
// accepts; "mixed" draws one of the others (plus linear) per function.
var ScorerModes = []string{"owa", "minimax", "best", "median", "chebyshev", "lp", "mixed"}

// WithScorerFamilies returns a copy of funcs reinterpreted under a
// scoring-family policy:
//
//	"owa"       — the weights become OWA position weights;
//	"minimax"   — egalitarian OWA (all weight on the worst attribute);
//	"best"      — optimistic OWA (all weight on the best attribute);
//	"median"    — OWA weighting the middle attribute(s);
//	"chebyshev" — weighted max over the existing weights;
//	"lp"        — p-norm over the existing weights, p drawn from {2, 3};
//	"mixed"     — a random family per function, linear included.
//
// Pattern modes replace the weight vectors; the others reuse them, so
// normalization (Σw = 1) is preserved either way.
func WithScorerFamilies(funcs []assign.Function, mode string, seed int64) []assign.Function {
	rng := rand.New(rand.NewSource(seed))
	out := make([]assign.Function, len(funcs))
	copy(out, funcs)
	for i := range out {
		m := mode
		if mode == "mixed" {
			m = []string{"linear", "owa", "minimax", "best", "median", "chebyshev", "lp"}[rng.Intn(7)]
		}
		dims := len(out[i].Weights)
		switch m {
		case "owa":
			out[i].Fam = score.Family{Kind: score.OWA}
		case "minimax":
			out[i].Fam = score.Family{Kind: score.OWA}
			out[i].Weights = score.MinimaxWeights(dims)
		case "best":
			out[i].Fam = score.Family{Kind: score.OWA}
			out[i].Weights = score.BestWeights(dims)
		case "median":
			out[i].Fam = score.Family{Kind: score.OWA}
			out[i].Weights = score.MedianWeights(dims)
		case "chebyshev":
			out[i].Fam = score.Family{Kind: score.Chebyshev}
		case "lp":
			out[i].Fam = score.Family{Kind: score.Lp, P: float64(2 + rng.Intn(2))}
		default: // linear
			out[i].Fam = score.Family{}
		}
	}
	return out
}

// WithFunctionCapacity returns a copy of funcs with every capacity set
// to k (Section 6.1).
func WithFunctionCapacity(funcs []assign.Function, k int) []assign.Function {
	out := make([]assign.Function, len(funcs))
	copy(out, funcs)
	for i := range out {
		out[i].Capacity = k
	}
	return out
}

// WithObjectCapacity returns a copy of objs with every capacity set to k.
func WithObjectCapacity(objs []assign.Object, k int) []assign.Object {
	out := make([]assign.Object, len(objs))
	copy(out, objs)
	for i := range out {
		out[i].Capacity = k
	}
	return out
}

// WithRandomGamma returns a copy of funcs with priorities drawn uniformly
// from {1, ..., maxGamma} (Section 7.4).
func WithRandomGamma(funcs []assign.Function, maxGamma int, seed int64) []assign.Function {
	rng := rand.New(rand.NewSource(seed))
	out := make([]assign.Function, len(funcs))
	copy(out, funcs)
	for i := range out {
		out[i].Gamma = float64(1 + rng.Intn(maxGamma))
	}
	return out
}

// WithRandomFunctionCapacity returns a copy with capacities drawn
// uniformly from {1, ..., maxK} (used by the NBA experiment).
func WithRandomFunctionCapacity(funcs []assign.Function, maxK int, seed int64) []assign.Function {
	rng := rand.New(rand.NewSource(seed))
	out := make([]assign.Function, len(funcs))
	copy(out, funcs)
	for i := range out {
		out[i].Capacity = 1 + rng.Intn(maxK)
	}
	return out
}

// ZillowLike synthesizes a real-estate dataset shaped like the paper's
// Zillow crawl: five attributes (bathrooms, bedrooms, living area, price
// attractiveness, lot area), heavy log-normal skew on the size/price
// columns and strong positive correlation between living area, bathroom
// count and price. Values are min-max normalized to [0,1] with "larger is
// better" orientation (price enters as affordability so that cheap,
// large, well-equipped homes dominate).
func ZillowLike(n int, seed int64) []assign.Object {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][5]float64, n)
	for i := 0; i < n; i++ {
		// Latent "home size" factor drives most attributes.
		size := math.Exp(0.5 * rng.NormFloat64()) // log-normal around 1
		baths := math.Max(1, math.Round(1.5*size+0.7*rng.NormFloat64()))
		beds := math.Max(1, math.Round(2.5*size+0.9*rng.NormFloat64()))
		living := 900 * size * math.Exp(0.25*rng.NormFloat64())
		price := 150000 * size * math.Exp(0.45*rng.NormFloat64())
		lot := 3000 * math.Exp(0.9*rng.NormFloat64()) * (0.5 + 0.5*size)
		// Affordability: inverted price so larger = better everywhere.
		rows[i] = [5]float64{baths, beds, living, 1 / price, lot}
	}
	return normalizeRows(rows)
}

// NBALike synthesizes a player-statistics dataset shaped like the NBA
// set used in Section 7.5: 12,278 players × five attributes (points,
// rebounds, assists, steals, blocks). A latent log-normal "ability"
// factor induces the heavy skew (few stars) and positive correlation
// among the stat lines; role variation (guards vs. centers) adds the
// rebounds/assists trade-off present in real rosters.
func NBALike(seed int64) []assign.Object {
	return NBALikeN(12278, seed)
}

// NBALikeN is NBALike with a custom row count (for scaled-down tests).
func NBALikeN(n int, seed int64) []assign.Object {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][5]float64, n)
	for i := 0; i < n; i++ {
		ability := math.Exp(0.8*rng.NormFloat64() - 0.8)
		role := rng.Float64() // 0 = guard, 1 = big man
		points := 8 * ability * math.Exp(0.3*rng.NormFloat64())
		rebounds := 4 * ability * (0.4 + 1.2*role) * math.Exp(0.3*rng.NormFloat64())
		assists := 3 * ability * (1.6 - 1.2*role) * math.Exp(0.3*rng.NormFloat64())
		steals := 0.8 * ability * math.Exp(0.4*rng.NormFloat64())
		blocks := 0.5 * ability * (0.3 + 1.4*role) * math.Exp(0.5*rng.NormFloat64())
		rows[i] = [5]float64{points, rebounds, assists, steals, blocks}
	}
	return normalizeRows(rows)
}

// normalizeRows min-max scales every column to [0,1] and wraps the rows
// as objects.
func normalizeRows(rows [][5]float64) []assign.Object {
	if len(rows) == 0 {
		return nil
	}
	var lo, hi [5]float64
	for d := 0; d < 5; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, r := range rows {
		for d := 0; d < 5; d++ {
			if r[d] < lo[d] {
				lo[d] = r[d]
			}
			if r[d] > hi[d] {
				hi[d] = r[d]
			}
		}
	}
	out := make([]assign.Object, len(rows))
	for i, r := range rows {
		p := make(geom.Point, 5)
		for d := 0; d < 5; d++ {
			if hi[d] > lo[d] {
				p[d] = (r[d] - lo[d]) / (hi[d] - lo[d])
			}
		}
		out[i] = assign.Object{ID: uint64(i + 1), Point: p}
	}
	return out
}
