package heaputil

import (
	"container/heap"
	"math/rand"
	"testing"
)

// elem carries a sequence number so ties on key expose ordering
// differences between implementations.
type elem struct {
	key int
	seq int
}

func lessElem(a, b elem) bool { return a.key < b.key }

type stdHeap []elem

func (h stdHeap) Len() int           { return len(h) }
func (h stdHeap) Less(i, j int) bool { return lessElem(h[i], h[j]) }
func (h stdHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *stdHeap) Push(x any)        { *h = append(*h, x.(elem)) }
func (h *stdHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestMirrorsContainerHeap drives random interleaved push/pop sequences
// through both implementations and requires bit-identical pop results —
// including the order of equal keys, which depends on internal layout.
func TestMirrorsContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var ours []elem
		var std stdHeap
		seq := 0
		for op := 0; op < 500; op++ {
			if len(ours) == 0 || rng.Float64() < 0.6 {
				e := elem{key: rng.Intn(20), seq: seq} // few keys: many ties
				seq++
				Push(&ours, lessElem, e)
				heap.Push(&std, e)
			} else {
				got := Pop(&ours, lessElem)
				want := heap.Pop(&std).(elem)
				if got != want {
					t.Fatalf("trial %d op %d: popped %+v, container/heap popped %+v", trial, op, got, want)
				}
			}
		}
		for len(ours) > 0 {
			got := Pop(&ours, lessElem)
			want := heap.Pop(&std).(elem)
			if got != want {
				t.Fatalf("trial %d drain: popped %+v, want %+v", trial, got, want)
			}
		}
	}
}

func TestPushPopAllocs(t *testing.T) {
	var h []elem
	for i := 0; i < 1024; i++ { // pre-grow the backing array
		Push(&h, lessElem, elem{key: i})
	}
	h = h[:0]
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			Push(&h, lessElem, elem{key: 64 - i})
		}
		for i := 0; i < 64; i++ {
			Pop(&h, lessElem)
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop allocates %.1f per run, want 0", allocs)
	}
}
