// Package heaputil provides a boxing-free binary heap over a plain slice.
//
// container/heap moves every element through an `any`, which heap-allocates
// one box per Push — on the hot best-first traversals (BBS, BRS, kNN) that
// is one allocation per R-tree entry visited and dominates the allocation
// profile once nodes themselves are cached. These generic helpers keep
// elements in the slice's own storage.
//
// The sift logic mirrors container/heap exactly (same comparison and swap
// sequence), so for identical push/pop sequences the heap layout — and
// therefore the pop order among equal keys — is bit-identical to the
// container/heap code it replaces. That keeps traversal orders, and with
// them the paper's I/O traces, unchanged.
package heaputil

// Push adds e to the heap. less must define a strict weak ordering; the
// element for which less holds against every other ends up at index 0.
func Push[T any](h *[]T, less func(a, b T) bool, e T) {
	*h = append(*h, e)
	up(*h, less, len(*h)-1)
}

// Pop removes and returns the top element (index 0). It must not be
// called on an empty heap.
func Pop[T any](h *[]T, less func(a, b T) bool) T {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	down(s[:n], less, 0)
	e := s[n]
	var zero T
	s[n] = zero // do not retain popped elements through the backing array
	*h = s[:n]
	return e
}

func up[T any](s []T, less func(a, b T) bool, j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !less(s[j], s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func down[T any](s []T, less func(a, b T) bool, i int) {
	n := len(s)
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && less(s[j2], s[j1]) {
			j = j2
		}
		if !less(s[j], s[i]) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
}
