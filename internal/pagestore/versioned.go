package pagestore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fairassign/internal/metrics"
)

// VersionedStore layers epoch-based multi-versioning over a physical
// Store: a single writer keeps mutating pages through the ordinary Store
// interface while any number of readers hold Snapshots — immutable,
// consistent page images pinned to the epoch at which they were taken.
//
// Model. Time is divided into epochs. The writer is always building
// epoch W (= Published()+1); Publish() seals W and starts W+1. A
// Snapshot acquired between publishes pins the latest published epoch
// and resolves every page to the newest version written at or before
// it. Versions of published epochs are immutable, so snapshot reads
// need no copying, no buffer pool, and no coordination beyond a brief
// read-lock to resolve the version chain.
//
// Copy-on-write. The first write to a page in a new epoch checks
// whether any live snapshot can still observe the page's current
// version (a snapshot at epoch S observes the newest version with
// epoch <= S). If one can, the old bytes are retained on the page's
// version chain and the write lands in a fresh version; if none can,
// the current version is recycled in place — so a workspace that never
// takes snapshots pays only one shadow memcpy per write over a plain
// store. Retired versions and freed pages are reclaimed as soon as the
// last snapshot that could observe them is released.
//
// I/O accounting. Writer traffic flows through to the inner store
// unchanged — every ReadPage/WritePage performs (and counts) exactly
// one inner access, so the paper's physical I/O metric is identical to
// running on the inner store directly. Snapshot reads are served from
// the in-memory version chains and tallied on per-snapshot counters,
// never on the writer's.
//
// Concurrency contract: one writer (Allocate/ReadPage/WritePage/Free/
// Publish) serialized by the caller; snapshot reads, Acquire, and
// Release are safe from any goroutine at any time. By default every
// write that would clobber a published version copies, so an Acquire
// landing at any instant gets an intact epoch. A caller that already
// serializes Acquire against the writer (e.g. under its own writer
// lock) can opt into SetSerializedAcquire, which additionally recycles
// versions in place whenever no *live* snapshot observes them — the
// no-reader fast path that makes snapshot support free for pure churn.
type VersionedStore struct {
	mu    sync.RWMutex
	inner Store

	chains  map[PageID]*pageChain
	writer  uint64         // epoch under construction
	current uint64         // latest published epoch (writer - 1)
	readers map[uint64]int // live snapshot count per pinned epoch

	// retired queues pages with droppable history: a COW superseded one
	// of their versions, or the writer freed them, at the recorded
	// epoch. Entries are appended with the writer epoch, so the queue is
	// sorted; reclaim processes the prefix whose epoch is no longer
	// observable.
	retired []retiredRef

	// serialized records the caller's promise that Acquire never
	// interleaves with an epoch's writes, enabling the in-place recycle
	// fast path (see SetSerializedAcquire).
	serialized bool

	closed bool
}

type retiredRef struct {
	id    PageID
	epoch uint64
}

// pageChain is one page's version history, oldest first. The last
// version always mirrors the inner store's current bytes.
type pageChain struct {
	versions []*pageVersion
	freedAt  uint64 // 0 = live; epoch E means invisible from epoch E on
}

// pageVersion is one immutable-once-published page image. decoded
// caches a parsed form of the bytes for snapshot readers (the analogue
// of the BufferPool's decoded tier); it is populated lock-free because
// published bytes never change, and dropped with the version.
type pageVersion struct {
	epoch   uint64
	data    []byte
	decoded atomic.Pointer[decodedObj]
}

type decodedObj struct{ obj any }

// NewVersioned wraps a physical store with epoch-based versioning. The
// writer starts in epoch 1 with nothing published; take a first
// Publish() once the initial state is complete.
func NewVersioned(inner Store) *VersionedStore {
	return &VersionedStore{
		inner:   inner,
		chains:  make(map[PageID]*pageChain),
		writer:  1,
		readers: make(map[uint64]int),
	}
}

// Inner returns the wrapped physical store.
func (s *VersionedStore) Inner() Store { return s.inner }

// PageSize implements Store.
func (s *VersionedStore) PageSize() int { return s.inner.PageSize() }

// IO implements Store: the writer's physical counter is the inner
// store's (snapshot reads never touch it).
func (s *VersionedStore) IO() *metrics.IOCounter { return s.inner.IO() }

// Allocate implements Store.
func (s *VersionedStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return InvalidPage, ErrClosed
	}
	id, err := s.inner.Allocate()
	if err != nil {
		return InvalidPage, err
	}
	s.chains[id] = &pageChain{versions: []*pageVersion{{
		epoch: s.writer,
		data:  make([]byte, s.inner.PageSize()),
	}}}
	return id, nil
}

// ReadPage implements Store: the writer's view, served (and counted) by
// the inner store.
func (s *VersionedStore) ReadPage(id PageID, buf []byte) error {
	s.mu.RLock()
	ch := s.chains[id]
	s.mu.RUnlock()
	if ch == nil || ch.freedAt != 0 {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	return s.inner.ReadPage(id, buf)
}

// WritePage implements Store. The first write to a page in a new epoch
// copies-on-write if any live snapshot still observes the current
// version; later writes in the same epoch mutate the fresh version in
// place.
func (s *VersionedStore) WritePage(id PageID, data []byte) error {
	s.mu.Lock()
	ch := s.chains[id]
	if ch == nil || ch.freedAt != 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if len(data) > s.inner.PageSize() {
		s.mu.Unlock()
		return ErrPageSize
	}
	last := ch.versions[len(ch.versions)-1]
	switch {
	case last.epoch == s.writer:
		// Still this epoch's version: overwrite in place.
		fillPage(last.data, data)
		last.decoded.Store(nil)
	case s.observableLocked(last.epoch):
		// A snapshot can see the current bytes: retain them, start a
		// fresh version, and queue the old one for reclamation.
		nv := &pageVersion{epoch: s.writer, data: make([]byte, s.inner.PageSize())}
		fillPage(nv.data, data)
		ch.versions = append(ch.versions, nv)
		s.retired = append(s.retired, retiredRef{id: id, epoch: s.writer})
	default:
		// Nobody can observe the old bytes: recycle the version.
		fillPage(last.data, data)
		last.epoch = s.writer
		last.decoded.Store(nil)
	}
	s.mu.Unlock()
	return s.inner.WritePage(id, data)
}

// fillPage copies data into a full-page buffer, zeroing the tail.
func fillPage(dst, data []byte) {
	n := copy(dst, data)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// Free implements Store. If a live snapshot can still observe the page
// it is tombstoned at the current epoch and physically freed once the
// last such snapshot is released; otherwise it is freed immediately.
func (s *VersionedStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[id]
	if ch == nil || ch.freedAt != 0 {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if s.observableLocked(ch.versions[0].epoch) {
		ch.freedAt = s.writer
		s.retired = append(s.retired, retiredRef{id: id, epoch: s.writer})
		return nil
	}
	delete(s.chains, id)
	return s.inner.Free(id)
}

// SetSerializedAcquire declares whether the caller serializes Acquire
// against the writer's operations (true for the Workspace, whose
// writer lock covers both). When set, a version of a published epoch
// that no live snapshot observes is recycled in place instead of
// copied — pure churn with no open views then retains no history at
// all. When unset (the default), published versions are always copied
// on write, so an Acquire may land between any two writer operations
// and still pin an intact epoch.
func (s *VersionedStore) SetSerializedAcquire(serialized bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serialized = serialized
}

// observableLocked reports whether a version written at epoch e may
// still be resolved by a read view: a live snapshot pins an epoch at or
// after e, or — unless the caller serializes Acquire with the writer —
// a future snapshot could still pin the published epoch.
func (s *VersionedStore) observableLocked(e uint64) bool {
	if !s.serialized && e <= s.current {
		return true
	}
	for pinned := range s.readers {
		if pinned >= e {
			return true
		}
	}
	return false
}

// NumPages implements Store: live pages only (tombstoned pages awaiting
// reclamation are already logically gone).
func (s *VersionedStore) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ch := range s.chains {
		if ch.freedAt == 0 {
			n++
		}
	}
	return n
}

// Close implements Store. The inner store is closed and all writer-side
// operations start failing, but retained version chains stay readable:
// snapshots acquired before Close remain fully usable until released.
func (s *VersionedStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.inner.Close()
}

// SetBaseEpoch rebases a freshly created store onto a recovered epoch
// lineage: the store behaves as if `published` epochs had already been
// sealed, so the writer builds epoch published+1 and the next Publish
// returns it. Restore uses this so a reopened workspace continues the
// exact epoch sequence of the one that saved the snapshot — WAL record
// epochs line up across the crash. Only valid on a store with no
// published history and no live snapshots (i.e. right after
// NewVersioned); panics otherwise, since rebasing live history would
// corrupt every version chain.
func (s *VersionedStore) SetBaseEpoch(published uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.current != 0 || len(s.readers) != 0 {
		panic("pagestore: SetBaseEpoch on a store with history")
	}
	base := published + 1
	for _, ch := range s.chains {
		for _, v := range ch.versions {
			v.epoch = base
		}
	}
	s.current = published
	s.writer = base
}

// CurrentPages visits the current bytes of every live page in ascending
// page ID order. The bytes come from the in-memory version chains (the
// last version of a chain always mirrors the inner store), so the walk
// performs no inner-store I/O and leaves the physical counters — the
// paper's metric — untouched. The caller must serialize with the
// writer; the data slice is only valid during the callback.
func (s *VersionedStore) CurrentPages(fn func(id PageID, data []byte) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	ids := make([]PageID, 0, len(s.chains))
	for id, ch := range s.chains {
		if ch.freedAt == 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ch := s.chains[id]
		if err := fn(id, ch.versions[len(ch.versions)-1].data); err != nil {
			return err
		}
	}
	return nil
}

// Publish seals the epoch under construction and returns it: every
// write so far becomes visible to subsequently acquired snapshots, and
// history no snapshot can observe any more is reclaimed.
func (s *VersionedStore) Publish() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.current = s.writer
	s.writer++
	s.reclaimLocked()
	return s.current
}

// Published returns the latest published epoch (0 before the first
// Publish).
func (s *VersionedStore) Published() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.current
}

// Acquire pins the latest published epoch and returns a read view on
// it. Must be serialized with the writer (see the concurrency
// contract); the returned Snapshot is then free-threaded.
func (s *VersionedStore) Acquire() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readers[s.current]++
	return &Snapshot{store: s, epoch: s.current}
}

// reclaimLocked drops retired history that no live or future snapshot
// can observe: superseded versions are pruned and tombstoned pages are
// physically freed. minRef is the oldest epoch still reachable — the
// oldest pinned snapshot, or the published epoch (the pin point of the
// next Acquire) when none is live.
func (s *VersionedStore) reclaimLocked() {
	minRef := s.current
	for pinned := range s.readers {
		if pinned < minRef {
			minRef = pinned
		}
	}
	i := 0
	for ; i < len(s.retired); i++ {
		r := s.retired[i]
		if r.epoch > minRef {
			break
		}
		ch := s.chains[r.id]
		if ch == nil {
			continue
		}
		if ch.freedAt != 0 && ch.freedAt <= minRef {
			delete(s.chains, r.id)
			if !s.closed {
				// Inner Free only fails on a missing page, which the
				// chain map rules out.
				_ = s.inner.Free(r.id)
			}
			continue
		}
		// Keep the newest version at or before minRef plus everything
		// newer; older versions can no longer be resolved by anyone.
		keep := 0
		for j, v := range ch.versions {
			if v.epoch <= minRef {
				keep = j
			}
		}
		if keep > 0 {
			ch.versions = append([]*pageVersion(nil), ch.versions[keep:]...)
		}
	}
	if i > 0 {
		s.retired = append(s.retired[:0], s.retired[i:]...)
	}
}

// VersionedStats is a point-in-time census of the version store, used
// by leak checks: after every snapshot is released (and the following
// publish), TotalVersions must equal LivePages and RetiredQueue must be
// empty.
type VersionedStats struct {
	LivePages     int    // chains not tombstoned
	TotalVersions int    // page versions retained across all chains
	RetiredQueue  int    // pages queued for reclamation
	LiveSnapshots int    // acquired and not yet released
	Writer        uint64 // epoch under construction
	Published     uint64 // latest sealed epoch
}

// DebugStats returns the current census.
func (s *VersionedStore) DebugStats() VersionedStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := VersionedStats{RetiredQueue: len(s.retired), Writer: s.writer, Published: s.current}
	for _, ch := range s.chains {
		if ch.freedAt == 0 {
			st.LivePages++
		}
		st.TotalVersions += len(ch.versions)
	}
	for _, n := range s.readers {
		st.LiveSnapshots += n
	}
	return st
}

// Snapshot is an immutable read view of a VersionedStore pinned to one
// published epoch. It is safe for concurrent use and remains valid —
// including after the store is closed — until Release is called.
// Reads are served from retained version buffers and counted on the
// snapshot's own counters, never on the writer's I/O metric.
type Snapshot struct {
	store    *VersionedStore
	epoch    uint64
	released atomic.Bool
	reads    atomic.Int64 // page resolutions served
	decodes  atomic.Int64 // cold decodes performed (GetDecoded misses)
}

// Epoch returns the published epoch this snapshot pins.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// PageSize returns the page size of the underlying store.
func (sn *Snapshot) PageSize() int { return sn.store.inner.PageSize() }

// Reads returns the number of page resolutions this snapshot served
// (the read view's logical I/O).
func (sn *Snapshot) Reads() int64 { return sn.reads.Load() }

// Decodes returns how many GetDecoded calls had to parse page bytes
// (cold reads); the rest were served from the per-version decoded
// cache.
func (sn *Snapshot) Decodes() int64 { return sn.decodes.Load() }

// resolve finds the newest version of a page visible at the snapshot's
// epoch.
func (sn *Snapshot) resolve(id PageID) (*pageVersion, error) {
	if sn.released.Load() {
		return nil, fmt.Errorf("pagestore: snapshot at epoch %d already released", sn.epoch)
	}
	sn.store.mu.RLock()
	defer sn.store.mu.RUnlock()
	ch := sn.store.chains[id]
	if ch == nil || (ch.freedAt != 0 && ch.freedAt <= sn.epoch) {
		return nil, fmt.Errorf("%w: %d at epoch %d", ErrPageNotFound, id, sn.epoch)
	}
	var best *pageVersion
	for _, v := range ch.versions {
		if v.epoch <= sn.epoch {
			best = v
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %d at epoch %d", ErrPageNotFound, id, sn.epoch)
	}
	return best, nil
}

// ReadPage copies the page bytes as of the snapshot's epoch into buf.
func (sn *Snapshot) ReadPage(id PageID, buf []byte) error {
	v, err := sn.resolve(id)
	if err != nil {
		return err
	}
	sn.reads.Add(1)
	copy(buf, v.data)
	return nil
}

// GetDecoded returns the decoded form of a page as of the snapshot's
// epoch, parsing it at most once per retained version: the bytes of a
// resolvable version are immutable (the writer copies-on-write instead
// of touching anything a snapshot can observe), so the decode runs
// outside every lock and its result is shared by all snapshots that
// resolve the same version. The returned object must be treated as
// immutable; it stays valid even after the snapshot is released.
func (sn *Snapshot) GetDecoded(id PageID, decode func(PageID, []byte) (any, error)) (any, error) {
	v, err := sn.resolve(id)
	if err != nil {
		return nil, err
	}
	sn.reads.Add(1)
	if d := v.decoded.Load(); d != nil {
		return d.obj, nil
	}
	obj, err := decode(id, v.data)
	if err != nil {
		return nil, err
	}
	sn.decodes.Add(1)
	boxed := &decodedObj{obj: obj}
	if !v.decoded.CompareAndSwap(nil, boxed) {
		// A concurrent reader decoded first; share its object.
		if d := v.decoded.Load(); d != nil {
			return d.obj, nil
		}
	}
	return obj, nil
}

// Release unpins the snapshot's epoch; the last release of an epoch
// triggers reclamation of the history only that epoch kept alive.
// Release is idempotent and safe concurrently with other snapshots.
func (sn *Snapshot) Release() {
	if !sn.released.CompareAndSwap(false, true) {
		return
	}
	s := sn.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.readers[sn.epoch]; n <= 1 {
		delete(s.readers, sn.epoch)
	} else {
		s.readers[sn.epoch] = n - 1
	}
	s.reclaimLocked()
}
