package pagestore

import (
	"encoding/binary"
	"testing"
)

// decodeCounter is a decode hook that tallies invocations and returns the
// page's first 8 bytes as a uint64, so staleness is observable.
type decodeCounter struct{ calls int }

func (d *decodeCounter) decode(_ PageID, data []byte) (any, error) {
	d.calls++
	return binary.LittleEndian.Uint64(data), nil
}

func putU64(t *testing.T, b *BufferPool, id PageID, v uint64) {
	t.Helper()
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, v)
	if err := b.Put(id, buf); err != nil {
		t.Fatalf("Put(%d): %v", id, err)
	}
}

func newDecodedPool(t *testing.T, capacity, pages int) (*BufferPool, []PageID) {
	t.Helper()
	store := NewMemStore(64)
	pool := NewBufferPool(store, capacity)
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := store.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		ids[i] = id
	}
	return pool, ids
}

func TestGetDecodedCachesPerResidency(t *testing.T) {
	pool, ids := newDecodedPool(t, 4, 1)
	putU64(t, pool, ids[0], 7)
	var d decodeCounter
	for i := 0; i < 5; i++ {
		v, err := pool.GetDecoded(ids[0], d.decode)
		if err != nil {
			t.Fatalf("GetDecoded: %v", err)
		}
		if v.(uint64) != 7 {
			t.Fatalf("decoded %v, want 7", v)
		}
	}
	if d.calls != 1 {
		t.Fatalf("decode ran %d times over 5 warm reads, want 1", d.calls)
	}
}

func TestGetDecodedInvalidatedByPut(t *testing.T) {
	pool, ids := newDecodedPool(t, 4, 1)
	putU64(t, pool, ids[0], 1)
	var d decodeCounter
	if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
		t.Fatal(err)
	}
	putU64(t, pool, ids[0], 2)
	v, err := pool.GetDecoded(ids[0], d.decode)
	if err != nil {
		t.Fatal(err)
	}
	if v.(uint64) != 2 {
		t.Fatalf("stale decoded node after Put: got %v, want 2", v)
	}
	if d.calls != 2 {
		t.Fatalf("decode calls = %d, want 2 (re-decode after write)", d.calls)
	}
}

func TestGetDecodedInvalidatedByEviction(t *testing.T) {
	pool, ids := newDecodedPool(t, 1, 2)
	putU64(t, pool, ids[0], 10)
	putU64(t, pool, ids[1], 20)
	var d decodeCounter
	if _, err := pool.GetDecoded(ids[0], d.decode); err != nil { // evicts ids[1]
		t.Fatal(err)
	}
	if _, err := pool.GetDecoded(ids[1], d.decode); err != nil { // evicts ids[0]
		t.Fatal(err)
	}
	if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
		t.Fatal(err)
	}
	if d.calls != 3 {
		t.Fatalf("decode calls = %d, want 3 (every access re-decodes after eviction)", d.calls)
	}
}

func TestGetDecodedInvalidatedByInvalidate(t *testing.T) {
	pool, ids := newDecodedPool(t, 4, 1)
	putU64(t, pool, ids[0], 5)
	var d decodeCounter
	if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
		t.Fatal(err)
	}
	pool.Invalidate(ids[0])
	// Write new bytes directly to the store (as a re-allocation would) and
	// verify the decoded tier does not serve the old object.
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, 6)
	if err := pool.Store().WritePage(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	v, err := pool.GetDecoded(ids[0], d.decode)
	if err != nil {
		t.Fatal(err)
	}
	if v.(uint64) != 6 {
		t.Fatalf("stale decoded node after Invalidate: got %v, want 6", v)
	}
}

func TestPinRetainsDecodedAcrossEviction(t *testing.T) {
	pool, ids := newDecodedPool(t, 1, 2)
	putU64(t, pool, ids[0], 30)
	putU64(t, pool, ids[1], 40)
	pool.Pin(ids[0])
	var d decodeCounter
	if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.GetDecoded(ids[1], d.decode); err != nil { // evicts ids[0]
		t.Fatal(err)
	}
	before := pool.Store().IO().Snapshot()
	v, err := pool.GetDecoded(ids[0], d.decode)
	if err != nil {
		t.Fatal(err)
	}
	after := pool.Store().IO().Snapshot()
	if v.(uint64) != 30 {
		t.Fatalf("pinned decode = %v, want 30", v)
	}
	if d.calls != 2 {
		t.Fatalf("decode calls = %d, want 2 (pinned object reused after eviction)", d.calls)
	}
	// Pinning must not hide the physical re-read.
	if got := after.PhysicalReads - before.PhysicalReads; got != 1 {
		t.Fatalf("physical reads for pinned re-access = %d, want 1", got)
	}

	// A write still invalidates the pinned object.
	putU64(t, pool, ids[0], 31)
	v, err = pool.GetDecoded(ids[0], d.decode)
	if err != nil {
		t.Fatal(err)
	}
	if v.(uint64) != 31 {
		t.Fatalf("stale pinned node after Put: got %v, want 31", v)
	}

	pool.Unpin(ids[0])
	putU64(t, pool, ids[1], 41) // evict ids[0] again
	d.calls = 0
	if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
		t.Fatal(err)
	}
	if d.calls != 1 {
		t.Fatalf("decode calls after Unpin+eviction = %d, want 1 (retention dropped)", d.calls)
	}
}

// TestGetDecodedIOEquivalence drives an identical access sequence through
// Get and GetDecoded on twin pools and asserts the I/O counters match
// exactly: the decoded tier must be invisible to the paper's metrics.
func TestGetDecodedIOEquivalence(t *testing.T) {
	const pages = 8
	mk := func() (*BufferPool, []PageID) {
		pool, ids := newDecodedPool(t, 3, pages)
		for i, id := range ids {
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, uint64(i))
			if err := pool.Put(id, buf); err != nil {
				t.Fatal(err)
			}
		}
		return pool, ids
	}
	byteP, byteIDs := mk()
	decP, decIDs := mk()
	var d decodeCounter
	seq := []int{0, 1, 2, 0, 3, 4, 0, 1, 5, 6, 7, 0, 2, 2, 1}
	for _, i := range seq {
		if _, err := byteP.Get(byteIDs[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := decP.GetDecoded(decIDs[i], d.decode); err != nil {
			t.Fatal(err)
		}
	}
	b, g := byteP.Store().IO().Snapshot(), decP.Store().IO().Snapshot()
	if b != g {
		t.Fatalf("I/O diverged: Get=%+v GetDecoded=%+v", b, g)
	}
}

func TestSetDecodedCacheDisables(t *testing.T) {
	pool, ids := newDecodedPool(t, 4, 1)
	putU64(t, pool, ids[0], 9)
	pool.SetDecodedCache(false)
	var d decodeCounter
	for i := 0; i < 3; i++ {
		if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
			t.Fatal(err)
		}
	}
	if d.calls != 3 {
		t.Fatalf("decode calls with cache disabled = %d, want 3", d.calls)
	}
	pool.SetDecodedCache(true)
	for i := 0; i < 3; i++ {
		if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
			t.Fatal(err)
		}
	}
	if d.calls != 4 {
		t.Fatalf("decode calls after re-enable = %d, want 4", d.calls)
	}
}

func TestClearDropsUnpinnedDecoded(t *testing.T) {
	pool, ids := newDecodedPool(t, 4, 1)
	putU64(t, pool, ids[0], 3)
	var d decodeCounter
	if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
		t.Fatal(err)
	}
	if err := pool.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.GetDecoded(ids[0], d.decode); err != nil {
		t.Fatal(err)
	}
	if d.calls != 2 {
		t.Fatalf("decode calls after Clear = %d, want 2", d.calls)
	}
}
