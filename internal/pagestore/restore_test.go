package pagestore

import (
	"sort"
	"testing"
)

func TestSetBaseEpoch(t *testing.T) {
	vs := newVersionedMem(t, 128)
	id, _ := vs.Allocate()
	writeByte(t, vs, id, 1)
	vs.SetBaseEpoch(41) // rebase before the first publish
	if got := vs.Publish(); got != 42 {
		t.Fatalf("publish after rebase = %d, want 42", got)
	}
	snap := vs.Acquire()
	defer snap.Release()
	if e := snap.Epoch(); e != 42 {
		t.Fatalf("snapshot epoch = %d", e)
	}
	if b := readByte(t, snap.ReadPage, vs.PageSize(), id); b != 1 {
		t.Fatalf("page byte = %d", b)
	}
}

func TestSetBaseEpochPanicsAfterPublish(t *testing.T) {
	vs := newVersionedMem(t, 128)
	vs.Publish()
	defer func() {
		if recover() == nil {
			t.Fatal("SetBaseEpoch after Publish did not panic")
		}
	}()
	vs.SetBaseEpoch(7)
}

func TestCurrentPages(t *testing.T) {
	vs := newVersionedMem(t, 128)
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := vs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		writeByte(t, vs, id, byte(i+1))
	}
	// Free one in the middle: it must not be imaged.
	if err := vs.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	vs.Publish()
	// Overwrite a page after publish: CurrentPages must see the newest
	// bytes, not the published ones.
	writeByte(t, vs, ids[0], 99)

	got := map[PageID]byte{}
	var order []PageID
	err := vs.CurrentPages(func(id PageID, data []byte) error {
		got[id] = data[0]
		order = append(order, id)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("imaged %d pages, want 4", len(got))
	}
	if _, ok := got[ids[2]]; ok {
		t.Fatal("freed page imaged")
	}
	if got[ids[0]] != 99 {
		t.Fatalf("stale bytes for rewritten page: %d", got[ids[0]])
	}
	if got[ids[4]] != 5 {
		t.Fatalf("page %d byte = %d", ids[4], got[ids[4]])
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("pages not visited in ascending ID order: %v", order)
	}
	// The walk is read-only: physical I/O counters stay untouched.
	if io := vs.IO().Snapshot(); io.PhysicalReads != 0 {
		t.Fatalf("CurrentPages issued %d physical reads", io.PhysicalReads)
	}
}
