package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newVersionedMem(t *testing.T, pageSize int) *VersionedStore {
	t.Helper()
	return NewVersioned(NewMemStore(pageSize))
}

func writeByte(t *testing.T, s Store, id PageID, b byte) {
	t.Helper()
	data := make([]byte, s.PageSize())
	for i := range data {
		data[i] = b
	}
	if err := s.WritePage(id, data); err != nil {
		t.Fatalf("WritePage(%d, %x): %v", id, b, err)
	}
}

func readByte(t *testing.T, read func(PageID, []byte) error, ps int, id PageID) byte {
	t.Helper()
	buf := make([]byte, ps)
	if err := read(id, buf); err != nil {
		t.Fatalf("ReadPage(%d): %v", id, err)
	}
	for _, b := range buf[1:] {
		if b != buf[0] {
			t.Fatalf("page %d not uniform: %x vs %x", id, buf[0], b)
		}
	}
	return buf[0]
}

// A snapshot keeps reading the bytes of its epoch while the writer
// overwrites and publishes beyond it; a snapshot taken afterwards sees
// the new bytes.
func TestVersionedSnapshotIsolation(t *testing.T) {
	vs := newVersionedMem(t, 128)
	id, err := vs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	writeByte(t, vs, id, 0xA1)
	vs.Publish()
	s1 := vs.Acquire()
	defer s1.Release()

	writeByte(t, vs, id, 0xB2)
	vs.Publish()
	s2 := vs.Acquire()
	defer s2.Release()

	writeByte(t, vs, id, 0xC3) // unpublished writer epoch

	if got := readByte(t, s1.ReadPage, vs.PageSize(), id); got != 0xA1 {
		t.Fatalf("snapshot 1 reads %x, want A1", got)
	}
	if got := readByte(t, s2.ReadPage, vs.PageSize(), id); got != 0xB2 {
		t.Fatalf("snapshot 2 reads %x, want B2", got)
	}
	if got := readByte(t, vs.ReadPage, vs.PageSize(), id); got != 0xC3 {
		t.Fatalf("writer reads %x, want C3", got)
	}
}

// With serialized acquisition and no live snapshot the store recycles
// versions in place: no history accumulates and nothing is ever
// retired, no matter how many epochs are published.
func TestVersionedNoSnapshotNoHistory(t *testing.T) {
	vs := newVersionedMem(t, 128)
	vs.SetSerializedAcquire(true)
	id, err := vs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	retiredSeen := 0
	for i := 0; i < 10; i++ {
		writeByte(t, vs, id, byte(i+1))
		retiredSeen += vs.DebugStats().RetiredQueue
		vs.Publish()
	}
	st := vs.DebugStats()
	if st.TotalVersions != 1 || st.RetiredQueue != 0 || retiredSeen != 0 {
		t.Fatalf("history accumulated without snapshots: %+v (retired seen %d)", st, retiredSeen)
	}
}

// Releasing the last snapshot of an epoch reclaims the versions and
// tombstoned pages only it observed; page IDs become reusable.
func TestVersionedReclamation(t *testing.T) {
	vs := newVersionedMem(t, 128)
	a, _ := vs.Allocate()
	b, _ := vs.Allocate()
	writeByte(t, vs, a, 0x01)
	writeByte(t, vs, b, 0x02)
	vs.Publish()
	snap := vs.Acquire()

	// New epoch: overwrite a (COW) and free b (tombstone).
	writeByte(t, vs, a, 0x11)
	if err := vs.Free(b); err != nil {
		t.Fatalf("Free(%d): %v", b, err)
	}
	vs.Publish()

	st := vs.DebugStats()
	if st.TotalVersions != 3 { // a: old+new, b: tombstoned original
		t.Fatalf("want 3 retained versions, got %+v", st)
	}
	if got := readByte(t, snap.ReadPage, vs.PageSize(), b); got != 0x02 {
		t.Fatalf("snapshot lost freed page: %x", got)
	}
	if err := vs.ReadPage(b, make([]byte, vs.PageSize())); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("writer still sees freed page: %v", err)
	}
	if vs.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", vs.NumPages())
	}

	snap.Release()
	st = vs.DebugStats()
	if st.LivePages != 1 || st.TotalVersions != 1 || st.RetiredQueue != 0 || st.LiveSnapshots != 0 {
		t.Fatalf("release did not reclaim: %+v", st)
	}
	// The reclaimed ID is reusable.
	c, err := vs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c != b {
		t.Logf("allocator returned %d (old id %d) — reuse not required, only allowed", c, b)
	}
}

// A page allocated and freed in the same unpublished epoch vanishes
// immediately even while older snapshots are live.
func TestVersionedEphemeralPage(t *testing.T) {
	vs := newVersionedMem(t, 128)
	vs.Publish()
	snap := vs.Acquire()
	defer snap.Release()
	id, _ := vs.Allocate()
	if err := vs.Free(id); err != nil {
		t.Fatal(err)
	}
	st := vs.DebugStats()
	if st.LivePages != 0 || st.TotalVersions != 0 {
		t.Fatalf("ephemeral page retained: %+v", st)
	}
	if err := snap.ReadPage(id, make([]byte, vs.PageSize())); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("old snapshot sees page from a later epoch: %v", err)
	}
}

// GetDecoded parses a version at most once, shares the result across
// snapshots of the same epoch, and re-parses after the bytes change in
// a new epoch.
func TestVersionedDecodedCache(t *testing.T) {
	vs := newVersionedMem(t, 128)
	id, _ := vs.Allocate()
	writeByte(t, vs, id, 0x07)
	vs.Publish()
	s1 := vs.Acquire()
	s2 := vs.Acquire()
	defer s1.Release()
	defer s2.Release()

	decodes := 0
	decode := func(_ PageID, data []byte) (any, error) {
		decodes++
		return fmt.Sprintf("page-%x", data[0]), nil
	}
	for i := 0; i < 3; i++ {
		for _, sn := range []*Snapshot{s1, s2} {
			obj, err := sn.GetDecoded(id, decode)
			if err != nil {
				t.Fatal(err)
			}
			if obj.(string) != "page-7" {
				t.Fatalf("decoded %v", obj)
			}
		}
	}
	if decodes != 1 {
		t.Fatalf("decode ran %d times, want 1", decodes)
	}
	if s1.Decodes()+s2.Decodes() != 1 || s1.Reads()+s2.Reads() != 6 {
		t.Fatalf("snapshot counters off: decodes %d/%d reads %d/%d",
			s1.Decodes(), s2.Decodes(), s1.Reads(), s2.Reads())
	}

	writeByte(t, vs, id, 0x08)
	vs.Publish()
	s3 := vs.Acquire()
	defer s3.Release()
	obj, err := s3.GetDecoded(id, decode)
	if err != nil {
		t.Fatal(err)
	}
	if obj.(string) != "page-8" || decodes != 2 {
		t.Fatalf("new epoch decoded %v after %d decodes", obj, decodes)
	}
}

// Snapshots stay fully readable after the store is closed.
func TestVersionedSnapshotSurvivesClose(t *testing.T) {
	vs := newVersionedMem(t, 128)
	id, _ := vs.Allocate()
	writeByte(t, vs, id, 0x55)
	vs.Publish()
	snap := vs.Acquire()
	defer snap.Release()
	if err := vs.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readByte(t, snap.ReadPage, vs.PageSize(), id); got != 0x55 {
		t.Fatalf("post-close snapshot read %x", got)
	}
	if _, err := vs.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Allocate after Close: %v", err)
	}
}

// Writer I/O accounting is transparent: a versioned store performs
// exactly the same physical reads and writes as the bare inner store
// under identical traffic, with or without snapshot readers attached.
func TestVersionedIOTransparent(t *testing.T) {
	traffic := func(s Store) {
		var ids []PageID
		for i := 0; i < 8; i++ {
			id, _ := s.Allocate()
			ids = append(ids, id)
			data := make([]byte, s.PageSize())
			data[0] = byte(i)
			s.WritePage(id, data)
		}
		buf := make([]byte, s.PageSize())
		for _, id := range ids {
			s.ReadPage(id, buf)
		}
		s.Free(ids[3])
	}
	plain := NewMemStore(128)
	traffic(plain)
	vs := newVersionedMem(t, 128)
	traffic(vs)
	// Interleave snapshot churn with a second pass; reader traffic must
	// not show up on the writer counter.
	vs.Publish()
	snap := vs.Acquire()
	snap.GetDecoded(0, func(_ PageID, d []byte) (any, error) { return d[0], nil })
	snap.Release()
	if p, v := plain.IO().Snapshot(), vs.IO().Snapshot(); p != v {
		t.Fatalf("I/O diverged: plain %+v vs versioned %+v", p, v)
	}
}

// Concurrent snapshot readers against a publishing writer — run under
// -race. Readers verify they always observe the uniform page fill of
// their own epoch, never a torn or later image.
func TestVersionedConcurrentReaders(t *testing.T) {
	vs := newVersionedMem(t, 256)
	id, _ := vs.Allocate()
	writeByte(t, vs, id, 1)
	vs.Publish()

	const epochs = 200
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, vs.PageSize())
			for i := 0; i < epochs; i++ {
				snap := vs.Acquire()
				if err := snap.ReadPage(id, buf); err != nil {
					t.Errorf("reader: %v", err)
					snap.Release()
					return
				}
				if !bytes.Equal(buf, bytes.Repeat([]byte{buf[0]}, len(buf))) {
					t.Errorf("torn read at epoch %d", snap.Epoch())
				}
				if _, err := snap.GetDecoded(id, func(_ PageID, d []byte) (any, error) { return d[0], nil }); err != nil {
					t.Errorf("decode: %v", err)
				}
				snap.Release()
			}
		}()
	}
	for i := 2; i <= epochs; i++ {
		writeByte(t, vs, id, byte(i%251)+1)
		vs.Publish()
	}
	wg.Wait()
	// After all readers drop, a publish leaves exactly one version.
	vs.Publish()
	if st := vs.DebugStats(); st.TotalVersions != 1 || st.RetiredQueue != 0 {
		t.Fatalf("history leaked: %+v", st)
	}
}
