// Package pagestore simulates the disk layer of the paper's experimental
// setup: fixed-size pages (4 KB by default), a page store that counts every
// physical read/write, and an LRU buffer pool (2 % of the index size by
// default) through which all index traversal is routed. The paper's "I/O
// accesses" metric equals the number of buffer misses.
//
// Two Store implementations are provided: MemStore keeps page images in
// memory but accounts for them as if they were on disk (fast,
// deterministic — used by all experiments), and FileStore persists pages
// in a real file (used to validate the on-disk format).
package pagestore

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"fairassign/internal/metrics"
)

// DefaultPageSize matches the paper's 4 KB page configuration.
const DefaultPageSize = 4096

// PageID identifies a page within a store. Zero is a valid page; InvalidPage
// marks "no page".
type PageID int64

// InvalidPage is the sentinel for a missing page reference.
const InvalidPage PageID = -1

// Common errors returned by stores.
var (
	ErrPageNotFound = errors.New("pagestore: page not found")
	ErrPageSize     = errors.New("pagestore: data exceeds page size")
	ErrClosed       = errors.New("pagestore: store closed")
)

// Store is the physical page layer. Every ReadPage/WritePage counts as one
// physical I/O in the attached counter.
type Store interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Allocate reserves a new page and returns its ID.
	Allocate() (PageID, error)
	// ReadPage fills buf (len == PageSize) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores data (len <= PageSize) into the page.
	WritePage(id PageID, data []byte) error
	// Free releases a page for reuse.
	Free(id PageID) error
	// NumPages returns the number of live (allocated, not freed) pages.
	NumPages() int
	// IO exposes the physical I/O counter.
	IO() *metrics.IOCounter
	// Close releases resources.
	Close() error
}

// MemStore is an in-memory Store that simulates a disk: page images live
// in RAM, but every access is tallied as a physical I/O. This reproduces
// the paper's I/O-access metric without real disk latency.
type MemStore struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID
	next     PageID
	io       metrics.IOCounter
	closed   bool
}

// NewMemStore returns a simulated-disk store with the given page size
// (DefaultPageSize if pageSize <= 0).
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemStore{pageSize: pageSize, pages: make(map[PageID][]byte)}
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

// Allocate implements Store.
func (s *MemStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return InvalidPage, ErrClosed
	}
	var id PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
	}
	s.pages[id] = make([]byte, s.pageSize)
	return id, nil
}

// ReadPage implements Store.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	s.io.IncPhysicalRead()
	copy(buf, p)
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id PageID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(data) > s.pageSize {
		return ErrPageSize
	}
	p, ok := s.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	s.io.IncPhysicalWrite()
	copy(p, data)
	for i := len(data); i < s.pageSize; i++ {
		p[i] = 0
	}
	return nil
}

// Free implements Store.
func (s *MemStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.pages[id]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	delete(s.pages, id)
	s.free = append(s.free, id)
	return nil
}

// NumPages implements Store.
func (s *MemStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// IO implements Store.
func (s *MemStore) IO() *metrics.IOCounter { return &s.io }

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.pages = nil
	return nil
}

// FileStore persists pages in a single OS file. It validates that the page
// codecs round-trip through real storage; experiments use MemStore.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int
	free     []PageID
	next     PageID
	io       metrics.IOCounter
	closed   bool
}

// NewFileStore creates (truncating) a file-backed store at path.
func NewFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", path, err)
	}
	return &FileStore{f: f, pageSize: pageSize}, nil
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.pageSize }

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return InvalidPage, ErrClosed
	}
	var id PageID
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		id = s.next
		s.next++
		if err := s.f.Truncate(int64(s.next) * int64(s.pageSize)); err != nil {
			return InvalidPage, fmt.Errorf("pagestore: grow file: %w", err)
		}
	}
	s.numPages++
	return id, nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if id < 0 || id >= s.next {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	s.io.IncPhysicalRead()
	_, err := s.f.ReadAt(buf[:s.pageSize], int64(id)*int64(s.pageSize))
	if err != nil {
		return fmt.Errorf("pagestore: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(data) > s.pageSize {
		return ErrPageSize
	}
	if id < 0 || id >= s.next {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	s.io.IncPhysicalWrite()
	page := make([]byte, s.pageSize)
	copy(page, data)
	if _, err := s.f.WriteAt(page, int64(id)*int64(s.pageSize)); err != nil {
		return fmt.Errorf("pagestore: write page %d: %w", id, err)
	}
	return nil
}

// Free implements Store.
func (s *FileStore) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if id < 0 || id >= s.next {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	s.free = append(s.free, id)
	s.numPages--
	return nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.numPages
}

// IO implements Store.
func (s *FileStore) IO() *metrics.IOCounter { return &s.io }

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
