package pagestore

import (
	"sync"
	"testing"
)

// TestBufferPoolConcurrentAccess hammers one pool from many goroutines;
// run with -race to verify the locking discipline.
func TestBufferPoolConcurrentAccess(t *testing.T) {
	store := NewMemStore(64)
	pool := NewBufferPool(store, 4)
	var ids []PageID
	for i := 0; i < 16; i++ {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(g*31+i)%len(ids)]
				if i%3 == 0 {
					if err := pool.Put(id, []byte{byte(g)}); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := pool.Get(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestMemStoreConcurrentAllocate checks allocation under contention.
func TestMemStoreConcurrentAllocate(t *testing.T) {
	store := NewMemStore(64)
	var wg sync.WaitGroup
	seen := make([]PageID, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id, err := store.Allocate()
				if err != nil {
					t.Error(err)
					return
				}
				seen[g*8+i] = id
			}
		}(g)
	}
	wg.Wait()
	unique := map[PageID]bool{}
	for _, id := range seen {
		if unique[id] {
			t.Fatalf("page %d allocated twice", id)
		}
		unique[id] = true
	}
}
