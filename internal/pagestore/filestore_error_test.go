package pagestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
)

// TestFileStoreReadOnlyDir asserts creation in an unwritable directory
// fails with a wrapped OS error instead of a panic or a half-made store.
func TestFileStoreReadOnlyDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("permission checks do not bind root")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	s, err := NewFileStore(filepath.Join(dir, "s.pag"), 256)
	if err == nil {
		s.Close()
		t.Fatal("NewFileStore in read-only directory succeeded")
	}
	if !errors.Is(err, os.ErrPermission) {
		t.Fatalf("error = %v, want wrapped os.ErrPermission", err)
	}
}

// TestFileStoreDoubleClose asserts Close is idempotent and every
// operation after it fails with the typed ErrClosed.
func TestFileStoreDoubleClose(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "s.pag"), 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Allocate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Allocate after Close = %v, want ErrClosed", err)
	}
	buf := make([]byte, 256)
	if err := s.ReadPage(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadPage after Close = %v, want ErrClosed", err)
	}
	if err := s.WritePage(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("WritePage after Close = %v, want ErrClosed", err)
	}
	if err := s.Free(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Free after Close = %v, want ErrClosed", err)
	}
}

// TestFileStoreTypedErrors covers the validation rejections: unknown
// page IDs and oversized payloads must fail typed, and a rejected
// operation must not disturb data already on disk.
func TestFileStoreTypedErrors(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "s.pag"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5A}, 64)
	if err := s.WritePage(id, want); err != nil {
		t.Fatal(err)
	}

	if err := s.ReadPage(id+1, make([]byte, 64)); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("ReadPage unknown = %v, want ErrPageNotFound", err)
	}
	if err := s.WritePage(id+1, want); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("WritePage unknown = %v, want ErrPageNotFound", err)
	}
	if err := s.Free(id + 1); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("Free unknown = %v, want ErrPageNotFound", err)
	}
	if err := s.WritePage(id, make([]byte, 65)); !errors.Is(err, ErrPageSize) {
		t.Fatalf("oversized WritePage = %v, want ErrPageSize", err)
	}

	got := make([]byte, 64)
	if err := s.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("rejected operations corrupted the stored page")
	}
}

// TestFileStoreENOSPC drives WritePage into a real out-of-space error
// (/dev/full fails every write with ENOSPC): the error must wrap the
// OS cause, and the store must stay usable — not panic, not poison —
// so the workspace layer above can decide what to do.
func TestFileStoreENOSPC(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/dev/full is Linux-specific")
	}
	f, err := os.OpenFile("/dev/full", os.O_RDWR, 0)
	if err != nil {
		t.Skipf("open /dev/full: %v", err)
	}
	s := &FileStore{f: f, pageSize: 512, next: 1, numPages: 1}
	defer s.Close()
	err = s.WritePage(0, bytes.Repeat([]byte{1}, 512))
	if err == nil {
		t.Fatal("WritePage to /dev/full succeeded")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("error = %v, want wrapped ENOSPC", err)
	}
	// The store is not poisoned by a full disk: metadata operations and
	// further attempts still answer with errors, not panics.
	if err := s.Free(0); err != nil {
		t.Fatalf("Free after ENOSPC: %v", err)
	}
	if got := s.NumPages(); got != 0 {
		t.Fatalf("NumPages = %d, want 0", got)
	}
}

// TestFileStoreShortRead asserts a read hitting a truncated backing
// file (external interference) returns a wrapped error rather than
// serving a partial page, and that rewriting the page heals it.
func TestFileStoreShortRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.pag")
	s, err := NewFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xC3}, 128)
	if err := s.WritePage(id, want); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 16); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadPage(id, make([]byte, 128)); err == nil {
		t.Fatal("ReadPage served a page from a truncated file")
	}
	if err := s.WritePage(id, want); err != nil {
		t.Fatalf("rewrite after truncation: %v", err)
	}
	got := make([]byte, 128)
	if err := s.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("healed page does not match the rewrite")
	}
}
