package pagestore

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

func testStoreRoundTrip(t *testing.T, s Store) {
	t.Helper()
	id, err := s.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := make([]byte, s.PageSize())
	for i := range want {
		want[i] = byte(i % 251)
	}
	if err := s.WritePage(id, want); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, s.PageSize())
	if err := s.ReadPage(id, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page contents did not round-trip")
	}
}

func TestMemStoreRoundTrip(t *testing.T) { testStoreRoundTrip(t, NewMemStore(512)) }
func TestFileStoreRoundTrip(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "pages.db"), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testStoreRoundTrip(t, s)
}

func TestMemStoreShortWriteZeroPads(t *testing.T) {
	s := NewMemStore(64)
	id, _ := s.Allocate()
	if err := s.WritePage(id, bytes.Repeat([]byte{0xff}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(id, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := s.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 0 || buf[63] != 0 {
		t.Fatalf("short write should zero-pad, got %v...", buf[:4])
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewMemStore(64)
	buf := make([]byte, 64)
	if err := s.ReadPage(42, buf); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("read missing page: %v, want ErrPageNotFound", err)
	}
	id, _ := s.Allocate()
	if err := s.WritePage(id, make([]byte, 65)); !errors.Is(err, ErrPageSize) {
		t.Errorf("oversized write: %v, want ErrPageSize", err)
	}
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadPage(id, buf); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("read freed page: %v, want ErrPageNotFound", err)
	}
	s.Close()
	if _, err := s.Allocate(); !errors.Is(err, ErrClosed) {
		t.Errorf("allocate after close: %v, want ErrClosed", err)
	}
}

func TestFreeReusesPages(t *testing.T) {
	s := NewMemStore(64)
	a, _ := s.Allocate()
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := s.Allocate()
	if a != b {
		t.Errorf("freed page not reused: got %d, want %d", b, a)
	}
	if s.NumPages() != 1 {
		t.Errorf("NumPages = %d, want 1", s.NumPages())
	}
}

func TestPhysicalIOCounting(t *testing.T) {
	s := NewMemStore(64)
	id, _ := s.Allocate()
	buf := make([]byte, 64)
	for i := 0; i < 3; i++ {
		if err := s.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WritePage(id, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if got := s.IO().PhysicalReads; got != 3 {
		t.Errorf("PhysicalReads = %d, want 3", got)
	}
	if got := s.IO().Accesses(); got != 4 {
		t.Errorf("Accesses = %d, want 4", got)
	}
}

func TestBufferPoolHitsAndMisses(t *testing.T) {
	s := NewMemStore(64)
	bp := NewBufferPool(s, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := s.Allocate()
		if err := s.WritePage(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.IO().Reset()

	// First touch: miss. Second touch: hit (no physical read).
	if _, err := bp.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := s.IO().PhysicalReads; got != 1 {
		t.Fatalf("after hit: PhysicalReads = %d, want 1", got)
	}
	if got := s.IO().LogicalReads; got != 2 {
		t.Fatalf("LogicalReads = %d, want 2", got)
	}

	// Fill pool beyond capacity; ids[0] becomes LRU victim.
	if _, err := bp.Get(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(ids[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(ids[0]); err != nil { // evicted → miss again
		t.Fatal(err)
	}
	if got := s.IO().PhysicalReads; got != 4 {
		t.Fatalf("after eviction: PhysicalReads = %d, want 4", got)
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	s := NewMemStore(64)
	bp := NewBufferPool(s, 2)
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	c, _ := s.Allocate()
	for _, id := range []PageID{a, b} {
		if _, err := bp.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is LRU; inserting c must evict b, not a.
	if _, err := bp.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(c); err != nil {
		t.Fatal(err)
	}
	s.IO().Reset()
	if _, err := bp.Get(a); err != nil {
		t.Fatal(err)
	}
	if got := s.IO().PhysicalReads; got != 0 {
		t.Errorf("a should still be cached, got %d physical reads", got)
	}
	if _, err := bp.Get(b); err != nil {
		t.Fatal(err)
	}
	if got := s.IO().PhysicalReads; got != 1 {
		t.Errorf("b should have been evicted, got %d physical reads", got)
	}
}

func TestBufferPoolWriteBack(t *testing.T) {
	s := NewMemStore(64)
	bp := NewBufferPool(s, 1)
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	if err := bp.Put(a, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if got := s.IO().PhysicalWrites; got != 0 {
		t.Fatalf("dirty page flushed too early: %d writes", got)
	}
	// Evict a by reading b: dirty a must be written back.
	if _, err := bp.Get(b); err != nil {
		t.Fatal(err)
	}
	if got := s.IO().PhysicalWrites; got != 1 {
		t.Fatalf("eviction should write back dirty page: %d writes", got)
	}
	buf := make([]byte, 64)
	if err := s.ReadPage(a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("written-back contents lost")
	}
}

func TestBufferPoolZeroCapacityIsWriteThrough(t *testing.T) {
	s := NewMemStore(64)
	bp := NewBufferPool(s, 0)
	a, _ := s.Allocate()
	if err := bp.Put(a, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if got := s.IO().PhysicalWrites; got != 1 {
		t.Fatalf("capacity-0 Put should write through, got %d", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := bp.Get(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.IO().PhysicalReads; got != 2 {
		t.Fatalf("capacity-0 Get should always miss, got %d reads", got)
	}
}

func TestBufferPoolFlushAndClear(t *testing.T) {
	s := NewMemStore(64)
	bp := NewBufferPool(s, 4)
	a, _ := s.Allocate()
	if err := bp.Put(a, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := s.ReadPage(a, buf); err != nil || buf[0] != 5 {
		t.Fatalf("flush did not persist page: %v %v", err, buf[0])
	}
	if err := bp.Clear(); err != nil {
		t.Fatal(err)
	}
	if bp.Len() != 0 {
		t.Errorf("Clear left %d frames", bp.Len())
	}
}

func TestBufferPoolResizeShrinkFlushes(t *testing.T) {
	s := NewMemStore(64)
	bp := NewBufferPool(s, 4)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, _ := s.Allocate()
		if err := bp.Put(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := bp.Resize(1); err != nil {
		t.Fatal(err)
	}
	if bp.Len() != 1 {
		t.Fatalf("Len after shrink = %d, want 1", bp.Len())
	}
	buf := make([]byte, 64)
	for i, id := range ids[:3] {
		if err := s.ReadPage(id, buf); err != nil || buf[0] != byte(i) {
			t.Fatalf("page %d lost on shrink", i)
		}
	}
}

func TestBufferPoolInvalidate(t *testing.T) {
	s := NewMemStore(64)
	bp := NewBufferPool(s, 4)
	a, _ := s.Allocate()
	if err := bp.Put(a, []byte{1}); err != nil {
		t.Fatal(err)
	}
	bp.Invalidate(a)
	if bp.Len() != 0 {
		t.Error("Invalidate should drop the frame")
	}
	// Dirty data intentionally lost; store still has zero page.
	buf := make([]byte, 64)
	if err := s.ReadPage(a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Error("Invalidate must not flush")
	}
}

func TestCapacityFromFraction(t *testing.T) {
	cases := []struct {
		pages int
		frac  float64
		want  int
	}{
		{1000, 0.02, 20},
		{1000, 0, 0},
		{10, 0.01, 1}, // rounds up to at least one page
		{1000, 0.10, 100},
	}
	for _, c := range cases {
		if got := CapacityFromFraction(c.pages, c.frac); got != c.want {
			t.Errorf("CapacityFromFraction(%d, %v) = %d, want %d", c.pages, c.frac, got, c.want)
		}
	}
}

func TestBufferPoolRandomizedAgainstDirectStore(t *testing.T) {
	// Model check: pool-mediated state must match a shadow map under a
	// random workload of puts/gets/evictions.
	rng := rand.New(rand.NewSource(99))
	s := NewMemStore(32)
	bp := NewBufferPool(s, 3)
	shadow := map[PageID]byte{}
	var ids []PageID
	for i := 0; i < 8; i++ {
		id, _ := s.Allocate()
		ids = append(ids, id)
		shadow[id] = 0
	}
	for step := 0; step < 2000; step++ {
		id := ids[rng.Intn(len(ids))]
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			if err := bp.Put(id, []byte{v}); err != nil {
				t.Fatal(err)
			}
			shadow[id] = v
		} else {
			data, err := bp.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != shadow[id] {
				t.Fatalf("step %d: page %d = %d, want %d", step, id, data[0], shadow[id])
			}
		}
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for id, v := range shadow {
		if err := s.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != v {
			t.Fatalf("after flush: page %d = %d, want %d", id, buf[0], v)
		}
	}
}

func TestFileStorePersistsAcrossLargeOffsets(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "big.db"), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var last PageID
	for i := 0; i < 100; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		last = id
	}
	if err := s.WritePage(last, []byte{0xab}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := s.ReadPage(last, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xab {
		t.Fatal("high-offset page lost")
	}
}
