package pagestore

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool is a write-back LRU page cache in front of a Store. All index
// traversal goes through the pool; a Get that finds the page cached is a
// pure memory access, while a miss triggers one physical read (and
// possibly one physical write to evict a dirty victim). Capacity 0 means
// "no buffering": every access is a miss, as in the paper's 0 % buffer
// experiment.
type BufferPool struct {
	mu       sync.Mutex
	store    Store
	capacity int
	frames   map[PageID]*list.Element
	lru      *list.List // front = most recently used
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBufferPool wraps store with an LRU cache holding up to capacity pages.
func NewBufferPool(store Store, capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// CapacityFromFraction sizes a buffer pool as a fraction of an index's
// page count, the way the paper expresses buffer sizes ("2 % of the tree
// size"). It always grants at least one page for fractions > 0.
func CapacityFromFraction(numPages int, frac float64) int {
	if frac <= 0 {
		return 0
	}
	c := int(frac * float64(numPages))
	if c < 1 {
		c = 1
	}
	return c
}

// Store returns the underlying physical store.
func (b *BufferPool) Store() Store { return b.store }

// Capacity returns the pool's frame count.
func (b *BufferPool) Capacity() int { return b.capacity }

// PageSize returns the page size of the underlying store.
func (b *BufferPool) PageSize() int { return b.store.PageSize() }

// Resize changes the pool capacity, evicting (and flushing) LRU victims if
// the pool shrinks.
func (b *BufferPool) Resize(capacity int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if capacity < 0 {
		capacity = 0
	}
	b.capacity = capacity
	for b.lru.Len() > b.capacity {
		if err := b.evictLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the contents of a page. The returned slice is owned by the
// pool and must not be retained across further pool calls; copy it if
// needed. The store's logical-read counter always advances; the physical
// counter advances only on a miss.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.store.IO().IncLogicalRead()
	if el, ok := b.frames[id]; ok {
		b.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	data := make([]byte, b.store.PageSize())
	if err := b.store.ReadPage(id, data); err != nil {
		return nil, err
	}
	if b.capacity == 0 {
		return data, nil
	}
	if err := b.insertLocked(&frame{id: id, data: data}); err != nil {
		return nil, err
	}
	return data, nil
}

// Put writes a page through the pool. The page becomes dirty in cache and
// reaches the store on eviction or Flush. With capacity 0 it is written
// straight through. The logical-write counter always advances.
func (b *BufferPool) Put(id PageID, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.store.IO().IncLogicalWrite()
	if len(data) > b.store.PageSize() {
		return ErrPageSize
	}
	if b.capacity == 0 {
		return b.store.WritePage(id, data)
	}
	if el, ok := b.frames[id]; ok {
		f := el.Value.(*frame)
		copy(f.data, data)
		for i := len(data); i < len(f.data); i++ {
			f.data[i] = 0
		}
		f.dirty = true
		b.lru.MoveToFront(el)
		return nil
	}
	page := make([]byte, b.store.PageSize())
	copy(page, data)
	return b.insertLocked(&frame{id: id, data: page, dirty: true})
}

// Invalidate drops a page from the cache without flushing (used after
// Free). It is a no-op if the page is not cached.
func (b *BufferPool) Invalidate(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.frames[id]; ok {
		b.lru.Remove(el)
		delete(b.frames, id)
	}
}

// Flush writes all dirty frames to the store, keeping them cached.
func (b *BufferPool) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for el := b.lru.Front(); el != nil; el = el.Next() {
		f := el.Value.(*frame)
		if f.dirty {
			if err := b.store.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Clear empties the cache, flushing dirty pages first.
func (b *BufferPool) Clear() error {
	if err := b.Flush(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.frames = make(map[PageID]*list.Element)
	b.lru.Init()
	return nil
}

// Len returns the number of cached frames.
func (b *BufferPool) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lru.Len()
}

func (b *BufferPool) insertLocked(f *frame) error {
	for b.lru.Len() >= b.capacity {
		if err := b.evictLocked(); err != nil {
			return err
		}
	}
	b.frames[f.id] = b.lru.PushFront(f)
	return nil
}

func (b *BufferPool) evictLocked() error {
	el := b.lru.Back()
	if el == nil {
		return fmt.Errorf("pagestore: evict from empty pool")
	}
	f := el.Value.(*frame)
	if f.dirty {
		if err := b.store.WritePage(f.id, f.data); err != nil {
			return err
		}
	}
	b.lru.Remove(el)
	delete(b.frames, f.id)
	return nil
}
