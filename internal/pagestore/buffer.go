package pagestore

import (
	"fmt"
	"sync"
)

// BufferPool is a write-back LRU page cache in front of a Store. All index
// traversal goes through the pool; a Get that finds the page cached is a
// pure memory access, while a miss triggers one physical read (and
// possibly one physical write to evict a dirty victim). Capacity 0 means
// "no buffering": every access is a miss, as in the paper's 0 % buffer
// experiment.
//
// On top of the byte cache the pool keeps a second, typed tier: a decoded
// object attached to each frame (see GetDecoded). The decoded tier never
// changes which accesses hit or miss — it only skips re-parsing page bytes
// that are already resident — so the paper's I/O metrics are unaffected.
type BufferPool struct {
	mu       sync.Mutex
	store    Store
	capacity int
	frames   map[PageID]*frame
	// Intrusive LRU list over the frames (head = most recently used):
	// container/list would allocate one Element per miss on the paper's
	// small-buffer configurations, where nearly every access is a miss.
	head, tail *frame
	// freeFrames recycles evicted frame structs (singly linked via next).
	// Page data buffers are NOT recycled: Get hands its buffer to the
	// caller, which may still be reading it when another goroutine evicts
	// the frame.
	freeFrames *frame

	// pinned retains decoded objects across frame eviction for pages the
	// caller has pinned (see Pin). A pinned object is only ever served
	// after the byte-tier access for its page has been accounted, so
	// pinning changes CPU/allocation cost, never I/O counts.
	pinned map[PageID]*pinEntry

	// noDecoded disables the decoded tier (every GetDecoded re-parses),
	// used by benchmarks to measure the cache's effect.
	noDecoded bool
}

type frame struct {
	id         PageID
	data       []byte
	dirty      bool
	obj        any // decoded form of data; nil until a GetDecoded populates it
	prev, next *frame
}

// pinEntry is the pinned side-table slot: a decoded object that survives
// eviction of its byte frame, plus the pin reference count.
type pinEntry struct {
	obj  any
	refs int
}

// NewBufferPool wraps store with an LRU cache holding up to capacity pages.
func NewBufferPool(store Store, capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		pinned:   make(map[PageID]*pinEntry),
	}
}

// pushFront links f as the most recently used frame.
func (b *BufferPool) pushFront(f *frame) {
	f.prev = nil
	f.next = b.head
	if b.head != nil {
		b.head.prev = f
	} else {
		b.tail = f
	}
	b.head = f
}

// unlink detaches f from the LRU list.
func (b *BufferPool) unlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		b.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		b.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (b *BufferPool) moveToFront(f *frame) {
	if b.head != f {
		b.unlink(f)
		b.pushFront(f)
	}
}

// takeFrame returns a recycled frame struct (fresh data buffer — see the
// freeFrames comment) or a new one.
func (b *BufferPool) takeFrame(id PageID) *frame {
	f := b.freeFrames
	if f != nil {
		b.freeFrames = f.next
		f.next = nil
		f.id, f.dirty, f.obj = id, false, nil
		f.data = make([]byte, b.store.PageSize())
		return f
	}
	return &frame{id: id, data: make([]byte, b.store.PageSize())}
}

// releaseFrame recycles an evicted frame struct, dropping its buffer and
// decoded object.
func (b *BufferPool) releaseFrame(f *frame) {
	f.data, f.obj, f.dirty = nil, nil, false
	f.prev = nil
	f.next = b.freeFrames
	b.freeFrames = f
}

// CapacityFromFraction sizes a buffer pool as a fraction of an index's
// page count, the way the paper expresses buffer sizes ("2 % of the tree
// size"). It always grants at least one page for fractions > 0.
func CapacityFromFraction(numPages int, frac float64) int {
	if frac <= 0 {
		return 0
	}
	c := int(frac * float64(numPages))
	if c < 1 {
		c = 1
	}
	return c
}

// Store returns the underlying physical store.
func (b *BufferPool) Store() Store { return b.store }

// Capacity returns the pool's frame count.
func (b *BufferPool) Capacity() int { return b.capacity }

// PageSize returns the page size of the underlying store.
func (b *BufferPool) PageSize() int { return b.store.PageSize() }

// Resize changes the pool capacity, evicting (and flushing) LRU victims if
// the pool shrinks.
func (b *BufferPool) Resize(capacity int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if capacity < 0 {
		capacity = 0
	}
	b.capacity = capacity
	for len(b.frames) > b.capacity {
		if err := b.evictLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the contents of a page. The returned slice is owned by the
// pool and must not be retained across further pool calls; copy it if
// needed. The store's logical-read counter always advances; the physical
// counter advances only on a miss.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.store.IO().IncLogicalRead()
	if f, ok := b.frames[id]; ok {
		b.moveToFront(f)
		return f.data, nil
	}
	if b.capacity == 0 {
		data := make([]byte, b.store.PageSize())
		if err := b.store.ReadPage(id, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	f := b.takeFrame(id)
	if err := b.store.ReadPage(id, f.data); err != nil {
		b.releaseFrame(f)
		return nil, err
	}
	if err := b.insertLocked(f); err != nil {
		return nil, err
	}
	return f.data, nil
}

// GetDecoded returns the decoded form of a page, parsing it with decode at
// most once per byte-tier residency: a warm access returns the cached
// object with zero decoding and zero allocation. The byte tier is consulted
// (and the LRU order advanced) exactly as Get would, so logical and
// physical I/O counts are identical to a Get followed by a decode.
//
// The returned object is shared: it may be handed to any number of
// concurrent callers and MUST be treated as immutable. It stays valid
// forever — invalidation only detaches it from the cache, it never mutates
// the object — so callers may retain it or alias into it freely.
//
// The object is dropped when the page is overwritten (Put), freed
// (Invalidate), or its frame is evicted; pinned pages (see Pin) keep the
// decoded object across eviction, skipping only the re-decode on the next
// (still physically counted) read.
//
// decode runs under the pool mutex (like the physical read in Get): page
// bytes may be overwritten in place by a concurrent Put, so parsing them
// outside the lock would need a defensive copy, costing more than the
// lock saves. The consequence is that concurrent cold traversals of one
// pool serialize their decodes; warm hits never decode at all.
func (b *BufferPool) GetDecoded(id PageID, decode func(PageID, []byte) (any, error)) (any, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.store.IO().IncLogicalRead()
	if f, ok := b.frames[id]; ok {
		b.moveToFront(f)
		if f.obj != nil {
			return f.obj, nil
		}
		obj, err := b.decodeLocked(id, f.data, decode)
		if err != nil {
			return nil, err
		}
		if !b.noDecoded {
			f.obj = obj
		}
		return obj, nil
	}
	if b.capacity == 0 {
		data := make([]byte, b.store.PageSize())
		if err := b.store.ReadPage(id, data); err != nil {
			return nil, err
		}
		return b.decodeLocked(id, data, decode)
	}
	f := b.takeFrame(id)
	if err := b.store.ReadPage(id, f.data); err != nil {
		b.releaseFrame(f)
		return nil, err
	}
	obj, decErr := b.decodeLocked(id, f.data, decode)
	if decErr == nil && !b.noDecoded {
		f.obj = obj
	}
	// Cache the page bytes even when decode failed — Get would have, and
	// the two must stay I/O-equivalent.
	if err := b.insertLocked(f); err != nil {
		return nil, err
	}
	if decErr != nil {
		return nil, decErr
	}
	return obj, nil
}

// decodeLocked resolves the decoded object for current page bytes: the
// pinned side-table first (its object is only present when the bytes have
// not changed since it was decoded), a fresh decode otherwise. The fresh
// object is mirrored into the pinned slot so it survives frame eviction.
func (b *BufferPool) decodeLocked(id PageID, data []byte, decode func(PageID, []byte) (any, error)) (any, error) {
	pe := b.pinned[id]
	if pe != nil && pe.obj != nil && !b.noDecoded {
		return pe.obj, nil
	}
	obj, err := decode(id, data)
	if err != nil {
		return nil, err
	}
	if pe != nil && !b.noDecoded {
		pe.obj = obj
	}
	return obj, nil
}

// Pin marks a page whose decoded object should be retained even while its
// byte frame is evicted (the R-tree pins its root: every traversal starts
// there, so the decode is skipped even under heavy eviction — the physical
// re-read is still performed and counted). Pins nest; each Pin needs a
// matching Unpin.
func (b *BufferPool) Pin(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	pe := b.pinned[id]
	if pe == nil {
		pe = &pinEntry{}
		b.pinned[id] = pe
	}
	pe.refs++
	if pe.obj == nil && !b.noDecoded {
		if f, ok := b.frames[id]; ok {
			pe.obj = f.obj
		}
	}
}

// Unpin releases one Pin reference; at zero the retained decoded object is
// dropped (the frame-attached copy, if the page is resident, remains).
func (b *BufferPool) Unpin(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	pe := b.pinned[id]
	if pe == nil {
		return
	}
	pe.refs--
	if pe.refs <= 0 {
		delete(b.pinned, id)
	}
}

// SetDecodedCache enables or disables the decoded-object tier. Disabling
// purges all cached objects; every subsequent GetDecoded re-parses its
// page. Byte-tier behaviour (and therefore all I/O counts) is unchanged
// either way. Used by benchmarks to measure the tier's effect.
func (b *BufferPool) SetDecodedCache(enabled bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.noDecoded = !enabled
	if !enabled {
		for _, f := range b.frames {
			f.obj = nil
		}
		for _, pe := range b.pinned {
			pe.obj = nil
		}
	}
}

// DecodedLen reports how many resident frames currently carry a decoded
// object (tests and introspection).
func (b *BufferPool) DecodedLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, f := range b.frames {
		if f.obj != nil {
			n++
		}
	}
	return n
}

// invalidateDecodedLocked detaches any decoded object for a page whose
// bytes are about to change (write or free).
func (b *BufferPool) invalidateDecodedLocked(id PageID) {
	if pe := b.pinned[id]; pe != nil {
		pe.obj = nil
	}
}

// Put writes a page through the pool. The page becomes dirty in cache and
// reaches the store on eviction or Flush. With capacity 0 it is written
// straight through. The logical-write counter always advances.
func (b *BufferPool) Put(id PageID, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.store.IO().IncLogicalWrite()
	if len(data) > b.store.PageSize() {
		return ErrPageSize
	}
	b.invalidateDecodedLocked(id)
	if b.capacity == 0 {
		return b.store.WritePage(id, data)
	}
	if f, ok := b.frames[id]; ok {
		copy(f.data, data)
		for i := len(data); i < len(f.data); i++ {
			f.data[i] = 0
		}
		f.dirty = true
		f.obj = nil
		b.moveToFront(f)
		return nil
	}
	f := b.takeFrame(id)
	copy(f.data, data)
	f.dirty = true
	return b.insertLocked(f)
}

// Invalidate drops a page from the cache without flushing (used after
// Free). It is a no-op if the page is not cached.
func (b *BufferPool) Invalidate(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.invalidateDecodedLocked(id)
	if f, ok := b.frames[id]; ok {
		b.unlink(f)
		delete(b.frames, id)
		b.releaseFrame(f)
	}
}

// Flush writes all dirty frames to the store, keeping them cached.
func (b *BufferPool) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for f := b.head; f != nil; f = f.next {
		if f.dirty {
			if err := b.store.WritePage(f.id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Clear empties the cache, flushing dirty pages first.
func (b *BufferPool) Clear() error {
	if err := b.Flush(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.frames = make(map[PageID]*frame)
	b.head, b.tail = nil, nil
	return nil
}

// Len returns the number of cached frames.
func (b *BufferPool) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}

func (b *BufferPool) insertLocked(f *frame) error {
	for len(b.frames) >= b.capacity {
		if err := b.evictLocked(); err != nil {
			return err
		}
	}
	b.frames[f.id] = f
	b.pushFront(f)
	return nil
}

func (b *BufferPool) evictLocked() error {
	f := b.tail
	if f == nil {
		return fmt.Errorf("pagestore: evict from empty pool")
	}
	if f.dirty {
		if err := b.store.WritePage(f.id, f.data); err != nil {
			return err
		}
	}
	b.unlink(f)
	delete(b.frames, f.id)
	b.releaseFrame(f)
	return nil
}
