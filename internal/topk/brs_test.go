package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
)

func randItems(rng *rand.Rand, n, dims int) []rtree.Item {
	items := make([]rtree.Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		items[i] = rtree.Item{ID: uint64(i + 1), Point: p}
	}
	return items
}

func buildTree(t *testing.T, items []rtree.Item, dims int) *rtree.Tree {
	t.Helper()
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 1<<20)
	tr, err := rtree.BulkLoad(pool, dims, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randWeights(rng *rand.Rand, dims int) []float64 {
	w := make([]float64, dims)
	sum := 0.0
	for d := range w {
		w[d] = rng.Float64()
		sum += w[d]
	}
	for d := range w {
		w[d] /= sum
	}
	return w
}

func TestNextEnumeratesInScoreOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []int{2, 4} {
		items := randItems(rng, 400, dims)
		tr := buildTree(t, items, dims)
		w := randWeights(rng, dims)

		type scored struct {
			id    uint64
			score float64
		}
		want := make([]scored, len(items))
		for i, it := range items {
			want[i] = scored{it.ID, geom.Dot(w, it.Point)}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].score != want[j].score {
				return want[i].score > want[j].score
			}
			return want[i].id < want[j].id
		})

		s := NewSearcher(tr, w, nil)
		for i := 0; i < len(items); i++ {
			it, sc, ok, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("exhausted at %d of %d", i, len(items))
			}
			if math.Abs(sc-want[i].score) > 1e-12 {
				t.Fatalf("pos %d: score %v (id %d), want %v (id %d)", i, sc, it.ID, want[i].score, want[i].id)
			}
		}
		if _, _, ok, _ := s.Next(); ok {
			t.Fatal("iterator should be exhausted")
		}
	}
}

func TestTop1MatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, 500, 3)
	tr := buildTree(t, items, 3)
	for q := 0; q < 30; q++ {
		w := randWeights(rng, 3)
		it, sc, ok, err := Top1(tr, w, nil)
		if err != nil || !ok {
			t.Fatal(err)
		}
		best := math.Inf(-1)
		for _, x := range items {
			if s := geom.Dot(w, x.Point); s > best {
				best = s
			}
		}
		if math.Abs(sc-best) > 1e-12 {
			t.Fatalf("query %d: Top1 = %v (id %d), want %v", q, sc, it.ID, best)
		}
	}
}

func TestSkipFilterTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 200, 2)
	tr := buildTree(t, items, 2)
	w := randWeights(rng, 2)
	assigned := map[uint64]bool{}
	s := NewSearcher(tr, w, func(id uint64) bool { return assigned[id] })

	// Consume the stream while tombstoning every other returned object
	// after the fact — later results must never include tombstoned IDs.
	it1, sc1, ok, err := s.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	assigned[it1.ID] = true
	prev := sc1
	for {
		it, sc, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if assigned[it.ID] {
			t.Fatalf("returned tombstoned object %d", it.ID)
		}
		if sc > prev+1e-12 {
			t.Fatalf("score order violated: %v after %v", sc, prev)
		}
		prev = sc
		if rng.Intn(2) == 0 {
			assigned[it.ID] = true
		}
	}
}

func TestTop1WithGrowingSkipSetMatchesBrute(t *testing.T) {
	// Simulates the Brute Force pattern: repeatedly take the global top-1
	// of remaining objects via a resumed searcher.
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 150, 3)
	tr := buildTree(t, items, 3)
	w := randWeights(rng, 3)
	assigned := map[uint64]bool{}
	s := NewSearcher(tr, w, func(id uint64) bool { return assigned[id] })
	for round := 0; round < len(items); round++ {
		it, sc, ok, err := s.Next()
		if err != nil || !ok {
			t.Fatalf("round %d: %v %v", round, ok, err)
		}
		best := math.Inf(-1)
		var bestID uint64
		for _, x := range items {
			if assigned[x.ID] {
				continue
			}
			if sx := geom.Dot(w, x.Point); sx > best {
				best, bestID = sx, x.ID
			}
		}
		if math.Abs(sc-best) > 1e-12 {
			t.Fatalf("round %d: got %v (id %d), want %v (id %d)", round, sc, it.ID, best, bestID)
		}
		assigned[it.ID] = true
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 100, 2)
	tr := buildTree(t, items, 2)
	w := randWeights(rng, 2)
	s := NewSearcher(tr, w, nil)
	p1, ps1, ok, err := s.Peek()
	if err != nil || !ok {
		t.Fatal(err)
	}
	p2, ps2, ok, err := s.Peek()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if p1.ID != p2.ID || ps1 != ps2 {
		t.Fatal("Peek must be idempotent")
	}
	n1, ns1, ok, err := s.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if n1.ID != p1.ID || ns1 != ps1 {
		t.Fatal("Next after Peek must return the peeked item")
	}
}

func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randItems(rng, 300, 2)
	tr := buildTree(t, items, 2)
	w := randWeights(rng, 2)
	got, scores, err := TopK(tr, w, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("TopK returned %d items", len(got))
	}
	all := make([]float64, len(items))
	for i, it := range items {
		all[i] = geom.Dot(w, it.Point)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	for i := range scores {
		if math.Abs(scores[i]-all[i]) > 1e-12 {
			t.Fatalf("rank %d: score %v, want %v", i, scores[i], all[i])
		}
	}
	// k exceeding the population returns everything.
	gotAll, _, err := TopK(tr, w, 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAll) != len(items) {
		t.Fatalf("TopK(all) = %d, want %d", len(gotAll), len(items))
	}
}

func TestEmptyTreeSearch(t *testing.T) {
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 16)
	tr, err := rtree.New(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := Top1(tr, []float64{0.5, 0.5}, nil); ok || err != nil {
		t.Fatalf("empty tree: ok=%v err=%v", ok, err)
	}
}

func TestReverseQueryOnFunctionTree(t *testing.T) {
	// Chain indexes functions by weights and finds, for an object o, the
	// function maximizing f(o) — a BRS query with o as the "weights".
	rng := rand.New(rand.NewSource(7))
	dims := 3
	var funcs []rtree.Item
	for i := 0; i < 200; i++ {
		w := randWeights(rng, dims)
		funcs = append(funcs, rtree.Item{ID: uint64(i + 1), Point: w})
	}
	tr := buildTree(t, funcs, dims)
	for q := 0; q < 20; q++ {
		o := geom.Point(randWeights(rng, dims)) // any positive vector works
		it, sc, ok, err := Top1(tr, o, nil)
		if err != nil || !ok {
			t.Fatal(err)
		}
		best := math.Inf(-1)
		for _, f := range funcs {
			if s := geom.Dot(o, f.Point); s > best {
				best = s
			}
		}
		if math.Abs(sc-best) > 1e-12 {
			t.Fatalf("reverse query: got %v (f%d), want %v", sc, it.ID, best)
		}
	}
}

func TestSearcherIOOptimalOnWarmRepeat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := randItems(rng, 2000, 2)
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 8)
	tr, err := rtree.BulkLoad(pool, 2, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Clear(); err != nil {
		t.Fatal(err)
	}
	store.IO().Reset()
	w := randWeights(rng, 2)
	if _, _, ok, err := Top1(tr, w, nil); !ok || err != nil {
		t.Fatal(err)
	}
	// A top-1 probe should touch roughly one root-to-leaf path, far fewer
	// pages than the whole tree.
	if reads := store.IO().PhysicalReads; reads > int64(tr.NumPages()/4) {
		t.Errorf("top-1 read %d of %d pages — BRS pruning ineffective", reads, tr.NumPages())
	}
}
