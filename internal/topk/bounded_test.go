package topk

import (
	"math"
	"math/rand"
	"testing"
)

// TestNextAtLeastMatchesFilteredNext checks that a bound-pruned
// enumeration returns exactly the objects an unbounded enumeration
// yields above the bound, in the same order, and that the searcher can
// resume below a previously used bound.
func TestNextAtLeastMatchesFilteredNext(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randItems(rng, 500, 3)
	tr := buildTree(t, items, 3)
	w := randWeights(rng, 3)

	// Reference: full enumeration.
	var refIDs []uint64
	var refScores []float64
	ref := NewSearcher(tr, w, nil)
	for {
		it, sc, ok, err := ref.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		refIDs = append(refIDs, it.ID)
		refScores = append(refScores, sc)
	}
	if len(refIDs) != len(items) {
		t.Fatalf("reference enumerated %d of %d items", len(refIDs), len(items))
	}

	// Bounded phase: everything at or above the median score.
	bound := refScores[len(refScores)/2]
	s := NewSearcher(tr, w, nil)
	i := 0
	for {
		it, sc, ok, err := s.NextAtLeast(bound)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if sc < bound {
			t.Fatalf("NextAtLeast returned score %v below bound %v", sc, bound)
		}
		if it.ID != refIDs[i] || sc != refScores[i] {
			t.Fatalf("bounded item %d = (%d,%v), want (%d,%v)", i, it.ID, sc, refIDs[i], refScores[i])
		}
		i++
	}
	if refScores[i-1] < bound || (i < len(refScores) && refScores[i] >= bound) {
		t.Fatalf("bounded enumeration stopped at the wrong frontier (i=%d)", i)
	}

	// Resume phase: lowering the bound continues the same order.
	for {
		it, sc, ok, err := s.NextAtLeast(math.Inf(-1))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if it.ID != refIDs[i] || sc != refScores[i] {
			t.Fatalf("resumed item %d = (%d,%v), want (%d,%v)", i, it.ID, sc, refIDs[i], refScores[i])
		}
		i++
	}
	if i != len(refIDs) {
		t.Fatalf("resumed enumeration covered %d of %d items", i, len(refIDs))
	}
}

// TestNextAtLeastPrunesNodeReads checks the point of the bound: a high
// ceiling must expand far fewer index nodes than a full enumeration.
func TestNextAtLeastPrunesNodeReads(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := randItems(rng, 2000, 2)
	tr := buildTree(t, items, 2)
	w := []float64{0.5, 0.5}

	full := NewSearcher(tr, w, nil)
	for {
		if _, _, ok, err := full.Next(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}

	bounded := NewSearcher(tr, w, nil)
	for {
		// 0.98 is near the top corner: only a sliver of the tree scores
		// above it.
		if _, _, ok, err := bounded.NextAtLeast(0.98); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	if bounded.NodeReads*4 >= full.NodeReads {
		t.Fatalf("bounded search read %d nodes, full read %d — expected a large gap", bounded.NodeReads, full.NodeReads)
	}
}

// TestNextAtLeastSkipRespected checks the skip filter still applies
// under a bound.
func TestNextAtLeastSkipRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	its := randItems(rng, 100, 2)
	tr := buildTree(t, its, 2)
	w := []float64{0.5, 0.5}
	first, _, ok, err := Top1(tr, w, nil)
	if err != nil || !ok {
		t.Fatal(err)
	}
	s := NewSearcher(tr, w, func(id uint64) bool { return id == first.ID })
	got, _, ok, err := s.NextAtLeast(0)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got.ID == first.ID {
		t.Fatal("skip filter ignored by NextAtLeast")
	}
}
