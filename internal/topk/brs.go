// Package topk implements BRS (branch-and-bound ranked search, Tao et
// al.) over an R-tree: an I/O-optimal incremental top-k iterator for
// monotone preference functions (Section 2.3 of the paper). The
// searcher prunes with score.Scorer.UpperBound over node MBRs, which is
// sound for every monotone family in internal/score — the linear
// weights constructors remain as the fast-path special case and compile
// to the identical maxscore dot product as before.
//
// The Brute Force baseline keeps one Searcher alive per preference
// function so that its top-1 scan can resume after its previous best
// object is assigned elsewhere; the Chain baseline issues fresh top-1
// searches. Both tombstone assigned objects through a skip filter instead
// of physically deleting them, which keeps the retained heaps valid while
// producing the identical visit order.
package topk

import (
	"math"

	"fairassign/internal/geom"
	"fairassign/internal/heaputil"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
)

// brsEntry is a heap element: an R-tree node or data point keyed by
// maxscore (the function score of the rectangle's best corner).
type brsEntry struct {
	rect  geom.Rect
	child pagestore.PageID
	id    uint64
	key   float64
}

func (e brsEntry) isPoint() bool { return e.child == pagestore.InvalidPage }

// brsHeap is a boxing-free max-heap on (key, point-first, lower ID) —
// the deterministic tie-break keeps enumeration order stable.
type brsHeap []brsEntry

func lessBRS(a, b brsEntry) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	if a.isPoint() != b.isPoint() {
		return a.isPoint()
	}
	return a.id < b.id
}

func (h *brsHeap) push(e brsEntry) { heaputil.Push((*[]brsEntry)(h), lessBRS, e) }
func (h *brsHeap) pop() brsEntry   { return heaputil.Pop((*[]brsEntry)(h), lessBRS) }

// Searcher is an incremental BRS iterator. Objects for which skip returns
// true are passed over (used to tombstone already-assigned objects). It
// runs over any rtree.NodeReader — the live tree, or a frozen
// rtree.View for snapshot-addressable ranked search.
type Searcher struct {
	tree    rtree.NodeReader
	sc      score.Scorer
	h       brsHeap
	skip    func(uint64) bool
	started bool

	// NodeReads counts R-tree node visits by this searcher.
	NodeReads int64
}

// NewSearcher creates an iterator for the linear function with the given
// weights. The root node is read lazily on the first Next call.
func NewSearcher(t rtree.NodeReader, weights []float64, skip func(uint64) bool) *Searcher {
	return NewScorerSearcher(t, score.LinearScorer(weights), skip)
}

// NewScorerSearcher creates an iterator for an arbitrary monotone
// scorer: entries are keyed by the scorer's upper bound over their MBR,
// so enumeration order is non-increasing in the scorer for any family.
func NewScorerSearcher(t rtree.NodeReader, sc score.Scorer, skip func(uint64) bool) *Searcher {
	return &Searcher{tree: t, sc: sc, skip: skip}
}

// Next returns the highest-scoring remaining object, or ok == false when
// the tree is exhausted. Successive calls enumerate objects in
// non-increasing score order, skipping tombstoned ones at pop time.
func (s *Searcher) Next() (item rtree.Item, score float64, ok bool, err error) {
	return s.NextAtLeast(math.Inf(-1))
}

// NextAtLeast is Next bounded from below: it returns the best remaining
// object scoring at least bound, or ok == false once every unexplored
// entry is bounded below it. The frontier heap is left intact, so the
// search can resume later — including with a lower bound. The Workspace
// uses this with the best available-object score as the ceiling: its
// displacement search only expands the (typically tiny) index region
// that could beat taking a free object outright.
func (s *Searcher) NextAtLeast(bound float64) (item rtree.Item, score float64, ok bool, err error) {
	if !s.started {
		s.started = true
		if s.tree.Len() > 0 {
			root, err := s.readNode(s.tree.Root())
			if err != nil {
				return rtree.Item{}, 0, false, err
			}
			s.pushNode(root)
		}
	}
	for len(s.h) > 0 {
		if s.h[0].key < bound {
			return rtree.Item{}, 0, false, nil
		}
		e := s.h.pop()
		if e.isPoint() {
			if s.skip != nil && s.skip(e.id) {
				continue
			}
			return rtree.Item{ID: e.id, Point: e.rect.Min}, e.key, true, nil
		}
		n, err := s.readNode(e.child)
		if err != nil {
			return rtree.Item{}, 0, false, err
		}
		s.pushNode(n)
	}
	return rtree.Item{}, 0, false, nil
}

// Ceiling returns an upper bound on the score of every object this
// searcher can still emit: the maxscore key at the head of the frontier
// heap. Before the first Next/NextAtLeast call it is +Inf (nothing has
// been read, so nothing bounds the tree); once the frontier drains it
// is -Inf. The bound is not tight — the head entry may be a node whose
// children score lower, or a point the skip filter rejects — but it is
// sound, which is what the sharded TA-style merge needs: a shard whose
// ceiling cannot beat the current global k-th score cannot contribute
// and is never popped.
func (s *Searcher) Ceiling() float64 {
	if !s.started {
		return math.Inf(1)
	}
	if len(s.h) == 0 {
		return math.Inf(-1)
	}
	return s.h[0].key
}

// Peek returns the next result without consuming it.
func (s *Searcher) Peek() (rtree.Item, float64, bool, error) {
	it, score, ok, err := s.Next()
	if err != nil || !ok {
		return rtree.Item{}, 0, false, err
	}
	// Push the point back; it will pop first again (max key, point first).
	s.h.push(brsEntry{
		rect:  geom.RectFromPoint(it.Point),
		child: pagestore.InvalidPage,
		id:    it.ID,
		key:   score,
	})
	return it, score, true, nil
}

// Footprint approximates heap memory for the paper's memory metric.
func (s *Searcher) Footprint() int64 {
	return int64(len(s.h))*int64(2*8*s.tree.Dims()+32) + 64
}

func (s *Searcher) pushNode(n *rtree.Node) {
	for _, ne := range n.Entries {
		s.h.push(brsEntry{
			rect:  ne.Rect,
			child: ne.Child,
			id:    ne.ID,
			key:   s.sc.UpperBound(ne.Rect.Min, ne.Rect.Max),
		})
	}
}

func (s *Searcher) readNode(id pagestore.PageID) (*rtree.Node, error) {
	s.NodeReads++
	return s.tree.ReadNode(id)
}

// Top1 runs a fresh top-1 query and returns the best non-skipped object.
func Top1(t rtree.NodeReader, weights []float64, skip func(uint64) bool) (rtree.Item, float64, bool, error) {
	return Top1Scorer(t, score.LinearScorer(weights), skip)
}

// Top1Scorer is Top1 for an arbitrary monotone scorer.
func Top1Scorer(t rtree.NodeReader, sc score.Scorer, skip func(uint64) bool) (rtree.Item, float64, bool, error) {
	s := NewScorerSearcher(t, sc, skip)
	return s.Next()
}

// TopK collects the k best non-skipped objects in score order.
func TopK(t rtree.NodeReader, weights []float64, k int, skip func(uint64) bool) ([]rtree.Item, []float64, error) {
	return TopKScorer(t, score.LinearScorer(weights), k, skip)
}

// TopKScorer is TopK for an arbitrary monotone scorer.
func TopKScorer(t rtree.NodeReader, sc score.Scorer, k int, skip func(uint64) bool) ([]rtree.Item, []float64, error) {
	s := NewScorerSearcher(t, sc, skip)
	var items []rtree.Item
	var scores []float64
	for len(items) < k {
		it, scr, ok, err := s.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		items = append(items, it)
		scores = append(scores, scr)
	}
	return items, scores, nil
}
