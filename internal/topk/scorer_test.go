package topk

import (
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
)

func buildScorerTree(t *testing.T, rng *rand.Rand, n, dims int) (*rtree.Tree, []rtree.Item) {
	t.Helper()
	items := make([]rtree.Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		items[i] = rtree.Item{ID: uint64(i + 1), Point: p}
	}
	pool := pagestore.NewBufferPool(pagestore.NewMemStore(512), 1<<20)
	tree, err := rtree.BulkLoad(pool, dims, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return tree, items
}

func testFamilies() []score.Family {
	return []score.Family{
		{},
		{Kind: score.OWA},
		{Kind: score.Chebyshev},
		{Kind: score.Lp, P: 2},
		{Kind: score.Lp, P: 3},
	}
}

// TestScorerSearcherMatchesScan differential-tests BRS over every
// scoring family against an exhaustive sort of the whole object set:
// the searcher must enumerate in non-increasing score order with the
// deterministic tie-break, for live trees and for skip filters.
func TestScorerSearcherMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, fam := range testFamilies() {
		for trial := 0; trial < 10; trial++ {
			dims := 2 + rng.Intn(3)
			n := 20 + rng.Intn(200)
			tree, items := buildScorerTree(t, rng, n, dims)
			w := make([]float64, dims)
			sum := 0.0
			for d := range w {
				w[d] = rng.Float64()
				sum += w[d]
			}
			for d := range w {
				w[d] /= sum
			}
			sc := score.Scorer{Fam: fam, W: w}

			skipped := map[uint64]bool{}
			for _, it := range items {
				if rng.Float64() < 0.2 {
					skipped[it.ID] = true
				}
			}
			type ranked struct {
				id uint64
				s  float64
			}
			var want []ranked
			for _, it := range items {
				if !skipped[it.ID] {
					want = append(want, ranked{it.ID, sc.Score(it.Point)})
				}
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].s != want[j].s {
					return want[i].s > want[j].s
				}
				return want[i].id < want[j].id
			})

			sr := NewScorerSearcher(tree, sc, func(id uint64) bool { return skipped[id] })
			for i, wr := range want {
				it, got, ok, err := sr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("fam %v trial %d: exhausted at rank %d of %d", fam, trial, i, len(want))
				}
				if it.ID != wr.id || got != wr.s {
					t.Fatalf("fam %v trial %d rank %d: got (%d, %v), want (%d, %v)",
						fam, trial, i, it.ID, got, wr.id, wr.s)
				}
			}
			if _, _, ok, _ := sr.Next(); ok {
				t.Fatalf("fam %v trial %d: searcher returned extra results", fam, trial)
			}
		}
	}
}

// TestNextAtLeastScorer checks the bounded resume used by Workspace
// displacement searches under a non-linear scorer.
func TestNextAtLeastScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tree, items := buildScorerTree(t, rng, 150, 3)
	sc := score.Scorer{Fam: score.Family{Kind: score.OWA}, W: []float64{0.1, 0.1, 0.8}}
	var scores []float64
	for _, it := range items {
		scores = append(scores, sc.Score(it.Point))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	bound := scores[10] // exactly the 11th best
	sr := NewScorerSearcher(tree, sc, nil)
	count := 0
	for {
		_, s, ok, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || s < bound {
			break
		}
		count++
		if count > 11 {
			break
		}
	}
	sr2 := NewScorerSearcher(tree, sc, nil)
	got := 0
	for {
		_, s, ok, err := sr2.NextAtLeast(bound)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if s < bound {
			t.Fatalf("NextAtLeast returned %v below bound %v", s, bound)
		}
		got++
	}
	if got != 11 {
		t.Fatalf("NextAtLeast enumerated %d results at or above bound, want 11", got)
	}
}
