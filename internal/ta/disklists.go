package ta

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/score"
)

// DiskLists materializes the D sorted coefficient lists on the simulated
// disk, as in Section 7.6 where F does not fit in memory. Each list is a
// run of pages holding (coefficient, functionID) entries in descending
// coefficient order; a small in-memory directory maps function IDs to
// their per-list positions so that a "random access" costs exactly one
// page read.
type DiskLists struct {
	dimCount int
	pool     *pagestore.BufferPool
	perPage  int
	// pages[d] lists the page IDs of list d in scan order.
	pages [][]pagestore.PageID
	// listLen is the number of entries per list (= number of functions).
	listLen int
	// slot[d][id] is the position of function id in list d.
	slot       []map[uint64]int
	removed    map[uint64]bool
	removedIdx []bool // by dense index (= position in list 0)
	live       int
	maxB       float64

	// Scoring families stay in the in-memory directory (like slot): the
	// on-disk pages hold only coefficients, exactly as before.
	fams    []score.Family // by dense index (= position in list 0)
	famByID map[uint64]score.Family
	famSet  []score.Family
	linear  bool

	Counters Counters
}

const diskEntrySize = 16 // float64 coefficient + uint64 id

// BuildDiskLists writes the sorted lists of funcs into pages allocated
// from the pool's store.
func BuildDiskLists(pool *pagestore.BufferPool, funcs []Func, dims int) (*DiskLists, error) {
	perPage := pool.PageSize() / diskEntrySize
	if perPage < 1 {
		return nil, fmt.Errorf("ta: page size %d too small for list entries", pool.PageSize())
	}
	dl := &DiskLists{
		dimCount:   dims,
		pool:       pool,
		perPage:    perPage,
		pages:      make([][]pagestore.PageID, dims),
		slot:       make([]map[uint64]int, dims),
		removed:    make(map[uint64]bool),
		removedIdx: make([]bool, len(funcs)),
		listLen:    len(funcs),
		live:       len(funcs),
		fams:       make([]score.Family, len(funcs)),
		famByID:    make(map[uint64]score.Family, len(funcs)),
		linear:     true,
	}
	for _, f := range funcs {
		if len(f.Weights) != dims {
			return nil, fmt.Errorf("ta: function %d has %d weights, want %d", f.ID, len(f.Weights), dims)
		}
		if err := f.Fam.Validate(); err != nil {
			return nil, fmt.Errorf("ta: function %d: %w", f.ID, err)
		}
		dl.famByID[f.ID] = f.Fam
		if !f.Fam.IsLinear() {
			dl.linear = false
		}
		if !containsFamily(dl.famSet, f.Fam) {
			dl.famSet = append(dl.famSet, f.Fam)
		}
		sum := 0.0
		for _, w := range f.Weights {
			sum += w
		}
		if sum > dl.maxB {
			dl.maxB = sum
		}
	}
	for d := 0; d < dims; d++ {
		col := make([]listEntry, 0, len(funcs))
		for _, f := range funcs {
			col = append(col, listEntry{coef: f.Weights[d], id: f.ID})
		}
		sort.Slice(col, func(i, j int) bool {
			if col[i].coef != col[j].coef {
				return col[i].coef > col[j].coef
			}
			return col[i].id < col[j].id
		})
		dl.slot[d] = make(map[uint64]int, len(col))
		for i, e := range col {
			dl.slot[d][e.id] = i
		}
		if d == 0 {
			// Position in list 0 is the dense function index.
			for i, e := range col {
				dl.fams[i] = dl.famByID[e.id]
			}
		}
		// Write the column into pages.
		for start := 0; start < len(col); start += perPage {
			end := start + perPage
			if end > len(col) {
				end = len(col)
			}
			page := make([]byte, pool.PageSize())
			off := 0
			for _, e := range col[start:end] {
				binary.LittleEndian.PutUint64(page[off:], math.Float64bits(e.coef))
				binary.LittleEndian.PutUint64(page[off+8:], e.id)
				off += diskEntrySize
			}
			id, err := pool.Store().Allocate()
			if err != nil {
				return nil, err
			}
			if err := pool.Put(id, page); err != nil {
				return nil, err
			}
			dl.pages[d] = append(dl.pages[d], id)
		}
	}
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	return dl, nil
}

// Dims returns the dimensionality.
func (dl *DiskLists) Dims() int { return dl.dimCount }

// listSource implementation (see search.go).
func (dl *DiskLists) dims() int            { return dl.dimCount }
func (dl *DiskLists) maxBudget() float64   { return dl.maxB }
func (dl *DiskLists) listLength(d int) int { return dl.listLen }
func (dl *DiskLists) funcCount() int       { return dl.listLen }
func (dl *DiskLists) entryAt(d, i int) (listEntry, error) {
	dl.Counters.addSorted()
	e, err := dl.readEntry(d, i)
	if err != nil {
		return listEntry{}, err
	}
	// The position in list 0 serves as the dense function index.
	e.idx = dl.slot[0][e.id]
	return e, nil
}
func (dl *DiskLists) weightsAt(_ int, id uint64, hintDim int, hintCoef float64) ([]float64, error) {
	w, err := dl.randomWeights(id, hintDim, hintCoef)
	if err != nil {
		return nil, err
	}
	return w, nil
}
func (dl *DiskLists) removedAt(idx int) bool        { return dl.removedIdx[idx] }
func (dl *DiskLists) liveCount() int                { return dl.live }
func (dl *DiskLists) counters() *Counters           { return &dl.Counters }
func (dl *DiskLists) familyAt(idx int) score.Family { return dl.fams[idx] }
func (dl *DiskLists) familySet() []score.Family     { return dl.famSet }
func (dl *DiskLists) linearOnly() bool              { return dl.linear }

// FamilyOf returns the scoring family of a function (the linear zero
// value when the ID is unknown).
func (dl *DiskLists) FamilyOf(id uint64) score.Family { return dl.famByID[id] }

// Live returns the number of unassigned functions.
func (dl *DiskLists) Live() int { return dl.live }

// NumPages returns the total pages across all lists.
func (dl *DiskLists) NumPages() int {
	n := 0
	for _, p := range dl.pages {
		n += len(p)
	}
	return n
}

// Removed reports whether a function has been tombstoned.
func (dl *DiskLists) Removed(id uint64) bool { return dl.removed[id] }

// Remove tombstones an assigned function.
func (dl *DiskLists) Remove(id uint64) error {
	if _, ok := dl.slot[0][id]; !ok {
		return fmt.Errorf("ta: unknown function id %d", id)
	}
	if dl.removed[id] {
		return fmt.Errorf("ta: function %d already removed", id)
	}
	dl.removed[id] = true
	dl.removedIdx[dl.slot[0][id]] = true
	dl.live--
	return nil
}

// readEntry fetches entry i of list d through the buffer pool (the I/O is
// counted by the pool).
func (dl *DiskLists) readEntry(d, i int) (listEntry, error) {
	page := dl.pages[d][i/dl.perPage]
	buf, err := dl.pool.Get(page)
	if err != nil {
		return listEntry{}, err
	}
	off := (i % dl.perPage) * diskEntrySize
	return listEntry{
		coef: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
		id:   binary.LittleEndian.Uint64(buf[off+8:]),
	}, nil
}

// randomWeights gathers the full weight vector of a function by one page
// random access per remaining list (the scanned list d0 already yielded
// its coefficient).
func (dl *DiskLists) randomWeights(id uint64, d0 int, coef0 float64) (geom.Point, error) {
	w := make(geom.Point, dl.dimCount)
	w[d0] = coef0
	for d := 0; d < dl.dimCount; d++ {
		if d == d0 {
			continue
		}
		dl.Counters.addRandom()
		e, err := dl.readEntry(d, dl.slot[d][id])
		if err != nil {
			return nil, err
		}
		w[d] = e.coef
	}
	return w, nil
}

// WeightsOf gathers a function's full weight vector via one random page
// access per list (I/O-counted). Used by SB-alt's best-object scan.
func (dl *DiskLists) WeightsOf(id uint64) (geom.Point, error) {
	if _, ok := dl.slot[0][id]; !ok {
		return nil, fmt.Errorf("ta: unknown function id %d", id)
	}
	w := make(geom.Point, dl.dimCount)
	for d := 0; d < dl.dimCount; d++ {
		dl.Counters.addRandom()
		e, err := dl.readEntry(d, dl.slot[d][id])
		if err != nil {
			return nil, err
		}
		w[d] = e.coef
	}
	return w, nil
}

// BatchObject is one skyline object whose best function is wanted.
type BatchObject struct {
	ID    uint64
	Point geom.Point
}

// BatchResult is the best live function found for one object.
type BatchResult struct {
	FuncID uint64
	Score  float64
	OK     bool
}

// BatchSearch finds the best live function for every object in one
// block-wise round-robin pass over the disk lists (Section 7.6). Each
// page of each list is read at most once per call and each function's
// coefficients are random-accessed at most once per call, regardless of
// how many objects are searched — this is the SB-alt I/O saving.
func (dl *DiskLists) BatchSearch(objs []BatchObject) (map[uint64]BatchResult, error) {
	res := make(map[uint64]BatchResult, len(objs))
	if dl.live == 0 || len(objs) == 0 {
		for _, o := range objs {
			res[o.ID] = BatchResult{}
		}
		return res, nil
	}
	type state struct {
		obj       BatchObject
		order     []int
		objSorted []float64 // object values sorted descending (family bounds)
		best      BatchResult
		done      bool
	}
	states := make([]*state, len(objs))
	for i, o := range objs {
		st := &state{obj: o, order: dimOrderFor(o.Point)}
		if !dl.linear {
			st.objSorted = make([]float64, len(o.Point))
			for j, d := range st.order {
				st.objSorted[j] = o.Point[d]
			}
		}
		states[i] = st
	}
	// boundFor computes the knapsack upper bound for one object given the
	// current lastSeen vector, optionally excluding one dimension whose
	// coefficient is already known (excl = -1 for none). It is exact for
	// the all-linear setting; with non-linear families present the
	// refined exclusion is unsound across families, so the generic
	// per-family bound over the full ceilings is used instead (still a
	// valid upper bound: the known coefficient never exceeds its
	// ceiling).
	boundFor := func(st *state, lastSeen []float64, b float64, excl int) float64 {
		if !dl.linear {
			// famBoundPad (see search.go) keeps the bound a true upper
			// bound under float rounding at any score magnitude, for the
			// skip check and the retirement check alike.
			fb := score.MaxBound(dl.famSet, lastSeen, st.obj.Point, st.order, st.objSorted, dl.maxB)
			return fb + famBoundPad(fb)
		}
		t := 0.0
		for _, d := range st.order {
			if d == excl {
				continue
			}
			if b <= 0 {
				break
			}
			beta := lastSeen[d]
			if beta > b {
				beta = b
			}
			t += beta * st.obj.Point[d]
			b -= beta
		}
		return t
	}
	lastSeen := make([]float64, dl.dimCount)
	for d := range lastSeen {
		lastSeen[d] = dl.maxB
	}
	blockIdx := make([]int, dl.dimCount) // next page per list
	seen := make(map[uint64]bool, dl.listLen)
	remaining := len(states)

	for remaining > 0 {
		progressed := false
		for d := 0; d < dl.dimCount && remaining > 0; d++ {
			if blockIdx[d] >= len(dl.pages[d]) {
				continue
			}
			progressed = true
			start := blockIdx[d] * dl.perPage
			end := start + dl.perPage
			if end > dl.listLen {
				end = dl.listLen
			}
			blockIdx[d]++
			for i := start; i < end; i++ {
				dl.Counters.addSorted()
				e, err := dl.readEntry(d, i)
				if err != nil {
					return nil, err
				}
				lastSeen[d] = e.coef
				if seen[e.id] {
					continue
				}
				seen[e.id] = true
				if dl.removed[e.id] {
					continue
				}
				// TA-style pruning: the function's unseen coefficients are
				// bounded by lastSeen, so its score on object o is at most
				// coef·o_d plus the knapsack optimum over the remaining
				// dimensions. Skip the D-1 random accesses when no active
				// object could improve its current best.
				improves := false
				for _, st := range states {
					if st.done {
						continue
					}
					if !st.best.OK {
						improves = true
						break
					}
					var bound float64
					if dl.linear {
						bound = e.coef*st.obj.Point[d] +
							boundFor(st, lastSeen, dl.maxB-e.coef, d)
					} else {
						bound = boundFor(st, lastSeen, dl.maxB, -1)
					}
					if bound > st.best.Score {
						improves = true
						break
					}
				}
				if !improves {
					continue
				}
				w, err := dl.randomWeights(e.id, d, e.coef)
				if err != nil {
					return nil, err
				}
				fam := dl.famByID[e.id]
				for _, st := range states {
					if st.done {
						continue
					}
					// st.objSorted (descending object values, built once per
					// object) makes the OWA case a plain dot product instead
					// of a per-(function, object) sort.
					s := score.EvalPrepared(fam, w, st.obj.Point, st.objSorted)
					if !st.best.OK || s > st.best.Score ||
						(s == st.best.Score && e.id < st.best.FuncID) {
						st.best = BatchResult{FuncID: e.id, Score: s, OK: true}
					}
				}
			}
			// After each block, retire objects whose best already meets
			// the threshold.
			for _, st := range states {
				if st.done || !st.best.OK {
					continue
				}
				if st.best.Score >= boundFor(st, lastSeen, dl.maxB, -1) {
					st.done = true
					remaining--
				}
			}
		}
		if !progressed {
			break // lists exhausted: current bests are final
		}
	}
	for _, st := range states {
		res[st.obj.ID] = st.best
	}
	return res, nil
}
