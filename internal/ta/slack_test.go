package ta

import (
	"math"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/score"
)

// TestFamBoundPadExceedsULP asserts the pad stays a true float-rounding
// guard at every score magnitude: it must exceed a generous multiple of
// one ULP of the bound, or accumulated rounding in MaxBound could push
// the computed threshold below the exact score of a ceiling-tight
// function. The old absolute 1e-12 pad fails this above |b| ≈ 1e4.
func TestFamBoundPadExceedsULP(t *testing.T) {
	for _, b := range []float64{0, 1e-9, 0.5, 1, 3, 1e3, 1e4, 1e6, 1e9, 1e12} {
		pad := famBoundPad(b)
		ulp := math.Nextafter(b, math.Inf(1)) - b
		// Allow for a few hundred accumulated rounding steps.
		if pad < 256*ulp {
			t.Errorf("famBoundPad(%g) = %g, below 256 ULP = %g", b, pad, 256*ulp)
		}
		if neg := famBoundPad(-b); neg != pad {
			t.Errorf("famBoundPad(%g) = %g, want symmetric %g", -b, neg, pad)
		}
	}
	// The absolute floor must survive for small bounds.
	if famBoundPad(0.25) != famBoundSlack {
		t.Errorf("famBoundPad(0.25) = %g, want floor %g", famBoundPad(0.25), famBoundSlack)
	}
}

// randNonLinearFuncs draws functions from the non-linear families only,
// forcing the search down the generalized MaxBound path that the pad
// protects.
func randNonLinearFuncs(rng *rand.Rand, n, dims int) []Func {
	out := make([]Func, n)
	for i := range out {
		w := make([]float64, dims)
		sum := 0.0
		for d := range w {
			w[d] = rng.Float64()
			sum += w[d]
		}
		for d := range w {
			w[d] /= sum
		}
		var fam score.Family
		switch rng.Intn(3) {
		case 0:
			fam = score.Family{Kind: score.OWA}
		case 1:
			fam = score.Family{Kind: score.Chebyshev}
		default:
			fam = score.Family{Kind: score.Lp, P: float64(2 + rng.Intn(2))}
		}
		out[i] = Func{ID: uint64(i + 1), Weights: w, Fam: fam}
	}
	return out
}

// TestSearchLargeMagnitude differential-tests the resumable TA search
// against exhaustive scan with coordinates around 1e6, where scores sit
// near 1e6 and one ULP (~1.2e-10) dwarfs the old absolute 1e-12 slack.
// A scale-blind pad can stop the descent one position early and return
// a second-best function; the scale-relative pad must not.
func TestSearchLargeMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	const scale = 1e6
	for trial := 0; trial < 40; trial++ {
		dims := 2 + rng.Intn(3)
		nf := 5 + rng.Intn(30)
		funcs := randNonLinearFuncs(rng, nf, dims)
		lists, err := NewLists(funcs, dims)
		if err != nil {
			t.Fatal(err)
		}
		removed := make(map[uint64]bool)
		o := make(geom.Point, dims)
		for d := range o {
			o[d] = scale * (0.5 + rng.Float64())
		}
		omega := 1 + rng.Intn(nf)
		s := NewSearch(lists, o, omega)
		for lists.Live() > 0 {
			id, got, ok := s.Best()
			wantID, want, wantOK := mixedBruteBest(funcs, removed, o)
			if ok != wantOK {
				t.Fatalf("trial %d: ok = %v, want %v", trial, ok, wantOK)
			}
			if !ok {
				break
			}
			if id != wantID || got != want {
				t.Fatalf("trial %d (dims=%d nf=%d omega=%d): Best = (%d, %v), want (%d, %v)",
					trial, dims, nf, omega, id, got, wantID, want)
			}
			if err := lists.Remove(id); err != nil {
				t.Fatal(err)
			}
			removed[id] = true
		}
		s.Release()
	}
}
