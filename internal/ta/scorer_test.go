package ta

import (
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/score"
)

// randFamily draws one of the supported families.
func randFamily(rng *rand.Rand) score.Family {
	switch rng.Intn(4) {
	case 0:
		return score.Family{}
	case 1:
		return score.Family{Kind: score.OWA}
	case 2:
		return score.Family{Kind: score.Chebyshev}
	default:
		return score.Family{Kind: score.Lp, P: float64(2 + rng.Intn(2))}
	}
}

func randScorerFuncs(rng *rand.Rand, n, dims int) []Func {
	out := make([]Func, n)
	for i := range out {
		w := make([]float64, dims)
		sum := 0.0
		for d := range w {
			w[d] = rng.Float64()
			sum += w[d]
		}
		for d := range w {
			w[d] /= sum
		}
		out[i] = Func{ID: uint64(i + 1), Weights: w, Fam: randFamily(rng)}
	}
	return out
}

// mixedBruteBest is the reference: scan every live function.
func mixedBruteBest(funcs []Func, removed map[uint64]bool, o geom.Point) (uint64, float64, bool) {
	var bestID uint64
	var bestScore float64
	found := false
	for _, f := range funcs {
		if removed[f.ID] {
			continue
		}
		s := f.Score(o)
		if !found || s > bestScore || (s == bestScore && f.ID < bestID) {
			bestID, bestScore, found = f.ID, s, true
		}
	}
	return bestID, bestScore, found
}

// TestSearchMixedFamilies differential-tests the resumable TA search
// over mixed scoring families against exhaustive scan, including
// resumption after removals (the SB usage pattern).
func TestSearchMixedFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		dims := 2 + rng.Intn(3)
		nf := 5 + rng.Intn(30)
		funcs := randScorerFuncs(rng, nf, dims)
		lists, err := NewLists(funcs, dims)
		if err != nil {
			t.Fatal(err)
		}
		removed := make(map[uint64]bool)
		o := make(geom.Point, dims)
		for d := range o {
			o[d] = rng.Float64()
		}
		omega := 1 + rng.Intn(nf)
		s := NewSearch(lists, o, omega)
		for lists.Live() > 0 {
			id, got, ok := s.Best()
			wantID, want, wantOK := mixedBruteBest(funcs, removed, o)
			if ok != wantOK {
				t.Fatalf("trial %d: ok = %v, want %v", trial, ok, wantOK)
			}
			if !ok {
				break
			}
			if id != wantID || got != want {
				t.Fatalf("trial %d (dims=%d nf=%d omega=%d): Best = (%d, %v), want (%d, %v)",
					trial, dims, nf, omega, id, got, wantID, want)
			}
			if err := lists.Remove(id); err != nil {
				t.Fatal(err)
			}
			removed[id] = true
		}
		s.Release()
	}
}

// TestDiskSearchMixedFamilies runs the same differential over the
// disk-resident lists (the Section 7.6 storage setting).
func TestDiskSearchMixedFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		dims := 2 + rng.Intn(3)
		nf := 5 + rng.Intn(30)
		funcs := randScorerFuncs(rng, nf, dims)
		pool := pagestore.NewBufferPool(pagestore.NewMemStore(512), 1<<20)
		dl, err := BuildDiskLists(pool, funcs, dims)
		if err != nil {
			t.Fatal(err)
		}
		removed := make(map[uint64]bool)
		o := make(geom.Point, dims)
		for d := range o {
			o[d] = rng.Float64()
		}
		s := NewDiskSearch(dl, o, 1+rng.Intn(nf))
		for dl.Live() > 0 {
			id, got, ok := s.Best()
			wantID, want, wantOK := mixedBruteBest(funcs, removed, o)
			if ok != wantOK {
				t.Fatalf("trial %d: ok = %v, want %v (err=%v)", trial, ok, wantOK, s.Err())
			}
			if !ok {
				break
			}
			if id != wantID || got != want {
				t.Fatalf("trial %d: disk Best = (%d, %v), want (%d, %v)", trial, id, got, wantID, want)
			}
			if err := dl.Remove(id); err != nil {
				t.Fatal(err)
			}
			removed[id] = true
		}
		s.Release()
	}
}

// TestBatchSearchMixedFamilies checks the SB-alt batch pass over mixed
// families against exhaustive scan for every object at once.
func TestBatchSearchMixedFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		dims := 2 + rng.Intn(3)
		nf := 5 + rng.Intn(30)
		funcs := randScorerFuncs(rng, nf, dims)
		pool := pagestore.NewBufferPool(pagestore.NewMemStore(512), 1<<20)
		dl, err := BuildDiskLists(pool, funcs, dims)
		if err != nil {
			t.Fatal(err)
		}
		// Tombstone a random subset, as SB-alt does mid-run.
		removed := make(map[uint64]bool)
		for _, f := range funcs {
			if rng.Float64() < 0.3 && dl.Live() > 1 {
				if err := dl.Remove(f.ID); err != nil {
					t.Fatal(err)
				}
				removed[f.ID] = true
			}
		}
		var objs []BatchObject
		for i := 0; i < 1+rng.Intn(8); i++ {
			o := make(geom.Point, dims)
			for d := range o {
				o[d] = rng.Float64()
			}
			objs = append(objs, BatchObject{ID: uint64(i + 1), Point: o})
		}
		res, err := dl.BatchSearch(objs)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range objs {
			wantID, want, wantOK := mixedBruteBest(funcs, removed, o.Point)
			got := res[o.ID]
			if got.OK != wantOK {
				t.Fatalf("trial %d obj %d: ok = %v, want %v", trial, o.ID, got.OK, wantOK)
			}
			if got.OK && (got.FuncID != wantID || got.Score != want) {
				t.Fatalf("trial %d obj %d: batch = (%d, %v), want (%d, %v)",
					trial, o.ID, got.FuncID, got.Score, wantID, want)
			}
		}
	}
}
