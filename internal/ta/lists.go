// Package ta implements the paper's reverse top-1 search (Section 5.1):
// given an object o, find the preference function f maximizing f(o) by
// adapting Fagin's Threshold Algorithm over D sorted coefficient lists.
// TA is correct for any monotone aggregate, so the lists serve every
// scoring family in internal/score unchanged: only the threshold
// changes, from the linear fractional knapsack to the family bound over
// the per-dimension last-seen ceilings (score.Family.Bound).
//
// The package provides:
//
//   - Lists: in-memory per-dimension sorted lists over a function set with
//     tombstoned deletion;
//   - the tight threshold T_tight computed by fractional knapsack, valid
//     for normalized functions (Σα = 1) and prioritized functions
//     (Σα' = γ ≤ B);
//   - biased list probing (probe the list with the highest l_i·o_i);
//   - Search: a per-object resumable TA state whose candidate queue is
//     capped at Ω = ω·|F| entries, restarting from scratch when the
//     guarantee budget is exhausted (the paper's memory/time trade-off);
//   - DiskLists + BatchSearch: the Section 7.6 variant for disk-resident
//     F, scanning the lists block-wise and amortizing one pass over all
//     current skyline objects (used by SB-alt).
package ta

import (
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"fairassign/internal/geom"
	"fairassign/internal/score"
)

// Func is a preference function as seen by the search structures: the
// weights are the effective coefficients α'_i = α_i·γ (γ = 1 for the
// standard normalized problem; γᵖ-folded for Lp) and Fam selects the
// scoring family (zero value: the paper's linear model).
type Func struct {
	ID      uint64
	Weights []float64
	Fam     score.Family
}

// Score returns f(o) under the function's family — Σ α'_i · o_i
// (Equations 1 and 2) in the linear case.
func (f Func) Score(o geom.Point) float64 { return score.Eval(f.Fam, f.Weights, o) }

type listEntry struct {
	coef float64
	id   uint64
	idx  int // dense function index (position in a canonical order)
}

// Counters tallies TA work for the experiment harness. Increments go
// through atomic adds so that many Searches may run concurrently over one
// shared list source (the parallel SB engine); plain field reads are safe
// once the concurrent phase has completed.
type Counters struct {
	SortedAccesses int64 // entries popped from sorted lists
	RandomAccesses int64 // full-weight lookups
	Restarts       int64 // Ω-exhaustion restarts
}

func (c *Counters) addSorted()  { atomic.AddInt64(&c.SortedAccesses, 1) }
func (c *Counters) addRandom()  { atomic.AddInt64(&c.RandomAccesses, 1) }
func (c *Counters) addRestart() { atomic.AddInt64(&c.Restarts, 1) }

// Lists indexes a function set as D descending-sorted coefficient lists
// plus a random-access table, supporting tombstoned removal of assigned
// functions.
//
// The lists are stored columnar (structure-of-arrays): coefs[d] is the
// contiguous descending coefficient column of list d and lidx[d] the
// aligned dense-index column, with idsDense mapping a dense index back
// to the function ID. The biased-probing descent touches only the
// coefficient column, so the scan is a sequential walk over packed
// float64s instead of 24-byte structs — a third of the memory traffic
// of the former []listEntry layout — and the list build sorts 12-byte
// pairs instead.
type Lists struct {
	dimCount int
	coefs    [][]float64
	lidx     [][]int32
	idsDense []uint64
	funcs    map[uint64][]float64
	index    map[uint64]int // function ID -> dense index
	byIdx    [][]float64    // dense index -> weights
	fams     []score.Family // dense index -> scoring family
	famSet   []score.Family // distinct families present (build-time)
	linear   bool           // every function is the linear family
	removed  []bool         // dense index -> tombstone
	live     int
	maxB     float64 // max Σ weights over all functions (1 when normalized)

	Counters Counters
}

// NewLists builds the sorted lists. All functions must share the given
// dimensionality.
func NewLists(funcs []Func, dims int) (*Lists, error) {
	l := &Lists{
		dimCount: dims,
		coefs:    make([][]float64, dims),
		lidx:     make([][]int32, dims),
		idsDense: make([]uint64, len(funcs)),
		funcs:    make(map[uint64][]float64, len(funcs)),
		index:    make(map[uint64]int, len(funcs)),
		byIdx:    make([][]float64, len(funcs)),
		fams:     make([]score.Family, len(funcs)),
		removed:  make([]bool, len(funcs)),
		live:     len(funcs),
		linear:   true,
	}
	for i, f := range funcs {
		if len(f.Weights) != dims {
			return nil, fmt.Errorf("ta: function %d has %d weights, want %d", f.ID, len(f.Weights), dims)
		}
		if err := f.Fam.Validate(); err != nil {
			return nil, fmt.Errorf("ta: function %d: %w", f.ID, err)
		}
		if _, dup := l.funcs[f.ID]; dup {
			return nil, fmt.Errorf("ta: duplicate function id %d", f.ID)
		}
		l.funcs[f.ID] = f.Weights
		l.index[f.ID] = i
		l.byIdx[i] = f.Weights
		l.idsDense[i] = f.ID
		l.fams[i] = f.Fam
		if !f.Fam.IsLinear() {
			l.linear = false
		}
		if !containsFamily(l.famSet, f.Fam) {
			l.famSet = append(l.famSet, f.Fam)
		}
		sum := 0.0
		for _, w := range f.Weights {
			if w < 0 {
				return nil, fmt.Errorf("ta: function %d has negative weight", f.ID)
			}
			sum += w
		}
		if sum > l.maxB {
			l.maxB = sum
		}
	}
	// Sort one reusable (coef, id, idx) scratch per dimension, then
	// scatter into the columnar layout. (coef desc, id asc) is a total
	// order — IDs are unique — so the sorted permutation is unique and
	// slices.SortFunc yields exactly what sort.Slice did, reflection-free.
	scratch := make([]listEntry, len(funcs))
	for d := 0; d < dims; d++ {
		for i, f := range funcs {
			scratch[i] = listEntry{coef: f.Weights[d], id: f.ID, idx: i}
		}
		slices.SortFunc(scratch, func(a, b listEntry) int {
			switch {
			case a.coef > b.coef:
				return -1
			case a.coef < b.coef:
				return 1
			case a.id < b.id:
				return -1
			case a.id > b.id:
				return 1
			}
			return 0
		})
		coefs := make([]float64, len(scratch))
		lidx := make([]int32, len(scratch))
		for i, e := range scratch {
			coefs[i] = e.coef
			lidx[i] = int32(e.idx)
		}
		l.coefs[d] = coefs
		l.lidx[d] = lidx
	}
	return l, nil
}

// Dims returns the dimensionality.
func (l *Lists) Dims() int { return l.dimCount }

// Live returns the number of unassigned functions.
func (l *Lists) Live() int { return l.live }

// MaxB returns the knapsack budget: the maximum Σ weights over all
// functions (kept at its initial value, a valid upper bound as functions
// are only removed).
func (l *Lists) MaxB() float64 { return l.maxB }

// Weights returns the weight vector of a live function (nil if removed or
// unknown).
func (l *Lists) Weights(id uint64) []float64 {
	i, ok := l.index[id]
	if !ok || l.removed[i] {
		return nil
	}
	return l.byIdx[i]
}

// FamilyOf returns the scoring family of a function (the linear zero
// value when the ID is unknown).
func (l *Lists) FamilyOf(id uint64) score.Family {
	i, ok := l.index[id]
	if !ok {
		return score.Family{}
	}
	return l.fams[i]
}

// ScorerOf returns the live function's scorer (family + effective
// weights); ok is false when the function is removed or unknown.
func (l *Lists) ScorerOf(id uint64) (score.Scorer, bool) {
	i, ok := l.index[id]
	if !ok || l.removed[i] {
		return score.Scorer{}, false
	}
	return score.Scorer{Fam: l.fams[i], W: l.byIdx[i]}, true
}

// containsFamily reports membership in a (tiny) distinct-family set.
func containsFamily(set []score.Family, f score.Family) bool {
	for _, g := range set {
		if g == f {
			return true
		}
	}
	return false
}

// Removed reports whether the function has been tombstoned.
func (l *Lists) Removed(id uint64) bool {
	i, ok := l.index[id]
	return ok && l.removed[i]
}

// Remove tombstones an assigned function; subsequent searches skip it.
func (l *Lists) Remove(id uint64) error {
	i, ok := l.index[id]
	if !ok {
		return fmt.Errorf("ta: unknown function id %d", id)
	}
	if l.removed[i] {
		return fmt.Errorf("ta: function %d already removed", id)
	}
	l.removed[i] = true
	l.live--
	return nil
}

// TightThreshold computes T_tight for object o given the last coefficient
// seen in each list (lastSeen) and budget B: the fractional-knapsack
// maximum of Σ β_i·o_i subject to Σβ = B, 0 ≤ β_i ≤ lastSeen_i
// (Section 5.1). It upper-bounds f(o) for every function not yet
// encountered in any list.
func TightThreshold(o geom.Point, lastSeen []float64, B float64) float64 {
	type dimVal struct {
		o float64
		l float64
	}
	dims := make([]dimVal, len(o))
	for i := range o {
		dims[i] = dimVal{o: o[i], l: lastSeen[i]}
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].o > dims[j].o })
	t := 0.0
	for _, dv := range dims {
		if B <= 0 {
			break
		}
		beta := dv.l
		if beta > B {
			beta = B
		}
		t += beta * dv.o
		B -= beta
	}
	return t
}

// ExhaustiveBest scans a slice of functions and returns the one
// maximizing f(o) (ties: lowest ID). Used for small function sets such as
// the function skyline of the prioritized variant (Section 6.2). ok is
// false when funcs is empty.
func ExhaustiveBest(funcs []Func, o geom.Point) (best Func, score float64, ok bool) {
	for _, f := range funcs {
		s := f.Score(o)
		if !ok || s > score || (s == score && f.ID < best.ID) {
			best, score, ok = f, s, true
		}
	}
	return best, score, ok
}
