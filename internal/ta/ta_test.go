package ta

import (
	"math"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// randFuncs generates n normalized linear functions over dims dimensions.
func randFuncs(rng *rand.Rand, n, dims int) []Func {
	funcs := make([]Func, n)
	for i := range funcs {
		w := make([]float64, dims)
		sum := 0.0
		for d := range w {
			w[d] = rng.Float64()
			sum += w[d]
		}
		for d := range w {
			w[d] /= sum
		}
		funcs[i] = Func{ID: uint64(i + 1), Weights: w}
	}
	return funcs
}

func randPoint(rng *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	for d := range p {
		p[d] = rng.Float64()
	}
	return p
}

// bruteBest is the oracle: scan all live functions.
func bruteBest(l *Lists, funcs []Func, o geom.Point) (uint64, float64, bool) {
	var bestID uint64
	bestScore := math.Inf(-1)
	found := false
	for _, f := range funcs {
		if l.Removed(f.ID) {
			continue
		}
		s := f.Score(o)
		if !found || s > bestScore || (s == bestScore && f.ID < bestID) {
			bestID, bestScore, found = f.ID, s, true
		}
	}
	return bestID, bestScore, found
}

func TestTightThresholdPaperExample(t *testing.T) {
	// Section 5.1 worked example: o = (10, 6, 8), last seen
	// l = (0.8, 0.8, 0.9) → β = (0.8, 0, 0.2), T = 9.6.
	o := geom.Point{10, 6, 8}
	got := TightThreshold(o, []float64{0.8, 0.8, 0.9}, 1.0)
	if math.Abs(got-9.6) > 1e-12 {
		t.Errorf("T_tight = %v, want 9.6", got)
	}
	// After reading fc from L1: l = (0.5, 0.8, 0.9) → T = 0.5·10 + 0.5·8 = 9.
	got = TightThreshold(o, []float64{0.5, 0.8, 0.9}, 1.0)
	if math.Abs(got-9.0) > 1e-12 {
		t.Errorf("T_tight after fc = %v, want 9", got)
	}
}

func TestTightThresholdBudgetZeroAndLargeB(t *testing.T) {
	o := geom.Point{1, 2}
	if got := TightThreshold(o, []float64{0.5, 0.5}, 0); got != 0 {
		t.Errorf("B=0: T = %v, want 0", got)
	}
	// B larger than Σ lastSeen: every β_i = lastSeen_i.
	got := TightThreshold(o, []float64{0.5, 0.5}, 10)
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("large B: T = %v, want 1.5", got)
	}
}

func TestTightThresholdIsValidUpperBound(t *testing.T) {
	// Property: for any function whose coefficients are pointwise below
	// lastSeen and sum to <= B, its score never exceeds the threshold.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		dims := 2 + rng.Intn(4)
		o := randPoint(rng, dims)
		lastSeen := make([]float64, dims)
		for d := range lastSeen {
			lastSeen[d] = rng.Float64()
		}
		// Build a random admissible function.
		w := make([]float64, dims)
		budget := 1.0
		for d := range w {
			w[d] = rng.Float64() * lastSeen[d]
			if w[d] > budget {
				w[d] = budget
			}
			budget -= w[d]
		}
		T := TightThreshold(o, lastSeen, 1.0)
		if s := geom.Dot(w, o); s > T+1e-9 {
			t.Fatalf("score %v exceeds threshold %v (o=%v lastSeen=%v w=%v)", s, T, o, lastSeen, w)
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		dims := 2 + rng.Intn(4)
		funcs := randFuncs(rng, 200, dims)
		l, err := NewLists(funcs, dims)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			o := randPoint(rng, dims)
			s := NewSearch(l, o, 20)
			id, score, ok := s.Best()
			wid, wscore, wok := bruteBest(l, funcs, o)
			if ok != wok || math.Abs(score-wscore) > 1e-12 {
				t.Fatalf("Best = (%d, %v, %v), want (%d, %v, %v)", id, score, ok, wid, wscore, wok)
			}
		}
	}
}

func TestSearchResumeAfterRemovals(t *testing.T) {
	// Repeatedly take the best function, remove it, and resume the same
	// search state — must track the brute-force oracle the whole way.
	rng := rand.New(rand.NewSource(3))
	dims := 3
	funcs := randFuncs(rng, 150, dims)
	l, err := NewLists(funcs, dims)
	if err != nil {
		t.Fatal(err)
	}
	o := randPoint(rng, dims)
	s := NewSearch(l, o, 10) // small omega to exercise restarts
	for i := 0; i < 150; i++ {
		id, score, ok := s.Best()
		wid, wscore, wok := bruteBest(l, funcs, o)
		if !ok || !wok {
			t.Fatalf("step %d: ok=%v wok=%v", i, ok, wok)
		}
		if math.Abs(score-wscore) > 1e-12 {
			t.Fatalf("step %d: score %v, want %v (id %d vs %d)", i, score, wscore, id, wid)
		}
		if err := l.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := s.Best(); ok {
		t.Fatal("Best should report no live functions")
	}
	if l.Counters.Restarts == 0 {
		t.Error("expected at least one Ω-exhaustion restart with omega=10 and 150 removals")
	}
}

func TestSearchOmegaOne(t *testing.T) {
	// The degenerate Ω=1 queue must still be correct (restarting often).
	rng := rand.New(rand.NewSource(4))
	funcs := randFuncs(rng, 60, 2)
	l, err := NewLists(funcs, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := randPoint(rng, 2)
	s := NewSearch(l, o, 1)
	for i := 0; i < 60; i++ {
		id, score, ok := s.Best()
		_, wscore, wok := bruteBest(l, funcs, o)
		if !ok || !wok || math.Abs(score-wscore) > 1e-12 {
			t.Fatalf("step %d: (%d,%v,%v) want score %v", i, id, score, ok, wscore)
		}
		if err := l.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSearchBiasedProbingBeatsExhaustiveAccesses(t *testing.T) {
	// TA must terminate after far fewer random accesses than |F| for a
	// skewed object (the whole point of the threshold).
	rng := rand.New(rand.NewSource(5))
	funcs := randFuncs(rng, 5000, 4)
	l, err := NewLists(funcs, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := geom.Point{0.99, 0.01, 0.01, 0.01}
	s := NewSearch(l, o, 125)
	if _, _, ok := s.Best(); !ok {
		t.Fatal("Best failed")
	}
	if l.Counters.RandomAccesses > 2500 {
		t.Errorf("TA performed %d random accesses on 5000 functions — threshold not effective",
			l.Counters.RandomAccesses)
	}
}

func TestPrioritizedFunctionsThresholdUsesMaxGamma(t *testing.T) {
	// Effective weights scaled by γ ∈ {1,2,4}: maxB must reflect the max
	// priority and Best must still match brute force.
	rng := rand.New(rand.NewSource(6))
	dims := 3
	funcs := randFuncs(rng, 120, dims)
	gammas := []float64{1, 2, 4}
	for i := range funcs {
		g := gammas[rng.Intn(len(gammas))]
		for d := range funcs[i].Weights {
			funcs[i].Weights[d] *= g
		}
	}
	l, err := NewLists(funcs, dims)
	if err != nil {
		t.Fatal(err)
	}
	if l.MaxB() < 2 {
		t.Fatalf("MaxB = %v, want close to max γ = 4", l.MaxB())
	}
	for q := 0; q < 30; q++ {
		o := randPoint(rng, dims)
		s := NewSearch(l, o, 12)
		id, score, ok := s.Best()
		wid, wscore, wok := bruteBest(l, funcs, o)
		if ok != wok || math.Abs(score-wscore) > 1e-12 {
			t.Fatalf("prioritized Best = (%d,%v), want (%d,%v)", id, score, wid, wscore)
		}
	}
}

func TestListsValidation(t *testing.T) {
	if _, err := NewLists([]Func{{ID: 1, Weights: []float64{0.5}}}, 2); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := NewLists([]Func{
		{ID: 1, Weights: []float64{0.5, 0.5}},
		{ID: 1, Weights: []float64{0.3, 0.7}},
	}, 2); err == nil {
		t.Error("duplicate IDs should fail")
	}
	if _, err := NewLists([]Func{{ID: 1, Weights: []float64{-0.5, 1.5}}}, 2); err == nil {
		t.Error("negative weights should fail")
	}
	l, err := NewLists(randFuncs(rand.New(rand.NewSource(7)), 5, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(99); err == nil {
		t.Error("removing unknown id should fail")
	}
	if err := l.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(1); err == nil {
		t.Error("double removal should fail")
	}
	if l.Live() != 4 {
		t.Errorf("Live = %d, want 4", l.Live())
	}
}

func TestExhaustiveBest(t *testing.T) {
	funcs := []Func{
		{ID: 1, Weights: []float64{0.8, 0.2}},
		{ID: 2, Weights: []float64{0.2, 0.8}},
		{ID: 3, Weights: []float64{0.5, 0.5}},
	}
	// Figure 1: object c = (0.8, 0.2) is best for f1.
	best, score, ok := ExhaustiveBest(funcs, geom.Point{0.8, 0.2})
	if !ok || best.ID != 1 || math.Abs(score-0.68) > 1e-12 {
		t.Errorf("ExhaustiveBest = (%d, %v, %v), want (1, 0.68, true)", best.ID, score, ok)
	}
	if _, _, ok := ExhaustiveBest(nil, geom.Point{1, 1}); ok {
		t.Error("empty function set should report !ok")
	}
}

func newDiskLists(t *testing.T, funcs []Func, dims, pageSize, bufPages int) (*DiskLists, *pagestore.MemStore) {
	t.Helper()
	store := pagestore.NewMemStore(pageSize)
	pool := pagestore.NewBufferPool(store, bufPages)
	dl, err := BuildDiskLists(pool, funcs, dims)
	if err != nil {
		t.Fatal(err)
	}
	return dl, store
}

func TestDiskListsBatchMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dims := 3
	funcs := randFuncs(rng, 300, dims)
	dl, _ := newDiskLists(t, funcs, dims, 256, 64)
	l, err := NewLists(funcs, dims) // only for the brute oracle's removal view
	if err != nil {
		t.Fatal(err)
	}
	var objs []BatchObject
	for i := 0; i < 25; i++ {
		objs = append(objs, BatchObject{ID: uint64(i + 1), Point: randPoint(rng, dims)})
	}
	res, err := dl.BatchSearch(objs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		wid, wscore, _ := bruteBest(l, funcs, o.Point)
		r := res[o.ID]
		if !r.OK || math.Abs(r.Score-wscore) > 1e-12 {
			t.Fatalf("obj %d: batch = (%d, %v, %v), want (%d, %v)", o.ID, r.FuncID, r.Score, r.OK, wid, wscore)
		}
	}
}

func TestDiskListsBatchWithRemovals(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dims := 4
	funcs := randFuncs(rng, 200, dims)
	dl, _ := newDiskLists(t, funcs, dims, 256, 64)
	l, _ := NewLists(funcs, dims)
	// Remove a third of the functions from both structures.
	for i := 0; i < 70; i++ {
		id := funcs[i*2%len(funcs)].ID
		if dl.removed[id] {
			continue
		}
		if err := dl.Remove(id); err != nil {
			t.Fatal(err)
		}
		if err := l.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	objs := []BatchObject{{ID: 1, Point: randPoint(rng, dims)}, {ID: 2, Point: randPoint(rng, dims)}}
	res, err := dl.BatchSearch(objs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		_, wscore, wok := bruteBest(l, funcs, o.Point)
		r := res[o.ID]
		if r.OK != wok || math.Abs(r.Score-wscore) > 1e-12 {
			t.Fatalf("obj %d: batch = %+v, want score %v", o.ID, r, wscore)
		}
	}
}

func TestDiskListsAllRemoved(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	funcs := randFuncs(rng, 10, 2)
	dl, _ := newDiskLists(t, funcs, 2, 256, 16)
	for _, f := range funcs {
		if err := dl.Remove(f.ID); err != nil {
			t.Fatal(err)
		}
	}
	res, err := dl.BatchSearch([]BatchObject{{ID: 1, Point: geom.Point{0.5, 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].OK {
		t.Error("no live functions: result should be !OK")
	}
}

func TestDiskListsBatchIOBounded(t *testing.T) {
	// One batch call must read each list page at most once for scanning
	// plus at most one random access per function per other list —
	// independent of the number of objects.
	rng := rand.New(rand.NewSource(11))
	dims := 3
	n := 500
	funcs := randFuncs(rng, n, dims)
	dl, store := newDiskLists(t, funcs, dims, 256, 0) // no buffering: every access counted
	var objs []BatchObject
	for i := 0; i < 40; i++ {
		objs = append(objs, BatchObject{ID: uint64(i + 1), Point: randPoint(rng, dims)})
	}
	store.IO().Reset()
	if _, err := dl.BatchSearch(objs); err != nil {
		t.Fatal(err)
	}
	perPage := 256 / diskEntrySize
	scanPages := dims * ((n + perPage - 1) / perPage)
	maxIO := int64(scanPages + n*(dims-1))
	if got := store.IO().PhysicalReads; got > maxIO {
		t.Errorf("batch read %d pages, bound is %d", got, maxIO)
	}
}

func TestDiskListsNumPages(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	funcs := randFuncs(rng, 64, 2)
	dl, _ := newDiskLists(t, funcs, 2, 256, 16)
	perPage := 256 / diskEntrySize // 16 entries
	want := 2 * ((64 + perPage - 1) / perPage)
	if got := dl.NumPages(); got != want {
		t.Errorf("NumPages = %d, want %d", got, want)
	}
}
