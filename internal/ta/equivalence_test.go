package ta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// TestDiskSearchMatchesMemorySearch runs the same resumable reverse
// top-1 workload over in-memory lists and disk-resident lists: results
// must be identical step for step (only the I/O accounting differs).
func TestDiskSearchMatchesMemorySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dims := 4
	funcs := randFuncs(rng, 250, dims)
	mem, err := NewLists(funcs, dims)
	if err != nil {
		t.Fatal(err)
	}
	store := pagestore.NewMemStore(256)
	pool := pagestore.NewBufferPool(store, 8)
	disk, err := BuildDiskLists(pool, funcs, dims)
	if err != nil {
		t.Fatal(err)
	}

	o := randPoint(rng, dims)
	ms := NewSearch(mem, o, 12)
	ds := NewDiskSearch(disk, o, 12)
	for i := 0; i < 250; i++ {
		mid, mscore, mok := ms.Best()
		did, dscore, dok := ds.Best()
		if err := ds.Err(); err != nil {
			t.Fatal(err)
		}
		if mok != dok {
			t.Fatalf("step %d: ok mismatch %v vs %v", i, mok, dok)
		}
		if !mok {
			break
		}
		if mid != did || math.Abs(mscore-dscore) > 1e-12 {
			t.Fatalf("step %d: memory (%d, %v) vs disk (%d, %v)", i, mid, mscore, did, dscore)
		}
		if err := mem.Remove(mid); err != nil {
			t.Fatal(err)
		}
		if err := disk.Remove(did); err != nil {
			t.Fatal(err)
		}
	}
}

// TestThresholdMonotoneInLastSeen verifies the knapsack bound shrinks (or
// stays) as the scan descends the lists — the property TA termination
// depends on.
func TestThresholdMonotoneInLastSeen(t *testing.T) {
	f := func(rawO, rawA, rawB []float64) bool {
		dims := 3
		norm := func(raw []float64, i int) float64 {
			if i >= len(raw) {
				return 0.5
			}
			v := math.Abs(raw[i])
			for v > 1 {
				v /= 10
			}
			return v
		}
		o := make(geom.Point, dims)
		hi := make([]float64, dims)
		lo := make([]float64, dims)
		for d := 0; d < dims; d++ {
			o[d] = norm(rawO, d)
			a, b := norm(rawA, d), norm(rawB, d)
			if a < b {
				a, b = b, a
			}
			hi[d], lo[d] = a, b // lo <= hi pointwise: deeper in the scan
		}
		return TightThreshold(o, lo, 1.0) <= TightThreshold(o, hi, 1.0)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestThresholdNeverBelowBestPossible: the bound with untouched lists
// (lastSeen = B everywhere) dominates every admissible function's score.
func TestThresholdInitialIsGlobalBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		dims := 2 + rng.Intn(4)
		o := randPoint(rng, dims)
		lastSeen := make([]float64, dims)
		for d := range lastSeen {
			lastSeen[d] = 1.0
		}
		T := TightThreshold(o, lastSeen, 1.0)
		f := randFuncs(rng, 1, dims)[0]
		if s := f.Score(o); s > T+1e-12 {
			t.Fatalf("normalized function scored %v above initial bound %v", s, T)
		}
	}
}

// TestSearchStatsAdvance ensures the counters move, so the experiment
// harness measures real work.
func TestSearchStatsAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	funcs := randFuncs(rng, 100, 3)
	l, err := NewLists(funcs, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearch(l, randPoint(rng, 3), 5)
	if _, _, ok := s.Best(); !ok {
		t.Fatal("Best failed")
	}
	if l.Counters.SortedAccesses == 0 || l.Counters.RandomAccesses == 0 {
		t.Errorf("counters did not advance: %+v", l.Counters)
	}
	if s.Footprint() <= 0 {
		t.Error("Footprint should be positive")
	}
}

// TestDiskSearchSurfacesIOErrors injects a store failure and checks the
// search reports it instead of silently returning !ok.
func TestDiskSearchSurfacesIOErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	funcs := randFuncs(rng, 64, 2)
	store := pagestore.NewMemStore(256)
	pool := pagestore.NewBufferPool(store, 8)
	dl, err := BuildDiskLists(pool, funcs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Free a list page behind the search's back.
	if err := pool.Clear(); err != nil {
		t.Fatal(err)
	}
	if err := store.Free(dl.pages[0][0]); err != nil {
		t.Fatal(err)
	}
	s := NewDiskSearch(dl, geom.Point{0.9, 0.1}, 4)
	if _, _, ok := s.Best(); ok {
		t.Fatal("search over corrupted lists should not succeed")
	}
	if s.Err() == nil {
		t.Fatal("Err should report the underlying I/O failure")
	}
}
