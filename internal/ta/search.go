package ta

import (
	"sync"

	"fairassign/internal/geom"
	"fairassign/internal/score"
)

// listSource abstracts where the sorted coefficient lists live: in memory
// (Lists) or on the simulated disk (DiskLists). Search runs unchanged
// over either, which is how the Section 7.6 experiment puts SB's
// per-object resumable searches on top of disk-resident F.
type listSource interface {
	dims() int
	maxBudget() float64
	listLength(d int) int
	funcCount() int
	// entryAt returns entry i of list d (I/O-counted for disk lists).
	entryAt(d, i int) (listEntry, error)
	// weightsAt returns the weight vector of the function with the given
	// dense index; hintDim's coefficient hintCoef was already read from
	// the scanned list.
	weightsAt(idx int, id uint64, hintDim int, hintCoef float64) ([]float64, error)
	removedAt(idx int) bool
	liveCount() int
	counters() *Counters
	// familyAt returns the scoring family of the function at a dense
	// index; familySet lists the distinct families present, and
	// linearOnly reports the all-linear fast path (the paper's setting).
	familyAt(idx int) score.Family
	familySet() []score.Family
	linearOnly() bool
}

// Lists implements listSource.
func (l *Lists) dims() int            { return l.dimCount }
func (l *Lists) maxBudget() float64   { return l.maxB }
func (l *Lists) listLength(d int) int { return len(l.coefs[d]) }
func (l *Lists) funcCount() int       { return len(l.byIdx) }
func (l *Lists) entryAt(d, i int) (listEntry, error) {
	l.Counters.addSorted()
	idx := l.lidx[d][i]
	return listEntry{coef: l.coefs[d][i], id: l.idsDense[idx], idx: int(idx)}, nil
}
func (l *Lists) weightsAt(idx int, _ uint64, _ int, _ float64) ([]float64, error) {
	l.Counters.addRandom()
	return l.byIdx[idx], nil
}
func (l *Lists) removedAt(idx int) bool        { return l.removed[idx] }
func (l *Lists) liveCount() int                { return l.live }
func (l *Lists) counters() *Counters           { return &l.Counters }
func (l *Lists) familyAt(idx int) score.Family { return l.fams[idx] }
func (l *Lists) familySet() []score.Family     { return l.famSet }
func (l *Lists) linearOnly() bool              { return l.linear }

// Search is the resumable reverse top-1 state kept per skyline object
// (Section 5.1, "Resuming search"). It scans the sorted coefficient lists
// with biased probing, maintains the top-Ω candidate functions seen so
// far, and can resume where it stopped when the object's previous best
// function is assigned elsewhere. Each pop consumes one unit of the Ω
// guarantee budget; when the budget is spent the search restarts from
// scratch (the paper's memory/time trade-off knob ω).
type Search struct {
	l         listSource
	obj       geom.Point
	dimOrder  []int // dimensions sorted by descending object value
	pos       []int // next index per list
	lastSeen  []float64
	seen      []uint32 // epoch-stamped visited marks, by dense index
	epoch     uint32
	queue     []cand // sorted desc by (score, -id); live window is queue[qhead:]
	qhead     int    // discarded prefix length — an index, not a reslice, so the array keeps its capacity
	guarantee int
	omega     int
	err       error

	// Generalized-threshold state, populated only when the list source
	// holds non-linear families: the distinct families present and the
	// object's values sorted descending (for the OWA position bound).
	// linear selects the knapsack fast path (byte-identical to the
	// pre-generalization code).
	linear    bool
	fams      []score.Family
	objSorted []float64
}

type cand struct {
	id    uint64
	idx   int
	score float64
}

// searchPool recycles released Search states wholesale — struct and
// buffers. The dominant cost of creating a search is the |F|-sized
// visited-marks slice; recycling it makes the SB variants that build
// fresh searches per loop (SBBasic, SBDeltaSky) nearly allocation-free.
// The epoch travels with the seen slice so stale marks from a previous
// owner can never read as visited (reset always bumps past them).
var searchPool sync.Pool // of *Search

// NewSearch creates a resumable search for object o over in-memory lists.
// omega is the candidate-queue capacity Ω (at least 1); the paper sets
// Ω = ω·|F| with ω ≈ 2.5 %.
func NewSearch(l *Lists, o geom.Point, omega int) *Search {
	return newSearch(l, o, omega)
}

// NewDiskSearch creates a resumable search for object o over
// disk-resident lists (Section 7.6: plain SB with F on disk).
func NewDiskSearch(l *DiskLists, o geom.Point, omega int) *Search {
	return newSearch(l, o, omega)
}

func newSearch(l listSource, o geom.Point, omega int) *Search {
	if omega < 1 {
		omega = 1
	}
	dims, nf := l.dims(), l.funcCount()
	s, _ := searchPool.Get().(*Search)
	if s == nil {
		s = &Search{}
	}
	s.l, s.obj, s.omega, s.err = l, o, omega, nil
	s.guarantee = 0
	if cap(s.pos) >= dims {
		s.pos = s.pos[:dims]
		s.lastSeen = s.lastSeen[:dims]
		s.dimOrder = s.dimOrder[:dims]
	} else {
		s.pos = make([]int, dims)
		s.lastSeen = make([]float64, dims)
		s.dimOrder = make([]int, dims)
	}
	s.linear = l.linearOnly()
	if s.linear {
		// Keep the objSorted backing array: a recycled Search may serve
		// a non-linear source next, and linear searches never read it.
		s.fams = nil
	} else {
		s.fams = l.familySet()
		if cap(s.objSorted) >= dims {
			s.objSorted = s.objSorted[:dims]
		} else {
			s.objSorted = make([]float64, dims)
		}
	}
	if cap(s.seen) >= nf {
		s.seen = s.seen[:nf]
	} else {
		s.seen = make([]uint32, nf)
		s.epoch = 0
	}
	if cap(s.queue) < 2*omega+2 {
		// The live window holds at most Ω entries and the discarded
		// prefix at most Ω more before the guarantee forces a reset, so
		// 2Ω+2 capacity means insert never reallocates.
		s.queue = make([]cand, 0, 2*omega+2)
	} else {
		s.queue = s.queue[:0]
	}
	fillDimOrder(s.dimOrder, o)
	if !s.linear {
		for j, d := range s.dimOrder {
			s.objSorted[j] = o[d]
		}
	}
	s.reset()
	return s
}

// Release returns the search — struct and buffers — to a shared pool for
// reuse by future searches. The search must not be used afterwards.
// Idempotent; safe to call from concurrent workers (the pool is
// goroutine-safe).
func (s *Search) Release() {
	if s.l == nil {
		return
	}
	s.l = nil
	s.obj = nil
	s.fams = nil
	searchPool.Put(s)
}

// dimOrderFor returns dimension indexes sorted by descending object
// value — the fixed greedy order of the fractional knapsack for this
// object.
func dimOrderFor(o geom.Point) []int {
	order := make([]int, len(o))
	fillDimOrder(order, o)
	return order
}

// fillDimOrder writes the greedy dimension order into a caller-owned
// slice (len(order) == len(o)). Insertion sort: D is small (2–5 in every
// experiment) and sort.Slice would allocate a reflection swapper on the
// per-search hot path.
func fillDimOrder(order []int, o geom.Point) {
	for i := range order {
		d := i
		j := i
		for j > 0 && o[order[j-1]] < o[d] {
			order[j] = order[j-1]
			j--
		}
		order[j] = d
	}
}

func (s *Search) reset() {
	for i := range s.pos {
		s.pos[i] = 0
	}
	for i := range s.lastSeen {
		s.lastSeen[i] = s.l.maxBudget()
	}
	s.epoch++ // invalidates all seen marks without clearing
	if s.epoch == 0 {
		// uint32 wrap: marks from the distant past could now collide;
		// clear once and restart the epoch sequence.
		clear(s.seen)
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	s.qhead = 0
	s.guarantee = s.omega
}

// qlen returns the live candidate count.
func (s *Search) qlen() int { return len(s.queue) - s.qhead }

// Footprint approximates the bytes held by this search state, for the
// paper's memory metric.
func (s *Search) Footprint() int64 {
	return int64(len(s.seen))*4 + int64(s.qlen())*24 + int64(s.l.dims())*16 + 64
}

// Err returns the first I/O error encountered (disk-backed sources only).
func (s *Search) Err() error { return s.err }

// Best returns the live function maximizing f(obj), resuming the previous
// scan when possible. ok is false when no live functions remain or an
// I/O error occurred (check Err).
func (s *Search) Best() (id uint64, score float64, ok bool) {
	if s.l.liveCount() == 0 || s.err != nil {
		return 0, 0, false
	}
	for {
		// Lazily discard queue heads that were assigned elsewhere; each
		// discard consumes guarantee budget.
		for s.qlen() > 0 && s.l.removedAt(s.queue[s.qhead].idx) {
			s.qhead++
			s.guarantee--
		}
		if s.guarantee <= 0 {
			s.l.counters().addRestart()
			s.reset()
			continue
		}
		exhausted := s.exhausted()
		if s.qlen() > 0 {
			top := s.queue[s.qhead]
			if exhausted || top.score >= s.threshold() {
				return top.id, top.score, true
			}
		} else if exhausted {
			// Everything scanned but the queue is empty: candidates were
			// lost to pops after overflow. Restart rebuilds them.
			s.l.counters().addRestart()
			s.reset()
			continue
		}
		if !s.step() {
			return 0, 0, false
		}
	}
}

// famBoundSlack pads the generalized family bounds: the greedy
// knapsack accumulates budget subtractions and products in a different
// order than Eval scores a function, so the computed bound can land a
// few ULPs below the exact score of a function sitting right at the
// per-dimension ceilings — and an unpadded stop would then miss it.
// The pad is orders of magnitude above the worst-case rounding error
// (≤ D products of values ≤ γ·B) and orders below any score gap the
// harness distinguishes; it costs at most a few extra accesses. The
// all-linear fast path keeps the paper's exact T_tight comparison,
// preserving byte-identical behavior on linear workloads.
const famBoundSlack = 1e-12

// famBoundPad turns the slack into an absolute pad for a concrete bound
// value. Rounding error scales with the magnitude of the quantities
// summed, so a fixed 1e-12 is only safe while scores stay O(1): at
// |bound| ≈ 1e4 one ULP is already ~2e-12 and a constant pad can leave
// the threshold below the exact score of a ceiling-tight function —
// a missed top-1. Above magnitude 1, the pad therefore grows
// proportionally (1e-12 · |bound|, ≈ 4500 ULPs at any scale); below it,
// the absolute floor keeps bounds near zero safe too.
func famBoundPad(bound float64) float64 {
	if bound < 0 {
		bound = -bound
	}
	if bound > 1 {
		return famBoundSlack * bound
	}
	return famBoundSlack
}

// threshold returns the upper bound on any not-yet-seen function's
// score for the current cursor positions. In the all-linear case this
// is T_tight, walking the precomputed greedy dimension order
// (equivalent to TightThreshold but allocation-free — this runs once
// per sorted access). With non-linear families present it is the
// largest per-family bound over the same last-seen ceilings
// (score.MaxBound), which is what keeps TA correct for any monotone
// aggregate.
func (s *Search) threshold() float64 {
	if !s.linear {
		b := score.MaxBound(s.fams, s.lastSeen, s.obj, s.dimOrder, s.objSorted, s.l.maxBudget())
		return b + famBoundPad(b)
	}
	b := s.l.maxBudget()
	t := 0.0
	for _, d := range s.dimOrder {
		if b <= 0 {
			break
		}
		beta := s.lastSeen[d]
		if beta > b {
			beta = b
		}
		p := beta * s.obj[d]
		t += p
		b -= beta
	}
	return t
}

func (s *Search) exhausted() bool {
	for d := 0; d < s.l.dims(); d++ {
		if s.pos[d] < s.l.listLength(d) {
			return false
		}
	}
	return true
}

// step performs one sorted access on the most promising list (biased
// probing: maximize lastSeen_i · o_i) plus the random accesses needed to
// score a newly seen function. It returns false on I/O error.
func (s *Search) step() bool {
	best, bestVal := -1, -1.0
	for d := 0; d < s.l.dims(); d++ {
		if s.pos[d] >= s.l.listLength(d) {
			continue
		}
		if v := s.lastSeen[d] * s.obj[d]; v > bestVal {
			best, bestVal = d, v
		}
	}
	if best == -1 {
		return true
	}
	e, err := s.l.entryAt(best, s.pos[best])
	if err != nil {
		s.err = err
		return false
	}
	s.pos[best]++
	s.lastSeen[best] = e.coef
	if s.seen[e.idx] == s.epoch {
		return true
	}
	s.seen[e.idx] = s.epoch
	if s.l.removedAt(e.idx) {
		return true
	}
	w, err := s.l.weightsAt(e.idx, e.id, best, e.coef)
	if err != nil {
		s.err = err
		return false
	}
	var sc float64
	if s.linear {
		sc = geom.Dot(w, s.obj)
	} else {
		// s.objSorted was built once at search construction; for OWA
		// candidates this turns every scoring random access into a plain
		// dot product (bit-identical: OWA's Eval is Dot over exactly this
		// sorted vector).
		sc = score.EvalPrepared(s.l.familyAt(e.idx), w, s.obj, s.objSorted)
	}
	s.insert(cand{id: e.id, idx: e.idx, score: sc})
	return true
}

// insert places c into the descending queue, keeping at most omega
// entries (dropping the worst preserves the top-Ω property). The binary
// search is hand-rolled: a sort.Search closure would escape to the heap
// on this per-sorted-access path.
func (s *Search) insert(c cand) {
	lo, hi := s.qhead, len(s.queue)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		q := s.queue[mid]
		var after bool
		if q.score != c.score {
			after = q.score < c.score
		} else {
			after = q.id > c.id
		}
		if after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	s.queue = append(s.queue, cand{})
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = c
	if s.qlen() > s.omega {
		s.queue = s.queue[:s.qhead+s.omega]
	}
}
