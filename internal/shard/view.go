package shard

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"fairassign/internal/assign"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
	"fairassign/internal/topk"
)

// shardPub is one shard's capture at its latest published epoch: a
// pinned page snapshot plus flat copies of the capture-visible logical
// state. It is refcounted twice over — once by the shard (which caches
// it until the shard next changes) and once per globalPub composing it
// — so a clean shard contributes to any number of global snapshots for
// the cost of a refcount increment.
type shardPub struct {
	refs atomic.Int64

	shard int
	epoch uint64
	snap  *pagestore.Snapshot
	meta  rtree.Meta
	avail []rtree.Item
	objs  []assign.Object
}

func (p *shardPub) retain() { p.refs.Add(1) }

func (p *shardPub) release() {
	if p.refs.Add(-1) == 0 {
		p.snap.Release()
	}
}

// globalPub is one published sequence point of the sharded engine: the
// per-shard captures current at one global sequence number, pinned
// together atomically under the writer lock, plus the global function
// table and matching. Like the workspace pubState it is shared between
// the engine (cached until the next commit) and every View.
type globalPub struct {
	refs atomic.Int64

	seq   uint64
	dims  int
	stats Stats

	shards []*shardPub
	funcs  []assign.Function
	pairs  []assign.Pair

	sortOnce sync.Once

	objs     []assign.Object
	objsOnce sync.Once

	objByID     map[uint64]assign.Object
	objByIDOnce sync.Once
}

func (g *globalPub) retain() { g.refs.Add(1) }

func (g *globalPub) tryRetain() bool {
	for {
		r := g.refs.Load()
		if r <= 0 {
			return false
		}
		if g.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

func (g *globalPub) release() {
	if g.refs.Add(-1) == 0 {
		for _, sp := range g.shards {
			sp.release()
		}
	}
}

func (g *globalPub) sortedPairs() []assign.Pair {
	g.sortOnce.Do(func() { assign.SortPairs(g.pairs) })
	return g.pairs
}

func (g *globalPub) allObjs() []assign.Object {
	g.objsOnce.Do(func() {
		n := 0
		for _, sp := range g.shards {
			n += len(sp.objs)
		}
		objs := make([]assign.Object, 0, n)
		for _, sp := range g.shards {
			objs = append(objs, sp.objs...)
		}
		sortObjectsByID(objs)
		g.objs = objs
	})
	return g.objs
}

func (g *globalPub) object(id uint64) (assign.Object, bool) {
	g.objByIDOnce.Do(func() {
		idx := make(map[uint64]assign.Object)
		for _, sp := range g.shards {
			for _, o := range sp.objs {
				idx[o.ID] = o
			}
		}
		g.objByID = idx
	})
	o, ok := g.objByID[id]
	return o, ok
}

func sortObjectsByID(objs []assign.Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID < objs[j].ID })
}

func sortFunctionsByID(funcs []assign.Function) {
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].ID < funcs[j].ID })
}

// Snapshot pins the engine's latest published state and returns a
// snapshot-isolated View over it. Like Workspace.Snapshot it is
// lock-free when the composed capture is already cached (the common
// case on a read-heavy engine: only dirty shards force a re-capture,
// and only the first snapshot after a commit pays it).
func (e *Engine) Snapshot() (*View, error) {
	if g := e.pubA.Load(); g != nil && g.tryRetain() {
		if e.closedA.Load() {
			g.release()
			return nil, assign.ErrClosed
		}
		return &View{pub: g}, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.liveLocked(); err != nil {
		return nil, err
	}
	if e.pub == nil {
		e.pub = e.captureLocked()
		e.pubA.Store(e.pub)
	}
	e.pub.retain()
	return &View{pub: e.pub}, nil
}

// captureLocked composes the global capture for the current sequence
// number: every state-dirty shard is re-captured (pinning its latest
// epoch and copying its object table), every clean shard's cached
// capture is retained as-is. This is where sharding pays off on the
// serving path — after a mutation touching one shard, the next
// snapshot copies 1/N of the object space instead of all of it.
func (e *Engine) captureLocked() *globalPub {
	g := &globalPub{seq: e.seq, dims: e.dims, stats: e.statsLocked()}
	g.refs.Store(1)
	g.shards = make([]*shardPub, len(e.shards))
	for i, sh := range e.shards {
		if sh.pub == nil || sh.stateDirty {
			if sh.pub != nil {
				sh.pub.release()
			}
			sh.pub = sh.capture()
			sh.stateDirty = false
		}
		sh.pub.retain()
		g.shards[i] = sh.pub
	}
	if e.funcDirty || e.funcsSnap == nil {
		snap := make([]assign.Function, 0, len(e.funcs))
		for _, f := range e.funcs {
			snap = append(snap, f)
		}
		sortFunctionsByID(snap)
		e.funcsSnap = snap
		e.funcDirty = false
	}
	g.funcs = e.funcsSnap
	g.pairs = e.pairsLocked()
	return g
}

// View is a snapshot-isolated read handle on a sharded engine: one
// pinned page snapshot per shard, acquired atomically under a single
// global sequence number, plus the frozen matching and function table.
// Logical reads answer from the captured state; ranked queries merge
// the per-shard frozen indexes lazily by score ceiling. A View is safe
// for concurrent use, stays valid after the engine is closed, and must
// be Closed to release the pinned epochs.
type View struct {
	pub    *globalPub
	closed atomic.Bool
}

// Seq returns the global commit sequence number this view pins.
func (v *View) Seq() uint64 { return v.pub.seq }

// Dims returns the problem dimensionality.
func (v *View) Dims() int { return v.pub.dims }

// Closed reports whether Close has been called.
func (v *View) Closed() bool { return v.closed.Load() }

// Close releases the view's pins. Idempotent.
func (v *View) Close() {
	if v.closed.CompareAndSwap(false, true) {
		v.pub.release()
	}
}

// Pairs returns the frozen matching in the definitional greedy order.
// Shared by every caller on this sequence point; treat as immutable.
func (v *View) Pairs() []assign.Pair {
	if v.closed.Load() {
		return nil
	}
	return v.pub.sortedPairs()
}

// Stats returns the engine summary as of the view's sequence point.
func (v *View) Stats() Stats {
	if v.closed.Load() {
		return Stats{}
	}
	return v.pub.stats
}

// Object returns a frozen object by ID.
func (v *View) Object(id uint64) (assign.Object, bool) {
	if v.closed.Load() {
		return assign.Object{}, false
	}
	return v.pub.object(id)
}

// Problem materializes the frozen population as a Problem (entities
// sorted by ID). Slices are shared with the view; treat as immutable.
func (v *View) Problem() *assign.Problem {
	if v.closed.Load() {
		return nil
	}
	return &assign.Problem{Dims: v.pub.dims, Objects: v.pub.allObjs(), Functions: v.pub.funcs}
}

// VerifyStable checks that the frozen matching is stable for the
// frozen population — answered entirely from the snapshot.
func (v *View) VerifyStable() error {
	if v.closed.Load() {
		return assign.ErrViewClosed
	}
	return assign.IsStable(v.Problem(), v.Pairs())
}

// ShardTree returns one shard's object index frozen at the view's
// sequence point.
func (v *View) ShardTree(i int) *rtree.View {
	sp := v.pub.shards[i]
	return rtree.NewView(sp.snap, v.pub.dims, sp.meta)
}

// AvailableFrontier returns the union of the frozen per-shard
// availability skylines. Unlike the single workspace's frontier this
// may contain points dominated across shard boundaries (each shard
// maintains its own skyline); the set of available objects it covers
// is identical. Shared and immutable.
func (v *View) AvailableFrontier() []rtree.Item {
	if v.closed.Load() {
		return nil
	}
	var out []rtree.Item
	for _, sp := range v.pub.shards {
		out = append(out, sp.avail...)
	}
	return out
}

// Skyline computes the global skyline of the frozen object set: BBS
// over each shard's pinned index, then one BNL pass over the
// concatenated per-shard skylines (the skyline of a union is the
// skyline of the unions' skylines).
func (v *View) Skyline() ([]rtree.Item, error) {
	if v.closed.Load() {
		return nil, assign.ErrViewClosed
	}
	var all []rtree.Item
	for i := range v.pub.shards {
		sky, err := skyline.Compute(v.ShardTree(i), nil)
		if err != nil {
			return nil, err
		}
		all = append(all, sky...)
	}
	return skyline.BNL(all), nil
}

// TopK runs the merged ranked search for a linear preference function.
func (v *View) TopK(weights []float64, k int) ([]rtree.Item, []float64, error) {
	return v.TopKScorer(score.LinearScorer(weights), k)
}

// TopKScorer answers a global top-k query by lazily merging one BRS
// stream per shard, TA-style: a shard's searcher only advances while
// its score ceiling (the maxscore bound at the head of its frontier
// heap) could still beat the best already-buffered candidate, so cold
// shards stop after their root node and the per-query I/O concentrates
// on the shards that actually hold results. Emission order — score
// descending, ties to the lower ID — is identical to a single-tree BRS
// over the union of the shards.
func (v *View) TopKScorer(sc score.Scorer, k int) ([]rtree.Item, []float64, error) {
	if v.closed.Load() {
		return nil, nil, assign.ErrViewClosed
	}
	type stream struct {
		sr   *topk.Searcher
		it   rtree.Item
		s    float64
		have bool
		done bool
	}
	streams := make([]stream, len(v.pub.shards))
	for i := range v.pub.shards {
		streams[i].sr = topk.NewScorerSearcher(v.ShardTree(i), sc, nil)
	}
	var items []rtree.Item
	var scores []float64
	for len(items) < k {
		// Best buffered candidate across streams.
		best := -1
		for i := range streams {
			st := &streams[i]
			if !st.have {
				continue
			}
			if best < 0 || st.s > streams[best].s || (st.s == streams[best].s && st.it.ID < streams[best].it.ID) {
				best = i
			}
		}
		bestScore := math.Inf(-1)
		if best >= 0 {
			bestScore = streams[best].s
		}
		// Advance every unbuffered stream whose ceiling could still
		// matter. >= (not >) keeps equal-score candidates in play so the
		// cross-shard ID tiebreak sees them all before anything emits.
		advanced := false
		for i := range streams {
			st := &streams[i]
			if st.have || st.done {
				continue
			}
			if st.sr.Ceiling() >= bestScore {
				it, s, ok, err := st.sr.Next()
				if err != nil {
					return nil, nil, err
				}
				if ok {
					st.it, st.s, st.have = it, s, true
				} else {
					st.done = true
				}
				advanced = true
			}
		}
		if advanced {
			continue
		}
		if best < 0 {
			break // every shard drained
		}
		items = append(items, streams[best].it)
		scores = append(scores, streams[best].s)
		streams[best].have = false
	}
	return items, scores, nil
}

// IOReads reports the page resolutions served by this view's pinned
// snapshots (reader-side I/O; never charged to the writer).
func (v *View) IOReads() int64 {
	var n int64
	for _, sp := range v.pub.shards {
		n += sp.snap.Reads()
	}
	return n
}
