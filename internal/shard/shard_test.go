package shard

import (
	"errors"
	"testing"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/geom"
)

func testProblem(t *testing.T, n int) *assign.Problem {
	t.Helper()
	return &assign.Problem{
		Dims:      2,
		Objects:   datagen.Objects(datagen.Independent, n, 2, 42),
		Functions: datagen.Functions(8, 2, 43),
	}
}

func TestPartitionerSpatialBalance(t *testing.T) {
	objs := datagen.Objects(datagen.Independent, 1000, 3, 7)
	for _, n := range []int{1, 2, 4, 7} {
		p := NewPartitioner(3, n, objs, PartitionAuto)
		if p.Kind() != PartitionSpatial {
			t.Fatalf("n=%d: kind = %s, want spatial", n, p.Kind())
		}
		counts := make([]int, n)
		for _, o := range objs {
			s := p.Route(o.Point, o.ID)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: route(%d) = %d out of range", n, o.ID, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c < 1000/n-1 || c > 1000/n+1 {
				t.Fatalf("n=%d: shard %d holds %d objects, want ~%d", n, s, c, 1000/n)
			}
		}
	}
}

func TestPartitionerHashFallback(t *testing.T) {
	// Every object on the same point: no axis has enough distinct
	// coordinates, so Auto must fall back to hashing.
	objs := make([]assign.Object, 64)
	for i := range objs {
		objs[i] = assign.Object{ID: uint64(i + 1), Point: geom.Point{0.5, 0.5}}
	}
	p := NewPartitioner(2, 4, objs, PartitionAuto)
	if p.Kind() != PartitionHash {
		t.Fatalf("kind = %s, want hash fallback", p.Kind())
	}
	counts := make([]int, 4)
	for _, o := range objs {
		counts[p.Route(o.Point, o.ID)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("hash routing left shard %d empty: %v", s, counts)
		}
	}
	// Forced spatial stays spatial even when degenerate (ID tiebreak
	// keeps the ranges well defined).
	if k := NewPartitioner(2, 4, objs, PartitionSpatial).Kind(); k != PartitionSpatial {
		t.Fatalf("forced spatial resolved to %s", k)
	}
}

func TestPartitionerRouteStable(t *testing.T) {
	objs := datagen.Objects(datagen.Correlated, 200, 2, 11)
	p := NewPartitioner(2, 4, objs, PartitionAuto)
	// Routing is a pure function: the same (point, ID) always lands on
	// the same shard, including points never seen at construction.
	fresh := datagen.Objects(datagen.Correlated, 50, 2, 12)
	for _, o := range append(objs, fresh...) {
		a, b := p.Route(o.Point, o.ID), p.Route(o.Point, o.ID)
		if a != b {
			t.Fatalf("route(%d) unstable: %d vs %d", o.ID, a, b)
		}
	}
}

func TestEngineRejectsDurability(t *testing.T) {
	p := testProblem(t, 50)
	if _, err := New(p, assign.Config{Durable: true}, Options{Shards: 2}); !errors.Is(err, ErrDurabilityUnsupported) {
		t.Fatalf("Durable config: err = %v, want ErrDurabilityUnsupported", err)
	}
	if _, err := New(p, assign.Config{WALDir: t.TempDir()}, Options{Shards: 2}); !errors.Is(err, ErrDurabilityUnsupported) {
		t.Fatalf("WALDir config: err = %v, want ErrDurabilityUnsupported", err)
	}
}

func TestSnapshotIsolationAcrossShards(t *testing.T) {
	e, err := New(testProblem(t, 120), assign.Config{PageSize: 512}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	before, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()
	frozen := append([]assign.Pair(nil), before.Pairs()...)
	seq := before.Seq()

	// Mutate: one arrival and one departure, routed to whatever shards
	// own them.
	if err := e.Apply([]assign.Mutation{
		{Kind: assign.MutAddObject, Object: assign.Object{ID: 900_001, Point: geom.Point{0.31, 0.62}}},
		{Kind: assign.MutRemoveObject, ID: frozen[0].ObjectID},
	}); err != nil {
		t.Fatal(err)
	}

	after, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	if after.Seq() <= seq {
		t.Fatalf("sequence did not advance: %d -> %d", seq, after.Seq())
	}
	got := before.Pairs()
	if len(got) != len(frozen) {
		t.Fatalf("pinned view drifted: %d pairs, had %d", len(got), len(frozen))
	}
	for i := range got {
		if got[i] != frozen[i] {
			t.Fatalf("pinned view drifted at pair %d", i)
		}
	}
	if err := before.VerifyStable(); err != nil {
		t.Fatalf("pinned view unstable for its own population: %v", err)
	}
	if err := after.VerifyStable(); err != nil {
		t.Fatalf("fresh view unstable: %v", err)
	}
	if _, ok := after.Object(900_001); !ok {
		t.Fatal("fresh view missing the arrival")
	}
	if _, ok := before.Object(900_001); ok {
		t.Fatal("pinned view sees the future")
	}
}

func TestCleanShardCaptureReuse(t *testing.T) {
	e, err := New(testProblem(t, 400), assign.Config{PageSize: 512}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	v1, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()

	// A single object arrival dirties exactly one shard. The next
	// snapshot must reuse the other shards' cached captures: same
	// shardPub pointers, new one only where the mutation landed.
	o := assign.Object{ID: 900_100, Point: geom.Point{0.77, 0.18}}
	dirty := e.RouteObject(o.Point, o.ID)
	if err := e.Apply([]assign.Mutation{{Kind: assign.MutAddObject, Object: o}}); err != nil {
		t.Fatal(err)
	}
	v2, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	for i := range v1.pub.shards {
		same := v1.pub.shards[i] == v2.pub.shards[i]
		if i == dirty && same {
			t.Fatalf("dirty shard %d did not recapture", i)
		}
		if i != dirty && !same {
			t.Fatalf("clean shard %d recaptured (epoch %d -> %d)", i,
				v1.pub.shards[i].epoch, v2.pub.shards[i].epoch)
		}
	}
	// Epochs advance only on the dirty shard.
	if v2.pub.shards[dirty].epoch <= v1.pub.shards[dirty].epoch {
		t.Fatalf("dirty shard epoch did not advance")
	}
}

func TestShardStatsDecompose(t *testing.T) {
	e, err := New(testProblem(t, 150), assign.Config{PageSize: 512}, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := e.Stats()
	if s.Shards != 3 || len(s.PerShard) != 3 {
		t.Fatalf("shard count: %+v", s)
	}
	objs, units, frontier := 0, 0, 0
	for _, ps := range s.PerShard {
		objs += ps.Objects
		units += ps.AssignedUnits
		frontier += ps.Frontier
	}
	if objs != s.Objects || units != s.AssignedUnits || frontier != s.Frontier {
		t.Fatalf("per-shard totals (%d, %d, %d) disagree with globals (%d, %d, %d)",
			objs, units, frontier, s.Objects, s.Functions, s.AssignedUnits)
	}
	if s.Objects != 150 {
		t.Fatalf("objects = %d, want 150", s.Objects)
	}
}

func TestUseAfterClose(t *testing.T) {
	e, err := New(testProblem(t, 60), assign.Config{}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Snapshot(); !errors.Is(err, assign.ErrClosed) {
		t.Fatalf("Snapshot after Close: %v, want ErrClosed", err)
	}
	if err := e.Apply([]assign.Mutation{{Kind: assign.MutRemoveObject, ID: 1}}); !errors.Is(err, assign.ErrClosed) {
		t.Fatalf("Apply after Close: %v, want ErrClosed", err)
	}
	// The pre-close view keeps serving its pinned state.
	if err := v.VerifyStable(); err != nil {
		t.Fatalf("pre-close view died with the engine: %v", err)
	}
	v.Close()
	if _, _, err := v.TopK([]float64{0.5, 0.5}, 3); !errors.Is(err, assign.ErrViewClosed) {
		t.Fatalf("TopK on closed view: %v, want ErrViewClosed", err)
	}
}
