package shard

import (
	"sort"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
)

// PartitionKind selects how objects are mapped to shards.
type PartitionKind uint8

const (
	// PartitionAuto derives a spatial partition from the initial object
	// set and falls back to hashing when the distribution is degenerate
	// (too few objects, or not enough distinct coordinates on any axis
	// to cut balanced ranges).
	PartitionAuto PartitionKind = iota
	// PartitionSpatial forces the spatial range partition.
	PartitionSpatial
	// PartitionHash forces ID hashing.
	PartitionHash
)

func (k PartitionKind) String() string {
	switch k {
	case PartitionSpatial:
		return "spatial"
	case PartitionHash:
		return "hash"
	default:
		return "auto"
	}
}

// splitKey is one range boundary of the spatial partition: the STR sort
// key of the first object of a shard's range. Keys are (coordinate on
// the split axis, object ID) — exactly the order rtree's STR bulk load
// sorts its top-level slabs by, so contiguous key ranges are contiguous
// runs of the bulk-load layout and spatially coherent.
type splitKey struct {
	coord float64
	id    uint64
}

func (k splitKey) less(coord float64, id uint64) bool {
	if k.coord != coord {
		return k.coord < coord
	}
	return k.id < id
}

// Partitioner maps objects to shards and never changes for the life of
// an engine: arrivals are routed by the boundaries (or hash) derived
// from the initial population, so an object's owning shard is a pure
// function of its point and ID.
type Partitioner struct {
	n    int
	kind PartitionKind // resolved: PartitionSpatial or PartitionHash
	dim  int           // split axis of the spatial partition
	cuts []splitKey    // n-1 ascending boundaries; shard i owns keys < cuts[i]
}

// NewPartitioner derives a partitioner for n shards from the initial
// objects. With PartitionAuto (or PartitionSpatial) it sorts the
// objects in STR key order — center coordinate on the split axis, ties
// by ID — and cuts n equal contiguous ranges, choosing the axis with
// the most distinct coordinates; if no axis offers at least n distinct
// values (a degenerate distribution: everything stacked on a line, or
// fewer objects than shards), Auto falls back to ID hashing, which
// keeps shards balanced regardless of geometry.
func NewPartitioner(dims, n int, objs []assign.Object, kind PartitionKind) *Partitioner {
	if n < 1 {
		n = 1
	}
	p := &Partitioner{n: n, kind: PartitionHash}
	if n == 1 {
		p.kind = PartitionSpatial // trivially spatial: one range
		return p
	}
	if kind == PartitionHash {
		return p
	}
	dim, ok := bestSplitAxis(dims, n, objs)
	if !ok {
		if kind == PartitionSpatial {
			// Forced spatial on a degenerate distribution: cut on axis 0
			// anyway (ID ties keep the ranges well defined).
			dim = 0
		} else {
			return p
		}
	}
	keys := make([]splitKey, len(objs))
	for i, o := range objs {
		keys[i] = splitKey{coord: o.Point[dim], id: o.ID}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j].coord, keys[j].id) })
	p.kind = PartitionSpatial
	p.dim = dim
	p.cuts = make([]splitKey, 0, n-1)
	for s := 1; s < n; s++ {
		at := s * len(keys) / n
		if at >= len(keys) {
			at = len(keys) - 1
		}
		p.cuts = append(p.cuts, keys[at])
	}
	return p
}

// bestSplitAxis picks the axis with the most distinct coordinates,
// requiring at least n so every range boundary separates real mass.
func bestSplitAxis(dims, n int, objs []assign.Object) (int, bool) {
	bestDim, bestDistinct := 0, 0
	seen := make(map[float64]struct{}, len(objs))
	for d := 0; d < dims; d++ {
		clear(seen)
		for _, o := range objs {
			seen[o.Point[d]] = struct{}{}
		}
		if len(seen) > bestDistinct {
			bestDim, bestDistinct = d, len(seen)
		}
	}
	return bestDim, bestDistinct >= n && len(objs) >= n
}

// Shards returns the shard count.
func (p *Partitioner) Shards() int { return p.n }

// Kind returns the resolved partition strategy.
func (p *Partitioner) Kind() PartitionKind { return p.kind }

// Route returns the shard owning an object. Spatial routing is a
// binary search over the range boundaries on the split axis; hash
// routing mixes the ID through splitmix64.
func (p *Partitioner) Route(pt geom.Point, id uint64) int {
	if p.n == 1 {
		return 0
	}
	if p.kind == PartitionHash || p.dim >= len(pt) {
		// Hash partition, or a malformed point (wrong dimensionality —
		// validation will reject the mutation, but routing must not
		// panic first).
		return int(splitmix64(id) % uint64(p.n))
	}
	c := pt[p.dim]
	lo, hi := 0, len(p.cuts) // shard index = number of cuts <= key
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cuts[mid].less(c, id) || p.cuts[mid] == (splitKey{coord: c, id: id}) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// splitmix64 is the standard 64-bit finalizer (Vigna); enough avalanche
// that sequential IDs spread uniformly over shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
