package shard

import (
	"math"

	"fairassign/internal/geom"
	"fairassign/internal/score"
	"fairassign/internal/topk"
)

// repair drains the free-unit queue, exactly like the single
// workspace: every step either fills a free slot (bounded by total
// capacity) or replaces an assignment with a strictly better one in
// the greedy order, so the cascade terminates with no blocking pair.
// Displaced proposals re-enter the global queue and may re-route to
// any shard; what stays shard-local is the index work each step does.
func (e *Engine) repair() error {
	for len(e.queue) > 0 {
		it := e.queue[0]
		e.queue = e.queue[1:]
		var err error
		if it.isFunc {
			err = e.placeFunction(it.id)
		} else {
			err = e.fillObject(it.id)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// placeFunction runs proposal chains for every free unit of a function.
func (e *Engine) placeFunction(fid uint64) error {
	if _, ok := e.funcs[fid]; !ok {
		return nil // departed while queued
	}
	for e.funcRemaining[fid] > 0 {
		oid, s, displace, ok, err := e.bestEntry(fid)
		if err != nil {
			return err
		}
		if !ok {
			return nil // no object accepts: the unit stays free
		}
		sh := e.shards[e.objShard[oid]]
		if displace {
			evicted := worstOfObj(sh.byObj[oid])
			e.unlink(evicted)
			e.funcRestore(evicted.fid)
			e.pushFunc(evicted.fid)
		} else if err := sh.consumeUnit(oid); err != nil {
			return err
		}
		e.funcConsume(fid)
		e.link(pair{fid: fid, oid: oid, score: s})
		e.chainSteps++
	}
	return nil
}

// shardCand is one shard's answer to a cross-shard search round.
type shardCand struct {
	ok    bool
	id    uint64
	score float64
}

// betterCand is the global combine order for per-shard candidates:
// higher score wins, ties to the lower ID — the same total order BRS
// enumerates inside a single tree, which is what makes the cross-shard
// combine land on the identical object a one-tree search would.
func betterCand(a, b shardCand) bool {
	if !b.ok {
		return a.ok
	}
	if !a.ok {
		return false
	}
	return a.score > b.score || (a.score == b.score && a.id < b.id)
}

// bestEntry finds the best object a function unit can enter, via the
// bounded cross-shard displacement protocol:
//
//  1. frontier-ceiling exchange — every shard's availability skyline
//     reports its best object under the proposer's scorer (one batched
//     columnar pass per shard, no I/O); the global best prices the
//     round;
//  2. displacement search — every shard runs a BRS search over its own
//     tree, skip-filtered to objects that would actually evict for
//     this proposer and bounded below by the availability ceiling, so
//     only the index region that could beat a free object is expanded;
//  3. combine — the per-shard winners and the availability best merge
//     by (score desc, ID asc), preferring displacement only when it
//     strictly beats taking the free object, exactly as the
//     single-tree comparison does.
//
// The searches fan out across Options.SearchWorkers; each shard's
// search touches only its own pool, tree, and scratch.
func (e *Engine) bestEntry(fid uint64) (oid uint64, sc float64, displace, ok bool, err error) {
	fsc := e.scorerOf(fid)

	frontier := make([]shardCand, len(e.shards))
	_ = e.runShards(func(i int, sh *core) error {
		if it, s, bok := sh.avail.Best(fsc); bok {
			frontier[i] = shardCand{ok: true, id: it.ID, score: s}
		}
		return nil
	})
	var avail shardCand
	for _, c := range frontier {
		if betterCand(c, avail) {
			avail = c
		}
	}
	availScore := math.Inf(-1)
	if avail.ok {
		availScore = avail.score
	}

	bound := availScore
	cands := make([]shardCand, len(e.shards))
	serr := e.runShards(func(i int, sh *core) error {
		sr := topk.NewScorerSearcher(sh.tree, fsc, func(cand uint64) bool {
			return !e.displaceableIn(sh, fid, fsc, cand)
		})
		it, s, found, err := sr.NextAtLeast(bound)
		if err != nil {
			return err
		}
		if found {
			cands[i] = shardCand{ok: true, id: it.ID, score: s}
		}
		return nil
	})
	e.searches += int64(len(e.shards))
	if serr != nil {
		return 0, 0, false, false, serr
	}
	var best shardCand
	for _, c := range cands {
		if betterCand(c, best) {
			best = c
		}
	}
	if best.ok && (!avail.ok || best.score > avail.score || (best.score == avail.score && best.id < avail.id)) {
		return best.id, best.score, true, true, nil
	}
	if avail.ok {
		return avail.id, avail.score, false, true, nil
	}
	return 0, 0, false, false, nil
}

// displaceableIn reports whether a full object on the given shard would
// evict its worst assignment in favor of the proposing function
// (available objects are handled by the frontier path and skipped
// here). Runs inside the per-shard search fan-out: it reads only the
// shard's own tables plus immutable engine state.
func (e *Engine) displaceableIn(sh *core, fid uint64, fsc score.Scorer, oid uint64) bool {
	if sh.remaining[oid] > 0 {
		return false
	}
	worst := worstOfObj(sh.byObj[oid])
	s := fsc.Score(sh.objs[oid].Point)
	return s > worst.score || (s == worst.score && fid < worst.fid)
}

// fillObject runs vacancy chains for every free unit of an object. The
// function side is global, so this is a verbatim port of the workspace
// version — only the object-side capacity bookkeeping routes to the
// owning shard.
func (e *Engine) fillObject(oid uint64) error {
	sidx, live := e.objShard[oid]
	if !live {
		return nil // departed while queued
	}
	sh := e.shards[sidx]
	for sh.remaining[oid] > 0 {
		gid, s, ok, err := e.bestTaker(sh, oid)
		if err != nil {
			return err
		}
		if !ok {
			return nil // nobody wants the vacancy: it stays open
		}
		if e.funcRemaining[gid] > 0 {
			e.funcConsume(gid)
		} else {
			// The mover abandons its worst unit, cascading the vacancy.
			left := worstOfFunc(e.byFunc[gid])
			e.unlink(left)
			e.shards[e.objShard[left.oid]].restoreUnit(left.oid)
			e.pushObj(left.oid)
		}
		if err := sh.consumeUnit(oid); err != nil {
			return err
		}
		e.link(pair{fid: gid, oid: oid, score: s})
		e.chainSteps++
	}
	return nil
}

// bestTaker finds the best function that wants a vacant object unit:
// a function with spare capacity wants it at any score; a fully
// assigned function wants it only above its current worst assignment.
// The reverse search runs over the global function R-tree — the
// function side is not sharded, so this is single-tree exactly as in
// the workspace.
func (e *Engine) bestTaker(sh *core, oid uint64) (gid uint64, sc float64, ok bool, err error) {
	o := sh.objs[oid]
	bound := math.Inf(1)
	if e.funcLive > 0 {
		// Some function has spare capacity and wants anything: no bound.
		bound = math.Inf(-1)
	} else {
		for fid := range e.funcs {
			if worst := worstOfFunc(e.byFunc[fid]); worst.score < bound {
				bound = worst.score
			}
		}
	}
	sr := topk.NewSearcher(e.ftree, o.Point, func(cand uint64) bool {
		return !e.wants(cand, oid, o.Point)
	})
	e.searches++
	it, s, found, err := sr.NextAtLeast(bound)
	if err != nil {
		return 0, 0, false, err
	}
	gid = it.ID
	// Non-linear functions live outside the weight tree; the columnar
	// blocks score them all with one pass under the same wants filter
	// and bound, ties to the lower ID exactly as the BRS enumeration.
	if bid, v, bok := e.nonlin.Best(o.Point, func(fid uint64, v float64) bool {
		return v >= bound && e.wantsAt(fid, oid, v)
	}); bok {
		if !found || v > s || (v == s && bid < gid) {
			gid, s, found = bid, v, true
		}
	}
	if !found {
		return 0, 0, false, nil
	}
	return gid, s, true, nil
}

// wants reports whether a function prefers the vacant object over its
// current worst assignment (or has a free unit).
func (e *Engine) wants(fid, oid uint64, point geom.Point) bool {
	if e.funcRemaining[fid] > 0 {
		return true
	}
	return e.wantsAt(fid, oid, e.scorerOf(fid).Score(point))
}

// wantsAt is wants with the function's score for the object already in
// hand (spare capacity is re-checked so both entry points agree).
func (e *Engine) wantsAt(fid, oid uint64, s float64) bool {
	if e.funcRemaining[fid] > 0 {
		return true
	}
	worst := worstOfFunc(e.byFunc[fid])
	return s > worst.score || (s == worst.score && oid < worst.oid)
}
