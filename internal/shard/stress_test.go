package shard

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/geom"
	"fairassign/internal/score"
)

// scoreMultisetEqual compares matchings as (function, object) multisets
// with scores equal to within roundoff.
func scoreMultisetEqual(a, b []assign.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	type key struct{ f, o uint64 }
	count := make(map[key]int, len(b))
	scores := make(map[key]float64, len(b))
	for _, p := range b {
		count[key{p.FuncID, p.ObjectID}]++
		scores[key{p.FuncID, p.ObjectID}] = p.Score
	}
	for _, p := range a {
		k := key{p.FuncID, p.ObjectID}
		if count[k] == 0 {
			return false
		}
		count[k]--
		if math.Abs(scores[k]-p.Score) > 1e-9 {
			return false
		}
	}
	return true
}

func stressOpsPerWriter() int {
	if s := os.Getenv("FAIRASSIGN_STRESS_MUTATIONS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	if testing.Short() {
		return 40
	}
	return 120
}

func randStressPoint(rng *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	for d := range p {
		p[d] = rng.Float64()
	}
	return p
}

func randStressWeights(rng *rand.Rand, dims int) []float64 {
	w := make([]float64, dims)
	sum := 0.0
	for d := range w {
		w[d] = 0.05 + rng.Float64()
		sum += w[d]
	}
	for d := range w {
		w[d] /= sum
	}
	return w
}

// TestShardedSnapshotStress runs K concurrent shard writers against N
// concurrent snapshot readers (run under -race in CI; bound the script
// with FAIRASSIGN_STRESS_MUTATIONS). Writers own disjoint ID ranges —
// their arrivals land on whatever shards the partitioner routes them
// to, so every interleaving exercises concurrent Apply calls whose
// repair chains cross shards. The interleaving is nondeterministic, so
// readers validate each view against the view's OWN pinned population:
// the frozen matching must be score-identical to a from-scratch SB
// solve of the frozen problem, stable for it, and bit-stable across
// re-reads of one view.
func TestShardedSnapshotStress(t *testing.T) {
	const dims = 3
	seed := int64(20260808)
	base := &assign.Problem{
		Dims:      dims,
		Objects:   datagen.Objects(datagen.Independent, 90, dims, seed),
		Functions: datagen.Functions(9, dims, seed+1),
	}
	// Mix in non-linear families so cross-shard frontier exchange runs
	// under every scorer kind while racing readers.
	famRng := rand.New(rand.NewSource(seed + 2))
	for i := range base.Functions {
		switch famRng.Intn(8) {
		case 0:
			base.Functions[i].Fam = score.Family{Kind: score.OWA}
		case 1:
			base.Functions[i].Fam = score.Family{Kind: score.Chebyshev}
		}
	}
	cfg := assign.Config{PageSize: 512, BufferFrac: 0.05}
	e, err := New(base, cfg, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	writers := 3
	readers := 2
	if n := runtime.GOMAXPROCS(0); n > 4 {
		readers = n - writers
	}
	ops := stressOpsPerWriter()

	var (
		done      atomic.Bool
		readCount atomic.Int64
		wg        sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				v, err := e.Snapshot()
				if err != nil {
					t.Errorf("reader %d: Snapshot: %v", r, err)
					return
				}
				pairs := v.Pairs()
				again := v.Pairs()
				for i := range pairs {
					if pairs[i] != again[i] {
						t.Errorf("reader %d: view pairs unstable at %d", r, i)
						v.Close()
						return
					}
				}
				p := v.Problem()
				cold, err := assign.SB(p, cfg)
				if err != nil {
					t.Errorf("reader %d: cold solve of pinned population: %v", r, err)
					v.Close()
					return
				}
				if !scoreMultisetEqual(pairs, cold.Pairs) {
					t.Errorf("reader %d: seq %d: view matching differs from cold SB solve of its own pinned population (%d pairs vs %d)",
						r, v.Seq(), len(pairs), len(cold.Pairs))
					v.Close()
					return
				}
				if readCount.Load()%8 == 0 {
					if err := v.VerifyStable(); err != nil {
						t.Errorf("reader %d: seq %d: %v", r, v.Seq(), err)
					}
				}
				v.Close()
				readCount.Add(1)
			}
		}(r)
	}

	var werr atomic.Value
	var wwg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wwg.Add(1)
		go func(wi int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(seed + 1000*int64(wi)))
			nextID := uint64(1<<32) + uint64(wi)<<24 // disjoint per-writer ID range
			var ownObjs, ownFuncs []uint64
			for op := 0; op < ops; op++ {
				var muts []assign.Mutation
				switch k := rng.Intn(5); {
				case k == 1 && len(ownObjs) > 4:
					at := rng.Intn(len(ownObjs))
					muts = append(muts, assign.Mutation{Kind: assign.MutRemoveObject, ID: ownObjs[at]})
					ownObjs = append(ownObjs[:at], ownObjs[at+1:]...)
				case k == 3 && wi == 0 && len(ownFuncs) > 2:
					at := rng.Intn(len(ownFuncs))
					muts = append(muts, assign.Mutation{Kind: assign.MutRemoveFunction, ID: ownFuncs[at]})
					ownFuncs = append(ownFuncs[:at], ownFuncs[at+1:]...)
				case k == 4 && wi == 0:
					nextID++
					f := assign.Function{ID: nextID, Weights: randStressWeights(rng, dims)}
					muts = append(muts, assign.Mutation{Kind: assign.MutAddFunction, Function: f})
					ownFuncs = append(ownFuncs, f.ID)
				default:
					// Arrival bursts: small batches keep group commits and
					// multi-mutation validation overlays in play.
					for n := 1 + rng.Intn(3); n > 0; n-- {
						nextID++
						o := assign.Object{ID: nextID, Point: randStressPoint(rng, dims)}
						muts = append(muts, assign.Mutation{Kind: assign.MutAddObject, Object: o})
						ownObjs = append(ownObjs, o.ID)
					}
				}
				if err := e.Apply(muts); err != nil {
					werr.Store(err)
					return
				}
			}
		}(wi)
	}
	wwg.Wait()
	done.Store(true)
	wg.Wait()
	if err, _ := werr.Load().(error); err != nil {
		t.Fatalf("writer failed: %v", err)
	}
	if readCount.Load() == 0 {
		t.Fatal("no reader completed a single validated read")
	}
	if err := e.VerifyStable(); err != nil {
		t.Fatal(err)
	}
	// Final differential: the engine's end state equals a cold solve.
	cold, err := assign.SB(e.ProblemSnapshot(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !scoreMultisetEqual(e.Pairs(), cold.Pairs) {
		t.Fatal("final sharded matching differs from cold solve of the final population")
	}
	t.Logf("stress: %d writers x %d ops, %d readers, %d validated snapshot reads",
		writers, ops, readers, readCount.Load())
}
