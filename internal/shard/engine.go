// Package shard implements the sharded workspace tier: N independent
// object shards — each with its own versioned page store, R-tree, and
// availability frontier — behind one stable-matching engine whose
// repair chains run the exact per-mutation algorithm of
// assign.Workspace, with the object side factored across shards.
//
// Partitioning follows the STR bulk-load key order (internal/rtree):
// objects sort by center coordinate on the split axis, ties by ID, and
// the range cuts into N contiguous slabs, so each shard's tree covers a
// spatially coherent slice and per-shard search frontiers stay tight; a
// degenerate distribution falls back to ID hashing (partition.go).
//
// Correctness across shards is the interesting part. A function's best
// object may live on any shard, so every proposal runs a bounded
// cross-shard displacement protocol:
//
//   - frontier-ceiling exchange: every shard reports the best object
//     its availability skyline offers under the proposer's scorer; the
//     global maximum is the ceiling that prices displacement, exactly
//     as the single-workspace skyline scan does;
//   - bounded displacement search: each shard runs a BRS NextAtLeast
//     bounded by that ceiling over its own tree — expanding only the
//     region that could beat taking a free object outright — and the
//     per-shard winners combine by (score desc, ID asc), the same
//     tie-break BRS applies inside one tree;
//   - re-routed proposals: a displaced function re-enters the global
//     repair queue, and its next landing may be on any shard; a
//     vacancy cascades to the shard owning the abandoned object.
//
// Because every repair step makes the same state transition the
// single workspace would make, the matching is byte-identical at every
// mutation boundary for any shard count — the conformance sweep in
// internal/conformance asserts exactly that at counts {1,2,4,7}. (The
// one theoretical exception: a non-strictly-monotone scorer family can
// tie a dominated point with its dominator; if shard boundaries
// separate them, the per-shard frontiers may surface the dominated
// lower-ID point a single global skyline pruned. Both resolutions are
// stable; the case requires exactly tied scores across a dominance
// pair, which is measure-zero for continuous data.)
//
// What sharding buys on the serving path: epochs, flushes, publishes,
// and snapshot captures are per shard and dirty-shard-only. A mutation
// touches one shard's pages, so a commit flushes and republishes 1/N of
// the page state, and the next snapshot re-captures 1/N of the object
// table while every clean shard contributes a refcounted reuse of its
// cached capture. On multi-core hosts the per-shard frontier scans and
// displacement searches of each repair step also fan out in parallel
// (Options.SearchWorkers); global reads merge per-shard ranked streams
// lazily by score ceiling (view.go).
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
)

// Typed errors (match with errors.Is). The engine shares the assign
// sentinels for everything a Workspace can also return.
var (
	// ErrDurabilityUnsupported is returned by New when the Config asks
	// for a WAL: the sharded tier has no durability story yet (each
	// shard would need its own log stream); run durable single
	// workspaces or keep the sharded tier as a serving cache.
	ErrDurabilityUnsupported = errors.New("shard: durable sharded workspaces are not supported")
)

// Options tunes the sharded engine.
type Options struct {
	// Shards is the number of object shards (<= 0 means 1).
	Shards int
	// Partition selects the object->shard mapping (default
	// PartitionAuto: spatial with hash fallback).
	Partition PartitionKind
	// SearchWorkers bounds the per-shard fan-out of repair's frontier
	// scans and displacement searches, and of commit-time flushes:
	// <= 0 uses min(Shards, GOMAXPROCS); 1 runs them sequentially. The
	// matching is identical at every setting.
	SearchWorkers int
}

// Stats summarizes a sharded engine. Objects, Functions, and
// AssignedUnits are partition-invariant (the conformance sweep asserts
// they are byte-identical across shard counts); Frontier and the work
// counters depend on the partition — per-shard skylines overlap-free
// union to more points than one global skyline, and every proposal
// issues one probe per shard.
type Stats struct {
	Shards        int
	Objects       int
	Functions     int
	AssignedUnits int
	// Frontier is the summed size of the per-shard availability
	// skylines.
	Frontier  int
	Mutations int64
	Commits   int64
	// Seq is the global commit sequence number snapshots pin.
	Seq        uint64
	ChainSteps int64
	Searches   int64
	Resolves   int64
	IO         metrics.IOCounter
	PerShard   []ShardStats
}

// ShardStats is the per-shard breakdown.
type ShardStats struct {
	Objects       int
	AssignedUnits int
	Frontier      int
	Epoch         uint64
}

// Engine is the sharded multi-workspace: the object space partitioned
// across N shard cores, the function side global, mutations repaired by
// the single-workspace chain algorithm with cross-shard search fan-out,
// and global reads served from per-shard pinned snapshots composed
// under one sequence number.
type Engine struct {
	mu sync.Mutex

	cfg  assign.Config
	dims int
	part *Partitioner

	shards   []*core
	objShard map[uint64]int // object ID -> owning shard

	// Global function side: the weight R-tree (linear families), the
	// columnar blocks (non-linear), capacities, and the function half
	// of the matching. Function capacity is shared state every chain
	// can consume, so it is not sharded.
	fstore        pagestore.Store
	fpool         *pagestore.BufferPool
	ftree         *rtree.Tree
	funcs         map[uint64]assign.Function
	eff           map[uint64][]float64
	nonlin        *score.FuncBlocks
	funcRemaining map[uint64]int
	funcLive      int // functions with remaining capacity > 0
	byFunc        map[uint64][]pair
	funcDirty     bool
	funcsSnap     []assign.Function // immutable capture, rebuilt when funcDirty

	queue   []repairItem
	workers int

	seq  uint64 // global commit sequence number (all shards)
	pub  *globalPub
	pubA atomic.Pointer[globalPub]

	closed  bool
	closedA atomic.Bool
	corrupt error

	mutations  int64
	commits    int64
	chainSteps int64
	searches   int64
	resolves   int64
}

// New validates the problem, computes the initial stable matching with
// one full SB solve (byte-identical to what assign.NewWorkspace
// computes), partitions the object space, and bulk-loads one R-tree
// per shard. Config is honored exactly as in assign.NewWorkspace —
// page size, buffer fraction, tree fill, build workers, store factory —
// except durability, which the sharded tier does not support.
func New(p *assign.Problem, cfg assign.Config, opt Options) (*Engine, error) {
	if cfg.Durable || cfg.WALDir != "" {
		return nil, ErrDurabilityUnsupported
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res, err := assign.SB(p, cfg)
	if err != nil {
		return nil, err
	}
	n := opt.Shards
	if n < 1 {
		n = 1
	}
	workers := opt.SearchWorkers
	if workers <= 0 {
		workers = min(n, runtime.GOMAXPROCS(0))
	}
	e := &Engine{
		cfg:           cfg,
		dims:          p.Dims,
		part:          NewPartitioner(p.Dims, n, p.Objects, opt.Partition),
		objShard:      make(map[uint64]int, len(p.Objects)),
		funcs:         make(map[uint64]assign.Function, len(p.Functions)),
		eff:           make(map[uint64][]float64, len(p.Functions)),
		nonlin:        score.NewFuncBlocks(p.Dims),
		funcRemaining: make(map[uint64]int, len(p.Functions)),
		byFunc:        make(map[uint64][]pair),
		workers:       workers,
		funcDirty:     true,
		resolves:      1,
	}

	// Shard cores: group the objects, then bulk-load each shard's tree
	// through its own versioned store.
	grouped := make([][]assign.Object, n)
	for _, o := range p.Objects {
		s := e.part.Route(o.Point, o.ID)
		grouped[s] = append(grouped[s], assign.Object{ID: o.ID, Point: o.Point.Clone(), Capacity: o.Capacity})
		e.objShard[o.ID] = s
	}
	for i := 0; i < n; i++ {
		sh, err := e.newCore(i, grouped[i])
		if err != nil {
			e.Close()
			return nil, err
		}
		e.shards = append(e.shards, sh)
	}

	// Global function side.
	finner, err := cfg.NewIndexStore()
	if err != nil {
		e.Close()
		return nil, err
	}
	e.fstore = finner
	e.fpool = cfg.NewIndexPool(finner)
	fitems := make([]rtree.Item, 0, len(p.Functions))
	for _, f := range p.Functions {
		weights := make([]float64, len(f.Weights))
		copy(weights, f.Weights)
		f.Weights = weights
		ew := f.Effective()
		e.funcs[f.ID] = f
		e.eff[f.ID] = ew
		e.funcRemaining[f.ID] = f.Cap()
		if f.Fam.IsLinear() {
			fitems = append(fitems, rtree.Item{ID: f.ID, Point: ew})
		} else {
			e.nonlin.Add(f.ID, f.Fam, ew)
		}
	}
	e.ftree, err = rtree.BulkLoadWorkers(e.fpool, p.Dims, fitems, cfg.TreeFillFactor(), cfg.IndexBuildWorkers())
	if err != nil {
		e.Close()
		return nil, err
	}

	// Distribute the initial matching: link each pair on the global
	// function side and the owning shard's object side, consuming
	// capacities.
	for _, pr := range res.Pairs {
		e.link(pair{fid: pr.FuncID, oid: pr.ObjectID, score: pr.Score})
		e.shards[e.objShard[pr.ObjectID]].remaining[pr.ObjectID]--
		e.funcRemaining[pr.FuncID]--
	}
	for _, rem := range e.funcRemaining {
		if rem > 0 {
			e.funcLive++
		}
	}

	// Materialize each shard's availability frontier from the
	// post-solve capacities.
	for _, sh := range e.shards {
		sh := sh
		var availItems []rtree.Item
		for id, o := range sh.objs {
			if sh.remaining[id] > 0 {
				availItems = append(availItems, rtree.Item{ID: id, Point: o.Point})
			}
		}
		sh.avail = skyline.NewMaintainerFromItems(p.Dims, availItems, nil)
		sh.avail.SetLiveCheck(func(id uint64, pt geom.Point) bool {
			o, ok := sh.objs[id]
			return ok && sh.remaining[id] > 0 && o.Point.Equal(pt)
		})
		sh.pageDirty = true // force the initial publish
		sh.stateDirty = true
	}
	if err := e.commitLocked(); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// newCore builds one shard: versioned store, build pool, bulk-loaded
// tree (resized to the configured buffer fraction afterwards), and the
// object tables.
func (e *Engine) newCore(idx int, objs []assign.Object) (*core, error) {
	inner, err := e.cfg.NewIndexStore()
	if err != nil {
		return nil, err
	}
	vstore := pagestore.NewVersioned(inner)
	// e.mu serializes snapshot capture with mutations, so the store may
	// recycle page versions in place whenever no live view observes
	// them.
	vstore.SetSerializedAcquire(true)
	pool := e.cfg.NewIndexPool(vstore)
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	tree, err := rtree.BulkLoadWorkers(pool, e.dims, items, e.cfg.TreeFillFactor(), e.cfg.IndexBuildWorkers())
	if err != nil {
		vstore.Close()
		return nil, err
	}
	if err := pool.Flush(); err != nil {
		vstore.Close()
		return nil, err
	}
	if err := pool.Resize(pagestore.CapacityFromFraction(tree.NumPages(), e.cfg.IndexBufferFrac())); err != nil {
		vstore.Close()
		return nil, err
	}
	if err := pool.Clear(); err != nil {
		vstore.Close()
		return nil, err
	}
	inner.IO().Reset()
	sh := &core{
		idx:       idx,
		store:     vstore,
		pool:      pool,
		tree:      tree,
		objs:      make(map[uint64]assign.Object, len(objs)),
		remaining: make(map[uint64]int, len(objs)),
		byObj:     make(map[uint64][]pair),
	}
	for _, o := range objs {
		sh.objs[o.ID] = o
		sh.remaining[o.ID] = o.Cap()
	}
	return sh, nil
}

// Dims returns the problem dimensionality.
func (e *Engine) Dims() int { return e.dims }

// ShardCount returns the number of shards.
func (e *Engine) ShardCount() int { return len(e.shards) }

// Partition returns the resolved partition strategy.
func (e *Engine) Partition() PartitionKind { return e.part.Kind() }

// ShardOfObject returns the shard owning a live object.
func (e *Engine) ShardOfObject(id uint64) (int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.objShard[id]
	return s, ok
}

// RouteObject returns the shard a (possibly not yet live) object with
// the given point and ID would land on — the routing key producers use
// to pick a per-shard queue.
func (e *Engine) RouteObject(pt geom.Point, id uint64) int {
	return e.part.Route(pt, id)
}

// Close releases every shard store and the function store. The engine
// must not be used afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	e.closedA.Store(true)
	e.dropPubLocked()
	for _, sh := range e.shards {
		sh.release()
	}
	if e.fstore != nil {
		e.fstore.Close()
	}
}

func (e *Engine) liveLocked() error {
	if e.closed {
		return assign.ErrClosed
	}
	if e.corrupt != nil {
		return fmt.Errorf("%w: %w", assign.ErrCorrupt, e.corrupt)
	}
	return nil
}

// corruptLocked poisons the engine after a structural failure, exactly
// like Workspace: open views keep serving their pinned epochs.
func (e *Engine) corruptLocked(cause error) error {
	if e.corrupt == nil {
		e.corrupt = cause
		e.dropPubLocked()
	}
	return fmt.Errorf("%w: %w", assign.ErrCorrupt, cause)
}

// link records one assigned unit on both sides.
func (e *Engine) link(p pair) {
	sh := e.shards[e.objShard[p.oid]]
	sh.byObj[p.oid] = append(sh.byObj[p.oid], p)
	e.byFunc[p.fid] = append(e.byFunc[p.fid], p)
}

// unlink removes one instance of the pair from both sides.
func (e *Engine) unlink(p pair) {
	sh := e.shards[e.objShard[p.oid]]
	sh.byObj[p.oid] = cutPair(sh.byObj[p.oid], p)
	e.byFunc[p.fid] = cutPair(e.byFunc[p.fid], p)
}

func cutPair(ps []pair, p pair) []pair {
	for i := range ps {
		if ps[i] == p {
			ps[i] = ps[len(ps)-1]
			return ps[:len(ps)-1]
		}
	}
	panic("shard: pair index out of sync")
}

func (e *Engine) funcConsume(fid uint64) {
	e.funcRemaining[fid]--
	if e.funcRemaining[fid] == 0 {
		e.funcLive--
	}
}

func (e *Engine) funcRestore(fid uint64) {
	e.funcRemaining[fid]++
	if e.funcRemaining[fid] == 1 {
		e.funcLive++
	}
}

func (e *Engine) pushFunc(id uint64) { e.queue = append(e.queue, repairItem{isFunc: true, id: id}) }
func (e *Engine) pushObj(id uint64)  { e.queue = append(e.queue, repairItem{isFunc: false, id: id}) }

// Apply applies a batch of mutations as one group commit with the same
// semantics as Workspace.Apply: the batch validates up front against
// sequential liveness (a validation error leaves the engine untouched),
// each mutation's structural change and chain repair run in arrival
// order, and one global sequence number publishes at the end — but
// flush, publish, and the next snapshot's capture touch only the dirty
// shards.
func (e *Engine) Apply(muts []assign.Mutation) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.liveLocked(); err != nil {
		return err
	}
	if len(muts) == 0 {
		return nil
	}
	ov := newOverlay(e)
	for i := range muts {
		if err := assign.ValidateMutation(e.dims, &muts[i], ov.objLive, ov.funcLive); err != nil {
			if len(muts) > 1 {
				return fmt.Errorf("shard: batch mutation %d (%s): %w", i, muts[i].Kind, err)
			}
			return err
		}
		ov.record(&muts[i])
	}
	for i := range muts {
		if err := e.mutateLocked(&muts[i]); err != nil {
			return e.corruptLocked(fmt.Errorf("batch mutation %d (%s): %w", i, muts[i].Kind, err))
		}
		if err := e.repair(); err != nil {
			return e.corruptLocked(fmt.Errorf("batch mutation %d (%s): repair: %w", i, muts[i].Kind, err))
		}
		e.mutations++
	}
	if err := e.commitLocked(); err != nil {
		return e.corruptLocked(err)
	}
	return nil
}

// overlay tracks the net liveness effect of a validated batch prefix,
// mirroring the sequential semantics Workspace.Apply validates against.
type overlay struct {
	e                *Engine
	objAdd, objDel   map[uint64]bool
	funcAdd, funcDel map[uint64]bool
}

func newOverlay(e *Engine) *overlay {
	return &overlay{
		e:      e,
		objAdd: make(map[uint64]bool), objDel: make(map[uint64]bool),
		funcAdd: make(map[uint64]bool), funcDel: make(map[uint64]bool),
	}
}

func (ov *overlay) objLive(id uint64) bool {
	if ov.objAdd[id] {
		return true
	}
	if ov.objDel[id] {
		return false
	}
	_, ok := ov.e.objShard[id]
	return ok
}

func (ov *overlay) funcLive(id uint64) bool {
	if ov.funcAdd[id] {
		return true
	}
	if ov.funcDel[id] {
		return false
	}
	_, ok := ov.e.funcs[id]
	return ok
}

func (ov *overlay) record(m *assign.Mutation) {
	switch m.Kind {
	case assign.MutAddObject:
		ov.objAdd[m.Object.ID] = true
	case assign.MutRemoveObject:
		delete(ov.objAdd, m.ID)
		ov.objDel[m.ID] = true
	case assign.MutAddFunction:
		ov.funcAdd[m.Function.ID] = true
	case assign.MutRemoveFunction:
		delete(ov.funcAdd, m.ID)
		ov.funcDel[m.ID] = true
	}
}

// mutateLocked performs the structural phase of one validated mutation.
func (e *Engine) mutateLocked(m *assign.Mutation) error {
	switch m.Kind {
	case assign.MutAddObject:
		return e.addObjectLocked(m.Object)
	case assign.MutRemoveObject:
		return e.removeObjectLocked(m.ID)
	case assign.MutAddFunction:
		return e.addFunctionLocked(m.Function)
	default:
		return e.removeFunctionLocked(m.ID)
	}
}

func (e *Engine) addObjectLocked(o assign.Object) error {
	pt := o.Point.Clone()
	sidx := e.part.Route(pt, o.ID)
	sh := e.shards[sidx]
	sh.objs[o.ID] = assign.Object{ID: o.ID, Point: pt, Capacity: o.Capacity}
	e.objShard[o.ID] = sidx
	if err := sh.tree.Insert(rtree.Item{ID: o.ID, Point: pt}); err != nil {
		return err
	}
	sh.pageDirty, sh.stateDirty = true, true
	sh.remaining[o.ID] = o.Cap()
	if err := sh.avail.Insert(rtree.Item{ID: o.ID, Point: pt}); err != nil {
		return err
	}
	e.pushObj(o.ID)
	return nil
}

func (e *Engine) removeObjectLocked(id uint64) error {
	sidx := e.objShard[id]
	sh := e.shards[sidx]
	o := sh.objs[id]
	if sh.remaining[id] > 0 {
		if err := sh.avail.Discard(id); err != nil {
			return err
		}
	}
	for _, p := range append([]pair(nil), sh.byObj[id]...) {
		e.unlink(p)
		e.funcRestore(p.fid)
		e.pushFunc(p.fid)
	}
	delete(sh.byObj, id)
	if err := sh.tree.Delete(rtree.Item{ID: id, Point: o.Point}); err != nil {
		return err
	}
	sh.pageDirty, sh.stateDirty = true, true
	delete(sh.remaining, id)
	delete(sh.objs, id)
	delete(e.objShard, id)
	return nil
}

func (e *Engine) addFunctionLocked(f assign.Function) error {
	weights := make([]float64, len(f.Weights))
	copy(weights, f.Weights)
	f.Weights = weights
	ew := f.Effective()
	e.funcs[f.ID] = f
	e.eff[f.ID] = ew
	if f.Fam.IsLinear() {
		if err := e.ftree.Insert(rtree.Item{ID: f.ID, Point: ew}); err != nil {
			return err
		}
	} else {
		e.nonlin.Add(f.ID, f.Fam, ew)
	}
	e.funcRemaining[f.ID] = f.Cap()
	e.funcLive++
	e.funcDirty = true
	e.pushFunc(f.ID)
	return nil
}

func (e *Engine) removeFunctionLocked(id uint64) error {
	for _, p := range append([]pair(nil), e.byFunc[id]...) {
		e.unlink(p)
		e.shards[e.objShard[p.oid]].restoreUnit(p.oid)
		e.pushObj(p.oid)
	}
	delete(e.byFunc, id)
	if !e.nonlin.Remove(id) {
		if err := e.ftree.Delete(rtree.Item{ID: id, Point: e.eff[id]}); err != nil {
			return err
		}
	}
	if e.funcRemaining[id] > 0 {
		e.funcLive--
	}
	delete(e.funcRemaining, id)
	delete(e.funcs, id)
	delete(e.eff, id)
	e.funcDirty = true
	return nil
}

// commitLocked seals the round: every page-dirty shard flushes its pool
// and publishes a new store epoch (fanned out across workers), the
// global sequence number advances, and the cached composed snapshot is
// dropped. Clean shards publish nothing — their open epochs and cached
// captures stay valid.
func (e *Engine) commitLocked() error {
	e.dropPubLocked()
	err := e.runShards(func(_ int, sh *core) error {
		if !sh.pageDirty {
			return nil
		}
		if err := sh.pool.Flush(); err != nil {
			return err
		}
		sh.epoch = sh.store.Publish()
		sh.pageDirty = false
		return nil
	})
	if err != nil {
		return err
	}
	e.seq++
	e.commits++
	return nil
}

func (e *Engine) dropPubLocked() {
	if e.pub != nil {
		e.pubA.Store(nil)
		e.pub.release()
		e.pub = nil
	}
}

// runShards invokes fn once per shard, fanning out across
// Options.SearchWorkers goroutines when configured. fn must confine its
// writes to its own shard (the caller holds e.mu, so global engine
// state is stable to read). The first error wins.
func (e *Engine) runShards(fn func(i int, sh *core) error) error {
	if e.workers <= 1 || len(e.shards) == 1 {
		for i, sh := range e.shards {
			if err := fn(i, sh); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	errs := make([]error, len(e.shards))
	for i, sh := range e.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sh *core) {
			defer wg.Done()
			errs[i] = fn(i, sh)
			<-sem
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// scorerOf returns a live function's effective scorer.
func (e *Engine) scorerOf(fid uint64) score.Scorer {
	return score.Scorer{Fam: e.funcs[fid].Fam, W: e.eff[fid]}
}

// Stats summarizes the engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsLocked()
}

func (e *Engine) statsLocked() Stats {
	s := Stats{
		Shards:     len(e.shards),
		Functions:  len(e.funcs),
		Mutations:  e.mutations,
		Commits:    e.commits,
		Seq:        e.seq,
		ChainSteps: e.chainSteps,
		Searches:   e.searches,
		Resolves:   e.resolves,
	}
	for _, ps := range e.byFunc {
		s.AssignedUnits += len(ps)
	}
	s.PerShard = make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		units := 0
		for _, ps := range sh.byObj {
			units += len(ps)
		}
		s.PerShard[i] = ShardStats{
			Objects:       len(sh.objs),
			AssignedUnits: units,
			Frontier:      sh.avail.Size(),
			Epoch:         sh.epoch,
		}
		s.Objects += len(sh.objs)
		s.Frontier += sh.avail.Size()
	}
	if !e.closed {
		for _, sh := range e.shards {
			s.IO.Add(sh.store.IO().Snapshot())
		}
		s.IO.Add(e.fstore.IO().Snapshot())
	}
	return s
}

// Pairs returns the current matching in the definitional greedy order.
func (e *Engine) Pairs() []assign.Pair {
	e.mu.Lock()
	out := e.pairsLocked()
	e.mu.Unlock()
	assign.SortPairs(out)
	return out
}

func (e *Engine) pairsLocked() []assign.Pair {
	out := make([]assign.Pair, 0, len(e.byFunc))
	for _, ps := range e.byFunc {
		for _, p := range ps {
			out = append(out, assign.Pair{FuncID: p.fid, ObjectID: p.oid, Score: p.score})
		}
	}
	return out
}

// ProblemSnapshot materializes the current population as a Problem
// (entities sorted by ID), for differential validation.
func (e *Engine) ProblemSnapshot() *assign.Problem {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.problemLocked()
}

func (e *Engine) problemLocked() *assign.Problem {
	p := &assign.Problem{Dims: e.dims}
	for _, sh := range e.shards {
		for _, o := range sh.objs {
			p.Objects = append(p.Objects, assign.Object{ID: o.ID, Point: o.Point.Clone(), Capacity: o.Capacity})
		}
	}
	sortObjectsByID(p.Objects)
	for _, f := range e.funcs {
		weights := make([]float64, len(f.Weights))
		copy(weights, f.Weights)
		p.Functions = append(p.Functions, assign.Function{ID: f.ID, Weights: weights, Gamma: f.Gamma, Capacity: f.Capacity, Fam: f.Fam})
	}
	sortFunctionsByID(p.Functions)
	return p
}

// VerifyStable checks that the current matching is stable for the
// current population.
func (e *Engine) VerifyStable() error {
	e.mu.Lock()
	if e.corrupt != nil {
		err := fmt.Errorf("%w: %w", assign.ErrCorrupt, e.corrupt)
		e.mu.Unlock()
		return err
	}
	p := e.problemLocked()
	pairs := e.pairsLocked()
	e.mu.Unlock()
	return assign.IsStable(p, pairs)
}
