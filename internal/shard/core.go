package shard

import (
	"fmt"

	"fairassign/internal/assign"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/skyline"
)

// pair is one assigned unit of the global matching, mirrored on both
// sides: the owning shard's byObj and the engine's byFunc.
type pair struct {
	fid   uint64
	oid   uint64
	score float64
}

// repairItem is a freed unit awaiting chain repair: a function unit
// looking for an object, or an object unit looking for a function.
type repairItem struct {
	isFunc bool
	id     uint64
}

// worstOfObj returns the weakest assignment an object holds — the one a
// stronger proposer displaces. Greedy order: lower score is worse; on a
// tie the higher function ID lost the tiebreak, so it goes first.
func worstOfObj(ps []pair) pair {
	worst := ps[0]
	for _, p := range ps[1:] {
		if p.score < worst.score || (p.score == worst.score && p.fid > worst.fid) {
			worst = p
		}
	}
	return worst
}

// worstOfFunc is the function-side mirror: lower score is worse, ties
// broken toward the higher object ID.
func worstOfFunc(ps []pair) pair {
	worst := ps[0]
	for _, p := range ps[1:] {
		if p.score < worst.score || (p.score == worst.score && p.oid > worst.oid) {
			worst = p
		}
	}
	return worst
}

// core is one shard: a self-contained slice of the object space with
// its own versioned page store, R-tree, availability frontier, and
// epoch stream. It is exactly the object half of an assign.Workspace;
// the function side stays global on the Engine because function
// capacity is shared state every repair chain can touch.
type core struct {
	idx   int
	store *pagestore.VersionedStore
	pool  *pagestore.BufferPool
	tree  *rtree.Tree

	// avail is this shard's availability frontier: the skyline of the
	// shard's objects with remaining capacity. Repair's frontier-ceiling
	// exchange combines the per-shard Best results into the global
	// ceiling that prices displacement searches.
	avail *skyline.Maintainer

	objs      map[uint64]assign.Object
	remaining map[uint64]int
	byObj     map[uint64][]pair

	epoch uint64 // latest published page-store epoch

	// pageDirty marks tree pages mutated since the last publish (object
	// arrivals/departures); stateDirty marks any capture-visible change
	// (tree, objects, or frontier) since the last capture. Repair moves
	// that only shuffle assignments set neither — pure cross-shard churn
	// republishes nothing on untouched shards, which is the amortization
	// that makes shard-local epochs cheap.
	pageDirty  bool
	stateDirty bool

	// pub caches the capture of the latest published epoch; it is only
	// rebuilt when stateDirty, so a shard untouched since its last
	// capture contributes to a global snapshot for the cost of a
	// refcount increment instead of an O(objects) copy.
	pub *shardPub
}

// restoreUnit gives one unit of capacity back to an object; a revival
// (exhausted -> available) re-enters the availability skyline.
func (sh *core) restoreUnit(oid uint64) {
	sh.remaining[oid]++
	if sh.remaining[oid] == 1 {
		o := sh.objs[oid]
		if err := sh.avail.Insert(rtree.Item{ID: oid, Point: o.Point}); err != nil {
			// Insert only errors on a live duplicate, which the
			// availability bookkeeping rules out.
			panic(fmt.Sprintf("shard: availability out of sync: %v", err))
		}
		sh.stateDirty = true
	}
}

// consumeUnit takes one unit of an object's capacity; exhaustion leaves
// the availability skyline via Discard.
func (sh *core) consumeUnit(oid uint64) error {
	sh.remaining[oid]--
	if sh.remaining[oid] == 0 {
		sh.stateDirty = true
		return sh.avail.Discard(oid)
	}
	return nil
}

// capture freezes the shard's capture-visible state: a pinned page
// snapshot, the tree metadata, and flat copies of the object table and
// availability frontier (per-entity points alias the immutable
// originals).
func (sh *core) capture() *shardPub {
	p := &shardPub{
		shard: sh.idx,
		epoch: sh.epoch,
		snap:  sh.store.Acquire(),
		meta:  sh.tree.Meta(),
		avail: sh.avail.Skyline(),
	}
	p.refs.Store(1)
	p.objs = make([]assign.Object, 0, len(sh.objs))
	for _, o := range sh.objs {
		p.objs = append(p.objs, o)
	}
	return p
}

// release drops the shard's resources (cached capture and page store).
func (sh *core) release() {
	if sh.pub != nil {
		sh.pub.release()
		sh.pub = nil
	}
	if sh.store != nil {
		sh.store.Close()
	}
}
