package wal

import (
	"errors"
	"path"
	"testing"

	"fairassign/internal/vfs"
)

func TestRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	if err := fs.MkdirAll("dur"); err != nil {
		t.Fatal(err)
	}
	w, err := Create(fs, "dur", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("alpha"), []byte(""), []byte("a longer third record payload")}
	for i, p := range payloads {
		if err := w.Append(uint64(8+i), p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := ListSegments(fs, "dur")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Seq != 1 {
		t.Fatalf("segments = %+v", segs)
	}
	if _, base, err := ReadHeader(fs, "dur", segs[0].Name); err != nil || base != 7 {
		t.Fatalf("header base = %d, err = %v", base, err)
	}
	sd, err := ReadSegment(fs, "dur", segs[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if sd.TornError != nil {
		t.Fatalf("unexpected torn error: %v", sd.TornError)
	}
	if len(sd.Records) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(sd.Records), len(payloads))
	}
	for i, rec := range sd.Records {
		if rec.Epoch != uint64(8+i) {
			t.Errorf("record %d epoch = %d", i, rec.Epoch)
		}
		if string(rec.Payload) != string(payloads[i]) {
			t.Errorf("record %d payload = %q", i, rec.Payload)
		}
	}
}

func TestAppendEpochContiguity(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("dur")
	w, err := Create(fs, "dur", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(12, []byte("skip")); err == nil {
		t.Fatal("append with epoch gap succeeded")
	}
	if err := w.Append(11, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(11, []byte("repeat")); err == nil {
		t.Fatal("append with repeated epoch succeeded")
	}
}

func TestTornTailTruncated(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("dur")
	w, err := Create(fs, "dur", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		if err := w.Append(e, []byte{byte(e), 0xAA, 0xBB}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	name := SegmentName(3)
	full, err := fs.ReadAll(path.Join("dur", name))
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file at every byte past the header: the intact record
	// prefix must come back, the tail flagged ErrTornWrite, no panic.
	for cut := headerSize; cut < len(full); cut++ {
		fs.WriteAll(path.Join("dur", name), full[:cut])
		sd, err := ReadSegment(fs, "dur", name)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		recSize := (len(full) - headerSize) / 3
		wantIntact := (cut - headerSize) / recSize
		if len(sd.Records) != wantIntact {
			t.Fatalf("cut %d: %d intact records, want %d", cut, len(sd.Records), wantIntact)
		}
		if cut == headerSize+wantIntact*recSize {
			// Clean record boundary: no torn tail.
			if sd.TornError != nil {
				t.Fatalf("cut %d: unexpected torn error %v", cut, sd.TornError)
			}
		} else if !errors.Is(sd.TornError, ErrTornWrite) {
			t.Fatalf("cut %d: torn error = %v, want ErrTornWrite", cut, sd.TornError)
		}
	}
}

func TestBitFlipDetected(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("dur")
	w, _ := Create(fs, "dur", 1, 0)
	w.Append(1, []byte("payload-one"))
	w.Append(2, []byte("payload-two"))
	w.Close()

	name := SegmentName(1)
	full, _ := fs.ReadAll(path.Join("dur", name))
	for bit := headerSize * 8; bit < len(full)*8; bit += 7 {
		mut := make([]byte, len(full))
		copy(mut, full)
		mut[bit/8] ^= 1 << (bit % 8)
		fs.WriteAll(path.Join("dur", name), mut)
		sd, err := ReadSegment(fs, "dur", name)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		// A flipped bit may land in record 1 or record 2; either way the
		// damaged record and everything after must be dropped with a
		// typed error, and surviving records must be byte-identical.
		if sd.TornError == nil {
			t.Fatalf("bit %d: corruption not detected", bit)
		}
		if !errors.Is(sd.TornError, ErrTornWrite) {
			t.Fatalf("bit %d: error %v not ErrTornWrite", bit, sd.TornError)
		}
		if len(sd.Records) > 1 {
			t.Fatalf("bit %d: %d records survived a mid-file flip", bit, len(sd.Records))
		}
		if len(sd.Records) == 1 && string(sd.Records[0].Payload) != "payload-one" {
			t.Fatalf("bit %d: surviving record corrupted: %q", bit, sd.Records[0].Payload)
		}
	}
}

func TestBadHeader(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("dur")
	w, _ := Create(fs, "dur", 1, 5)
	w.Close()
	name := SegmentName(1)
	full, _ := fs.ReadAll(path.Join("dur", name))

	// Truncated header.
	fs.WriteAll(path.Join("dur", name), full[:headerSize-1])
	if _, err := ReadSegment(fs, "dur", name); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("truncated header: err = %v", err)
	}
	// Corrupt magic.
	mut := make([]byte, len(full))
	copy(mut, full)
	mut[0] ^= 0xFF
	fs.WriteAll(path.Join("dur", name), mut)
	if _, err := ReadSegment(fs, "dur", name); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("bad magic: err = %v", err)
	}
	if _, _, err := ReadHeader(fs, "dur", name); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("ReadHeader bad magic: err = %v", err)
	}

	// Name/seq mismatch.
	fs.WriteAll(path.Join("dur", SegmentName(2)), full)
	if _, err := ReadSegment(fs, "dur", SegmentName(2)); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("seq mismatch: err = %v", err)
	}
}

func TestReadHeader(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("dur")
	w, _ := Create(fs, "dur", 9, 42)
	w.Append(43, []byte("x"))
	w.Close()
	seq, base, err := ReadHeader(fs, "dur", SegmentName(9))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 || base != 42 {
		t.Fatalf("seq=%d base=%d", seq, base)
	}
}

func TestClosedWriter(t *testing.T) {
	fs := vfs.NewMem()
	fs.MkdirAll("dur")
	w, _ := Create(fs, "dur", 1, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := w.Append(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}
