// Package wal is the workspace write-ahead log: an append-only sequence
// of checksummed records split across segment files. Every committed
// mutation batch is one record, appended and fsynced before the epoch
// it produces is published, so an acknowledged commit survives power
// loss; replay-on-open reapplies the committed batches past the last
// snapshot.
//
// # File format
//
// A segment file is a fixed header followed by records, all
// little-endian:
//
//	header:  magic "FAWAL001" (8) | version u32 | crc u32 | seq u64 | baseEpoch u64
//	record:  payloadLen u32 | crc u32 | epoch u64 | payload
//
// The header crc covers seq and baseEpoch; a record's crc covers its
// epoch and payload (CRC-32 Castagnoli). seq orders segments; baseEpoch
// is the workspace epoch the segment starts after — the first record in
// a segment carries epoch baseEpoch+1, and epochs increase by exactly 1
// across the whole log.
//
// # Torn tails
//
// Power loss can leave a partially-written final record: a short
// header, a short payload, or a payload whose checksum fails. The
// reader treats everything from the first bad record onward as the torn
// tail — those bytes were never acknowledged (the fsync barrier runs
// before publish) — truncates it logically, and reports it via
// ErrTornWrite in the segment's TornError. Recovery never appends to an
// existing segment: after replay a fresh segment is started, so torn
// garbage is never followed by live records within one segment.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"

	"fairassign/internal/vfs"
)

// Typed errors (match with errors.Is).
var (
	// ErrTornWrite marks a torn or corrupt record at the tail of a
	// segment: the record was cut mid-write by a crash (or bit-flipped at
	// rest) and is discarded. Recovery proceeds without it.
	ErrTornWrite = errors.New("wal: torn write")
	// ErrBadSegment marks a segment file whose header is missing,
	// truncated, or checksum-corrupt: no record in it can be trusted.
	ErrBadSegment = errors.New("wal: bad segment header")
	// ErrClosed is returned by Append/Sync after Close.
	ErrClosed = errors.New("wal: writer closed")
)

const (
	magic         = "FAWAL001"
	formatVersion = 1
	headerSize    = 8 + 4 + 4 + 8 + 8
	recHdrSize    = 4 + 4 + 8
	// maxRecordSize bounds a record payload; a torn length field cannot
	// make the reader allocate unbounded memory.
	maxRecordSize = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SegmentName returns the file name of the segment with the given
// sequence number: "wal-<seq as 16 hex digits>.fawal".
func SegmentName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.fawal", seq)
}

// parseSegmentName inverts SegmentName; ok is false for other files.
func parseSegmentName(name string) (seq uint64, ok bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".fawal") {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".fawal")
	if len(hexpart) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Writer appends records to one segment file.
type Writer struct {
	f      vfs.File
	seq    uint64
	base   uint64
	next   uint64 // epoch the next record must carry
	closed bool
	scratch []byte
}

// Create starts a new segment in dir with the given sequence number and
// base epoch. The header is written and fsynced (file and directory)
// before Create returns, so an empty segment is durable — a crash right
// after rotation leaves a well-formed log.
func Create(fs vfs.FS, dir string, seq, baseEpoch uint64) (*Writer, error) {
	name := path.Join(dir, SegmentName(seq))
	f, err := fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[16:], seq)
	binary.LittleEndian.PutUint64(hdr[24:], baseEpoch)
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(hdr[16:], crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync segment header: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync wal dir: %w", err)
	}
	return &Writer{f: f, seq: seq, base: baseEpoch, next: baseEpoch + 1}, nil
}

// Seq returns the segment's sequence number.
func (w *Writer) Seq() uint64 { return w.seq }

// Append writes one record. epoch must be exactly one past the previous
// record's (the segment's baseEpoch+1 for the first): the log encodes
// the workspace's commit order and a gap would make replay ambiguous.
// Append does not sync; call Sync before acknowledging the commit.
func (w *Writer) Append(epoch uint64, payload []byte) error {
	if w.closed {
		return ErrClosed
	}
	if epoch != w.next {
		return fmt.Errorf("wal: append epoch %d, want %d", epoch, w.next)
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("wal: record payload %d bytes exceeds limit", len(payload))
	}
	need := recHdrSize + len(payload)
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	rec := w.scratch[:need]
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[8:], epoch)
	copy(rec[recHdrSize:], payload)
	binary.LittleEndian.PutUint32(rec[4:], crc32.Checksum(rec[8:], crcTable))
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.next = epoch + 1
	return nil
}

// Sync makes every appended record durable.
func (w *Writer) Sync() error {
	if w.closed {
		return ErrClosed
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close closes the segment file without syncing. Idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// readPayload reads exactly plen bytes, growing the buffer in bounded
// chunks: a torn length field claiming far more data than the file
// holds costs only the bytes actually present, never a quarter-gigabyte
// up-front allocation.
func readPayload(r io.Reader, plen uint32) ([]byte, error) {
	const chunk = 1 << 16
	if plen <= chunk {
		p := make([]byte, plen)
		_, err := io.ReadFull(r, p)
		return p, err
	}
	p := make([]byte, 0, chunk)
	for remaining := int(plen); remaining > 0; {
		n := remaining
		if n > chunk {
			n = chunk
		}
		m := len(p)
		p = append(p, make([]byte, n)...)
		if _, err := io.ReadFull(r, p[m:]); err != nil {
			return nil, err
		}
		remaining -= n
	}
	return p, nil
}

// Record is one replayable entry: the payload of the batch that
// produced the given epoch.
type Record struct {
	Epoch   uint64
	Payload []byte
}

// Segment describes one segment file found in a log directory.
type Segment struct {
	Name string
	Seq  uint64
	// BaseEpoch is the epoch the segment starts after (from the header);
	// valid only after ReadSegment.
	BaseEpoch uint64
}

// ListSegments returns the segment files in dir ordered by sequence
// number. Non-segment files are ignored.
func ListSegments(fs vfs.FS, dir string) ([]Segment, error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var segs []Segment
	for _, n := range names {
		if seq, ok := parseSegmentName(n); ok {
			segs = append(segs, Segment{Name: n, Seq: seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// ReadHeader reads and verifies just a segment's header, returning its
// sequence number and base epoch. Rotation uses it to decide which
// segments a retained snapshot still needs, without decoding records.
func ReadHeader(fs vfs.FS, dir, name string) (seq, baseEpoch uint64, err error) {
	f, err := fs.Open(path.Join(dir, name))
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: %s: short header", ErrBadSegment, name)
	}
	if string(hdr[:8]) != magic {
		return 0, 0, fmt.Errorf("%w: %s: bad magic", ErrBadSegment, name)
	}
	if crc := binary.LittleEndian.Uint32(hdr[12:]); crc != crc32.Checksum(hdr[16:], crcTable) {
		return 0, 0, fmt.Errorf("%w: %s: header checksum mismatch", ErrBadSegment, name)
	}
	return binary.LittleEndian.Uint64(hdr[16:]), binary.LittleEndian.Uint64(hdr[24:]), nil
}

// SegmentData is the decoded contents of one segment.
type SegmentData struct {
	Seq       uint64
	BaseEpoch uint64
	Records   []Record
	// TornError is non-nil when the segment ended in a torn or corrupt
	// record (wrapping ErrTornWrite); Records holds the intact prefix.
	TornError error
	// TornOffset is the file offset of the first discarded byte when
	// TornError is set.
	TornOffset int64
}

// ReadSegment decodes one segment file. A bad header returns
// ErrBadSegment. A torn or corrupt record ends decoding: the intact
// record prefix is returned with TornError set (wrapping ErrTornWrite)
// rather than failing the read — the torn tail was never acknowledged.
func ReadSegment(fs vfs.FS, dir, name string) (*SegmentData, error) {
	f, err := fs.Open(path.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)

	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %s: short header", ErrBadSegment, name)
	}
	if string(hdr[:8]) != magic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrBadSegment, name)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return nil, fmt.Errorf("%w: %s: unsupported version %d", ErrBadSegment, name, v)
	}
	if crc := binary.LittleEndian.Uint32(hdr[12:]); crc != crc32.Checksum(hdr[16:], crcTable) {
		return nil, fmt.Errorf("%w: %s: header checksum mismatch", ErrBadSegment, name)
	}
	sd := &SegmentData{
		Seq:       binary.LittleEndian.Uint64(hdr[16:]),
		BaseEpoch: binary.LittleEndian.Uint64(hdr[24:]),
	}
	if got, ok := parseSegmentName(name); ok && got != sd.Seq {
		return nil, fmt.Errorf("%w: %s: header seq %d does not match name", ErrBadSegment, name, sd.Seq)
	}

	off := int64(headerSize)
	want := sd.BaseEpoch + 1
	for {
		var rh [recHdrSize]byte
		n, err := io.ReadFull(r, rh[:])
		if err == io.EOF {
			return sd, nil // clean end
		}
		if err != nil {
			sd.TornError = fmt.Errorf("%w: %s: short record header at offset %d", ErrTornWrite, name, off)
			sd.TornOffset = off
			return sd, nil
		}
		plen := binary.LittleEndian.Uint32(rh[0:])
		crc := binary.LittleEndian.Uint32(rh[4:])
		epoch := binary.LittleEndian.Uint64(rh[8:])
		if plen > maxRecordSize {
			sd.TornError = fmt.Errorf("%w: %s: implausible record length %d at offset %d", ErrTornWrite, name, plen, off)
			sd.TornOffset = off
			return sd, nil
		}
		payload, err := readPayload(r, plen)
		if err != nil {
			sd.TornError = fmt.Errorf("%w: %s: short record payload at offset %d", ErrTornWrite, name, off)
			sd.TornOffset = off
			return sd, nil
		}
		sum := crc32.Checksum(rh[8:], crcTable)
		sum = crc32.Update(sum, crcTable, payload)
		if sum != crc {
			sd.TornError = fmt.Errorf("%w: %s: record checksum mismatch at offset %d", ErrTornWrite, name, off)
			sd.TornOffset = off
			return sd, nil
		}
		if epoch != want {
			sd.TornError = fmt.Errorf("%w: %s: record epoch %d at offset %d, want %d", ErrTornWrite, name, epoch, off, want)
			sd.TornOffset = off
			return sd, nil
		}
		sd.Records = append(sd.Records, Record{Epoch: epoch, Payload: payload})
		want = epoch + 1
		off += int64(n) + int64(plen)
	}
}
