package wal

import (
	"bytes"
	"errors"
	"testing"

	"fairassign/internal/vfs"
)

// FuzzWALReadSegment feeds arbitrary bytes to the segment reader as a
// whole file. Recovery opens these files after a crash, so the reader
// must never panic or allocate past the file's actual size, must
// reject bad headers with ErrBadSegment, report tail damage only as
// ErrTornWrite, and keep the intact record prefix epoch-contiguous.
func FuzzWALReadSegment(f *testing.F) {
	fs := vfs.NewMem()
	if err := fs.MkdirAll("d"); err != nil {
		f.Fatal(err)
	}
	w, err := Create(fs, "d", 1, 7)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Append(8, []byte("payload-a")); err != nil {
		f.Fatal(err)
	}
	if err := w.Append(9, bytes.Repeat([]byte{0xAB}, 100)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := fs.ReadAll("d/" + SegmentName(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerSize])     // header only, no records
	f.Add(valid[:headerSize+5])   // torn record header
	f.Add(valid[:len(valid)-1])   // torn record payload
	f.Add([]byte{})               // no header at all
	f.Add([]byte("FAWAL001"))     // magic alone
	huge := append([]byte(nil), valid[:headerSize]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x0F) // plen near maxRecordSize, no data
	f.Add(huge)
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+recHdrSize+2] ^= 0x10 // corrupt first payload
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		mfs := vfs.NewMem()
		if err := mfs.MkdirAll("d"); err != nil {
			t.Fatal(err)
		}
		name := SegmentName(1)
		mfs.WriteAll("d/"+name, data)
		sd, err := ReadSegment(mfs, "d", name)
		if err != nil {
			if !errors.Is(err, ErrBadSegment) {
				t.Fatalf("untyped read error: %v", err)
			}
			return
		}
		if sd.TornError != nil && !errors.Is(sd.TornError, ErrTornWrite) {
			t.Fatalf("untyped torn-tail error: %v", sd.TornError)
		}
		for i, rec := range sd.Records {
			if rec.Epoch != sd.BaseEpoch+1+uint64(i) {
				t.Fatalf("record %d epoch %d breaks contiguity from base %d", i, rec.Epoch, sd.BaseEpoch)
			}
		}
		// The cheap header-only reader must agree with the full decode.
		seq, base, err := ReadHeader(mfs, "d", name)
		if err != nil || seq != sd.Seq || base != sd.BaseEpoch {
			t.Fatalf("ReadHeader (%d, %d, %v) disagrees with ReadSegment (%d, %d)", seq, base, err, sd.Seq, sd.BaseEpoch)
		}
	})
}
