package assign

import (
	"fairassign/internal/heaputil"
	"fairassign/internal/metrics"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/topk"
)

// BruteForce implements the Section 4.1 baseline with its resuming-search
// improvement: every function keeps an incremental BRS top-1 searcher
// alive over the object R-tree. The function whose cached top-1 has the
// globally highest score forms a stable pair (Property 2). When an
// object is fully assigned it is tombstoned; functions whose cached top
// pointed at it lazily resume their searchers. The per-function heaps are
// what give Brute Force its large memory footprint in Figure 9.
func BruteForce(p *Problem, cfg Config) (*Result, error) {
	st, err := newSolveState(p, cfg)
	if err != nil {
		return nil, err
	}
	defer st.release()
	res, err := bruteForceLoop(p, st, nil)
	if err != nil {
		return nil, err
	}
	res.Stats.IO = *st.store.IO()
	return res, nil
}

// bruteForceLoop is the Brute Force engine. touchState, when non-nil, is
// invoked on every per-function search operation; the disk-resident-F
// configuration uses it to charge state-paging I/O.
func bruteForceLoop(p *Problem, state *solveState, touchState func(uint64) error) (*Result, error) {
	tree := state.tree
	res := &Result{}
	var timer metrics.Timer
	timer.Start()

	funcCaps := newFuncCaps(p.Functions)
	objCaps := newObjectCaps(p.Objects)
	assigned := make(map[uint64]bool) // fully-consumed objects
	skip := func(id uint64) bool { return assigned[id] }
	touch := func(fid uint64) error {
		if touchState == nil {
			return nil
		}
		return touchState(fid)
	}

	type fstate struct {
		f        Function
		weights  []float64
		searcher *topk.Searcher
		top      rtree.Item
		score    float64
		alive    bool
	}
	states := make(map[uint64]*fstate, len(p.Functions))

	// Max-heap of functions by cached top-1 score (lazy revalidation).
	h := &funcScoreHeap{}
	for _, f := range p.Functions {
		st := &fstate{f: f, weights: f.Effective()}
		st.searcher = topk.NewScorerSearcher(tree, score.Scorer{Fam: f.Fam, W: st.weights}, skip)
		if err := touch(f.ID); err != nil {
			return nil, err
		}
		it, sc, ok, err := st.searcher.Next()
		if err != nil {
			return nil, err
		}
		res.Stats.TopKRuns++
		if !ok {
			continue // no objects at all
		}
		st.top, st.score, st.alive = it, sc, true
		states[f.ID] = st
		h.push(funcScoreElem{fid: f.ID, score: sc})
	}

	trackPeak := func() {
		var total int64
		for _, st := range states {
			if st.alive {
				total += st.searcher.Footprint()
			}
		}
		total += int64(h.Len()) * 16
		if total > res.Stats.PeakMem {
			res.Stats.PeakMem = total
		}
	}
	trackPeak()

	for funcCaps.units > 0 && objCaps.units > 0 && h.Len() > 0 {
		res.Stats.Loops++
		e := h.pop()
		st, ok := states[e.fid]
		if !ok || !st.alive {
			continue
		}
		if funcCaps.exhausted(e.fid) {
			st.alive = false
			continue
		}
		// Revalidate the cached top: the object may have been consumed.
		if assigned[st.top.ID] {
			if err := touch(e.fid); err != nil {
				return nil, err
			}
			it, sc, ok, err := st.searcher.Next()
			if err != nil {
				return nil, err
			}
			res.Stats.TopKRuns++
			if !ok {
				st.alive = false // objects exhausted for this function
				continue
			}
			st.top, st.score = it, sc
			h.push(funcScoreElem{fid: e.fid, score: sc})
			continue
		}
		// Valid top with the globally highest score: stable pair.
		res.Pairs = append(res.Pairs, Pair{FuncID: e.fid, ObjectID: st.top.ID, Score: st.score})
		if objCaps.consume(st.top.ID) {
			assigned[st.top.ID] = true
		}
		if funcCaps.consume(e.fid) {
			st.alive = false
		} else {
			// Function has capacity left; its top may or may not survive.
			if assigned[st.top.ID] {
				if err := touch(e.fid); err != nil {
					return nil, err
				}
				it, sc, ok, err := st.searcher.Next()
				if err != nil {
					return nil, err
				}
				res.Stats.TopKRuns++
				if !ok {
					st.alive = false
					continue
				}
				st.top, st.score = it, sc
			}
			h.push(funcScoreElem{fid: e.fid, score: st.score})
		}
		if res.Stats.Loops%64 == 0 {
			trackPeak()
		}
	}
	trackPeak()

	timer.Stop()
	res.Stats.CPUTime = timer.Total
	res.Stats.Pairs = int64(len(res.Pairs))
	for _, st := range states {
		res.Stats.NodeReads += st.searcher.NodeReads
	}
	return res, nil
}

type funcScoreElem struct {
	fid   uint64
	score float64
}

// funcScoreHeap is a boxing-free max-heap on (score, lower fid).
type funcScoreHeap []funcScoreElem

func lessFuncScore(a, b funcScoreElem) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.fid < b.fid
}

func (h *funcScoreHeap) push(e funcScoreElem) { heaputil.Push((*[]funcScoreElem)(h), lessFuncScore, e) }
func (h *funcScoreHeap) pop() funcScoreElem {
	return heaputil.Pop((*[]funcScoreElem)(h), lessFuncScore)
}
func (h *funcScoreHeap) Len() int { return len(*h) }
