package assign

import (
	"fmt"
	"sort"

	"fairassign/internal/score"
)

// Oracle computes the stable assignment directly from its definition:
// enumerate all |F|·|O| scored pairs, sort them by descending score, and
// greedily assign while capacities remain. It is O(|F|·|O|·log(|F|·|O|))
// and exists to verify the search-based algorithms on small instances.
// Ties are broken by (function ID, object ID) ascending, the same
// deterministic order the other algorithms use.
func Oracle(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	type scored struct {
		fi, oi int
		score  float64
	}
	all := make([]scored, 0, len(p.Functions)*len(p.Objects))
	for fi, f := range p.Functions {
		w := f.Effective()
		for oi, o := range p.Objects {
			s := score.Eval(f.Fam, w, o.Point)
			all = append(all, scored{fi: fi, oi: oi, score: s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		if p.Functions[all[i].fi].ID != p.Functions[all[j].fi].ID {
			return p.Functions[all[i].fi].ID < p.Functions[all[j].fi].ID
		}
		return p.Objects[all[i].oi].ID < p.Objects[all[j].oi].ID
	})

	fcap := make([]int, len(p.Functions))
	for i, f := range p.Functions {
		fcap[i] = f.capacity()
	}
	ocap := make([]int, len(p.Objects))
	for i, o := range p.Objects {
		ocap[i] = o.capacity()
	}
	res := &Result{}
	for _, sp := range all {
		m := fcap[sp.fi]
		if ocap[sp.oi] < m {
			m = ocap[sp.oi]
		}
		for k := 0; k < m; k++ {
			res.Pairs = append(res.Pairs, Pair{
				FuncID:   p.Functions[sp.fi].ID,
				ObjectID: p.Objects[sp.oi].ID,
				Score:    sp.score,
			})
		}
		fcap[sp.fi] -= m
		ocap[sp.oi] -= m
	}
	res.Stats.Pairs = int64(len(res.Pairs))
	return res, nil
}

// GaleShapley solves the classic stable marriage instance induced by the
// score matrix (functions propose, objects accept their best proposal),
// for the uncapacitated problem. Because both sides rank pairs by the
// same score f(o), the stable matching is unique when scores are
// distinct, so this must agree with Oracle and with every search
// algorithm — a strong cross-check used by the tests.
func GaleShapley(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, f := range p.Functions {
		if f.capacity() != 1 {
			return nil, fmt.Errorf("assign: GaleShapley supports capacity 1 only (function %d)", f.ID)
		}
	}
	for _, o := range p.Objects {
		if o.capacity() != 1 {
			return nil, fmt.Errorf("assign: GaleShapley supports capacity 1 only (object %d)", o.ID)
		}
	}

	nf, no := len(p.Functions), len(p.Objects)
	// Score matrix and per-function preference order over objects.
	scores := make([][]float64, nf)
	prefs := make([][]int, nf)
	for fi, f := range p.Functions {
		w := f.Effective()
		row := make([]float64, no)
		for oi, o := range p.Objects {
			row[oi] = score.Eval(f.Fam, w, o.Point)
		}
		scores[fi] = row
		order := make([]int, no)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if row[a] != row[b] {
				return row[a] > row[b]
			}
			return p.Objects[a].ID < p.Objects[b].ID
		})
		prefs[fi] = order
	}

	next := make([]int, nf)      // next proposal index per function
	engagedTo := make([]int, no) // object -> function index, -1 if free
	for i := range engagedTo {
		engagedTo[i] = -1
	}
	var free []int
	for fi := 0; fi < nf; fi++ {
		free = append(free, fi)
	}
	for len(free) > 0 {
		fi := free[len(free)-1]
		free = free[:len(free)-1]
		if next[fi] >= no {
			continue // exhausted all objects (|F| > |O| case)
		}
		oi := prefs[fi][next[fi]]
		next[fi]++
		cur := engagedTo[oi]
		if cur == -1 {
			engagedTo[oi] = fi
			continue
		}
		// Object prefers the proposal with the higher score (tie: lower
		// function ID).
		better := scores[fi][oi] > scores[cur][oi] ||
			(scores[fi][oi] == scores[cur][oi] && p.Functions[fi].ID < p.Functions[cur].ID)
		if better {
			engagedTo[oi] = fi
			free = append(free, cur)
		} else {
			free = append(free, fi)
		}
	}

	res := &Result{}
	for oi, fi := range engagedTo {
		if fi == -1 {
			continue
		}
		res.Pairs = append(res.Pairs, Pair{
			FuncID:   p.Functions[fi].ID,
			ObjectID: p.Objects[oi].ID,
			Score:    scores[fi][oi],
		})
	}
	// Normalize order for comparison: descending score, then IDs.
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].Score != res.Pairs[j].Score {
			return res.Pairs[i].Score > res.Pairs[j].Score
		}
		if res.Pairs[i].FuncID != res.Pairs[j].FuncID {
			return res.Pairs[i].FuncID < res.Pairs[j].FuncID
		}
		return res.Pairs[i].ObjectID < res.Pairs[j].ObjectID
	})
	res.Stats.Pairs = int64(len(res.Pairs))
	return res, nil
}

// GaleShapleyCapacitated solves the capacitated stable assignment by
// clone expansion: an entity with capacity c is split into c unit clones
// with identical preferences, classic Gale–Shapley runs on the expanded
// instance, and clone pairs collapse back. This is the textbook reduction
// of the hospitals/residents problem and serves as a second independent
// oracle for the Section 6.1 variant. Priorities (γ) are honored through
// the effective weights.
func GaleShapleyCapacitated(p *Problem) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	expanded := &Problem{Dims: p.Dims}
	// Clone IDs pack (original index, clone number); originals are
	// recovered through lookup tables.
	funcOrig := make(map[uint64]uint64)
	objOrig := make(map[uint64]uint64)
	var next uint64 = 1
	for _, f := range p.Functions {
		for c := 0; c < f.capacity(); c++ {
			expanded.Functions = append(expanded.Functions, Function{
				ID:      next,
				Weights: f.Weights,
				Gamma:   f.Gamma,
				Fam:     f.Fam,
			})
			funcOrig[next] = f.ID
			next++
		}
	}
	next = 1
	for _, o := range p.Objects {
		for c := 0; c < o.capacity(); c++ {
			expanded.Objects = append(expanded.Objects, Object{ID: next, Point: o.Point})
			objOrig[next] = o.ID
			next++
		}
	}
	res, err := GaleShapley(expanded)
	if err != nil {
		return nil, err
	}
	out := &Result{}
	for _, pr := range res.Pairs {
		out.Pairs = append(out.Pairs, Pair{
			FuncID:   funcOrig[pr.FuncID],
			ObjectID: objOrig[pr.ObjectID],
			Score:    pr.Score,
		})
	}
	out.Stats.Pairs = int64(len(out.Pairs))
	return out, nil
}

// IsStable verifies Definition 1 on a result: no function-object pair
// (f, o) outside the matching where both f and o would prefer each other
// over their assigned partners. Unassigned entities (with remaining
// capacity) prefer anything, matching the standard blocking-pair
// definition. Intended for tests (O(|F|·|O|)).
func IsStable(p *Problem, pairs []Pair) error {
	fThresh := make(map[uint64]float64) // worst score f received
	oThresh := make(map[uint64]float64) // worst score o received
	fUsed := make(map[uint64]int)
	oUsed := make(map[uint64]int)
	for _, pr := range pairs {
		if v, ok := fThresh[pr.FuncID]; !ok || pr.Score < v {
			fThresh[pr.FuncID] = pr.Score
		}
		if v, ok := oThresh[pr.ObjectID]; !ok || pr.Score < v {
			oThresh[pr.ObjectID] = pr.Score
		}
		fUsed[pr.FuncID]++
		oUsed[pr.ObjectID]++
	}
	const eps = 1e-9
	for _, f := range p.Functions {
		w := f.Effective()
		for _, o := range p.Objects {
			s := score.Eval(f.Fam, w, o.Point)
			fWants := fUsed[f.ID] < f.capacity() || s > fThresh[f.ID]+eps
			oWants := oUsed[o.ID] < o.capacity() || s > oThresh[o.ID]+eps
			if fWants && oWants {
				// Both prefer each other over (one of) their current
				// partners: blocking pair — unless they are already
				// matched together at this score.
				matched := false
				for _, pr := range pairs {
					if pr.FuncID == f.ID && pr.ObjectID == o.ID {
						matched = true
						break
					}
				}
				if !matched {
					return fmt.Errorf("assign: blocking pair (f=%d, o=%d, score=%v)", f.ID, o.ID, s)
				}
			}
		}
	}
	return nil
}
