package assign

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
	"fairassign/internal/topk"
)

// Typed misuse errors. All Workspace methods return wrapped forms of
// these sentinels (match with errors.Is), so callers can distinguish
// programming mistakes from environmental failures.
var (
	// ErrClosed is returned by every Workspace method after Close.
	ErrClosed = errors.New("assign: workspace is closed")
	// ErrViewClosed is returned by View query methods after View.Close.
	ErrViewClosed = errors.New("assign: view is closed")
	// ErrDuplicateID is returned by AddObject/AddFunction when the ID is
	// already live on that side.
	ErrDuplicateID = errors.New("assign: duplicate id")
	// ErrUnknownID is returned by RemoveObject/RemoveFunction when no
	// live entity has the ID.
	ErrUnknownID = errors.New("assign: unknown id")
)

// Workspace is the long-lived incremental form of the solver: it builds
// the shared solve state once, computes the initial stable matching with
// SB, and then repairs the matching in place as preference functions and
// objects arrive or depart — the dynamic regime the paper sketches as
// future work in Section 8.
//
// Repair works through two bounded chain primitives, mirroring the
// paper's Chain algorithm and its Property 2 (a mutual best pair is
// stable):
//
//   - a freed function unit proposes down its preference order: it takes
//     the best object that either has spare capacity or holds a strictly
//     worse assignment, displacing that assignment and re-chaining the
//     displaced function;
//   - a freed object unit pulls the best function that strictly prefers
//     it over its current worst assignment (or has spare capacity), and
//     the vacancy the mover leaves behind cascades.
//
// Because both sides rank every pair by the same score f(o), the stable
// matching is unique (up to score ties), so chain repair lands on
// exactly the matching a from-scratch solve of the mutated snapshot
// produces — the conformance mutation harness asserts this after every
// mutation of randomized scripts.
//
// Exact score ties (bit-equal f(o) for different pairs — measure zero
// for continuous data, but reachable through duplicate or diagonal
// points) are resolved by the definitional greedy order: lower function
// ID, then lower object ID. A one-shot SB solve resolves such ties by
// TA scan order instead, so on tied instances the two can return
// different — equally stable — resolutions of the tie.
//
// The availability frontier — the skyline of objects with remaining
// capacity — is maintained incrementally through the Section 5.2
// machinery (Maintainer.Insert for arrivals and revived capacity,
// Maintainer.Discard for exhaustion and departures). Function proposals
// scan that skyline for the best free object and use its score as a
// ceiling for the displacement search, which then expands only the
// index region that could beat taking a free object outright.
type Workspace struct {
	// mu is the single-writer lock: it serializes mutations, epoch
	// publication, and snapshot acquisition. Snapshot readers never take
	// it — a View answers from immutable published state — so reads
	// proceed concurrently with (and unblocked by) repairs.
	mu sync.Mutex

	st  *solveState
	cfg Config

	// vstore is the versioned wrapper around the object-index store
	// (st.store). Each mutation ends by flushing the buffer pool and
	// publishing a new store epoch; snapshots pin published epochs and
	// read page versions copy-on-write-retained for them.
	vstore *pagestore.VersionedStore
	epoch  uint64 // latest published epoch

	// pub caches the captured state of the latest published epoch. It is
	// built lazily by the first Snapshot after a mutation and dropped
	// (released) by the next mutation, so pure churn pays nothing for it.
	// pubA mirrors it for the lock-free Snapshot fast path: readers
	// retain straight off the atomic pointer and never queue on mu
	// unless the cache was just invalidated (or while a pinned epoch is
	// being recaptured).
	pub  *pubState
	pubA atomic.Pointer[pubState]

	// avail is the availability frontier: a materialized skyline
	// maintainer over the objects with remaining capacity. It holds no
	// R-tree references (the workspace physically mutates its trees), so
	// arbitrary Insert/Discard traffic stays correct.
	avail *skyline.Maintainer

	// Function R-tree over effective weight vectors (as in Chain),
	// dynamically maintained; reverse searches (best function for an
	// object) run against it. fstore is fvstore: the function side is
	// versioned too, so snapshot capture can image both stores from the
	// in-memory version chains without physical reads.
	fstore  pagestore.Store
	fvstore *pagestore.VersionedStore
	fpool   *pagestore.BufferPool
	ftree   *rtree.Tree

	// dur is the durability state (nil without a WALDir): the log every
	// Apply batch is fsynced to before its epoch publishes, plus the
	// snapshot directory. recovery describes how an OpenWorkspace
	// workspace was reconstructed.
	dur      *durableState
	recovery *RecoveryInfo

	objs  map[uint64]Object
	funcs map[uint64]Function
	eff   map[uint64][]float64 // function ID -> effective weights (ftree points)
	// nonlin holds the live non-linear functions in per-family columnar
	// blocks. Linear functions live in the ftree (reverse search via dot
	// symmetry); non-linear scores are not bilinear, so bestTaker scans
	// these blocks with the batched dual kernel instead. Purely linear
	// populations — the paper's workload — keep this empty and pay
	// nothing.
	nonlin *score.FuncBlocks

	// The matching, indexed from both sides; one wsPair per assigned
	// unit, present in exactly one slice of each map.
	byObj  map[uint64][]wsPair
	byFunc map[uint64][]wsPair

	queue []repairItem // free units awaiting chain repair

	closed    bool        // guarded by mu
	closedA   atomic.Bool // mirrors closed for the lock-free Snapshot fast path
	corrupt   error       // non-nil after a mid-mutation structural failure (see ErrCorrupt)
	mutations int64
	commits   int64 // epochs published (group commits batch many mutations into one)
	chainLen  int64 // reassignments performed by repair chains
	searches  int64 // top-1 probes issued by repair
	resolves  int64 // full solves (the initial build)
}

// wsPair is one assigned unit of the matching.
type wsPair struct {
	fid   uint64
	oid   uint64
	score float64
}

// repairItem is a freed unit: a function unit looking for an object, or
// an object unit looking for a function.
type repairItem struct {
	isFunc bool
	id     uint64
}

// WorkspaceStats is a point-in-time summary of a workspace.
type WorkspaceStats struct {
	Objects       int   // live objects
	Functions     int   // live functions
	AssignedUnits int   // pairs in the current matching
	SkylineSize   int   // availability frontier (objects with spare capacity)
	Mutations     int64 // mutations applied since construction
	Commits       int64 // epochs published (Apply groups many mutations into one)
	ChainSteps    int64 // reassignments performed by repair chains
	Searches      int64 // top-1 probes issued by repair
	Resolves      int64 // from-scratch solves (1: the initial build)
	IO            metrics.IOCounter
}

// NewWorkspace builds the shared state, solves the initial instance with
// SB, and returns a workspace ready for mutations. The object-index
// store is built through a versioned wrapper around the configured
// store factory, so snapshots can pin page epochs; the function-side
// store stays unversioned (views never traverse it).
func NewWorkspace(p *Problem, cfg Config) (*Workspace, error) {
	scfg := cfg
	innerFactory := cfg.StoreFactory
	scfg.StoreFactory = func(pageSize int) (pagestore.Store, error) {
		var inner pagestore.Store
		if innerFactory != nil {
			var err error
			inner, err = innerFactory(pageSize)
			if err != nil {
				return nil, err
			}
		} else {
			inner = pagestore.NewMemStore(pageSize)
		}
		return pagestore.NewVersioned(inner), nil
	}
	st, err := newSolveState(p, scfg)
	if err != nil {
		return nil, err
	}
	res, err := st.runSB(modeOptimized)
	if err != nil {
		st.release()
		return nil, err
	}

	finner, err := cfg.newStore()
	if err != nil {
		st.release()
		return nil, err
	}
	// The function store gets the same versioned wrapper as the object
	// store. Views never traverse it, so no epochs are ever pinned and
	// every write recycles in place (one shadow memcpy); what the
	// wrapper buys is CurrentPages — durable snapshot capture images the
	// function index from the in-memory chains instead of issuing
	// counted physical reads.
	fvstore := pagestore.NewVersioned(finner)
	fvstore.SetSerializedAcquire(true)
	fpool := cfg.newBuildPool(fvstore)
	vstore := st.store.(*pagestore.VersionedStore)
	// w.mu serializes Snapshot (→ Acquire) with mutations, so the store
	// may recycle page versions in place whenever no live view observes
	// them — churn without open views then retains no history.
	vstore.SetSerializedAcquire(true)
	w := &Workspace{
		st:       st,
		cfg:      cfg,
		vstore:   vstore,
		fstore:   fvstore,
		fvstore:  fvstore,
		fpool:    fpool,
		objs:     make(map[uint64]Object, len(p.Objects)),
		funcs:    make(map[uint64]Function, len(p.Functions)),
		eff:      make(map[uint64][]float64, len(p.Functions)),
		nonlin:   score.NewFuncBlocks(p.Dims),
		byObj:    make(map[uint64][]wsPair),
		byFunc:   make(map[uint64][]wsPair),
		resolves: 1,
	}
	for _, o := range p.Objects {
		w.objs[o.ID] = Object{ID: o.ID, Point: o.Point.Clone(), Capacity: o.Capacity}
	}
	fitems := make([]rtree.Item, 0, len(p.Functions))
	for _, f := range p.Functions {
		ew := f.Effective()
		w.funcs[f.ID] = f
		w.eff[f.ID] = ew
		if f.Fam.IsLinear() {
			fitems = append(fitems, rtree.Item{ID: f.ID, Point: ew})
		} else {
			w.nonlin.Add(f.ID, f.Fam, ew)
		}
	}
	w.ftree, err = rtree.BulkLoadWorkers(fpool, p.Dims, fitems, cfg.treeFill(), cfg.buildWorkers())
	if err != nil {
		w.Close()
		return nil, err
	}
	for _, pr := range res.Pairs {
		w.link(wsPair{fid: pr.FuncID, oid: pr.ObjectID, score: pr.Score})
	}
	// Materialize the availability frontier from the post-solve capacity
	// table. The solve's own maintainer ends in the same logical state
	// but parks pruned subtrees by page reference, which would go stale
	// under the physical tree mutations ahead.
	var availItems []rtree.Item
	for id, o := range w.objs {
		if w.st.objCaps.remaining[id] > 0 {
			availItems = append(availItems, rtree.Item{ID: id, Point: o.Point})
		}
	}
	w.avail = skyline.NewMaintainerFromItems(p.Dims, availItems, nil)
	// Parked entries can go stale (their object departed or exhausted —
	// and its ID may even be reused for a different point); the oracle
	// drops them the moment they resurface, so no tombstones accumulate.
	w.avail.SetLiveCheck(func(id uint64, pt geom.Point) bool {
		o, ok := w.objs[id]
		return ok && w.st.objCaps.remaining[id] > 0 && o.Point.Equal(pt)
	})
	w.st.maint = nil // drop the tree-backed maintainer: it must not outlive tree mutations
	// Publish the initial epoch so snapshots taken before any mutation
	// have a sealed page state to pin.
	if err := w.commitLocked(); err != nil {
		w.Close()
		return nil, err
	}
	if cfg.WALDir != "" || cfg.Durable {
		if err := w.initDurable(); err != nil {
			w.Close()
			return nil, err
		}
	}
	return w, nil
}

// commitLocked seals the current epoch: the workspace's cached
// published state is dropped (open views keep theirs alive), dirty
// pages are flushed so the version layer holds the epoch's final bytes,
// and the store publishes — after which every page the epoch retired
// and no snapshot still pins is reclaimed. Caller holds w.mu (or is
// constructing the workspace).
func (w *Workspace) commitLocked() error {
	w.dropPubLocked()
	if err := w.st.pool.Flush(); err != nil {
		return err
	}
	w.epoch = w.vstore.Publish()
	w.commits++
	return nil
}

// dropPubLocked invalidates the cached published state: the fast-path
// pointer is cleared first, so no new reader can retain it after the
// workspace reference is released.
func (w *Workspace) dropPubLocked() {
	if w.pub != nil {
		w.pubA.Store(nil)
		w.pub.release()
		w.pub = nil
	}
}

// Snapshot returns a read view pinned to the latest published epoch.
// The view is immune to later mutations, safe for concurrent use, and
// must be Closed to let the epoch's retired page versions be reclaimed.
// The capture is performed at most once per epoch — concurrent
// snapshots between two mutations share one immutable state — and the
// shared case is lock-free: only the first snapshot after a mutation
// (which performs the capture) synchronizes with the writer.
func (w *Workspace) Snapshot() (*View, error) {
	// Fast path: a published state is cached and alive; retain it
	// without touching the writer lock. (During an in-flight mutation
	// this hands out the previous epoch — exactly the latest published
	// state.) The closed re-check after the retain closes the window
	// where a racing Close — whose cache invalidation cannot revoke a
	// pointer already loaded — would otherwise let a post-Close call
	// succeed while other views keep the state alive.
	if p := w.pubA.Load(); p != nil && p.tryRetain() {
		if w.closedA.Load() {
			p.release()
			return nil, ErrClosed
		}
		return &View{pub: p}, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.liveLocked(); err != nil {
		return nil, err
	}
	if w.pub == nil {
		w.pub = w.captureLocked()
		w.pubA.Store(w.pub)
	}
	w.pub.retain()
	return &View{pub: w.pub}, nil
}

// captureLocked freezes the logical state of the current epoch. Pair,
// object, and function slices are flat copies whose per-entity points
// and weights alias the immutable originals; derived forms (sort
// order, indexes) are materialized lazily by the views. Holds w.mu.
func (w *Workspace) captureLocked() *pubState {
	p := &pubState{
		epoch: w.epoch,
		dims:  w.Dims(),
		snap:  w.vstore.Acquire(),
		meta:  w.st.tree.Meta(),
		stats: w.statsLocked(),
		avail: w.avail.Skyline(),
	}
	p.refs.Store(1) // the workspace's own cache reference
	p.pairs = w.pairsLocked()
	p.objs = make([]Object, 0, len(w.objs))
	for _, o := range w.objs {
		p.objs = append(p.objs, o)
	}
	p.funcs = make([]Function, 0, len(w.funcs))
	for _, f := range w.funcs {
		p.funcs = append(p.funcs, f)
	}
	return p
}

// Dims returns the workspace dimensionality.
func (w *Workspace) Dims() int { return w.st.p.Dims }

// Close releases the page stores behind both indexes. The workspace
// must not be used afterwards.
func (w *Workspace) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	w.closedA.Store(true)
	w.dropPubLocked()
	w.st.release()
	if w.fstore != nil {
		w.fstore.Close()
	}
	if w.dur != nil && w.dur.log != nil {
		w.dur.log.Close()
	}
}

// link records one assigned unit on both sides.
func (w *Workspace) link(p wsPair) {
	w.byObj[p.oid] = append(w.byObj[p.oid], p)
	w.byFunc[p.fid] = append(w.byFunc[p.fid], p)
}

// unlink removes one instance of the pair from both sides.
func (w *Workspace) unlink(p wsPair) {
	w.byObj[p.oid] = cutPair(w.byObj[p.oid], p)
	w.byFunc[p.fid] = cutPair(w.byFunc[p.fid], p)
}

func cutPair(ps []wsPair, p wsPair) []wsPair {
	for i := range ps {
		if ps[i] == p {
			ps[i] = ps[len(ps)-1]
			return ps[:len(ps)-1]
		}
	}
	panic("assign: workspace pair index out of sync")
}

// worstOfObj returns the weakest assignment an object holds — the one a
// stronger proposer displaces. Greedy order: lower score is worse; on a
// tie the higher function ID lost the tiebreak, so it goes first.
func worstOfObj(ps []wsPair) wsPair {
	worst := ps[0]
	for _, p := range ps[1:] {
		if p.score < worst.score || (p.score == worst.score && p.fid > worst.fid) {
			worst = p
		}
	}
	return worst
}

// worstOfFunc is the function-side mirror: lower score is worse, ties
// broken toward the higher object ID.
func worstOfFunc(ps []wsPair) wsPair {
	worst := ps[0]
	for _, p := range ps[1:] {
		if p.score < worst.score || (p.score == worst.score && p.oid > worst.oid) {
			worst = p
		}
	}
	return worst
}

// AddObject introduces a new object: it joins both the R-tree and the
// availability skyline, then pulls takers for its capacity via chain
// repair.
func (w *Workspace) AddObject(o Object) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applyLocked([]Mutation{{Kind: MutAddObject, Object: o}})
}

// RemoveObject withdraws an object. Its assigned functions are freed
// and re-chained; the availability skyline is invalidated through
// Discard (delta maintenance: tombstoned if the object is parked inside
// a pruned list).
func (w *Workspace) RemoveObject(id uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applyLocked([]Mutation{{Kind: MutRemoveObject, ID: id}})
}

// AddFunction introduces a new preference function and runs the paper's
// chain update: the arrival proposes down its preference order,
// displacing strictly worse assignments along a bounded chain.
func (w *Workspace) AddFunction(f Function) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applyLocked([]Mutation{{Kind: MutAddFunction, Function: f}})
}

// RemoveFunction withdraws a function; the object units it held become
// vacancies that pull replacement functions along chains.
func (w *Workspace) RemoveFunction(id uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applyLocked([]Mutation{{Kind: MutRemoveFunction, ID: id}})
}

// restoreObjectUnit gives one unit of capacity back to an object; a
// revival (exhausted → available) re-enters the availability skyline.
func (w *Workspace) restoreObjectUnit(oid uint64) {
	if w.st.objCaps.restore(oid) {
		o := w.objs[oid]
		if err := w.avail.Insert(rtree.Item{ID: oid, Point: o.Point}); err != nil {
			// Insert only errors on a live duplicate, which the
			// availability bookkeeping rules out.
			panic(fmt.Sprintf("assign: workspace availability out of sync: %v", err))
		}
	}
}

// consumeObjectUnit takes one unit of an object's capacity; exhaustion
// leaves the availability skyline via Discard.
func (w *Workspace) consumeObjectUnit(oid uint64) error {
	if w.st.objCaps.consume(oid) {
		return w.avail.Discard(oid)
	}
	return nil
}

func (w *Workspace) pushFunc(id uint64) { w.queue = append(w.queue, repairItem{isFunc: true, id: id}) }
func (w *Workspace) pushObj(id uint64)  { w.queue = append(w.queue, repairItem{isFunc: false, id: id}) }

// liveLocked guards against use after Close and after a corrupting
// mid-mutation failure. Caller holds w.mu.
func (w *Workspace) liveLocked() error {
	if w.closed {
		return ErrClosed
	}
	if w.corrupt != nil {
		return fmt.Errorf("%w: %w", ErrCorrupt, w.corrupt)
	}
	return nil
}

// repair drains the free-unit queue. Every step either fills a free
// slot (bounded by total capacity) or replaces an assignment with a
// strictly better one in the greedy order, so the cascade terminates;
// at quiescence no blocking pair remains, and with both sides ranking
// pairs by the same score that stable matching is the greedy one.
func (w *Workspace) repair() error {
	for len(w.queue) > 0 {
		it := w.queue[0]
		w.queue = w.queue[1:]
		var err error
		if it.isFunc {
			err = w.placeFunction(it.id)
		} else {
			err = w.fillObject(it.id)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// placeFunction runs proposal chains for every free unit of a function.
func (w *Workspace) placeFunction(fid uint64) error {
	if _, ok := w.funcs[fid]; !ok {
		return nil // departed while queued
	}
	for w.st.funcCaps.remaining[fid] > 0 {
		oid, score, displace, ok, err := w.bestEntry(fid)
		if err != nil {
			return err
		}
		if !ok {
			return nil // no object accepts: the unit stays free
		}
		if displace {
			evicted := worstOfObj(w.byObj[oid])
			w.unlink(evicted)
			w.st.funcCaps.restore(evicted.fid)
			w.pushFunc(evicted.fid)
		} else if err := w.consumeObjectUnit(oid); err != nil {
			return err
		}
		w.st.funcCaps.consume(fid)
		w.link(wsPair{fid: fid, oid: oid, score: score})
		w.chainLen++
	}
	return nil
}

// scorerOf returns a live function's effective scorer: its scoring
// family over the γ-folded weights. Struct-by-value over existing
// slices — no allocation on the repair hot paths.
func (w *Workspace) scorerOf(fid uint64) score.Scorer {
	return score.Scorer{Fam: w.funcs[fid].Fam, W: w.eff[fid]}
}

// bestEntry finds the best object a function unit can enter: the best
// available object (scanned off the availability skyline, no I/O), or
// a full object holding a strictly worse assignment. The availability
// score is the ceiling of the displacement search. Both the frontier
// scan and the BRS displacement search run under the function's scorer,
// which is what keeps repair correct for every monotone family.
func (w *Workspace) bestEntry(fid uint64) (oid uint64, sc float64, displace, ok bool, err error) {
	fsc := w.scorerOf(fid)
	availScore, availID := math.Inf(-1), uint64(0)
	haveAvail := false
	// One batched kernel pass over the frontier's columnar mirror —
	// bit-identical scores and the same (score, lowest-ID) selection as
	// the former per-item Skyline() scan.
	if it, s, ok := w.avail.Best(fsc); ok {
		availScore, availID, haveAvail = s, it.ID, true
	}

	bound := availScore
	sr := topk.NewScorerSearcher(w.st.tree, fsc, func(cand uint64) bool {
		return !w.displaceable(fid, fsc, cand)
	})
	w.searches++
	it, s, found, err := sr.NextAtLeast(bound)
	if err != nil {
		return 0, 0, false, false, err
	}
	if found && (!haveAvail || s > availScore || (s == availScore && it.ID < availID)) {
		return it.ID, s, true, true, nil
	}
	if haveAvail {
		return availID, availScore, false, true, nil
	}
	return 0, 0, false, false, nil
}

// displaceable reports whether a full object would evict its worst
// assignment in favor of the proposing function (available objects are
// handled by the skyline path and skipped here).
func (w *Workspace) displaceable(fid uint64, fsc score.Scorer, oid uint64) bool {
	if w.st.objCaps.remaining[oid] > 0 {
		return false
	}
	worst := worstOfObj(w.byObj[oid])
	s := fsc.Score(w.objs[oid].Point)
	return s > worst.score || (s == worst.score && fid < worst.fid)
}

// fillObject runs vacancy chains for every free unit of an object.
func (w *Workspace) fillObject(oid uint64) error {
	if _, ok := w.objs[oid]; !ok {
		return nil // departed while queued
	}
	for w.st.objCaps.remaining[oid] > 0 {
		gid, score, ok, err := w.bestTaker(oid)
		if err != nil {
			return err
		}
		if !ok {
			return nil // nobody wants the vacancy: it stays open
		}
		if w.st.funcCaps.remaining[gid] > 0 {
			w.st.funcCaps.consume(gid)
		} else {
			// The mover abandons its worst unit, cascading the vacancy.
			left := worstOfFunc(w.byFunc[gid])
			w.unlink(left)
			w.restoreObjectUnit(left.oid)
			w.pushObj(left.oid)
		}
		if err := w.consumeObjectUnit(oid); err != nil {
			return err
		}
		w.link(wsPair{fid: gid, oid: oid, score: score})
		w.chainLen++
	}
	return nil
}

// bestTaker finds the best function that wants a vacant object unit: a
// function with spare capacity wants it at any score; a fully assigned
// function wants it only above its current worst assignment. The
// reverse search runs over the function R-tree, bounded below by the
// weakest assignment any function holds (nothing scoring under that can
// be wanted).
func (w *Workspace) bestTaker(oid uint64) (gid uint64, score float64, ok bool, err error) {
	o := w.objs[oid]
	bound := math.Inf(1)
	if w.st.funcCaps.live > 0 {
		// Some function has spare capacity and wants anything: no bound.
		bound = math.Inf(-1)
	} else {
		for fid := range w.funcs {
			if worst := worstOfFunc(w.byFunc[fid]); worst.score < bound {
				bound = worst.score
			}
		}
	}
	sr := topk.NewSearcher(w.ftree, o.Point, func(cand uint64) bool {
		return !w.wants(cand, oid, o.Point)
	})
	w.searches++
	it, s, found, err := sr.NextAtLeast(bound)
	if err != nil {
		return 0, 0, false, err
	}
	gid = it.ID
	// Non-linear functions are outside the weight tree; the columnar
	// blocks score them all with one dual-kernel pass under the same
	// wants filter and bound, breaking ties to the lower ID exactly as
	// the BRS enumeration does (Best follows the same (score, lowest-ID)
	// total order with bit-identical scores).
	if bid, v, bok := w.nonlin.Best(o.Point, func(fid uint64, v float64) bool {
		return v >= bound && w.wantsAt(fid, oid, v)
	}); bok {
		if !found || v > s || (v == s && bid < gid) {
			gid, s, found = bid, v, true
		}
	}
	if !found {
		return 0, 0, false, nil
	}
	return gid, s, true, nil
}

// wants reports whether a function prefers the vacant object over its
// current worst assignment (or has a free unit).
func (w *Workspace) wants(fid, oid uint64, point geom.Point) bool {
	if w.st.funcCaps.remaining[fid] > 0 {
		return true
	}
	return w.wantsAt(fid, oid, w.scorerOf(fid).Score(point))
}

// wantsAt is wants with the function's score for the object already in
// hand (spare capacity is re-checked so both entry points agree).
func (w *Workspace) wantsAt(fid, oid uint64, s float64) bool {
	if w.st.funcCaps.remaining[fid] > 0 {
		return true
	}
	worst := worstOfFunc(w.byFunc[fid])
	return s > worst.score || (s == worst.score && oid < worst.oid)
}

// sortPairsDefinitional orders pairs in the definitional greedy order:
// descending score, ties by ascending function then object ID.
func sortPairsDefinitional(out []Pair) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.FuncID != b.FuncID {
			return a.FuncID < b.FuncID
		}
		return a.ObjectID < b.ObjectID
	})
}

// pairsLocked flattens the matching into a fresh unordered slice.
// Caller holds w.mu.
func (w *Workspace) pairsLocked() []Pair {
	out := make([]Pair, 0, len(w.byFunc))
	for _, ps := range w.byFunc {
		for _, p := range ps {
			out = append(out, Pair{FuncID: p.fid, ObjectID: p.oid, Score: p.score})
		}
	}
	return out
}

// Pairs returns the current matching in the definitional greedy order:
// descending score, ties by ascending function then object ID.
func (w *Workspace) Pairs() []Pair {
	w.mu.Lock()
	out := w.pairsLocked()
	w.mu.Unlock()
	sortPairsDefinitional(out)
	return out
}

// ObjectPoint returns a live object's feature vector.
func (w *Workspace) ObjectPoint(id uint64) (geom.Point, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, ok := w.objs[id]
	if !ok {
		return nil, false
	}
	return o.Point, true
}

// PairsOf returns the current assignments of one function (unordered).
func (w *Workspace) PairsOf(fid uint64) []Pair {
	w.mu.Lock()
	defer w.mu.Unlock()
	ps := w.byFunc[fid]
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{FuncID: p.fid, ObjectID: p.oid, Score: p.score}
	}
	return out
}

// ProblemSnapshot materializes the current instance as a Problem
// (entities sorted by ID), for differential validation against one-shot
// solvers. (Read views over the live workspace are taken with Snapshot
// instead.)
func (w *Workspace) ProblemSnapshot() *Problem {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.problemLocked()
}

func (w *Workspace) problemLocked() *Problem {
	p := &Problem{Dims: w.Dims()}
	for _, o := range w.objs {
		p.Objects = append(p.Objects, Object{ID: o.ID, Point: o.Point.Clone(), Capacity: o.Capacity})
	}
	sort.Slice(p.Objects, func(i, j int) bool { return p.Objects[i].ID < p.Objects[j].ID })
	for _, f := range w.funcs {
		weights := make([]float64, len(f.Weights))
		copy(weights, f.Weights)
		p.Functions = append(p.Functions, Function{ID: f.ID, Weights: weights, Gamma: f.Gamma, Capacity: f.Capacity, Fam: f.Fam})
	}
	sort.Slice(p.Functions, func(i, j int) bool { return p.Functions[i].ID < p.Functions[j].ID })
	return p
}

// VerifyStable checks that the current matching is stable for the
// current population, atomically with respect to concurrent mutations.
// On a corrupt workspace it fails fast with ErrCorrupt — the in-memory
// matching is not trustworthy after a mid-mutation failure.
func (w *Workspace) VerifyStable() error {
	w.mu.Lock()
	if w.corrupt != nil {
		err := fmt.Errorf("%w: %w", ErrCorrupt, w.corrupt)
		w.mu.Unlock()
		return err
	}
	p := w.problemLocked()
	pairs := w.pairsLocked()
	w.mu.Unlock()
	// IsStable is O(|F|·|O|); run it on the copies, outside the lock.
	return IsStable(p, pairs)
}

// Stats summarizes the workspace.
func (w *Workspace) Stats() WorkspaceStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.statsLocked()
}

func (w *Workspace) statsLocked() WorkspaceStats {
	units := 0
	for _, ps := range w.byFunc {
		units += len(ps)
	}
	s := WorkspaceStats{
		Objects:       len(w.objs),
		Functions:     len(w.funcs),
		AssignedUnits: units,
		SkylineSize:   w.avail.Size(),
		Mutations:     w.mutations,
		Commits:       w.commits,
		ChainSteps:    w.chainLen,
		Searches:      w.searches,
		Resolves:      w.resolves,
	}
	if !w.closed {
		s.IO = w.st.store.IO().Snapshot()
		s.IO.Add(w.fstore.IO().Snapshot())
	}
	return s
}
