package assign

import (
	"fmt"
	"math"

	"fairassign/internal/pagestore"
)

// This file exports the small pieces of workspace machinery the sharded
// tier (internal/shard) composes: index store/pool construction through
// the same Config knobs, the definitional pair order, per-entity
// effective capacities, and mutation validation. Keeping these exported
// rather than duplicated means a Workspace and a shard core built from
// the same Config are physically identical — same page size, fill
// factor, buffer fraction, and decoded-node-cache setting — which is
// what makes the shard-count invariance sweep meaningful.

// SortPairs orders pairs in the definitional greedy order: descending
// score, ties by ascending function then object ID — the order Pairs
// and View.Pairs return.
func SortPairs(out []Pair) { sortPairsDefinitional(out) }

// NewIndexStore builds one physical page store through the configured
// factory (an in-memory simulated disk by default) — the exported form
// of the constructor every solver-side index uses.
func (c Config) NewIndexStore() (pagestore.Store, error) { return c.newStore() }

// NewIndexPool wraps a store with a construction-sized buffer pool,
// honoring the decoded-node-cache knob.
func (c Config) NewIndexPool(store pagestore.Store) *pagestore.BufferPool {
	return c.newBuildPool(store)
}

// TreeFillFactor returns the effective STR bulk-load occupancy.
func (c Config) TreeFillFactor() float64 { return c.treeFill() }

// IndexBuildWorkers returns the effective parallel bulk-load worker
// setting (passed straight to rtree.BulkLoadWorkers).
func (c Config) IndexBuildWorkers() int { return c.buildWorkers() }

// IndexBufferFrac returns the effective buffer-pool fraction of index
// pages.
func (c Config) IndexBufferFrac() float64 { return c.bufferFrac() }

// Cap returns the object's effective capacity (<= 0 means 1).
func (o Object) Cap() int { return o.capacity() }

// Cap returns the function's effective capacity (<= 0 means 1).
func (f Function) Cap() int { return f.capacity() }

// ValidateMutation checks one mutation against a population described
// by the two liveness predicates, without touching any state. It is the
// single validation routine behind Workspace.Apply and the sharded
// engine, so both reject exactly the same inputs with the same typed
// sentinels (ErrBadPoint, ErrBadCapacity, ErrBadWeight, ErrBadGamma,
// ErrBadMutation, ErrDuplicateID, ErrUnknownID).
func ValidateMutation(dims int, m *Mutation, objLive, funcLive func(uint64) bool) error {
	switch m.Kind {
	case MutAddObject:
		o := &m.Object
		if len(o.Point) != dims {
			return fmt.Errorf("assign: object %d has %d dims, want %d", o.ID, len(o.Point), dims)
		}
		for _, v := range o.Point {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: object %d", ErrBadPoint, o.ID)
			}
		}
		if o.Capacity < 0 {
			return fmt.Errorf("%w: object %d has capacity %d", ErrBadCapacity, o.ID, o.Capacity)
		}
		if objLive(o.ID) {
			return fmt.Errorf("%w: object %d", ErrDuplicateID, o.ID)
		}
	case MutRemoveObject:
		if !objLive(m.ID) {
			return fmt.Errorf("%w: object %d", ErrUnknownID, m.ID)
		}
	case MutAddFunction:
		f := &m.Function
		if len(f.Weights) != dims {
			return fmt.Errorf("assign: function %d has %d weights, want %d", f.ID, len(f.Weights), dims)
		}
		for _, v := range f.Weights {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: function %d has non-finite weight", ErrBadWeight, f.ID)
			}
			if v < 0 {
				return fmt.Errorf("%w: function %d has negative weight", ErrBadWeight, f.ID)
			}
		}
		if math.IsNaN(f.Gamma) || math.IsInf(f.Gamma, 0) {
			return fmt.Errorf("%w: function %d", ErrBadGamma, f.ID)
		}
		if f.Capacity < 0 {
			return fmt.Errorf("%w: function %d has capacity %d", ErrBadCapacity, f.ID, f.Capacity)
		}
		if err := f.Fam.Validate(); err != nil {
			return fmt.Errorf("assign: function %d: %w", f.ID, err)
		}
		if funcLive(f.ID) {
			return fmt.Errorf("%w: function %d", ErrDuplicateID, f.ID)
		}
	case MutRemoveFunction:
		if !funcLive(m.ID) {
			return fmt.Errorf("%w: function %d", ErrUnknownID, m.ID)
		}
	default:
		return fmt.Errorf("%w: %d", ErrBadMutation, m.Kind)
	}
	return nil
}
