package assign

import (
	"sync"
	"sync/atomic"

	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
	"fairassign/internal/topk"
)

// pubState is one published epoch of a Workspace: the logical matching
// state captured under the writer lock, plus a pagestore snapshot
// pinning the object index's pages at the same epoch. It is shared —
// refcounted — between the workspace (which caches the state of its
// latest epoch until the next mutation) and every View handed out for
// that epoch; the page snapshot is released when the last reference
// drops.
//
// Captured slices alias the writer's immutable per-entity storage
// (object points and function weight vectors are cloned on arrival and
// never written again), so a capture is three flat struct copies, not a
// deep clone. Derived forms — the definitional sort order, the
// per-function index, the object lookup — are materialized lazily,
// once per epoch, on first use.
type pubState struct {
	refs atomic.Int64

	epoch uint64
	dims  int
	snap  *pagestore.Snapshot
	meta  rtree.Meta
	stats WorkspaceStats
	avail []rtree.Item // availability frontier (skyline of spare capacity)

	pairs    []Pair // definitional order after sortOnce
	sortOnce sync.Once

	objs  []Object
	funcs []Function

	byFunc     map[uint64][]Pair
	byFuncOnce sync.Once

	objByID     map[uint64]Object
	objByIDOnce sync.Once
}

func (p *pubState) retain() { p.refs.Add(1) }

// tryRetain takes a reference only if the state is still alive —
// the lock-free Snapshot fast path. Failure means a concurrent
// release drove the count to zero (the state is being destroyed);
// the caller falls back to the locked slow path.
func (p *pubState) tryRetain() bool {
	for {
		r := p.refs.Load()
		if r <= 0 {
			return false
		}
		if p.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

func (p *pubState) release() {
	if p.refs.Add(-1) == 0 {
		p.snap.Release()
	}
}

func (p *pubState) sortedPairs() []Pair {
	p.sortOnce.Do(func() { sortPairsDefinitional(p.pairs) })
	return p.pairs
}

func (p *pubState) pairsOf(fid uint64) []Pair {
	p.byFuncOnce.Do(func() {
		idx := make(map[uint64][]Pair)
		for _, pr := range p.sortedPairs() {
			idx[pr.FuncID] = append(idx[pr.FuncID], pr)
		}
		p.byFunc = idx
	})
	return p.byFunc[fid]
}

func (p *pubState) object(id uint64) (Object, bool) {
	p.objByIDOnce.Do(func() {
		idx := make(map[uint64]Object, len(p.objs))
		for _, o := range p.objs {
			idx[o.ID] = o
		}
		p.objByID = idx
	})
	o, ok := p.objByID[id]
	return o, ok
}

// View is a snapshot-isolated read handle on a Workspace: every method
// answers from the epoch the view pinned when Workspace.Snapshot was
// called, no matter how many mutations the workspace absorbs
// afterwards. Logical reads (Pairs, Stats, Problem) are served from the
// captured state; index-backed queries (TopK, Skyline, Tree) traverse
// the object R-tree through the pinned page epoch. A View is safe for
// concurrent use by multiple goroutines, stays valid after the
// workspace is closed, and must be Closed to release the epoch's page
// versions for reclamation.
type View struct {
	pub    *pubState
	closed atomic.Bool
}

// Epoch returns the published workspace epoch this view pins.
func (v *View) Epoch() uint64 { return v.pub.epoch }

// Dims returns the problem dimensionality.
func (v *View) Dims() int { return v.pub.dims }

// Closed reports whether Close has been called.
func (v *View) Closed() bool { return v.closed.Load() }

// Close releases the view's pin on its epoch. Idempotent. After the
// last view of an epoch closes (and the workspace has moved on), the
// page versions and decoded nodes only that epoch kept alive are
// reclaimed.
func (v *View) Close() {
	if v.closed.CompareAndSwap(false, true) {
		v.pub.release()
	}
}

// Pairs returns the frozen matching in the definitional greedy order.
// The slice is shared by every caller on this epoch and must be treated
// as immutable.
func (v *View) Pairs() []Pair {
	if v.closed.Load() {
		return nil
	}
	return v.pub.sortedPairs()
}

// PairsOf returns the frozen assignments of one function, best first.
// Shared and immutable, like Pairs.
func (v *View) PairsOf(fid uint64) []Pair {
	if v.closed.Load() {
		return nil
	}
	return v.pub.pairsOf(fid)
}

// Stats returns the workspace summary as of the view's epoch (the
// zero value once the view is closed).
func (v *View) Stats() WorkspaceStats {
	if v.closed.Load() {
		return WorkspaceStats{}
	}
	return v.pub.stats
}

// Object returns a frozen object by ID.
func (v *View) Object(id uint64) (Object, bool) {
	if v.closed.Load() {
		return Object{}, false
	}
	return v.pub.object(id)
}

// Problem materializes the frozen population as a Problem. Entity
// slices are shared with the view (treat as immutable); the per-entity
// points and weights are the immutable originals.
func (v *View) Problem() *Problem {
	if v.closed.Load() {
		return nil
	}
	return &Problem{Dims: v.pub.dims, Objects: v.pub.objs, Functions: v.pub.funcs}
}

// VerifyStable checks that the frozen matching is stable for the frozen
// population — the audit hook, answered entirely from the snapshot.
func (v *View) VerifyStable() error {
	if v.closed.Load() {
		return ErrViewClosed
	}
	return IsStable(v.Problem(), v.Pairs())
}

// Tree returns the object index frozen at the view's epoch. Searches
// over it read the pinned page versions and never touch the writer's
// buffer pool or I/O counters.
func (v *View) Tree() *rtree.View {
	return rtree.NewView(v.pub.snap, v.pub.dims, v.pub.meta)
}

// TopK runs a BRS ranked search with the given effective weights over
// the frozen object index, returning the k best objects and scores.
func (v *View) TopK(weights []float64, k int) ([]rtree.Item, []float64, error) {
	return v.TopKScorer(score.LinearScorer(weights), k)
}

// TopKScorer is TopK under an arbitrary monotone scorer (effective
// weights folded in), evaluated with BRS over the pinned index epoch.
func (v *View) TopKScorer(sc score.Scorer, k int) ([]rtree.Item, []float64, error) {
	if v.closed.Load() {
		return nil, nil, ErrViewClosed
	}
	return topk.TopKScorer(v.Tree(), sc, k, nil)
}

// Skyline computes the skyline of the frozen object set with BBS over
// the pinned index epoch.
func (v *View) Skyline() ([]rtree.Item, error) {
	if v.closed.Load() {
		return nil, ErrViewClosed
	}
	return skyline.Compute(v.Tree(), nil)
}

// AvailableFrontier returns the frozen availability skyline (objects
// with spare capacity, as maintained incrementally by the workspace).
// Shared and immutable.
func (v *View) AvailableFrontier() []rtree.Item {
	if v.closed.Load() {
		return nil
	}
	return v.pub.avail
}

// IOReads reports how many page resolutions this view's epoch snapshot
// has served so far (reader-side I/O; never charged to the writer).
func (v *View) IOReads() int64 { return v.pub.snap.Reads() }
