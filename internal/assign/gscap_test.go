package assign

import (
	"math/rand"
	"testing"
)

func TestGaleShapleyCapacitatedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 10; trial++ {
		p := randProblem(rng, 2+rng.Intn(15), 2+rng.Intn(25), 2+rng.Intn(2))
		for i := range p.Functions {
			p.Functions[i].Capacity = 1 + rng.Intn(3)
		}
		for i := range p.Objects {
			p.Objects[i].Capacity = 1 + rng.Intn(3)
		}
		want, err := Oracle(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GaleShapleyCapacitated(p)
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, "GS-capacitated", got.Pairs, want.Pairs)
		if err := IsStable(p, got.Pairs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGaleShapleyCapacitatedWithPriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := randProblem(rng, 12, 30, 3)
	gammas := []float64{1, 2, 4}
	for i := range p.Functions {
		p.Functions[i].Capacity = 1 + rng.Intn(2)
		p.Functions[i].Gamma = gammas[rng.Intn(len(gammas))]
	}
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GaleShapleyCapacitated(p)
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "GS-cap-gamma", got.Pairs, want.Pairs)
}

func TestGaleShapleyCapacitatedReducesToPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := randProblem(rng, 20, 20, 2)
	plain, err := GaleShapley(p)
	if err != nil {
		t.Fatal(err)
	}
	capa, err := GaleShapleyCapacitated(p)
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "GS-cap-unit", capa.Pairs, plain.Pairs)
}
