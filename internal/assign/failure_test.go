package assign

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
)

var errInjectedWS = errors.New("injected disk failure")

// faultSwitch arms failures on every store the workspace built from one
// factory — after construction, so the initial solve runs healthy.
type faultSwitch struct {
	failReads  bool
	failWrites bool
}

// faultyStore wraps a healthy store and fails the armed operations.
type faultyStore struct {
	pagestore.Store
	sw *faultSwitch
}

func (s *faultyStore) ReadPage(id pagestore.PageID, buf []byte) error {
	if s.sw.failReads {
		return errInjectedWS
	}
	return s.Store.ReadPage(id, buf)
}

func (s *faultyStore) WritePage(id pagestore.PageID, data []byte) error {
	if s.sw.failWrites {
		return errInjectedWS
	}
	return s.Store.WritePage(id, data)
}

func (s *faultyStore) IO() *metrics.IOCounter { return s.Store.IO() }

// faultyWorkspace builds a small live workspace whose every page store
// sits behind the returned fault switch, with buffering and node caching
// disabled so index traffic actually reaches the stores.
func faultyWorkspace(t *testing.T) (*Workspace, *faultSwitch) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	p := &Problem{Dims: 2}
	for i := 0; i < 40; i++ {
		p.Objects = append(p.Objects, Object{
			ID:    uint64(i + 1),
			Point: geom.Point{rng.Float64(), rng.Float64()},
		})
	}
	for i := 0; i < 8; i++ {
		a := rng.Float64()
		p.Functions = append(p.Functions, Function{
			ID:      uint64(i + 1),
			Weights: []float64{a, 1 - a},
		})
	}
	sw := &faultSwitch{}
	ws, err := NewWorkspace(p, Config{
		PageSize:         512,
		BufferFrac:       -1, // no buffering: reads hit the store
		DisableNodeCache: true,
		StoreFactory: func(pageSize int) (pagestore.Store, error) {
			return &faultyStore{Store: pagestore.NewMemStore(pageSize), sw: sw}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ws, sw
}

// TestMutationReadFailurePoisons injects a read failure mid-mutation and
// asserts the workspace poisons itself: the failing call and every call
// after it (mutations, batches, snapshots, audits) fail with ErrCorrupt
// wrapping the injected cause — even after the fault clears — while a
// snapshot taken before the failure keeps serving its epoch. Close still
// succeeds.
func TestMutationReadFailurePoisons(t *testing.T) {
	ws, sw := faultyWorkspace(t)
	defer ws.Close()

	before, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer before.Close()
	wantPairs := before.Pairs()

	sw.failReads = true
	err = ws.AddObject(Object{ID: 500, Point: geom.Point{0.9, 0.9}})
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, errInjectedWS) {
		t.Fatalf("AddObject under read failure = %v, want ErrCorrupt wrapping the injected error", err)
	}

	// The fault clears, but the workspace stays poisoned: its structures
	// may be half-mutated.
	sw.failReads = false
	if err := ws.AddObject(Object{ID: 501, Point: geom.Point{0.1, 0.1}}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("AddObject after poisoning = %v, want ErrCorrupt", err)
	}
	if err := ws.RemoveObject(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("RemoveObject after poisoning = %v, want ErrCorrupt", err)
	}
	if err := ws.Apply([]Mutation{{Kind: MutRemoveFunction, ID: 1}}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Apply after poisoning = %v, want ErrCorrupt", err)
	}
	if _, err := ws.Snapshot(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Snapshot after poisoning = %v, want ErrCorrupt", err)
	}
	if err := ws.VerifyStable(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("VerifyStable after poisoning = %v, want ErrCorrupt", err)
	}

	// The pre-failure view still answers from its pinned epoch.
	got := before.Pairs()
	if len(got) != len(wantPairs) {
		t.Fatalf("pre-failure view drifted: %d pairs, had %d", len(got), len(wantPairs))
	}
	for i := range got {
		if got[i] != wantPairs[i] {
			t.Fatalf("pre-failure view drifted at pair %d", i)
		}
	}
	if err := before.VerifyStable(); err != nil {
		t.Fatalf("pre-failure view audit: %v", err)
	}
}

// TestMutationWriteFailurePoisons arms write failures so the commit (or
// the structural phase, depending on where the first write lands) fails,
// and asserts the same poisoning contract.
func TestMutationWriteFailurePoisons(t *testing.T) {
	ws, sw := faultyWorkspace(t)
	defer ws.Close()

	sw.failWrites = true
	err := ws.AddObject(Object{ID: 500, Point: geom.Point{0.9, 0.9}})
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, errInjectedWS) {
		t.Fatalf("AddObject under write failure = %v, want ErrCorrupt wrapping the injected error", err)
	}
	sw.failWrites = false
	if err := ws.AddFunction(Function{ID: 500, Weights: []float64{0.5, 0.5}}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("AddFunction after poisoning = %v, want ErrCorrupt", err)
	}
}

// TestBatchStructuralFailurePoisons injects the failure mid-batch: the
// error must name the failing batch index and poison the workspace.
func TestBatchStructuralFailurePoisons(t *testing.T) {
	ws, sw := faultyWorkspace(t)
	defer ws.Close()

	sw.failReads = true
	err := ws.Apply([]Mutation{
		{Kind: MutRemoveFunction, ID: 1},
		{Kind: MutAddObject, Object: Object{ID: 500, Point: geom.Point{0.9, 0.9}}},
	})
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, errInjectedWS) {
		t.Fatalf("Apply under read failure = %v, want ErrCorrupt wrapping the injected error", err)
	}
	sw.failReads = false
	if _, err := ws.Snapshot(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Snapshot after poisoned batch = %v, want ErrCorrupt", err)
	}
}

// TestValidationErrorsAreAtomic asserts the other half of the contract:
// every validation error — bad input, duplicate or unknown ID, anywhere
// in a batch — rejects the call with the workspace untouched and fully
// usable.
func TestValidationErrorsAreAtomic(t *testing.T) {
	ws, _ := faultyWorkspace(t)
	defer ws.Close()

	wantPairs := ws.Pairs()
	wantStats := ws.Stats()

	cases := []struct {
		name string
		err  error
		call func() error
	}{
		{"nan point", ErrBadPoint, func() error {
			return ws.AddObject(Object{ID: 600, Point: geom.Point{math.NaN(), 0.5}})
		}},
		{"inf point", ErrBadPoint, func() error {
			return ws.AddObject(Object{ID: 600, Point: geom.Point{math.Inf(1), 0.5}})
		}},
		{"negative object capacity", ErrBadCapacity, func() error {
			return ws.AddObject(Object{ID: 600, Point: geom.Point{0.5, 0.5}, Capacity: -2})
		}},
		{"duplicate object", ErrDuplicateID, func() error {
			return ws.AddObject(Object{ID: 1, Point: geom.Point{0.5, 0.5}})
		}},
		{"unknown object", ErrUnknownID, func() error {
			return ws.RemoveObject(999)
		}},
		{"nan weight", ErrBadWeight, func() error {
			return ws.AddFunction(Function{ID: 600, Weights: []float64{math.NaN(), 0.5}})
		}},
		{"negative weight", ErrBadWeight, func() error {
			return ws.AddFunction(Function{ID: 600, Weights: []float64{-0.5, 1.5}})
		}},
		{"nan gamma", ErrBadGamma, func() error {
			return ws.AddFunction(Function{ID: 600, Weights: []float64{0.5, 0.5}, Gamma: math.NaN()})
		}},
		{"negative function capacity", ErrBadCapacity, func() error {
			return ws.AddFunction(Function{ID: 600, Weights: []float64{0.5, 0.5}, Capacity: -1})
		}},
		{"unknown function", ErrUnknownID, func() error {
			return ws.RemoveFunction(999)
		}},
		{"bad kind", ErrBadMutation, func() error {
			return ws.Apply([]Mutation{{}})
		}},
		{"bad batch member", ErrBadPoint, func() error {
			return ws.Apply([]Mutation{
				{Kind: MutRemoveObject, ID: 1}, // valid, must NOT land
				{Kind: MutAddObject, Object: Object{ID: 601, Point: geom.Point{math.NaN(), 0.5}}},
			})
		}},
		{"batch duplicate within batch", ErrDuplicateID, func() error {
			return ws.Apply([]Mutation{
				{Kind: MutAddObject, Object: Object{ID: 602, Point: geom.Point{0.2, 0.2}}},
				{Kind: MutAddObject, Object: Object{ID: 602, Point: geom.Point{0.3, 0.3}}},
			})
		}},
		{"batch remove then re-remove", ErrUnknownID, func() error {
			return ws.Apply([]Mutation{
				{Kind: MutRemoveObject, ID: 2},
				{Kind: MutRemoveObject, ID: 2},
			})
		}},
	}
	for _, tc := range cases {
		err := tc.call()
		if !errors.Is(err, tc.err) {
			t.Fatalf("%s: error = %v, want %v", tc.name, err, tc.err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: validation error must not poison, got %v", tc.name, err)
		}
		got := ws.Pairs()
		if len(got) != len(wantPairs) {
			t.Fatalf("%s: matching changed: %d pairs, want %d", tc.name, len(got), len(wantPairs))
		}
		for i := range got {
			if got[i] != wantPairs[i] {
				t.Fatalf("%s: matching changed at pair %d", tc.name, i)
			}
		}
		if st := ws.Stats(); st.Mutations != wantStats.Mutations {
			t.Fatalf("%s: mutation counter moved: %d, want %d", tc.name, st.Mutations, wantStats.Mutations)
		}
	}

	// The workspace is still fully usable after every rejection.
	if err := ws.AddObject(Object{ID: 700, Point: geom.Point{0.4, 0.6}}); err != nil {
		t.Fatalf("valid mutation after rejections: %v", err)
	}
	if err := ws.VerifyStable(); err != nil {
		t.Fatalf("stability after rejections: %v", err)
	}
}

// TestBatchGroupCommitCounters asserts the Commits counter reflects the
// group commits: one initial publish plus one per Apply call.
func TestBatchGroupCommitCounters(t *testing.T) {
	ws, _ := faultyWorkspace(t)
	defer ws.Close()

	base := ws.Stats()
	batch := []Mutation{
		{Kind: MutAddObject, Object: Object{ID: 800, Point: geom.Point{0.7, 0.2}}},
		{Kind: MutAddObject, Object: Object{ID: 801, Point: geom.Point{0.2, 0.7}}},
		{Kind: MutRemoveObject, ID: 800},
		{Kind: MutAddFunction, Function: Function{ID: 800, Weights: []float64{0.3, 0.7}}},
	}
	if err := ws.Apply(batch); err != nil {
		t.Fatal(err)
	}
	st := ws.Stats()
	if st.Mutations != base.Mutations+int64(len(batch)) {
		t.Fatalf("Mutations = %d, want %d", st.Mutations, base.Mutations+int64(len(batch)))
	}
	if st.Commits != base.Commits+1 {
		t.Fatalf("Commits = %d, want %d (one group commit)", st.Commits, base.Commits+1)
	}
	if err := ws.VerifyStable(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Apply(nil); err != nil {
		t.Fatalf("empty Apply: %v", err)
	}
	if got := ws.Stats().Commits; got != st.Commits {
		t.Fatalf("empty Apply published an epoch: %d -> %d", st.Commits, got)
	}
}
