package assign

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/rtree"
	"fairassign/internal/skyline"
)

func viewTestWorkspace(t *testing.T, n, nf, dims int, seed int64) *Workspace {
	t.Helper()
	ws, err := NewWorkspace(randProblem(rand.New(rand.NewSource(seed)), nf, n, dims), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

// randPoint / randWeights draw fresh entities for mutation batches.
func randPoint(rng *rand.Rand, dims int) geom.Point {
	pt := make(geom.Point, dims)
	for d := range pt {
		pt[d] = rng.Float64()
	}
	return pt
}

func randWeights(rng *rand.Rand, dims int) []float64 {
	w := make([]float64, dims)
	sum := 0.0
	for d := range w {
		w[d] = 0.05 + rng.Float64()
		sum += w[d]
	}
	for d := range w {
		w[d] /= sum
	}
	return w
}

func clonePairs(ps []Pair) []Pair { return append([]Pair(nil), ps...) }

func identicalPairs(t *testing.T, label string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.FuncID != w.FuncID || g.ObjectID != w.ObjectID ||
			math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, g, w)
		}
	}
}

// mutateBatch applies a deterministic batch of all four mutation kinds.
func mutateBatch(t *testing.T, ws *Workspace, seed int64) {
	t.Helper()
	snap := ws.ProblemSnapshot()
	if err := ws.RemoveObject(snap.Objects[len(snap.Objects)/2].ID); err != nil {
		t.Fatal(err)
	}
	if err := ws.RemoveFunction(snap.Functions[0].ID); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	if err := ws.AddObject(Object{ID: 900_000 + uint64(seed), Point: randPoint(rng, snap.Dims)}); err != nil {
		t.Fatal(err)
	}
	if err := ws.AddFunction(Function{ID: 910_000 + uint64(seed), Weights: randWeights(rng, snap.Dims)}); err != nil {
		t.Fatal(err)
	}
}

// The acceptance-criterion test: a view taken before a mutation batch
// returns byte-identical Assignment/Stats/TopK/frontier output after
// the batch lands, while a fresh view reflects the batch.
func TestViewSnapshotIsolation(t *testing.T) {
	ws := viewTestWorkspace(t, 150, 14, 3, 20090824)
	defer ws.Close()

	v1, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()

	weights := []float64{0.5, 0.3, 0.2}
	beforePairs := clonePairs(v1.Pairs())
	beforeStats := v1.Stats()
	beforeItems, beforeScores, err := v1.TopK(weights, 12)
	if err != nil {
		t.Fatal(err)
	}
	beforeFrontier := len(v1.AvailableFrontier())
	beforeSky, err := v1.Skyline()
	if err != nil {
		t.Fatal(err)
	}

	for i := int64(0); i < 3; i++ {
		mutateBatch(t, ws, 100+i)
	}

	// The pinned view is bit-stable across the batch.
	identicalPairs(t, "view pairs after batch", v1.Pairs(), beforePairs)
	if v1.Stats() != beforeStats {
		t.Fatalf("view stats drifted: %+v vs %+v", v1.Stats(), beforeStats)
	}
	afterItems, afterScores, err := v1.TopK(weights, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(afterItems) != len(beforeItems) {
		t.Fatalf("view TopK drifted: %d vs %d results", len(afterItems), len(beforeItems))
	}
	for i := range afterItems {
		if afterItems[i].ID != beforeItems[i].ID ||
			math.Float64bits(afterScores[i]) != math.Float64bits(beforeScores[i]) {
			t.Fatalf("view TopK[%d] drifted: (%d,%v) vs (%d,%v)",
				i, afterItems[i].ID, afterScores[i], beforeItems[i].ID, beforeScores[i])
		}
	}
	if len(v1.AvailableFrontier()) != beforeFrontier {
		t.Fatalf("view frontier drifted")
	}
	afterSky, err := v1.Skyline()
	if err != nil {
		t.Fatal(err)
	}
	if len(afterSky) != len(beforeSky) {
		t.Fatalf("view skyline drifted: %d vs %d", len(afterSky), len(beforeSky))
	}
	if err := v1.VerifyStable(); err != nil {
		t.Fatalf("frozen matching not stable for frozen population: %v", err)
	}

	// A fresh view reflects the batch and agrees with the live accessors.
	v2, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	identicalPairs(t, "fresh view vs live", v2.Pairs(), ws.Pairs())
	if v2.Epoch() <= v1.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", v1.Epoch(), v2.Epoch())
	}
	if v2.Stats().Mutations != beforeStats.Mutations+12 {
		t.Fatalf("fresh view mutations %d, want %d", v2.Stats().Mutations, beforeStats.Mutations+12)
	}
	if err := v2.VerifyStable(); err != nil {
		t.Fatal(err)
	}

	// The frozen view's skyline equals an in-memory skyline of its own
	// frozen population — the index epoch and the logical capture agree.
	frozen := v1.Problem()
	ref := skyline.SFS(problemItems(frozen))
	if len(ref) != len(beforeSky) {
		t.Fatalf("view skyline %d items, reference %d", len(beforeSky), len(ref))
	}
}

func problemItems(p *Problem) []rtree.Item {
	out := make([]rtree.Item, len(p.Objects))
	for i, o := range p.Objects {
		out[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	return out
}

// Snapshots taken between the same two mutations share one epoch state;
// a mutation starts a new one.
func TestViewSharedEpoch(t *testing.T) {
	ws := viewTestWorkspace(t, 60, 6, 2, 7)
	defer ws.Close()
	v1, _ := ws.Snapshot()
	v2, _ := ws.Snapshot()
	defer v1.Close()
	defer v2.Close()
	if v1.Epoch() != v2.Epoch() {
		t.Fatalf("same-interval views pin different epochs: %d vs %d", v1.Epoch(), v2.Epoch())
	}
	if &v1.Pairs()[0] != &v2.Pairs()[0] {
		t.Fatalf("same-epoch views do not share the captured state")
	}
	mutateBatch(t, ws, 5)
	v3, _ := ws.Snapshot()
	defer v3.Close()
	if v3.Epoch() == v1.Epoch() {
		t.Fatalf("mutation did not advance the view epoch")
	}
}

// Typed misuse errors: duplicates, unknown IDs, use after Close.
func TestWorkspaceTypedErrors(t *testing.T) {
	ws := viewTestWorkspace(t, 40, 5, 2, 11)
	snap := ws.ProblemSnapshot()

	if err := ws.AddObject(Object{ID: snap.Objects[0].ID, Point: geom.Point{0.5, 0.5}}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate AddObject: %v", err)
	}
	if err := ws.AddFunction(Function{ID: snap.Functions[0].ID, Weights: []float64{0.5, 0.5}}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate AddFunction: %v", err)
	}
	if err := ws.RemoveObject(424242); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown RemoveObject: %v", err)
	}
	if err := ws.RemoveFunction(424242); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown RemoveFunction: %v", err)
	}

	v, err := ws.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ws.Close()
	ws.Close() // idempotent

	if err := ws.AddObject(Object{ID: 1_000_000, Point: geom.Point{0.1, 0.2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddObject after Close: %v", err)
	}
	if err := ws.RemoveObject(snap.Objects[1].ID); !errors.Is(err, ErrClosed) {
		t.Fatalf("RemoveObject after Close: %v", err)
	}
	if err := ws.AddFunction(Function{ID: 1_000_001, Weights: []float64{0.5, 0.5}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddFunction after Close: %v", err)
	}
	if err := ws.RemoveFunction(snap.Functions[0].ID); !errors.Is(err, ErrClosed) {
		t.Fatalf("RemoveFunction after Close: %v", err)
	}
	if _, err := ws.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close: %v", err)
	}

	// A view taken before Close keeps answering: the page versions are
	// retained independently of the inner store.
	if len(v.Pairs()) == 0 {
		t.Fatal("pre-close view lost its pairs")
	}
	if _, _, err := v.TopK([]float64{0.6, 0.4}, 3); err != nil {
		t.Fatalf("pre-close view TopK after workspace Close: %v", err)
	}
	if err := v.VerifyStable(); err != nil {
		t.Fatal(err)
	}
	v.Close()
	v.Close() // idempotent
	if err := v.VerifyStable(); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("VerifyStable on closed view: %v", err)
	}
	if _, _, err := v.TopK([]float64{0.6, 0.4}, 3); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("TopK on closed view: %v", err)
	}
	if v.Pairs() != nil {
		t.Fatalf("Pairs on closed view should be nil")
	}
}

// The leak check of the CI satellite: after every view closes (and the
// workspace keeps churning), the version store returns to baseline —
// one retained version per live page, an empty reclamation queue, and
// buffer-pool frame counts within capacity. Catches epoch-reclamation
// leaks.
func TestSnapshotEpochReclamationBaseline(t *testing.T) {
	ws := viewTestWorkspace(t, 200, 12, 3, 99)
	defer ws.Close()
	pool := ws.st.pool
	poolCap := pool.Capacity()

	var views []*View
	for i := int64(0); i < 6; i++ {
		v, err := ws.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		// Touch the pinned index so decoded nodes are materialized on
		// the retained versions.
		if _, _, err := v.TopK([]float64{0.2, 0.3, 0.5}, 5); err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
		mutateBatch(t, ws, 300+i)
	}

	grown := ws.vstore.DebugStats()
	if grown.TotalVersions <= grown.LivePages {
		t.Fatalf("expected retained history while views are open: %+v", grown)
	}
	for _, v := range views {
		v.Close()
	}
	// One more mutation publishes past the last pinned epoch, after
	// which nothing may remain but the live pages.
	mutateBatch(t, ws, 400)
	st := ws.vstore.DebugStats()
	if st.LiveSnapshots != 0 || st.RetiredQueue != 0 || st.TotalVersions != st.LivePages {
		t.Fatalf("epoch reclamation leaked: %+v", st)
	}
	if pool.Len() > poolCap && poolCap > 0 {
		t.Fatalf("buffer pool frames above capacity: %d > %d", pool.Len(), poolCap)
	}
	if pool.Capacity() != poolCap {
		t.Fatalf("pool capacity drifted: %d -> %d", poolCap, pool.Capacity())
	}
}
