package assign

import (
	"errors"
	"slices"

	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
	"fairassign/internal/ta"
)

// This file implements the Section 7.6 storage setting: F is too large
// for memory and lives on disk, while O fits in memory (the object index
// is fully buffered). Each method pays I/O for its function-side
// accesses:
//
//   - SBDiskFuncs: plain SB whose per-object resumable TA searches read
//     the disk-resident coefficient lists page by page — the expensive
//     repeated scanning the paper predicts for SB in this setting;
//   - ChainDiskFuncs: Chain whose function R-tree is disk-resident (2 %
//     buffer), so every reverse top-1 probe costs page reads;
//   - BruteForceDiskFuncs: Brute Force whose per-function search state
//     (heap + weights) cannot stay in memory; every initialization or
//     resume of a function's top-1 search pages its state in and out
//     (one read + one write through a 2 % buffer). This state-paging
//     model is a documented substitution (see DESIGN.md) preserving the
//     paper's shape: Brute Force and Chain pay per-operation function
//     I/O, while SB-alt batches one list pass per loop;
//   - SBAlt (in sbalt.go) is the paper's proposed method for this
//     setting.

// SBDiskFuncs runs SB with the function coefficient lists materialized on
// the simulated disk and per-object resumable TA searches over them.
func SBDiskFuncs(p *Problem, cfg Config) (*Result, error) {
	st, err := newSolveState(p, cfg)
	if err != nil {
		return nil, err
	}
	defer st.release()
	fstore, fpool, err := cfg.newFuncStore()
	if err != nil {
		return nil, err
	}
	defer fstore.Close()
	dl, err := ta.BuildDiskLists(fpool, taFuncs(p.Functions), p.Dims)
	if err != nil {
		return nil, err
	}
	if err := fpool.Resize(pagestore.CapacityFromFraction(dl.NumPages(), cfg.funcBufferFrac())); err != nil {
		return nil, err
	}
	if err := fpool.Clear(); err != nil {
		return nil, err
	}
	fstore.IO().Reset()

	res := &Result{}
	var timer metrics.Timer
	timer.Start()

	maint, err := st.buildMaintainer()
	if err != nil {
		return nil, err
	}
	st.buildCaps()
	funcCaps, objCaps := st.funcCaps, st.objCaps
	omega := cfg.omegaFor(len(p.Functions))
	searches := make(map[uint64]*ta.Search)
	defer func() {
		for _, s := range searches {
			s.Release()
		}
	}()

	for funcCaps.units > 0 && objCaps.units > 0 && maint.Size() > 0 {
		res.Stats.Loops++
		sky := maint.Skyline()
		sortItemsByID(sky)

		type bestFunc struct {
			fid   uint64
			score float64
		}
		oBest := make(map[uint64]bestFunc, len(sky))
		noFuncs := false
		for _, o := range sky {
			s := searches[o.ID]
			if s == nil {
				s = ta.NewDiskSearch(dl, o.Point, omega)
				searches[o.ID] = s
			}
			fid, score, ok := s.Best()
			res.Stats.TopKRuns++
			if !ok {
				if err := s.Err(); err != nil {
					return nil, err
				}
				noFuncs = true
				break
			}
			oBest[o.ID] = bestFunc{fid: fid, score: score}
		}
		if noFuncs {
			break
		}

		type bestObj struct {
			oid   uint64
			score float64
		}
		fBest := make(map[uint64]bestObj)
		fids := make([]uint64, 0, len(oBest))
		for _, bf := range oBest {
			if _, seen := fBest[bf.fid]; !seen {
				fBest[bf.fid] = bestObj{}
				fids = append(fids, bf.fid)
			}
		}
		slices.Sort(fids)
		for _, fid := range fids {
			w, err := dl.WeightsOf(fid)
			if err != nil {
				return nil, err
			}
			sc := score.Scorer{Fam: dl.FamilyOf(fid), W: w}
			it, s, _ := skyline.BestUnder(sc, sky)
			fBest[fid] = bestObj{oid: it.ID, score: s}
		}

		var removedObjs []uint64
		emitted := 0
		for _, fid := range fids {
			bo := fBest[fid]
			if oBest[bo.oid].fid != fid {
				continue
			}
			res.Pairs = append(res.Pairs, Pair{FuncID: fid, ObjectID: bo.oid, Score: bo.score})
			emitted++
			if funcCaps.consume(fid) {
				if err := dl.Remove(fid); err != nil {
					return nil, err
				}
			}
			if objCaps.consume(bo.oid) {
				removedObjs = append(removedObjs, bo.oid)
				if s := searches[bo.oid]; s != nil {
					s.Release()
				}
				delete(searches, bo.oid)
			}
		}
		if emitted == 0 {
			return nil, errors.New("assign: internal error: no stable pair emitted in a loop")
		}
		if len(removedObjs) > 0 {
			if err := maint.Remove(removedObjs...); err != nil {
				return nil, err
			}
		}
		var searchBytes int64
		for _, s := range searches {
			searchBytes += s.Footprint()
		}
		if cur := st.mem.Current + searchBytes; cur > res.Stats.PeakMem {
			res.Stats.PeakMem = cur
		}
	}

	timer.Stop()
	res.Stats.CPUTime = timer.Total
	res.Stats.IO = *st.store.IO()
	res.Stats.IO.Add(*fstore.IO())
	res.Stats.Pairs = int64(len(res.Pairs))
	res.Stats.TASorted = dl.Counters.SortedAccesses
	res.Stats.TARandom = dl.Counters.RandomAccesses
	res.Stats.NodeReads = maint.NodeReads
	if st.mem.Peak > res.Stats.PeakMem {
		res.Stats.PeakMem = st.mem.Peak
	}
	return res, nil
}

// ChainDiskFuncs runs Chain with its function R-tree on the simulated
// disk (buffered at the configured fraction): each reverse top-1 probe
// against F now costs I/O, while the object tree is fully in memory.
func ChainDiskFuncs(p *Problem, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Object tree fully buffered: in-memory side.
	memCfg := cfg
	memCfg.BufferFrac = 1.0
	st, err := newSolveState(p, memCfg)
	if err != nil {
		return nil, err
	}
	defer st.release()
	// Warm the object pool so object-side probes cost nothing; function
	// side is the measured disk.
	if err := warmPool(st.tree); err != nil {
		return nil, err
	}
	st.store.IO().Reset()

	fstore, fpool, err := cfg.newFuncStore()
	if err != nil {
		return nil, err
	}
	defer fstore.Close()
	fx, err := buildFuncIndex(p, fpool, cfg)
	if err != nil {
		return nil, err
	}
	if err := fpool.Flush(); err != nil {
		return nil, err
	}
	if err := fpool.Resize(pagestore.CapacityFromFraction(fx.ftree.NumPages(), cfg.funcBufferFrac())); err != nil {
		return nil, err
	}
	if err := fpool.Clear(); err != nil {
		return nil, err
	}
	fstore.IO().Reset()

	// Function tree on disk: only its buffer frames are memory-resident.
	bufBytes := int64(fpool.Capacity()) * int64(fstore.PageSize())
	res, err := chainLoop(p, st, fx, bufBytes)
	if err != nil {
		return nil, err
	}
	res.Stats.IO = *st.store.IO()
	res.Stats.IO.Add(*fstore.IO())
	return res, nil
}

// BruteForceDiskFuncs runs Brute Force in the disk-resident-F setting:
// every per-function search operation pages that function's state through
// a small buffer (one state page per function).
func BruteForceDiskFuncs(p *Problem, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	memCfg := cfg
	memCfg.BufferFrac = 1.0
	st, err := newSolveState(p, memCfg)
	if err != nil {
		return nil, err
	}
	defer st.release()
	if err := warmPool(st.tree); err != nil {
		return nil, err
	}
	st.store.IO().Reset()

	// One state page per function, behind a small LRU buffer.
	fstore, err := cfg.newStore()
	if err != nil {
		return nil, err
	}
	defer fstore.Close()
	statePage := make(map[uint64]pagestore.PageID, len(p.Functions))
	for _, f := range p.Functions {
		id, err := fstore.Allocate()
		if err != nil {
			return nil, err
		}
		statePage[f.ID] = id
	}
	fpool := pagestore.NewBufferPool(fstore,
		pagestore.CapacityFromFraction(len(p.Functions), cfg.funcBufferFrac()))
	fstore.IO().Reset()
	touchState := func(fid uint64) error {
		pg := statePage[fid]
		if _, err := fpool.Get(pg); err != nil {
			return err
		}
		// The resumed heap state is written back after mutation.
		return fpool.Put(pg, []byte{1})
	}

	res, err := bruteForceLoop(p, st, touchState)
	if err != nil {
		return nil, err
	}
	res.Stats.IO = *st.store.IO()
	res.Stats.IO.Add(*fstore.IO())
	return res, nil
}

// warmPool touches every page of a tree so that subsequent traversal hits
// the buffer (models a memory-resident index).
func warmPool(t *rtree.Tree) error {
	if t.Len() == 0 {
		return nil
	}
	r, err := t.RootRect()
	if err != nil {
		return err
	}
	return t.Search(r, func(rtree.Item) bool { return true })
}
