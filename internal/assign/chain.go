package assign

import (
	"math"
	"sort"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/topk"
)

// Chain adapts the Chain spatial-assignment algorithm (Wong et al.,
// Section 2.1) to the preference-query setting, exactly as the paper's
// experiments configure it: the functions are indexed by their weight
// vectors in a main-memory R-tree, and the nearest-neighbor module is
// replaced by BRS top-1 search. Starting from an arbitrary function, the
// algorithm follows best-of-best links — f's best object o, o's best
// function f' — outputting (f, o) when the pair is mutual (Property 2)
// and otherwise enqueueing the witness and continuing. Every top-1 probe
// is a fresh search, which is why Chain issues even more searches than
// Brute Force (Figure 9).
func Chain(p *Problem, cfg Config) (*Result, error) {
	st, err := newSolveState(p, cfg)
	if err != nil {
		return nil, err
	}
	defer st.release()

	// Main-memory R-tree over function weight vectors. Its page accesses
	// are not charged to the I/O metric (it lives in RAM), but building
	// and probing it is part of the CPU cost, as in the paper.
	fstore, fpool, err := cfg.newFuncStore()
	if err != nil {
		return nil, err
	}
	defer fstore.Close()
	fx, err := buildFuncIndex(p, fpool, cfg)
	if err != nil {
		return nil, err
	}

	// The function R-tree is a main-memory structure: its size is part of
	// Chain's memory footprint (the paper's memory metric).
	ftreeBytes := int64(fx.ftree.NumPages()) * int64(fstore.PageSize())
	res, err := chainLoop(p, st, fx, ftreeBytes)
	if err != nil {
		return nil, err
	}
	res.Stats.IO = *st.store.IO()
	return res, nil
}

// funcIndex is the reverse-search structure over a function set: a
// weight-space R-tree holding the LINEAR functions — for which "best
// function for object o" is itself a BRS top-1 with o as the weight
// vector, by symmetry of the dot product — plus an exhaustively scanned
// side list of the non-linear functions, whose scores are not bilinear
// and so cannot ride the R-tree bound. Purely linear populations (the
// paper's setting) put everything in the tree and scan nothing.
type funcIndex struct {
	ftree   *rtree.Tree
	scorers map[uint64]score.Scorer // every function's effective scorer
	nonlin  *score.FuncBlocks       // non-linear functions, columnar per family
}

// buildFuncIndex bulk-loads the linear weight tree and collects the
// non-linear functions into per-family columnar blocks.
func buildFuncIndex(p *Problem, fpool *pagestore.BufferPool, cfg Config) (*funcIndex, error) {
	fx := &funcIndex{
		scorers: make(map[uint64]score.Scorer, len(p.Functions)),
		nonlin:  score.NewFuncBlocks(p.Dims),
	}
	var fitems []rtree.Item
	for _, f := range p.Functions {
		sc := f.Scorer()
		fx.scorers[f.ID] = sc
		if sc.IsLinear() {
			fitems = append(fitems, rtree.Item{ID: f.ID, Point: sc.W})
		} else {
			fx.nonlin.Add(f.ID, sc.Fam, sc.W)
		}
	}
	ftree, err := rtree.BulkLoadWorkers(fpool, p.Dims, fitems, cfg.treeFill(), cfg.buildWorkers())
	if err != nil {
		return nil, err
	}
	fx.ftree = ftree
	return fx, nil
}

// bestFunc answers the reverse top-1 — the non-skipped function
// maximizing f(o) — combining the linear tree search with the batched
// kernel scan over the non-linear blocks. Ties break to the lower
// function ID, matching the BRS enumeration order; FuncBlocks.Best
// follows the same (score, lowest-ID) total order with bit-identical
// scores, so the merged winner equals the former per-function loop.
func (fx *funcIndex) bestFunc(opoint geom.Point, skip func(uint64) bool) (fid uint64, s float64, ok bool, err error) {
	it, s, ok, err := topk.Top1(fx.ftree, opoint, skip)
	if err != nil {
		return 0, 0, false, err
	}
	fid = it.ID
	if !ok {
		s = math.Inf(-1)
	}
	if bid, bs, bok := fx.nonlin.Best(opoint, func(id uint64, _ float64) bool { return !skip(id) }); bok {
		if !ok || bs > s || (bs == s && bid < fid) {
			fid, s, ok = bid, bs, true
		}
	}
	return fid, s, ok, nil
}

// chainLoop is the Chain engine, shared by the in-memory (Chain) and
// disk-resident-F (ChainDiskFuncs) configurations; the callers decide
// which stores contribute to the reported I/O. memBase is charged as the
// resident size of the function index (zero when it lives on disk).
func chainLoop(p *Problem, st *solveState, fx *funcIndex, memBase int64) (*Result, error) {
	res := &Result{}
	var timer metrics.Timer
	timer.Start()

	opoints := make(map[uint64][]float64, len(p.Objects))
	for _, o := range p.Objects {
		opoints[o.ID] = o.Point
	}

	funcCaps := newFuncCaps(p.Functions)
	objCaps := newObjectCaps(p.Objects)
	deadFunc := make(map[uint64]bool)
	deadObj := make(map[uint64]bool)
	skipFunc := func(id uint64) bool { return deadFunc[id] }
	skipObj := func(id uint64) bool { return deadObj[id] }

	// Deterministic seed order: ascending function ID.
	seeds := make([]uint64, len(p.Functions))
	for i, f := range p.Functions {
		seeds[i] = f.ID
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	seedPos := 0

	type queued struct {
		isFunc bool
		id     uint64
	}
	var queue []queued
	trackPeak := func() {
		if cur := memBase + int64(len(queue))*16; cur > res.Stats.PeakMem {
			res.Stats.PeakMem = cur
		}
	}
	trackPeak()

	for funcCaps.units > 0 && objCaps.units > 0 {
		// Pick the next element to test: queue head, else a fresh seed.
		var x queued
		if len(queue) > 0 {
			x, queue = queue[0], queue[1:]
		} else {
			for seedPos < len(seeds) && deadFunc[seeds[seedPos]] {
				seedPos++
			}
			if seedPos >= len(seeds) {
				break
			}
			x = queued{isFunc: true, id: seeds[seedPos]}
		}
		if (x.isFunc && deadFunc[x.id]) || (!x.isFunc && deadObj[x.id]) {
			continue
		}
		res.Stats.Loops++

		if x.isFunc {
			f := x.id
			o, sc, ok, err := topk.Top1Scorer(st.tree, fx.scorers[f], skipObj)
			res.Stats.TopKRuns++
			if err != nil {
				return nil, err
			}
			if !ok {
				break // no objects left at all
			}
			f2, _, ok, err := fx.bestFunc(o.Point, skipFunc)
			res.Stats.TopKRuns++
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if f2 == f {
				emitChainPair(res, funcCaps, objCaps, deadFunc, deadObj, f, o.ID, sc)
			} else {
				queue = append(queue, queued{isFunc: false, id: o.ID})
			}
		} else {
			oid := x.id
			opoint := opoints[oid]
			f, _, ok, err := fx.bestFunc(opoint, skipFunc)
			res.Stats.TopKRuns++
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			o2, sc, ok, err := topk.Top1Scorer(st.tree, fx.scorers[f], skipObj)
			res.Stats.TopKRuns++
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if o2.ID == oid {
				emitChainPair(res, funcCaps, objCaps, deadFunc, deadObj, f, oid, sc)
			} else {
				queue = append(queue, queued{isFunc: true, id: f})
			}
		}
		trackPeak()
	}

	timer.Stop()
	res.Stats.CPUTime = timer.Total
	res.Stats.Pairs = int64(len(res.Pairs))
	return res, nil
}

func emitChainPair(res *Result, funcCaps, objCaps *capTable, deadFunc, deadObj map[uint64]bool, fid, oid uint64, score float64) {
	res.Pairs = append(res.Pairs, Pair{FuncID: fid, ObjectID: oid, Score: score})
	if funcCaps.consume(fid) {
		deadFunc[fid] = true
	}
	if objCaps.consume(oid) {
		deadObj[oid] = true
	}
}
