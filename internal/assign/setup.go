package assign

import (
	"slices"

	"fairassign/internal/rtree"
	"fairassign/internal/ta"
)

// sortItemsByID orders items by ascending ID. IDs are unique per side,
// so the result is a total order; the generic sort avoids the reflection
// swapper sort.Slice allocates on every call of the per-loop hot path.
func sortItemsByID(items []rtree.Item) {
	slices.SortFunc(items, func(a, b rtree.Item) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// taFuncs converts functions to their TA representation (effective
// weights plus scoring family). All weight vectors share one contiguous
// backing array — one allocation instead of one per function.
func taFuncs(funcs []Function) []ta.Func {
	out := make([]ta.Func, len(funcs))
	if len(funcs) == 0 {
		return out
	}
	dims := len(funcs[0].Weights)
	backing := make([]float64, len(funcs)*dims)
	for i, f := range funcs {
		w := backing[i*dims : (i+1)*dims : (i+1)*dims]
		g := f.Fam.GammaScale(f.gamma())
		for d, a := range f.Weights {
			w[d] = a * g
		}
		out[i] = ta.Func{ID: f.ID, Weights: w, Fam: f.Fam}
	}
	return out
}

// capTable tracks remaining capacities and liveness for one side of the
// problem.
type capTable struct {
	remaining map[uint64]int
	live      int // entities with remaining capacity > 0
	units     int // total remaining units
}

func newFuncCaps(funcs []Function) *capTable {
	t := &capTable{remaining: make(map[uint64]int, len(funcs))}
	for _, f := range funcs {
		t.remaining[f.ID] = f.capacity()
		t.units += f.capacity()
	}
	t.live = len(funcs)
	return t
}

func newObjectCaps(objs []Object) *capTable {
	t := &capTable{remaining: make(map[uint64]int, len(objs))}
	for _, o := range objs {
		t.remaining[o.ID] = o.capacity()
		t.units += o.capacity()
	}
	t.live = len(objs)
	return t
}

// consume decrements one unit; it reports whether the entity is now
// exhausted (capacity reached zero).
func (t *capTable) consume(id uint64) bool {
	t.remaining[id]--
	t.units--
	if t.remaining[id] == 0 {
		t.live--
		return true
	}
	return false
}

func (t *capTable) exhausted(id uint64) bool { return t.remaining[id] <= 0 }

// add registers a newly arrived entity with the given capacity.
func (t *capTable) add(id uint64, capacity int) {
	t.remaining[id] = capacity
	t.units += capacity
	if capacity > 0 {
		t.live++
	}
}

// restore gives one unit back (a partner departed); it reports whether
// the entity went from exhausted to live again.
func (t *capTable) restore(id uint64) bool {
	t.remaining[id]++
	t.units++
	if t.remaining[id] == 1 {
		t.live++
		return true
	}
	return false
}

// drop forgets a departing entity, discarding its remaining units.
func (t *capTable) drop(id uint64) {
	if r := t.remaining[id]; r > 0 {
		t.units -= r
		t.live--
	}
	delete(t.remaining, id)
}
