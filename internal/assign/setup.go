package assign

import (
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/ta"
)

// objectIndex is the disk-resident R-tree over O shared by all
// algorithms. The index is bulk-loaded, then the buffer is cleared and
// the I/O counters reset so that runs start cold and index construction
// is not charged to the algorithm — matching the paper's setup where O is
// a persistent indexed dataset.
type objectIndex struct {
	store *pagestore.MemStore
	pool  *pagestore.BufferPool
	tree  *rtree.Tree
}

func buildObjectIndex(p *Problem, cfg Config) (*objectIndex, error) {
	store := pagestore.NewMemStore(cfg.pageSize())
	// Load with a generous temporary buffer, then shrink to the
	// experiment's fraction.
	pool := pagestore.NewBufferPool(store, 1<<20)
	items := make([]rtree.Item, len(p.Objects))
	for i, o := range p.Objects {
		items[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	tree, err := rtree.BulkLoad(pool, p.Dims, items, cfg.treeFill())
	if err != nil {
		return nil, err
	}
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	if err := pool.Resize(pagestore.CapacityFromFraction(tree.NumPages(), cfg.bufferFrac())); err != nil {
		return nil, err
	}
	if err := pool.Clear(); err != nil {
		return nil, err
	}
	store.IO().Reset()
	return &objectIndex{store: store, pool: pool, tree: tree}, nil
}

// taFuncs converts functions to their TA representation (effective
// weights).
func taFuncs(funcs []Function) []ta.Func {
	out := make([]ta.Func, len(funcs))
	for i, f := range funcs {
		out[i] = ta.Func{ID: f.ID, Weights: f.Effective()}
	}
	return out
}

// capTable tracks remaining capacities and liveness for one side of the
// problem.
type capTable struct {
	remaining map[uint64]int
	live      int // entities with remaining capacity > 0
	units     int // total remaining units
}

func newFuncCaps(funcs []Function) *capTable {
	t := &capTable{remaining: make(map[uint64]int, len(funcs))}
	for _, f := range funcs {
		t.remaining[f.ID] = f.capacity()
		t.units += f.capacity()
	}
	t.live = len(funcs)
	return t
}

func newObjectCaps(objs []Object) *capTable {
	t := &capTable{remaining: make(map[uint64]int, len(objs))}
	for _, o := range objs {
		t.remaining[o.ID] = o.capacity()
		t.units += o.capacity()
	}
	t.live = len(objs)
	return t
}

// consume decrements one unit; it reports whether the entity is now
// exhausted (capacity reached zero).
func (t *capTable) consume(id uint64) bool {
	t.remaining[id]--
	t.units--
	if t.remaining[id] == 0 {
		t.live--
		return true
	}
	return false
}

func (t *capTable) exhausted(id uint64) bool { return t.remaining[id] <= 0 }
