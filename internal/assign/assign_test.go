package assign

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
)

// randProblem builds a random assignment instance with continuous
// coordinates (ties have measure zero), so the stable matching is unique
// and every algorithm must produce the identical pair multiset.
func randProblem(rng *rand.Rand, nf, no, dims int) *Problem {
	p := &Problem{Dims: dims}
	for i := 0; i < no; i++ {
		pt := make(geom.Point, dims)
		for d := range pt {
			pt[d] = rng.Float64()
		}
		p.Objects = append(p.Objects, Object{ID: uint64(i + 1), Point: pt})
	}
	for i := 0; i < nf; i++ {
		w := make([]float64, dims)
		sum := 0.0
		for d := range w {
			w[d] = rng.Float64()
			sum += w[d]
		}
		for d := range w {
			w[d] /= sum
		}
		p.Functions = append(p.Functions, Function{ID: uint64(i + 1), Weights: w})
	}
	return p
}

// canonical sorts pairs for comparison.
func canonical(pairs []Pair) []Pair {
	out := make([]Pair, len(pairs))
	copy(out, pairs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].FuncID != out[j].FuncID {
			return out[i].FuncID < out[j].FuncID
		}
		if out[i].ObjectID != out[j].ObjectID {
			return out[i].ObjectID < out[j].ObjectID
		}
		return out[i].Score < out[j].Score
	})
	return out
}

func samePairs(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	g, w := canonical(got), canonical(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d pairs, want %d", name, len(g), len(w))
	}
	for i := range g {
		if g[i].FuncID != w[i].FuncID || g[i].ObjectID != w[i].ObjectID {
			t.Fatalf("%s: pair %d = (f%d,o%d), want (f%d,o%d)",
				name, i, g[i].FuncID, g[i].ObjectID, w[i].FuncID, w[i].ObjectID)
		}
		if math.Abs(g[i].Score-w[i].Score) > 1e-9 {
			t.Fatalf("%s: pair %d score %v, want %v", name, i, g[i].Score, w[i].Score)
		}
	}
}

// algorithms under test, all expected to produce the oracle matching.
var allAlgorithms = []struct {
	name string
	run  func(*Problem, Config) (*Result, error)
}{
	{"SB", SB},
	{"SBBasic", SBBasic},
	{"SBDeltaSky", SBDeltaSky},
	{"BruteForce", BruteForce},
	{"Chain", Chain},
	{"SBAlt", SBAlt},
	{"SBTwoSkylines", SBTwoSkylines},
}

func testCfg() Config {
	return Config{PageSize: 512, BufferFrac: 0.1, OmegaFrac: 0.05}
}

func TestAllAlgorithmsMatchOracleSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randProblem(rng, 40, 40, 3)
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) != 40 {
		t.Fatalf("oracle produced %d pairs, want 40", len(want.Pairs))
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, alg.name, got.Pairs, want.Pairs)
			if err := IsStable(p, got.Pairs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllAlgorithmsMoreObjectsThanFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randProblem(rng, 15, 120, 2)
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) != 15 {
		t.Fatalf("oracle pairs = %d, want 15", len(want.Pairs))
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, alg.name, got.Pairs, want.Pairs)
		})
	}
}

func TestAllAlgorithmsMoreFunctionsThanObjects(t *testing.T) {
	// Section 1: "the case where F is larger than O" — only |O| pairs
	// can be formed.
	rng := rand.New(rand.NewSource(3))
	p := randProblem(rng, 80, 12, 3)
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) != 12 {
		t.Fatalf("oracle pairs = %d, want 12", len(want.Pairs))
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, alg.name, got.Pairs, want.Pairs)
		})
	}
}

func TestGaleShapleyAgreesWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		nf, no := 1+rng.Intn(40), 1+rng.Intn(40)
		p := randProblem(rng, nf, no, 2+rng.Intn(3))
		want, err := Oracle(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GaleShapley(p)
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, fmt.Sprintf("GS trial %d (|F|=%d,|O|=%d)", trial, nf, no), got.Pairs, want.Pairs)
	}
}

func TestRandomizedAlgorithmEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized sweep")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		dims := 2 + rng.Intn(3)
		nf, no := 1+rng.Intn(50), 1+rng.Intn(50)
		p := randProblem(rng, nf, no, dims)
		want, err := Oracle(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range allAlgorithms {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.name, err)
			}
			samePairs(t, fmt.Sprintf("trial %d %s (|F|=%d,|O|=%d,D=%d)", trial, alg.name, nf, no, dims),
				got.Pairs, want.Pairs)
		}
	}
}

func TestFunctionCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randProblem(rng, 10, 80, 3)
	for i := range p.Functions {
		p.Functions[i].Capacity = 1 + rng.Intn(4)
	}
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	if int(want.Stats.Pairs) != p.TotalFunctionCapacity() {
		t.Fatalf("oracle pairs = %d, want total func capacity %d", want.Stats.Pairs, p.TotalFunctionCapacity())
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, alg.name, got.Pairs, want.Pairs)
			if err := IsStable(p, got.Pairs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestObjectCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randProblem(rng, 60, 12, 3)
	for i := range p.Objects {
		p.Objects[i].Capacity = 1 + rng.Intn(5)
	}
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, alg.name, got.Pairs, want.Pairs)
		})
	}
}

func TestBothSidesCapacitated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randProblem(rng, 25, 25, 2)
	for i := range p.Functions {
		p.Functions[i].Capacity = 1 + rng.Intn(3)
	}
	for i := range p.Objects {
		p.Objects[i].Capacity = 1 + rng.Intn(3)
	}
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, alg.name, got.Pairs, want.Pairs)
		})
	}
}

func TestPriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randProblem(rng, 30, 60, 3)
	gammas := []float64{1, 2, 4, 8}
	for i := range p.Functions {
		p.Functions[i].Gamma = gammas[rng.Intn(len(gammas))]
	}
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, alg.name, got.Pairs, want.Pairs)
		})
	}
}

func TestPrioritiesGiveHighGammaFirstPick(t *testing.T) {
	// Two identical-weight users competing for one great object: the
	// higher-priority user must win it.
	p := &Problem{
		Dims: 2,
		Objects: []Object{
			{ID: 1, Point: geom.Point{0.9, 0.9}},
			{ID: 2, Point: geom.Point{0.3, 0.3}},
		},
		Functions: []Function{
			{ID: 1, Weights: []float64{0.5, 0.5}, Gamma: 1},
			{ID: 2, Weights: []float64{0.5, 0.5}, Gamma: 4},
		},
	}
	res, err := SB(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	byFunc := map[uint64]uint64{}
	for _, pr := range res.Pairs {
		byFunc[pr.FuncID] = pr.ObjectID
	}
	if byFunc[2] != 1 || byFunc[1] != 2 {
		t.Fatalf("priority user should win the good object: %v", res.Pairs)
	}
}

func TestPaperFigure1Assignment(t *testing.T) {
	// Figure 1: (f1,c), then (f2,b), then (f3,a).
	p := &Problem{
		Dims: 2,
		Objects: []Object{
			{ID: 1, Point: geom.Point{0.5, 0.6}}, // a
			{ID: 2, Point: geom.Point{0.2, 0.7}}, // b
			{ID: 3, Point: geom.Point{0.8, 0.2}}, // c
			{ID: 4, Point: geom.Point{0.4, 0.4}}, // d
		},
		Functions: []Function{
			{ID: 1, Weights: []float64{0.8, 0.2}}, // f1
			{ID: 2, Weights: []float64{0.2, 0.8}}, // f2
			{ID: 3, Weights: []float64{0.5, 0.5}}, // f3
		},
	}
	want := map[uint64]uint64{1: 3, 2: 2, 3: 1} // f1→c, f2→b, f3→a
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Pairs) != 3 {
				t.Fatalf("pairs = %d, want 3", len(got.Pairs))
			}
			for _, pr := range got.Pairs {
				if want[pr.FuncID] != pr.ObjectID {
					t.Errorf("f%d assigned o%d, want o%d", pr.FuncID, pr.ObjectID, want[pr.FuncID])
				}
			}
			// The first stable pair has the highest score: f1(c) = 0.68.
			if math.Abs(got.Pairs[0].Score-0.68) > 1e-12 || got.Pairs[0].FuncID != 1 {
				t.Errorf("first pair = %+v, want (f1,c,0.68)", got.Pairs[0])
			}
		})
	}
}

func TestIdenticalFunctionsAndObjects(t *testing.T) {
	// Duplicates must not break anything (Section 6.1 notes algorithms
	// make no distinctiveness assumptions).
	p := &Problem{Dims: 2}
	for i := 0; i < 6; i++ {
		p.Objects = append(p.Objects, Object{ID: uint64(i + 1), Point: geom.Point{0.5, 0.5}})
		p.Functions = append(p.Functions, Function{ID: uint64(i + 1), Weights: []float64{0.5, 0.5}})
	}
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Pairs) != len(want.Pairs) {
				t.Fatalf("pairs = %d, want %d", len(got.Pairs), len(want.Pairs))
			}
			if err := IsStable(p, got.Pairs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSingletonProblem(t *testing.T) {
	p := &Problem{
		Dims:      2,
		Objects:   []Object{{ID: 7, Point: geom.Point{0.3, 0.9}}},
		Functions: []Function{{ID: 9, Weights: []float64{0.6, 0.4}}},
	}
	for _, alg := range allAlgorithms {
		got, err := alg.run(p, testCfg())
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if len(got.Pairs) != 1 || got.Pairs[0].FuncID != 9 || got.Pairs[0].ObjectID != 7 {
			t.Fatalf("%s: pairs = %v", alg.name, got.Pairs)
		}
	}
}

func TestEmptySides(t *testing.T) {
	noFuncs := &Problem{Dims: 2, Objects: []Object{{ID: 1, Point: geom.Point{0.1, 0.2}}}}
	noObjs := &Problem{Dims: 2, Functions: []Function{{ID: 1, Weights: []float64{0.5, 0.5}}}}
	for _, alg := range allAlgorithms {
		for _, p := range []*Problem{noFuncs, noObjs} {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatalf("%s: %v", alg.name, err)
			}
			if len(got.Pairs) != 0 {
				t.Fatalf("%s: expected no pairs, got %v", alg.name, got.Pairs)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{Dims: 0},
		{Dims: 2, Objects: []Object{{ID: 1, Point: geom.Point{0.5}}}},
		{Dims: 2, Functions: []Function{{ID: 1, Weights: []float64{0.5}}}},
		{Dims: 2, Functions: []Function{{ID: 1, Weights: []float64{-0.1, 1.1}}}},
		{Dims: 1, Objects: []Object{{ID: 1, Point: geom.Point{0.5}}, {ID: 1, Point: geom.Point{0.6}}}},
		{Dims: 1, Functions: []Function{{ID: 2, Weights: []float64{1}}, {ID: 2, Weights: []float64{1}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestIsStableDetectsBlockingPair(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := randProblem(rng, 10, 10, 2)
	res, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsStable(p, res.Pairs); err != nil {
		t.Fatalf("oracle output should be stable: %v", err)
	}
	// Swap two partners: almost surely creates a blocking pair.
	broken := canonical(res.Pairs)
	broken[0].ObjectID, broken[1].ObjectID = broken[1].ObjectID, broken[0].ObjectID
	// Recompute scores for honesty.
	find := func(fid uint64) Function {
		for _, f := range p.Functions {
			if f.ID == fid {
				return f
			}
		}
		t.Fatal("missing function")
		return Function{}
	}
	findO := func(oid uint64) Object {
		for _, o := range p.Objects {
			if o.ID == oid {
				return o
			}
		}
		t.Fatal("missing object")
		return Object{}
	}
	for i := range broken[:2] {
		broken[i].Score = find(broken[i].FuncID).Score(findO(broken[i].ObjectID).Point)
	}
	if err := IsStable(p, broken); err == nil {
		t.Fatal("IsStable should detect the swap")
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randProblem(rng, 30, 200, 3)
	res, err := SB(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pairs != 30 {
		t.Errorf("Pairs = %d, want 30", res.Stats.Pairs)
	}
	if res.Stats.Loops == 0 {
		t.Error("Loops not counted")
	}
	if res.Stats.IO.Accesses() == 0 {
		t.Error("I/O not counted")
	}
	if res.Stats.PeakMem == 0 {
		t.Error("PeakMem not tracked")
	}
	if res.Stats.TASorted == 0 || res.Stats.TARandom == 0 {
		t.Error("TA counters not tracked")
	}
	if res.Stats.CPUTime <= 0 {
		t.Error("CPU time not measured")
	}
}

func TestSBMultiPairEmitsFasterThanBasic(t *testing.T) {
	// Section 5.3: multi-pair emission must need far fewer loops than the
	// single-pair Algorithm 1.
	rng := rand.New(rand.NewSource(12))
	p := randProblem(rng, 60, 300, 3)
	opt, err := SB(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	basic, err := SBBasic(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if basic.Stats.Loops != 60 {
		t.Errorf("single-pair SB should loop once per pair: %d loops", basic.Stats.Loops)
	}
	if opt.Stats.Loops >= basic.Stats.Loops {
		t.Errorf("multi-pair SB used %d loops, basic used %d", opt.Stats.Loops, basic.Stats.Loops)
	}
}

func TestSBIOFarBelowBruteForce(t *testing.T) {
	// The headline result (Fig. 9): SB incurs orders of magnitude less
	// I/O. At test scale we just require a decisive gap.
	rng := rand.New(rand.NewSource(13))
	p := randProblem(rng, 100, 2000, 3)
	cfg := Config{PageSize: 512, BufferFrac: 0.02, OmegaFrac: 0.025}
	sb, err := SB(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BruteForce(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "SBvsBF", sb.Pairs, bf.Pairs)
	if sb.Stats.IO.Accesses()*2 > bf.Stats.IO.Accesses() {
		t.Errorf("SB I/O = %d should be well below Brute Force I/O = %d",
			sb.Stats.IO.Accesses(), bf.Stats.IO.Accesses())
	}
}
