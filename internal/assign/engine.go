package assign

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
	"fairassign/internal/ta"
)

// bestFunc is the outcome of one per-object reverse top-1 search
// (Lines 9–11 of Algorithms 1/3): the best live preference function for a
// skyline object. ok is false when no live function remains.
type bestFunc struct {
	fid   uint64
	score float64
	ok    bool
}

// bestObj is the outcome of one per-function best-object scan
// (Lines 12–13): the skyline object maximizing the function's score.
type bestObj struct {
	oid   uint64
	score float64
}

// searchEngine abstracts how the two search phases inside each SB loop
// execute. Both phases are embarrassingly parallel — every slot of the
// output slice depends only on its own input and on list/skyline state
// that is frozen for the duration of the phase (tombstoning and skyline
// maintenance happen strictly between phases). Implementations therefore
// agree bit-for-bit on their outputs, and the emitted stable matching is
// identical whichever engine runs.
type searchEngine interface {
	// bestFunctions fills out[i] with the best live function for sky[i].
	bestFunctions(sky []rtree.Item, out []bestFunc)
	// bestObjects fills out[i] with the best skyline object for fids[i].
	bestObjects(fids []uint64, sky []rtree.Item, out []bestObj)
}

// engineCtx is the state shared by the engine implementations: the
// coefficient lists, the resumable per-object search states of the
// optimized mode, and the search knobs.
type engineCtx struct {
	lists    *ta.Lists
	searches map[uint64]*ta.Search
	omega    int
	numFuncs int
	resume   bool // optimized mode: persistent Ω-bounded searches
}

func newEngineCtx(lists *ta.Lists, mode sbMode, numFuncs, omega int) *engineCtx {
	return &engineCtx{
		lists:    lists,
		searches: make(map[uint64]*ta.Search),
		omega:    omega,
		numFuncs: numFuncs,
		resume:   mode == modeOptimized,
	}
}

// ensureSearch returns the resumable search for an object, creating it on
// first use. Only called from the coordinating goroutine (map writes are
// not concurrency-safe).
func (c *engineCtx) ensureSearch(o rtree.Item) *ta.Search {
	s := c.searches[o.ID]
	if s == nil {
		s = ta.NewSearch(c.lists, o.Point, c.omega)
		c.searches[o.ID] = s
	}
	return s
}

// bestFunctionOf runs one reverse top-1 search. In optimized mode the
// object's persistent search resumes; otherwise a fresh unbounded TA run
// is used (Algorithm 1 semantics).
func (c *engineCtx) bestFunctionOf(o rtree.Item) bestFunc {
	var s *ta.Search
	if c.resume {
		s = c.searches[o.ID]
	} else {
		// Fresh unbounded search per call (Algorithm 1 semantics); its
		// buffers go back to the pool immediately, so the per-loop cost
		// is near allocation-free.
		s = ta.NewSearch(c.lists, o.Point, c.numFuncs)
		defer s.Release()
	}
	fid, score, ok := s.Best()
	return bestFunc{fid: fid, score: score, ok: ok}
}

// bestObjectOf scans the skyline for the object maximizing fid's score
// (ties: lowest object ID). The scan evaluates the function's scoring
// family over its effective weights — geom.Dot in the paper's linear
// setting.
func (c *engineCtx) bestObjectOf(fid uint64, sky []rtree.Item) bestObj {
	sc := score.Scorer{Fam: c.lists.FamilyOf(fid), W: c.lists.Weights(fid)}
	it, s, _ := skyline.BestUnder(sc, sky)
	return bestObj{oid: it.ID, score: s}
}

// dropSearch discards the resumable state of an assigned object,
// recycling its buffers. Only called from the coordinating goroutine.
func (c *engineCtx) dropSearch(oid uint64) {
	if s := c.searches[oid]; s != nil {
		s.Release()
	}
	delete(c.searches, oid)
}

// releaseAll recycles every remaining search state at the end of a run.
func (c *engineCtx) releaseAll() {
	for oid, s := range c.searches {
		s.Release()
		delete(c.searches, oid)
	}
}

// searchFootprint sums the live resumable-search state for the memory
// metric.
func (c *engineCtx) searchFootprint() int64 {
	var n int64
	for _, s := range c.searches {
		n += s.Footprint()
	}
	return n
}

// seqEngine runs both phases on the calling goroutine, exactly as the
// pre-engine code did.
type seqEngine struct{ *engineCtx }

func (e seqEngine) bestFunctions(sky []rtree.Item, out []bestFunc) {
	for i, o := range sky {
		if e.resume {
			e.ensureSearch(o)
		}
		out[i] = e.bestFunctionOf(o)
	}
}

func (e seqEngine) bestObjects(fids []uint64, sky []rtree.Item, out []bestObj) {
	for i, fid := range fids {
		out[i] = e.bestObjectOf(fid, sky)
	}
}

// poolEngine fans each phase out over a fixed-size worker pool. Work is
// claimed by atomic index so the division of labor adapts to uneven
// search costs; results land in their input slot, which makes the merge
// deterministic regardless of completion order. Search states are created
// before fan-out (the map is not written concurrently), and each state is
// touched by exactly one worker per phase.
type poolEngine struct {
	*engineCtx
	workers int
}

func (e poolEngine) bestFunctions(sky []rtree.Item, out []bestFunc) {
	if e.resume {
		for _, o := range sky {
			e.ensureSearch(o)
		}
	}
	ParallelFor(len(sky), e.workers, func(i int) {
		out[i] = e.bestFunctionOf(sky[i])
	})
}

func (e poolEngine) bestObjects(fids []uint64, sky []rtree.Item, out []bestObj) {
	ParallelFor(len(fids), e.workers, func(i int) {
		out[i] = e.bestObjectOf(fids[i], sky)
	})
}

// engine picks the execution strategy for a run: the pool engine when
// the config asks for more than one worker, the sequential engine
// otherwise.
func (c *engineCtx) engine(cfg Config) searchEngine {
	if w := cfg.workerCount(); w > 1 {
		return poolEngine{engineCtx: c, workers: w}
	}
	return seqEngine{c}
}

// ParallelFor runs fn(0..n-1) over min(workers, n) goroutines. It returns
// once every index has been processed.
func ParallelFor(n, workers int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// workerCount resolves Config.Workers: 0 and 1 mean sequential, n > 1
// means n workers, negative means one worker per available CPU.
func (c Config) workerCount() int {
	if c.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Workers == 0 {
		return 1
	}
	return c.Workers
}
