package assign

import (
	"math/rand"
	"testing"

	"fairassign/internal/geom"
)

func newTestWorkspace(t *testing.T, p *Problem) *Workspace {
	t.Helper()
	w, err := NewWorkspace(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// checkAgainstResolve asserts the workspace matching equals a cold SB
// solve of the current snapshot and is stable for it.
func checkAgainstResolve(t *testing.T, w *Workspace, label string) {
	t.Helper()
	snap := w.ProblemSnapshot()
	cold, err := SB(snap, testCfg())
	if err != nil {
		t.Fatalf("%s: cold solve: %v", label, err)
	}
	samePairs(t, label, w.Pairs(), cold.Pairs)
	if err := IsStable(snap, w.Pairs()); err != nil {
		t.Fatalf("%s: workspace matching unstable: %v", label, err)
	}
}

func TestWorkspaceInitialMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := randProblem(rng, 12, 80, 3)
	w := newTestWorkspace(t, p)
	checkAgainstResolve(t, w, "initial")
	st := w.Stats()
	if st.Objects != 80 || st.Functions != 12 || st.AssignedUnits != 12 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Resolves != 1 {
		t.Fatalf("resolves = %d, want 1 (only the initial build)", st.Resolves)
	}
}

func TestWorkspaceAddFunctionChains(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := randProblem(rng, 10, 60, 2)
	w := newTestWorkspace(t, p)
	// Arrivals, one at a time, each validated against a cold solve.
	for i := 0; i < 8; i++ {
		weights := make([]float64, 2)
		sum := 0.0
		for d := range weights {
			weights[d] = rng.Float64()
			sum += weights[d]
		}
		for d := range weights {
			weights[d] /= sum
		}
		f := Function{ID: uint64(100 + i), Weights: weights}
		if err := w.AddFunction(f); err != nil {
			t.Fatal(err)
		}
		checkAgainstResolve(t, w, "after AddFunction")
	}
	if w.Stats().Resolves != 1 {
		t.Fatal("arrivals must repair, not re-solve")
	}
}

func TestWorkspaceRemoveObjectRechains(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := randProblem(rng, 15, 50, 3)
	w := newTestWorkspace(t, p)
	// Remove the objects that are actually assigned — each removal frees
	// a function that must re-chain.
	for i := 0; i < 10; i++ {
		pairs := w.Pairs()
		if len(pairs) == 0 {
			break
		}
		if err := w.RemoveObject(pairs[0].ObjectID); err != nil {
			t.Fatal(err)
		}
		checkAgainstResolve(t, w, "after RemoveObject")
	}
}

func TestWorkspaceAddObjectFillsVacancies(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	// More functions than objects: every arrival should be taken.
	p := randProblem(rng, 30, 20, 2)
	w := newTestWorkspace(t, p)
	for i := 0; i < 10; i++ {
		pt := geom.Point{rng.Float64(), rng.Float64()}
		if err := w.AddObject(Object{ID: uint64(1000 + i), Point: pt}); err != nil {
			t.Fatal(err)
		}
		checkAgainstResolve(t, w, "after AddObject")
	}
	if got := w.Stats().AssignedUnits; got != 30 {
		t.Fatalf("assigned units = %d, want 30 (functions all matched)", got)
	}
}

func TestWorkspaceRemoveFunctionVacancyChains(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p := randProblem(rng, 25, 20, 3) // oversubscribed: removals promote waiters
	w := newTestWorkspace(t, p)
	for i := 0; i < 12; i++ {
		pairs := w.Pairs()
		if len(pairs) == 0 {
			break
		}
		if err := w.RemoveFunction(pairs[len(pairs)/2].FuncID); err != nil {
			t.Fatal(err)
		}
		checkAgainstResolve(t, w, "after RemoveFunction")
	}
}

func TestWorkspaceRandomizedMixedMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	p := randProblem(rng, 10, 40, 3)
	// Random capacities and priorities to exercise the full variant space.
	for i := range p.Objects {
		p.Objects[i].Capacity = 1 + rng.Intn(3)
	}
	for i := range p.Functions {
		p.Functions[i].Capacity = 1 + rng.Intn(3)
		p.Functions[i].Gamma = float64(1 + rng.Intn(3))
	}
	w := newTestWorkspace(t, p)
	nextID := uint64(10_000)
	for step := 0; step < 60; step++ {
		switch rng.Intn(4) {
		case 0:
			pt := make(geom.Point, 3)
			for d := range pt {
				pt[d] = rng.Float64()
			}
			nextID++
			if err := w.AddObject(Object{ID: nextID, Point: pt, Capacity: 1 + rng.Intn(3)}); err != nil {
				t.Fatal(err)
			}
		case 1:
			weights := make([]float64, 3)
			sum := 0.0
			for d := range weights {
				weights[d] = rng.Float64()
				sum += weights[d]
			}
			for d := range weights {
				weights[d] /= sum
			}
			nextID++
			if err := w.AddFunction(Function{ID: nextID, Weights: weights, Capacity: 1 + rng.Intn(3), Gamma: float64(1 + rng.Intn(3))}); err != nil {
				t.Fatal(err)
			}
		case 2:
			snap := w.ProblemSnapshot()
			if len(snap.Objects) <= 2 {
				continue
			}
			if err := w.RemoveObject(snap.Objects[rng.Intn(len(snap.Objects))].ID); err != nil {
				t.Fatal(err)
			}
		default:
			snap := w.ProblemSnapshot()
			if len(snap.Functions) <= 1 {
				continue
			}
			if err := w.RemoveFunction(snap.Functions[rng.Intn(len(snap.Functions))].ID); err != nil {
				t.Fatal(err)
			}
		}
		checkAgainstResolve(t, w, "mixed mutation")
	}
	if w.Stats().Mutations == 0 {
		t.Fatal("mutations not counted")
	}
}

// TestWorkspaceObjectIDReuseNewPoint pins a review finding: removing
// an object and re-adding its ID at a different point must not let a
// stale parked skyline entry resurrect the OLD coordinates onto the
// availability frontier.
func TestWorkspaceObjectIDReuseNewPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	p := randProblem(rng, 6, 40, 2)
	w := newTestWorkspace(t, p)
	snap := w.ProblemSnapshot()
	for round := 0; round < 25; round++ {
		// Remove a random live object and re-add the SAME ID somewhere
		// else, repeatedly — stale parked entries for reused IDs pile up
		// and must never resurface with old coordinates.
		id := snap.Objects[rng.Intn(len(snap.Objects))].ID
		if _, ok := w.objs[id]; !ok {
			continue
		}
		if err := w.RemoveObject(id); err != nil {
			t.Fatal(err)
		}
		pt := geom.Point{rng.Float64(), rng.Float64()}
		if err := w.AddObject(Object{ID: id, Point: pt}); err != nil {
			t.Fatal(err)
		}
		// Churn a function too so dominator removals resurface parked
		// entries.
		pairs := w.Pairs()
		if len(pairs) > 0 {
			oid := pairs[rng.Intn(len(pairs))].ObjectID
			if _, ok := w.objs[oid]; ok {
				opt, _ := w.ObjectPoint(oid)
				keep := opt.Clone()
				if err := w.RemoveObject(oid); err != nil {
					t.Fatal(err)
				}
				if err := w.AddObject(Object{ID: oid, Point: keep}); err != nil {
					t.Fatal(err)
				}
			}
		}
		checkAgainstResolve(t, w, "after ID reuse")
		// The frontier must only report current coordinates.
		for _, it := range w.avail.Skyline() {
			cur, ok := w.ObjectPoint(it.ID)
			if !ok {
				t.Fatalf("frontier holds departed object %d", it.ID)
			}
			if !cur.Equal(it.Point) {
				t.Fatalf("frontier holds stale coordinates for %d: %v vs %v", it.ID, it.Point, cur)
			}
		}
	}
}

func TestWorkspaceMutationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := randProblem(rng, 4, 10, 2)
	w := newTestWorkspace(t, p)
	if err := w.AddObject(Object{ID: 1, Point: geom.Point{0.5, 0.5}}); err == nil {
		t.Fatal("duplicate object accepted")
	}
	if err := w.AddObject(Object{ID: 999, Point: geom.Point{0.5}}); err == nil {
		t.Fatal("wrong-dims object accepted")
	}
	if err := w.AddFunction(Function{ID: 1, Weights: []float64{0.5, 0.5}}); err == nil {
		t.Fatal("duplicate function accepted")
	}
	if err := w.AddFunction(Function{ID: 999, Weights: []float64{-0.5, 1.5}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := w.RemoveObject(424242); err == nil {
		t.Fatal("unknown object removal accepted")
	}
	if err := w.RemoveFunction(424242); err == nil {
		t.Fatal("unknown function removal accepted")
	}
	w.Close()
	if err := w.AddObject(Object{ID: 5000, Point: geom.Point{0.1, 0.1}}); err == nil {
		t.Fatal("mutation on closed workspace accepted")
	}
}
