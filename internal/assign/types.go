// Package assign implements the paper's core contribution: computing the
// stable 1-1 matching between a set of preference functions F and a set
// of multidimensional objects O (Sections 3–6).
//
// Algorithms provided:
//
//   - SB            — the fully optimized skyline-based algorithm
//     (Algorithm 3): I/O-optimal UpdateSkyline maintenance, resumable
//     Ω-bounded TA best-function search, multi-pair emission per loop;
//   - SBBasic       — Algorithm 1 with UpdateSkyline but fresh TA per
//     object and one pair per loop ("SB-UpdateSkyline" in Fig. 8);
//   - SBDeltaSky    — Algorithm 1 with DeltaSky skyline maintenance
//     ("SB-DeltaSky" in Fig. 8);
//   - BruteForce    — one resumable BRS top-1 searcher per function
//     (Section 4.1);
//   - Chain         — the adaptation of the spatial Chain algorithm with
//     a main-memory function R-tree (Sections 2.1, 7);
//   - SBAlt         — SB with disk-resident coefficient lists and batch
//     best-pair search (Section 7.6);
//   - SBTwoSkylines — the prioritized variant computing a skyline on both
//     sides (Section 6.2);
//   - Oracle        — the definitional greedy over all |F|·|O| scored
//     pairs, and GaleShapley — classic SMP; both used to verify
//     stability.
//
// Capacities (Section 6.1) and priorities γ (Section 6.2) are supported
// by every algorithm.
package assign

import (
	"fmt"
	"math"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/score"
	"fairassign/internal/vfs"
)

// Object is a database object: a D-dimensional feature vector with an
// optional capacity (number of identical instances, Section 6.1).
type Object struct {
	ID       uint64
	Point    geom.Point
	Capacity int // <= 0 means 1
}

func (o Object) capacity() int {
	if o.Capacity <= 0 {
		return 1
	}
	return o.Capacity
}

// Function is a user preference: normalized weights (Σα = 1), an optional
// priority γ (Section 6.2, 0 means 1), an optional capacity, and the
// scoring family the weights parameterize (zero value: the paper's
// linear model; see internal/score for OWA, Chebyshev, and Lp).
type Function struct {
	ID       uint64
	Weights  []float64
	Gamma    float64 // priority; <= 0 means 1
	Capacity int     // <= 0 means 1
	Fam      score.Family
}

func (f Function) gamma() float64 {
	if f.Gamma <= 0 {
		return 1
	}
	return f.Gamma
}

func (f Function) capacity() int {
	if f.Capacity <= 0 {
		return 1
	}
	return f.Capacity
}

// Effective returns the effective coefficients used throughout search:
// α'_i = α_i·γ for the degree-1 homogeneous families (Equation 2
// reduces to Equation 1 when γ = 1), and α_i·γᵖ for Lp, so that
// scoring the effective weights always equals γ·f(o).
func (f Function) Effective() []float64 {
	g := f.Fam.GammaScale(f.gamma())
	w := make([]float64, len(f.Weights))
	for i, a := range f.Weights {
		w[i] = a * g
	}
	return w
}

// Score returns f(o) including the priority factor.
func (f Function) Score(o geom.Point) float64 {
	return f.gamma() * score.Eval(f.Fam, f.Weights, o)
}

// Scorer returns the function's search-side scorer: its family over the
// effective (γ-folded) weights. Allocates; hot paths keep the effective
// weights in shared backing arrays instead.
func (f Function) Scorer() score.Scorer {
	return score.Scorer{Fam: f.Fam, W: f.Effective()}
}

// Pair is one unit of assignment: function FuncID gets one instance of
// object ObjectID at the given score.
type Pair struct {
	FuncID   uint64
	ObjectID uint64
	Score    float64
}

// Problem bundles one assignment instance.
type Problem struct {
	Dims      int
	Objects   []Object
	Functions []Function
}

// Validate checks structural consistency and input sanity: shared
// dimensionality, unique per-side IDs, finite attribute/weight/γ values
// (non-finite inputs would silently corrupt the R-tree MBRs and the TA
// bounds), and non-negative capacities — the same rules the CSV loaders
// enforce, typed with the ErrBad* sentinels from mutation.go.
func (p *Problem) Validate() error {
	if p.Dims < 1 {
		return fmt.Errorf("assign: dims must be >= 1, got %d", p.Dims)
	}
	seenO := make(map[uint64]bool, len(p.Objects))
	for _, o := range p.Objects {
		if len(o.Point) != p.Dims {
			return fmt.Errorf("assign: object %d has %d dims, want %d", o.ID, len(o.Point), p.Dims)
		}
		for _, v := range o.Point {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: object %d", ErrBadPoint, o.ID)
			}
		}
		if o.Capacity < 0 {
			return fmt.Errorf("%w: object %d has capacity %d", ErrBadCapacity, o.ID, o.Capacity)
		}
		if seenO[o.ID] {
			return fmt.Errorf("assign: duplicate object id %d", o.ID)
		}
		seenO[o.ID] = true
	}
	seenF := make(map[uint64]bool, len(p.Functions))
	for _, f := range p.Functions {
		if len(f.Weights) != p.Dims {
			return fmt.Errorf("assign: function %d has %d weights, want %d", f.ID, len(f.Weights), p.Dims)
		}
		if err := f.Fam.Validate(); err != nil {
			return fmt.Errorf("assign: function %d: %w", f.ID, err)
		}
		for _, w := range f.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("%w: function %d has non-finite weight", ErrBadWeight, f.ID)
			}
			if w < 0 {
				return fmt.Errorf("%w: function %d has negative weight", ErrBadWeight, f.ID)
			}
		}
		if math.IsNaN(f.Gamma) || math.IsInf(f.Gamma, 0) {
			return fmt.Errorf("%w: function %d", ErrBadGamma, f.ID)
		}
		if f.Capacity < 0 {
			return fmt.Errorf("%w: function %d has capacity %d", ErrBadCapacity, f.ID, f.Capacity)
		}
		if seenF[f.ID] {
			return fmt.Errorf("assign: duplicate function id %d", f.ID)
		}
		seenF[f.ID] = true
	}
	return nil
}

// TotalFunctionCapacity sums function capacities (the number of pairs
// demanded by F).
func (p *Problem) TotalFunctionCapacity() int {
	n := 0
	for _, f := range p.Functions {
		n += f.capacity()
	}
	return n
}

// TotalObjectCapacity sums object capacities (the supply in O).
func (p *Problem) TotalObjectCapacity() int {
	n := 0
	for _, o := range p.Objects {
		n += o.capacity()
	}
	return n
}

// Config tunes the execution environment of the disk-based algorithms.
type Config struct {
	// PageSize of the simulated disk (default 4096, the paper's setting).
	PageSize int
	// BufferFrac sizes the object-index LRU buffer as a fraction of the
	// index pages (default 0.02, the paper's 2 %). Negative means zero
	// buffering; zero means default.
	BufferFrac float64
	// OmegaFrac is ω: the TA candidate queue holds Ω = ω·|F| entries
	// (default 0.025, the paper's tuned 2.5 %).
	OmegaFrac float64
	// TreeFill is the STR bulk-load occupancy (default 0.9).
	TreeFill float64
	// FuncBufferFrac sizes the buffer over disk-resident function lists
	// for SBAlt (default = BufferFrac).
	FuncBufferFrac float64
	// Workers sets the number of goroutines the skyline-based algorithms
	// use for the per-object reverse top-1 searches and the per-function
	// best-object scans inside each loop. 0 and 1 run sequentially; n > 1
	// uses n workers; negative uses one worker per available CPU. The
	// emitted matching is identical for every setting — only wall-clock
	// changes.
	Workers int
	// BuildWorkers bounds the parallel STR bulk-load used when an index
	// (object R-tree or function weight tree) is built: <= 0 uses all
	// cores (GOMAXPROCS), 1 restores the fully sequential build, n > 1
	// uses n workers. The built tree — page allocation order, page
	// bytes, and physical I/O counters — is byte-identical at every
	// setting; only build wall-clock changes.
	BuildWorkers int
	// DisableNodeCache turns off the buffer pool's decoded-node tier on
	// every index store (object index and function-side structures),
	// forcing every node access to re-parse its page bytes. The matching
	// and all I/O counts are identical either way — only CPU time and
	// allocations change. Used by the benchmark pipeline to measure the
	// cache's effect.
	DisableNodeCache bool
	// Durable enables the workspace write-ahead log: every Apply batch
	// is encoded, checksummed, and fsynced into WALDir before its epoch
	// publishes, and an initial snapshot is written at construction so a
	// crash at any moment recovers through OpenWorkspace. Requires
	// WALDir.
	Durable bool
	// WALDir is the durability directory holding snapshot files and WAL
	// segments. With Durable unset, a workspace can still SaveSnapshot
	// warm-start images here (crash recovery then rewinds to the last
	// snapshot; mutations since are not logged).
	WALDir string
	// WALNoSync skips the per-commit fsync (the record is still written
	// and checksummed). A crash can then lose acknowledged batches —
	// recovery still lands on a consistent prefix. Benchmark/testing
	// knob for isolating the fsync cost.
	WALNoSync bool
	// FS overrides the filesystem the durability layer writes through;
	// nil means the real OS filesystem. The crash-injection harness
	// substitutes its fault-injecting in-memory implementation.
	FS vfs.FS
	// StoreFactory builds the physical page stores behind every index
	// the solvers create (the object R-tree plus any function-side
	// structure). Nil means in-memory simulated disks
	// (pagestore.NewMemStore); tests substitute temp-file-backed
	// FileStores to exercise the on-disk format end to end. The factory
	// is called once per store; implementations returning file-backed
	// stores must hand out distinct files per call.
	StoreFactory func(pageSize int) (pagestore.Store, error)
}

func (c Config) pageSize() int {
	if c.PageSize <= 0 {
		return 4096
	}
	return c.PageSize
}

func (c Config) bufferFrac() float64 {
	if c.BufferFrac == 0 {
		return 0.02
	}
	if c.BufferFrac < 0 {
		return 0
	}
	return c.BufferFrac
}

func (c Config) omegaFrac() float64 {
	if c.OmegaFrac <= 0 {
		return 0.025
	}
	return c.OmegaFrac
}

func (c Config) treeFill() float64 {
	if c.TreeFill <= 0 || c.TreeFill > 1 {
		return 0.9
	}
	return c.TreeFill
}

// buildWorkers is passed straight to rtree.BulkLoadWorkers, which maps
// <= 0 to all cores and 1 to the sequential build.
func (c Config) buildWorkers() int { return c.BuildWorkers }

func (c Config) funcBufferFrac() float64 {
	if c.FuncBufferFrac == 0 {
		return c.bufferFrac()
	}
	if c.FuncBufferFrac < 0 {
		return 0
	}
	return c.FuncBufferFrac
}

// Result is the output of one algorithm run.
type Result struct {
	Pairs []Pair
	Stats metrics.Stats
}

// omegaFor computes Ω for a function-set size.
func (c Config) omegaFor(numFuncs int) int {
	om := int(c.omegaFrac() * float64(numFuncs))
	if om < 1 {
		om = 1
	}
	return om
}
