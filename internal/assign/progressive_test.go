package assign

import (
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
)

func drain(t *testing.T, g *Progressive) []Pair {
	t.Helper()
	var out []Pair
	for {
		p, ok, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// greedyOrder sorts pairs the way the definitional greedy emits them:
// descending score, ties by ascending IDs.
func greedyOrder(pairs []Pair) []Pair {
	out := make([]Pair, len(pairs))
	copy(out, pairs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].FuncID != out[j].FuncID {
			return out[i].FuncID < out[j].FuncID
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	return out
}

func TestProgressiveMatchesSBWithoutArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := randProblem(rng, 40, 300, 3)
	want, err := SB(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewProgressive(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, g)
	// Same matching as batch SB, streamed in the definitional greedy
	// order: the progressive output must equal the greedy-sorted batch
	// result element for element.
	sorted := greedyOrder(want.Pairs)
	if len(got) != len(sorted) {
		t.Fatalf("progressive emitted %d pairs, SB %d", len(got), len(sorted))
	}
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("pair %d: progressive %+v, greedy-ordered SB %+v", i, got[i], sorted[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("score order violated at %d: %v after %v", i, got[i].Score, got[i-1].Score)
		}
	}
	if g.Stats().Pairs != int64(len(got)) {
		t.Error("stats.Pairs mismatch")
	}
}

func TestProgressiveArrivalIsMatchable(t *testing.T) {
	// One function, one poor object; a far better object arrives before
	// the matching is pulled — the function must get the new object.
	p := &Problem{
		Dims:      2,
		Objects:   []Object{{ID: 1, Point: geom.Point{0.1, 0.1}}},
		Functions: []Function{{ID: 1, Weights: []float64{0.5, 0.5}}},
	}
	g, err := NewProgressive(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddObject(Object{ID: 2, Point: geom.Point{0.9, 0.9}}); err != nil {
		t.Fatal(err)
	}
	pair, ok, err := g.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if pair.ObjectID != 2 {
		t.Fatalf("function should win the arrival: got o%d", pair.ObjectID)
	}
	if _, ok, _ := g.Next(); ok {
		t.Fatal("single function: matching should be complete")
	}
}

func TestProgressiveArrivalReopensMatching(t *testing.T) {
	// Two functions, one object: after draining, one function is left
	// unassigned. A new arrival lets Next produce another pair.
	p := &Problem{
		Dims:    2,
		Objects: []Object{{ID: 1, Point: geom.Point{0.6, 0.6}}},
		Functions: []Function{
			{ID: 1, Weights: []float64{0.9, 0.1}},
			{ID: 2, Weights: []float64{0.1, 0.9}},
		},
	}
	g, err := NewProgressive(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, g)
	if len(first) != 1 {
		t.Fatalf("expected 1 initial pair, got %d", len(first))
	}
	if err := g.AddObject(Object{ID: 7, Point: geom.Point{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	second := drain(t, g)
	if len(second) != 1 || second[0].ObjectID != 7 {
		t.Fatalf("arrival should produce one more pair for o7, got %v", second)
	}
	assignedFuncs := map[uint64]bool{first[0].FuncID: true, second[0].FuncID: true}
	if len(assignedFuncs) != 2 {
		t.Fatal("both functions should end up assigned")
	}
}

func TestProgressiveMidStreamArrivalAffectsLaterPairsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p := randProblem(rng, 30, 200, 3)
	g, err := NewProgressive(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var early []Pair
	for i := 0; i < 10; i++ {
		pr, ok, err := g.Next()
		if err != nil || !ok {
			t.Fatal(err)
		}
		early = append(early, pr)
	}
	// A dominating object arrives mid-stream.
	super := Object{ID: 9999, Point: geom.Point{0.99, 0.99, 0.99}}
	if err := g.AddObject(super); err != nil {
		t.Fatal(err)
	}
	rest := drain(t, g)
	all := append(early, rest...)
	if len(all) != 30 {
		t.Fatalf("total pairs %d, want 30", len(all))
	}
	// The super object must have been assigned to exactly one function,
	// and not to one already matched before its arrival.
	superCount := 0
	for _, pr := range early {
		if pr.ObjectID == super.ID {
			t.Fatal("arrival cannot appear in pairs emitted before it")
		}
	}
	for _, pr := range rest {
		if pr.ObjectID == super.ID {
			superCount++
		}
	}
	if superCount != 1 {
		t.Fatalf("super object assigned %d times, want 1", superCount)
	}
	// Online stability: no function assigned after the super object's
	// pair may form a blocking pair with it — i.e. prefer the super
	// object over its own match while the super object's winner scored
	// lower. (Pairs already discovered into the buffer before the arrival
	// are exempt by the documented commit-at-discovery semantics.)
	funcByID := map[uint64]Function{}
	for _, f := range p.Functions {
		funcByID[f.ID] = f
	}
	superIdx := -1
	var superScore float64
	for i, pr := range rest {
		if pr.ObjectID == super.ID {
			superIdx, superScore = i, pr.Score
			break
		}
	}
	for _, pr := range rest[superIdx+1:] {
		fs := funcByID[pr.FuncID].Score(super.Point)
		if fs > pr.Score+1e-9 && fs > superScore+1e-9 {
			t.Fatalf("blocking pair: f%d scores %v on the super object but got %v, super winner scored %v",
				pr.FuncID, fs, pr.Score, superScore)
		}
	}
}

func TestProgressiveValidation(t *testing.T) {
	p := &Problem{
		Dims:      2,
		Objects:   []Object{{ID: 1, Point: geom.Point{0.5, 0.5}}},
		Functions: []Function{{ID: 1, Weights: []float64{0.5, 0.5}}},
	}
	g, err := NewProgressive(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddObject(Object{ID: 1, Point: geom.Point{0.2, 0.2}}); err == nil {
		t.Error("duplicate object id should be rejected")
	}
	if err := g.AddObject(Object{ID: 2, Point: geom.Point{0.2}}); err == nil {
		t.Error("wrong dimensionality should be rejected")
	}
}

func TestProgressiveCapacitatedArrivals(t *testing.T) {
	p := &Problem{
		Dims: 2,
		Objects: []Object{
			{ID: 1, Point: geom.Point{0.4, 0.4}},
		},
		Functions: []Function{
			{ID: 1, Weights: []float64{0.5, 0.5}, Capacity: 3},
		},
	}
	g, err := NewProgressive(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddObject(Object{ID: 2, Point: geom.Point{0.7, 0.7}, Capacity: 2}); err != nil {
		t.Fatal(err)
	}
	pairs := drain(t, g)
	// Function has capacity 3; objects supply 1 + 2 units.
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(pairs))
	}
	// The better (new) object's two units go first.
	if pairs[0].ObjectID != 2 || pairs[1].ObjectID != 2 || pairs[2].ObjectID != 1 {
		t.Fatalf("capacity order wrong: %v", pairs)
	}
}
