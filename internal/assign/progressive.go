package assign

import (
	"errors"
	"fmt"
	"sort"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/rtree"
	"fairassign/internal/skyline"
	"fairassign/internal/ta"
)

// Progressive is the dynamic variant sketched as future work in
// Section 8: stable pairs are emitted on demand (the SB loop runs just
// far enough to produce the next one), and new objects may arrive
// between pulls — a marketplace where supply is released over time.
//
// Semantics: every emitted pair was stable with respect to the functions
// and objects present at the moment it was discovered; a later arrival
// affects only pairs not yet discovered. Arrivals are folded into the
// maintained skyline directly (Maintainer.Insert) without touching the
// R-tree, so they cost no I/O.
type Progressive struct {
	dims     int
	idx      *objectIndex
	maint    *skyline.Maintainer
	lists    *ta.Lists
	searches map[uint64]*ta.Search
	funcCaps *capTable
	objCaps  *capTable
	omega    int
	objSeen  map[uint64]bool
	buffer   []Pair
	done     bool
	stats    metrics.Stats
	mem      metrics.MemTracker
	timer    metrics.Timer
}

// NewProgressive prepares a progressive matcher over the initial problem.
func NewProgressive(p *Problem, cfg Config) (*Progressive, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idx, err := buildObjectIndex(p, cfg)
	if err != nil {
		return nil, err
	}
	g := &Progressive{
		dims:     p.Dims,
		idx:      idx,
		searches: make(map[uint64]*ta.Search),
		funcCaps: newFuncCaps(p.Functions),
		objCaps:  newObjectCaps(p.Objects),
		omega:    cfg.omegaFor(len(p.Functions)),
		objSeen:  make(map[uint64]bool, len(p.Objects)),
	}
	for _, o := range p.Objects {
		g.objSeen[o.ID] = true
	}
	g.timer.Start()
	g.maint, err = skyline.NewMaintainer(idx.tree, &g.mem)
	if err != nil {
		return nil, err
	}
	g.lists, err = ta.NewLists(taFuncs(p.Functions), p.Dims)
	if err != nil {
		return nil, err
	}
	g.timer.Stop()
	return g, nil
}

// AddObject introduces a newly released object. It becomes eligible for
// all pairs not yet discovered.
func (g *Progressive) AddObject(o Object) error {
	if len(o.Point) != g.dims {
		return fmt.Errorf("assign: object %d has %d dims, want %d", o.ID, len(o.Point), g.dims)
	}
	if g.objSeen[o.ID] {
		return fmt.Errorf("assign: duplicate object id %d", o.ID)
	}
	g.timer.Start()
	defer g.timer.Stop()
	g.objSeen[o.ID] = true
	g.objCaps.remaining[o.ID] = o.capacity()
	g.objCaps.units += o.capacity()
	g.objCaps.live++
	g.done = false
	return g.maint.Insert(rtree.Item{ID: o.ID, Point: geom.Point(o.Point).Clone()})
}

// Next returns the next stable pair, running the SB loop as needed.
// ok is false when the matching is complete (either side exhausted);
// a subsequent AddObject can make more pairs available again.
func (g *Progressive) Next() (Pair, bool, error) {
	g.timer.Start()
	defer g.timer.Stop()
	for len(g.buffer) == 0 {
		if g.done || g.funcCaps.units == 0 || g.objCaps.units == 0 || g.maint.Size() == 0 {
			g.done = true
			return Pair{}, false, nil
		}
		if err := g.runLoop(); err != nil {
			return Pair{}, false, err
		}
	}
	p := g.buffer[0]
	g.buffer = g.buffer[1:]
	return p, true, nil
}

// Stats returns a snapshot of the work performed so far.
func (g *Progressive) Stats() metrics.Stats {
	s := g.stats
	s.CPUTime = g.timer.Total
	s.IO = *g.idx.store.IO()
	if g.mem.Peak > s.PeakMem {
		s.PeakMem = g.mem.Peak
	}
	s.TASorted = g.lists.Counters.SortedAccesses
	s.TARandom = g.lists.Counters.RandomAccesses
	s.NodeReads = g.maint.NodeReads
	return s
}

// runLoop is one iteration of the optimized SB loop (Algorithm 3),
// appending every discovered mutual pair to the buffer.
func (g *Progressive) runLoop() error {
	g.stats.Loops++
	sky := g.maint.Skyline()
	sort.Slice(sky, func(i, j int) bool { return sky[i].ID < sky[j].ID })

	type bestFunc struct {
		fid   uint64
		score float64
	}
	oBest := make(map[uint64]bestFunc, len(sky))
	for _, o := range sky {
		s := g.searches[o.ID]
		if s == nil {
			s = ta.NewSearch(g.lists, o.Point, g.omega)
			g.searches[o.ID] = s
		}
		fid, score, ok := s.Best()
		g.stats.TopKRuns++
		if !ok {
			g.done = true
			return nil
		}
		oBest[o.ID] = bestFunc{fid: fid, score: score}
	}

	type bestObj struct {
		oid   uint64
		score float64
	}
	fBest := make(map[uint64]bestObj)
	fids := make([]uint64, 0, len(oBest))
	for _, bf := range oBest {
		if _, seen := fBest[bf.fid]; !seen {
			fBest[bf.fid] = bestObj{}
			fids = append(fids, bf.fid)
		}
	}
	sort.Slice(fids, func(i, j int) bool { return fids[i] < fids[j] })
	for _, fid := range fids {
		w := g.lists.Weights(fid)
		var best bestObj
		found := false
		for _, o := range sky {
			s := geom.Dot(w, o.Point)
			if !found || s > best.score || (s == best.score && o.ID < best.oid) {
				best, found = bestObj{oid: o.ID, score: s}, true
			}
		}
		fBest[fid] = best
	}

	var removedObjs []uint64
	emitted := 0
	for _, fid := range fids {
		bo := fBest[fid]
		if oBest[bo.oid].fid != fid {
			continue
		}
		g.buffer = append(g.buffer, Pair{FuncID: fid, ObjectID: bo.oid, Score: bo.score})
		g.stats.Pairs++
		emitted++
		if g.funcCaps.consume(fid) {
			if err := g.lists.Remove(fid); err != nil {
				return err
			}
		}
		if g.objCaps.consume(bo.oid) {
			removedObjs = append(removedObjs, bo.oid)
			delete(g.searches, bo.oid)
		}
	}
	if emitted == 0 {
		return errors.New("assign: internal error: no stable pair emitted in a loop")
	}
	if len(removedObjs) > 0 {
		if err := g.maint.Remove(removedObjs...); err != nil {
			return err
		}
	}
	var searchBytes int64
	for _, s := range g.searches {
		searchBytes += s.Footprint()
	}
	if cur := g.mem.Current + searchBytes; cur > g.stats.PeakMem {
		g.stats.PeakMem = cur
	}
	return nil
}
