package assign

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/rtree"
	"fairassign/internal/skyline"
	"fairassign/internal/ta"
)

// Progressive is the dynamic variant sketched as future work in
// Section 8: stable pairs are emitted on demand (the SB loop runs just
// far enough to produce the next one), and new objects may arrive
// between pulls — a marketplace where supply is released over time.
//
// Semantics: every emitted pair was stable with respect to the functions
// and objects present at the moment it was discovered; a later arrival
// affects only pairs not yet discovered. Arrivals are folded into the
// maintained skyline directly (Maintainer.Insert) without touching the
// R-tree, so they cost no I/O.
//
// Ordering guarantee: between arrivals, pairs stream in non-increasing
// score order — the order of the definitional greedy. SB's loops can
// discover a lower-scored mutual pair before a higher-scored one of a
// later loop, so discovered pairs are held in a pending buffer and
// released only once their score is at least the ceiling on every
// not-yet-discovered pair. That ceiling is the maximum best-function
// score over the current skyline: the globally best remaining pair
// always involves a skyline object (a dominated object scores no better
// than its dominator under any non-negative weights). An AddObject call
// starts a new ordering epoch: pairs discovered before the arrival are
// flushed first, and the guarantee restarts after them.
type Progressive struct {
	dims     int
	st       *solveState
	maint    *skyline.Maintainer
	lists    *ta.Lists
	ctx      *engineCtx
	eng      searchEngine
	funcCaps *capTable
	objCaps  *capTable
	objSeen  map[uint64]bool
	pending  []Pair // discovered, held for score ordering (sorted desc)
	ready    []Pair // cleared for emission, in final order
	// Cached step-1 results of the upcoming loop, produced while
	// computing the release ceiling so the next runLoop does not repeat
	// the searches.
	nextSky  []rtree.Item
	nextBest []bestFunc
	haveNext bool
	done     bool
	stats    metrics.Stats
	mem      metrics.MemTracker
	timer    metrics.Timer
}

// NewProgressive prepares a progressive matcher over the initial problem.
func NewProgressive(p *Problem, cfg Config) (*Progressive, error) {
	st, err := newSolveState(p, cfg)
	if err != nil {
		return nil, err
	}
	g := &Progressive{
		dims:     p.Dims,
		st:       st,
		funcCaps: newFuncCaps(p.Functions),
		objCaps:  newObjectCaps(p.Objects),
		objSeen:  make(map[uint64]bool, len(p.Objects)),
	}
	for _, o := range p.Objects {
		g.objSeen[o.ID] = true
	}
	g.timer.Start()
	g.maint, err = skyline.NewMaintainer(st.tree, &g.mem)
	if err != nil {
		return nil, err
	}
	g.lists, err = ta.NewLists(taFuncs(p.Functions), p.Dims)
	if err != nil {
		return nil, err
	}
	g.ctx = newEngineCtx(g.lists, modeOptimized, len(p.Functions), cfg.omegaFor(len(p.Functions)))
	g.eng = g.ctx.engine(cfg)
	g.timer.Stop()
	return g, nil
}

// AddObject introduces a newly released object. It becomes eligible for
// all pairs not yet discovered. Pairs discovered before the arrival are
// released for emission ahead of anything the arrival can influence.
func (g *Progressive) AddObject(o Object) error {
	if len(o.Point) != g.dims {
		return fmt.Errorf("assign: object %d has %d dims, want %d", o.ID, len(o.Point), g.dims)
	}
	if g.objSeen[o.ID] {
		return fmt.Errorf("assign: duplicate object id %d", o.ID)
	}
	g.timer.Start()
	defer g.timer.Stop()
	g.flushPending()
	g.haveNext = false // the skyline is about to change
	g.objSeen[o.ID] = true
	g.objCaps.remaining[o.ID] = o.capacity()
	g.objCaps.units += o.capacity()
	g.objCaps.live++
	g.done = false
	return g.maint.Insert(rtree.Item{ID: o.ID, Point: geom.Point(o.Point).Clone()})
}

// Next returns the next stable pair, running the SB loop as needed.
// ok is false when the matching is complete (either side exhausted);
// a subsequent AddObject can make more pairs available again.
func (g *Progressive) Next() (Pair, bool, error) {
	g.timer.Start()
	defer g.timer.Stop()
	for len(g.ready) == 0 {
		if g.done || g.funcCaps.units == 0 || g.objCaps.units == 0 || g.maint.Size() == 0 {
			g.done = true
			if len(g.pending) == 0 {
				return Pair{}, false, nil
			}
			g.flushPending()
			break
		}
		if err := g.runLoop(); err != nil {
			return Pair{}, false, err
		}
	}
	p := g.ready[0]
	g.ready = g.ready[1:]
	return p, true, nil
}

// flushPending releases every held pair in order.
func (g *Progressive) flushPending() {
	g.ready = append(g.ready, g.pending...)
	g.pending = g.pending[:0]
}

// stepOne runs the per-object best-function phase over the current
// skyline (Lines 9–11) through the engine.
func (g *Progressive) stepOne() ([]rtree.Item, []bestFunc) {
	sky := g.maint.Skyline()
	sortItemsByID(sky)
	byObj := make([]bestFunc, len(sky))
	g.eng.bestFunctions(sky, byObj)
	g.stats.TopKRuns += int64(len(sky))
	return sky, byObj
}

// Stats returns a snapshot of the work performed so far.
func (g *Progressive) Stats() metrics.Stats {
	s := g.stats
	s.CPUTime = g.timer.Total
	s.IO = *g.st.store.IO()
	if g.mem.Peak > s.PeakMem {
		s.PeakMem = g.mem.Peak
	}
	s.TASorted = g.lists.Counters.SortedAccesses
	s.TARandom = g.lists.Counters.RandomAccesses
	s.NodeReads = g.maint.NodeReads
	return s
}

// runLoop is one iteration of the optimized SB loop (Algorithm 3),
// adding every discovered mutual pair to the pending buffer and
// releasing the prefix that can no longer be outranked. The search
// phases run through the same engine as the batch solver, so a Workers
// setting in the config parallelizes them here too.
func (g *Progressive) runLoop() error {
	g.stats.Loops++
	var sky []rtree.Item
	var byObj []bestFunc
	if g.haveNext {
		sky, byObj, g.haveNext = g.nextSky, g.nextBest, false
	} else {
		sky, byObj = g.stepOne()
	}
	oBest := make(map[uint64]bestFunc, len(sky))
	for i, o := range sky {
		if !byObj[i].ok {
			g.done = true
			g.flushPending()
			return nil
		}
		oBest[o.ID] = byObj[i]
	}

	fids := make([]uint64, 0, len(sky))
	seen := make(map[uint64]bool, len(sky))
	for _, bf := range byObj {
		if !seen[bf.fid] {
			seen[bf.fid] = true
			fids = append(fids, bf.fid)
		}
	}
	slices.Sort(fids)
	byFunc := make([]bestObj, len(fids))
	g.eng.bestObjects(fids, sky, byFunc)
	fBest := make(map[uint64]bestObj, len(fids))
	for i, fid := range fids {
		fBest[fid] = byFunc[i]
	}

	var removedObjs []uint64
	emitted := 0
	for _, fid := range fids {
		bo := fBest[fid]
		if oBest[bo.oid].fid != fid {
			continue
		}
		g.pending = append(g.pending, Pair{FuncID: fid, ObjectID: bo.oid, Score: bo.score})
		g.stats.Pairs++
		emitted++
		if g.funcCaps.consume(fid) {
			if err := g.lists.Remove(fid); err != nil {
				return err
			}
		}
		if g.objCaps.consume(bo.oid) {
			removedObjs = append(removedObjs, bo.oid)
			g.ctx.dropSearch(bo.oid)
		}
	}
	if emitted == 0 {
		return errors.New("assign: internal error: no stable pair emitted in a loop")
	}
	if len(removedObjs) > 0 {
		if err := g.maint.Remove(removedObjs...); err != nil {
			return err
		}
	}
	// Keep the held pairs in the definitional greedy order: descending
	// score, ties by ascending IDs.
	sort.Slice(g.pending, func(i, j int) bool {
		a, b := g.pending[i], g.pending[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.FuncID != b.FuncID {
			return a.FuncID < b.FuncID
		}
		return a.ObjectID < b.ObjectID
	})

	// Release gate: once a side is exhausted nothing more can be
	// discovered, so everything held is final. Otherwise run the next
	// loop's step 1 now — its maximum best-function score is the ceiling
	// on every future pair — and release the pending prefix at or above
	// it. The step-1 results are cached for the next runLoop.
	if g.funcCaps.units == 0 || g.objCaps.units == 0 || g.maint.Size() == 0 {
		g.flushPending()
	} else {
		sky2, byObj2 := g.stepOne()
		ceiling := math.Inf(-1)
		allOK := true
		for _, bf := range byObj2 {
			if !bf.ok {
				allOK = false
				break
			}
			if bf.score > ceiling {
				ceiling = bf.score
			}
		}
		if !allOK {
			g.done = true
			g.flushPending()
		} else {
			g.nextSky, g.nextBest, g.haveNext = sky2, byObj2, true
			// Strictly above the ceiling: a pair tied with it could also
			// tie with a future pair, and the tie must be broken by IDs
			// once both sit in pending together.
			n := 0
			for n < len(g.pending) && g.pending[n].Score > ceiling {
				n++
			}
			g.ready = append(g.ready, g.pending[:n]...)
			g.pending = append(g.pending[:0], g.pending[n:]...)
		}
	}

	if cur := g.mem.Current + g.ctx.searchFootprint(); cur > g.stats.PeakMem {
		g.stats.PeakMem = cur
	}
	return nil
}
