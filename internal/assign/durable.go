package assign

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
	"fairassign/internal/snapshot"
	"fairassign/internal/vfs"
	"fairassign/internal/wal"
)

// Typed durability errors (match with errors.Is). ErrBadSnapshot and
// ErrTornWrite re-export the codec sentinels so callers need only this
// package.
var (
	// ErrBadSnapshot marks an unreadable snapshot file; OpenWorkspace
	// falls back to the previous good snapshot when one exists and
	// returns this only when none does.
	ErrBadSnapshot = snapshot.ErrBadSnapshot
	// ErrTornWrite marks a torn or corrupt WAL tail record, truncated
	// during recovery (reported in RecoveryInfo, not returned: the torn
	// batch was never acknowledged).
	ErrTornWrite = wal.ErrTornWrite
	// ErrNoSnapshot is returned by OpenWorkspace when the durability
	// directory holds no snapshot file at all — there is nothing to
	// recover from (e.g. the workspace creation itself crashed before
	// its initial snapshot committed).
	ErrNoSnapshot = errors.New("assign: no snapshot in durability directory")
	// ErrNotDurable is returned by SaveSnapshot on a workspace built
	// without a WALDir.
	ErrNotDurable = errors.New("assign: workspace has no durability directory")
	// ErrDurableDirInUse is returned by NewWorkspace when the durability
	// directory already holds a workspace — recover it with
	// OpenWorkspace instead of clobbering it.
	ErrDurableDirInUse = errors.New("assign: durability directory already holds a workspace")
	// ErrWALDiverged is returned by OpenWorkspace when the log cannot be
	// reconciled with the snapshot lineage: an epoch gap after a
	// mid-log corruption, a record batch that fails validation against
	// the state it claims to extend, or a bad segment header followed by
	// records recovery still needs. The unrecoverable-divergence error —
	// never a panic.
	ErrWALDiverged = errors.New("assign: wal diverged from snapshot lineage")
)

// retainSnapshots is how many snapshot generations rotation keeps: the
// newest plus one fallback (a corrupt newest snapshot degrades to the
// previous good one + longer replay).
const retainSnapshots = 2

// durableState carries a workspace's durability plumbing.
type durableState struct {
	fs     vfs.FS
	dir    string
	log    *wal.Writer // nil in snapshot-only mode (WALDir without Durable)
	noSync bool
}

// RecoveryInfo describes how OpenWorkspace reconstructed a workspace.
type RecoveryInfo struct {
	// SnapshotEpoch is the epoch of the snapshot the restore used.
	SnapshotEpoch uint64
	// SnapshotsSkipped counts newer snapshot files that failed their
	// checksums or validation and were passed over (fallback).
	SnapshotsSkipped int
	// BatchesReplayed and MutationsReplayed count the WAL records
	// reapplied past the snapshot.
	BatchesReplayed   int
	MutationsReplayed int
	// TornTail is set when a segment ended in a torn or corrupt record;
	// the tail was truncated (it was never acknowledged) and TornDetail
	// describes it (the ErrTornWrite text).
	TornTail   bool
	TornDetail string
	// FinalEpoch is the workspace epoch after replay.
	FinalEpoch uint64
}

// Recovery returns how this workspace was recovered, or nil if it was
// built fresh by NewWorkspace.
func (w *Workspace) Recovery() *RecoveryInfo { return w.recovery }

func (c Config) fsOrOS() vfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return vfs.OS()
}

// initDurable sets up the durability directory of a freshly built
// workspace: an initial snapshot at the first published epoch (the WAL
// cannot bootstrap an empty directory — the initial population is not
// logged) and, when Durable, the first WAL segment. Runs at the tail of
// NewWorkspace, before the workspace is handed out.
func (w *Workspace) initDurable() error {
	cfg := w.cfg
	if cfg.WALDir == "" {
		return fmt.Errorf("assign: Durable requires WALDir")
	}
	fs := cfg.fsOrOS()
	if err := fs.MkdirAll(cfg.WALDir); err != nil {
		return fmt.Errorf("assign: create durability dir: %w", err)
	}
	if epochs, err := snapshot.List(fs, cfg.WALDir); err != nil {
		return fmt.Errorf("assign: scan durability dir: %w", err)
	} else if len(epochs) > 0 {
		return fmt.Errorf("%w: %s (use OpenWorkspace)", ErrDurableDirInUse, cfg.WALDir)
	}
	w.dur = &durableState{fs: fs, dir: cfg.WALDir, noSync: cfg.WALNoSync}
	if !cfg.Durable {
		return nil // snapshot-only mode: images on demand, no log
	}
	d, err := w.captureDataLocked()
	if err != nil {
		return err
	}
	if _, err := snapshot.WriteFile(fs, cfg.WALDir, d); err != nil {
		return err
	}
	w.dur.log, err = wal.Create(fs, cfg.WALDir, 1, w.epoch)
	return err
}

// SaveSnapshot persists the current epoch into the durability directory
// and, on a WAL-enabled workspace, rotates the log: a fresh segment
// based at the snapshot epoch is started and files no retained snapshot
// needs are pruned (the newest retainSnapshots generations stay, so a
// corrupt newest snapshot can still fall back). Crash-safe at every
// byte: the snapshot commits atomically via rename, the new segment is
// durable before the old one closes, and recovery tolerates every
// intermediate file layout.
func (w *Workspace) SaveSnapshot() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.liveLocked(); err != nil {
		return err
	}
	if w.dur == nil {
		return ErrNotDurable
	}
	d, err := w.captureDataLocked()
	if err != nil {
		return w.corruptLocked(err)
	}
	if _, err := snapshot.WriteFile(w.dur.fs, w.dur.dir, d); err != nil {
		// A failed snapshot write leaves the workspace fully consistent —
		// the old snapshot + WAL still recover everything.
		return err
	}
	if w.dur.log != nil {
		next, err := wal.Create(w.dur.fs, w.dur.dir, w.dur.log.Seq()+1, w.epoch)
		if err != nil {
			return err
		}
		w.dur.log.Close()
		w.dur.log = next
	}
	w.pruneDurableFiles()
	return nil
}

// pruneDurableFiles removes snapshots older than the retained window
// and WAL segments entirely covered by the oldest retained snapshot.
// Best-effort: stray files never endanger recovery, missing space does.
func (w *Workspace) pruneDurableFiles() {
	fs, dir := w.dur.fs, w.dur.dir
	epochs, err := snapshot.List(fs, dir)
	if err != nil || len(epochs) == 0 {
		return
	}
	keepFrom := 0
	if len(epochs) > retainSnapshots {
		keepFrom = len(epochs) - retainSnapshots
	}
	for _, e := range epochs[:keepFrom] {
		_ = fs.Remove(path.Join(dir, snapshot.FileName(e)))
	}
	oldest := epochs[keepFrom]
	segs, err := wal.ListSegments(fs, dir)
	if err != nil {
		return
	}
	// Segment i holds records in (base_i, base_{i+1}]; it is dead once
	// the oldest retained snapshot is at or past everything it can hold.
	bases := make([]uint64, len(segs))
	for i, sg := range segs {
		if _, base, err := wal.ReadHeader(fs, dir, sg.Name); err == nil {
			bases[i] = base
		} else {
			return // unreadable header: prune nothing beyond this point
		}
	}
	for i := 0; i+1 < len(segs); i++ {
		if bases[i+1] <= oldest {
			_ = fs.Remove(path.Join(dir, segs[i].Name))
		}
	}
}

// captureDataLocked freezes the workspace into a snapshot.Data: sorted
// entity tables, the matching, capacity tables, the frontier ID set,
// and page images of both stores (taken from the in-memory version
// chains — no physical reads). The function-side pool is flushed first
// so its chains hold the final bytes; that flush is the only I/O the
// capture performs. Caller holds w.mu.
func (w *Workspace) captureDataLocked() (*snapshot.Data, error) {
	if err := w.st.pool.Flush(); err != nil {
		return nil, err
	}
	if err := w.fpool.Flush(); err != nil {
		return nil, err
	}
	d := &snapshot.Data{
		Epoch: w.epoch,
		Dims:  w.Dims(),
		Counters: snapshot.Counters{
			Mutations:  uint64(w.mutations),
			Commits:    uint64(w.commits),
			ChainSteps: uint64(w.chainLen),
			Searches:   uint64(w.searches),
			Resolves:   uint64(w.resolves),
		},
	}
	d.Objects = make([]snapshot.ObjectRec, 0, len(w.objs))
	for _, o := range w.objs {
		d.Objects = append(d.Objects, snapshot.ObjectRec{ID: o.ID, Capacity: int64(o.Capacity), Point: o.Point})
	}
	sort.Slice(d.Objects, func(i, j int) bool { return d.Objects[i].ID < d.Objects[j].ID })
	d.Functions = make([]snapshot.FunctionRec, 0, len(w.funcs))
	for _, f := range w.funcs {
		d.Functions = append(d.Functions, functionRec(f))
	}
	sort.Slice(d.Functions, func(i, j int) bool { return d.Functions[i].ID < d.Functions[j].ID })
	pairs := w.pairsLocked()
	sortPairsDefinitional(pairs)
	d.Pairs = make([]snapshot.Pair, len(pairs))
	for i, p := range pairs {
		d.Pairs[i] = snapshot.Pair{FuncID: p.FuncID, ObjID: p.ObjectID, Score: p.Score}
	}
	d.ObjCaps = capEntries(w.st.objCaps)
	d.FuncCaps = capEntries(w.st.funcCaps)
	for _, it := range w.avail.Skyline() {
		d.Avail = append(d.Avail, it.ID)
	}
	sort.Slice(d.Avail, func(i, j int) bool { return d.Avail[i] < d.Avail[j] })
	var err error
	if d.ObjStore, err = storeImage(w.vstore, w.st.tree.Meta()); err != nil {
		return nil, err
	}
	if d.FuncStore, err = storeImage(w.fvstore, w.ftree.Meta()); err != nil {
		return nil, err
	}
	return d, nil
}

func functionRec(f Function) snapshot.FunctionRec {
	return snapshot.FunctionRec{
		ID:       f.ID,
		Capacity: int64(f.Capacity),
		Gamma:    f.Gamma,
		FamKind:  uint32(f.Fam.Kind),
		FamP:     f.Fam.P,
		Weights:  f.Weights,
	}
}

func recFunction(r *snapshot.FunctionRec) Function {
	return Function{
		ID:       r.ID,
		Weights:  r.Weights,
		Gamma:    r.Gamma,
		Capacity: int(r.Capacity),
		Fam:      score.Family{Kind: score.Kind(r.FamKind), P: r.FamP},
	}
}

func capEntries(t *capTable) []snapshot.CapEntry {
	out := make([]snapshot.CapEntry, 0, len(t.remaining))
	for id, r := range t.remaining {
		out = append(out, snapshot.CapEntry{ID: id, Remaining: int64(r)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func capsFromEntries(entries []snapshot.CapEntry) *capTable {
	t := &capTable{remaining: make(map[uint64]int, len(entries))}
	for _, e := range entries {
		t.remaining[e.ID] = int(e.Remaining)
		t.units += int(e.Remaining)
		if e.Remaining > 0 {
			t.live++
		}
	}
	return t
}

// storeImage freezes one versioned store plus its tree header. Page
// bytes come off the version chains (CurrentPages), so the capture
// leaves the physical I/O counters — the paper's metric — untouched.
func storeImage(vs *pagestore.VersionedStore, meta rtree.Meta) (snapshot.StoreImage, error) {
	si := snapshot.StoreImage{
		PageSize: vs.PageSize(),
		Root:     int64(meta.Root),
		Height:   meta.Height,
		Size:     meta.Size,
	}
	err := vs.CurrentPages(func(id pagestore.PageID, data []byte) error {
		n := len(data)
		for n > 0 && data[n-1] == 0 {
			n--
		}
		img := make([]byte, n)
		copy(img, data[:n])
		si.Pages = append(si.Pages, snapshot.PageImage{ID: int64(id), Data: img})
		if int64(id) >= si.Next {
			si.Next = int64(id) + 1
		}
		return nil
	})
	return si, err
}

// mutationRecs converts an Apply batch to its WAL wire form.
func mutationRecs(muts []Mutation) []snapshot.MutationRec {
	out := make([]snapshot.MutationRec, len(muts))
	for i := range muts {
		m := &muts[i]
		r := &out[i]
		r.Kind = uint8(m.Kind)
		switch m.Kind {
		case MutAddObject:
			r.Object = snapshot.ObjectRec{ID: m.Object.ID, Capacity: int64(m.Object.Capacity), Point: m.Object.Point}
		case MutAddFunction:
			r.Function = functionRec(m.Function)
		default:
			r.ID = m.ID
		}
	}
	return out
}

// recMutations is the replay-side inverse.
func recMutations(recs []snapshot.MutationRec) []Mutation {
	out := make([]Mutation, len(recs))
	for i := range recs {
		r := &recs[i]
		m := &out[i]
		m.Kind = MutationKind(r.Kind)
		switch m.Kind {
		case MutAddObject:
			m.Object = Object{ID: r.Object.ID, Point: geom.Point(r.Object.Point), Capacity: int(r.Object.Capacity)}
		case MutAddFunction:
			m.Function = recFunction(&r.Function)
		default:
			m.ID = r.ID
		}
	}
	return out
}

// OpenWorkspace recovers a workspace from cfg.WALDir: load the newest
// snapshot that passes its checksums and cross-validation (falling back
// to older generations), rebuild the serving state from it with no
// re-solve, replay the committed WAL batches past its epoch, truncate
// any torn tail (ErrTornWrite — those bytes were never acknowledged),
// and — when cfg.Durable — start a fresh segment so the workspace
// continues logging. The recovered workspace continues the exact epoch
// lineage of the one that crashed.
func OpenWorkspace(cfg Config) (*Workspace, error) {
	if cfg.WALDir == "" {
		return nil, ErrNotDurable
	}
	fs := cfg.fsOrOS()
	epochs, err := snapshot.List(fs, cfg.WALDir)
	if errors.Is(err, iofs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoSnapshot, cfg.WALDir)
	}
	if err != nil {
		return nil, fmt.Errorf("assign: scan durability dir: %w", err)
	}
	if len(epochs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoSnapshot, cfg.WALDir)
	}
	info := &RecoveryInfo{}
	var w *Workspace
	var lastErr error
	for i := len(epochs) - 1; i >= 0; i-- {
		d, rerr := snapshot.ReadFile(fs, cfg.WALDir, epochs[i])
		if rerr == nil {
			w, rerr = restoreWorkspace(d, cfg)
		}
		if rerr != nil {
			if errors.Is(rerr, ErrBadSnapshot) {
				// Fall back to the previous generation + longer replay.
				info.SnapshotsSkipped++
				lastErr = rerr
				continue
			}
			return nil, rerr
		}
		info.SnapshotEpoch = d.Epoch
		break
	}
	if w == nil {
		return nil, fmt.Errorf("assign: every snapshot unreadable: %w", lastErr)
	}
	if err := w.replayWAL(fs, cfg.WALDir, info); err != nil {
		w.Close()
		return nil, err
	}
	w.dur = &durableState{fs: fs, dir: cfg.WALDir, noSync: cfg.WALNoSync}
	if cfg.Durable {
		segs, err := wal.ListSegments(fs, cfg.WALDir)
		if err != nil {
			w.Close()
			return nil, err
		}
		seq := uint64(1)
		if n := len(segs); n > 0 {
			seq = segs[n-1].Seq + 1
		}
		w.dur.log, err = wal.Create(fs, cfg.WALDir, seq, w.epoch)
		if err != nil {
			w.Close()
			return nil, err
		}
	}
	info.FinalEpoch = w.epoch
	w.recovery = info
	return w, nil
}

// replayWAL reapplies every committed batch past the restored epoch, in
// segment order. Records at or before the current epoch are skipped
// (segments overlap snapshots after rotation); a record that does not
// extend the lineage contiguously means the log and the snapshot
// diverged — typed ErrWALDiverged, never a guess.
func (w *Workspace) replayWAL(fs vfs.FS, dir string, info *RecoveryInfo) error {
	segs, err := wal.ListSegments(fs, dir)
	if err != nil {
		return err
	}
	for i, sg := range segs {
		sd, err := wal.ReadSegment(fs, dir, sg.Name)
		if err != nil {
			if errors.Is(err, wal.ErrBadSegment) && i == len(segs)-1 {
				// A crash during rotation can tear the newest segment's
				// header before any record lands; treat it as an empty torn
				// tail.
				info.TornTail = true
				info.TornDetail = err.Error()
				return nil
			}
			return fmt.Errorf("%w: %w", ErrWALDiverged, err)
		}
		if sd.TornError != nil {
			info.TornTail = true
			info.TornDetail = sd.TornError.Error()
		}
		for _, rec := range sd.Records {
			switch {
			case rec.Epoch <= w.epoch:
				continue // already covered by the snapshot
			case rec.Epoch != w.epoch+1:
				return fmt.Errorf("%w: record epoch %d after workspace epoch %d (segment %s)",
					ErrWALDiverged, rec.Epoch, w.epoch, sg.Name)
			}
			recs, err := snapshot.DecodeBatch(rec.Payload)
			if err != nil {
				return fmt.Errorf("%w: %w", ErrWALDiverged, err)
			}
			muts := recMutations(recs)
			w.mu.Lock()
			err = w.applyLocked(muts)
			w.mu.Unlock()
			if err != nil {
				return fmt.Errorf("%w: replaying epoch %d: %w", ErrWALDiverged, rec.Epoch, err)
			}
			info.BatchesReplayed++
			info.MutationsReplayed += len(muts)
		}
	}
	return nil
}

// restoreWorkspace rebuilds a serving workspace from one decoded
// snapshot: both page stores are re-imaged (preserving page IDs and the
// allocation watermark), the R-trees reattach via their persisted Meta,
// the matching and capacity tables load directly, and the availability
// frontier is recomputed from the capacity tables and cross-checked
// against the persisted skyline ID set. O(file) — no solve, no bulk
// load. Internal inconsistency returns ErrBadSnapshot so OpenWorkspace
// can fall back a generation.
func restoreWorkspace(d *snapshot.Data, cfg Config) (*Workspace, error) {
	if d.Epoch < 1 {
		return nil, fmt.Errorf("%w: epoch 0", ErrBadSnapshot)
	}
	p := &Problem{Dims: d.Dims}
	for i := range d.Objects {
		o := &d.Objects[i]
		p.Objects = append(p.Objects, Object{ID: o.ID, Point: geom.Point(o.Point), Capacity: int(o.Capacity)})
	}
	for i := range d.Functions {
		p.Functions = append(p.Functions, recFunction(&d.Functions[i]))
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	if d.ObjStore.Size != len(p.Objects) {
		return nil, fmt.Errorf("%w: object tree size %d != %d objects", ErrBadSnapshot, d.ObjStore.Size, len(p.Objects))
	}

	vstore, pool, tree, err := restoreStore(cfg, &d.ObjStore, d.Dims, d.Epoch, true, cfg.bufferFrac())
	if err != nil {
		return nil, err
	}
	st := &solveState{p: p, cfg: cfg, store: vstore, pool: pool, tree: tree}
	st.objCaps = capsFromEntries(d.ObjCaps)
	st.funcCaps = capsFromEntries(d.FuncCaps)

	fvstore, fpool, ftree, err := restoreStore(cfg, &d.FuncStore, d.Dims, d.Epoch, false, -1)
	if err != nil {
		st.release()
		return nil, err
	}

	w := &Workspace{
		st:      st,
		cfg:     cfg,
		vstore:  vstore,
		fstore:  fvstore,
		fvstore: fvstore,
		fpool:   fpool,
		ftree:   ftree,
		objs:    make(map[uint64]Object, len(p.Objects)),
		funcs:   make(map[uint64]Function, len(p.Functions)),
		eff:     make(map[uint64][]float64, len(p.Functions)),
		nonlin:  score.NewFuncBlocks(p.Dims),
		byObj:   make(map[uint64][]wsPair),
		byFunc:  make(map[uint64][]wsPair),
	}
	fail := func(format string, args ...any) (*Workspace, error) {
		w.Close()
		return nil, fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
	}
	for _, o := range p.Objects {
		w.objs[o.ID] = o
	}
	linear := 0
	for _, f := range p.Functions {
		w.funcs[f.ID] = f
		w.eff[f.ID] = f.Effective()
		if f.Fam.IsLinear() {
			linear++
		} else {
			w.nonlin.Add(f.ID, f.Fam, w.eff[f.ID])
		}
	}
	if d.FuncStore.Size != linear {
		return fail("function tree size %d != %d linear functions", d.FuncStore.Size, linear)
	}
	for _, pr := range d.Pairs {
		if _, ok := w.funcs[pr.FuncID]; !ok {
			return fail("pair references unknown function %d", pr.FuncID)
		}
		if _, ok := w.objs[pr.ObjID]; !ok {
			return fail("pair references unknown object %d", pr.ObjID)
		}
		w.link(wsPair{fid: pr.FuncID, oid: pr.ObjID, score: pr.Score})
	}
	// Cross-validate the capacity tables against capacity − assignment:
	// the tables must be derivable, so a bit-rotted (yet
	// checksum-passing — e.g. truncated by a buggy tool) state cannot
	// serve.
	if err := checkCaps(st.objCaps, len(w.objs), func(id uint64) (int, int, bool) {
		o, ok := w.objs[id]
		return o.capacity(), len(w.byObj[id]), ok
	}); err != nil {
		return fail("object capacity table: %v", err)
	}
	if err := checkCaps(st.funcCaps, len(w.funcs), func(id uint64) (int, int, bool) {
		f, ok := w.funcs[id]
		return f.capacity(), len(w.byFunc[id]), ok
	}); err != nil {
		return fail("function capacity table: %v", err)
	}

	// The frontier is rebuilt, not deserialized: the skyline of the
	// available objects is unique, so recomputing it from the restored
	// capacity table and comparing ID sets doubles as an end-to-end
	// consistency check of pairs, capacities, and points.
	var availItems []rtree.Item
	for id, o := range w.objs {
		if st.objCaps.remaining[id] > 0 {
			availItems = append(availItems, rtree.Item{ID: id, Point: o.Point})
		}
	}
	w.avail = skyline.NewMaintainerFromItems(d.Dims, availItems, nil)
	w.avail.SetLiveCheck(func(id uint64, pt geom.Point) bool {
		o, ok := w.objs[id]
		return ok && w.st.objCaps.remaining[id] > 0 && o.Point.Equal(pt)
	})
	sky := w.avail.Skyline()
	if len(sky) != len(d.Avail) {
		return fail("frontier has %d entries, snapshot recorded %d", len(sky), len(d.Avail))
	}
	persisted := make(map[uint64]bool, len(d.Avail))
	for _, id := range d.Avail {
		persisted[id] = true
	}
	for _, it := range sky {
		if !persisted[it.ID] {
			return fail("frontier object %d not in persisted skyline", it.ID)
		}
	}

	// Seal the restored state as epoch d.Epoch (restoreStore rebased the
	// object store to d.Epoch−1), then overwrite the counters with the
	// persisted lifetime values — the restore itself is not a commit.
	if err := w.commitLocked(); err != nil {
		w.Close()
		return nil, err
	}
	if w.epoch != d.Epoch {
		return fail("restored epoch %d, want %d", w.epoch, d.Epoch)
	}
	w.mutations = int64(d.Counters.Mutations)
	w.commits = int64(d.Counters.Commits)
	w.chainLen = int64(d.Counters.ChainSteps)
	w.searches = int64(d.Counters.Searches)
	w.resolves = int64(d.Counters.Resolves)
	return w, nil
}

// checkCaps verifies one capacity table equals capacity − assigned for
// every live entity, exactly.
func checkCaps(t *capTable, population int, lookup func(id uint64) (capacity, assigned int, ok bool)) error {
	if len(t.remaining) != population {
		return fmt.Errorf("%d entries for %d entities", len(t.remaining), population)
	}
	for id, rem := range t.remaining {
		capacity, assigned, ok := lookup(id)
		if !ok {
			return fmt.Errorf("entry for unknown id %d", id)
		}
		if rem != capacity-assigned {
			return fmt.Errorf("id %d: remaining %d, want %d-%d", id, rem, capacity, assigned)
		}
	}
	return nil
}

// restoreStore re-images one page store from a snapshot: pages are
// allocated up to the persisted watermark, live images written at their
// exact IDs, holes freed — so the restored ID space matches the saved
// one — and the R-tree reattaches via FromMeta. rebase rebases the
// versioned store so the next publish seals exactly the snapshot epoch
// (object side; the function side is never epoch-pinned). frac < 0
// keeps the construction-sized pool (function side); otherwise the pool
// is resized to the experiment fraction and cleared, and the I/O
// counters reset — restore, like construction, is not charged to the
// algorithm.
func restoreStore(cfg Config, si *snapshot.StoreImage, dims int, epoch uint64, rebase bool, frac float64) (*pagestore.VersionedStore, *pagestore.BufferPool, *rtree.Tree, error) {
	scfg := cfg
	scfg.PageSize = si.PageSize
	inner, err := scfg.newStore()
	if err != nil {
		return nil, nil, nil, err
	}
	if inner.PageSize() != si.PageSize {
		inner.Close()
		return nil, nil, nil, fmt.Errorf("assign: store factory page size %d, snapshot has %d", inner.PageSize(), si.PageSize)
	}
	vs := pagestore.NewVersioned(inner)
	vs.SetSerializedAcquire(true)
	if rebase {
		vs.SetBaseEpoch(epoch - 1)
	}
	bad := func(format string, args ...any) (*pagestore.VersionedStore, *pagestore.BufferPool, *rtree.Tree, error) {
		vs.Close()
		return nil, nil, nil, fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
	}
	for id := int64(0); id < si.Next; id++ {
		got, err := vs.Allocate()
		if err != nil {
			vs.Close()
			return nil, nil, nil, err
		}
		if int64(got) != id {
			vs.Close()
			return nil, nil, nil, fmt.Errorf("assign: restore store allocated page %d, want %d (non-sequential factory store)", got, id)
		}
	}
	rootSeen := false
	next := int64(0)
	for i := range si.Pages {
		pg := &si.Pages[i]
		// Free the hole between the previous image and this one.
		for ; next < pg.ID; next++ {
			if err := vs.Free(pagestore.PageID(next)); err != nil {
				vs.Close()
				return nil, nil, nil, err
			}
		}
		if err := vs.WritePage(pagestore.PageID(pg.ID), pg.Data); err != nil {
			vs.Close()
			return nil, nil, nil, err
		}
		if pg.ID == si.Root {
			rootSeen = true
		}
		next = pg.ID + 1
	}
	for ; next < si.Next; next++ {
		if err := vs.Free(pagestore.PageID(next)); err != nil {
			vs.Close()
			return nil, nil, nil, err
		}
	}
	if !rootSeen {
		return bad("tree root page %d not in image", si.Root)
	}
	pool := scfg.newBuildPool(vs)
	if frac >= 0 {
		if err := pool.Resize(pagestore.CapacityFromFraction(vs.NumPages(), frac)); err != nil {
			vs.Close()
			return nil, nil, nil, err
		}
		if err := pool.Clear(); err != nil {
			vs.Close()
			return nil, nil, nil, err
		}
	}
	vs.IO().Reset()
	tree, err := rtree.FromMeta(pool, dims, rtree.Meta{
		Root:   pagestore.PageID(si.Root),
		Height: si.Height,
		Size:   si.Size,
	})
	if err != nil {
		return bad("%v", err)
	}
	return vs, pool, tree, nil
}
