package assign

import (
	"math/rand"
	"testing"
)

// diskFAlgorithms are the Section 7.6 configurations: identical matchings,
// different I/O accounting.
var diskFAlgorithms = []struct {
	name string
	run  func(*Problem, Config) (*Result, error)
}{
	{"SBDiskFuncs", SBDiskFuncs},
	{"ChainDiskFuncs", ChainDiskFuncs},
	{"BruteForceDiskFuncs", BruteForceDiskFuncs},
}

func TestDiskFuncVariantsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	// Swapped cardinalities, as in Figure 17: more functions than objects.
	p := randProblem(rng, 120, 30, 3)
	want, err := Oracle(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range diskFAlgorithms {
		t.Run(alg.name, func(t *testing.T) {
			got, err := alg.run(p, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, alg.name, got.Pairs, want.Pairs)
		})
	}
}

func TestDiskFuncVariantsChargeFunctionIO(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := randProblem(rng, 150, 40, 3)
	for _, alg := range diskFAlgorithms {
		got, err := alg.run(p, testCfg())
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if got.Stats.IO.Accesses() == 0 {
			t.Errorf("%s: expected function-side I/O to be charged", alg.name)
		}
	}
}

func TestSBAltBeatsSBDiskOnFunctionIO(t *testing.T) {
	// The Figure 17 headline: batch search reads each list page at most
	// once per loop and random-accesses each function at most once per
	// loop, while per-object TA searches re-scan independently. In the
	// paper's regime (|F| >> |O|, D >= 4) SB-alt must use less I/O.
	rng := rand.New(rand.NewSource(22))
	p := randProblem(rng, 2000, 80, 5)
	cfg := Config{PageSize: 512, BufferFrac: 1.0, FuncBufferFrac: 0.02, OmegaFrac: 0.025}
	alt, err := SBAlt(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SBDiskFuncs(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "SBAltVsSBDisk", alt.Pairs, plain.Pairs)
	if alt.Stats.IO.Accesses() >= plain.Stats.IO.Accesses() {
		t.Errorf("SB-alt I/O = %d should be below per-object SB I/O = %d",
			alt.Stats.IO.Accesses(), plain.Stats.IO.Accesses())
	}
}
