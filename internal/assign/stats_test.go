package assign

import (
	"math/rand"
	"testing"
)

// TestDeterminism: identical inputs must produce byte-identical outputs
// and identical cost counters across repeated runs, for every algorithm.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := randProblem(rng, 50, 400, 3)
	for _, alg := range allAlgorithms {
		a, err := alg.run(p, testCfg())
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		b, err := alg.run(p, testCfg())
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if len(a.Pairs) != len(b.Pairs) {
			t.Fatalf("%s: pair counts differ across runs", alg.name)
		}
		for i := range a.Pairs {
			if a.Pairs[i] != b.Pairs[i] {
				t.Fatalf("%s: pair %d differs across runs: %+v vs %+v",
					alg.name, i, a.Pairs[i], b.Pairs[i])
			}
		}
		if a.Stats.IO.Accesses() != b.Stats.IO.Accesses() {
			t.Fatalf("%s: I/O differs across runs: %d vs %d",
				alg.name, a.Stats.IO.Accesses(), b.Stats.IO.Accesses())
		}
		if a.Stats.Loops != b.Stats.Loops {
			t.Fatalf("%s: loops differ across runs", alg.name)
		}
	}
}

// TestOmegaTradeoff: a smaller Ω must never change the matching, only
// force more TA restarts (the Section 5.1 memory/time trade-off).
func TestOmegaTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := randProblem(rng, 80, 500, 3)
	big, err := SB(p, Config{PageSize: 512, BufferFrac: 0.1, OmegaFrac: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	small, err := SB(p, Config{PageSize: 512, BufferFrac: 0.1, OmegaFrac: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "omega", small.Pairs, big.Pairs)
	if small.Stats.TASorted < big.Stats.TASorted {
		t.Errorf("small Ω should not reduce sorted accesses: %d vs %d",
			small.Stats.TASorted, big.Stats.TASorted)
	}
}

// TestBufferSizeDoesNotChangeSBIO: Theorem 1 at the algorithm level —
// SB's I/O is identical for any buffer size, because no node is ever
// read twice.
func TestBufferSizeDoesNotChangeSBIO(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := randProblem(rng, 60, 1500, 3)
	var baseline int64 = -1
	for _, frac := range []float64{-1, 0.01, 0.05, 0.5} {
		res, err := SB(p, Config{PageSize: 512, BufferFrac: frac})
		if err != nil {
			t.Fatal(err)
		}
		if baseline == -1 {
			baseline = res.Stats.IO.Accesses()
			continue
		}
		if res.Stats.IO.Accesses() != baseline {
			t.Errorf("buffer %v: SB I/O = %d, want %d (buffer-independent)",
				frac, res.Stats.IO.Accesses(), baseline)
		}
	}
}

// TestBruteForceMemoryExceedsSB reproduces the Figure 9 memory ordering
// at test scale.
func TestBruteForceMemoryExceedsSB(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	p := randProblem(rng, 150, 2000, 3)
	cfg := Config{PageSize: 512, BufferFrac: 0.02}
	sb, err := SB(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BruteForce(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Stats.PeakMem <= sb.Stats.PeakMem {
		t.Errorf("BruteForce memory (%d) should exceed SB (%d): it holds one search heap per function",
			bf.Stats.PeakMem, sb.Stats.PeakMem)
	}
}

// TestChainCostsMoreIOThanBruteForce: every Chain probe is a fresh
// root-to-leaf top-1 search, while Brute Force resumes retained heaps —
// so Chain pays more object-index I/O (the Figure 9 ordering).
func TestChainCostsMoreIOThanBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	p := randProblem(rng, 100, 1000, 3)
	cfg := Config{PageSize: 512, BufferFrac: 0.02}
	bf, err := BruteForce(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Chain(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Stats.IO.Accesses() <= bf.Stats.IO.Accesses() {
		t.Errorf("Chain I/O (%d) should exceed Brute Force I/O (%d)",
			ch.Stats.IO.Accesses(), bf.Stats.IO.Accesses())
	}
}
