package assign

import (
	"errors"
	"fmt"

	"fairassign/internal/rtree"
	"fairassign/internal/snapshot"
)

// Typed validation and failure-atomicity errors for mutations. Input
// validation happens before any workspace state is touched, so an error
// wrapping one of the ErrBad* sentinels (or ErrDuplicateID/ErrUnknownID)
// always leaves the workspace exactly as it was. An error wrapping
// ErrCorrupt means the opposite: a structural operation failed after the
// mutation started changing state, the workspace could not be restored,
// and only Close remains safe.
var (
	// ErrBadPoint is returned for NaN or ±Inf object attribute values —
	// they would poison the R-tree MBRs and every score comparison.
	ErrBadPoint = errors.New("assign: non-finite attribute")
	// ErrBadCapacity is returned for negative object or function
	// capacities.
	ErrBadCapacity = errors.New("assign: negative capacity")
	// ErrBadWeight is returned for NaN, ±Inf, or negative function
	// weights.
	ErrBadWeight = errors.New("assign: bad weight")
	// ErrBadGamma is returned for a NaN or ±Inf priority γ.
	ErrBadGamma = errors.New("assign: non-finite gamma")
	// ErrBadMutation is returned by Apply for a Mutation with an unknown
	// Kind.
	ErrBadMutation = errors.New("assign: bad mutation kind")
	// ErrCorrupt is returned by every Workspace method after a mutation
	// failed mid-application (a store or index error surfaced after state
	// was partially changed). The workspace is poisoned: queries could
	// return garbage, so everything except Close fails fast with this
	// error. Snapshots taken before the corrupting mutation stay valid —
	// they pin the last published (consistent) epoch.
	ErrCorrupt = errors.New("assign: workspace corrupt")
)

// MutationKind selects the operation one Mutation performs.
type MutationKind uint8

// Mutation kinds, mirroring the four single-mutation Workspace methods.
const (
	MutAddObject MutationKind = iota + 1
	MutRemoveObject
	MutAddFunction
	MutRemoveFunction
)

func (k MutationKind) String() string {
	switch k {
	case MutAddObject:
		return "AddObject"
	case MutRemoveObject:
		return "RemoveObject"
	case MutAddFunction:
		return "AddFunction"
	case MutRemoveFunction:
		return "RemoveFunction"
	default:
		return fmt.Sprintf("MutationKind(%d)", uint8(k))
	}
}

// Mutation is one workspace mutation in a form that can be queued and
// batched: exactly the fields its Kind reads are meaningful (Object for
// MutAddObject, Function for MutAddFunction, ID for the removals).
type Mutation struct {
	Kind     MutationKind
	Object   Object
	Function Function
	ID       uint64
}

// Apply applies a batch of mutations as one group commit: the whole
// batch is validated up front (a validation error leaves the workspace
// untouched), then each mutation's structural change and chain repair
// run in arrival order under one writer-lock hold, and a single epoch is
// published at the end — so open snapshots observe either none or all of
// the batch, and the per-epoch cost (buffer flush, version publish, and
// the lazy snapshot capture the next reader performs) is paid once per
// batch instead of once per mutation.
//
// Repair runs per mutation, not once over the pooled free-unit queue:
// chain repair's quiescence argument assumes every latent blocking pair
// involves a queued free unit, and pooling the structural phases of a
// removal and an arrival can hand a freed unit to a proposing arrival
// before the vacancy is offered to the fully-assigned functions that
// outbid it — leaving a blocking pair no queue item resolves. Applying
// repair in arrival order keeps the state transitions identical to the
// k single-mutation calls (the batch conformance sweep asserts the
// matchings match), including batches that add and later remove the
// same ID; what the batch amortizes is the commit, which is the
// dominant per-mutation cost on a workspace with a warm buffer pool.
// Duplicate/unknown-ID validation sees the state each mutation would
// see sequentially.
//
// Error atomicity: a validation error (wrapping ErrBadPoint,
// ErrBadCapacity, ErrBadWeight, ErrBadGamma, ErrBadMutation,
// ErrDuplicateID, or ErrUnknownID, and naming the offending batch index)
// rejects the whole batch with no state change. A structural failure
// mid-application (store I/O) poisons the workspace with ErrCorrupt,
// exactly as it would a single mutation.
func (w *Workspace) Apply(muts []Mutation) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.applyLocked(muts)
}

func (w *Workspace) applyLocked(muts []Mutation) error {
	if err := w.liveLocked(); err != nil {
		return err
	}
	if len(muts) == 0 {
		return nil
	}
	batch := len(muts) > 1
	var bv *batchView
	if batch {
		bv = &batchView{w: w}
	}
	for i := range muts {
		if err := w.validateMutationLocked(&muts[i], bv); err != nil {
			if batch {
				return fmt.Errorf("assign: batch mutation %d (%s): %w", i, muts[i].Kind, err)
			}
			return err
		}
		if bv != nil {
			bv.record(&muts[i])
		}
	}
	for i := range muts {
		if err := w.mutateLocked(&muts[i]); err != nil {
			if batch {
				err = fmt.Errorf("batch mutation %d (%s): %w", i, muts[i].Kind, err)
			}
			return w.corruptLocked(err)
		}
		if err := w.repair(); err != nil {
			if batch {
				err = fmt.Errorf("batch mutation %d (%s): repair: %w", i, muts[i].Kind, err)
			}
			return w.corruptLocked(err)
		}
		w.mutations++
	}
	// Write-ahead barrier: the batch is encoded, checksummed, appended,
	// and (unless WALNoSync) fsynced before the epoch publishes, so a
	// batch whose Apply returned nil survives power loss. The record
	// carries the epoch commitLocked is about to publish; the WAL writer
	// enforces contiguity. A durability failure poisons the workspace —
	// the in-memory state is ahead of what can be made durable.
	if w.dur != nil && w.dur.log != nil {
		if err := w.dur.log.Append(w.epoch+1, snapshot.EncodeBatch(mutationRecs(muts))); err != nil {
			return w.corruptLocked(err)
		}
		if !w.dur.noSync {
			if err := w.dur.log.Sync(); err != nil {
				return w.corruptLocked(err)
			}
		}
	}
	if err := w.commitLocked(); err != nil {
		return w.corruptLocked(err)
	}
	return nil
}

// corruptLocked poisons the workspace after a structural failure: the
// cached published state is dropped (already-open views keep serving
// their pinned, still-consistent epochs), every later method call fails
// with ErrCorrupt, and the returned error wraps both the sentinel and
// the cause. Caller holds w.mu.
func (w *Workspace) corruptLocked(cause error) error {
	if w.corrupt == nil {
		w.corrupt = cause
		w.dropPubLocked()
	}
	return fmt.Errorf("%w: %w", ErrCorrupt, cause)
}

// batchView overlays the net liveness effect of a validated batch prefix
// on the live population, so pre-flight duplicate/unknown-ID checks see
// exactly the state sequential application would.
type batchView struct {
	w                *Workspace
	objAdd, objDel   map[uint64]bool
	funcAdd, funcDel map[uint64]bool
}

func (b *batchView) objLive(id uint64) bool {
	if b.objAdd[id] {
		return true
	}
	if b.objDel[id] {
		return false
	}
	_, ok := b.w.objs[id]
	return ok
}

func (b *batchView) funcLive(id uint64) bool {
	if b.funcAdd[id] {
		return true
	}
	if b.funcDel[id] {
		return false
	}
	_, ok := b.w.funcs[id]
	return ok
}

func (b *batchView) record(m *Mutation) {
	switch m.Kind {
	case MutAddObject:
		if b.objAdd == nil {
			b.objAdd = make(map[uint64]bool)
		}
		b.objAdd[m.Object.ID] = true
	case MutRemoveObject:
		if b.objDel == nil {
			b.objDel = make(map[uint64]bool)
		}
		delete(b.objAdd, m.ID)
		b.objDel[m.ID] = true
	case MutAddFunction:
		if b.funcAdd == nil {
			b.funcAdd = make(map[uint64]bool)
		}
		b.funcAdd[m.Function.ID] = true
	case MutRemoveFunction:
		if b.funcDel == nil {
			b.funcDel = make(map[uint64]bool)
		}
		delete(b.funcAdd, m.ID)
		b.funcDel[m.ID] = true
	}
}

// validateMutationLocked checks one mutation against the current state
// (overlaid with the batch prefix when bv is non-nil) without touching
// any workspace structure. Caller holds w.mu.
func (w *Workspace) validateMutationLocked(m *Mutation, bv *batchView) error {
	objLive := func(id uint64) bool {
		if bv != nil {
			return bv.objLive(id)
		}
		_, ok := w.objs[id]
		return ok
	}
	funcLive := func(id uint64) bool {
		if bv != nil {
			return bv.funcLive(id)
		}
		_, ok := w.funcs[id]
		return ok
	}
	return ValidateMutation(w.Dims(), m, objLive, funcLive)
}

// mutateLocked performs the structural phase of one already-validated
// mutation: maps, trees, capacity tables, availability frontier, and the
// repair queue. Any error is a mid-mutation failure the caller must
// escalate to corruptLocked. Caller holds w.mu.
func (w *Workspace) mutateLocked(m *Mutation) error {
	switch m.Kind {
	case MutAddObject:
		return w.addObjectLocked(m.Object)
	case MutRemoveObject:
		return w.removeObjectLocked(m.ID)
	case MutAddFunction:
		return w.addFunctionLocked(m.Function)
	default:
		return w.removeFunctionLocked(m.ID)
	}
}

func (w *Workspace) addObjectLocked(o Object) error {
	pt := o.Point.Clone()
	w.objs[o.ID] = Object{ID: o.ID, Point: pt, Capacity: o.Capacity}
	if err := w.st.tree.Insert(rtree.Item{ID: o.ID, Point: pt}); err != nil {
		return err
	}
	w.st.objCaps.add(o.ID, o.capacity())
	if err := w.avail.Insert(rtree.Item{ID: o.ID, Point: pt}); err != nil {
		return err
	}
	w.pushObj(o.ID)
	return nil
}

func (w *Workspace) removeObjectLocked(id uint64) error {
	o := w.objs[id]
	// Invalidate the availability frontier first: an exhausted object
	// already left it (Discarded on exhaustion), so a second Discard
	// would only grow the tombstone set.
	if w.st.objCaps.remaining[id] > 0 {
		if err := w.avail.Discard(id); err != nil {
			return err
		}
	}
	for _, p := range append([]wsPair(nil), w.byObj[id]...) {
		w.unlink(p)
		w.st.funcCaps.restore(p.fid)
		w.pushFunc(p.fid)
	}
	delete(w.byObj, id)
	if err := w.st.tree.Delete(rtree.Item{ID: id, Point: o.Point}); err != nil {
		return err
	}
	w.st.objCaps.drop(id)
	delete(w.objs, id)
	return nil
}

func (w *Workspace) addFunctionLocked(f Function) error {
	weights := make([]float64, len(f.Weights))
	copy(weights, f.Weights)
	f.Weights = weights
	ew := f.Effective()
	w.funcs[f.ID] = f
	w.eff[f.ID] = ew
	if f.Fam.IsLinear() {
		if err := w.ftree.Insert(rtree.Item{ID: f.ID, Point: ew}); err != nil {
			return err
		}
	} else {
		w.nonlin.Add(f.ID, f.Fam, ew)
	}
	w.st.funcCaps.add(f.ID, f.capacity())
	w.pushFunc(f.ID)
	return nil
}

func (w *Workspace) removeFunctionLocked(id uint64) error {
	for _, p := range append([]wsPair(nil), w.byFunc[id]...) {
		w.unlink(p)
		w.restoreObjectUnit(p.oid)
		w.pushObj(p.oid)
	}
	delete(w.byFunc, id)
	if !w.nonlin.Remove(id) {
		if err := w.ftree.Delete(rtree.Item{ID: id, Point: w.eff[id]}); err != nil {
			return err
		}
	}
	w.st.funcCaps.drop(id)
	delete(w.funcs, id)
	delete(w.eff, id)
	return nil
}
