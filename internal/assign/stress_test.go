package assign

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairassign/internal/geom"
	"fairassign/internal/score"
)

// stressStep is one scripted mutation, applied identically to the
// workspace and to the in-memory model used for cold reference solves.
type stressStep struct {
	kind int // 0 add obj, 1 remove obj, 2 add func, 3 remove func
	obj  Object
	fn   Function
	id   uint64
}

// stressScript precomputes a deterministic mutation script over a model
// population, plus — per prefix k — the cold SB matching and the object
// set after the first k mutations. Readers use Stats().Mutations to
// identify which prefix their snapshot pinned.
type stressScript struct {
	steps    []stressStep
	expected [][]Pair                // expected[k]: cold solve after k mutations
	objects  []map[uint64]geom.Point // objects[k]: live objects after k mutations
}

// randStressFam draws a scoring family for stress traffic: a linear
// majority (the paper's workload) with every non-linear family mixed
// in, so concurrent snapshot validation covers OWA/Chebyshev/Lp repair
// paths too.
func randStressFam(rng *rand.Rand) score.Family {
	switch rng.Intn(8) {
	case 0:
		return score.Family{Kind: score.OWA}
	case 1:
		return score.Family{Kind: score.Chebyshev}
	case 2:
		return score.Family{Kind: score.Lp, P: float64(2 + rng.Intn(2))}
	default:
		return score.Family{}
	}
}

func buildStressScript(t *testing.T, base *Problem, muts int, seed int64) *stressScript {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Mix scorer kinds into the base population, in place: the caller
	// hands the same base to NewWorkspace, so the workspace build and
	// the model cold solves must see identical families.
	for i := range base.Functions {
		base.Functions[i].Fam = randStressFam(rng)
	}
	model := &Problem{Dims: base.Dims}
	model.Objects = append([]Object(nil), base.Objects...)
	model.Functions = append([]Function(nil), base.Functions...)
	sc := &stressScript{}
	nextID := uint64(1 << 32)

	record := func() {
		snap := &Problem{Dims: model.Dims}
		snap.Objects = append([]Object(nil), model.Objects...)
		snap.Functions = append([]Function(nil), model.Functions...)
		cold, err := SB(snap, testCfg())
		if err != nil {
			t.Fatalf("cold solve of prefix %d: %v", len(sc.expected), err)
		}
		sc.expected = append(sc.expected, cold.Pairs)
		objs := make(map[uint64]geom.Point, len(model.Objects))
		for _, o := range model.Objects {
			objs[o.ID] = o.Point
		}
		sc.objects = append(sc.objects, objs)
	}
	record() // prefix 0

	for len(sc.steps) < muts {
		var st stressStep
		switch k := rng.Intn(4); {
		case k == 1 && len(model.Objects) > 8:
			i := rng.Intn(len(model.Objects))
			st = stressStep{kind: 1, id: model.Objects[i].ID}
			model.Objects = append(model.Objects[:i], model.Objects[i+1:]...)
		case k == 3 && len(model.Functions) > 3:
			i := rng.Intn(len(model.Functions))
			st = stressStep{kind: 3, id: model.Functions[i].ID}
			model.Functions = append(model.Functions[:i], model.Functions[i+1:]...)
		case k == 2:
			nextID++
			f := Function{ID: nextID, Weights: randWeights(rng, model.Dims), Fam: randStressFam(rng)}
			st = stressStep{kind: 2, fn: f}
			model.Functions = append(model.Functions, f)
		default:
			nextID++
			o := Object{ID: nextID, Point: randPoint(rng, model.Dims)}
			st = stressStep{kind: 0, obj: o}
			model.Objects = append(model.Objects, o)
		}
		sc.steps = append(sc.steps, st)
		record()
	}
	return sc
}

func (st stressStep) apply(ws *Workspace) error {
	switch st.kind {
	case 0:
		return ws.AddObject(st.obj)
	case 1:
		return ws.RemoveObject(st.id)
	case 2:
		return ws.AddFunction(st.fn)
	default:
		return ws.RemoveFunction(st.id)
	}
}

// scoreMultisetEqual compares matchings as (function, object) multisets
// with scores equal to within roundoff — the cross-algorithm contract
// (the workspace and SB may legitimately emit different orders).
func scoreMultisetEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	type key struct{ f, o uint64 }
	count := make(map[key]int, len(b))
	score := make(map[key]float64, len(b))
	for _, p := range b {
		count[key{p.FuncID, p.ObjectID}]++
		score[key{p.FuncID, p.ObjectID}] = p.Score
	}
	for _, p := range a {
		k := key{p.FuncID, p.ObjectID}
		if count[k] == 0 {
			return false
		}
		count[k]--
		if math.Abs(score[k]-p.Score) > 1e-9 {
			return false
		}
	}
	return true
}

func stressMutationCount() int {
	if s := os.Getenv("FAIRASSIGN_STRESS_MUTATIONS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	if testing.Short() {
		return 80
	}
	return 240
}

// TestWorkspaceSnapshotStress runs one churn writer against N
// concurrent snapshot readers over hundreds of mutations (run under
// -race in CI; bound the script with FAIRASSIGN_STRESS_MUTATIONS).
// Every reader asserts full snapshot consistency, not just
// crash-freedom: the matching its view returns must be score-identical
// to a cold SB solve of exactly the mutation-script prefix the view
// pinned, its TopK answers must rank exactly the objects live at that
// prefix, and repeated reads of one view must be bit-stable.
func TestWorkspaceSnapshotStress(t *testing.T) {
	muts := stressMutationCount()
	seed := int64(20260726)
	rng := rand.New(rand.NewSource(seed))
	base := randProblem(rng, 9, 48, 3)
	script := buildStressScript(t, base, muts, seed+1)

	ws, err := NewWorkspace(base, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	readers := 4
	if n := runtime.GOMAXPROCS(0) - 1; n < readers && n > 0 {
		readers = n
	}
	var (
		done      atomic.Bool
		readCount atomic.Int64
		wg        sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed + 100 + int64(r)))
			for !done.Load() {
				v, err := ws.Snapshot()
				if err != nil {
					t.Errorf("reader %d: Snapshot: %v", r, err)
					return
				}
				k := int(v.Stats().Mutations)
				if k < 0 || k >= len(script.expected) {
					t.Errorf("reader %d: view pins unknown prefix %d", r, k)
					v.Close()
					return
				}
				pairs := v.Pairs()
				if !scoreMultisetEqual(pairs, script.expected[k]) {
					t.Errorf("reader %d: prefix %d: view matching differs from cold solve of that prefix", r, k)
					v.Close()
					return
				}
				// Re-reads of one view are bit-stable (shared immutable state).
				again := v.Pairs()
				for i := range pairs {
					if pairs[i] != again[i] {
						t.Errorf("reader %d: view pairs unstable at %d", r, i)
						v.Close()
						return
					}
				}
				// Ranked search over the pinned index epoch must rank
				// exactly the prefix's object population.
				w := randWeights(rrng, v.Dims())
				items, scores, err := v.TopK(w, 5)
				if err != nil {
					t.Errorf("reader %d: prefix %d: TopK: %v", r, k, err)
					v.Close()
					return
				}
				objs := script.objects[k]
				last := math.Inf(1)
				for i, it := range items {
					pt, live := objs[it.ID]
					if !live {
						t.Errorf("reader %d: prefix %d: TopK returned object %d not live at that prefix", r, k, it.ID)
						v.Close()
						return
					}
					if got, want := scores[i], geom.Dot(w, pt); math.Abs(got-want) > 1e-12 {
						t.Errorf("reader %d: prefix %d: TopK score %v for object %d, want %v", r, k, got, it.ID, want)
					}
					if scores[i] > last {
						t.Errorf("reader %d: prefix %d: TopK scores not monotone", r, k)
					}
					last = scores[i]
				}
				if want := min(5, len(objs)); len(items) != want {
					t.Errorf("reader %d: prefix %d: TopK returned %d items, want %d", r, k, len(items), want)
				}
				// Full stability audit on a sample of reads (it is the
				// expensive O(|F|·|O|) check; the multiset comparison
				// above already pins the matching exactly).
				if readCount.Load()%8 == 0 {
					if err := v.VerifyStable(); err != nil {
						t.Errorf("reader %d: prefix %d: %v", r, k, err)
					}
				}
				v.Close()
				readCount.Add(1)
			}
		}(r)
	}

	// The writer additionally pins one long-lived view every 40
	// mutations and checks, 20 mutations later, that it stayed frozen.
	type pinned struct {
		v     *View
		pairs []Pair
		at    int
	}
	var held []pinned
	for i, st := range script.steps {
		if err := st.apply(ws); err != nil {
			t.Fatalf("writer: step %d: %v", i, err)
		}
		if i%4 == 0 {
			// Give readers a scheduling window: real churn has think
			// time, and the point is interleaving, not writer throughput.
			time.Sleep(200 * time.Microsecond)
		}
		if i%40 == 0 {
			v, err := ws.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			held = append(held, pinned{v: v, pairs: clonePairs(v.Pairs()), at: i})
		}
		for h := 0; h < len(held); h++ {
			if i-held[h].at >= 20 {
				identicalPairs(t, "long-lived pinned view", held[h].v.Pairs(), held[h].pairs)
				held[h].v.Close()
				held = append(held[:h], held[h+1:]...)
				h--
			}
		}
	}
	done.Store(true)
	wg.Wait()
	for _, h := range held {
		identicalPairs(t, "long-lived pinned view (final)", h.v.Pairs(), h.pairs)
		h.v.Close()
	}
	if readCount.Load() == 0 {
		t.Fatal("no reader completed a single validated read")
	}
	t.Logf("stress: %d mutations, %d readers, %d validated snapshot reads", muts, readers, readCount.Load())

	// Epoch-reclamation leak check under concurrency: once every view is
	// closed, only one version per live page may remain. The workspace
	// itself may cache one snapshot of the *current* epoch (the lazily
	// captured published state), which pins no history.
	if st := ws.vstore.DebugStats(); st.LiveSnapshots > 1 || st.RetiredQueue != 0 || st.TotalVersions != st.LivePages {
		t.Fatalf("history leaked after stress: %+v", st)
	}
	if err := ws.VerifyStable(); err != nil {
		t.Fatal(err)
	}
	final := ws.Pairs()
	if !scoreMultisetEqual(final, script.expected[len(script.expected)-1]) {
		t.Fatal("final workspace matching differs from cold solve of the full script")
	}
}
