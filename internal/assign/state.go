package assign

import (
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/skyline"
	"fairassign/internal/ta"
)

// solveState is the shared problem state behind every solver: the
// disk-resident object index, the TA coefficient lists, the capacity
// tables, and the skyline maintenance structures. One-shot solvers build
// it, run, and release it; the long-lived Workspace keeps it alive and
// mutates it in place across arrivals and departures.
//
// Lifecycle: newSolveState (build) → ensureLists / buildMaintainer /
// buildDeltaSky (query-side structures, on demand) → algorithm loops
// (query + mutate) → release.
type solveState struct {
	p   *Problem
	cfg Config

	// Object index: a disk-resident R-tree over O behind an LRU buffer
	// pool, built through the configured store factory.
	store pagestore.Store
	pool  *pagestore.BufferPool
	tree  *rtree.Tree

	// Search-side structures, built on demand inside the timed region.
	lists    *ta.Lists
	maint    *skyline.Maintainer
	delta    *skyline.DeltaSky
	funcCaps *capTable
	objCaps  *capTable

	mem metrics.MemTracker
}

// newStore builds one physical page store through the configured
// factory (an in-memory simulated disk by default). Every store a
// solver creates — the object index and any function-side structure —
// goes through here, so a FileStore-substituting test exercises all of
// them.
func (c Config) newStore() (pagestore.Store, error) {
	if c.StoreFactory != nil {
		return c.StoreFactory(c.pageSize())
	}
	return pagestore.NewMemStore(c.pageSize()), nil
}

// newBuildPool wraps a store with a construction-sized buffer pool,
// honoring the decoded-node-cache knob. Callers that simulate a small
// buffer shrink it to the experiment's fraction after building.
func (c Config) newBuildPool(store pagestore.Store) *pagestore.BufferPool {
	pool := pagestore.NewBufferPool(store, 1<<20)
	if c.DisableNodeCache {
		pool.SetDecodedCache(false)
	}
	return pool
}

// newFuncStore builds a function-side store + pool pair (Chain's weight
// R-tree, SBAlt's coefficient lists, BruteForce's paged states) through
// the same factory and knobs as the object index.
func (c Config) newFuncStore() (pagestore.Store, *pagestore.BufferPool, error) {
	store, err := c.newStore()
	if err != nil {
		return nil, nil, err
	}
	return store, c.newBuildPool(store), nil
}

// newSolveState validates the problem and builds the object index. The
// index is bulk-loaded, then the buffer is shrunk to the experiment's
// fraction, cleared, and the I/O counters reset so that runs start cold
// and index construction is not charged to the algorithm — matching the
// paper's setup where O is a persistent indexed dataset.
func newSolveState(p *Problem, cfg Config) (*solveState, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	store, err := cfg.newStore()
	if err != nil {
		return nil, err
	}
	pool := cfg.newBuildPool(store)
	items := make([]rtree.Item, len(p.Objects))
	for i, o := range p.Objects {
		items[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	tree, err := rtree.BulkLoadWorkers(pool, p.Dims, items, cfg.treeFill(), cfg.buildWorkers())
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := pool.Flush(); err != nil {
		store.Close()
		return nil, err
	}
	if err := pool.Resize(pagestore.CapacityFromFraction(tree.NumPages(), cfg.bufferFrac())); err != nil {
		store.Close()
		return nil, err
	}
	if err := pool.Clear(); err != nil {
		store.Close()
		return nil, err
	}
	store.IO().Reset()
	return &solveState{p: p, cfg: cfg, store: store, pool: pool, tree: tree}, nil
}

// buildCaps initializes the two capacity tables.
func (s *solveState) buildCaps() {
	s.funcCaps = newFuncCaps(s.p.Functions)
	s.objCaps = newObjectCaps(s.p.Objects)
}

// ensureLists builds the TA coefficient lists on first use.
func (s *solveState) ensureLists() error {
	if s.lists != nil {
		return nil
	}
	lists, err := ta.NewLists(taFuncs(s.p.Functions), s.p.Dims)
	if err != nil {
		return err
	}
	s.lists = lists
	return nil
}

// buildMaintainer computes the initial skyline with the plist-tracking
// BBS and retains the maintainer on the state.
func (s *solveState) buildMaintainer() (*skyline.Maintainer, error) {
	m, err := skyline.NewMaintainer(s.tree, &s.mem)
	if err != nil {
		return nil, err
	}
	s.maint = m
	return m, nil
}

// buildDeltaSky computes the initial skyline with plain BBS for the
// DeltaSky comparison baseline.
func (s *solveState) buildDeltaSky() (*skyline.DeltaSky, error) {
	d, err := skyline.NewDeltaSky(s.tree, &s.mem)
	if err != nil {
		return nil, err
	}
	s.delta = d
	return d, nil
}

// release closes the object-index store. Results must be copied out
// (they are: Stats.IO is a value copy) before releasing.
func (s *solveState) release() {
	if s.store != nil {
		s.store.Close()
		s.store = nil
	}
}
