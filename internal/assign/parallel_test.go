package assign

import (
	"math"
	"math/rand"
	"testing"
)

// identicalRun asserts two results are byte-identical: same pairs in the
// same emission order with bit-equal scores. This is the determinism
// guarantee of the engine split — the pool engine must not merely produce
// an equivalent matching, but the exact sequential output.
func identicalRun(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", name, len(got.Pairs), len(want.Pairs))
	}
	for i := range got.Pairs {
		g, w := got.Pairs[i], want.Pairs[i]
		if g.FuncID != w.FuncID || g.ObjectID != w.ObjectID ||
			math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			t.Fatalf("%s: pair %d = (f%d,o%d,%v), want (f%d,o%d,%v)",
				name, i, g.FuncID, g.ObjectID, g.Score, w.FuncID, w.ObjectID, w.Score)
		}
	}
	if got.Stats.Loops != want.Stats.Loops {
		t.Errorf("%s: %d loops, want %d", name, got.Stats.Loops, want.Stats.Loops)
	}
}

func TestParallelSBIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, dims := range []int{2, 4} {
		p := randProblem(rng, 60, 300, dims)
		seq, err := SB(p, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, -1} {
			cfg := testCfg()
			cfg.Workers = workers
			par, err := SB(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			identicalRun(t, "SB", par, seq)
		}
	}
}

func TestParallelSBVariantsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	p := randProblem(rng, 25, 150, 3)
	for _, alg := range []struct {
		name string
		run  func(*Problem, Config) (*Result, error)
	}{
		{"SBBasic", SBBasic},
		{"SBDeltaSky", SBDeltaSky},
	} {
		seq, err := alg.run(p, testCfg())
		if err != nil {
			t.Fatal(err)
		}
		cfg := testCfg()
		cfg.Workers = 4
		par, err := alg.run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		identicalRun(t, alg.name, par, seq)
	}
}

func TestParallelSBWithCapacitiesAndPriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	p := randProblem(rng, 30, 200, 3)
	for i := range p.Functions {
		p.Functions[i].Capacity = 1 + rng.Intn(3)
		p.Functions[i].Gamma = float64(1 + rng.Intn(4))
	}
	for i := range p.Objects {
		p.Objects[i].Capacity = 1 + rng.Intn(2)
	}
	seq, err := SB(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.Workers = 4
	par, err := SB(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalRun(t, "SB+caps+gamma", par, seq)
	if err := IsStable(p, par.Pairs); err != nil {
		t.Fatal(err)
	}
}

func TestParallelProgressiveIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	p := randProblem(rng, 20, 120, 3)
	collect := func(workers int) []Pair {
		cfg := testCfg()
		cfg.Workers = workers
		g, err := NewProgressive(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var pairs []Pair
		for {
			pr, ok, err := g.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			pairs = append(pairs, pr)
		}
		return pairs
	}
	seq, par := collect(0), collect(4)
	identicalRun(t, "Progressive", &Result{Pairs: par}, &Result{Pairs: seq})
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, workers := range []int{1, 3, 8, 200} {
			hit := make([]int32, n)
			ParallelFor(n, workers, func(i int) { hit[i]++ })
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}
