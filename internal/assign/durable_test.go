package assign

import (
	"errors"
	"fmt"
	"math/rand"
	"path"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/snapshot"
	"fairassign/internal/vfs"
	"fairassign/internal/wal"
)

// tempFileStoreFactory hands out FileStores on distinct files under
// dir.
func tempFileStoreFactory(t *testing.T, dir string) func(int) (pagestore.Store, error) {
	t.Helper()
	n := 0
	return func(pageSize int) (pagestore.Store, error) {
		n++
		return pagestore.NewFileStore(path.Join(dir, fmt.Sprintf("store-%d.pages", n)), pageSize)
	}
}

func durableCfg(fs vfs.FS) Config {
	cfg := testCfg()
	cfg.Durable = true
	cfg.WALDir = "dur"
	cfg.FS = fs
	return cfg
}

// mutationScript returns n deterministic mutation batches against a
// workspace seeded from randProblem(rng, nf, no, dims).
func mutationScript(rng *rand.Rand, dims, n int) [][]Mutation {
	var batches [][]Mutation
	nextObj, nextFunc := uint64(10000), uint64(10000)
	for i := 0; i < n; i++ {
		var batch []Mutation
		for j := 0; j < 1+rng.Intn(3); j++ {
			switch rng.Intn(4) {
			case 0:
				pt := make(geom.Point, dims)
				for d := range pt {
					pt[d] = rng.Float64()
				}
				batch = append(batch, Mutation{Kind: MutAddObject,
					Object: Object{ID: nextObj, Point: pt, Capacity: 1 + rng.Intn(2)}})
				nextObj++
			case 1:
				w := make([]float64, dims)
				sum := 0.0
				for d := range w {
					w[d] = 0.05 + rng.Float64()
					sum += w[d]
				}
				for d := range w {
					w[d] /= sum
				}
				batch = append(batch, Mutation{Kind: MutAddFunction,
					Function: Function{ID: nextFunc, Weights: w, Gamma: 0.5 + rng.Float64()}})
				nextFunc++
			case 2:
				if nextObj > 10000 {
					batch = append(batch, Mutation{Kind: MutRemoveObject, ID: 10000 + uint64(rng.Intn(int(nextObj-10000)))})
				}
			default:
				if nextFunc > 10000 {
					batch = append(batch, Mutation{Kind: MutRemoveFunction, ID: 10000 + uint64(rng.Intn(int(nextFunc-10000)))})
				}
			}
		}
		if len(batch) == 0 {
			continue
		}
		batches = append(batches, batch)
	}
	return batches
}

// applyScript applies batches, skipping ones the workspace rejects
// (removal of an already-removed ID etc. — the script is generated
// blind); rejected batches mutate nothing, so both twins skip the same
// ones.
func applyScript(t *testing.T, w *Workspace, batches [][]Mutation) int {
	t.Helper()
	applied := 0
	for _, b := range batches {
		err := w.Apply(b)
		if err == nil {
			applied++
			continue
		}
		if errors.Is(err, ErrUnknownID) || errors.Is(err, ErrDuplicateID) {
			continue
		}
		t.Fatalf("apply: %v", err)
	}
	return applied
}

// checkTwin asserts two workspaces serve identical state: matching,
// logical stats (IO excluded: a freshly recovered buffer pool is cold,
// so physical reads legitimately differ), and availability frontier.
func checkTwin(t *testing.T, label string, got, want *Workspace) {
	t.Helper()
	samePairs(t, label, got.Pairs(), want.Pairs())
	gs, ws := got.Stats(), want.Stats()
	gs.IO, ws.IO = metrics.IOCounter{}, metrics.IOCounter{}
	if gs != ws {
		t.Fatalf("%s: stats = %+v, want %+v", label, gs, ws)
	}
	gp, wp := got.ProblemSnapshot(), want.ProblemSnapshot()
	if len(gp.Objects) != len(wp.Objects) || len(gp.Functions) != len(wp.Functions) {
		t.Fatalf("%s: population mismatch", label)
	}
	if err := got.VerifyStable(); err != nil {
		t.Fatalf("%s: recovered matching unstable: %v", label, err)
	}
}

func TestDurableWarmStartIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	p := randProblem(rng, 12, 60, 3)
	fs := vfs.NewMem()

	w, err := NewWorkspace(p, durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	batches := mutationScript(rng, 3, 20)
	applyScript(t, w, batches)
	if err := w.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Twin that never went through disk.
	twin, err := NewWorkspace(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	applyScript(t, twin, batches)

	r, err := OpenWorkspace(durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Recovery()
	if info == nil || info.BatchesReplayed != 0 || info.SnapshotsSkipped != 0 {
		t.Fatalf("recovery info = %+v (want pure warm-start)", info)
	}
	checkTwin(t, "warm-start", r, twin)
	if searches := r.Stats().Searches; searches != twin.Stats().Searches {
		t.Fatalf("restore issued repair searches: %d vs %d", searches, twin.Stats().Searches)
	}

	// The recovered workspace must keep behaving exactly like the twin.
	more := mutationScript(rng, 3, 8)
	applyScript(t, r, more)
	applyScript(t, twin, more)
	checkTwin(t, "post-recovery mutations", r, twin)
	checkAgainstResolve(t, r, "recovered workspace")
}

func TestDurableWALReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := randProblem(rng, 10, 50, 2)
	fs := vfs.NewMem()

	w, err := NewWorkspace(p, durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	batches := mutationScript(rng, 2, 15)
	applied := applyScript(t, w, batches)
	// No SaveSnapshot, no Close: simulate a hard crash — every applied
	// batch was fsynced to the WAL before it was acknowledged.

	twin, err := NewWorkspace(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	applyScript(t, twin, batches)

	r, err := OpenWorkspace(durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Recovery()
	if info.BatchesReplayed != applied {
		t.Fatalf("replayed %d batches, want %d", info.BatchesReplayed, applied)
	}
	if info.SnapshotEpoch != 1 {
		t.Fatalf("snapshot epoch = %d, want 1 (initial)", info.SnapshotEpoch)
	}
	checkTwin(t, "wal replay", r, twin)
	w.Close()
}

func TestDurableSnapshotFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	p := randProblem(rng, 8, 40, 2)
	fs := vfs.NewMem()

	w, err := NewWorkspace(p, durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	batches := mutationScript(rng, 2, 10)
	applyScript(t, w, batches)
	if err := w.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	newest := w.epoch
	more := mutationScript(rng, 2, 5)
	applyScript(t, w, more)
	w.Close()

	twin, err := NewWorkspace(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	applyScript(t, twin, batches)
	applyScript(t, twin, more)

	// Corrupt the newest snapshot: recovery must fall back to the
	// initial snapshot and replay the whole WAL instead.
	name := path.Join("dur", snapshot.FileName(newest))
	raw, err := fs.ReadAll(name)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	fs.WriteAll(name, raw)

	r, err := OpenWorkspace(durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Recovery()
	if info.SnapshotsSkipped != 1 {
		t.Fatalf("snapshots skipped = %d, want 1", info.SnapshotsSkipped)
	}
	if info.SnapshotEpoch != 1 {
		t.Fatalf("fallback snapshot epoch = %d, want 1", info.SnapshotEpoch)
	}
	if info.BatchesReplayed == 0 {
		t.Fatal("fallback must replay the WAL")
	}
	checkTwin(t, "fallback", r, twin)
}

func TestDurableTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := randProblem(rng, 8, 40, 2)
	fs := vfs.NewMem()

	w, err := NewWorkspace(p, durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	batches := mutationScript(rng, 2, 6)
	applied := applyScript(t, w, batches)
	if applied < 2 {
		t.Fatal("script too short")
	}

	// Tear the last record: chop bytes off the only segment.
	segs, err := wal.ListSegments(fs, "dur")
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	name := path.Join("dur", segs[0].Name)
	raw, _ := fs.ReadAll(name)
	fs.WriteAll(name, raw[:len(raw)-3])

	twin, err := NewWorkspace(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	// The twin applies everything except the torn final batch.
	n := 0
	for _, b := range batches {
		if twin.Apply(b) == nil {
			n++
			if n == applied-1 {
				break
			}
		}
	}

	r, err := OpenWorkspace(durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info := r.Recovery()
	if !info.TornTail {
		t.Fatal("torn tail not reported")
	}
	if info.BatchesReplayed != applied-1 {
		t.Fatalf("replayed %d, want %d", info.BatchesReplayed, applied-1)
	}
	checkTwin(t, "torn tail", r, twin)
	w.Close()
}

func TestDurableWALDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	p := randProblem(rng, 6, 30, 2)
	fs := vfs.NewMem()

	w, err := NewWorkspace(p, durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, w, mutationScript(rng, 2, 6))
	if err := w.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	applyScript(t, w, mutationScript(rng, 2, 4))
	w.Close()

	// Delete every snapshot except the initial one, and the first WAL
	// segment: the surviving segment starts past epoch 1 — an epoch gap
	// recovery must refuse to bridge.
	epochs, _ := snapshot.List(fs, "dur")
	for _, e := range epochs[1:] {
		fs.Remove(path.Join("dur", snapshot.FileName(e)))
	}
	segs, _ := wal.ListSegments(fs, "dur")
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	fs.Remove(path.Join("dur", segs[0].Name))

	_, err = OpenWorkspace(durableCfg(fs))
	if !errors.Is(err, ErrWALDiverged) {
		t.Fatalf("err = %v, want ErrWALDiverged", err)
	}
}

func TestDurableSnapshotOnlyMode(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	p := randProblem(rng, 8, 40, 2)
	fs := vfs.NewMem()

	cfg := testCfg()
	cfg.WALDir = "dur"
	cfg.FS = fs
	w, err := NewWorkspace(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := mutationScript(rng, 2, 8)
	applyScript(t, w, batches)
	if err := w.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot are NOT logged in this mode: a crash
	// rewinds to the snapshot.
	applyScript(t, w, mutationScript(rng, 2, 4))

	twin, err := NewWorkspace(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	applyScript(t, twin, batches)

	r, err := OpenWorkspace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info := r.Recovery(); info.BatchesReplayed != 0 || info.TornTail {
		t.Fatalf("recovery info = %+v", info)
	}
	checkTwin(t, "snapshot-only", r, twin)
	w.Close()

	if segs, _ := wal.ListSegments(fs, "dur"); len(segs) != 0 {
		t.Fatalf("snapshot-only mode wrote WAL segments: %v", segs)
	}
}

func TestDurableTypedErrors(t *testing.T) {
	fs := vfs.NewMem()
	rng := rand.New(rand.NewSource(76))
	p := randProblem(rng, 4, 20, 2)

	// No WALDir.
	if _, err := OpenWorkspace(testCfg()); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("OpenWorkspace without WALDir: %v", err)
	}
	cfg := testCfg()
	cfg.Durable = true
	if _, err := NewWorkspace(p, cfg); err == nil {
		t.Fatal("Durable without WALDir accepted")
	}

	// Empty durability dir.
	cfg = durableCfg(fs)
	if _, err := OpenWorkspace(cfg); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("OpenWorkspace on empty dir: %v", err)
	}

	// Fresh NewWorkspace must refuse a dir that already holds a
	// workspace.
	w, err := NewWorkspace(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := NewWorkspace(p, cfg); !errors.Is(err, ErrDurableDirInUse) {
		t.Fatalf("NewWorkspace on used dir: %v", err)
	}

	// SaveSnapshot on a non-durable workspace.
	nd, err := NewWorkspace(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.SaveSnapshot(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("SaveSnapshot non-durable: %v", err)
	}

	// Every snapshot corrupt -> error mentioning the cause.
	epochs, _ := snapshot.List(fs, "dur")
	for _, e := range epochs {
		name := path.Join("dur", snapshot.FileName(e))
		raw, _ := fs.ReadAll(name)
		raw[len(raw)-1] ^= 0xFF
		fs.WriteAll(name, raw)
	}
	if _, err := OpenWorkspace(cfg); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("all snapshots corrupt: %v", err)
	}
}

func TestDurableRotationPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := randProblem(rng, 6, 30, 2)
	fs := vfs.NewMem()

	w, err := NewWorkspace(p, durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for round := 0; round < 4; round++ {
		applyScript(t, w, mutationScript(rand.New(rand.NewSource(int64(100+round))), 2, 5))
		if err := w.SaveSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	epochs, err := snapshot.List(fs, "dur")
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(epochs))
	}
	segs, err := wal.ListSegments(fs, "dur")
	if err != nil {
		t.Fatal(err)
	}
	// Segments from before the older retained snapshot are gone; the
	// fallback snapshot's replay window and the live segment stay.
	for _, sg := range segs {
		_, base, err := wal.ReadHeader(fs, "dur", sg.Name)
		if err != nil {
			t.Fatal(err)
		}
		if base < epochs[0]-1 && base != 0 {
			// Every surviving segment must still be useful to some
			// retained snapshot lineage.
			next := false
			for _, other := range segs {
				if other.Seq == sg.Seq+1 {
					if _, nb, _ := wal.ReadHeader(fs, "dur", other.Name); nb > epochs[0] {
						next = true
					}
				}
			}
			if !next {
				t.Fatalf("stale segment %s (base %d) survived prune; snapshots %v", sg.Name, base, epochs)
			}
		}
	}
	// And the directory must still recover.
	r, err := OpenWorkspace(durableCfg(fs))
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

func TestDurableFileStoreBacked(t *testing.T) {
	// End-to-end on the real filesystem with FileStore-backed page
	// stores: durability does not depend on the in-memory test FS.
	rng := rand.New(rand.NewSource(78))
	p := randProblem(rng, 8, 40, 2)
	dir := t.TempDir()

	cfg := testCfg()
	cfg.Durable = true
	cfg.WALDir = path.Join(dir, "dur")
	cfg.StoreFactory = tempFileStoreFactory(t, dir)

	w, err := NewWorkspace(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := mutationScript(rng, 2, 10)
	applyScript(t, w, batches)
	w.Close() // flushes nothing extra: WAL already has every batch

	twin, err := NewWorkspace(p, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	applyScript(t, twin, batches)

	r, err := OpenWorkspace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	checkTwin(t, "filestore", r, twin)
}
