package assign

import (
	"errors"
	"slices"
	"sort"

	"fairassign/internal/metrics"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
)

// SBTwoSkylines is the prioritized variant of Section 6.2: alongside the
// object skyline, a skyline is maintained over the functions' effective
// coefficient vectors (α'_i = α_i·γ). A function dominated coefficient-
// wise by another of the SAME scoring family can never win any object
// (every family is monotone in its weights), so the best pairs always
// lie in Fsky × Osky where Fsky is the union of per-family function
// skylines — one skyline per distinct score.Family present, collapsing
// to the single skyline of the paper in the all-linear setting. With
// γ-scaled weights Fsky is small, and best pairs are found by
// exhaustive scan of the two (small) sets — faster than TA whose
// threshold goes loose for mixed priorities, and cheaper in memory (no
// TA states are kept), matching Figure 15.
func SBTwoSkylines(p *Problem, cfg Config) (*Result, error) {
	st, err := newSolveState(p, cfg)
	if err != nil {
		return nil, err
	}
	defer st.release()
	res := &Result{}
	var timer metrics.Timer
	timer.Start()

	maint, err := st.buildMaintainer()
	if err != nil {
		return nil, err
	}
	st.buildCaps()
	funcCaps, objCaps := st.funcCaps, st.objCaps

	// Live functions as weight-space points; Fsky recomputed with SFS
	// whenever a skyline function is assigned away (deletions are the
	// only updates, but removing a skyline function can surface functions
	// it was dominating).
	weights := make(map[uint64][]float64, len(p.Functions))
	fams := make(map[uint64]score.Family, len(p.Functions))
	liveFuncs := make([]rtree.Item, 0, len(p.Functions))
	for _, f := range p.Functions {
		w := f.Effective()
		weights[f.ID] = w
		fams[f.ID] = f.Fam
		liveFuncs = append(liveFuncs, rtree.Item{ID: f.ID, Point: w})
	}
	fsky := functionSkylines(liveFuncs, fams)
	fskyStale := false
	workers := cfg.workerCount()

	// Columnar mirrors of the two skylines, rebuilt only when their row
	// sets change: fblocks holds Fsky in per-family weight columns for
	// the batched reverse scan; skyCols holds Osky in per-dimension
	// columns for the batched forward scan. Both Best kernels are
	// bit-identical to the row-wise Eval/Score with the same (score,
	// lowest-ID) selection, and both are safe for the concurrent readers
	// of the worker fan-outs.
	fblocks := funcBlocksOf(p.Dims, fsky, fams)
	skyCols := skyline.NewColSet(p.Dims)

	for funcCaps.units > 0 && objCaps.units > 0 && maint.Size() > 0 && len(liveFuncs) > 0 {
		res.Stats.Loops++
		if fskyStale {
			fsky = functionSkylines(liveFuncs, fams)
			fblocks = funcBlocksOf(p.Dims, fsky, fams)
			fskyStale = false
		}
		sky := maint.Skyline()
		sortItemsByID(sky)
		sortItemsByID(fsky)
		skyCols.Reset(p.Dims)
		for _, o := range sky {
			skyCols.Append(o.ID, o.Point)
		}

		// Best function in Fsky for every skyline object, and the
		// reverse, by batched kernel scans of the (small) cross product.
		// Both scans fan out over the worker pool; each slot depends only
		// on its own input, so the merge is deterministic.
		byObj := make([]bestFunc, len(sky))
		ParallelFor(len(sky), workers, func(i int) {
			fid, s, ok := fblocks.Best(sky[i].Point, nil)
			byObj[i] = bestFunc{fid: fid, score: s, ok: ok}
		})
		oBest := make(map[uint64]bestFunc, len(sky))
		for i, o := range sky {
			if !byObj[i].ok {
				break
			}
			oBest[o.ID] = byObj[i]
		}
		fids := make([]uint64, 0, len(sky))
		seen := make(map[uint64]bool, len(sky))
		for _, bf := range byObj {
			if bf.ok && !seen[bf.fid] {
				seen[bf.fid] = true
				fids = append(fids, bf.fid)
			}
		}
		slices.Sort(fids)
		byFunc := make([]bestObj, len(fids))
		ParallelFor(len(fids), workers, func(i int) {
			sc := score.Scorer{Fam: fams[fids[i]], W: weights[fids[i]]}
			if j, s, ok := skyCols.Best(sc); ok {
				byFunc[i] = bestObj{oid: skyCols.ID(j), score: s}
			}
		})
		fBest := make(map[uint64]bestObj, len(fids))
		for i, fid := range fids {
			fBest[fid] = byFunc[i]
		}

		var removedObjs []uint64
		removedFuncs := make(map[uint64]bool)
		emitted := 0
		for _, fid := range fids {
			bo := fBest[fid]
			if oBest[bo.oid].fid != fid {
				continue
			}
			res.Pairs = append(res.Pairs, Pair{FuncID: fid, ObjectID: bo.oid, Score: bo.score})
			emitted++
			if funcCaps.consume(fid) {
				removedFuncs[fid] = true
			}
			if objCaps.consume(bo.oid) {
				removedObjs = append(removedObjs, bo.oid)
			}
		}
		if emitted == 0 {
			return nil, errors.New("assign: internal error: no stable pair emitted in a loop")
		}
		if len(removedFuncs) > 0 {
			keep := liveFuncs[:0]
			for _, f := range liveFuncs {
				if !removedFuncs[f.ID] {
					keep = append(keep, f)
				}
			}
			liveFuncs = keep
			fskyStale = true
		}
		if len(removedObjs) > 0 {
			if err := maint.Remove(removedObjs...); err != nil {
				return nil, err
			}
		}
		if cur := st.mem.Current + int64(len(fsky)+len(sky))*48; cur > res.Stats.PeakMem {
			res.Stats.PeakMem = cur
		}
	}

	timer.Stop()
	res.Stats.CPUTime = timer.Total
	res.Stats.IO = *st.store.IO()
	res.Stats.Pairs = int64(len(res.Pairs))
	res.Stats.NodeReads = maint.NodeReads
	if st.mem.Peak > res.Stats.PeakMem {
		res.Stats.PeakMem = st.mem.Peak
	}
	return res, nil
}

// funcBlocksOf packs a function item set into per-family columnar
// blocks for the batched reverse scan.
func funcBlocksOf(dims int, items []rtree.Item, fams map[uint64]score.Family) *score.FuncBlocks {
	fb := score.NewFuncBlocks(dims)
	for _, f := range items {
		fb.Add(f.ID, fams[f.ID], f.Point)
	}
	return fb
}

// functionSkylines computes the candidate function set of the two-
// skyline loop: one weight-space skyline per distinct scoring family,
// concatenated. Weight dominance only transfers to score dominance
// within one family, so the grouping is what keeps the pruning sound
// for mixed populations; a single (linear) family degenerates to one
// SFS pass over all functions, exactly the paper's structure. Family
// groups are visited in a deterministic order, though the scans over
// the returned set break ties by ID and do not depend on it.
func functionSkylines(liveFuncs []rtree.Item, fams map[uint64]score.Family) []rtree.Item {
	groups := make(map[score.Family][]rtree.Item)
	for _, f := range liveFuncs {
		fam := fams[f.ID]
		groups[fam] = append(groups[fam], f)
	}
	if len(groups) == 1 {
		for _, g := range groups {
			return skyline.SFS(g)
		}
	}
	keys := make([]score.Family, 0, len(groups))
	for fam := range groups {
		keys = append(keys, fam)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		return keys[i].P < keys[j].P
	})
	var out []rtree.Item
	for _, fam := range keys {
		out = append(out, skyline.SFS(groups[fam])...)
	}
	return out
}
