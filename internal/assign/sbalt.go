package assign

import (
	"errors"
	"slices"

	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
	"fairassign/internal/ta"
)

// SBAlt is the Section 7.6 variant for the setting where F does not fit
// in memory: the D coefficient lists are materialized on disk and, at
// every loop, the best functions for all current skyline objects are
// found in a single block-wise batch pass over the lists. No per-object
// TA state is kept (searches are not resumed), trading a little CPU for
// reading each list page at most once per loop regardless of |Osky| —
// the large I/O saving of Figure 17.
func SBAlt(p *Problem, cfg Config) (*Result, error) {
	st, err := newSolveState(p, cfg)
	if err != nil {
		return nil, err
	}
	defer st.release()

	// Materialize the coefficient lists on their own simulated disk; the
	// build is setup cost (like index construction) and is not charged.
	fstore, fpool, err := cfg.newFuncStore()
	if err != nil {
		return nil, err
	}
	defer fstore.Close()
	dl, err := ta.BuildDiskLists(fpool, taFuncs(p.Functions), p.Dims)
	if err != nil {
		return nil, err
	}
	if err := fpool.Resize(pagestore.CapacityFromFraction(dl.NumPages(), cfg.funcBufferFrac())); err != nil {
		return nil, err
	}
	if err := fpool.Clear(); err != nil {
		return nil, err
	}
	fstore.IO().Reset()

	res := &Result{}
	var timer metrics.Timer
	timer.Start()

	maint, err := st.buildMaintainer()
	if err != nil {
		return nil, err
	}
	st.buildCaps()
	funcCaps, objCaps := st.funcCaps, st.objCaps

	// An object's cached best function stays valid until that function is
	// assigned away (only removals ever happen), so each loop batch-
	// searches only the objects whose cache was invalidated — the paper's
	// "skip this object in the following iterations".
	bestCache := make(map[uint64]ta.BatchResult)

	for funcCaps.units > 0 && objCaps.units > 0 && maint.Size() > 0 {
		res.Stats.Loops++
		sky := maint.Skyline()
		sortItemsByID(sky)

		var batch []ta.BatchObject
		for _, o := range sky {
			if r, ok := bestCache[o.ID]; ok && r.OK && !dl.Removed(r.FuncID) {
				continue
			}
			batch = append(batch, ta.BatchObject{ID: o.ID, Point: o.Point})
		}
		if len(batch) > 0 {
			found, err := dl.BatchSearch(batch)
			if err != nil {
				return nil, err
			}
			res.Stats.TopKRuns++
			for id, r := range found {
				bestCache[id] = r
			}
		}

		type bestFunc struct {
			fid   uint64
			score float64
		}
		oBest := make(map[uint64]bestFunc, len(sky))
		noFuncs := false
		for _, o := range sky {
			r := bestCache[o.ID]
			if !r.OK {
				noFuncs = true
				break
			}
			oBest[o.ID] = bestFunc{fid: r.FuncID, score: r.Score}
		}
		if noFuncs {
			break
		}

		type bestObj struct {
			oid   uint64
			score float64
		}
		fBest := make(map[uint64]bestObj)
		fids := make([]uint64, 0, len(oBest))
		for _, bf := range oBest {
			if _, seen := fBest[bf.fid]; !seen {
				fBest[bf.fid] = bestObj{}
				fids = append(fids, bf.fid)
			}
		}
		slices.Sort(fids)
		for _, fid := range fids {
			w, err := dl.WeightsOf(fid)
			if err != nil {
				return nil, err
			}
			sc := score.Scorer{Fam: dl.FamilyOf(fid), W: w}
			it, s, _ := skyline.BestUnder(sc, sky)
			fBest[fid] = bestObj{oid: it.ID, score: s}
		}

		var removedObjs []uint64
		emitted := 0
		for _, fid := range fids {
			bo := fBest[fid]
			if oBest[bo.oid].fid != fid {
				continue
			}
			res.Pairs = append(res.Pairs, Pair{FuncID: fid, ObjectID: bo.oid, Score: bo.score})
			emitted++
			if funcCaps.consume(fid) {
				if err := dl.Remove(fid); err != nil {
					return nil, err
				}
			}
			if objCaps.consume(bo.oid) {
				removedObjs = append(removedObjs, bo.oid)
				delete(bestCache, bo.oid)
			}
		}
		if emitted == 0 {
			return nil, errors.New("assign: internal error: no stable pair emitted in a loop")
		}
		if len(removedObjs) > 0 {
			if err := maint.Remove(removedObjs...); err != nil {
				return nil, err
			}
		}
		if cur := st.mem.Current + int64(len(sky))*48; cur > res.Stats.PeakMem {
			res.Stats.PeakMem = cur
		}
	}

	timer.Stop()
	res.Stats.CPUTime = timer.Total
	res.Stats.IO = *st.store.IO()
	res.Stats.IO.Add(*fstore.IO())
	res.Stats.Pairs = int64(len(res.Pairs))
	res.Stats.TASorted = dl.Counters.SortedAccesses
	res.Stats.TARandom = dl.Counters.RandomAccesses
	res.Stats.NodeReads = maint.NodeReads
	if st.mem.Peak > res.Stats.PeakMem {
		res.Stats.PeakMem = st.mem.Peak
	}
	return res, nil
}
