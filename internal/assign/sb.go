package assign

import (
	"errors"
	"slices"

	"fairassign/internal/metrics"
	"fairassign/internal/rtree"
)

// skylineDriver abstracts the two maintenance strategies (UpdateSkyline
// and DeltaSky) behind the SB loop.
type skylineDriver interface {
	Skyline() []rtree.Item
	Remove(ids ...uint64) error
	Size() int
}

// sbMode selects the SB variant of Figure 8.
type sbMode int

const (
	modeOptimized sbMode = iota // Algorithm 3: resume + multi-pair + UpdateSkyline
	modeBasic                   // Algorithm 1 + UpdateSkyline, fresh TA, one pair/loop
	modeDeltaSky                // Algorithm 1 + DeltaSky, fresh TA, one pair/loop
)

// SB runs the fully optimized skyline-based stable assignment
// (Algorithm 3): I/O-optimal incremental skyline maintenance, resumable
// Ω-bounded TA search per skyline object, and emission of every mutual
// best pair in each loop.
func SB(p *Problem, cfg Config) (*Result, error) {
	return runSkylineBased(p, cfg, modeOptimized)
}

// SBBasic runs Algorithm 1 with the UpdateSkyline module but none of the
// Section 5.1/5.3 CPU optimizations ("SB-UpdateSkyline" in Figure 8).
func SBBasic(p *Problem, cfg Config) (*Result, error) {
	return runSkylineBased(p, cfg, modeBasic)
}

// SBDeltaSky runs Algorithm 1 with DeltaSky skyline maintenance
// ("SB-DeltaSky" in Figure 8).
func SBDeltaSky(p *Problem, cfg Config) (*Result, error) {
	return runSkylineBased(p, cfg, modeDeltaSky)
}

func runSkylineBased(p *Problem, cfg Config, mode sbMode) (*Result, error) {
	st, err := newSolveState(p, cfg)
	if err != nil {
		return nil, err
	}
	defer st.release()
	return st.runSB(mode)
}

// runSB executes the skyline-based loop on the shared state. On return
// the state reflects the completed matching: the capacity tables hold
// the remaining units, the TA lists have assigned functions tombstoned,
// and the maintainer (non-DeltaSky modes) holds the skyline of the
// objects that still have capacity — which is exactly the availability
// frontier the incremental Workspace continues from.
func (st *solveState) runSB(mode sbMode) (*Result, error) {
	p, cfg := st.p, st.cfg
	res := &Result{}
	var timer metrics.Timer
	timer.Start()

	if err := st.ensureLists(); err != nil {
		return nil, err
	}
	lists := st.lists
	var driver skylineDriver
	var maintReads *int64
	switch mode {
	case modeDeltaSky:
		d, err := st.buildDeltaSky()
		if err != nil {
			return nil, err
		}
		driver, maintReads = d, &d.NodeReads
	default:
		m, err := st.buildMaintainer()
		if err != nil {
			return nil, err
		}
		driver, maintReads = m, &m.NodeReads
	}

	st.buildCaps()
	funcCaps, objCaps := st.funcCaps, st.objCaps
	omega := cfg.omegaFor(len(p.Functions))
	ctx := newEngineCtx(lists, mode, len(p.Functions), omega)
	defer ctx.releaseAll()
	eng := ctx.engine(cfg)

	for funcCaps.units > 0 && objCaps.units > 0 && driver.Size() > 0 {
		res.Stats.Loops++
		sky := driver.Skyline()
		sortItemsByID(sky)

		// Step 1 (Lines 9–11): for every skyline object, the best live
		// function. The engine may fan the searches out over workers;
		// results come back in skyline order either way.
		byObj := make([]bestFunc, len(sky))
		eng.bestFunctions(sky, byObj)
		res.Stats.TopKRuns += int64(len(sky))
		oBest := make(map[uint64]bestFunc, len(sky))
		noFuncs := false
		for i, o := range sky {
			if !byObj[i].ok {
				noFuncs = true
				break
			}
			oBest[o.ID] = byObj[i]
		}
		if noFuncs {
			break
		}

		// Step 2 (Lines 12–13): for every function in Fbest, its best
		// skyline object.
		fids := make([]uint64, 0, len(sky))
		seen := make(map[uint64]bool, len(sky))
		for _, bf := range byObj {
			if !seen[bf.fid] {
				seen[bf.fid] = true
				fids = append(fids, bf.fid)
			}
		}
		slices.Sort(fids)
		byFunc := make([]bestObj, len(fids))
		eng.bestObjects(fids, sky, byFunc)
		fBest := make(map[uint64]bestObj, len(fids))
		for i, fid := range fids {
			fBest[fid] = byFunc[i]
		}

		// Step 3 (Lines 14–17): emit every mutual best pair.
		var removedObjs []uint64
		emitted := 0
		for _, fid := range fids {
			bo := fBest[fid]
			if oBest[bo.oid].fid != fid {
				continue
			}
			res.Pairs = append(res.Pairs, Pair{FuncID: fid, ObjectID: bo.oid, Score: bo.score})
			emitted++
			if funcCaps.consume(fid) {
				if err := lists.Remove(fid); err != nil {
					return nil, err
				}
			}
			if objCaps.consume(bo.oid) {
				removedObjs = append(removedObjs, bo.oid)
				ctx.dropSearch(bo.oid)
			}
			if mode != modeOptimized {
				break // Algorithm 1 emits a single pair per loop
			}
		}
		if emitted == 0 {
			return nil, errors.New("assign: internal error: no stable pair emitted in a loop")
		}
		if len(removedObjs) > 0 {
			if err := driver.Remove(removedObjs...); err != nil {
				return nil, err
			}
		}

		// Memory metric: maintainer structures plus live TA states.
		searchBytes := ctx.searchFootprint()
		if cur := st.mem.Current + searchBytes; cur > res.Stats.PeakMem {
			res.Stats.PeakMem = cur
		}
	}

	timer.Stop()
	res.Stats.CPUTime = timer.Total
	res.Stats.IO = *st.store.IO()
	res.Stats.Pairs = int64(len(res.Pairs))
	res.Stats.TASorted = lists.Counters.SortedAccesses
	res.Stats.TARandom = lists.Counters.RandomAccesses
	res.Stats.NodeReads = *maintReads
	if st.mem.Peak > res.Stats.PeakMem {
		res.Stats.PeakMem = st.mem.Peak
	}
	return res, nil
}
