package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(vs ...float64) Point { return Point(vs) }

func TestDominates(t *testing.T) {
	cases := []struct {
		name string
		p, q Point
		want bool
	}{
		{"strict all dims", pt(2, 2), pt(1, 1), true},
		{"equal one dim", pt(2, 1), pt(1, 1), true},
		{"identical", pt(1, 1), pt(1, 1), false},
		{"incomparable", pt(2, 0), pt(1, 1), false},
		{"dominated", pt(1, 1), pt(2, 2), false},
		{"mismatched dims", pt(1, 1), pt(1, 1, 1), false},
		{"3d strict", pt(3, 3, 3), pt(1, 2, 0), true},
		{"3d tie on one", pt(3, 2, 1), pt(3, 1, 1), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.p.Dominates(c.q); got != c.want {
				t.Errorf("%v Dominates %v = %v, want %v", c.p, c.q, got, c.want)
			}
		})
	}
}

func TestDominatesIsStrictPartialOrder(t *testing.T) {
	// Irreflexive and asymmetric on random points; transitive on triples.
	rng := rand.New(rand.NewSource(1))
	rp := func() Point {
		p := make(Point, 3)
		for i := range p {
			p[i] = float64(rng.Intn(4)) // small domain to force ties
		}
		return p
	}
	for i := 0; i < 2000; i++ {
		a, b, c := rp(), rp(), rp()
		if a.Dominates(a) {
			t.Fatalf("irreflexivity violated: %v", a)
		}
		if a.Dominates(b) && b.Dominates(a) {
			t.Fatalf("asymmetry violated: %v %v", a, b)
		}
		if a.Dominates(b) && b.Dominates(c) && !a.Dominates(c) {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestDominatesOrEqual(t *testing.T) {
	if !pt(1, 1).DominatesOrEqual(pt(1, 1)) {
		t.Error("point should dominate-or-equal itself")
	}
	if pt(1, 0).DominatesOrEqual(pt(1, 1)) {
		t.Error("worse point should not dominate-or-equal")
	}
}

func TestDot(t *testing.T) {
	got := Dot([]float64{0.8, 0.2}, []float64{0.8, 0.2})
	want := 0.68
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Dot = %v, want %v", got, want)
	}
}

func TestPaperFigure1Scores(t *testing.T) {
	// Figure 1: f1 = 0.8X+0.2Y, objects a..d; f1(c)=0.68 is the global max.
	objs := map[string]Point{
		"a": pt(0.5, 0.6), "b": pt(0.2, 0.7), "c": pt(0.8, 0.2), "d": pt(0.4, 0.4),
	}
	f1 := []float64{0.8, 0.2}
	best, bestScore := "", -1.0
	for name, o := range objs {
		if s := Dot(f1, o); s > bestScore {
			best, bestScore = name, s
		}
	}
	if best != "c" {
		t.Errorf("f1's top-1 = %s (%.2f), want c", best, bestScore)
	}
	if diff := bestScore - 0.68; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("f1(c) = %v, want 0.68", bestScore)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Min: pt(0, 0), Max: pt(2, 4)}
	if !r.Valid() {
		t.Fatal("rect should be valid")
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %v, want 6", got)
	}
	if !r.Contains(pt(1, 1)) || !r.Contains(pt(0, 0)) || !r.Contains(pt(2, 4)) {
		t.Error("Contains should include interior and boundary")
	}
	if r.Contains(pt(3, 1)) {
		t.Error("Contains should exclude outside points")
	}
}

func TestRectInvalid(t *testing.T) {
	bad := []Rect{
		{Min: pt(1, 1), Max: pt(0, 2)},
		{Min: pt(), Max: pt()},
		{Min: pt(1), Max: pt(1, 2)},
	}
	for i, r := range bad {
		if r.Valid() {
			t.Errorf("case %d: rect %v should be invalid", i, r)
		}
	}
}

func TestRectUnionEnlargement(t *testing.T) {
	a := Rect{Min: pt(0, 0), Max: pt(1, 1)}
	b := Rect{Min: pt(2, 2), Max: pt(3, 3)}
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Error("union must contain both inputs")
	}
	if got := u.Area(); got != 9 {
		t.Errorf("union area = %v, want 9", got)
	}
	if got := a.EnlargementArea(b); got != 8 {
		t.Errorf("enlargement = %v, want 8", got)
	}
	if got := a.EnlargementArea(Rect{Min: pt(0.2, 0.2), Max: pt(0.5, 0.5)}); got != 0 {
		t.Errorf("enlargement for contained rect = %v, want 0", got)
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: pt(0, 0), Max: pt(2, 2)}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{Min: pt(1, 1), Max: pt(3, 3)}, true},
		{Rect{Min: pt(2, 2), Max: pt(3, 3)}, true}, // touching corner
		{Rect{Min: pt(3, 0), Max: pt(4, 2)}, false},
		{Rect{Min: pt(0, 3), Max: pt(2, 4)}, false},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestMaxScoreBoundsEveryInteriorPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		d := 2 + rng.Intn(4)
		r := Rect{Min: make(Point, d), Max: make(Point, d)}
		w := make([]float64, d)
		for i := 0; i < d; i++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			r.Min[i], r.Max[i] = a, b
			w[i] = rng.Float64()
		}
		// random interior point
		p := make(Point, d)
		for i := 0; i < d; i++ {
			p[i] = r.Min[i] + rng.Float64()*(r.Max[i]-r.Min[i])
		}
		if Dot(w, p) > r.MaxScore(w)+1e-12 {
			t.Fatalf("interior point score %v exceeds MaxScore %v", Dot(w, p), r.MaxScore(w))
		}
		if Dot(w, p) < r.MinScore(w)-1e-12 {
			t.Fatalf("interior point score below MinScore")
		}
	}
}

func TestDominatedByRect(t *testing.T) {
	r := Rect{Min: pt(0.1, 0.1), Max: pt(0.4, 0.4)}
	if !r.DominatedBy(pt(0.5, 0.5)) {
		t.Error("rect fully below point should be dominated")
	}
	if r.DominatedBy(pt(0.3, 0.9)) {
		t.Error("rect exceeding point in dim 0 should not be dominated")
	}
	if !r.DominatedBy(pt(0.4, 0.4)) {
		t.Error("top corner equal counts as dominated (prunable)")
	}
}

func TestIntersectsDominanceRegion(t *testing.T) {
	p := pt(0.5, 0.5)
	if !(Rect{Min: pt(0.4, 0.4), Max: pt(0.9, 0.9)}).IntersectsDominanceRegion(p) {
		t.Error("rect overlapping dominance box should intersect")
	}
	if (Rect{Min: pt(0.6, 0.0), Max: pt(0.9, 0.9)}).IntersectsDominanceRegion(p) {
		t.Error("rect entirely right of dominance box should not intersect")
	}
}

func TestL1ToSky(t *testing.T) {
	if got := pt(0.2, 0.7).L1ToSky(1.0); got != 1.1 {
		t.Errorf("L1ToSky = %v, want 1.1", got)
	}
	if got := pt(1, 1, 1).L1ToSky(1.0); got != 0 {
		t.Errorf("sky point distance = %v, want 0", got)
	}
}

func TestUnionPropertyQuick(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		norm := func(v float64) float64 {
			if v < 0 {
				v = -v
			}
			for v > 1 {
				v /= 10
			}
			return v
		}
		mk := func(x1, y1, x2, y2 float64) Rect {
			x1, y1, x2, y2 = norm(x1), norm(y1), norm(x2), norm(y2)
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			return Rect{Min: pt(x1, y1), Max: pt(x2, y2)}
		}
		a, b := mk(ax, ay, bx, by), mk(cx, cy, dx, dy)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b) && u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := pt(1, 2, 3)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone must not alias")
	}
	r := Rect{Min: pt(0, 0), Max: pt(1, 1)}
	s := r.Clone()
	s.Min[0] = -5
	if r.Min[0] != 0 {
		t.Error("Rect.Clone must not alias")
	}
}
