// Package geom provides the low-level geometric primitives shared by all
// other packages: D-dimensional points, axis-aligned rectangles (MBRs),
// dominance tests, and linear-function scoring.
//
// Coordinates follow the paper's convention: every attribute is
// "larger is better", so the most preferable (imaginary) object is the
// corner of the space with the maximum value in every dimension
// (the "sky point" / "best point").
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a D-dimensional feature vector. Points are compared under the
// "larger is better" convention in every dimension.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether p dominates q: p is at least as good as q in
// every dimension and the two points do not coincide (Section 2.2 of the
// paper).
func (p Point) Dominates(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	strictly := false
	for i := range p {
		switch {
		case p[i] < q[i]:
			return false
		case p[i] > q[i]:
			strictly = true
		}
	}
	return strictly
}

// DominatesOrEqual reports whether p is at least as good as q in every
// dimension (q may coincide with p).
func (p Point) DominatesOrEqual(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] < q[i] {
			return false
		}
	}
	return true
}

// L1ToSky returns the L1 (Manhattan) distance from p to the sky point,
// assuming every coordinate lies in [0, hi] and the sky point is
// (hi, ..., hi). BBS visits entries in ascending order of this distance.
func (p Point) L1ToSky(hi float64) float64 {
	d := 0.0
	for _, v := range p {
		d += hi - v
	}
	return d
}

// Dot returns the inner product of weights w and point p. It is the score
// of p under the linear preference function with coefficients w
// (Equation 1 of the paper).
func Dot(w, p []float64) float64 {
	s := 0.0
	for i := range w {
		// Explicit intermediate so the compiler cannot fuse the
		// multiply into the add (the Go spec only permits fusion within
		// one expression): Dot must stay bit-identical to the columnar
		// SIMD kernels, which round the product before accumulating, on
		// every GOARCH and GOAMD64 level.
		v := w[i] * p[i]
		s += v
	}
	return s
}

// String renders the point with compact precision, for logs and tests.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%.4g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Rect is an axis-aligned minimum bounding rectangle.
// Min[i] <= Max[i] must hold for every dimension i.
type Rect struct {
	Min Point
	Max Point
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// Dims returns the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// Valid reports whether the rectangle is well formed.
func (r Rect) Valid() bool {
	if len(r.Min) != len(r.Max) || len(r.Min) == 0 {
		return false
	}
	for i := range r.Min {
		if r.Min[i] > r.Max[i] || math.IsNaN(r.Min[i]) || math.IsNaN(r.Max[i]) {
			return false
		}
	}
	return true
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || r.Max[i] < s.Min[i] {
			return false
		}
	}
	return true
}

// Enlarge grows r in place so that it covers s.
func (r *Rect) Enlarge(s Rect) {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	u := r.Clone()
	u.Enlarge(s)
	return u
}

// Area returns the D-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of edge lengths of r.
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// EnlargementArea returns the increase in area of r needed to cover s.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// TopCorner returns the corner of r with the maximum value in every
// dimension — the best possible object inside r.
func (r Rect) TopCorner() Point { return r.Max }

// MaxScore returns the score of the best corner of r under the linear
// function with coefficients w (assumed non-negative), i.e. an upper bound
// of f(o) for any o inside r. This is maxscore(M) from BRS (Section 2.3).
func (r Rect) MaxScore(w []float64) float64 {
	return Dot(w, r.Max)
}

// MinScore returns the score of the worst corner of r under the linear
// function with non-negative coefficients w.
func (r Rect) MinScore(w []float64) float64 {
	return Dot(w, r.Min)
}

// DominatedBy reports whether every point inside r is dominated (or
// equalled) by p, i.e. the whole rectangle can be pruned once p is a
// skyline point. This holds when p dominates-or-equals the top corner.
func (r Rect) DominatedBy(p Point) bool {
	return p.DominatesOrEqual(r.Max)
}

// IntersectsDominanceRegion reports whether r intersects the region
// dominated by p (the box [0, p] in "larger is better" space), i.e.
// whether r could contain points dominated by p. Used by the
// DeltaSky-style EDR intersection test without materializing the EDR.
func (r Rect) IntersectsDominanceRegion(p Point) bool {
	for i := range p {
		if r.Min[i] > p[i] {
			return false
		}
	}
	return true
}

// String renders the rectangle for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Min, r.Max)
}
