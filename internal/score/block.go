package score

import (
	"math"
	"sync"

	"fairassign/internal/geom"
	"fairassign/internal/simd"
)

// This file holds the columnar (structure-of-arrays) scoring kernels.
// The row-wise Eval scores one (function, object) pair per call; the
// hot reverse scans of the assignment stack score one function against
// a whole block of objects (EvalBlock) or one object against a whole
// block of functions (FuncBlocks). Laying the operands out as
// per-dimension contiguous columns turns both into tight
// multiply-accumulate loops over []float64 that the compiler can keep
// in registers and auto-vectorize, with no per-pair dispatch.
//
// Every kernel is bit-identical to calling Eval pair by pair: each one
// accumulates the same products in the same dimension order as the
// corresponding Eval branch, so the conformance sweeps (which compare
// matchings against definitional oracles) see no difference between the
// columnar and row-wise paths.

// EvalBlock scores one function (family fam, weights w) against a block
// of objects stored as per-dimension columns: cols[d][i] is attribute d
// of object i. The scores of objects 0..len(out)-1 are written to out.
// Every cols[d] must have at least len(out) entries.
//
// out[i] is bit-identical to Eval(fam, w, objectRow(i)).
func EvalBlock(fam Family, w []float64, cols [][]float64, out []float64) {
	n := len(out)
	switch fam.Kind {
	case OWA:
		// Order statistics are per-object, so each row is gathered and
		// sorted exactly as Eval does; the batching still amortizes the
		// family dispatch and keeps the gather loops branch-free.
		var buf [maxStackDims]float64
		var row [maxStackDims]float64
		rowS, bufS := row[:], buf[:]
		if len(w) > maxStackDims {
			rowS = make([]float64, len(w))
			bufS = make([]float64, len(w))
		}
		for i := 0; i < n; i++ {
			for d := range w {
				rowS[d] = cols[d][i]
			}
			out[i] = geom.Dot(w, sortedDesc(rowS[:len(w)], bufS))
		}
	case Chebyshev:
		if len(w) == 0 {
			for i := range out[:n] {
				out[i] = 0
			}
			return
		}
		simd.ScaleMaxZ(out[:n], cols[0][:n], w[0])
		for d := 1; d < len(w); d++ {
			simd.ScaleMax(out[:n], cols[d][:n], w[d])
		}
	case Lp:
		if fam.P == 1 {
			linearBlock(w, cols, out)
			return
		}
		if fam.P == 2 && len(w) > 0 {
			// powNonNeg at p == 2 is the clamped square — a pure
			// multiply the SIMD kernel performs inline, keeping the
			// whole power-column accumulation off the math.Pow path.
			simd.AxpySqClampZ(out[:n], cols[0][:n], w[0])
			for d := 1; d < len(w); d++ {
				simd.AxpySqClamp(out[:n], cols[d][:n], w[d])
			}
		} else {
			for i := range out[:n] {
				out[i] = 0
			}
			for d, wd := range w {
				col := cols[d][:n]
				p := fam.P
				for i, v := range col {
					pv := wd * powNonNeg(v, p)
					out[i] += pv
				}
			}
		}
		inv := 1 / fam.P
		for i := range out[:n] {
			out[i] = math.Pow(out[i], inv)
		}
	default: // Linear
		linearBlock(w, cols, out)
	}
}

// linearBlock is the shared dot-product kernel: column-by-column
// accumulation in ascending dimension order reproduces geom.Dot's
// summation order for every row (AxpyZ writes the dimension-0 products
// as fresh sums, Axpy folds the rest in — each out[i] receives exactly
// the additions geom.Dot performs, in the same order).
func linearBlock(w []float64, cols [][]float64, out []float64) {
	n := len(out)
	if len(w) == 0 {
		for i := range out[:n] {
			out[i] = 0
		}
		return
	}
	simd.AxpyZ(out[:n], cols[0][:n], w[0])
	for d := 1; d < len(w); d++ {
		simd.Axpy(out[:n], cols[d][:n], w[d])
	}
}

// EvalPrepared is Eval with the object's descending-sorted attribute
// values already in hand. A reverse search holds one object fixed while
// scoring many candidate functions; for OWA families the per-call
// attribute sort is the dominant cost, and it depends only on the
// object — so callers sort once and reuse. Bit-identical to Eval: OWA's
// Eval is exactly Dot(w, sortedDesc(o)).
func EvalPrepared(fam Family, w []float64, o geom.Point, osorted []float64) float64 {
	if fam.Kind == OWA {
		return geom.Dot(w, osorted)
	}
	return Eval(fam, w, o)
}

// FuncBlocks holds a function population as per-family columnar blocks:
// within each block, wcols[d][i] is weight d of function i. It answers
// the reverse exhaustive scan — "best function for this object" — with
// one batched kernel pass per family instead of one Eval call per
// function. Blocks support incremental Add/Remove (swap-delete), so a
// long-lived index (Workspace, Chain's non-linear side list) maintains
// them across mutations.
//
// FuncBlocks is not safe for concurrent mutation, but Best is safe to
// call from many goroutines concurrently (scratch is pooled per call),
// which is what the parallel solver engines need.
type FuncBlocks struct {
	dims   int
	groups []*funcGroup
	loc    map[uint64]funcLoc
}

type funcLoc struct{ g, i int }

type funcGroup struct {
	fam   Family
	ids   []uint64
	wcols [][]float64
}

// NewFuncBlocks returns an empty function-block index for the given
// dimensionality.
func NewFuncBlocks(dims int) *FuncBlocks {
	return &FuncBlocks{dims: dims, loc: make(map[uint64]funcLoc)}
}

// Len returns the number of indexed functions.
func (fb *FuncBlocks) Len() int { return len(fb.loc) }

// Contains reports whether the function is indexed.
func (fb *FuncBlocks) Contains(id uint64) bool {
	_, ok := fb.loc[id]
	return ok
}

// Add indexes a function. The weight slice is copied into the columns,
// so callers may reuse it. Adding an ID twice is a no-op for the second
// add.
func (fb *FuncBlocks) Add(id uint64, fam Family, w []float64) {
	if _, dup := fb.loc[id]; dup {
		return
	}
	gi := -1
	for i, g := range fb.groups {
		if g.fam == fam {
			gi = i
			break
		}
	}
	if gi == -1 {
		g := &funcGroup{fam: fam, wcols: make([][]float64, fb.dims)}
		fb.groups = append(fb.groups, g)
		gi = len(fb.groups) - 1
	}
	g := fb.groups[gi]
	fb.loc[id] = funcLoc{g: gi, i: len(g.ids)}
	g.ids = append(g.ids, id)
	for d := 0; d < fb.dims; d++ {
		g.wcols[d] = append(g.wcols[d], w[d])
	}
}

// Remove drops a function from the index (swap-delete within its family
// block). It reports whether the ID was present.
func (fb *FuncBlocks) Remove(id uint64) bool {
	l, ok := fb.loc[id]
	if !ok {
		return false
	}
	g := fb.groups[l.g]
	last := len(g.ids) - 1
	if l.i != last {
		moved := g.ids[last]
		g.ids[l.i] = moved
		for d := range g.wcols {
			g.wcols[d][l.i] = g.wcols[d][last]
		}
		fb.loc[moved] = funcLoc{g: l.g, i: l.i}
	}
	g.ids = g.ids[:last]
	for d := range g.wcols {
		g.wcols[d] = g.wcols[d][:last]
	}
	delete(fb.loc, id)
	return true
}

// blockScratch is the per-Best working set, pooled so concurrent
// callers allocate nothing at steady state.
type blockScratch struct {
	out  []float64
	prep []float64
}

var blockScratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

func (s *blockScratch) grow(n, dims int) {
	if cap(s.out) < n {
		s.out = make([]float64, n)
	}
	s.out = s.out[:n]
	if cap(s.prep) < dims {
		s.prep = make([]float64, dims)
	}
	s.prep = s.prep[:dims]
}

// Best returns the indexed function maximizing its family score at o,
// among those the accept filter admits (nil accepts everything); ties
// break to the lower function ID. The result does not depend on block
// or group order — selection is by the total order (score, -id) — and
// each score is bit-identical to Eval on the same function, so Best
// matches a row-wise scan exactly. ok is false when no function is
// admitted.
func (fb *FuncBlocks) Best(o geom.Point, accept func(id uint64, s float64) bool) (bestID uint64, bestS float64, ok bool) {
	sc := blockScratchPool.Get().(*blockScratch)
	defer blockScratchPool.Put(sc)
	for _, g := range fb.groups {
		n := len(g.ids)
		if n == 0 {
			continue
		}
		sc.grow(n, fb.dims)
		g.evalDual(o, sc.prep, sc.out)
		if accept == nil {
			// Unfiltered: the group winner under (score, -id) comes
			// from the strided argmax kernel, and only winners cross
			// the group merge.
			bi := simd.SelectBest(sc.out[:n], g.ids)
			id, s := g.ids[bi], sc.out[bi]
			if ok && (s < bestS || (s == bestS && id >= bestID)) {
				continue
			}
			bestID, bestS, ok = id, s, true
			continue
		}
		for i, s := range sc.out[:n] {
			id := g.ids[i]
			if ok && (s < bestS || (s == bestS && id >= bestID)) {
				continue
			}
			if !accept(id, s) {
				continue
			}
			bestID, bestS, ok = id, s, true
		}
	}
	return bestID, bestS, ok
}

// evalDual scores every function in the group against the fixed object:
// out[i] = Eval(g.fam, weightsRow(i), o), bit for bit. It is the dual
// of EvalBlock — per-dimension accumulation over the weight columns,
// exploiting that each family's per-object preprocessing (OWA's sort,
// Lp's attribute powers) depends only on o and is hoisted out of the
// block entirely. prep must have dims capacity.
func (g *funcGroup) evalDual(o geom.Point, prep, out []float64) {
	n := len(out)
	switch g.fam.Kind {
	case OWA:
		// Eval is Dot(w, sortedDesc(o)): sort o once, then the linear
		// kernel over the weight columns reproduces position order.
		osort := sortedDesc(o, prep)
		dualLinear(osort, g.wcols, out)
	case Chebyshev:
		if len(o) == 0 {
			for i := range out[:n] {
				out[i] = 0
			}
			return
		}
		simd.ScaleMaxZ(out[:n], g.wcols[0][:n], o[0])
		for d := 1; d < len(o); d++ {
			simd.ScaleMax(out[:n], g.wcols[d][:n], o[d])
		}
	case Lp:
		if g.fam.P == 1 {
			dualLinear(o, g.wcols, out)
			return
		}
		// powNonNeg(o[d], p) depends only on the object: one pass.
		op := prep[:len(o)]
		for d, v := range o {
			op[d] = powNonNeg(v, g.fam.P)
		}
		dualLinear(op, g.wcols, out)
		inv := 1 / g.fam.P
		for i := range out[:n] {
			out[i] = math.Pow(out[i], inv)
		}
	default: // Linear
		dualLinear(o, g.wcols, out)
	}
}

// dualLinear is the weight-side dot kernel: out[i] = Σ_d wcols[d][i]·x[d]
// accumulated in ascending dimension order — geom.Dot's order, with the
// factors of each product merely swapped (multiplication commutes, so
// the result bits are identical).
func dualLinear(x []float64, wcols [][]float64, out []float64) {
	n := len(out)
	if len(x) == 0 {
		for i := range out[:n] {
			out[i] = 0
		}
		return
	}
	simd.AxpyZ(out[:n], wcols[0][:n], x[0])
	for d := 1; d < len(x); d++ {
		simd.Axpy(out[:n], wcols[d][:n], x[d])
	}
}
