package score

import "fairassign/internal/simd"

// SetSIMD turns dispatch to the hand-written SIMD kernels behind
// EvalBlock, FuncBlocks.Best, and the skyline dominance filter on or
// off at runtime (it delegates to the internal/simd switch, which every
// columnar consumer shares). Results are bit-identical either way —
// this is the kill switch next to the FAIRASSIGN_NOSIMD environment
// variable and the `purego` build tag, and the hook the differential
// benchmarks use to duel the two paths. Enabling is a no-op when the
// binary or CPU has no assembly kernels.
func SetSIMD(on bool) { simd.SetEnabled(on) }

// SIMDLevel names the kernel set currently dispatched: "avx2", "neon",
// or "portable".
func SIMDLevel() string { return simd.Level() }

// SIMDDetected names the kernel set the CPU supports, ignoring the
// runtime switch.
func SIMDDetected() string { return simd.DetectedLevel() }
