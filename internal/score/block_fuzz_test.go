package score

import (
	"math"
	"testing"

	"fairassign/internal/simd"
)

// FuzzEvalBlockSIMD bit-compares the SIMD and portable kernel paths
// under every family's EvalBlock and under the FuncBlocks.Best dual
// scan, on arbitrary lengths, weights, and raw float64 bit patterns
// (NaN payloads, infinities, denormals, signed zeros). NaN outputs are
// compared as "both NaN": arithmetic NaN payloads are outside the
// kernel contract, everything else must match bit for bit.
func FuzzEvalBlockSIMD(f *testing.F) {
	f.Add(uint8(0), uint8(2), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f, 0, 0, 0, 0, 0, 0, 0xf0, 0x7f})
	f.Add(uint8(1), uint8(3), []byte{1, 0, 0, 0, 0, 0, 0xf8, 0xff, 0x55, 0xAA, 0, 0, 0, 0, 0, 0x80})
	f.Add(uint8(2), uint8(1), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(3), uint8(4), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xef, 0x7f})
	f.Add(uint8(7), uint8(2), make([]byte, 8*41))
	f.Fuzz(func(t *testing.T, famSel, dimSel uint8, raw []byte) {
		if !simd.Available() {
			t.Skip("no assembly kernels for this CPU")
		}
		defer simd.SetEnabled(true)
		dims := 1 + int(dimSel)%6
		vals := make([]float64, len(raw)/8)
		for i := range vals {
			var u uint64
			for b := 0; b < 8; b++ {
				u |= uint64(raw[8*i+b]) << (8 * b)
			}
			vals[i] = math.Float64frombits(u)
		}
		if len(vals) < 2*dims {
			t.Skip("not enough data")
		}
		fam := Family{Kind: Kind(famSel % 4)}
		if fam.Kind == Lp {
			p := math.Abs(vals[0])
			if !(p >= 1 && p <= 64) {
				p = 2
			}
			fam.P = p
		}
		w := vals[:dims]
		rest := vals[dims:]
		n := len(rest) / dims
		cols := make([][]float64, dims)
		for d := range cols {
			cols[d] = rest[d*n : (d+1)*n]
		}

		out1 := make([]float64, n)
		out2 := make([]float64, n)
		simd.SetEnabled(true)
		EvalBlock(fam, w, cols, out1)
		simd.SetEnabled(false)
		EvalBlock(fam, w, cols, out2)
		for i := range out1 {
			if math.Float64bits(out1[i]) != math.Float64bits(out2[i]) &&
				!(math.IsNaN(out1[i]) && math.IsNaN(out2[i])) {
				t.Fatalf("EvalBlock %v dims=%d n=%d row %d: SIMD %x portable %x",
					fam, dims, n, i, math.Float64bits(out1[i]), math.Float64bits(out2[i]))
			}
		}

		// Dual scan: the same raw rows become function weights, the
		// weight vector becomes the probe object.
		fb := NewFuncBlocks(dims)
		row := make([]float64, dims)
		for i := 0; i < n && i < 64; i++ {
			for d := 0; d < dims; d++ {
				row[d] = cols[d][i]
			}
			fb.Add(uint64(i), fam, row)
		}
		simd.SetEnabled(true)
		id1, s1, ok1 := fb.Best(w, nil)
		simd.SetEnabled(false)
		id2, s2, ok2 := fb.Best(w, nil)
		if ok1 != ok2 || id1 != id2 {
			t.Fatalf("FuncBlocks.Best %v dims=%d: SIMD (%d,%v,%v) portable (%d,%v,%v)",
				fam, dims, id1, s1, ok1, id2, s2, ok2)
		}
		if ok1 && math.Float64bits(s1) != math.Float64bits(s2) &&
			!(math.IsNaN(s1) && math.IsNaN(s2)) {
			t.Fatalf("FuncBlocks.Best %v dims=%d: score %x (SIMD) vs %x (portable)",
				fam, dims, math.Float64bits(s1), math.Float64bits(s2))
		}
	})
}
