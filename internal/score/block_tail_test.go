package score

import (
	"math"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/simd"
)

// Lane-tail edge cases for the SIMD kernels: block lengths of 0, below
// the vector width, every residue mod 4, and operands that are
// unaligned sub-slices — each checked bit-exact against row-wise Eval
// with kernel dispatch both on and off.

func withSIMDModes(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	defer simd.SetEnabled(true)
	for _, on := range []bool{true, false} {
		simd.SetEnabled(on)
		t.Run(map[bool]string{true: "simd", false: "portable"}[on], f)
	}
}

func TestEvalBlockLaneTails(t *testing.T) {
	withSIMDModes(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(77))
		for _, fam := range testFamilies {
			for _, dims := range []int{1, 3} {
				for n := 0; n <= 13; n++ {
					cols, rows := randCols(rng, n, dims)
					w := randWeights(rng, dims)
					out := make([]float64, n)
					EvalBlock(fam, w, cols, out)
					for i, row := range rows {
						want := Eval(fam, w, row)
						if math.Float64bits(out[i]) != math.Float64bits(want) {
							t.Fatalf("fam=%v dims=%d n=%d row %d: EvalBlock=%x Eval=%x",
								fam, dims, n, i, math.Float64bits(out[i]), math.Float64bits(want))
						}
					}
				}
			}
		}
	})
}

// TestEvalBlockUnaligned: pooled scratch hands the kernels sub-slices
// at arbitrary element offsets; vector loads must not assume alignment.
func TestEvalBlockUnaligned(t *testing.T) {
	withSIMDModes(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(78))
		for _, fam := range testFamilies {
			for _, n := range []int{9, 17, 31} {
				dims := 3
				cols, rows := randCols(rng, n, dims)
				for d := range cols {
					shifted := make([]float64, n+1)
					copy(shifted[1:], cols[d])
					cols[d] = shifted[1:]
				}
				w := randWeights(rng, dims)
				buf := make([]float64, n+3)
				out := buf[3:]
				EvalBlock(fam, w, cols, out)
				for i, row := range rows {
					want := Eval(fam, w, row)
					if math.Float64bits(out[i]) != math.Float64bits(want) {
						t.Fatalf("fam=%v n=%d row %d: EvalBlock=%x Eval=%x",
							fam, n, i, math.Float64bits(out[i]), math.Float64bits(want))
					}
				}
			}
		}
	})
}

// TestFuncBlocksTinyFamilies: family groups holding a single function
// (and other sub-vector-width counts) take the scalar dispatch path;
// the winner must still match a row-wise scan across all groups.
func TestFuncBlocksTinyFamilies(t *testing.T) {
	withSIMDModes(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(79))
		dims := 3
		type fn struct {
			id  uint64
			fam Family
			w   []float64
		}
		var fns []fn
		fb := NewFuncBlocks(dims)
		id := uint64(0)
		// One function per family, then uneven counts: 2, 3, 5, 9.
		counts := []int{1, 1, 1, 2, 3, 5}
		counts = append(counts, 9)
		for fi, fam := range testFamilies {
			for k := 0; k < counts[fi%len(counts)]; k++ {
				w := randWeights(rng, dims)
				fb.Add(id, fam, w)
				fns = append(fns, fn{id, fam, w})
				id++
			}
		}
		for trial := 0; trial < 50; trial++ {
			o := geom.Point(randWeights(rng, dims))
			bestID, bestS, ok := fb.Best(o, nil)
			if !ok {
				t.Fatal("Best found nothing")
			}
			wantID, wantS := uint64(0), math.Inf(-1)
			for _, f := range fns {
				s := Eval(f.fam, f.w, o)
				if s > wantS || (s == wantS && f.id < wantID) {
					wantID, wantS = f.id, s
				}
			}
			if bestID != wantID || math.Float64bits(bestS) != math.Float64bits(wantS) {
				t.Fatalf("trial %d: Best=(%d,%x) row-wise=(%d,%x)",
					trial, bestID, math.Float64bits(bestS), wantID, math.Float64bits(wantS))
			}
		}
	})
}
