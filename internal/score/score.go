// Package score defines the pluggable monotone preference families the
// assignment stack evaluates. The paper's algorithms — SB's skyline
// argument, TA ranked retrieval over sorted coefficient lists, and BRS
// branch-and-bound over R-tree MBRs — only require that a preference
// function be a *monotone* aggregate of the object attributes: if o is
// at least as good as o' in every dimension then f(o) ≥ f(o'). This
// package generalizes the repository from the paper's linear special
// case (f(o) = Σ αᵢ·oᵢ) to any family satisfying that contract:
//
//   - Linear:    f(o) = Σ wᵢ·oᵢ (Equation 1; the paper's model);
//   - OWA:       f(o) = Σ wⱼ·o₍ⱼ₎ over attribute values sorted in
//     descending order — order-weighted averages subsume min (egalitarian
//     minimax), max, median, and Hurwicz scoring;
//   - Chebyshev: f(o) = maxᵢ wᵢ·oᵢ (weighted max scalarization);
//   - Lp:        f(o) = (Σ wᵢ·oᵢᵖ)^(1/p) for p ≥ 1.
//
// Every family is monotone non-decreasing in the object attributes
// (given non-negative weights and, for Lp, non-negative attributes) and
// monotone non-decreasing in the weights (given non-negative
// attributes). The first property makes BRS pruning sound: the score of
// an MBR's top corner bounds every point inside it (Scorer.UpperBound).
// The second makes TA reverse search sound: a function not yet
// encountered in any sorted coefficient list has every coefficient
// bounded by that list's last-seen value, so Family.Bound over those
// per-dimension ceilings bounds its score (the generalization of the
// paper's T_tight threshold).
//
// The linear family compiles to exactly the geom.Dot code the rest of
// the repository always used — the zero values of Family and Scorer.Fam
// are linear, and every hot path stays allocation- and byte-identical
// for purely linear workloads (asserted by conformance and the
// committed benchmark baseline).
package score

import (
	"fmt"
	"math"

	"fairassign/internal/geom"
)

// Kind enumerates the supported preference families.
type Kind uint8

const (
	// Linear is f(o) = Σ wᵢ·oᵢ — the paper's model and the zero value.
	Linear Kind = iota
	// OWA is the order-weighted average: f(o) = Σ wⱼ·o₍ⱼ₎ where o₍₁₎ ≥
	// o₍₂₎ ≥ … are the attribute values sorted descending. Weight
	// position j applies to the j-th best attribute, so (0,…,0,1) is
	// minimax, (1,0,…,0) is max, and a middle indicator is the median.
	OWA
	// Chebyshev is the weighted max: f(o) = maxᵢ wᵢ·oᵢ.
	Chebyshev
	// Lp is the weighted p-norm: f(o) = (Σ wᵢ·oᵢᵖ)^(1/p), p ≥ 1,
	// over non-negative attributes.
	Lp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case OWA:
		return "owa"
	case Chebyshev:
		return "chebyshev"
	case Lp:
		return "lp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Family identifies one concrete scoring family: a kind plus the Lp
// exponent (zero except for Lp). The zero value is Linear. Family is
// comparable, so it can key maps and group functions that share score
// semantics (e.g. the per-family function skylines of the prioritized
// variant).
type Family struct {
	Kind Kind
	P    float64 // Lp exponent; meaningful only when Kind == Lp
}

// IsLinear reports whether the family is the paper's linear model.
func (f Family) IsLinear() bool { return f.Kind == Linear }

// Validate rejects families the stack cannot score soundly.
func (f Family) Validate() error {
	switch f.Kind {
	case Linear, OWA, Chebyshev:
		return nil
	case Lp:
		if math.IsNaN(f.P) || math.IsInf(f.P, 0) || f.P < 1 {
			return fmt.Errorf("score: Lp exponent must be a finite p >= 1, got %v", f.P)
		}
		return nil
	default:
		return fmt.Errorf("score: unknown family kind %d", uint8(f.Kind))
	}
}

// GammaScale returns the factor by which a function's weights must be
// scaled so that scoring the scaled weights multiplies the family score
// by gamma (the paper's priority γ, Section 6.2). Linear, OWA, and
// Chebyshev are degree-1 homogeneous in the weights, so the factor is γ
// itself; Lp is degree-1/p homogeneous, so the factor is γᵖ.
func (f Family) GammaScale(gamma float64) float64 {
	if f.Kind == Lp {
		return math.Pow(gamma, f.P)
	}
	return gamma
}

// MinimaxWeights returns the OWA position weights of the egalitarian
// minimax shortcut: all weight on the worst attribute.
func MinimaxWeights(dims int) []float64 {
	w := make([]float64, dims)
	w[dims-1] = 1
	return w
}

// BestWeights returns the OWA position weights of the optimistic
// shortcut: all weight on the best attribute.
func BestWeights(dims int) []float64 {
	w := make([]float64, dims)
	w[0] = 1
	return w
}

// MedianWeights returns the OWA position weights of the median
// shortcut: the middle attribute, or the mean of the two middle
// attributes when the dimensionality is even.
func MedianWeights(dims int) []float64 {
	w := make([]float64, dims)
	if dims%2 == 1 {
		w[dims/2] = 1
	} else {
		w[dims/2-1], w[dims/2] = 0.5, 0.5
	}
	return w
}

// maxStackDims bounds the on-stack scratch used by OWA evaluation; the
// paper's experiments use 2–5 dimensions.
const maxStackDims = 8

// Eval computes the family score of attribute vector o under weights w.
// For Linear it is exactly geom.Dot(w, o) — same loop, same summation
// order, bit-identical results.
func Eval(fam Family, w []float64, o geom.Point) float64 {
	switch fam.Kind {
	case OWA:
		var buf [maxStackDims]float64
		return geom.Dot(w, sortedDesc(o, buf[:]))
	case Chebyshev:
		best := 0.0
		for i := range w {
			if v := w[i] * o[i]; v > best {
				best = v
			}
		}
		return best
	case Lp:
		if fam.P == 1 {
			return geom.Dot(w, o)
		}
		s := 0.0
		for i := range w {
			// Explicit intermediate: the spec forbids fusing the
			// multiply into the add, keeping Eval bit-identical to the
			// SIMD power-column kernels on every GOARCH/GOAMD64.
			p := w[i] * powNonNeg(o[i], fam.P)
			s += p
		}
		return math.Pow(s, 1/fam.P)
	default: // Linear
		return geom.Dot(w, o)
	}
}

// sortedDesc copies o into scratch (or a fresh slice when scratch is too
// small) sorted in descending order. Insertion sort: D is tiny and this
// runs on scoring hot paths.
func sortedDesc(o geom.Point, scratch []float64) []float64 {
	var s []float64
	if len(o) <= len(scratch) {
		s = scratch[:len(o)]
	} else {
		s = make([]float64, len(o))
	}
	for i, v := range o {
		j := i
		for j > 0 && s[j-1] < v {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
	return s
}

// powNonNeg is math.Pow with negative bases clamped to zero: Lp scoring
// is defined over non-negative attributes ("larger is better" in
// [0,1]^D), and clamping keeps an out-of-domain input monotone instead
// of NaN. p == 2 is special-cased off the math.Pow path.
func powNonNeg(v, p float64) float64 {
	if v <= 0 {
		return 0
	}
	if p == 2 {
		return v * v
	}
	return math.Pow(v, p)
}

// Scorer is one concrete preference function: a family plus its
// (effective, γ-folded) weight vector. The zero Fam makes a Scorer over
// plain weights the linear function the repository always supported.
type Scorer struct {
	Fam Family
	W   []float64
}

// LinearScorer wraps a weight vector in the linear family.
func LinearScorer(w []float64) Scorer { return Scorer{W: w} }

// IsLinear reports whether the scorer is a plain dot product.
func (s Scorer) IsLinear() bool { return s.Fam.IsLinear() }

// Score evaluates the scorer at o.
func (s Scorer) Score(o geom.Point) float64 { return Eval(s.Fam, s.W, o) }

// UpperBound returns a bound on Score(o) over every o inside the MBR
// [min, max]. Because every family is monotone non-decreasing in the
// attributes, the bound is the score of the top corner — maxscore(M)
// from BRS (Section 2.3), generalized. min is accepted for symmetry
// with the MBR representation; monotone families do not consult it.
func (s Scorer) UpperBound(min, max geom.Point) float64 {
	_ = min
	return Eval(s.Fam, s.W, max)
}

// Bound upper-bounds the score at o of ANY function of this family
// whose per-dimension coefficients are bounded by ceil and whose
// coefficient sum is at most B — the TA threshold over the sorted
// coefficient lists' last-seen values (the generalization of the
// paper's fractional-knapsack T_tight, Section 5.1).
//
// order must hold the dimension indexes sorted by descending o value
// and sortedObj the o values sorted descending; callers precompute both
// once per object so the per-sorted-access threshold stays
// allocation-free.
func (f Family) Bound(ceil []float64, o geom.Point, order []int, sortedObj []float64, B float64) float64 {
	switch f.Kind {
	case OWA:
		// max Σ βⱼ·o₍ⱼ₎ with βⱼ ≤ ceilⱼ, Σβ ≤ B: the knapsack greedy
		// fills positions in descending o₍ⱼ₎ order, which is position
		// order itself.
		t := 0.0
		b := B
		for j, v := range sortedObj {
			if b <= 0 {
				break
			}
			beta := ceil[j]
			if beta > b {
				beta = b
			}
			p := beta * v
			t += p
			b -= beta
		}
		return t
	case Chebyshev:
		best := 0.0
		for i := range ceil {
			beta := ceil[i]
			if beta > B {
				beta = B
			}
			if v := beta * o[i]; v > best {
				best = v
			}
		}
		return best
	case Lp:
		t := 0.0
		b := B
		for _, d := range order {
			if b <= 0 {
				break
			}
			beta := ceil[d]
			if beta > b {
				beta = b
			}
			p := beta * powNonNeg(o[d], f.P)
			t += p
			b -= beta
		}
		return math.Pow(t, 1/f.P)
	default: // Linear: the paper's T_tight fractional knapsack.
		t := 0.0
		b := B
		for _, d := range order {
			if b <= 0 {
				break
			}
			beta := ceil[d]
			if beta > b {
				beta = b
			}
			p := beta * o[d]
			t += p
			b -= beta
		}
		return t
	}
}

// MaxBound is the TA threshold for a mixed-family list set: the largest
// Family.Bound over every family present among the live functions.
func MaxBound(fams []Family, ceil []float64, o geom.Point, order []int, sortedObj []float64, B float64) float64 {
	best := math.Inf(-1)
	for _, fam := range fams {
		if b := fam.Bound(ceil, o, order, sortedObj, B); b > best {
			best = b
		}
	}
	return best
}
