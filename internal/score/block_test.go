package score

import (
	"math"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
)

// testFamilies is the kernel sweep: every family the stack scores,
// including both Lp special cases.
var testFamilies = []Family{
	{Kind: Linear},
	{Kind: OWA},
	{Kind: Chebyshev},
	{Kind: Lp, P: 1},
	{Kind: Lp, P: 2},
	{Kind: Lp, P: 3.5},
}

// randCols builds n random points in columnar and row layout, seeding
// ties and duplicates so the kernels' comparisons are exercised on
// exact-equality paths.
func randCols(rng *rand.Rand, n, dims int) (cols [][]float64, rows []geom.Point) {
	cols = make([][]float64, dims)
	for d := range cols {
		cols[d] = make([]float64, n)
	}
	rows = make([]geom.Point, n)
	for i := 0; i < n; i++ {
		rows[i] = make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			v := rng.Float64()
			switch rng.Intn(8) {
			case 0:
				v = 0.5 // cross-point ties
			case 1:
				if d > 0 {
					v = rows[i][d-1] // within-point ties (OWA sort order)
				}
			}
			cols[d][i] = v
			rows[i][d] = v
		}
		if i > 0 && rng.Intn(10) == 0 {
			// Exact duplicate of an earlier point.
			j := rng.Intn(i)
			for d := 0; d < dims; d++ {
				cols[d][i] = cols[d][j]
				rows[i][d] = cols[d][i]
			}
		}
	}
	return cols, rows
}

// TestEvalBlockMatchesEval: the columnar object-block kernel must be
// bit-identical to row-wise Eval for every family, dimensionality, and
// tie pattern.
func TestEvalBlockMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, fam := range testFamilies {
		for _, dims := range []int{1, 2, 3, 4, 5, 9} {
			cols, rows := randCols(rng, 257, dims)
			w := randWeights(rng, dims)
			out := make([]float64, len(rows))
			EvalBlock(fam, w, cols, out)
			for i, row := range rows {
				want := Eval(fam, w, row)
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("fam=%v dims=%d row %d: EvalBlock=%x Eval=%x", fam, dims, i,
						math.Float64bits(out[i]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestEvalPreparedMatchesEval: the prepared-object evaluation (sorted
// attributes precomputed once per reverse search) is bit-identical to
// Eval for every family.
func TestEvalPreparedMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, fam := range testFamilies {
		for _, dims := range []int{1, 2, 4, 5} {
			for trial := 0; trial < 50; trial++ {
				o := geom.Point(randWeights(rng, dims))
				w := randWeights(rng, dims)
				osorted := sortedDesc(o, make([]float64, dims))
				got := EvalPrepared(fam, w, o, osorted)
				want := Eval(fam, w, o)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("fam=%v dims=%d: EvalPrepared=%v Eval=%v", fam, dims, got, want)
				}
			}
		}
	}
}

// TestFuncBlocksBestMatchesScan: the batched function-direction Best
// must agree with an exhaustive row-wise Eval scan — same winner, same
// score bits — on mixed-family populations with score ties, under both
// nil and restrictive accept filters.
func TestFuncBlocksBestMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, dims := range []int{2, 4, 5} {
		fb := NewFuncBlocks(dims)
		type fn struct {
			id  uint64
			fam Family
			w   []float64
		}
		var funcs []fn
		for i := 0; i < 300; i++ {
			fam := testFamilies[rng.Intn(len(testFamilies))]
			w := randWeights(rng, dims)
			if i > 0 && rng.Intn(6) == 0 {
				// Duplicate weights under the same family: forces exact
				// score ties, which must break to the lower ID.
				j := rng.Intn(i)
				fam = funcs[j].fam
				w = append([]float64(nil), funcs[j].w...)
			}
			f := fn{id: uint64(1000 + i), fam: fam, w: w}
			funcs = append(funcs, f)
			fb.Add(f.id, f.fam, f.w)
		}
		// Exercise swap-delete: remove a third, keep scanning the rest.
		for i := 0; i < len(funcs); i += 3 {
			if !fb.Remove(funcs[i].id) {
				t.Fatalf("Remove(%d) reported absent", funcs[i].id)
			}
		}
		live := make([]fn, 0, len(funcs))
		for i, f := range funcs {
			if i%3 != 0 {
				live = append(live, f)
			}
		}
		if fb.Len() != len(live) {
			t.Fatalf("Len=%d want %d", fb.Len(), len(live))
		}

		filters := []func(id uint64, s float64) bool{
			nil,
			func(id uint64, s float64) bool { return id%2 == 0 },
			func(id uint64, s float64) bool { return s > 0.5 },
			func(id uint64, s float64) bool { return false },
		}
		for trial := 0; trial < 40; trial++ {
			o := geom.Point(randWeights(rng, dims))
			for fi, accept := range filters {
				gotID, gotS, gotOK := fb.Best(o, accept)
				var wantID uint64
				var wantS float64
				wantOK := false
				for _, f := range live {
					s := Eval(f.fam, f.w, o)
					if accept != nil && !accept(f.id, s) {
						continue
					}
					if !wantOK || s > wantS || (s == wantS && f.id < wantID) {
						wantID, wantS, wantOK = f.id, s, true
					}
				}
				if gotOK != wantOK || (gotOK && (gotID != wantID ||
					math.Float64bits(gotS) != math.Float64bits(wantS))) {
					t.Fatalf("dims=%d filter=%d: Best=(%d,%x,%v) scan=(%d,%x,%v)",
						dims, fi, gotID, math.Float64bits(gotS), gotOK,
						wantID, math.Float64bits(wantS), wantOK)
				}
			}
		}
	}
}

// TestFuncBlocksRemoveUnknown: removing an absent ID must report false
// and leave the index intact.
func TestFuncBlocksRemoveUnknown(t *testing.T) {
	fb := NewFuncBlocks(2)
	fb.Add(1, Family{}, []float64{0.3, 0.7})
	if fb.Remove(2) {
		t.Fatal("Remove(2) on absent ID reported true")
	}
	if fb.Len() != 1 || !fb.Contains(1) {
		t.Fatal("index damaged by absent-ID remove")
	}
}

// TestKernelAllocs: the kernels must be allocation-free at steady state
// — EvalBlock with caller-owned buffers always, FuncBlocks.Best once
// its pooled scratch is warm.
func TestKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := 4
	cols, _ := randCols(rng, 512, dims)
	w := randWeights(rng, dims)
	out := make([]float64, 512)
	for _, fam := range testFamilies {
		fam := fam
		if n := testing.AllocsPerRun(20, func() { EvalBlock(fam, w, cols, out) }); n != 0 {
			t.Errorf("EvalBlock(%v) allocates %.1f/op, want 0", fam, n)
		}
	}

	fb := NewFuncBlocks(dims)
	for i := 0; i < 256; i++ {
		fb.Add(uint64(i), testFamilies[i%len(testFamilies)], randWeights(rng, dims))
	}
	o := geom.Point(randWeights(rng, dims))
	fb.Best(o, nil) // warm the scratch pool
	if n := testing.AllocsPerRun(20, func() { fb.Best(o, nil) }); n != 0 {
		t.Errorf("FuncBlocks.Best allocates %.1f/op, want 0", n)
	}
}

// BenchmarkEvalBlock compares the columnar kernel against the row-wise
// Eval loop it replaces, per family.
func BenchmarkEvalBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, dims = 4096, 4
	cols, rows := randCols(rng, n, dims)
	w := randWeights(rng, dims)
	out := make([]float64, n)
	for _, fam := range testFamilies {
		fam := fam
		b.Run("columnar/"+famLabel(fam), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EvalBlock(fam, w, cols, out)
			}
		})
		b.Run("rowwise/"+famLabel(fam), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j, row := range rows {
					out[j] = Eval(fam, w, row)
				}
			}
		})
	}
}

// BenchmarkFuncBlocksBest compares the batched function-direction scan
// against row-wise Eval over the same population.
func BenchmarkFuncBlocksBest(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n, dims = 4096, 4
	for _, fam := range testFamilies {
		fam := fam
		fb := NewFuncBlocks(dims)
		ws := make([][]float64, n)
		for i := 0; i < n; i++ {
			ws[i] = randWeights(rng, dims)
			fb.Add(uint64(i), fam, ws[i])
		}
		o := geom.Point(randWeights(rng, dims))
		b.Run("blocked/"+famLabel(fam), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fb.Best(o, nil)
			}
		})
		b.Run("rowwise/"+famLabel(fam), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var bestID uint64
				var bestS float64
				ok := false
				for j := range ws {
					s := Eval(fam, ws[j], o)
					if !ok || s > bestS || (s == bestS && uint64(j) < bestID) {
						bestID, bestS, ok = uint64(j), s, true
					}
				}
				_ = bestID
			}
		})
	}
}

func famLabel(f Family) string {
	if f.Kind == Lp {
		switch f.P {
		case 1:
			return "lp1"
		case 2:
			return "lp2"
		default:
			return "lpX"
		}
	}
	return f.Kind.String()
}
