package score

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
)

func pt(vs ...float64) geom.Point { return geom.Point(vs) }

func randPoint(rng *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

func randWeights(rng *rand.Rand, dims int) []float64 {
	w := make([]float64, dims)
	sum := 0.0
	for i := range w {
		w[i] = rng.Float64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// allFamilies is the sweep used by the property tests.
func allFamilies() []Family {
	return []Family{
		{},
		{Kind: OWA},
		{Kind: Chebyshev},
		{Kind: Lp, P: 1},
		{Kind: Lp, P: 2},
		{Kind: Lp, P: 3.5},
	}
}

func TestEvalLinearIsDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		dims := 2 + rng.Intn(6)
		w, o := randWeights(rng, dims), randPoint(rng, dims)
		got := Eval(Family{}, w, o)
		want := geom.Dot(w, o)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("linear Eval = %x, Dot = %x", math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestOWAKnownValues(t *testing.T) {
	o := pt(0.2, 0.9, 0.5)
	cases := []struct {
		name string
		w    []float64
		want float64
	}{
		{"minimax", []float64{0, 0, 1}, 0.2},
		{"best", []float64{1, 0, 0}, 0.9},
		{"median", []float64{0, 1, 0}, 0.5},
		{"mean", []float64{1. / 3, 1. / 3, 1. / 3}, (0.2 + 0.9 + 0.5) / 3},
		{"hurwicz", []float64{0.6, 0, 0.4}, 0.6*0.9 + 0.4*0.2},
	}
	for _, c := range cases {
		if got := Eval(Family{Kind: OWA}, c.w, o); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Eval = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestChebyshevAndLpKnownValues(t *testing.T) {
	o := pt(0.5, 0.8)
	if got := Eval(Family{Kind: Chebyshev}, []float64{0.9, 0.1}, o); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("chebyshev = %v, want 0.45", got)
	}
	// L2 with equal weights: sqrt((0.25 + 0.64)/2)
	want := math.Sqrt((0.25 + 0.64) / 2)
	if got := Eval(Family{Kind: Lp, P: 2}, []float64{0.5, 0.5}, o); math.Abs(got-want) > 1e-12 {
		t.Errorf("L2 = %v, want %v", got, want)
	}
	// Lp with p = 1 must be the dot product.
	if got := Eval(Family{Kind: Lp, P: 1}, []float64{0.3, 0.7}, o); math.Abs(got-geom.Dot([]float64{0.3, 0.7}, o)) > 1e-15 {
		t.Errorf("L1 = %v, want dot", got)
	}
}

// TestMonotoneInAttributes is the contract the whole stack depends on:
// improving an object in one dimension never lowers its score.
func TestMonotoneInAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, fam := range allFamilies() {
		for trial := 0; trial < 500; trial++ {
			dims := 2 + rng.Intn(5)
			w, o := randWeights(rng, dims), randPoint(rng, dims)
			d := rng.Intn(dims)
			o2 := o.Clone()
			o2[d] = o[d] + rng.Float64()*(1-o[d])
			if Eval(fam, w, o2) < Eval(fam, w, o)-1e-12 {
				t.Fatalf("%v: raising dim %d lowered score: %v -> %v (w=%v o=%v)",
					fam, d, Eval(fam, w, o), Eval(fam, w, o2), w, o)
			}
		}
	}
}

// TestMonotoneInWeights backs the TA threshold: raising a coefficient
// never lowers the score of a fixed non-negative object.
func TestMonotoneInWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, fam := range allFamilies() {
		for trial := 0; trial < 500; trial++ {
			dims := 2 + rng.Intn(5)
			w, o := randWeights(rng, dims), randPoint(rng, dims)
			d := rng.Intn(dims)
			w2 := append([]float64(nil), w...)
			w2[d] += rng.Float64()
			if Eval(fam, w2, o) < Eval(fam, w, o)-1e-12 {
				t.Fatalf("%v: raising weight %d lowered score", fam, d)
			}
		}
	}
}

func TestUpperBoundDominatesInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, fam := range allFamilies() {
		for trial := 0; trial < 300; trial++ {
			dims := 2 + rng.Intn(4)
			lo, hi := make(geom.Point, dims), make(geom.Point, dims)
			p := make(geom.Point, dims)
			for i := 0; i < dims; i++ {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
				p[i] = a + rng.Float64()*(b-a)
			}
			sc := Scorer{Fam: fam, W: randWeights(rng, dims)}
			if sc.Score(p) > sc.UpperBound(lo, hi)+1e-12 {
				t.Fatalf("%v: interior point %v beats UpperBound %v", fam, sc.Score(p), sc.UpperBound(lo, hi))
			}
		}
	}
}

// TestBoundDominatesUnseenFunctions verifies the TA threshold contract:
// any function with coefficients under the per-dimension ceilings and a
// bounded coefficient sum scores at most Family.Bound.
func TestBoundDominatesUnseenFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, fam := range allFamilies() {
		for trial := 0; trial < 400; trial++ {
			dims := 2 + rng.Intn(4)
			o := randPoint(rng, dims)
			ceil := make([]float64, dims)
			for i := range ceil {
				ceil[i] = rng.Float64()
			}
			B := 0.5 + rng.Float64()*1.5
			// Draw a random admissible weight vector: w <= ceil, sum(w) <= B.
			w := make([]float64, dims)
			budget := B
			for _, i := range rng.Perm(dims) {
				v := rng.Float64() * ceil[i]
				if v > budget {
					v = budget
				}
				w[i] = v
				budget -= v
			}
			order := make([]int, dims)
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return o[order[a]] > o[order[b]] })
			sorted := append([]float64(nil), o...)
			sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
			bound := fam.Bound(ceil, o, order, sorted, B)
			if s := Eval(fam, w, o); s > bound+1e-9 {
				t.Fatalf("%v: admissible function scores %v above bound %v (w=%v ceil=%v B=%v o=%v)",
					fam, s, bound, w, ceil, B, o)
			}
		}
	}
}

func TestLinearBoundMatchesKnapsack(t *testing.T) {
	// The linear Bound must coincide with the paper's T_tight: greedy
	// fractional knapsack over dims sorted by object value.
	o := pt(0.9, 0.1, 0.5)
	ceil := []float64{0.7, 0.6, 0.4}
	order := []int{0, 2, 1}
	want := 0.7*0.9 + 0.3*0.5 // budget 1.0: 0.7 to dim 0, 0.3 to dim 2
	got := Family{}.Bound(ceil, o, order, nil, 1.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("linear bound = %v, want %v", got, want)
	}
}

func TestMaxBoundTakesLargest(t *testing.T) {
	o := pt(0.3, 0.9)
	ceil := []float64{1, 1}
	order := []int{1, 0}
	sorted := []float64{0.9, 0.3}
	fams := []Family{{}, {Kind: Chebyshev}}
	got := MaxBound(fams, ceil, o, order, sorted, 1.0)
	lin := Family{}.Bound(ceil, o, order, sorted, 1.0)
	che := Family{Kind: Chebyshev}.Bound(ceil, o, order, sorted, 1.0)
	want := math.Max(lin, che)
	if got != want {
		t.Errorf("MaxBound = %v, want max(%v, %v)", got, lin, che)
	}
}

func TestGammaScale(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, fam := range allFamilies() {
		for trial := 0; trial < 100; trial++ {
			dims := 2 + rng.Intn(4)
			w, o := randWeights(rng, dims), randPoint(rng, dims)
			gamma := 1 + 3*rng.Float64()
			scale := fam.GammaScale(gamma)
			scaled := make([]float64, dims)
			for i := range w {
				scaled[i] = w[i] * scale
			}
			got := Eval(fam, scaled, o)
			want := gamma * Eval(fam, w, o)
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("%v: Eval(γ-scaled) = %v, want γ·Eval = %v", fam, got, want)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	valid := []Family{{}, {Kind: OWA}, {Kind: Chebyshev}, {Kind: Lp, P: 1}, {Kind: Lp, P: 7}}
	for _, f := range valid {
		if err := f.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", f, err)
		}
	}
	invalid := []Family{
		{Kind: Lp, P: 0},
		{Kind: Lp, P: 0.5},
		{Kind: Lp, P: math.NaN()},
		{Kind: Lp, P: math.Inf(1)},
		{Kind: Kind(99)},
	}
	for _, f := range invalid {
		if err := f.Validate(); err == nil {
			t.Errorf("%v: expected validation error", f)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Linear: "linear", OWA: "owa", Chebyshev: "chebyshev", Lp: "lp"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEvalLargeDims(t *testing.T) {
	// OWA beyond the stack scratch must still sort correctly.
	rng := rand.New(rand.NewSource(12))
	dims := maxStackDims + 4
	o := randPoint(rng, dims)
	w := make([]float64, dims)
	w[dims-1] = 1 // minimax
	min := o[0]
	for _, v := range o {
		if v < min {
			min = v
		}
	}
	if got := Eval(Family{Kind: OWA}, w, o); math.Abs(got-min) > 1e-15 {
		t.Errorf("minimax over %d dims = %v, want %v", dims, got, min)
	}
}

func BenchmarkEvalLinear(b *testing.B) {
	w := []float64{0.2, 0.3, 0.1, 0.4}
	o := pt(0.5, 0.2, 0.9, 0.4)
	for i := 0; i < b.N; i++ {
		_ = Eval(Family{}, w, o)
	}
}

func BenchmarkEvalOWA(b *testing.B) {
	w := []float64{0.2, 0.3, 0.1, 0.4}
	o := pt(0.5, 0.2, 0.9, 0.4)
	fam := Family{Kind: OWA}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Eval(fam, w, o)
	}
}
