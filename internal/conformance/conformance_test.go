package conformance

import (
	"testing"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
)

// TestDifferentialStandardSweep is the acceptance gate for every solver
// in the repository: all eight algorithms must produce the oracle
// matching on every cell of the distribution × dimension × capacity ×
// priority grid, and parallel SB must be byte-identical to sequential
// SB. Failures print the offending spec, which reproduces the case
// deterministically.
func TestDifferentialStandardSweep(t *testing.T) {
	specs := StandardSweep(3)
	if len(specs) < 200 {
		t.Fatalf("sweep has %d cases, want >= 200", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			if err := Verify(spec); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParallelWorkerCountSweep locks the determinism guarantee across
// worker counts, including over-subscription (more workers than skyline
// objects).
func TestParallelWorkerCountSweep(t *testing.T) {
	spec := Spec{Seed: 99, Kind: datagen.AntiCorrelated, Dims: 4, FuncCaps: true, ObjCaps: true, Gammas: true}
	p := Generate(spec)
	seq, err := assign.SB(p, config())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64, -1} {
		cfg := config()
		cfg.Workers = workers
		par, err := assign.SB(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := identicalRun(par.Pairs, seq.Pairs); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestSpecReproducibility makes sure Generate is a pure function of the
// spec — the property that makes printed failures replayable.
func TestSpecReproducibility(t *testing.T) {
	spec := Spec{Seed: 4242, Kind: datagen.Correlated, Dims: 3, Gammas: true}
	a, b := Generate(spec), Generate(spec)
	if len(a.Objects) != len(b.Objects) || len(a.Functions) != len(b.Functions) {
		t.Fatal("sizes differ between generations")
	}
	for i := range a.Objects {
		for d := range a.Objects[i].Point {
			if a.Objects[i].Point[d] != b.Objects[i].Point[d] {
				t.Fatal("object coordinates differ between generations")
			}
		}
	}
	for i := range a.Functions {
		if a.Functions[i].Gamma != b.Functions[i].Gamma {
			t.Fatal("gammas differ between generations")
		}
	}
}
