package conformance

import (
	"fmt"
	"math/rand"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
)

// generateBatchScript materializes one mutation script as a concrete
// []assign.Mutation, valid under sequential (FIFO) application: the
// generator tracks its own population model so every removal targets an
// ID that is live at that point of the sequence. The same spec always
// yields the same base problem and mutation list, so a failing script
// reproduces from its printed spec alone.
func generateBatchScript(spec MutationSpec) (*assign.Problem, []assign.Mutation) {
	rng := rand.New(rand.NewSource(spec.Seed))
	p := generateMutationBase(spec, rng)
	liveO := make([]uint64, len(p.Objects))
	for i, o := range p.Objects {
		liveO[i] = o.ID
	}
	liveF := make([]uint64, len(p.Functions))
	for i, f := range p.Functions {
		liveF[i] = f.ID
	}
	nextID := uint64(1_000_000)
	muts := make([]assign.Mutation, 0, spec.Steps)
	for step := 0; step < spec.Steps; step++ {
		switch rng.Intn(4) {
		case 0: // object arrival
			nextID++
			o := datagen.Objects(spec.Kind, 1, spec.Dims, spec.Seed+101*int64(step)+7)[0]
			o.ID = nextID
			if spec.Caps {
				o.Capacity = 1 + rng.Intn(3)
			}
			muts = append(muts, assign.Mutation{Kind: assign.MutAddObject, Object: o})
			liveO = append(liveO, o.ID)
		case 1: // function arrival
			nextID++
			f := datagen.Functions(1, spec.Dims, spec.Seed+211*int64(step)+13)[0]
			if spec.Scorers {
				f = datagen.WithScorerFamilies([]assign.Function{f}, "mixed", spec.Seed+307*int64(step)+17)[0]
			}
			f.ID = nextID
			if spec.Gammas {
				f.Gamma = float64(1 + rng.Intn(4))
			}
			if spec.Caps {
				f.Capacity = 1 + rng.Intn(3)
			}
			muts = append(muts, assign.Mutation{Kind: assign.MutAddFunction, Function: f})
			liveF = append(liveF, f.ID)
		case 2: // object departure
			if len(liveO) <= 2 {
				continue
			}
			i := rng.Intn(len(liveO))
			muts = append(muts, assign.Mutation{Kind: assign.MutRemoveObject, ID: liveO[i]})
			liveO = append(liveO[:i], liveO[i+1:]...)
		default: // function departure
			if len(liveF) <= 1 {
				continue
			}
			i := rng.Intn(len(liveF))
			muts = append(muts, assign.Mutation{Kind: assign.MutRemoveFunction, ID: liveF[i]})
			liveF = append(liveF[:i], liveF[i+1:]...)
		}
	}
	return p, muts
}

// VerifyBatch is the conformance gate for the group-commit path: the
// same mutation script is applied to twin workspaces — one through
// Apply in randomized batch sizes (1..6, so single-mutation batches and
// real group commits interleave), one strictly one mutation at a time —
// and after every batch the two matchings must be score-identical.
// After the full script the batched workspace must additionally match a
// from-scratch SB solve of its final population and pass the stability
// audit, and it must have published fewer epochs than it applied
// mutations whenever a multi-mutation batch occurred.
func VerifyBatch(spec MutationSpec, cfg assign.Config) error {
	p, muts := generateBatchScript(spec)
	batched, err := assign.NewWorkspace(p, cfg)
	if err != nil {
		return fmt.Errorf("[%s] batched build: %w", spec, err)
	}
	defer batched.Close()
	p2, _ := generateBatchScript(spec) // fresh problem value for the twin
	seq, err := assign.NewWorkspace(p2, cfg)
	if err != nil {
		return fmt.Errorf("[%s] sequential build: %w", spec, err)
	}
	defer seq.Close()

	brng := rand.New(rand.NewSource(spec.Seed + 777))
	sawMulti := false
	for start, bi := 0, 0; start < len(muts); bi++ {
		n := 1 + brng.Intn(6)
		if start+n > len(muts) {
			n = len(muts) - start
		}
		batch := muts[start : start+n]
		if n > 1 {
			sawMulti = true
		}
		if err := batched.Apply(batch); err != nil {
			return fmt.Errorf("[%s] batch %d Apply(%d muts): %w", spec, bi, n, err)
		}
		for j := range batch {
			if err := seq.Apply(batch[j : j+1]); err != nil {
				return fmt.Errorf("[%s] batch %d sequential mutation %d: %w", spec, bi, j, err)
			}
		}
		if err := sameMatching(batched.Pairs(), seq.Pairs()); err != nil {
			return fmt.Errorf("[%s] batch %d (%d muts): batched vs sequential: %w", spec, bi, n, err)
		}
		start += n
	}
	if err := checkMutated(batched, spec, "final batched"); err != nil {
		return err
	}
	bs, ss := batched.Stats(), seq.Stats()
	if bs.Mutations != ss.Mutations {
		return fmt.Errorf("[%s] mutation counts diverge: batched %d, sequential %d", spec, bs.Mutations, ss.Mutations)
	}
	if sawMulti && bs.Commits >= ss.Commits {
		return fmt.Errorf("[%s] group commit did not coalesce: batched %d commits, sequential %d", spec, bs.Commits, ss.Commits)
	}
	return nil
}

// VerifyBatchDefault runs VerifyBatch under the standard conformance
// execution environment (small pages, real evictions, non-trivial Ω) —
// the entry point for out-of-package pre-flight checks like loadgen's.
func VerifyBatchDefault(spec MutationSpec) error {
	return VerifyBatch(spec, config())
}

// BatchSweep enumerates the batch-conformance grid: 2 distributions ×
// dims 2..4 × {plain, capacities+priorities} × {linear, mixed scorers},
// scriptsPerCell scripts of 20 mutations each.
func BatchSweep(scriptsPerCell int) []MutationSpec {
	var specs []MutationSpec
	seed := int64(240_000)
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.AntiCorrelated} {
		for dims := 2; dims <= 4; dims++ {
			for _, caps := range []bool{false, true} {
				for _, scorers := range []bool{false, true} {
					for s := 0; s < scriptsPerCell; s++ {
						specs = append(specs, MutationSpec{
							Seed:    seed,
							Kind:    kind,
							Dims:    dims,
							Caps:    caps,
							Gammas:  caps,
							Scorers: scorers,
							Steps:   20,
						})
						seed += 23
					}
				}
			}
		}
	}
	return specs
}
