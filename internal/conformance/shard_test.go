package conformance

import (
	"testing"

	"fairassign/internal/datagen"
)

// shardSweep enumerates the invariance scripts: 3 distributions × dims
// 2..5 × {plain, capacities+priorities}, 10 batches each. Every script
// replays on a single Workspace and on engines at every ShardCounts
// entry simultaneously.
func shardSweep(scriptsPerCell int) []MutationSpec {
	var specs []MutationSpec
	seed := int64(11_000)
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		for dims := 2; dims <= 5; dims++ {
			for _, caps := range []bool{false, true} {
				for s := 0; s < scriptsPerCell; s++ {
					specs = append(specs, MutationSpec{
						Seed:   seed,
						Kind:   kind,
						Dims:   dims,
						Caps:   caps,
						Gammas: caps,
						Steps:  10,
					})
					seed++
				}
			}
		}
	}
	return specs
}

// TestShardInvarianceSweep is the acceptance gate for the sharded tier:
// at shard counts {1,2,4,7}, the engine's matching must stay
// byte-identical to the single workspace's after every mutation batch,
// with agreeing invariant stats and exactly matching global TopK
// results through the ceiling merge.
func TestShardInvarianceSweep(t *testing.T) {
	for _, spec := range shardSweep(2) {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			if err := VerifyShardInvariance(spec, config(), ShardCounts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardInvarianceScorers mixes non-linear scorer families into the
// scripts: the cross-shard frontier exchange and displacement combine
// must agree with the single-tree search under OWA, minimax, and the
// other monotone families too.
func TestShardInvarianceScorers(t *testing.T) {
	seed := int64(12_000)
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.AntiCorrelated} {
		for dims := 2; dims <= 4; dims++ {
			spec := MutationSpec{Seed: seed, Kind: kind, Dims: dims, Caps: true, Scorers: true, Steps: 10}
			seed++
			t.Run(spec.String(), func(t *testing.T) {
				t.Parallel()
				if err := VerifyShardInvariance(spec, config(), ShardCounts); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestShardInvarianceFileStore re-runs one script per grid cell with
// every shard store on a real temp-file FileStore.
func TestShardInvarianceFileStore(t *testing.T) {
	for _, spec := range shardSweep(1) {
		spec := spec
		if spec.Dims%2 == 1 { // halve the grid: file I/O scripts are slower
			continue
		}
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			cfg := config()
			cfg.StoreFactory = fileStoreFactory(t.TempDir())
			if err := VerifyShardInvariance(spec, cfg, ShardCounts); err != nil {
				t.Fatal(err)
			}
		})
	}
}
