package conformance

import (
	"testing"
)

// TestBatchSweep is the acceptance gate for group-commit mutation
// batches: across randomized scripts (2 distributions × dims 2–4 ×
// capacities/priorities × linear and mixed scorer families, 20
// interleaved arrivals/departures each, applied in random batch sizes),
// Apply(batch) must be result-identical to applying the same mutations
// one at a time, match a cold SB solve of the final population, and
// publish fewer epochs than sequential application.
func TestBatchSweep(t *testing.T) {
	specs := BatchSweep(2)
	if len(specs) < 40 {
		t.Fatalf("sweep has %d scripts, want >= 40", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			if err := VerifyBatch(spec, config()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchSweepFileStore re-runs one script per cell with every
// workspace store on a real temp-file FileStore: batched structural
// application and single-epoch publish must survive the on-disk
// format too.
func TestBatchSweepFileStore(t *testing.T) {
	for _, spec := range BatchSweep(1) {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			cfg := config()
			cfg.StoreFactory = fileStoreFactory(t.TempDir())
			if err := VerifyBatch(spec, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
