package conformance

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
)

// VerifyCrashReplay is the conformance gate for durable recovery: the
// same mutation script runs on a durable workspace that crashes midway
// (abandoned without Close — the WAL fsync barrier is all that saved
// its state) and on an uninterrupted in-memory twin. The durable side
// takes a snapshot partway through the pre-crash prefix, so recovery
// exercises snapshot restore *and* WAL replay; after recovery it
// finishes the script and must reach a matching score-identical to the
// twin's, must equal a from-scratch solve of the final population, and
// must pass the stability audit.
func VerifyCrashReplay(spec MutationSpec) error {
	dir, err := os.MkdirTemp("", "fairassign-conf-crash-*")
	if err != nil {
		return fmt.Errorf("[%s] crash-replay tempdir: %w", spec, err)
	}
	defer os.RemoveAll(dir)

	cfg := config()
	cfg.Durable = true
	cfg.WALDir = filepath.Join(dir, "wal")

	p, muts := generateBatchScript(spec)
	dur, err := assign.NewWorkspace(p, cfg)
	if err != nil {
		return fmt.Errorf("[%s] durable build: %w", spec, err)
	}
	defer dur.Close()
	p2, _ := generateBatchScript(spec)
	twin, err := assign.NewWorkspace(p2, config())
	if err != nil {
		return fmt.Errorf("[%s] twin build: %w", spec, err)
	}
	defer twin.Close()

	// Crash midway; snapshot partway through the surviving prefix so
	// replay has a non-trivial tail. Batch sizes are randomized like
	// VerifyBatch so group commits land in the WAL as single records.
	crashAt := len(muts) / 2
	saveAt := crashAt / 2
	brng := rand.New(rand.NewSource(spec.Seed + 555))
	apply := func(ws *assign.Workspace, muts []assign.Mutation, save bool, off int) error {
		for start := 0; start < len(muts); {
			n := 1 + brng.Intn(4)
			if start+n > len(muts) {
				n = len(muts) - start
			}
			if err := ws.Apply(muts[start : start+n]); err != nil {
				return fmt.Errorf("mutation %d: %w", off+start, err)
			}
			start += n
			if save && off+start >= saveAt {
				save = false
				if err := ws.SaveSnapshot(); err != nil {
					return fmt.Errorf("snapshot at mutation %d: %w", off+start, err)
				}
			}
		}
		return nil
	}
	if err := apply(dur, muts[:crashAt], true, 0); err != nil {
		return fmt.Errorf("[%s] durable pre-crash: %w", spec, err)
	}
	// Crash: the workspace is abandoned, never Closed. Recovery must
	// reconstruct every acknowledged mutation from the directory alone.
	rec, err := assign.OpenWorkspace(cfg)
	if err != nil {
		return fmt.Errorf("[%s] recovery: %w", spec, err)
	}
	defer rec.Close()
	info := rec.Recovery()
	if info == nil {
		return fmt.Errorf("[%s] recovered workspace reports no RecoveryInfo", spec)
	}
	// The abandoned instance is still consistent in memory — the
	// simulated crash only withholds its Close — so its pairs are the
	// ground truth recovery must reproduce.
	if err := sameMatching(rec.Pairs(), dur.Pairs()); err != nil {
		return fmt.Errorf("[%s] recovered vs crashed (replayed %d batches from epoch %d): %w",
			spec, info.BatchesReplayed, info.SnapshotEpoch, err)
	}

	// Finish the script on the recovered side and on the twin (which
	// runs it uninterrupted); use a fresh batch schedule for the twin so
	// both consume the identical mutation order regardless of batching.
	if err := apply(rec, muts[crashAt:], false, crashAt); err != nil {
		return fmt.Errorf("[%s] post-recovery: %w", spec, err)
	}
	for j := range muts {
		if err := twin.Apply(muts[j : j+1]); err != nil {
			return fmt.Errorf("[%s] twin mutation %d: %w", spec, j, err)
		}
	}
	if err := sameMatching(rec.Pairs(), twin.Pairs()); err != nil {
		return fmt.Errorf("[%s] recovered-and-finished vs uninterrupted twin: %w", spec, err)
	}
	return checkMutated(rec, spec, "final recovered")
}

// CrashReplaySweep enumerates the crash-replay conformance grid: a
// compact slice of the batch grid (both distributions, dims 2..3, with
// and without capacities/scorer mixing) with longer scripts so the
// snapshot, the replayed WAL tail, and the post-recovery mutations all
// carry several batches.
func CrashReplaySweep(scriptsPerCell int) []MutationSpec {
	var specs []MutationSpec
	seed := int64(610_000)
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.AntiCorrelated} {
		for dims := 2; dims <= 3; dims++ {
			for _, extras := range []bool{false, true} {
				for s := 0; s < scriptsPerCell; s++ {
					specs = append(specs, MutationSpec{
						Seed:    seed,
						Kind:    kind,
						Dims:    dims,
						Caps:    extras,
						Gammas:  extras,
						Scorers: extras,
						Steps:   32,
					})
					seed += 31
				}
			}
		}
	}
	return specs
}
