package conformance

import (
	"fmt"
	"math/rand"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
)

// ScorerSpec describes one randomized case of the scorer-family sweep:
// a problem instance whose functions score under a non-linear monotone
// family (or a mix of families), differential-tested against the
// generalized definitional greedy. Everything derives deterministically
// from the fields.
type ScorerSpec struct {
	Seed   int64
	Kind   datagen.Kind // object distribution
	Dims   int          // 2..4 in the standard sweep
	Mode   string       // datagen.ScorerModes entry
	Caps   bool         // random capacities in [1,3] on both sides
	Gammas bool         // random integer priorities γ in [1,4]
}

func (s ScorerSpec) String() string {
	return fmt.Sprintf("scorer seed=%d kind=%s dims=%d mode=%s caps=%t gammas=%t",
		s.Seed, s.Kind, s.Dims, s.Mode, s.Caps, s.Gammas)
}

// GenerateScorer builds the problem instance for a scorer spec.
func GenerateScorer(spec ScorerSpec) *assign.Problem {
	rng := rand.New(rand.NewSource(spec.Seed))
	nf := 5 + rng.Intn(12)  // 5..16 functions
	no := 30 + rng.Intn(71) // 30..100 objects
	objs := datagen.Objects(spec.Kind, no, spec.Dims, spec.Seed+1)
	funcs := datagen.Functions(nf, spec.Dims, spec.Seed+2)
	funcs = datagen.WithScorerFamilies(funcs, spec.Mode, spec.Seed+3)
	if spec.Gammas {
		funcs = datagen.WithRandomGamma(funcs, 4, spec.Seed+4)
	}
	if spec.Caps {
		funcs = datagen.WithRandomFunctionCapacity(funcs, 3, spec.Seed+5)
		for i := range objs {
			objs[i].Capacity = 1 + rng.Intn(3)
		}
	}
	return &assign.Problem{Dims: spec.Dims, Objects: objs, Functions: funcs}
}

// VerifyScorers runs one scorer-family differential case end to end:
// every algorithm (the SB family, Brute Force, Chain, SB-alt, the
// two-skyline variant, and parallel SB) plus a drained Progressive run
// must reproduce the generalized Oracle matching, parallel SB must stay
// byte-identical to sequential SB, and the Oracle matching itself must
// be stable under the generalized blocking-pair audit.
func VerifyScorers(spec ScorerSpec) error {
	p := GenerateScorer(spec)
	oracle, err := assign.Oracle(p)
	if err != nil {
		return fmt.Errorf("[%s] oracle: %w", spec, err)
	}
	if err := assign.IsStable(p, oracle.Pairs); err != nil {
		return fmt.Errorf("[%s] oracle matching unstable: %w", spec, err)
	}
	var sbPairs []assign.Pair
	for _, alg := range Algorithms() {
		res, err := alg.Run(p, config())
		if err != nil {
			return fmt.Errorf("[%s] %s: %w", spec, alg.Name, err)
		}
		if err := sameMatching(res.Pairs, oracle.Pairs); err != nil {
			return fmt.Errorf("[%s] %s vs Oracle: %w", spec, alg.Name, err)
		}
		switch alg.Name {
		case "SB":
			sbPairs = res.Pairs
		case "SBParallel":
			if err := identicalRun(res.Pairs, sbPairs); err != nil {
				return fmt.Errorf("[%s] SBParallel not byte-identical to SB: %w", spec, err)
			}
		}
	}
	// Progressive: drain the on-demand stream and compare the multiset.
	prog, err := assign.NewProgressive(p, config())
	if err != nil {
		return fmt.Errorf("[%s] progressive: %w", spec, err)
	}
	var drained []assign.Pair
	for {
		pair, ok, err := prog.Next()
		if err != nil {
			return fmt.Errorf("[%s] progressive next: %w", spec, err)
		}
		if !ok {
			break
		}
		drained = append(drained, pair)
	}
	if err := sameMatching(drained, oracle.Pairs); err != nil {
		return fmt.Errorf("[%s] Progressive vs Oracle: %w", spec, err)
	}
	return nil
}

// ScorerSweep enumerates the scorer-family grid — every non-linear
// mode (OWA, minimax, best, median, Chebyshev, Lp, mixed) × 2 object
// distributions × dims 2..4 × {plain, capacities} × {γ on, off} — with
// seedsPerCell seeds per cell. seedsPerCell = 1 yields 168 cases.
func ScorerSweep(seedsPerCell int) []ScorerSpec {
	var specs []ScorerSpec
	seed := int64(70_000)
	for _, mode := range datagen.ScorerModes {
		for _, kind := range []datagen.Kind{datagen.Independent, datagen.AntiCorrelated} {
			for dims := 2; dims <= 4; dims++ {
				for _, caps := range []bool{false, true} {
					for _, gammas := range []bool{false, true} {
						for s := 0; s < seedsPerCell; s++ {
							specs = append(specs, ScorerSpec{
								Seed:   seed,
								Kind:   kind,
								Dims:   dims,
								Mode:   mode,
								Caps:   caps,
								Gammas: gammas,
							})
							seed += 13
						}
					}
				}
			}
		}
	}
	return specs
}
