package conformance

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/pagestore"
)

// fileStoreFactory returns a Config.StoreFactory backed by real temp
// files (one per store the solver builds).
func fileStoreFactory(dir string) func(int) (pagestore.Store, error) {
	var n atomic.Int64
	return func(pageSize int) (pagestore.Store, error) {
		return pagestore.NewFileStore(filepath.Join(dir, fmt.Sprintf("store-%d.pag", n.Add(1))), pageSize)
	}
}

// TestMutationSweep is the acceptance gate for the incremental
// Workspace: across 144 randomized scripts (3 distributions × dims 2–5
// × capacities × priorities, 12 interleaved arrivals/departures each),
// the repaired matching after every mutation must be score-identical to
// a from-scratch SB solve of the snapshot, and stable.
func TestMutationSweep(t *testing.T) {
	specs := MutationSweep(3)
	if len(specs) < 100 {
		t.Fatalf("sweep has %d scripts, want >= 100", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			if err := VerifyMutations(spec, config()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMutationSweepFileStore re-runs one script per grid cell with
// every workspace store on a real temp-file FileStore: the on-disk
// format must survive the dynamic insert/delete traffic the one-shot
// algorithms never generate.
func TestMutationSweepFileStore(t *testing.T) {
	for _, spec := range MutationSweep(1) {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			cfg := config()
			cfg.StoreFactory = fileStoreFactory(t.TempDir())
			if err := VerifyMutations(spec, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkspaceIOParityFileStore runs the identical mutation script on
// a MemStore-backed and a FileStore-backed workspace and asserts the
// two perform exactly the same logical and physical page I/O — the
// backend must be invisible to the paper's metrics.
func TestWorkspaceIOParityFileStore(t *testing.T) {
	spec := MutationSpec{Seed: 32_777, Kind: datagen.AntiCorrelated, Dims: 4, Caps: true, Steps: 12}
	run := func(cfg assign.Config) assign.WorkspaceStats {
		t.Helper()
		if err := VerifyMutations(spec, cfg); err != nil {
			t.Fatal(err)
		}
		// Re-run the script on a fresh workspace to capture its stats
		// (VerifyMutations owns its workspace); stats come from a
		// dedicated replay.
		return replayForStats(t, spec, cfg)
	}
	memStats := run(config())
	fileCfg := config()
	fileCfg.StoreFactory = fileStoreFactory(t.TempDir())
	fileStats := run(fileCfg)
	if memStats.IO != fileStats.IO {
		t.Fatalf("I/O diverged between backends:\n mem  %+v\n file %+v", memStats.IO, fileStats.IO)
	}
	if memStats.ChainSteps != fileStats.ChainSteps || memStats.Searches != fileStats.Searches {
		t.Fatalf("repair work diverged between backends: mem %+v, file %+v", memStats, fileStats)
	}
}

// replayForStats applies spec's mutation sequence (without the
// per-step cold solves) and returns the workspace stats.
func replayForStats(t *testing.T, spec MutationSpec, cfg assign.Config) assign.WorkspaceStats {
	t.Helper()
	ws, err := ReplayMutations(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	return ws.Stats()
}

// TestOneShotIOParityFileStore runs one full differential configuration
// (every algorithm vs the oracle) on temp-file FileStores, then
// re-checks that SB's I/O counters match the MemStore run page for
// page.
func TestOneShotIOParityFileStore(t *testing.T) {
	spec := Spec{Seed: 1234, Kind: datagen.AntiCorrelated, Dims: 3, FuncCaps: true, ObjCaps: true, Gammas: true}
	fileCfg := config()
	fileCfg.StoreFactory = fileStoreFactory(t.TempDir())
	if err := VerifyConfig(spec, fileCfg); err != nil {
		t.Fatal(err)
	}

	p := Generate(spec)
	for _, alg := range []Algorithm{{"SB", assign.SB}, {"SBAlt", assign.SBAlt}, {"Chain", assign.Chain}} {
		mem, err := alg.Run(p, config())
		if err != nil {
			t.Fatal(err)
		}
		fileCfg := config()
		fileCfg.StoreFactory = fileStoreFactory(t.TempDir())
		file, err := alg.Run(p, fileCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := identicalRun(file.Pairs, mem.Pairs); err != nil {
			t.Fatalf("%s: matching diverged between backends: %v", alg.Name, err)
		}
		if mem.Stats.IO != file.Stats.IO {
			t.Fatalf("%s: I/O diverged between backends:\n mem  %+v\n file %+v", alg.Name, mem.Stats.IO, file.Stats.IO)
		}
	}
}
