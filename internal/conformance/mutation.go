package conformance

import (
	"fmt"
	"math/rand"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
)

// MutationSpec describes one randomized mutation script for the
// incremental Workspace: an initial instance plus a deterministic
// sequence of interleaved arrivals and departures on both sides.
// Everything is derived from the fields, so a failing script reproduces
// from its printed spec alone.
type MutationSpec struct {
	Seed    int64
	Kind    datagen.Kind // object distribution (initial set and arrivals)
	Dims    int          // 2..5 in the standard sweep
	Caps    bool         // random capacities in [1,3] on both sides
	Gammas  bool         // random integer priorities γ in [1,4]
	Scorers bool         // mix scoring families (OWA/minimax/…/Lp) on base set and arrivals
	Steps   int          // number of mutations
}

func (s MutationSpec) String() string {
	return fmt.Sprintf("mutation seed=%d kind=%s dims=%d caps=%t gammas=%t scorers=%t steps=%d",
		s.Seed, s.Kind, s.Dims, s.Caps, s.Gammas, s.Scorers, s.Steps)
}

// generateMutationBase builds the initial instance of a script. Sizes
// stay small enough that the per-mutation cold re-solve keeps the whole
// sweep cheap while every script still exercises multi-loop solves,
// displacement chains, and vacancy chains.
func generateMutationBase(spec MutationSpec, rng *rand.Rand) *assign.Problem {
	nf := 4 + rng.Intn(10)  // 4..13 functions
	no := 20 + rng.Intn(61) // 20..80 objects
	objs := datagen.Objects(spec.Kind, no, spec.Dims, spec.Seed+1)
	funcs := datagen.Functions(nf, spec.Dims, spec.Seed+2)
	if spec.Scorers {
		funcs = datagen.WithScorerFamilies(funcs, "mixed", spec.Seed+9)
	}
	if spec.Gammas {
		funcs = datagen.WithRandomGamma(funcs, 4, spec.Seed+3)
	}
	if spec.Caps {
		funcs = datagen.WithRandomFunctionCapacity(funcs, 3, spec.Seed+4)
		for i := range objs {
			objs[i].Capacity = 1 + rng.Intn(3)
		}
	}
	return &assign.Problem{Dims: spec.Dims, Objects: objs, Functions: funcs}
}

// checkMutated asserts that the workspace matching equals a cold SB
// solve of the current snapshot (score-identical multiset) and is a
// stable matching of it.
func checkMutated(ws *assign.Workspace, spec MutationSpec, label string) error {
	snap := ws.ProblemSnapshot()
	cold, err := assign.SB(snap, config())
	if err != nil {
		return fmt.Errorf("[%s] %s: cold solve: %w", spec, label, err)
	}
	got := ws.Pairs()
	if err := sameMatching(got, cold.Pairs); err != nil {
		return fmt.Errorf("[%s] %s: workspace vs cold SB: %w", spec, label, err)
	}
	if err := assign.IsStable(snap, got); err != nil {
		return fmt.Errorf("[%s] %s: workspace matching unstable: %w", spec, label, err)
	}
	return nil
}

// VerifyMutations runs one script end to end under the given workspace
// config: after the initial build and after every mutation, the
// workspace matching must be score-identical to a from-scratch SB solve
// of the snapshot. It returns the first discrepancy, or nil.
func VerifyMutations(spec MutationSpec, cfg assign.Config) error {
	ws, err := runMutations(spec, cfg, func(ws *assign.Workspace, label string) error {
		return checkMutated(ws, spec, label)
	})
	if err != nil {
		return err
	}
	ws.Close()
	return nil
}

// ReplayMutations applies the script without per-step validation and
// returns the live workspace — for tests comparing end-state metrics
// (e.g. I/O parity across store backends) after identical traffic.
func ReplayMutations(spec MutationSpec, cfg assign.Config) (*assign.Workspace, error) {
	return runMutations(spec, cfg, nil)
}

// runMutations builds the workspace and applies the script's mutation
// sequence, invoking check (when non-nil) after the initial build and
// after every mutation. In checked runs every step is additionally
// bracketed by snapshot reads: a view taken before the mutation must
// return byte-identical pairs after it lands (snapshot isolation),
// while a view taken after it must byte-match the live accessors. On
// success the caller owns the workspace.
func runMutations(spec MutationSpec, cfg assign.Config, check func(*assign.Workspace, string) error) (*assign.Workspace, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	p := generateMutationBase(spec, rng)
	ws, err := assign.NewWorkspace(p, cfg)
	if err != nil {
		return nil, fmt.Errorf("[%s] build: %w", spec, err)
	}
	fail := func(err error) (*assign.Workspace, error) {
		ws.Close()
		return nil, err
	}
	if check != nil {
		if err := check(ws, "initial"); err != nil {
			return fail(err)
		}
	}

	nextID := uint64(1_000_000)
	for step := 0; step < spec.Steps; step++ {
		label := fmt.Sprintf("step %d", step)
		snap := ws.ProblemSnapshot()
		var before *assign.View
		var frozen []assign.Pair
		if check != nil {
			v, err := ws.Snapshot()
			if err != nil {
				return fail(fmt.Errorf("[%s] %s Snapshot: %w", spec, label, err))
			}
			before = v
			frozen = append([]assign.Pair(nil), v.Pairs()...)
		}
		switch rng.Intn(4) {
		case 0: // object arrival, drawn from the script's distribution
			nextID++
			o := datagen.Objects(spec.Kind, 1, spec.Dims, spec.Seed+101*int64(step)+7)[0]
			o.ID = nextID
			if spec.Caps {
				o.Capacity = 1 + rng.Intn(3)
			}
			if err := ws.AddObject(o); err != nil {
				return fail(fmt.Errorf("[%s] %s AddObject: %w", spec, label, err))
			}
			label += " AddObject"
		case 1: // function arrival
			nextID++
			f := datagen.Functions(1, spec.Dims, spec.Seed+211*int64(step)+13)[0]
			if spec.Scorers {
				f = datagen.WithScorerFamilies([]assign.Function{f}, "mixed", spec.Seed+307*int64(step)+17)[0]
			}
			f.ID = nextID
			if spec.Gammas {
				f.Gamma = float64(1 + rng.Intn(4))
			}
			if spec.Caps {
				f.Capacity = 1 + rng.Intn(3)
			}
			if err := ws.AddFunction(f); err != nil {
				return fail(fmt.Errorf("[%s] %s AddFunction: %w", spec, label, err))
			}
			label += " AddFunction"
		case 2: // object departure
			if len(snap.Objects) <= 2 {
				closeView(before)
				continue
			}
			id := snap.Objects[rng.Intn(len(snap.Objects))].ID
			if err := ws.RemoveObject(id); err != nil {
				return fail(fmt.Errorf("[%s] %s RemoveObject(%d): %w", spec, label, id, err))
			}
			label += " RemoveObject"
		default: // function departure
			if len(snap.Functions) <= 1 {
				closeView(before)
				continue
			}
			id := snap.Functions[rng.Intn(len(snap.Functions))].ID
			if err := ws.RemoveFunction(id); err != nil {
				return fail(fmt.Errorf("[%s] %s RemoveFunction(%d): %w", spec, label, id, err))
			}
			label += " RemoveFunction"
		}
		if check != nil {
			if err := check(ws, label); err != nil {
				closeView(before)
				return fail(err)
			}
			if err := verifyInterleavedViews(ws, before, frozen); err != nil {
				closeView(before)
				return fail(fmt.Errorf("[%s] %s: %w", spec, label, err))
			}
			closeView(before)
		}
	}
	return ws, nil
}

func closeView(v *assign.View) {
	if v != nil {
		v.Close()
	}
}

// verifyInterleavedViews asserts snapshot isolation around one applied
// mutation: the pre-mutation view still returns bit-identical pairs
// and a consistent stability audit, while a fresh view byte-matches the
// live workspace accessors.
func verifyInterleavedViews(ws *assign.Workspace, before *assign.View, frozen []assign.Pair) error {
	got := before.Pairs()
	if len(got) != len(frozen) {
		return fmt.Errorf("pre-mutation view drifted: %d pairs, had %d", len(got), len(frozen))
	}
	for i := range got {
		if got[i] != frozen[i] {
			return fmt.Errorf("pre-mutation view drifted at pair %d: %+v vs %+v", i, got[i], frozen[i])
		}
	}
	if err := before.VerifyStable(); err != nil {
		return fmt.Errorf("pre-mutation view no longer stable for its own population: %w", err)
	}
	after, err := ws.Snapshot()
	if err != nil {
		return fmt.Errorf("post-mutation Snapshot: %w", err)
	}
	defer after.Close()
	if after.Epoch() <= before.Epoch() {
		return fmt.Errorf("epoch did not advance across mutation: %d -> %d", before.Epoch(), after.Epoch())
	}
	live := ws.Pairs()
	fresh := after.Pairs()
	if len(live) != len(fresh) {
		return fmt.Errorf("fresh view has %d pairs, live workspace %d", len(fresh), len(live))
	}
	for i := range live {
		if live[i] != fresh[i] {
			return fmt.Errorf("fresh view diverges from live workspace at pair %d", i)
		}
	}
	return nil
}

// MutationSweep enumerates the script grid — 3 distributions × dims
// 2..5 × {plain, capacities} × {γ on, off} — with scriptsPerCell
// scripts per cell. scriptsPerCell = 3 yields 144 scripts of 12
// mutations each. Scorer mixing is swept separately by
// ScorerMutationSweep.
func MutationSweep(scriptsPerCell int) []MutationSpec {
	var specs []MutationSpec
	seed := int64(5_000)
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		for dims := 2; dims <= 5; dims++ {
			for _, caps := range []bool{false, true} {
				for _, gammas := range []bool{false, true} {
					for s := 0; s < scriptsPerCell; s++ {
						specs = append(specs, MutationSpec{
							Seed:   seed,
							Kind:   kind,
							Dims:   dims,
							Caps:   caps,
							Gammas: gammas,
							Steps:  12,
						})
						seed += 11
					}
				}
			}
		}
	}
	return specs
}

// VerifyConfig runs the one-shot differential case of Verify but with a
// caller-supplied execution config — used to put the whole algorithm
// suite on a different store backend (FileStore) and to compare I/O
// accounting across backends.
func VerifyConfig(spec Spec, cfg assign.Config) error {
	p := Generate(spec)
	oracle, err := assign.Oracle(p)
	if err != nil {
		return fmt.Errorf("[%s] oracle: %w", spec, err)
	}
	for _, alg := range Algorithms() {
		res, err := alg.Run(p, cfg)
		if err != nil {
			return fmt.Errorf("[%s] %s: %w", spec, alg.Name, err)
		}
		if err := sameMatching(res.Pairs, oracle.Pairs); err != nil {
			return fmt.Errorf("[%s] %s vs Oracle: %w", spec, alg.Name, err)
		}
	}
	return nil
}

// ScorerMutationSweep enumerates mutation scripts with mixed scoring
// families on the base population AND on function arrivals — the
// acceptance gate for non-linear Workspace repair. 2 distributions ×
// dims 2..4 × {plain, capacities} × {γ on, off} × scriptsPerCell.
func ScorerMutationSweep(scriptsPerCell int) []MutationSpec {
	var specs []MutationSpec
	seed := int64(90_000)
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.AntiCorrelated} {
		for dims := 2; dims <= 4; dims++ {
			for _, caps := range []bool{false, true} {
				for _, gammas := range []bool{false, true} {
					for s := 0; s < scriptsPerCell; s++ {
						specs = append(specs, MutationSpec{
							Seed:    seed,
							Kind:    kind,
							Dims:    dims,
							Caps:    caps,
							Gammas:  gammas,
							Scorers: true,
							Steps:   12,
						})
						seed += 19
					}
				}
			}
		}
	}
	return specs
}
