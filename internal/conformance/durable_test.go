package conformance

import "testing"

// TestCrashReplaySweep is the acceptance gate for durable recovery
// semantics at the conformance layer: for every scripted case, a
// durable workspace crashed mid-script (snapshot + WAL tail on disk)
// must recover to exactly its acknowledged state, finish the script,
// and match both an uninterrupted twin and a from-scratch solve.
func TestCrashReplaySweep(t *testing.T) {
	for _, spec := range CrashReplaySweep(1) {
		if err := VerifyCrashReplay(spec); err != nil {
			t.Fatal(err)
		}
	}
}
