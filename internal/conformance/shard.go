package conformance

import (
	"fmt"
	"math/rand"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/score"
	"fairassign/internal/shard"
)

// ShardCounts is the standard shard-count grid of the invariance sweep.
// 1 exercises the degenerate single-shard engine against the workspace,
// 2 and 4 the even spatial splits, and 7 an odd count whose uneven
// ranges catch any balance assumption baked into routing or repair.
var ShardCounts = []int{1, 2, 4, 7}

// identicalPairs asserts two definitionally sorted pair lists are
// byte-identical: same pairs, same order, bit-equal scores. This is the
// shard-count invariance contract — stronger than sameMatching's
// epsilon, because the sharded engine runs the same float operations in
// the same order as the workspace, just routed through per-shard
// structures.
func identicalPairs(got, want []assign.Pair) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("pair %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// VerifyShardInvariance runs one mutation script simultaneously on a
// single Workspace and on sharded engines at every given shard count,
// applying identical mutation batches to all replicas. After the
// initial build and after every batch it asserts, per engine:
//
//   - the matching is byte-identical to the workspace's (same pairs,
//     same definitional order, bit-equal scores);
//   - the partition-invariant stats (objects, functions, assigned
//     units) agree;
//   - global TopK through the sharded view's ceiling merge returns
//     exactly what the workspace view's single-tree BRS returns, for a
//     sample of live preference functions;
//   - the sharded view's frozen matching is stable for its own frozen
//     population.
func VerifyShardInvariance(spec MutationSpec, cfg assign.Config, counts []int) error {
	rng := rand.New(rand.NewSource(spec.Seed))
	p := generateMutationBase(spec, rng)
	ws, err := assign.NewWorkspace(p, cfg)
	if err != nil {
		return fmt.Errorf("[%s] build workspace: %w", spec, err)
	}
	defer ws.Close()
	engines := make([]*shard.Engine, len(counts))
	for i, n := range counts {
		eng, err := shard.New(p, cfg, shard.Options{Shards: n})
		if err != nil {
			return fmt.Errorf("[%s] build %d-shard engine: %w", spec, n, err)
		}
		defer eng.Close()
		engines[i] = eng
	}

	check := func(label string) error {
		want := ws.Pairs()
		wstats := ws.Stats()
		wv, err := ws.Snapshot()
		if err != nil {
			return fmt.Errorf("[%s] %s: workspace snapshot: %w", spec, label, err)
		}
		defer wv.Close()
		scorers := sampleScorers(ws.ProblemSnapshot(), rng, 3)
		for i, eng := range engines {
			n := counts[i]
			if err := identicalPairs(eng.Pairs(), want); err != nil {
				return fmt.Errorf("[%s] %s: %d shards vs workspace: %w", spec, label, n, err)
			}
			estats := eng.Stats()
			if estats.Objects != wstats.Objects || estats.Functions != wstats.Functions ||
				estats.AssignedUnits != wstats.AssignedUnits {
				return fmt.Errorf("[%s] %s: %d shards stats (%d obj, %d func, %d units) vs workspace (%d, %d, %d)",
					spec, label, n, estats.Objects, estats.Functions, estats.AssignedUnits,
					wstats.Objects, wstats.Functions, wstats.AssignedUnits)
			}
			ev, err := eng.Snapshot()
			if err != nil {
				return fmt.Errorf("[%s] %s: %d shards snapshot: %w", spec, label, n, err)
			}
			if err := func() error {
				defer ev.Close()
				if err := identicalPairs(ev.Pairs(), want); err != nil {
					return fmt.Errorf("view pairs: %w", err)
				}
				if err := ev.VerifyStable(); err != nil {
					return fmt.Errorf("view unstable: %w", err)
				}
				for _, sc := range scorers {
					k := 1 + rng.Intn(12)
					wi, wsc, err := wv.TopKScorer(sc, k)
					if err != nil {
						return fmt.Errorf("workspace topk: %w", err)
					}
					ei, esc, err := ev.TopKScorer(sc, k)
					if err != nil {
						return fmt.Errorf("sharded topk: %w", err)
					}
					if len(ei) != len(wi) {
						return fmt.Errorf("topk(k=%d): %d results, want %d", k, len(ei), len(wi))
					}
					for j := range wi {
						if ei[j].ID != wi[j].ID || esc[j] != wsc[j] {
							return fmt.Errorf("topk(k=%d) rank %d: got (%d, %v), want (%d, %v)",
								k, j, ei[j].ID, esc[j], wi[j].ID, wsc[j])
						}
					}
				}
				return nil
			}(); err != nil {
				return fmt.Errorf("[%s] %s: %d shards: %w", spec, label, n, err)
			}
		}
		return nil
	}

	if err := check("initial"); err != nil {
		return err
	}

	objIDs := make([]uint64, 0, len(p.Objects))
	for _, o := range p.Objects {
		objIDs = append(objIDs, o.ID)
	}
	funcIDs := make([]uint64, 0, len(p.Functions))
	for _, f := range p.Functions {
		funcIDs = append(funcIDs, f.ID)
	}
	nextID := uint64(1_000_000)
	for step := 0; step < spec.Steps; step++ {
		size := 1 + rng.Intn(3)
		var muts []assign.Mutation
		for j := 0; j < size; j++ {
			switch rng.Intn(4) {
			case 0: // object arrival
				nextID++
				o := datagen.Objects(spec.Kind, 1, spec.Dims, spec.Seed+101*int64(step)+7*int64(j+1))[0]
				o.ID = nextID
				if spec.Caps {
					o.Capacity = 1 + rng.Intn(3)
				}
				muts = append(muts, assign.Mutation{Kind: assign.MutAddObject, Object: o})
				objIDs = append(objIDs, o.ID)
			case 1: // function arrival
				nextID++
				f := datagen.Functions(1, spec.Dims, spec.Seed+211*int64(step)+13*int64(j+1))[0]
				if spec.Scorers {
					f = datagen.WithScorerFamilies([]assign.Function{f}, "mixed", spec.Seed+307*int64(step)+17*int64(j+1))[0]
				}
				f.ID = nextID
				if spec.Gammas {
					f.Gamma = float64(1 + rng.Intn(4))
				}
				if spec.Caps {
					f.Capacity = 1 + rng.Intn(3)
				}
				muts = append(muts, assign.Mutation{Kind: assign.MutAddFunction, Function: f})
				funcIDs = append(funcIDs, f.ID)
			case 2: // object departure
				if len(objIDs) <= 2 {
					continue
				}
				at := rng.Intn(len(objIDs))
				id := objIDs[at]
				objIDs = append(objIDs[:at], objIDs[at+1:]...)
				muts = append(muts, assign.Mutation{Kind: assign.MutRemoveObject, ID: id})
			default: // function departure
				if len(funcIDs) <= 1 {
					continue
				}
				at := rng.Intn(len(funcIDs))
				id := funcIDs[at]
				funcIDs = append(funcIDs[:at], funcIDs[at+1:]...)
				muts = append(muts, assign.Mutation{Kind: assign.MutRemoveFunction, ID: id})
			}
		}
		if len(muts) == 0 {
			continue
		}
		label := fmt.Sprintf("batch %d (%d muts)", step, len(muts))
		if err := ws.Apply(muts); err != nil {
			return fmt.Errorf("[%s] %s: workspace apply: %w", spec, label, err)
		}
		for i, eng := range engines {
			if err := eng.Apply(muts); err != nil {
				return fmt.Errorf("[%s] %s: %d shards apply: %w", spec, label, counts[i], err)
			}
		}
		if err := check(label); err != nil {
			return err
		}
	}
	return nil
}

// sampleScorers draws up to n effective scorers from the live function
// population (plus one fixed uniform-weights probe so every script also
// exercises a scorer owned by no function).
func sampleScorers(p *assign.Problem, rng *rand.Rand, n int) []score.Scorer {
	uniform := make([]float64, p.Dims)
	for d := range uniform {
		uniform[d] = 1 / float64(p.Dims)
	}
	out := []score.Scorer{score.LinearScorer(uniform)}
	if len(p.Functions) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		f := p.Functions[rng.Intn(len(p.Functions))]
		out = append(out, score.Scorer{Fam: f.Fam, W: f.Effective()})
	}
	return out
}
