package conformance

import (
	"testing"
)

// TestScorerFamilySweep is the acceptance gate for the pluggable
// scoring families: on every cell of the mode × distribution ×
// dimension × capacity × priority grid, all eight algorithms and a
// drained Progressive run must reproduce the generalized Oracle
// matching, with parallel SB byte-identical to sequential SB.
func TestScorerFamilySweep(t *testing.T) {
	specs := ScorerSweep(1)
	if len(specs) < 150 {
		t.Fatalf("sweep has %d cases, want >= 150", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			if err := VerifyScorers(spec); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScorerMutationSweep is the Workspace acceptance gate for
// non-linear families: across randomized scripts whose base population
// and function arrivals mix every scoring family, the repaired matching
// after each mutation must be score-identical to a from-scratch SB
// solve of the snapshot, stable, and snapshot-isolated (the harness
// brackets every step with interleaved view reads).
func TestScorerMutationSweep(t *testing.T) {
	specs := ScorerMutationSweep(2)
	if len(specs) < 40 {
		t.Fatalf("sweep has %d scripts, want >= 40", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			if err := VerifyMutations(spec, config()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
