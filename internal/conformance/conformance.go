// Package conformance is a randomized differential-testing harness over
// every assignment algorithm in the repository. It generates problem
// instances across the paper's three object distributions, dimensions,
// capacities, and γ priorities, runs every algorithm on each instance,
// and checks that all of them produce the matching defined by the Oracle
// definitional greedy (and, independently, by capacitated Gale–Shapley).
//
// The harness exists so that hot-path work — the parallel solver engine,
// and any future optimization of the search structures — can be changed
// with confidence: a behavioral regression in any algorithm, on any
// supported problem shape, surfaces as a conformance failure with a seed
// that reproduces it deterministically.
//
// Beyond matching-equivalence, the harness asserts a stronger property
// for the parallel engine: SB with Workers > 1 must produce the
// byte-identical result of sequential SB — same pairs, same emission
// order, bit-equal scores — on every case.
package conformance

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
)

// Spec describes one randomized case. Everything is derived
// deterministically from the fields, so a failing case reproduces from
// its printed spec alone.
type Spec struct {
	Seed     int64
	Kind     datagen.Kind // object distribution
	Dims     int          // 2..5 in the standard sweep
	FuncCaps bool         // random function capacities in [1,3]
	ObjCaps  bool         // random object capacities in [1,3]
	Gammas   bool         // random integer priorities γ in [1,4]
}

func (s Spec) String() string {
	return fmt.Sprintf("seed=%d kind=%s dims=%d fcaps=%t ocaps=%t gammas=%t",
		s.Seed, s.Kind, s.Dims, s.FuncCaps, s.ObjCaps, s.Gammas)
}

// Algorithm is one entrant in the differential run.
type Algorithm struct {
	Name string
	Run  func(*assign.Problem, assign.Config) (*assign.Result, error)
}

// Algorithms returns every solver under test: the seven sequential
// algorithms plus SB on the parallel engine.
func Algorithms() []Algorithm {
	return []Algorithm{
		{"SB", assign.SB},
		{"SBBasic", assign.SBBasic},
		{"SBDeltaSky", assign.SBDeltaSky},
		{"BruteForce", assign.BruteForce},
		{"Chain", assign.Chain},
		{"SBAlt", assign.SBAlt},
		{"SBTwoSkylines", assign.SBTwoSkylines},
		{"SBParallel", func(p *assign.Problem, cfg assign.Config) (*assign.Result, error) {
			cfg.Workers = 4
			return assign.SB(p, cfg)
		}},
	}
}

// Generate builds the problem instance for a spec. Sizes are drawn from
// the spec's own RNG and kept small enough that the O(|F|·|O|) oracle
// stays cheap while still exercising multi-loop runs of every algorithm.
func Generate(spec Spec) *assign.Problem {
	rng := rand.New(rand.NewSource(spec.Seed))
	nf := 5 + rng.Intn(16)  // 5..20 functions
	no := 30 + rng.Intn(91) // 30..120 objects
	objs := datagen.Objects(spec.Kind, no, spec.Dims, spec.Seed+1)
	funcs := datagen.Functions(nf, spec.Dims, spec.Seed+2)
	if spec.Gammas {
		funcs = datagen.WithRandomGamma(funcs, 4, spec.Seed+3)
	}
	if spec.FuncCaps {
		funcs = datagen.WithRandomFunctionCapacity(funcs, 3, spec.Seed+4)
	}
	if spec.ObjCaps {
		for i := range objs {
			objs[i].Capacity = 1 + rng.Intn(3)
		}
	}
	return &assign.Problem{Dims: spec.Dims, Objects: objs, Functions: funcs}
}

// config is the shared execution environment: a small page size and
// buffer so the disk-based algorithms exercise real evictions, and a
// non-trivial Ω so resumable searches restart on some cases.
func config() assign.Config {
	return assign.Config{PageSize: 512, BufferFrac: 0.05, OmegaFrac: 0.05}
}

// scoreEps tolerates the floating-point summation-order differences
// between algorithms that compute f(o) through different code paths.
const scoreEps = 1e-9

// canonical sorts a pair list for multiset comparison.
func canonical(pairs []assign.Pair) []assign.Pair {
	out := make([]assign.Pair, len(pairs))
	copy(out, pairs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].FuncID != out[j].FuncID {
			return out[i].FuncID < out[j].FuncID
		}
		if out[i].ObjectID != out[j].ObjectID {
			return out[i].ObjectID < out[j].ObjectID
		}
		return out[i].Score < out[j].Score
	})
	return out
}

// sameMatching checks that two pair lists are the same multiset of
// (function, object) assignments with scores equal to within scoreEps.
func sameMatching(got, want []assign.Pair) error {
	g, w := canonical(got), canonical(want)
	if len(g) != len(w) {
		return fmt.Errorf("%d pairs, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i].FuncID != w[i].FuncID || g[i].ObjectID != w[i].ObjectID {
			return fmt.Errorf("pair %d = (f%d,o%d), want (f%d,o%d)",
				i, g[i].FuncID, g[i].ObjectID, w[i].FuncID, w[i].ObjectID)
		}
		if math.Abs(g[i].Score-w[i].Score) > scoreEps {
			return fmt.Errorf("pair %d (f%d,o%d) score %v, want %v",
				i, g[i].FuncID, g[i].ObjectID, g[i].Score, w[i].Score)
		}
	}
	return nil
}

// identicalRun checks the parallel-engine determinism guarantee: pairs in
// the same emission order with bit-equal scores.
func identicalRun(got, want []assign.Pair) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.FuncID != w.FuncID || g.ObjectID != w.ObjectID ||
			math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			return fmt.Errorf("emission slot %d = (f%d,o%d,%x), want (f%d,o%d,%x)",
				i, g.FuncID, g.ObjectID, math.Float64bits(g.Score),
				w.FuncID, w.ObjectID, math.Float64bits(w.Score))
		}
	}
	return nil
}

// Verify runs one differential case end to end. It returns the first
// discrepancy found, wrapped with the algorithm name and the spec, or nil
// when every algorithm agrees.
func Verify(spec Spec) error {
	p := Generate(spec)
	oracle, err := assign.Oracle(p)
	if err != nil {
		return fmt.Errorf("[%s] oracle: %w", spec, err)
	}
	// Second, structurally independent reference: clone-expansion
	// Gale–Shapley must agree with the definitional greedy.
	gs, err := assign.GaleShapleyCapacitated(p)
	if err != nil {
		return fmt.Errorf("[%s] gale-shapley: %w", spec, err)
	}
	if err := sameMatching(gs.Pairs, oracle.Pairs); err != nil {
		return fmt.Errorf("[%s] GaleShapleyCapacitated vs Oracle: %w", spec, err)
	}
	if err := assign.IsStable(p, oracle.Pairs); err != nil {
		return fmt.Errorf("[%s] oracle matching unstable: %w", spec, err)
	}

	var sbPairs []assign.Pair
	for _, alg := range Algorithms() {
		res, err := alg.Run(p, config())
		if err != nil {
			return fmt.Errorf("[%s] %s: %w", spec, alg.Name, err)
		}
		if err := sameMatching(res.Pairs, oracle.Pairs); err != nil {
			return fmt.Errorf("[%s] %s vs Oracle: %w", spec, alg.Name, err)
		}
		switch alg.Name {
		case "SB":
			sbPairs = res.Pairs
		case "SBParallel":
			if err := identicalRun(res.Pairs, sbPairs); err != nil {
				return fmt.Errorf("[%s] SBParallel not byte-identical to SB: %w", spec, err)
			}
		}
	}
	return nil
}

// StandardSweep enumerates the full grid — 3 distributions × dims 2..5 ×
// {plain, function capacities, object capacities, both} × {γ on, off} —
// with seedsPerCell seeds per grid cell. seedsPerCell = 3 yields 288
// cases.
func StandardSweep(seedsPerCell int) []Spec {
	var specs []Spec
	seed := int64(1)
	for _, kind := range []datagen.Kind{datagen.Independent, datagen.Correlated, datagen.AntiCorrelated} {
		for dims := 2; dims <= 5; dims++ {
			for _, caps := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
				for _, gammas := range []bool{false, true} {
					for s := 0; s < seedsPerCell; s++ {
						specs = append(specs, Spec{
							Seed:     seed,
							Kind:     kind,
							Dims:     dims,
							FuncCaps: caps[0],
							ObjCaps:  caps[1],
							Gammas:   gammas,
						})
						seed += 7
					}
				}
			}
		}
	}
	return specs
}
