package bench

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/simd"
	"fairassign/internal/skyline"
	"fairassign/internal/topk"
)

// ProductionCase is one row of the production-scale section: the hot
// paths at serving cardinality (n = 10⁶ by default). Rows come in two
// shapes — duels, where the optimized path races its definitional twin
// measured in the same run (RowwiseNsPerOp, SpeedupX, and Identical
// asserting bit-equal outputs), and plain measurements (solve, top-k)
// where the row is the trajectory point itself.
type ProductionCase struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Dims int    `json:"dims"`

	NsPerOp    int64 `json:"ns_per_op"`
	Iterations int64 `json:"iterations"`

	// RowwiseNsPerOp is the same workload on the pre-kernel path: the
	// row-wise scan for the batched kernels, the sequential build for
	// the parallel bulk-load. Zero when the row has no twin.
	RowwiseNsPerOp int64   `json:"rowwise_ns_per_op,omitempty"`
	SpeedupX       float64 `json:"speedup_x,omitempty"`
	// Identical asserts the duel's two paths produced bit-identical
	// output (always true for twin-less rows).
	Identical bool   `json:"identical"`
	Detail    string `json:"detail,omitempty"`
}

// prodFuncsFor bounds the function count at production scale: n/20
// would mean 50k functions at n=10⁶, which measures data generation
// more than search; 2000 is plenty to saturate the TA lists and the
// kernel blocks.
func prodFuncsFor(n int) int {
	f := n / 20
	if f < 16 {
		f = 16
	}
	if f > 2000 {
		f = 2000
	}
	return f
}

// measureHeavy times ops too expensive for the warm-up + 3-iteration
// contract of measure: at least one iteration, at most three, stopping
// at the budget. Used for the full builds and solves at n = 10⁶.
func measureHeavy(budget time.Duration, op func() error) (Metrics, error) {
	start := time.Now()
	var iters int64
	for {
		if err := op(); err != nil {
			return Metrics{}, err
		}
		iters++
		if time.Since(start) >= budget || iters >= 3 {
			break
		}
	}
	return Metrics{NsPerOp: time.Since(start).Nanoseconds() / iters, Iterations: iters}, nil
}

// storeChecksum flushes the pool and hashes every page image in ID
// order (freed IDs contribute a marker), plus the physical I/O
// counters — the digest two builds must share to count as
// byte-identical.
func storeChecksum(pool *pagestore.BufferPool, store *pagestore.MemStore) (uint64, error) {
	if err := pool.Flush(); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	buf := make([]byte, store.PageSize())
	for id := 0; id < store.NumPages()+8; id++ {
		if err := store.ReadPage(pagestore.PageID(id), buf); err != nil {
			h.Write([]byte{0xff})
			continue
		}
		h.Write(buf)
	}
	io := store.IO().Snapshot()
	fmt.Fprintf(h, "%d/%d", io.PhysicalReads, io.PhysicalWrites)
	return h.Sum64(), nil
}

// runProduction measures the production-scale matrix at n = opts.ProdSize:
// the cold STR bulk-load (sequential vs parallel, byte-compared), a full
// SB solve, per-family top-k over the warm index, and the three batched
// kernels racing their row-wise twins on the full dataset.
func runProduction(opts Options) ([]ProductionCase, error) {
	n, dims := opts.ProdSize, 2
	objs := datagen.Objects(datagen.AntiCorrelated, n, dims, opts.Seed)
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	var out []ProductionCase
	row := func(name string, c ProductionCase) {
		c.Name, c.N, c.Dims = "prod/"+name, n, dims
		out = append(out, c)
	}

	// Cold bulk-load: sequential vs all-cores, checksummed. On a
	// single-core host the parallel path's goroutine overhead is the
	// regression under test; on multi-core the spread is the speedup.
	build := func(workers int) (*pagestore.MemStore, *pagestore.BufferPool, error) {
		store := pagestore.NewMemStore(4096)
		pool := pagestore.NewBufferPool(store, 1<<20)
		_, err := rtree.BulkLoadWorkers(pool, dims, items, 0.9, workers)
		return store, pool, err
	}
	var sums [2]uint64
	var timings [2]Metrics
	for i, workers := range []int{1, 0} {
		store, pool, err := build(workers)
		if err != nil {
			return nil, err
		}
		if sums[i], err = storeChecksum(pool, store); err != nil {
			return nil, err
		}
		timings[i], err = measureHeavy(opts.Budget, func() error {
			_, _, err := build(workers)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	row("bulkload", ProductionCase{
		NsPerOp:        timings[1].NsPerOp,
		Iterations:     timings[1].Iterations,
		RowwiseNsPerOp: timings[0].NsPerOp,
		SpeedupX:       speedup(timings[0].NsPerOp, timings[1].NsPerOp),
		Identical:      sums[0] == sums[1],
		Detail:         "parallel STR vs sequential, page bytes + physical I/O checksummed",
	})

	// Full SB solve at production scale (single-shot: the cold build +
	// solve a serving system pays on a re-solve).
	funcs := datagen.Functions(prodFuncsFor(n), dims, opts.Seed+3)
	p := &assign.Problem{Dims: dims, Objects: objs, Functions: funcs}
	var pairs int
	m, err := measureHeavy(opts.Budget, func() error {
		res, err := assign.SB(p, assign.Config{})
		if err != nil {
			return err
		}
		pairs = len(res.Pairs)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("prod/sb_solve: %w", err)
	}
	row("sb_solve", ProductionCase{
		NsPerOp: m.NsPerOp, Iterations: m.Iterations, Identical: true,
		Detail: fmt.Sprintf("%d funcs, %d pairs", len(funcs), pairs),
	})

	// Per-family top-10 over the warm production index.
	env, err := newTreeEnv(n, dims, opts.Seed, true)
	if err != nil {
		return nil, err
	}
	for _, fam := range scorerBenchFamilies {
		ffuncs := funcs
		if fam != "linear" {
			ffuncs = datagen.WithScorerFamilies(funcs, fam, opts.Seed+7)
		}
		scorers := make([]score.Scorer, len(ffuncs))
		for i, f := range ffuncs {
			scorers[i] = f.Scorer()
		}
		i := 0
		m, err := measure(opts.Budget, func() error {
			_, _, err := topk.TopKScorer(env.tree, scorers[i%len(scorers)], 10, nil)
			i++
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("prod/topk_%s: %w", fam, err)
		}
		row("topk_"+fam, ProductionCase{NsPerOp: m.NsPerOp, Iterations: m.Iterations, Identical: true})
	}

	// EvalBlock duels: the columnar kernel vs a row-wise Eval loop over
	// the full n-point dataset, one family per row, outputs bit-compared.
	cols := make([][]float64, dims)
	for d := range cols {
		cols[d] = make([]float64, n)
	}
	for i, o := range objs {
		for d := 0; d < dims; d++ {
			cols[d][i] = o.Point[d]
		}
	}
	blockOut := make([]float64, n)
	rowOut := make([]float64, n)
	for _, fam := range scorerBenchFamilies {
		ffuncs := funcs[:1]
		if fam != "linear" {
			ffuncs = datagen.WithScorerFamilies(funcs[:1], fam, opts.Seed+7)
		}
		sc := ffuncs[0].Scorer()
		rowwise := func() error {
			for i, o := range objs {
				rowOut[i] = score.Eval(sc.Fam, sc.W, o.Point)
			}
			return nil
		}
		columnar := func() error {
			score.EvalBlock(sc.Fam, sc.W, cols, blockOut)
			return nil
		}
		if err := rowwise(); err != nil {
			return nil, err
		}
		if err := columnar(); err != nil {
			return nil, err
		}
		identical := bitsEqual(blockOut, rowOut)
		mc, err := measure(opts.Budget, columnar)
		if err != nil {
			return nil, err
		}
		mr, err := measure(opts.Budget, rowwise)
		if err != nil {
			return nil, err
		}
		row("evalblock_"+fam, ProductionCase{
			NsPerOp: mc.NsPerOp, Iterations: mc.Iterations,
			RowwiseNsPerOp: mr.NsPerOp,
			SpeedupX:       speedup(mr.NsPerOp, mc.NsPerOp),
			Identical:      identical,
			Detail:         fmt.Sprintf("one %d-row scoring pass", n),
		})
	}

	// Reverse-scan duels: FuncBlocks.Best vs the row-wise loop over the
	// non-linear function population — the bestTaker/bestFunc hot path.
	probes := objs
	if len(probes) > 512 {
		probes = probes[:512]
	}
	for _, fam := range []string{"owa", "minimax", "chebyshev", "lp"} {
		ffuncs := datagen.WithScorerFamilies(funcs, fam, opts.Seed+7)
		fb := score.NewFuncBlocks(dims)
		scorers := make([]score.Scorer, len(ffuncs))
		for i, f := range ffuncs {
			scorers[i] = f.Scorer()
			fb.Add(f.ID, scorers[i].Fam, scorers[i].W)
		}
		rowBest := func(pt geom.Point) (uint64, float64, bool) {
			var id uint64
			var best float64
			ok := false
			for i, f := range ffuncs {
				s := score.Eval(scorers[i].Fam, scorers[i].W, pt)
				if !ok || s > best || (s == best && f.ID < id) {
					id, best, ok = f.ID, s, true
				}
			}
			return id, best, ok
		}
		identical := true
		for _, o := range probes {
			bid, bs, _ := fb.Best(o.Point, nil)
			rid, rs, _ := rowBest(o.Point)
			if bid != rid || bs != rs {
				identical = false
				break
			}
		}
		i := 0
		mb, err := measure(opts.Budget, func() error {
			fb.Best(probes[i%len(probes)].Point, nil)
			i++
			return nil
		})
		if err != nil {
			return nil, err
		}
		i = 0
		mr, err := measure(opts.Budget, func() error {
			rowBest(probes[i%len(probes)].Point)
			i++
			return nil
		})
		if err != nil {
			return nil, err
		}
		row("reverse_scan_"+fam, ProductionCase{
			NsPerOp: mb.NsPerOp, Iterations: mb.Iterations,
			RowwiseNsPerOp: mr.NsPerOp,
			SpeedupX:       speedup(mr.NsPerOp, mb.NsPerOp),
			Identical:      identical,
			Detail:         fmt.Sprintf("best of %d functions per probe", len(ffuncs)),
		})
	}

	// Dominance duel: the blocked ColSet kernel vs the row-wise
	// Dominates loop, on the workload shape the skyline hot loops pay
	// for — the member set is the dataset's actual skyline and the
	// probes are skyline points, which nothing dominates, so both paths
	// scan the full set (the dominated-early case exits after a handful
	// of comparisons either way and is not where time goes).
	sky := skyline.SFS(items)
	cs := skyline.NewColSet(dims)
	pts := make([]geom.Point, len(sky))
	for i, it := range sky {
		cs.Append(it.ID, it.Point)
		pts[i] = it.Point
	}
	domProbes := sky
	if len(domProbes) > 512 {
		domProbes = domProbes[:512]
	}
	rowAny := func(q geom.Point) bool {
		for _, p := range pts {
			if p.Dominates(q) {
				return true
			}
		}
		return false
	}
	identical := true
	for _, o := range domProbes {
		if cs.AnyDominates(o.Point) != rowAny(o.Point) {
			identical = false
			break
		}
	}
	i := 0
	mc, err := measure(opts.Budget, func() error {
		cs.AnyDominates(domProbes[i%len(domProbes)].Point)
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	i = 0
	mr, err := measure(opts.Budget, func() error {
		rowAny(domProbes[i%len(domProbes)].Point)
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	row("dominance", ProductionCase{
		NsPerOp: mc.NsPerOp, Iterations: mc.Iterations,
		RowwiseNsPerOp: mr.NsPerOp,
		SpeedupX:       speedup(mr.NsPerOp, mc.NsPerOp),
		Identical:      identical,
		Detail:         fmt.Sprintf("undominated probes over the %d-point dataset skyline", len(sky)),
	})

	// SIMD kernel duels: the same columnar paths with the vector
	// kernels dispatched vs forced onto the portable scalar fallback
	// (score.SetSIMD(false)), outputs bit-compared. On hosts with no
	// assembly kernels both legs run the portable code and the speedup
	// reads ~1x; the Detail names the dispatched level either way.
	simdWasOn := simd.Enabled()
	defer score.SetSIMD(simdWasOn)
	level := score.SIMDDetected()

	linSc := funcs[0].Scorer()
	simdOut := make([]float64, n)
	portOut := make([]float64, n)
	score.SetSIMD(true)
	score.EvalBlock(linSc.Fam, linSc.W, cols, simdOut)
	score.SetSIMD(false)
	score.EvalBlock(linSc.Fam, linSc.W, cols, portOut)
	identical = bitsEqual(simdOut, portOut)
	score.SetSIMD(true)
	mOn, err := measure(opts.Budget, func() error {
		score.EvalBlock(linSc.Fam, linSc.W, cols, simdOut)
		return nil
	})
	if err != nil {
		return nil, err
	}
	score.SetSIMD(false)
	mOff, err := measure(opts.Budget, func() error {
		score.EvalBlock(linSc.Fam, linSc.W, cols, portOut)
		return nil
	})
	if err != nil {
		return nil, err
	}
	row("simd_evalblock", ProductionCase{
		NsPerOp: mOn.NsPerOp, Iterations: mOn.Iterations,
		RowwiseNsPerOp: mOff.NsPerOp,
		SpeedupX:       speedup(mOff.NsPerOp, mOn.NsPerOp),
		Identical:      identical,
		Detail:         fmt.Sprintf("%s vs portable, linear %d-row pass", level, n),
	})

	chebFuncs := datagen.WithScorerFamilies(funcs, "chebyshev", opts.Seed+7)
	fb := score.NewFuncBlocks(dims)
	for _, f := range chebFuncs {
		sc := f.Scorer()
		fb.Add(f.ID, sc.Fam, sc.W)
	}
	identical = true
	for _, o := range probes {
		score.SetSIMD(true)
		id1, s1, ok1 := fb.Best(o.Point, nil)
		score.SetSIMD(false)
		id2, s2, ok2 := fb.Best(o.Point, nil)
		if id1 != id2 || ok1 != ok2 || math.Float64bits(s1) != math.Float64bits(s2) {
			identical = false
			break
		}
	}
	score.SetSIMD(true)
	i = 0
	mOn, err = measure(opts.Budget, func() error {
		fb.Best(probes[i%len(probes)].Point, nil)
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	score.SetSIMD(false)
	i = 0
	mOff, err = measure(opts.Budget, func() error {
		fb.Best(probes[i%len(probes)].Point, nil)
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	row("simd_reverse_scan", ProductionCase{
		NsPerOp: mOn.NsPerOp, Iterations: mOn.Iterations,
		RowwiseNsPerOp: mOff.NsPerOp,
		SpeedupX:       speedup(mOff.NsPerOp, mOn.NsPerOp),
		Identical:      identical,
		Detail:         fmt.Sprintf("%s vs portable, best of %d chebyshev functions", level, len(chebFuncs)),
	})

	identical = true
	for _, o := range domProbes {
		score.SetSIMD(true)
		fd1 := cs.FirstDominator(o.Point)
		score.SetSIMD(false)
		fd2 := cs.FirstDominator(o.Point)
		if fd1 != fd2 {
			identical = false
			break
		}
	}
	score.SetSIMD(true)
	i = 0
	mOn, err = measure(opts.Budget, func() error {
		cs.AnyDominates(domProbes[i%len(domProbes)].Point)
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	score.SetSIMD(false)
	i = 0
	mOff, err = measure(opts.Budget, func() error {
		cs.AnyDominates(domProbes[i%len(domProbes)].Point)
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	row("simd_dominance", ProductionCase{
		NsPerOp: mOn.NsPerOp, Iterations: mOn.Iterations,
		RowwiseNsPerOp: mOff.NsPerOp,
		SpeedupX:       speedup(mOff.NsPerOp, mOn.NsPerOp),
		Identical:      identical,
		Detail:         fmt.Sprintf("%s vs portable, %d-point skyline filter", level, len(sky)),
	})
	score.SetSIMD(simdWasOn)

	return out, nil
}

func speedup(base, opt int64) float64 {
	if opt <= 0 {
		return 0
	}
	return float64(base) / float64(opt)
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
