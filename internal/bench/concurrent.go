package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fairassign/internal/assign"
)

// ConcurrentCase measures the snapshot-isolated Workspace under
// combined load: one churn writer applying single-mutation updates
// while N reader goroutines continuously take snapshot views and
// query them. ReadsPerSec is the aggregate sustained view-read rate;
// RepairNsPerOp is the writer's mean mutation latency while the
// readers run (repair latency under read load — the number a serving
// system cares about).
type ConcurrentCase struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Dims    int    `json:"dims"`
	Readers int    `json:"readers"`
	// Totals over the measured window.
	Mutations int64 `json:"mutations"`
	Reads     int64 `json:"reads"`
	// Rates and latencies.
	ReadsPerSec   float64 `json:"reads_per_sec"`
	RepairNsPerOp int64   `json:"repair_ns_per_op"`
	// ReaderEpochSpread is the number of distinct epochs readers
	// observed — evidence the readers really interleaved with the
	// writer rather than hammering one frozen state.
	ReaderEpochSpread int64 `json:"reader_epoch_spread"`
}

// readerFailure wraps reader errors in one concrete type so concurrent
// stores into the shared atomic slot can never mismatch.
type readerFailure struct{ err error }

// runConcurrent measures the read-churn scenario for one (n, dims) at
// 1, 4, and 16 readers.
func runConcurrent(n, dims int, opts Options) ([]ConcurrentCase, error) {
	var out []ConcurrentCase
	for _, readers := range []int{1, 4, 16} {
		c, err := runConcurrentCase(n, dims, readers, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func runConcurrentCase(n, dims, readers int, opts Options) (ConcurrentCase, error) {
	c := ConcurrentCase{Name: "concurrent_read_churn", N: n, Dims: dims, Readers: readers}
	base := incrementalProblem(n, dims, opts)
	ws, err := assign.NewWorkspace(base, assign.Config{})
	if err != nil {
		return c, fmt.Errorf("%s: workspace: %w", c.Name, err)
	}
	defer ws.Close()
	churn, err := churnOp("obj_churn", ws, base, opts)
	if err != nil {
		return c, err
	}
	if err := churn(); err != nil { // warm-up, excluded
		return c, err
	}

	var (
		done      atomic.Bool
		reads     atomic.Int64
		readerErr atomic.Pointer[readerFailure]
		wg        sync.WaitGroup
	)
	epochs := make([]map[uint64]struct{}, readers)
	for r := 0; r < readers; r++ {
		epochs[r] = make(map[uint64]struct{})
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fid := base.Functions[r%len(base.Functions)].ID
			i := 0
			for !done.Load() {
				v, err := ws.Snapshot()
				if err != nil {
					readerErr.Store(&readerFailure{err: err})
					return
				}
				epochs[r][v.Epoch()] = struct{}{}
				st := v.Stats()
				pairs := v.Pairs()
				if len(pairs) != st.AssignedUnits {
					readerErr.Store(&readerFailure{err: fmt.Errorf("view inconsistent: %d pairs vs %d units", len(pairs), st.AssignedUnits)})
					v.Close()
					return
				}
				_ = v.PairsOf(fid)
				if i%8 == 0 {
					// A ranked query against the pinned index epoch.
					if _, _, err := v.TopK(base.Functions[0].Effective(), 5); err != nil {
						readerErr.Store(&readerFailure{err: err})
						v.Close()
						return
					}
				}
				v.Close()
				reads.Add(1)
				i++
				if i%16 == 0 {
					// Keep the scenario honest on few-core machines:
					// without an occasional yield a reader can own a
					// core for a whole scheduler quantum and the
					// "concurrency" degenerates into coarse timeslices.
					runtime.Gosched()
				}
			}
		}(r)
	}

	start := time.Now()
	var muts int64
	for time.Since(start) < opts.Budget || muts < 3 {
		if err := churn(); err != nil {
			done.Store(true)
			wg.Wait()
			return c, err
		}
		muts++
		if muts%4 == 0 {
			runtime.Gosched() // see the reader-side note
		}
	}
	elapsed := time.Since(start)
	done.Store(true)
	wg.Wait()
	if f := readerErr.Load(); f != nil {
		return c, fmt.Errorf("%s (readers=%d): reader failed: %w", c.Name, readers, f.err)
	}

	c.Mutations = muts
	c.Reads = reads.Load()
	c.ReadsPerSec = float64(c.Reads) / elapsed.Seconds()
	if muts > 0 {
		c.RepairNsPerOp = elapsed.Nanoseconds() / muts
	}
	seen := make(map[uint64]struct{})
	for _, m := range epochs {
		for e := range m {
			seen[e] = struct{}{}
		}
	}
	c.ReaderEpochSpread = int64(len(seen))
	return c, nil
}
