package bench

import (
	"fmt"
	"math"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
)

// IncrementalCase compares single-mutation updates applied two ways: in
// place on a long-lived Workspace (chain repair), and by mutating the
// input and re-running a from-scratch SB solve — the only option the
// one-shot API offers. Identical records that the repaired matching
// equals a cold solve of the final snapshot, so the speedup is not
// bought with a different answer.
type IncrementalCase struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Dims int    `json:"dims"`
	// Repair / Resolve are ns per single-mutation update.
	RepairNsPerOp  int64   `json:"repair_ns_per_op"`
	ResolveNsPerOp int64   `json:"resolve_ns_per_op"`
	SpeedupX       float64 `json:"speedup_x"`
	RepairIters    int64   `json:"repair_iterations"`
	ResolveIters   int64   `json:"resolve_iterations"`
	Identical      bool    `json:"identical"`
	// ChainSteps / Searches per op on the repair side (how much work a
	// mutation actually costs the workspace).
	ChainStepsPerOp float64 `json:"chain_steps_per_op"`
	SearchesPerOp   float64 `json:"searches_per_op"`
}

// incrementalProblem builds the dynamic-workload instance: n
// independently distributed objects, n/20 preference functions.
// Independent (not anti-correlated) data keeps the identity gate
// meaningful: the anti-correlated generator places a fraction of points
// exactly on the diagonal, where hundreds of functions collide at the
// last ulp of the score and the stable matching is no longer unique —
// SB resolves such exact ties by TA scan order while the workspace uses
// the definitional (score, function ID, object ID) order, so the two
// can legitimately return different (equally stable) tie resolutions.
func incrementalProblem(n, dims int, opts Options) *assign.Problem {
	return &assign.Problem{
		Dims:      dims,
		Objects:   datagen.Objects(datagen.Independent, n, dims, opts.Seed),
		Functions: datagen.Functions(opts.funcsFor(n), dims, opts.Seed+3),
	}
}

// runIncremental measures the two churn scenarios for one (n, dims).
func runIncremental(n, dims int, opts Options) ([]IncrementalCase, error) {
	var out []IncrementalCase
	for _, kind := range []string{"obj_churn", "func_churn"} {
		c, err := runIncrementalCase(kind, n, dims, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func runIncrementalCase(kind string, n, dims int, opts Options) (IncrementalCase, error) {
	c := IncrementalCase{Name: "incremental_" + kind, N: n, Dims: dims}
	cfg := assign.Config{}

	// Repair side: one long-lived workspace absorbs every mutation.
	base := incrementalProblem(n, dims, opts)
	ws, err := assign.NewWorkspace(base, cfg)
	if err != nil {
		return c, fmt.Errorf("%s: workspace: %w", c.Name, err)
	}
	defer ws.Close()
	statsBefore := ws.Stats()
	repairOp, err := churnOp(kind, ws, base, opts)
	if err != nil {
		return c, err
	}
	repair, err := measure(opts.Budget, repairOp)
	if err != nil {
		return c, fmt.Errorf("%s repair: %w", c.Name, err)
	}
	statsAfter := ws.Stats()

	// The repaired matching must equal a cold solve of the snapshot.
	snap := ws.ProblemSnapshot()
	cold, err := assign.SB(snap, cfg)
	if err != nil {
		return c, err
	}
	c.Identical = matchingEqual(ws.Pairs(), cold.Pairs)

	// Resolve side: the same mutation stream, answered by full solves on
	// a mirror instance.
	mirror := incrementalProblem(n, dims, opts)
	mirrorWS, err := assign.NewWorkspace(mirror, cfg)
	if err != nil {
		return c, err
	}
	// The mirror workspace only supplies mutation targets (kept in sync
	// by applying the same churn); the measured work is the solve.
	defer mirrorWS.Close()
	churn, err := churnOp(kind, mirrorWS, mirror, opts)
	if err != nil {
		return c, err
	}
	resolveOp := func() error {
		if err := churn(); err != nil {
			return err
		}
		_, err := assign.SB(mirrorWS.ProblemSnapshot(), cfg)
		return err
	}
	resolve, err := measure(opts.Budget, resolveOp)
	if err != nil {
		return c, fmt.Errorf("%s resolve: %w", c.Name, err)
	}

	c.RepairNsPerOp = repair.NsPerOp
	c.ResolveNsPerOp = resolve.NsPerOp
	c.RepairIters = repair.Iterations
	c.ResolveIters = resolve.Iterations
	if repair.NsPerOp > 0 {
		c.SpeedupX = float64(resolve.NsPerOp) / float64(repair.NsPerOp)
	}
	ops := statsAfter.Mutations - statsBefore.Mutations
	if ops > 0 {
		c.ChainStepsPerOp = float64(statsAfter.ChainSteps-statsBefore.ChainSteps) / float64(ops)
		c.SearchesPerOp = float64(statsAfter.Searches-statsBefore.Searches) / float64(ops)
	}
	return c, nil
}

// churnOp returns an op applying one departure + one arrival to the
// workspace, keeping the population size constant. Object churn removes
// the object currently assigned to a rotating function (forcing a
// re-chain) and lists an identical replacement under a fresh ID;
// function churn rotates a user out and back in.
func churnOp(kind string, ws *assign.Workspace, base *assign.Problem, opts Options) (func() error, error) {
	nextID := uint64(1 << 40)
	switch kind {
	case "obj_churn":
		fids := make([]uint64, len(base.Functions))
		for i, f := range base.Functions {
			fids[i] = f.ID
		}
		i := 0
		return func() error {
			// Rotate over functions; churn each one's assigned object.
			var victim uint64
			var point []float64
			for tries := 0; tries < len(fids); tries++ {
				ps := ws.PairsOf(fids[i%len(fids)])
				i++
				if len(ps) > 0 {
					victim = ps[0].ObjectID
					break
				}
			}
			if victim == 0 {
				return fmt.Errorf("bench: no assigned object to churn")
			}
			pt, ok := ws.ObjectPoint(victim)
			if !ok {
				return fmt.Errorf("bench: victim %d not found", victim)
			}
			point = pt.Clone()
			if err := ws.RemoveObject(victim); err != nil {
				return err
			}
			nextID++
			return ws.AddObject(assign.Object{ID: nextID, Point: point})
		}, nil
	case "func_churn":
		// Cycle each function out and back in (same weights, fresh ID).
		type slot struct {
			id uint64
			f  assign.Function
		}
		ring := make([]slot, len(base.Functions))
		for i, f := range base.Functions {
			ring[i] = slot{id: f.ID, f: f}
		}
		i := 0
		return func() error {
			s := &ring[i%len(ring)]
			i++
			if err := ws.RemoveFunction(s.id); err != nil {
				return err
			}
			nextID++
			nf := s.f
			nf.ID = nextID
			if err := ws.AddFunction(nf); err != nil {
				return err
			}
			s.id = nextID
			return nil
		}, nil
	}
	return nil, fmt.Errorf("bench: unknown churn kind %q", kind)
}

// matchingEqual compares two matchings as (function, object) multisets
// with scores equal to within floating-point roundoff.
func matchingEqual(a, b []assign.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	type key struct {
		f, o uint64
	}
	count := make(map[key]int, len(a))
	score := make(map[key]float64, len(a))
	for _, p := range b {
		count[key{p.FuncID, p.ObjectID}]++
		score[key{p.FuncID, p.ObjectID}] = p.Score
	}
	for _, p := range a {
		k := key{p.FuncID, p.ObjectID}
		if count[k] == 0 {
			return false
		}
		count[k]--
		if math.Abs(score[k]-p.Score) > 1e-9 {
			return false
		}
	}
	return true
}
