package bench

import (
	"testing"
	"time"
)

// TestRunTiny exercises the whole pipeline on a tiny instance: every
// case must report identical cold/warm I/O (the cache is invisible to
// the paper's metrics) and the warm cacheable paths must allocate less.
func TestRunTiny(t *testing.T) {
	rep, err := Run(Options{
		Seed:   1,
		Sizes:  []int{400},
		Dims:   []int{2},
		Budget: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 6 {
		t.Fatalf("got %d cases, want 6", len(rep.Cases))
	}
	for _, c := range rep.Cases {
		if !c.IOIdentical {
			t.Errorf("%s: cold/warm I/O diverged (cold %d/%d, warm %d/%d)",
				c.Name, c.Cold.LogicalReads, c.Cold.PhysicalIO, c.Warm.LogicalReads, c.Warm.PhysicalIO)
		}
		if c.Cold.Iterations == 0 || c.Warm.Iterations == 0 {
			t.Errorf("%s: zero iterations", c.Name)
		}
	}
	// The headline case: warm node reads must be allocation-free.
	for _, c := range rep.Cases {
		if c.Name == "readnode_warm" && c.Warm.AllocsPerOp != 0 {
			t.Errorf("readnode_warm allocates %d per op warm, want 0", c.Warm.AllocsPerOp)
		}
	}
	if len(rep.BatchCommit) != 1 {
		t.Fatalf("got %d batch_commit cases, want 1", len(rep.BatchCommit))
	}
	bc := rep.BatchCommit[0]
	if !bc.Identical {
		t.Errorf("%s: batched matching differs from cold solve", bc.Name)
	}
	if bc.SequentialCommits != bc.Mutations {
		t.Errorf("%s: sequential side coalesced: %d commits for %d mutations", bc.Name, bc.SequentialCommits, bc.Mutations)
	}
	if bc.BatchedCommits >= bc.SequentialCommits {
		t.Errorf("%s: group commit did not coalesce: %d vs %d commits", bc.Name, bc.BatchedCommits, bc.SequentialCommits)
	}
}

func TestApplyBaseline(t *testing.T) {
	rep := &Report{Cases: []Case{{Name: "bbs", N: 100, Dims: 2, Warm: Metrics{AllocsPerOp: 10, NsPerOp: 50}}}}
	base := &Report{Cases: []Case{{Name: "bbs", N: 100, Dims: 2, Warm: Metrics{AllocsPerOp: 100, NsPerOp: 100}}}}
	ApplyBaseline(rep, base)
	d := rep.Cases[0].VsBaseline
	if d == nil {
		t.Fatal("no baseline delta attached")
	}
	if d.AllocsReductionPct != 90 || d.NsReductionPct != 50 {
		t.Fatalf("deltas = %+v, want 90%% allocs / 50%% ns", d)
	}
}
