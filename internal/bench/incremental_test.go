package bench

import (
	"testing"
	"time"

	"fairassign/internal/assign"
)

// TestChurnOpsMatchColdSolve drives both churn kinds at a size large
// enough for a multi-level R-tree with real page traffic (the regime
// where stale index references would surface) and checks the repaired
// matching against a cold solve throughout.
func TestChurnOpsMatchColdSolve(t *testing.T) {
	opts := Options{Seed: 20090824}
	cfg := assign.Config{PageSize: 512}
	for _, kind := range []string{"obj_churn", "func_churn"} {
		t.Run(kind, func(t *testing.T) {
			base := incrementalProblem(1500, 2, opts)
			ws, err := assign.NewWorkspace(base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ws.Close()
			churn, err := churnOp(kind, ws, base, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				if err := churn(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				if i%4 != 3 {
					continue
				}
				snap := ws.ProblemSnapshot()
				cold, err := assign.SB(snap, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !matchingEqual(ws.Pairs(), cold.Pairs) {
					t.Fatalf("op %d: repaired matching differs from cold solve", i)
				}
			}
		})
	}
}

// TestIncrementalCaseRuns smoke-tests the pipeline scenario end to end
// at a small size and checks its invariants.
func TestIncrementalCaseRuns(t *testing.T) {
	opts := Options{Seed: 7, Budget: 30 * time.Millisecond}
	cases, err := runIncremental(800, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("got %d cases, want 2", len(cases))
	}
	for _, c := range cases {
		if !c.Identical {
			t.Errorf("%s: repaired matching diverged from cold solve", c.Name)
		}
		if c.RepairNsPerOp <= 0 || c.ResolveNsPerOp <= 0 {
			t.Errorf("%s: missing timings: %+v", c.Name, c)
		}
		if c.SearchesPerOp <= 0 {
			t.Errorf("%s: repair issued no searches", c.Name)
		}
	}
}
