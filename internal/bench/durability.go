package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fairassign/internal/assign"
)

// DurabilityCase measures what the durability layer costs and what
// recovery buys. Three twin workspaces consume the identical churn
// stream: one purely in-memory (the baseline the hot-path cases
// gate), one logging every batch without fsync, one with the full
// fsync-before-ack barrier — the per-mutation deltas are the WAL
// encode/write and the disk flush, respectively. The fsync twin then
// exercises the recovery paths: a timed snapshot save, a timed
// replay-on-open over the post-snapshot batches, and a timed
// warm-start open (snapshot only, zero replay). Identical gates the
// scenario: the recovered matching must equal the in-memory twin's.
type DurabilityCase struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	Dims      int    `json:"dims"`
	BatchSize int    `json:"batch_size"`
	// Per-mutation Apply latency over the shared measured stream.
	ApplyNsPerMutOff    int64 `json:"apply_ns_per_mut_wal_off"`
	ApplyNsPerMutNoSync int64 `json:"apply_ns_per_mut_wal_nosync"`
	ApplyNsPerMutFsync  int64 `json:"apply_ns_per_mut_wal_fsync"`
	// SnapshotSaveNs times one SaveSnapshot (encode + write + fsync +
	// rename + log rotation); SnapshotBytes is the resulting file size.
	SnapshotSaveNs int64 `json:"snapshot_save_ns"`
	SnapshotBytes  int64 `json:"snapshot_bytes"`
	// RecoveryNs times OpenWorkspace when RecoveryBatches committed
	// batches must be replayed past the snapshot; WarmStartNs times it
	// when the snapshot alone is current (no replay, no re-solve).
	RecoveryNs      int64 `json:"recovery_ns"`
	RecoveryBatches int   `json:"recovery_batches"`
	WarmStartNs     int64 `json:"warm_start_ns"`
	Identical       bool  `json:"identical"`
}

// runDurability measures the WAL tax and the recovery times for one
// (n, dims) at the given batch size.
func runDurability(n, dims, batchSize int, opts Options) (DurabilityCase, error) {
	c := DurabilityCase{Name: "durability", N: n, Dims: dims, BatchSize: batchSize}
	const (
		measuredBatches = 8
		replayBatches   = 8
	)
	p := incrementalProblem(n, dims, opts)

	// Identical streams: one generator per twin, same seed.
	type twin struct {
		ws  *assign.Workspace
		gen *churnScript
		t   time.Duration
	}
	dir := ""
	var tmpDirs []string
	defer func() {
		for _, d := range tmpDirs {
			os.RemoveAll(d)
		}
	}()
	newTwin := func(durable, noSync bool) (*twin, error) {
		cfg := assign.Config{PageSize: 512, BufferFrac: 0.05}
		if durable {
			d, err := os.MkdirTemp("", "fairassign-bench-dur-*")
			if err != nil {
				return nil, err
			}
			tmpDirs = append(tmpDirs, d)
			cfg.Durable, cfg.WALDir, cfg.WALNoSync = true, filepath.Join(d, "wal"), noSync
			if !noSync {
				dir = cfg.WALDir
			}
		}
		ws, err := assign.NewWorkspace(incrementalProblem(n, dims, opts), cfg)
		if err != nil {
			return nil, err
		}
		return &twin{ws: ws, gen: newChurnScript(p, opts.Seed+43)}, nil
	}
	off, err := newTwin(false, false)
	if err != nil {
		return c, fmt.Errorf("%s: wal-off twin: %w", c.Name, err)
	}
	defer off.ws.Close()
	noSync, err := newTwin(true, true)
	if err != nil {
		return c, fmt.Errorf("%s: nosync twin: %w", c.Name, err)
	}
	defer noSync.ws.Close()
	fsync, err := newTwin(true, false)
	if err != nil {
		return c, fmt.Errorf("%s: fsync twin: %w", c.Name, err)
	}
	defer fsync.ws.Close()
	twins := []*twin{off, noSync, fsync}

	// Warm-up batch, then the measured stream, applied in lockstep.
	for bi := 0; bi < 1+measuredBatches; bi++ {
		for _, tw := range twins {
			bb := tw.gen.batch(batchSize)
			start := time.Now()
			if err := tw.ws.Apply(bb); err != nil {
				return c, fmt.Errorf("%s: batch %d: %w", c.Name, bi, err)
			}
			if bi > 0 {
				tw.t += time.Since(start)
			}
		}
	}
	muts := int64(measuredBatches * batchSize)
	c.ApplyNsPerMutOff = off.t.Nanoseconds() / muts
	c.ApplyNsPerMutNoSync = noSync.t.Nanoseconds() / muts
	c.ApplyNsPerMutFsync = fsync.t.Nanoseconds() / muts

	// Snapshot save on the fsync twin, then replayBatches more applied
	// to every twin so the final states stay in lockstep.
	start := time.Now()
	if err := fsync.ws.SaveSnapshot(); err != nil {
		return c, fmt.Errorf("%s: save snapshot: %w", c.Name, err)
	}
	c.SnapshotSaveNs = time.Since(start).Nanoseconds()
	c.SnapshotBytes = newestSnapshotSize(dir)
	for bi := 0; bi < replayBatches; bi++ {
		for _, tw := range twins {
			if err := tw.ws.Apply(tw.gen.batch(batchSize)); err != nil {
				return c, fmt.Errorf("%s: replay batch %d: %w", c.Name, bi, err)
			}
		}
	}
	fsync.ws.Close()

	// Recovery: snapshot restore + WAL replay of the tail batches.
	cfg := assign.Config{PageSize: 512, BufferFrac: 0.05, Durable: true, WALDir: dir}
	start = time.Now()
	rec, err := assign.OpenWorkspace(cfg)
	if err != nil {
		return c, fmt.Errorf("%s: recovery open: %w", c.Name, err)
	}
	c.RecoveryNs = time.Since(start).Nanoseconds()
	c.RecoveryBatches = rec.Recovery().BatchesReplayed
	c.Identical = matchingEqual(rec.Pairs(), off.ws.Pairs())

	// Warm start: save at the current epoch, reopen — no replay at all.
	if err := rec.SaveSnapshot(); err != nil {
		rec.Close()
		return c, fmt.Errorf("%s: warm-start save: %w", c.Name, err)
	}
	rec.Close()
	start = time.Now()
	warm, err := assign.OpenWorkspace(cfg)
	if err != nil {
		return c, fmt.Errorf("%s: warm-start open: %w", c.Name, err)
	}
	c.WarmStartNs = time.Since(start).Nanoseconds()
	if br := warm.Recovery().BatchesReplayed; br != 0 {
		warm.Close()
		return c, fmt.Errorf("%s: warm start replayed %d batches, want 0", c.Name, br)
	}
	c.Identical = c.Identical && matchingEqual(warm.Pairs(), off.ws.Pairs())
	warm.Close()
	return c, nil
}

// newestSnapshotSize returns the byte size of the newest snapshot file
// in dir (0 if none found — the scenario treats it as informational).
func newestSnapshotSize(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var newest string
	for _, e := range entries {
		if n := e.Name(); strings.HasPrefix(n, "snap-") && strings.HasSuffix(n, ".fasnap") && n > newest {
			newest = n
		}
	}
	if newest == "" {
		return 0
	}
	fi, err := os.Stat(filepath.Join(dir, newest))
	if err != nil {
		return 0
	}
	return fi.Size()
}
