package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/geom"
	"fairassign/internal/shard"
)

// ShardedScaleCase is one row of the sharded-tier scaling matrix: the
// serving loop (mutate → global snapshot → global top-k) at one shard
// count, on the production-scale instance. MutationsPerSec is the
// sustained throughput of that loop — the metric the tier exists for,
// because each mutation's true serving cost includes the snapshot
// recapture it forces, and sharding shrinks the recapture to the dirty
// shard. SpeedupX is against the 1-shard row; Identical asserts the
// final matching and the last top-k answer are byte-identical to the
// 1-shard run's.
type ShardedScaleCase struct {
	Name   string `json:"name"`
	N      int    `json:"n"`
	Dims   int    `json:"dims"`
	Shards int    `json:"shards"`

	Steps           int     `json:"steps"`
	MutationsPerSec float64 `json:"mutations_per_sec"`
	// ApplyNsPerOp isolates the Apply call (repair + commit) from the
	// serving loop; the gap to 1/MutationsPerSec is snapshot + query.
	ApplyNsPerOp int64 `json:"apply_ns_per_op"`
	TopKP50NS    int64 `json:"topk_p50_ns"`
	TopKP99NS    int64 `json:"topk_p99_ns"`
	SnapNsPerOp  int64 `json:"snapshot_ns_per_op"`

	SpeedupX  float64 `json:"speedup_x,omitempty"`
	Identical bool    `json:"identical"`
	Detail    string  `json:"detail,omitempty"`
}

// shardedScaleCounts is the shard-count sweep of the scaling matrix.
var shardedScaleCounts = []int{1, 2, 4, 8}

// shardedScaleSteps bounds the serving loop: enough iterations for
// stable percentiles, few enough that the 1-shard row (which recaptures
// the full n-object snapshot every step) stays affordable at n = 10⁶.
func shardedScaleSteps(n int) int {
	if n >= 200_000 {
		return 48
	}
	return 160
}

// shardedMutationScript builds one deterministic mutation stream —
// alternating arrivals of fresh objects and departures of live ones, so
// the population hovers at n — applied identically at every shard
// count.
func shardedMutationScript(objs []assign.Object, dims, steps int, seed int64) []assign.Mutation {
	rng := rand.New(rand.NewSource(seed))
	live := make([]uint64, len(objs))
	for i, o := range objs {
		live[i] = o.ID
	}
	nextID := uint64(1 << 40)
	muts := make([]assign.Mutation, 0, steps)
	for i := 0; i < steps; i++ {
		if i%2 == 0 {
			nextID++
			pt := make(geom.Point, dims)
			for d := range pt {
				pt[d] = rng.Float64()
			}
			live = append(live, nextID)
			muts = append(muts, assign.Mutation{Kind: assign.MutAddObject, Object: assign.Object{ID: nextID, Point: pt}})
		} else {
			at := rng.Intn(len(live))
			muts = append(muts, assign.Mutation{Kind: assign.MutRemoveObject, ID: live[at]})
			live = append(live[:at], live[at+1:]...)
		}
	}
	return muts
}

// runShardedScale measures the sharded serving loop at 1/2/4/8 shards
// on the production-scale instance: every step applies one mutation,
// acquires a global cross-shard snapshot, and answers one global top-10
// through the score-ceiling merge. All counts replay the identical
// mutation script, and every count's final matching must be
// byte-identical to the 1-shard run's.
func runShardedScale(opts Options) ([]ShardedScaleCase, error) {
	n, dims := opts.ProdSize, 2
	objs := datagen.Objects(datagen.AntiCorrelated, n, dims, opts.Seed)
	funcs := datagen.Functions(prodFuncsFor(n), dims, opts.Seed+3)
	p := &assign.Problem{Dims: dims, Objects: objs, Functions: funcs}
	steps := shardedScaleSteps(n)
	muts := shardedMutationScript(objs, dims, steps, opts.Seed+11)
	queryScorers := make([]assign.Function, 8)
	copy(queryScorers, funcs)

	var out []ShardedScaleCase
	var basePairs []assign.Pair
	var baseTopIDs []uint64
	var baseTopScores []uint64
	var baseRate float64
	for _, shards := range shardedScaleCounts {
		e, err := shard.New(p, assign.Config{}, shard.Options{Shards: shards})
		if err != nil {
			return nil, fmt.Errorf("sharded_scale: %d shards: %w", shards, err)
		}

		var (
			applyNS int64
			snapNS  int64
			topkNS  = make([]time.Duration, 0, steps)
			lastIDs []uint64
			lastSc  []uint64
		)
		loopStart := time.Now()
		for i, m := range muts {
			t0 := time.Now()
			if err := e.Apply([]assign.Mutation{m}); err != nil {
				e.Close()
				return nil, fmt.Errorf("sharded_scale: %d shards, step %d: %w", shards, i, err)
			}
			t1 := time.Now()
			applyNS += t1.Sub(t0).Nanoseconds()
			v, err := e.Snapshot()
			if err != nil {
				e.Close()
				return nil, err
			}
			snapNS += time.Since(t1).Nanoseconds()
			q := queryScorers[i%len(queryScorers)].Scorer()
			t2 := time.Now()
			items, scores, err := v.TopKScorer(q, 10)
			if err != nil {
				v.Close()
				e.Close()
				return nil, err
			}
			topkNS = append(topkNS, time.Since(t2))
			lastIDs = lastIDs[:0]
			lastSc = lastSc[:0]
			for j := range items {
				lastIDs = append(lastIDs, items[j].ID)
				lastSc = append(lastSc, math.Float64bits(scores[j]))
			}
			v.Close()
		}
		wall := time.Since(loopStart)

		finalPairs := e.Pairs()
		e.Close()

		identical := true
		if shards == shardedScaleCounts[0] {
			basePairs = finalPairs
			baseTopIDs = append([]uint64(nil), lastIDs...)
			baseTopScores = append([]uint64(nil), lastSc...)
		} else {
			identical = len(finalPairs) == len(basePairs) &&
				len(lastIDs) == len(baseTopIDs)
			for i := 0; identical && i < len(finalPairs); i++ {
				identical = finalPairs[i] == basePairs[i]
			}
			for i := 0; identical && i < len(lastIDs); i++ {
				identical = lastIDs[i] == baseTopIDs[i] && lastSc[i] == baseTopScores[i]
			}
		}

		sort.Slice(topkNS, func(i, j int) bool { return topkNS[i] < topkNS[j] })
		rank := func(p float64) int64 {
			i := int(p*float64(len(topkNS))+0.9999999) - 1
			if i < 0 {
				i = 0
			}
			if i >= len(topkNS) {
				i = len(topkNS) - 1
			}
			return topkNS[i].Nanoseconds()
		}
		rate := float64(steps) / wall.Seconds()
		c := ShardedScaleCase{
			Name:            fmt.Sprintf("sharded_scale/%dshard", shards),
			N:               n,
			Dims:            dims,
			Shards:          shards,
			Steps:           steps,
			MutationsPerSec: rate,
			ApplyNsPerOp:    applyNS / int64(steps),
			SnapNsPerOp:     snapNS / int64(steps),
			TopKP50NS:       rank(0.50),
			TopKP99NS:       rank(0.99),
			Identical:       identical,
			Detail:          "serving loop: mutate, snapshot, global top-10 via ceiling merge",
		}
		if shards == shardedScaleCounts[0] {
			baseRate = rate
		} else if baseRate > 0 {
			c.SpeedupX = rate / baseRate
		}
		out = append(out, c)
	}
	return out, nil
}
