// Package bench is the reproducible performance pipeline behind
// cmd/bench: it measures the hot paths of the SB family (warm node
// reads, BBS skyline passes, kNN, TA reverse top-1, full SB solves, and
// multi-tenant SolveBatch) with the decoded-node cache disabled ("cold",
// the pre-cache behaviour) and enabled ("warm"), verifies that the two
// configurations produce byte-identical matchings with identical
// physical I/O, and emits the numbers as machine-readable JSON
// (BENCH_*.json) so future optimization work has a trajectory to beat.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"time"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
	"fairassign/internal/skyline"
	"fairassign/internal/ta"
)

// goamd64Level reports the GOAMD64 microarchitecture level recorded in
// the binary's build info ("" off amd64 or when the toolchain did not
// record it).
func goamd64Level() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				return s.Value
			}
		}
	}
	return ""
}

// Metrics is one measured configuration of one case.
type Metrics struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// LogicalReads and PhysicalIO are per-op page-level counts (the
	// paper's I/O metric is the physical number); they are measured on a
	// dedicated instrumented run, not averaged over the timing loop.
	LogicalReads int64 `json:"logical_reads"`
	PhysicalIO   int64 `json:"physical_io"`
	Iterations   int64 `json:"iterations"`
}

// Case compares one workload cold (decoded-node cache off) vs warm (on).
type Case struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Dims int     `json:"dims"`
	Cold Metrics `json:"cold"`
	Warm Metrics `json:"warm"`
	// AllocsReductionPct is 100·(1 − warm/cold) on allocs/op.
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
	NsReductionPct     float64 `json:"ns_reduction_pct"`
	// IOIdentical records that cold and warm performed exactly the same
	// logical and physical I/O — the cache must be invisible to the
	// paper's metrics.
	IOIdentical bool `json:"io_identical"`
	// VsBaseline compares Warm against the matching case of a baseline
	// report (typically captured on the main branch before this
	// optimization landed). Nil when no baseline was supplied or the
	// case is absent from it.
	VsBaseline *BaselineDelta `json:"vs_baseline,omitempty"`
}

// BaselineDelta is the before/after comparison against a prior report.
type BaselineDelta struct {
	BaselineNsPerOp     int64   `json:"baseline_ns_per_op"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op"`
	AllocsReductionPct  float64 `json:"allocs_reduction_pct"`
	NsReductionPct      float64 `json:"ns_reduction_pct"`
}

// ApplyBaseline fills VsBaseline on every case of rep that has a
// matching (name, n, dims) case in base, comparing rep's warm numbers to
// the baseline's warm numbers.
func ApplyBaseline(rep, base *Report) {
	byKey := make(map[string]Case, len(base.Cases))
	for _, c := range base.Cases {
		byKey[fmt.Sprintf("%s/%d/%d", c.Name, c.N, c.Dims)] = c
	}
	for i := range rep.Cases {
		c := &rep.Cases[i]
		b, ok := byKey[fmt.Sprintf("%s/%d/%d", c.Name, c.N, c.Dims)]
		if !ok {
			continue
		}
		c.VsBaseline = &BaselineDelta{
			BaselineNsPerOp:     b.Warm.NsPerOp,
			BaselineAllocsPerOp: b.Warm.AllocsPerOp,
			AllocsReductionPct:  reductionPct(b.Warm.AllocsPerOp, c.Warm.AllocsPerOp),
			NsReductionPct:      reductionPct(b.Warm.NsPerOp, c.Warm.NsPerOp),
		}
	}
}

// Report is the emitted BENCH_*.json payload.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOAMD64 is the microarchitecture level the binary was compiled
	// for (amd64 only, "" when unrecorded). The SIMD kernels make the
	// hot-path numbers level-independent, so this is provenance, not a
	// variable to control for.
	GOAMD64 string `json:"goamd64,omitempty"`
	// SIMDLevel is the kernel set dispatched while the report was
	// generated: "avx2", "neon", or "portable".
	SIMDLevel   string    `json:"simd_level"`
	Seed        int64     `json:"seed"`
	GeneratedAt time.Time `json:"generated_at"`
	// Conformance summarizes the pre-flight differential run ("skipped"
	// when disabled).
	Conformance string `json:"conformance"`
	Cases       []Case `json:"cases"`
	// Incremental compares Workspace chain repair against from-scratch
	// re-solves for single-mutation updates.
	Incremental []IncrementalCase `json:"incremental,omitempty"`
	// Concurrent measures snapshot-view read throughput and repair
	// latency while a writer churns the workspace (1/4/16 readers).
	Concurrent []ConcurrentCase `json:"concurrent_read_churn,omitempty"`
	// ScorerFamilies compares solve latency and TopK throughput across
	// the preference families (linear vs OWA/minimax vs Chebyshev vs Lp)
	// on identical data.
	ScorerFamilies []ScorerFamilyCase `json:"scorer_families,omitempty"`

	// BatchCommit measures the group-commit mutation path: batched
	// Apply vs one commit per mutation on an identical churn stream.
	BatchCommit []BatchCommitCase `json:"batch_commit,omitempty"`
	// Durability measures the WAL tax on Apply (off / no-sync / fsync)
	// and the snapshot save, replay-recovery, and warm-start times.
	Durability []DurabilityCase `json:"durability,omitempty"`
	// Production is the production-scale matrix (n = 10⁶ by default):
	// the cold bulk-load duel, a full SB solve, per-family top-k, and
	// the batched kernels racing their row-wise twins.
	Production []ProductionCase `json:"production_scale,omitempty"`
	// ShardedScale sweeps the sharded serving tier at 1/2/4/8 shards on
	// the production-scale instance: sustained mutation throughput of
	// the mutate→snapshot→top-k serving loop, with every count's output
	// byte-compared against the 1-shard run.
	ShardedScale []ShardedScaleCase `json:"sharded_scale,omitempty"`
}

// Options tunes a pipeline run.
type Options struct {
	Seed int64
	// Sizes is the object-set cardinalities to sweep.
	Sizes []int
	// Dims is the dimensionalities to sweep.
	Dims []int
	// Budget is the per-measurement time budget.
	Budget time.Duration
	// Funcs is the function count for the solver-level cases (0 derives
	// n/20, min 16).
	Funcs int
	// ProdSize is the object count for the production-scale section
	// (0 skips it; cmd/bench defaults it to 10⁶, scaled down by -quick).
	ProdSize int
}

func (o Options) funcsFor(n int) int {
	if o.Funcs > 0 {
		return o.Funcs
	}
	f := n / 20
	if f < 16 {
		f = 16
	}
	return f
}

// measure times op repeatedly within the budget (at least 3 iterations)
// and reports per-op wall clock and allocation figures.
func measure(budget time.Duration, op func() error) (Metrics, error) {
	if err := op(); err != nil { // warm-up, excluded
		return Metrics{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var iters int64
	for {
		if err := op(); err != nil {
			return Metrics{}, err
		}
		iters++
		if iters >= 3 && time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Metrics{
		NsPerOp:     elapsed.Nanoseconds() / iters,
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / iters,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / iters,
		Iterations:  iters,
	}, nil
}

// treeEnv is a bulk-loaded index whose pool holds the whole tree (the
// warm-cache regime the tentpole targets).
type treeEnv struct {
	store *pagestore.MemStore
	pool  *pagestore.BufferPool
	tree  *rtree.Tree
}

func newTreeEnv(n, dims int, seed int64, cache bool) (*treeEnv, error) {
	store := pagestore.NewMemStore(4096)
	pool := pagestore.NewBufferPool(store, 1<<20)
	pool.SetDecodedCache(cache)
	objs := datagen.Objects(datagen.AntiCorrelated, n, dims, seed)
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{ID: o.ID, Point: o.Point}
	}
	tree, err := rtree.BulkLoad(pool, dims, items, 0.9)
	if err != nil {
		return nil, err
	}
	store.IO().Reset()
	return &treeEnv{store: store, pool: pool, tree: tree}, nil
}

// ioDelta runs op once and returns the logical/physical page counts it
// incurred.
func (e *treeEnv) ioDelta(op func() error) (logical, physical int64, err error) {
	before := e.store.IO().Snapshot()
	if err := op(); err != nil {
		return 0, 0, err
	}
	after := e.store.IO().Snapshot()
	return after.LogicalReads - before.LogicalReads,
		(after.PhysicalReads - before.PhysicalReads) + (after.PhysicalWrites - before.PhysicalWrites),
		nil
}

// runCase measures one workload in both cache configurations.
func runCase(name string, n, dims int, opts Options,
	build func(cache bool) (op func() error, io func() (int64, int64, error), err error)) (Case, error) {
	c := Case{Name: name, N: n, Dims: dims}
	for _, cache := range []bool{false, true} {
		op, io, err := build(cache)
		if err != nil {
			return c, fmt.Errorf("%s(n=%d,dims=%d): %w", name, n, dims, err)
		}
		m, err := measure(opts.Budget, op)
		if err != nil {
			return c, fmt.Errorf("%s(n=%d,dims=%d): %w", name, n, dims, err)
		}
		if io != nil {
			lg, ph, err := io()
			if err != nil {
				return c, err
			}
			m.LogicalReads, m.PhysicalIO = lg, ph
		}
		if cache {
			c.Warm = m
		} else {
			c.Cold = m
		}
	}
	c.AllocsReductionPct = reductionPct(c.Cold.AllocsPerOp, c.Warm.AllocsPerOp)
	c.NsReductionPct = reductionPct(c.Cold.NsPerOp, c.Warm.NsPerOp)
	c.IOIdentical = c.Cold.LogicalReads == c.Warm.LogicalReads && c.Cold.PhysicalIO == c.Warm.PhysicalIO
	return c, nil
}

func reductionPct(cold, warm int64) float64 {
	if cold <= 0 {
		return 0
	}
	return 100 * (1 - float64(warm)/float64(cold))
}

// Run executes the full pipeline and returns the report (without the
// conformance summary, which the caller sets).
func Run(opts Options) (*Report, error) {
	if opts.Budget <= 0 {
		opts.Budget = 200 * time.Millisecond
	}
	if len(opts.Sizes) == 0 {
		opts.Sizes = []int{2000, 10000}
	}
	if len(opts.Dims) == 0 {
		opts.Dims = []int{2, 4}
	}
	rep := &Report{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOAMD64:     goamd64Level(),
		SIMDLevel:   score.SIMDLevel(),
		Seed:        opts.Seed,
		GeneratedAt: time.Now().UTC(),
	}
	for _, n := range opts.Sizes {
		for _, dims := range opts.Dims {
			cases, err := runAll(n, dims, opts)
			if err != nil {
				return nil, err
			}
			rep.Cases = append(rep.Cases, cases...)
		}
	}
	// Incremental scenario: repair-vs-resolve at the largest size per
	// dimensionality (single-mutation latency is what a serving system
	// pays; the large instance is where re-solving hurts).
	maxN := 0
	for _, n := range opts.Sizes {
		if n > maxN {
			maxN = n
		}
	}
	for _, dims := range opts.Dims {
		inc, err := runIncremental(maxN, dims, opts)
		if err != nil {
			return nil, err
		}
		rep.Incremental = append(rep.Incremental, inc...)
	}
	// Concurrent read-churn: snapshot readers against the churn writer,
	// at the largest size on the first dimensionality (the reader path
	// is dimension-insensitive; one sweep keeps the pipeline fast).
	conc, err := runConcurrent(maxN, opts.Dims[0], opts)
	if err != nil {
		return nil, err
	}
	rep.Concurrent = append(rep.Concurrent, conc...)
	// Scorer families: linear vs OWA/minimax vs Chebyshev vs Lp, at the
	// largest size per dimensionality.
	for _, dims := range opts.Dims {
		sf, err := runScorerFamilies(maxN, dims, opts)
		if err != nil {
			return nil, err
		}
		rep.ScorerFamilies = append(rep.ScorerFamilies, sf...)
	}
	// Group-commit churn: batched Apply vs per-mutation commits at the
	// largest size on the first dimensionality (the commit overhead
	// being amortized — buffer flush, snapshot capture, epoch publish —
	// is dimension-insensitive).
	bc, err := runBatchCommit(maxN, opts.Dims[0], 64, opts)
	if err != nil {
		return nil, err
	}
	rep.BatchCommit = append(rep.BatchCommit, bc)
	// Durability: the WAL tax and the recovery/warm-start times at the
	// largest size on the first dimensionality. The in-memory hot paths
	// above never touch the durability layer — this scenario is where
	// its cost is measured instead.
	dur, err := runDurability(maxN, opts.Dims[0], 32, opts)
	if err != nil {
		return nil, err
	}
	rep.Durability = append(rep.Durability, dur)
	// Production scale: the n = 10⁶ matrix (kernel duels, cold build,
	// solve, top-k). Last because it is the heaviest section.
	if opts.ProdSize > 0 {
		prod, err := runProduction(opts)
		if err != nil {
			return nil, err
		}
		rep.Production = prod
		// Sharded serving tier at the same production cardinality —
		// the scaling story the shard package exists to tell.
		ss, err := runShardedScale(opts)
		if err != nil {
			return nil, err
		}
		rep.ShardedScale = ss
	}
	return rep, nil
}

func runAll(n, dims int, opts Options) ([]Case, error) {
	var out []Case

	// Warm node read: round-robin over every page of the index.
	c, err := runCase("readnode_warm", n, dims, opts, func(cache bool) (func() error, func() (int64, int64, error), error) {
		env, err := newTreeEnv(n, dims, opts.Seed, cache)
		if err != nil {
			return nil, nil, err
		}
		pages := collectPages(env.tree)
		i := 0
		op := func() error {
			for range pages { // one op = one full sweep
				_, err := env.tree.ReadNode(pages[i%len(pages)])
				if err != nil {
					return err
				}
				i++
			}
			return nil
		}
		return op, func() (int64, int64, error) { return env.ioDelta(op) }, nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, c)

	// BBS skyline pass.
	c, err = runCase("bbs", n, dims, opts, func(cache bool) (func() error, func() (int64, int64, error), error) {
		env, err := newTreeEnv(n, dims, opts.Seed, cache)
		if err != nil {
			return nil, nil, err
		}
		op := func() error {
			_, err := skyline.Compute(env.tree, nil)
			return err
		}
		return op, func() (int64, int64, error) { return env.ioDelta(op) }, nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, c)

	// 10-NN queries.
	c, err = runCase("knn", n, dims, opts, func(cache bool) (func() error, func() (int64, int64, error), error) {
		env, err := newTreeEnv(n, dims, opts.Seed, cache)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(opts.Seed + 7))
		queries := make([]geom.Point, 64)
		for i := range queries {
			q := make(geom.Point, dims)
			for d := range q {
				q[d] = rng.Float64()
			}
			queries[i] = q
		}
		i := 0
		op := func() error {
			_, _, err := env.tree.NearestNeighbors(queries[i%len(queries)], 10, nil)
			i++
			return err
		}
		// The I/O probe must be deterministic across configurations, so it
		// pins one query instead of continuing the rotation.
		ioOp := func() error {
			_, _, err := env.tree.NearestNeighbors(queries[0], 10, nil)
			return err
		}
		return op, func() (int64, int64, error) { return env.ioDelta(ioOp) }, nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, c)

	// TA reverse top-1 (in-memory lists; the node cache is not involved,
	// so cold ≈ warm — the case tracks the search-scratch reuse instead).
	c, err = runCase("ta_top1", n, dims, opts, func(bool) (func() error, func() (int64, int64, error), error) {
		nf := opts.funcsFor(n)
		funcs := datagen.Functions(nf, dims, opts.Seed+3)
		taf := make([]ta.Func, len(funcs))
		for i, f := range funcs {
			taf[i] = ta.Func{ID: f.ID, Weights: f.Effective()}
		}
		lists, err := ta.NewLists(taf, dims)
		if err != nil {
			return nil, nil, err
		}
		objs := datagen.Objects(datagen.Independent, 64, dims, opts.Seed+5)
		i := 0
		op := func() error {
			s := ta.NewSearch(lists, objs[i%len(objs)].Point, max(1, nf/40))
			_, _, _ = s.Best()
			s.Release()
			i++
			return nil
		}
		return op, nil, nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, c)

	// Full SB solve (index build + solve per op, as a caller sees it).
	sbProblem := &assign.Problem{
		Dims:      dims,
		Objects:   datagen.Objects(datagen.AntiCorrelated, n, dims, opts.Seed),
		Functions: datagen.Functions(opts.funcsFor(n), dims, opts.Seed+3),
	}
	var sbRes [2]*assign.Result
	c, err = runCase("sb_solve", n, dims, opts, func(cache bool) (func() error, func() (int64, int64, error), error) {
		cfg := assign.Config{DisableNodeCache: !cache}
		op := func() error {
			_, err := assign.SB(sbProblem, cfg)
			return err
		}
		io := func() (int64, int64, error) {
			r, err := assign.SB(sbProblem, cfg)
			if err != nil {
				return 0, 0, err
			}
			idx := 0
			if cache {
				idx = 1
			}
			sbRes[idx] = r
			s := r.Stats.IO
			return s.LogicalReads, s.PhysicalReads + s.PhysicalWrites, nil
		}
		return op, io, nil
	})
	if err != nil {
		return nil, err
	}
	if err := verifyIdentical(sbRes[0], sbRes[1]); err != nil {
		return nil, fmt.Errorf("sb_solve(n=%d,dims=%d) cache on/off diverged: %w", n, dims, err)
	}
	out = append(out, c)

	// SolveBatch: a small multi-tenant batch per op.
	c, err = runCase("solve_batch", n, dims, opts, func(cache bool) (func() error, func() (int64, int64, error), error) {
		batchN := n / 4
		if batchN < 200 {
			batchN = 200
		}
		problems := make([]*assign.Problem, 4)
		for i := range problems {
			problems[i] = &assign.Problem{
				Dims:      dims,
				Objects:   datagen.Objects(datagen.Independent, batchN, dims, opts.Seed+int64(i)),
				Functions: datagen.Functions(opts.funcsFor(batchN), dims, opts.Seed+10+int64(i)),
			}
		}
		cfg := assign.Config{DisableNodeCache: !cache, Workers: 2}
		op := func() error {
			for _, p := range problems {
				if _, err := assign.SB(p, cfg); err != nil {
					return err
				}
			}
			return nil
		}
		return op, nil, nil
	})
	if err != nil {
		return nil, err
	}
	out = append(out, c)

	return out, nil
}

// verifyIdentical asserts two SB runs emitted bit-identical pair
// sequences — the cache must not change the matching.
func verifyIdentical(a, b *assign.Result) error {
	if a == nil || b == nil {
		return fmt.Errorf("missing result")
	}
	if len(a.Pairs) != len(b.Pairs) {
		return fmt.Errorf("%d pairs vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return fmt.Errorf("pair %d: %+v vs %+v", i, a.Pairs[i], b.Pairs[i])
		}
	}
	return nil
}

func collectPages(t *rtree.Tree) []pagestore.PageID {
	var pages []pagestore.PageID
	var walk func(id pagestore.PageID)
	walk = func(id pagestore.PageID) {
		pages = append(pages, id)
		n, err := t.ReadNode(id)
		if err != nil {
			return
		}
		if !n.Leaf {
			for _, e := range n.Entries {
				walk(e.Child)
			}
		}
	}
	walk(t.Root())
	return pages
}
