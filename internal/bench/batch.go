package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"fairassign/internal/assign"
	"fairassign/internal/pagestore"
)

// BatchCommitCase measures what group commit buys under serving
// traffic: the *identical* object-churn mutation stream is applied to
// twin disk-backed workspaces in lockstep — one in batches through
// Apply (one epoch per batch), one strictly one mutation per commit —
// with every published epoch observed by one snapshot, and the summed
// per-mutation cost is compared. Both sides do the same structural
// work and the same chain repairs on the same data, so the difference
// is exactly the per-epoch overhead being amortized: the snapshot
// capture. (An unobserved commit is nearly free by design — capture
// is lazy — which is why the scenario charges each epoch its first
// observation: under production read traffic every epoch is observed,
// and per-mutation commits make readers re-capture per mutation.)
// Pairing the measurement keeps it deterministic instead of
// budget-sensitive. Identical gates the speedup: the matchings are
// compared after every measured batch, and the batched side must
// additionally equal a from-scratch SB solve at the end.
type BatchCommitCase struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	Dims      int    `json:"dims"`
	BatchSize int    `json:"batch_size"`
	// Batched / Sequential are ns per mutation over the shared stream.
	BatchedNsPerMut    int64   `json:"batched_ns_per_mut"`
	SequentialNsPerMut int64   `json:"sequential_ns_per_mut"`
	SpeedupX           float64 `json:"speedup_x"`
	Identical          bool    `json:"identical"`
	// Mutations/commit counts over the measured stream: the coalescing
	// ratio in the data.
	Mutations         int64 `json:"mutations"`
	BatchedCommits    int64 `json:"batched_commits"`
	SequentialCommits int64 `json:"sequential_commits"`
}

// churnScript is a deterministic, self-contained object-churn stream:
// each batch removes batchSize/2 random live objects and adds the same
// number of fresh ones, so the population stays at n. Two instances
// with the same seed emit identical streams regardless of which
// workspace consumes them.
type churnScript struct {
	rng    *rand.Rand
	dims   int
	liveO  []uint64
	nextID uint64
}

func newChurnScript(p *assign.Problem, seed int64) *churnScript {
	s := &churnScript{
		rng:    rand.New(rand.NewSource(seed)),
		dims:   p.Dims,
		liveO:  make([]uint64, len(p.Objects)),
		nextID: uint64(1 << 41),
	}
	for i, o := range p.Objects {
		s.liveO[i] = o.ID
	}
	return s
}

func (s *churnScript) batch(size int) []assign.Mutation {
	muts := make([]assign.Mutation, 0, size)
	for len(muts) < size {
		// Alternate departure/arrival to hold the population constant.
		if len(muts)%2 == 0 && len(s.liveO) > 2 {
			i := s.rng.Intn(len(s.liveO))
			muts = append(muts, assign.Mutation{Kind: assign.MutRemoveObject, ID: s.liveO[i]})
			s.liveO = append(s.liveO[:i], s.liveO[i+1:]...)
		} else {
			s.nextID++
			pt := make([]float64, s.dims)
			for d := range pt {
				pt[d] = s.rng.Float64()
			}
			muts = append(muts, assign.Mutation{Kind: assign.MutAddObject, Object: assign.Object{ID: s.nextID, Point: pt}})
			s.liveO = append(s.liveO, s.nextID)
		}
	}
	return muts
}

// runBatchCommit measures group commit vs per-mutation commits for one
// (n, dims) at the given batch size.
func runBatchCommit(n, dims, batchSize int, opts Options) (BatchCommitCase, error) {
	c := BatchCommitCase{Name: "batch_commit_churn", N: n, Dims: dims, BatchSize: batchSize}
	dir, err := os.MkdirTemp("", "fairassign-bench-batch-*")
	if err != nil {
		return c, err
	}
	defer os.RemoveAll(dir)
	var stores atomic.Int64
	cfg := assign.Config{PageSize: 512, BufferFrac: 0.05, StoreFactory: func(pageSize int) (pagestore.Store, error) {
		return pagestore.NewFileStore(filepath.Join(dir, fmt.Sprintf("store-%d.pag", stores.Add(1))), pageSize)
	}}

	batched, err := assign.NewWorkspace(incrementalProblem(n, dims, opts), cfg)
	if err != nil {
		return c, fmt.Errorf("%s: batched workspace: %w", c.Name, err)
	}
	defer batched.Close()
	seq, err := assign.NewWorkspace(incrementalProblem(n, dims, opts), cfg)
	if err != nil {
		return c, fmt.Errorf("%s: sequential workspace: %w", c.Name, err)
	}
	defer seq.Close()

	// One generator: both sides consume the very same batches, applied
	// in lockstep (warm-up pair first, then alternating timed pairs), so
	// the comparison is paired — same mutations, same repairs, only the
	// commit/observe cadence differs.
	gen := newChurnScript(incrementalProblem(n, dims, opts), opts.Seed+42)

	const measuredBatches = 16
	bBefore, sBefore := batched.Stats(), seq.Stats()
	var tB, tS time.Duration
	for bi := 0; bi < 1+measuredBatches; bi++ {
		bb := gen.batch(batchSize)
		warmup := bi == 0 // untimed: both sides start from a fresh build

		start := time.Now()
		if err := batched.Apply(bb); err != nil {
			return c, fmt.Errorf("%s: batch %d: %w", c.Name, bi, err)
		}
		if err := observe(batched); err != nil {
			return c, err
		}
		if !warmup {
			tB += time.Since(start)
		}

		start = time.Now()
		for j := range bb {
			if err := seq.Apply(bb[j : j+1]); err != nil {
				return c, fmt.Errorf("%s: batch %d mutation %d: %w", c.Name, bi, j, err)
			}
			if err := observe(seq); err != nil {
				return c, err
			}
		}
		if !warmup {
			tS += time.Since(start)
		}

		if !matchingEqual(batched.Pairs(), seq.Pairs()) {
			return c, fmt.Errorf("%s: batch %d: batched and sequential matchings diverged", c.Name, bi)
		}
	}
	bAfter, sAfter := batched.Stats(), seq.Stats()
	c.Mutations = bAfter.Mutations - bBefore.Mutations
	c.BatchedCommits = bAfter.Commits - bBefore.Commits
	c.SequentialCommits = sAfter.Commits - sBefore.Commits
	if sAfter.Mutations-sBefore.Mutations != c.Mutations {
		return c, fmt.Errorf("%s: mutation counts diverged", c.Name)
	}
	muts := int64(measuredBatches * batchSize)
	c.BatchedNsPerMut = tB.Nanoseconds() / muts
	c.SequentialNsPerMut = tS.Nanoseconds() / muts
	if c.BatchedNsPerMut > 0 {
		c.SpeedupX = float64(c.SequentialNsPerMut) / float64(c.BatchedNsPerMut)
	}

	// The batched matching must also equal a cold solve of the final
	// population.
	cold, err := assign.SB(batched.ProblemSnapshot(), cfg)
	if err != nil {
		return c, err
	}
	c.Identical = matchingEqual(batched.Pairs(), cold.Pairs)
	return c, nil
}

// observe takes and releases one snapshot: the cost of making the
// just-published epoch visible to readers.
func observe(ws *assign.Workspace) error {
	v, err := ws.Snapshot()
	if err != nil {
		return err
	}
	v.Close()
	return nil
}
