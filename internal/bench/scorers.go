package bench

import (
	"fmt"

	"fairassign/internal/assign"
	"fairassign/internal/datagen"
	"fairassign/internal/score"
	"fairassign/internal/topk"
)

// ScorerFamilyCase measures one scoring family on identical data: the
// full SB stable-assignment solve, and single-user BRS TopK throughput
// over a warm index. The linear row is the paper's workload — its solve
// must stay on the committed hot-path trajectory (the Cases section and
// the -maxregress gate cover that); the non-linear rows price what the
// generalization costs when it is actually used.
type ScorerFamilyCase struct {
	Name   string `json:"name"`
	Family string `json:"family"` // linear | owa | minimax | chebyshev | lp
	N      int    `json:"n"`
	Dims   int    `json:"dims"`

	SolveNsPerOp int64 `json:"solve_ns_per_op"`
	SolveIters   int64 `json:"solve_iterations"`
	Pairs        int   `json:"pairs"`

	TopKNsPerOp int64   `json:"topk_ns_per_op"`
	TopKPerSec  float64 `json:"topk_per_sec"`
}

// scorerBenchFamilies is the measured sweep: the paper's linear model
// against the order-weighted average (and its egalitarian minimax
// special case), the Chebyshev max, and the L2 norm.
var scorerBenchFamilies = []string{"linear", "owa", "minimax", "chebyshev", "lp"}

// runScorerFamilies measures every family at one (n, dims) point.
func runScorerFamilies(n, dims int, opts Options) ([]ScorerFamilyCase, error) {
	baseObjs := datagen.Objects(datagen.AntiCorrelated, n, dims, opts.Seed)
	baseFuncs := datagen.Functions(opts.funcsFor(n), dims, opts.Seed+3)
	env, err := newTreeEnv(n, dims, opts.Seed, true)
	if err != nil {
		return nil, err
	}
	var out []ScorerFamilyCase
	for _, fam := range scorerBenchFamilies {
		c := ScorerFamilyCase{
			Name:   "scorer_families/" + fam,
			Family: fam,
			N:      n,
			Dims:   dims,
		}
		funcs := baseFuncs
		if fam != "linear" {
			funcs = datagen.WithScorerFamilies(baseFuncs, fam, opts.Seed+7)
		}
		p := &assign.Problem{Dims: dims, Objects: baseObjs, Functions: funcs}

		var pairs int
		m, err := measure(opts.Budget, func() error {
			res, err := assign.SB(p, assign.Config{})
			if err != nil {
				return err
			}
			pairs = len(res.Pairs)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("scorer_families/%s solve: %w", fam, err)
		}
		c.SolveNsPerOp, c.SolveIters, c.Pairs = m.NsPerOp, m.Iterations, pairs

		// TopK throughput: one ranked top-10 per op, rotating through the
		// function set, over the shared warm index.
		scorers := make([]score.Scorer, len(funcs))
		for i, f := range funcs {
			scorers[i] = f.Scorer()
		}
		i := 0
		m, err = measure(opts.Budget, func() error {
			_, _, err := topk.TopKScorer(env.tree, scorers[i%len(scorers)], 10, nil)
			i++
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("scorer_families/%s topk: %w", fam, err)
		}
		c.TopKNsPerOp = m.NsPerOp
		if m.NsPerOp > 0 {
			c.TopKPerSec = 1e9 / float64(m.NsPerOp)
		}
		out = append(out, c)
	}
	return out, nil
}
