package crashtest

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"fairassign/internal/assign"
	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
)

// The conformance sweep: run a fixed mutation script against a durable
// workspace, crash it at every injected byte offset, reboot under both
// power-loss policies, recover with OpenWorkspace, and assert the
// recovered workspace equals a never-crashed twin at the same committed
// prefix — acked <= recovered <= issued, state-identical.

const sweepDir = "dur"

func sweepProblem() *assign.Problem {
	rng := rand.New(rand.NewSource(99))
	p := &assign.Problem{Dims: 2}
	for i := 0; i < 16; i++ {
		p.Objects = append(p.Objects, assign.Object{
			ID:    uint64(i + 1),
			Point: geom.Point{rng.Float64(), rng.Float64()},
		})
	}
	for i := 0; i < 5; i++ {
		a := 0.2 + 0.6*rng.Float64()
		p.Functions = append(p.Functions, assign.Function{
			ID:      uint64(i + 1),
			Weights: []float64{a, 1 - a},
		})
	}
	return p
}

// sweepBatches is prefix-valid: every batch only references base IDs or
// IDs added by an earlier batch, so any crash-truncated prefix replays
// cleanly.
func sweepBatches() [][]assign.Mutation {
	obj := func(id uint64, x, y float64, cap_ int) assign.Mutation {
		return assign.Mutation{Kind: assign.MutAddObject,
			Object: assign.Object{ID: id, Point: geom.Point{x, y}, Capacity: cap_}}
	}
	fun := func(id uint64, a float64) assign.Mutation {
		return assign.Mutation{Kind: assign.MutAddFunction,
			Function: assign.Function{ID: id, Weights: []float64{a, 1 - a}}}
	}
	rmObj := func(id uint64) assign.Mutation {
		return assign.Mutation{Kind: assign.MutRemoveObject, ID: id}
	}
	rmFun := func(id uint64) assign.Mutation {
		return assign.Mutation{Kind: assign.MutRemoveFunction, ID: id}
	}
	return [][]assign.Mutation{
		{obj(100, 0.91, 0.88, 2), fun(200, 0.7)},
		{obj(101, 0.15, 0.95, 1), rmObj(3)},
		{rmFun(200), fun(201, 0.35)},
		{obj(102, 0.55, 0.52, 1), obj(103, 0.8, 0.2, 1), rmObj(100)},
		{fun(202, 0.5), rmObj(1)},
		{rmFun(2), obj(104, 0.42, 0.77, 1)},
	}
}

// savePoints: SaveSnapshot after these batch indexes (1-based count of
// applied batches). Two saves exercise rotation and prune.
var savePoints = map[int]bool{2: true, 4: true}

func sweepCfg(fs *FS, factory func(int) (pagestore.Store, error)) assign.Config {
	return assign.Config{
		PageSize:     256,
		BufferFrac:   0.1,
		OmegaFrac:    0.05,
		Durable:      true,
		WALDir:       sweepDir,
		FS:           fs,
		StoreFactory: factory,
	}
}

// twinState is the canonical serving state used for equality.
type twinState struct {
	pairs []assign.Pair
	stats assign.WorkspaceStats
	avail []uint64
}

func captureState(w *assign.Workspace) twinState {
	pairs := w.Pairs()
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].FuncID != pairs[j].FuncID {
			return pairs[i].FuncID < pairs[j].FuncID
		}
		return pairs[i].ObjectID < pairs[j].ObjectID
	})
	st := w.Stats()
	// Physical I/O legitimately diverges after recovery (a fresh buffer
	// pool is cold); everything else must be identical.
	st.IO = metrics.IOCounter{}
	return twinState{pairs: pairs, stats: st, avail: availIDs(w)}
}

func availIDs(w *assign.Workspace) []uint64 {
	v, err := w.Snapshot()
	if err != nil {
		return nil
	}
	defer v.Close()
	var ids []uint64
	for _, it := range v.AvailableFrontier() {
		ids = append(ids, it.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameState(a, b twinState) error {
	if len(a.pairs) != len(b.pairs) {
		return fmt.Errorf("pair count %d != %d", len(a.pairs), len(b.pairs))
	}
	for i := range a.pairs {
		if a.pairs[i] != b.pairs[i] {
			return fmt.Errorf("pair %d: %+v != %+v", i, a.pairs[i], b.pairs[i])
		}
	}
	if a.stats != b.stats {
		return fmt.Errorf("stats %+v != %+v", a.stats, b.stats)
	}
	if len(a.avail) != len(b.avail) {
		return fmt.Errorf("frontier size %d != %d", len(a.avail), len(b.avail))
	}
	for i := range a.avail {
		if a.avail[i] != b.avail[i] {
			return fmt.Errorf("frontier[%d] = %d != %d", i, a.avail[i], b.avail[i])
		}
	}
	return nil
}

// runScript drives the workspace lifecycle against fs until the crash
// point kills it. Returns the number of acknowledged batches (-1 if
// construction itself failed) and the number of batches issued.
func runScript(fs *FS, factory func(int) (pagestore.Store, error)) (acked, issued int) {
	p := sweepProblem()
	w, err := assign.NewWorkspace(p, sweepCfg(fs, factory))
	if err != nil {
		return -1, 0
	}
	defer w.Close()
	for i, b := range sweepBatches() {
		issued = i + 1
		if err := w.Apply(b); err != nil {
			return acked, issued
		}
		acked = i + 1
		if savePoints[acked] {
			// A failed snapshot save is not fatal — the workspace keeps
			// serving and logging.
			_ = w.SaveSnapshot()
		}
	}
	return acked, issued
}

// region is a labeled byte range of the recording run.
type region struct {
	label      string
	start, end int64
}

// recordRegions replays the script uncrashed on a recording FS and
// returns the labeled write regions plus the total bytes written.
func recordRegions(t *testing.T, factory func(int) (pagestore.Store, error)) ([]region, int64) {
	t.Helper()
	fs := New()
	p := sweepProblem()
	var regs []region
	mark := func(label string, start int64) {
		regs = append(regs, region{label: label, start: start, end: fs.Written()})
	}
	c0 := fs.Written()
	w, err := assign.NewWorkspace(p, sweepCfg(fs, factory))
	if err != nil {
		t.Fatalf("recording run: %v", err)
	}
	defer w.Close()
	mark("construct", c0)
	for i, b := range sweepBatches() {
		a0 := fs.Written()
		if err := w.Apply(b); err != nil {
			t.Fatalf("recording apply %d: %v", i, err)
		}
		mark("wal-append", a0)
		if savePoints[i+1] {
			s0 := fs.Written()
			if err := w.SaveSnapshot(); err != nil {
				t.Fatalf("recording save after %d: %v", i+1, err)
			}
			mark("snapshot+rotate", s0)
		}
	}
	return regs, fs.Written()
}

// twinStates returns the canonical state after construction and after
// each batch, from a never-crashed in-memory twin.
func twinStates(t *testing.T) []twinState {
	t.Helper()
	w, err := assign.NewWorkspace(sweepProblem(), assign.Config{
		PageSize: 256, BufferFrac: 0.1, OmegaFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	states := []twinState{captureState(w)}
	for i, b := range sweepBatches() {
		if err := w.Apply(b); err != nil {
			t.Fatalf("twin apply %d: %v", i, err)
		}
		states = append(states, captureState(w))
	}
	return states
}

// sweepPoints chooses the crash offsets: every byte of every WAL append
// region; snapshot/rotation and construction regions at the given
// stride (1 under FAIRASSIGN_CRASH_FULL=1), always including each
// region's first and last byte.
func sweepPoints(regs []region, total int64, stride int64) []int64 {
	if os.Getenv("FAIRASSIGN_CRASH_FULL") == "1" {
		stride = 1
	}
	seen := make(map[int64]bool)
	var pts []int64
	add := func(k int64) {
		if k >= 0 && k <= total && !seen[k] {
			seen[k] = true
			pts = append(pts, k)
		}
	}
	for _, r := range regs {
		step := stride
		if r.label == "wal-append" {
			step = 1
		}
		for k := r.start; k < r.end; k += step {
			add(k)
		}
		add(r.start)
		add(r.end - 1)
		add(r.end)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// sweepReport is the JSON artifact the CI crash-smoke job uploads.
type sweepReport struct {
	Backend      string         `json:"backend"`
	TotalBytes   int64          `json:"total_bytes"`
	CrashPoints  int            `json:"crash_points"`
	Recoveries   int            `json:"recoveries"`
	ByPolicy     map[string]int `json:"by_policy"`
	ByRegion     map[string]int `json:"by_region"`
	Continuation int            `json:"continuation_checks"`
}

func runSweep(t *testing.T, backend string, factory func(int) (pagestore.Store, error), stride int64) {
	t.Helper()
	regs, total := recordRegions(t, factory)
	states := twinStates(t)
	pts := sweepPoints(regs, total, stride)
	report := sweepReport{
		Backend:     backend,
		TotalBytes:  total,
		CrashPoints: len(pts),
		ByPolicy:    map[string]int{},
		ByRegion:    map[string]int{},
	}
	labelOf := func(k int64) string {
		for _, r := range regs {
			if k >= r.start && k < r.end {
				return r.label
			}
		}
		return "boundary"
	}
	for pi, k := range pts {
		fs := New()
		fs.Arm(k)
		acked, issued := runScript(fs, factory)
		for _, policy := range []Policy{FlushPrefix, DropUnsynced} {
			img := fs.Reboot(policy)
			r, err := assign.OpenWorkspace(sweepCfg(img, factory))
			if err != nil {
				if acked >= 0 {
					t.Fatalf("crash@%d [%s] policy %s: construction completed but recovery failed: %v",
						k, labelOf(k), policy, err)
				}
				// Construction crashed before its initial snapshot
				// committed: failing with a typed error is a correct
				// outcome.
				if !errors.Is(err, assign.ErrNoSnapshot) && !errors.Is(err, assign.ErrBadSnapshot) {
					t.Fatalf("crash@%d [%s] policy %s: untyped recovery error: %v", k, labelOf(k), policy, err)
				}
				continue
			}
			info := r.Recovery()
			m := int(info.FinalEpoch) - 1
			lo := acked
			if lo < 0 {
				lo = 0
			}
			if m < lo || m > issued {
				r.Close()
				t.Fatalf("crash@%d [%s] policy %s: recovered %d batches, acked %d, issued %d",
					k, labelOf(k), policy, m, acked, issued)
			}
			if policy == DropUnsynced && m < acked {
				r.Close()
				t.Fatalf("crash@%d [%s]: drop-unsynced lost %d acked batches", k, labelOf(k), acked-m)
			}
			if err := sameState(captureState(r), states[m]); err != nil {
				r.Close()
				t.Fatalf("crash@%d [%s] policy %s: recovered state != twin[%d]: %v",
					k, labelOf(k), policy, m, err)
			}
			report.Recoveries++
			report.ByPolicy[policy.String()]++
			report.ByRegion[labelOf(k)]++
			// On a subset of trials, keep mutating after recovery and
			// check the workspace still tracks the twin.
			if pi%7 == 0 && policy == FlushPrefix {
				batches := sweepBatches()
				ok := true
				for _, b := range batches[m:] {
					if err := r.Apply(b); err != nil {
						r.Close()
						t.Fatalf("crash@%d: post-recovery apply: %v", k, err)
					}
				}
				if err := sameState(captureState(r), states[len(batches)]); err != nil {
					r.Close()
					t.Fatalf("crash@%d: post-recovery state diverged: %v", k, err)
				}
				_ = ok
				report.Continuation++
			}
			r.Close()
		}
	}
	if path := os.Getenv("FAIRASSIGN_CRASH_REPORT"); path != "" {
		buf, _ := json.MarshalIndent(report, "", "  ")
		name := filepath.Join(path, "crash-report-"+backend+".json")
		if err := os.MkdirAll(path, 0o755); err == nil {
			if err := os.WriteFile(name, buf, 0o644); err != nil {
				t.Logf("write report: %v", err)
			}
		}
	}
	t.Logf("%s: %d crash points over %d bytes, %d recoveries (%v by region), %d continuation checks",
		backend, report.CrashPoints, report.TotalBytes, report.Recoveries, report.ByRegion, report.Continuation)
}

func TestCrashSweepMemStore(t *testing.T) {
	runSweep(t, "memstore", nil, 61)
}

func TestCrashSweepFileStore(t *testing.T) {
	if testing.Short() {
		t.Skip("filestore sweep is slow")
	}
	dir := t.TempDir()
	n := 0
	factory := func(pageSize int) (pagestore.Store, error) {
		n++
		return pagestore.NewFileStore(filepath.Join(dir, fmt.Sprintf("s%06d.pages", n)), pageSize)
	}
	runSweep(t, "filestore", factory, 211)
}

// TestRebootPolicies pins the fault model itself.
func TestRebootPolicies(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("d/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("synced"))
	f.Sync()
	f.Write([]byte("-tail"))
	f.Close()

	img := fs.Reboot(FlushPrefix)
	if got := readAll(t, img, "d/f"); got != "synced-tail" {
		t.Fatalf("flush-prefix image = %q", got)
	}
	img = fs.Reboot(DropUnsynced)
	if got := readAll(t, img, "d/f"); got != "synced" {
		t.Fatalf("drop-unsynced image = %q", got)
	}
}

func TestArmTearsWrites(t *testing.T) {
	fs := New()
	fs.MkdirAll("d")
	f, _ := fs.Create("d/f")
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	fs.Arm(5)
	if _, err := f.Write([]byte("defg")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("straddling write: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash not flagged")
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if got := readAll(t, fs.Reboot(FlushPrefix), "d/f"); got != "abcde" {
		t.Fatalf("torn image = %q, want abcde", got)
	}
	if got := readAll(t, fs.Reboot(DropUnsynced), "d/f"); got != "" {
		t.Fatalf("unsynced image = %q, want empty", got)
	}
}

func readAll(t *testing.T, fs *FS, name string) string {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 64)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(out)
}
