// Package crashtest is the fault-injection harness behind the
// durability guarantees: an in-memory vfs.FS that kills the write
// stream at any chosen byte offset and then materializes the disk image
// a real power loss would leave behind, plus a conformance sweep (in
// the package tests) that recovers a workspace from the image of every
// injected crash point and asserts it is identical to a never-crashed
// twin at the same committed prefix.
//
// # Fault model
//
// Every byte written through the FS consumes one tick of a global
// monotone counter. Arm(k) makes the k-th byte — and everything after
// it, including Sync, Create, Rename, and Remove — fail with
// ErrInjectedCrash; a Write straddling k persists its pre-k prefix and
// fails, which is how torn records happen. Reboot then builds the
// durable image under one of two power-loss policies:
//
//   - FlushPrefix: every byte accepted before the crash survives, even
//     if never synced (the kernel happened to flush everything). The
//     generous extreme: recovery may see acknowledged-plus-torn tails.
//   - DropUnsynced: only bytes covered by a completed Sync survive; the
//     unsynced tail of every file vanishes. The adversarial extreme:
//     recovery sees the bare fsync barrier.
//
// Namespace operations (Create, Rename, Remove) that returned success
// are durable under both policies. The production sequences justify
// this: the snapshot writer syncs file bytes before renaming and syncs
// the directory after, and the WAL syncs its header before the segment
// is used, so metadata-vs-data reordering beyond these two extremes
// cannot produce states the real osFS could but the model could not.
package crashtest

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"

	"fairassign/internal/vfs"
)

// ErrInjectedCrash marks every operation refused after the armed crash
// point. The durability layer treats it like any other I/O error.
var ErrInjectedCrash = errors.New("crashtest: injected crash")

// Policy selects how Reboot treats bytes written but not synced before
// the crash.
type Policy int

const (
	// FlushPrefix keeps every byte accepted before the crash point.
	FlushPrefix Policy = iota
	// DropUnsynced keeps only bytes covered by a completed Sync.
	DropUnsynced
)

func (p Policy) String() string {
	if p == FlushPrefix {
		return "flush-prefix"
	}
	return "drop-unsynced"
}

// file is one simulated file: current (volatile) content plus the
// length its last completed Sync made durable.
type file struct {
	data   []byte
	synced int
}

// FS is the fault-injecting in-memory filesystem. The zero limit means
// unlimited (recording mode); Arm sets the crash point.
type FS struct {
	mu      sync.Mutex
	dirs    map[string]struct{}
	files   map[string]*file
	written int64
	limit   int64 // crash at this global byte position; <0 = unlimited
	crashed bool
}

var _ vfs.FS = (*FS)(nil)

// New returns an empty unlimited filesystem (recording mode).
func New() *FS {
	return &FS{
		dirs:  map[string]struct{}{".": {}},
		files: make(map[string]*file),
		limit: -1,
	}
}

// Written returns the total bytes accepted so far — the sweep space.
func (f *FS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Arm sets the crash point: the limit-th written byte and every
// operation after it fail with ErrInjectedCrash.
func (f *FS) Arm(limit int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limit = limit
}

// Crashed reports whether the crash point was reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// downLocked is the post-crash-point check every operation starts with.
func (f *FS) downLocked() bool {
	if f.limit >= 0 && f.written >= f.limit {
		f.crashed = true
		return true
	}
	return false
}

// Reboot materializes the durable disk image under the policy as a
// fresh unlimited FS: what a process restarting after power loss would
// find.
func (f *FS) Reboot(p Policy) *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := New()
	for d := range f.dirs {
		out.dirs[d] = struct{}{}
	}
	for name, fl := range f.files {
		n := len(fl.data)
		if p == DropUnsynced {
			n = fl.synced
		}
		data := make([]byte, n)
		copy(data, fl.data[:n])
		out.files[name] = &file{data: data, synced: n}
	}
	return out
}

func clean(name string) string { return path.Clean(strings.TrimPrefix(name, "/")) }

func (f *FS) Create(name string) (vfs.File, error) {
	name = clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downLocked() {
		return nil, fmt.Errorf("%w: create %s", ErrInjectedCrash, name)
	}
	if _, ok := f.dirs[path.Dir(name)]; !ok {
		return nil, &fs.PathError{Op: "create", Path: name, Err: fs.ErrNotExist}
	}
	f.files[name] = &file{}
	return &wfile{fs: f, name: name}, nil
}

func (f *FS) Open(name string) (vfs.File, error) {
	name = clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	fl, ok := f.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	data := make([]byte, len(fl.data))
	copy(data, fl.data)
	return &rfile{data: data}, nil
}

func (f *FS) List(dir string) ([]string, error) {
	dir = clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.dirs[dir]; !ok {
		return nil, &fs.PathError{Op: "open", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	for name := range f.files {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	for d := range f.dirs {
		if d != "." && path.Dir(d) == dir {
			names = append(names, path.Base(d))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *FS) Rename(oldname, newname string) error {
	oldname, newname = clean(oldname), clean(newname)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downLocked() {
		return fmt.Errorf("%w: rename %s", ErrInjectedCrash, oldname)
	}
	fl, ok := f.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	f.files[newname] = fl
	delete(f.files, oldname)
	return nil
}

func (f *FS) Remove(name string) error {
	name = clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downLocked() {
		return fmt.Errorf("%w: remove %s", ErrInjectedCrash, name)
	}
	if _, ok := f.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(f.files, name)
	return nil
}

func (f *FS) MkdirAll(dir string) error {
	dir = clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downLocked() {
		return fmt.Errorf("%w: mkdir %s", ErrInjectedCrash, dir)
	}
	for d := dir; ; d = path.Dir(d) {
		f.dirs[d] = struct{}{}
		if d == "." || d == "/" {
			break
		}
	}
	return nil
}

func (f *FS) SyncDir(dir string) error {
	dir = clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downLocked() {
		return fmt.Errorf("%w: syncdir %s", ErrInjectedCrash, dir)
	}
	if _, ok := f.dirs[dir]; !ok {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: fs.ErrNotExist}
	}
	return nil
}

type wfile struct {
	fs     *FS
	name   string
	closed bool
}

func (w *wfile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("crashtest: write to closed file %s", w.name)
	}
	fl, ok := w.fs.files[w.name]
	if !ok {
		return 0, &fs.PathError{Op: "write", Path: w.name, Err: fs.ErrNotExist}
	}
	accept := len(p)
	if w.fs.limit >= 0 {
		if room := w.fs.limit - w.fs.written; int64(accept) > room {
			if room < 0 {
				room = 0
			}
			accept = int(room) // torn write: the pre-crash prefix lands
		}
	}
	fl.data = append(fl.data, p[:accept]...)
	w.fs.written += int64(accept)
	if accept < len(p) {
		w.fs.crashed = true
		return accept, fmt.Errorf("%w: write %s", ErrInjectedCrash, w.name)
	}
	return accept, nil
}

func (w *wfile) Read([]byte) (int, error) {
	return 0, fmt.Errorf("crashtest: file %s is write-only", w.name)
}

func (w *wfile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.downLocked() {
		return fmt.Errorf("%w: sync %s", ErrInjectedCrash, w.name)
	}
	if fl, ok := w.fs.files[w.name]; ok {
		fl.synced = len(fl.data)
	}
	return nil
}

func (w *wfile) Close() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.closed = true
	return nil
}

type rfile struct {
	data []byte
	off  int
}

func (r *rfile) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *rfile) Write([]byte) (int, error) {
	return 0, errors.New("crashtest: file is read-only")
}

func (r *rfile) Sync() error { return nil }

func (r *rfile) Close() error { return nil }
