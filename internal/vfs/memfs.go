package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is a plain in-memory FS for tests: always-durable (every write
// is immediately "synced"), no fault injection. The crash harness in
// internal/crashtest implements the torn-write fault model separately.
type MemFS struct {
	mu    sync.Mutex
	dirs  map[string]struct{}
	files map[string][]byte
}

// NewMem returns an empty in-memory filesystem with only the root
// directory present.
func NewMem() *MemFS {
	return &MemFS{
		dirs:  map[string]struct{}{".": {}},
		files: make(map[string][]byte),
	}
}

func memClean(name string) string { return path.Clean(strings.TrimPrefix(name, "/")) }

func (m *MemFS) Create(name string) (File, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dirs[path.Dir(name)]; !ok {
		return nil, &fs.PathError{Op: "create", Path: name, Err: fs.ErrNotExist}
	}
	m.files[name] = nil
	return &memWFile{fs: m, name: name}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return &memRFile{data: cp}, nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	dir = memClean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dirs[dir]; !ok {
		return nil, &fs.PathError{Op: "open", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	for name := range m.files {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	for d := range m.dirs {
		if d != "." && path.Dir(d) == dir {
			names = append(names, path.Base(d))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	oldname, newname = memClean(oldname), memClean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Remove(name string) error {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) MkdirAll(dir string) error {
	dir = memClean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := dir; ; d = path.Dir(d) {
		m.dirs[d] = struct{}{}
		if d == "." || d == "/" {
			break
		}
	}
	return nil
}

func (m *MemFS) SyncDir(dir string) error {
	dir = memClean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dirs[dir]; !ok {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: fs.ErrNotExist}
	}
	return nil
}

// ReadAll returns a copy of a file's bytes (test helper).
func (m *MemFS) ReadAll(name string) ([]byte, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// WriteAll replaces a file's bytes wholesale (test helper for
// corruption injection).
func (m *MemFS) WriteAll(name string, data []byte) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	m.files[name] = cp
}

type memWFile struct {
	fs     *MemFS
	name   string
	closed bool
}

func (f *memWFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("vfs: write to closed file %s", f.name)
	}
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memWFile) Read([]byte) (int, error) {
	return 0, fmt.Errorf("vfs: file %s is write-only", f.name)
}

func (f *memWFile) Sync() error { return nil }

func (f *memWFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}

type memRFile struct {
	data []byte
	off  int
}

func (f *memRFile) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

func (f *memRFile) Write([]byte) (int, error) { return 0, fmt.Errorf("vfs: file is read-only") }

func (f *memRFile) Sync() error { return nil }

func (f *memRFile) Close() error { return nil }
