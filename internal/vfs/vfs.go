// Package vfs is the small filesystem seam under the durability layer:
// the snapshot writer and the write-ahead log perform every file
// operation through the FS interface, so the crash-injection harness
// (internal/crashtest) can substitute a fault-injecting in-memory
// filesystem and kill the write stream at any byte offset, while
// production uses the real OS filesystem.
//
// Durability contract the OS implementation provides (and the in-memory
// fault model mirrors):
//
//   - File.Sync makes every byte written so far durable before it
//     returns — data written after the last Sync may be lost, torn at
//     any byte boundary, on power loss;
//   - Rename atomically replaces the destination and is durable once
//     SyncDir on the parent returns (the snapshot commit point);
//   - Create truncates; callers make new files durable with
//     Sync + SyncDir.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is one open file. Files opened with Create are write-only in
// practice (the durability layer never reads a file it is writing);
// files opened with Open are read-only.
type File interface {
	io.Reader
	io.Writer
	// Sync forces everything written so far to stable storage.
	Sync() error
	// Close releases the handle. Closing does not imply Sync.
	Close() error
}

// FS is the filesystem surface the durability layer uses. All paths are
// slash-joined by the caller (filepath.Join for the OS implementation's
// inputs works too: the in-memory implementation treats the path as an
// opaque key under a directory prefix).
type FS interface {
	// Create creates (truncating) a file for writing.
	Create(name string) (File, error)
	// Open opens a file for reading.
	Open(name string) (File, error)
	// List returns the entry names (not full paths) in a directory,
	// sorted ascending.
	List(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string) error
	// SyncDir makes prior namespace operations (Create, Rename, Remove)
	// in the directory durable.
	SyncDir(dir string) error
}

// OS returns the real-filesystem implementation.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Some platforms cannot fsync a directory handle; treat that as
	// best-effort (the metadata journal covers it there).
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
