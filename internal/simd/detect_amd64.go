//go:build amd64 && !purego

package simd

// Runtime CPU-feature detection, hand-rolled (no golang.org/x/sys):
// the AVX2 kernels additionally require OSXSAVE with YMM state enabled
// in XCR0 (the OS must save the upper vector halves across context
// switches) and POPCNT (used by the survivor-compression kernel; it
// predates AVX2 on every x86 vendor, but the bit is checked anyway).

const asmLevel = "avx2"

var hasAsm = detectAVX2()

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0). Only valid when
// CPUID reports OSXSAVE. Implemented in cpuid_amd64.s.
func xgetbv() (eax, edx uint32)

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		popcntBit  = 1 << 23
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&popcntBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled.
	xlo, _ := xgetbv()
	if xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// Assembly kernel bodies (kernels_amd64.s). Each processes the leading
// n &^ 3 elements with 4-wide AVX2 blocks and the remainder with scalar
// SSE2 instructions, so the wrappers hand over whole slices.

//go:noescape
func axpyAVX2(out, col *float64, a float64, n int)

//go:noescape
func axpyZAVX2(out, col *float64, a float64, n int)

//go:noescape
func scaleMaxAVX2(out, col *float64, a float64, n int)

//go:noescape
func scaleMaxZAVX2(out, col *float64, a float64, n int)

//go:noescape
func axpySqClampAVX2(out, col *float64, a float64, n int)

//go:noescape
func axpySqClampZAVX2(out, col *float64, a float64, n int)

// compressNotLessAVX2 compacts the survivors of the leading n &^ 3
// elements only (the wrapper finishes the tail); it may store up to 4
// int32s past the last survivor, hence the len(dst) >= len(col) slack.
//
//go:noescape
func compressNotLessAVX2(dst *int32, col *float64, q float64, base int32, n int) int

// selectBestAVX2 runs the full-block portion of the 4-lane strided
// argmax (indexes 0 .. n&^3-1, n >= 4), leaving the lane states in L.
//
//go:noescape
func selectBestAVX2(L *SelLanes, scores *float64, ids *uint64, n int)

func Axpy(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		axpyAVX2(&out[0], &col[0], a, len(col))
		return
	}
	axpyGeneric(out, col, a)
}

func AxpyZ(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		axpyZAVX2(&out[0], &col[0], a, len(col))
		return
	}
	axpyZGeneric(out, col, a)
}

func ScaleMax(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		scaleMaxAVX2(&out[0], &col[0], a, len(col))
		return
	}
	scaleMaxGeneric(out, col, a)
}

func ScaleMaxZ(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		scaleMaxZAVX2(&out[0], &col[0], a, len(col))
		return
	}
	scaleMaxZGeneric(out, col, a)
}

func AxpySqClamp(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		axpySqClampAVX2(&out[0], &col[0], a, len(col))
		return
	}
	axpySqClampGeneric(out, col, a)
}

func AxpySqClampZ(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		axpySqClampZAVX2(&out[0], &col[0], a, len(col))
		return
	}
	axpySqClampZGeneric(out, col, a)
}

func CompressNotLess(dst []int32, col []float64, q float64, base int32) int {
	n := len(col)
	if n >= minAsmLen && enabled.Load() {
		n4 := n &^ 3
		k := compressNotLessAVX2(&dst[0], &col[0], q, base, n4)
		for i := n4; i < n; i++ {
			if !(col[i] < q) {
				dst[k] = base + int32(i)
				k++
			}
		}
		return k
	}
	return compressNotLessGeneric(dst, col, q, base)
}

func selectBestBlocks(L *SelLanes, scores []float64, ids []uint64) {
	if len(scores) >= minAsmLen && enabled.Load() {
		selectBestAVX2(L, &scores[0], &ids[0], len(scores))
		return
	}
	selectBestBlocksGeneric(L, scores, ids)
}
