//go:build purego || (!amd64 && !arm64)

package simd

// This file is the portable build: the `purego` tag (or an architecture
// without hand-written kernels) compiles no assembly at all, and every
// exported entry point is the pure-Go kernel directly.

const (
	hasAsm   = false
	asmLevel = ""
)

// Axpy accumulates out[i] += a*col[i] over len(col) elements
// (len(out) >= len(col)), with the multiply rounded before the add.
func Axpy(out, col []float64, a float64) { axpyGeneric(out, col, a) }

// AxpyZ writes out[i] = 0 + a*col[i]: the first accumulation of a fresh
// sum, with the explicit +0.0 matching `s := 0.0; s += p` bit for bit
// (it normalizes -0.0 products to +0.0 exactly as the scalar code does).
func AxpyZ(out, col []float64, a float64) { axpyZGeneric(out, col, a) }

// ScaleMax folds out[i] = (a*col[i] > out[i]) ? a*col[i] : out[i] — the
// Chebyshev accumulation step. The predicate keeps out[i] when the
// product is NaN.
func ScaleMax(out, col []float64, a float64) { scaleMaxGeneric(out, col, a) }

// ScaleMaxZ is ScaleMax against an implicit zero accumulator:
// out[i] = (a*col[i] > 0) ? a*col[i] : +0.
func ScaleMaxZ(out, col []float64, a float64) { scaleMaxZGeneric(out, col, a) }

// AxpySqClamp accumulates out[i] += a*sq(col[i]) where sq(v) is v*v for
// !(v <= 0) and +0 otherwise — the Lp p=2 power column with the
// non-negative clamp of powNonNeg (NaN squares to NaN, negatives and
// zeros clamp to +0).
func AxpySqClamp(out, col []float64, a float64) { axpySqClampGeneric(out, col, a) }

// AxpySqClampZ is AxpySqClamp writing a fresh sum (0 + product).
func AxpySqClampZ(out, col []float64, a float64) { axpySqClampZGeneric(out, col, a) }

// CompressNotLess writes base+i to dst for every i with !(col[i] < q)
// (NaN survives), in ascending i order, and returns the survivor count.
// len(dst) must be at least len(col): the vector paths store whole
// blocks and rely on the slack.
func CompressNotLess(dst []int32, col []float64, q float64, base int32) int {
	return compressNotLessGeneric(dst, col, q, base)
}

func selectBestBlocks(L *SelLanes, scores []float64, ids []uint64) {
	selectBestBlocksGeneric(L, scores, ids)
}
