// Package simd holds the explicit-SIMD float64 kernels behind the
// columnar hot paths: per-dimension weighted accumulation
// (score.EvalBlock / EvalPrepared / FuncBlocks.Best), the blocked
// dominance filter (skyline.ColSet), and the (score, lowest-ID) argmax
// reduction under ColSet.Best / Maintainer.Best.
//
// Each kernel exists three times — hand-written AVX2 assembly (amd64),
// hand-written NEON assembly (arm64), and a portable pure-Go
// implementation — behind one exported entry point that dispatches on
// one-time runtime CPU-feature detection (hand-rolled CPUID on amd64,
// HWCAP on linux/arm64; no dependencies). The contract, which the
// entire conformance and benchmark gate stack depends on, is that every
// implementation is bit-for-bit identical on every input, NaN, ±Inf,
// denormals and signed zeros included. Two design rules enforce it:
//
//   - No FMA, anywhere. A fused multiply-add rounds once where the
//     portable kernel rounds twice, so the assembly uses separate
//     multiply and add instructions, and the portable kernels (and the
//     scalar reference loops they are differentially tested against —
//     geom.Dot, score.Eval) are written with explicit intermediate
//     assignments, which the Go spec forbids the compiler to fuse.
//     Results are therefore also identical across GOARCH and GOAMD64
//     levels.
//
//   - Identical evaluation order. Accumulation kernels (Axpy and
//     friends) vectorize across output elements, never across the
//     summation axis, so each out[i] is built by exactly the additions
//     the scalar code performs, in the same order. The argmax kernel
//     uses a fixed 4-lane strided scan order (see SelectBest) that the
//     portable implementation follows lane for lane.
//
// Dispatch can be disabled three ways: building with the `purego` tag
// (no assembly is compiled at all), setting FAIRASSIGN_NOSIMD=1 in the
// environment (detection still runs, dispatch starts disabled), or
// calling SetEnabled(false) at runtime. All three leave results
// bit-identical — only wall-clock changes.
package simd

import (
	"os"
	"sync/atomic"
)

// enabled gates dispatch to the assembly kernels at runtime. Atomic so
// tests and the kill switch may flip it while concurrent readers are
// inside the kernels (-race clean); the Load is a plain MOV on every
// supported architecture.
var enabled atomic.Bool

func init() {
	v := os.Getenv("FAIRASSIGN_NOSIMD")
	enabled.Store(hasAsm && !(v != "" && v != "0"))
}

// SetEnabled turns dispatch to the assembly kernels on or off at
// runtime. Enabling is a no-op when the binary has no assembly for this
// CPU (purego builds, unsupported architectures, missing CPU features).
// Results are bit-identical either way; this is a kill switch and a
// differential-testing hook, not a semantics knob.
func SetEnabled(on bool) { enabled.Store(on && hasAsm) }

// Enabled reports whether the assembly kernels are currently dispatched.
func Enabled() bool { return enabled.Load() }

// Available reports whether assembly kernels exist for this binary and
// CPU, regardless of the runtime switch.
func Available() bool { return hasAsm }

// Level names the active kernel set: "avx2" or "neon" when assembly is
// dispatched, "portable" otherwise.
func Level() string {
	if enabled.Load() {
		return asmLevel
	}
	return "portable"
}

// DetectedLevel names the kernel set the CPU supports ("avx2", "neon",
// or "portable"), ignoring the runtime switch — what Level would report
// with dispatch enabled.
func DetectedLevel() string {
	if hasAsm {
		return asmLevel
	}
	return "portable"
}

// minAsmLen is the slice length below which the exported entry points
// skip the assembly path: under ~2 vector blocks the call overhead and
// tail handling cost more than the scalar loop.
const minAsmLen = 8

// SelLanes is the running state of the 4-lane strided argmax scan: lane
// j holds the best (score, id, index) triple seen among indexes ≡ j
// (mod 4), under the replacement predicate
//
//	replace iff !(s < bestS) && !(s == bestS && id >= bestID)
//
// — the same predicate the row-wise scans use, which prefers the higher
// score, breaks score ties to the lower ID, and (matching the scalar
// loops' NaN behavior) lets an unordered comparison replace the
// incumbent.
type SelLanes struct {
	S   [4]float64
	ID  [4]uint64
	Idx [4]int64
}

// SelectBest returns the index of the element maximizing (score, -id)
// under the predicate above, or -1 when the slices are empty. ids must
// be at least as long as scores.
//
// Scan order is part of the kernel's spec, because with NaN scores the
// predicate is not order-independent: when len(scores) >= 4 the scan is
// 4-lane strided — lanes seeded from elements 0..3, every further full
// block of 4 folded lane-wise, then lanes 0..3 merged in order, then
// the tail elements in index order. Shorter inputs scan sequentially.
// On NaN-free scores with unique ids this picks exactly the winner of
// the total order (score, -id), like any scan order; assembly and
// portable paths agree bit for bit always.
func SelectBest(scores []float64, ids []uint64) int {
	n := len(scores)
	if n == 0 {
		return -1
	}
	if n < 4 {
		bi := 0
		for i := 1; i < n; i++ {
			if selReplace(scores[i], ids[i], scores[bi], ids[bi]) {
				bi = i
			}
		}
		return bi
	}
	var L SelLanes
	selectBestBlocks(&L, scores, ids)
	bestS, bestID, bestIdx := L.S[0], L.ID[0], L.Idx[0]
	for j := 1; j < 4; j++ {
		if selReplace(L.S[j], L.ID[j], bestS, bestID) {
			bestS, bestID, bestIdx = L.S[j], L.ID[j], L.Idx[j]
		}
	}
	for i := n &^ 3; i < n; i++ {
		if selReplace(scores[i], ids[i], bestS, bestID) {
			bestS, bestID, bestIdx = scores[i], ids[i], int64(i)
		}
	}
	return int(bestIdx)
}

// selReplace is the argmax replacement predicate (see SelLanes).
func selReplace(s float64, id uint64, bestS float64, bestID uint64) bool {
	if s < bestS {
		return false
	}
	if s == bestS && id >= bestID {
		return false
	}
	return true
}

// selectBestBlocksGeneric is the portable lane scan: it must mirror the
// assembly versions decision for decision (pure comparisons and
// selects, no arithmetic, so bit-identity is structural).
func selectBestBlocksGeneric(L *SelLanes, scores []float64, ids []uint64) {
	for j := 0; j < 4; j++ {
		L.S[j], L.ID[j], L.Idx[j] = scores[j], ids[j], int64(j)
	}
	n4 := len(scores) &^ 3
	for i := 4; i < n4; i += 4 {
		for j := 0; j < 4; j++ {
			if s, id := scores[i+j], ids[i+j]; selReplace(s, id, L.S[j], L.ID[j]) {
				L.S[j], L.ID[j], L.Idx[j] = s, id, int64(i+j)
			}
		}
	}
}

// --- portable kernel bodies -------------------------------------------
//
// Every multiply-add below goes through an explicitly assigned
// intermediate (p := a*v; out += p): per the Go spec an implementation
// may fuse a floating-point multiply and add only within a single
// expression, so the temporary guarantees mul-then-round-then-add on
// every architecture — the exact sequence the assembly performs.

func axpyGeneric(out, col []float64, a float64) {
	for i, v := range col {
		p := a * v
		out[i] += p
	}
}

func axpyZGeneric(out, col []float64, a float64) {
	for i, v := range col {
		p := a * v
		out[i] = 0 + p
	}
}

func scaleMaxGeneric(out, col []float64, a float64) {
	for i, v := range col {
		if p := a * v; p > out[i] {
			out[i] = p
		}
	}
}

func scaleMaxZGeneric(out, col []float64, a float64) {
	for i, v := range col {
		p := a * v
		if p > 0 {
			out[i] = p
		} else {
			out[i] = 0
		}
	}
}

func axpySqClampGeneric(out, col []float64, a float64) {
	for i, v := range col {
		sq := 0.0
		if !(v <= 0) {
			sq = v * v
		}
		p := a * sq
		out[i] += p
	}
}

func axpySqClampZGeneric(out, col []float64, a float64) {
	for i, v := range col {
		sq := 0.0
		if !(v <= 0) {
			sq = v * v
		}
		p := a * sq
		out[i] = 0 + p
	}
}

func compressNotLessGeneric(dst []int32, col []float64, q float64, base int32) int {
	k := 0
	for i, v := range col {
		if !(v < q) {
			dst[k] = base + int32(i)
			k++
		}
	}
	return k
}

// FilterIdxNotLess compacts cand in place, keeping the indexes ci with
// !(col[ci] < q) (NaN survives, mirroring CompressNotLess), and returns
// the surviving count. It stays scalar on every architecture: the
// survivor passes of the dominance filter touch the few candidates the
// first column admitted, and the output is pure integer selection, so
// the SIMD-on and SIMD-off paths are trivially identical.
func FilterIdxNotLess(cand []int32, col []float64, q float64) int {
	k := 0
	for _, ci := range cand {
		if !(col[ci] < q) {
			cand[k] = ci
			k++
		}
	}
	return k
}
