package simd

import (
	"math"
	"math/rand"
	"testing"
)

// The differential harness: every exported kernel must be bit-identical
// between the assembly and pure-Go paths on every input. NaN results
// are compared as "both NaN" rather than by payload: payload bits of
// NaN produced by float arithmetic depend on operand order choices the
// Go compiler is free to make per call site, so they are outside every
// kernel's contract (sign/payload of non-NaN results, including signed
// zeros and denormals, is exact).

var specials = []float64{
	math.NaN(),
	math.Inf(1),
	math.Inf(-1),
	0,
	math.Copysign(0, -1),
	5e-324, // smallest denormal
	-5e-324,
	math.MaxFloat64,
	-math.MaxFloat64,
	1, -1,
}

func randCol(r *rand.Rand, n int, special bool) []float64 {
	c := make([]float64, n)
	for i := range c {
		if special && r.Intn(6) == 0 {
			c[i] = specials[r.Intn(len(specials))]
		} else {
			c[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(13)-6))
		}
	}
	return c
}

// unaligned returns a copy of c living at an odd element offset of a
// larger backing array, so vector loads in the kernels exercise
// unaligned addresses (pooled scratch hands out such sub-slices).
func unaligned(c []float64) []float64 {
	b := make([]float64, len(c)+1)
	u := b[1 : 1+len(c)]
	copy(u, c)
	return u
}

func sameBits(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) &&
			!(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// testLens covers n = 0, sub-lane-width, every tail residue mod 4, and
// block-crossing sizes.
var testLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 31, 32, 33, 63, 100, 255, 256, 257, 1000, 1023}

func accKernels() []struct {
	name string
	asm  func(out, col []float64, a float64)
	gen  func(out, col []float64, a float64)
} {
	return []struct {
		name string
		asm  func(out, col []float64, a float64)
		gen  func(out, col []float64, a float64)
	}{
		{"Axpy", Axpy, axpyGeneric},
		{"AxpyZ", AxpyZ, axpyZGeneric},
		{"ScaleMax", ScaleMax, scaleMaxGeneric},
		{"ScaleMaxZ", ScaleMaxZ, scaleMaxZGeneric},
		{"AxpySqClamp", AxpySqClamp, axpySqClampGeneric},
		{"AxpySqClampZ", AxpySqClampZ, axpySqClampZGeneric},
	}
}

func TestAccumulationKernelsDifferential(t *testing.T) {
	if !Available() {
		t.Skip("no assembly kernels for this CPU")
	}
	defer SetEnabled(true)
	r := rand.New(rand.NewSource(11))
	for _, n := range testLens {
		for trial := 0; trial < 24; trial++ {
			col := unaligned(randCol(r, n, true))
			out0 := unaligned(randCol(r, n, true))
			a := r.NormFloat64()
			switch trial % 6 {
			case 0:
				a = specials[r.Intn(len(specials))]
			case 1:
				a = 0
			}
			for _, k := range accKernels() {
				o1 := append([]float64(nil), out0...)
				o2 := append([]float64(nil), out0...)
				SetEnabled(true)
				k.asm(o1, col, a)
				SetEnabled(false)
				k.gen(o2, col, a)
				if !sameBits(o1, o2) {
					t.Fatalf("%s n=%d a=%v: asm and portable disagree\nasm=%v\ngen=%v\ncol=%v\nout0=%v",
						k.name, n, a, o1, o2, col, out0)
				}
			}
		}
	}
}

func TestCompressNotLessDifferential(t *testing.T) {
	if !Available() {
		t.Skip("no assembly kernels for this CPU")
	}
	defer SetEnabled(true)
	r := rand.New(rand.NewSource(12))
	for _, n := range testLens {
		for trial := 0; trial < 24; trial++ {
			col := unaligned(randCol(r, n, true))
			q := r.NormFloat64()
			if trial%5 == 0 {
				q = specials[r.Intn(len(specials))]
			}
			base := int32(r.Intn(1 << 20))
			d1 := make([]int32, n)
			d2 := make([]int32, n)
			SetEnabled(true)
			k1 := CompressNotLess(d1, col, q, base)
			SetEnabled(false)
			k2 := CompressNotLess(d2, col, q, base)
			if k1 != k2 {
				t.Fatalf("n=%d q=%v: survivor count %d (asm) vs %d (portable)\ncol=%v", n, q, k1, k2, col)
			}
			for i := 0; i < k1; i++ {
				if d1[i] != d2[i] {
					t.Fatalf("n=%d q=%v survivor %d: %d (asm) vs %d (portable)", n, q, i, d1[i], d2[i])
				}
			}
		}
	}
}

func TestSelectBestDifferential(t *testing.T) {
	if !Available() {
		t.Skip("no assembly kernels for this CPU")
	}
	defer SetEnabled(true)
	r := rand.New(rand.NewSource(13))
	for _, n := range testLens {
		for trial := 0; trial < 40; trial++ {
			s := unaligned(randCol(r, n, trial%2 == 0))
			ids := make([]uint64, n)
			for i := range ids {
				ids[i] = uint64(r.Intn(2*n + 1)) // collisions on purpose
			}
			if n > 4 && trial%3 == 0 {
				// exact score ties across lanes
				s[n/2], ids[n/2] = s[1], ids[1]+1
				s[n-1], ids[n-1] = s[1], ids[1]
			}
			SetEnabled(true)
			i1 := SelectBest(s, ids)
			SetEnabled(false)
			i2 := SelectBest(s, ids)
			if i1 != i2 {
				t.Fatalf("n=%d: argmax %d (asm) vs %d (portable)\ns=%v\nids=%v", n, i1, i2, s, ids)
			}
		}
	}
}

// TestSelectBestSpec pins the sequential semantics on NaN-free scores:
// the winner is the element maximizing (score, -id), regardless of scan
// order.
func TestSelectBestSpec(t *testing.T) {
	defer SetEnabled(true)
	r := rand.New(rand.NewSource(14))
	for _, on := range []bool{true, false} {
		SetEnabled(on)
		for _, n := range testLens {
			if n == 0 {
				if got := SelectBest(nil, nil); got != -1 {
					t.Fatalf("SelectBest(empty) = %d, want -1", got)
				}
				continue
			}
			s := randCol(r, n, false)
			ids := make([]uint64, n)
			perm := r.Perm(n)
			for i := range ids {
				ids[i] = uint64(perm[i])
			}
			want := 0
			for i := 1; i < n; i++ {
				if s[i] > s[want] || (s[i] == s[want] && ids[i] < ids[want]) {
					want = i
				}
			}
			if got := SelectBest(s, ids); got != want {
				t.Fatalf("simd=%v n=%d: SelectBest=%d want %d", on, n, got, want)
			}
		}
	}
}

func TestKillSwitches(t *testing.T) {
	defer SetEnabled(true)
	if Available() {
		SetEnabled(true)
		if !Enabled() || Level() == "portable" {
			t.Fatalf("enable failed: Enabled=%v Level=%q", Enabled(), Level())
		}
		if Level() != DetectedLevel() {
			t.Fatalf("Level %q != DetectedLevel %q while enabled", Level(), DetectedLevel())
		}
	}
	SetEnabled(false)
	if Enabled() || Level() != "portable" {
		t.Fatalf("disable failed: Enabled=%v Level=%q", Enabled(), Level())
	}
	if !Available() {
		SetEnabled(true)
		if Enabled() {
			t.Fatal("SetEnabled(true) must stay off without assembly kernels")
		}
		if DetectedLevel() != "portable" {
			t.Fatalf("DetectedLevel=%q want portable", DetectedLevel())
		}
	}
}

// FuzzKernelsSIMD drives all eight kernels from one fuzz corpus,
// bit-comparing assembly against pure Go on arbitrary lengths, weights,
// and bit patterns (the raw bytes reinterpret as float64 columns, so
// NaN payloads, infinities, denormals and signed zeros all occur).
func FuzzKernelsSIMD(f *testing.F) {
	f.Add(uint8(3), int64(-1), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1, 0, 0, 0, 0, 0, 0xf8, 0xff})
	f.Add(uint8(0), int64(0x7ff8000000000001), []byte{})
	f.Add(uint8(5), int64(1), []byte{0x55, 0xAA, 0x01, 0xFF, 0x80, 0x00, 0x7F, 0xF0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, sel uint8, abits int64, raw []byte) {
		if !Available() {
			t.Skip("no assembly kernels for this CPU")
		}
		defer SetEnabled(true)
		n := len(raw) / 16
		col := make([]float64, n)
		out0 := make([]float64, n)
		ids := make([]uint64, n)
		for i := 0; i < n; i++ {
			col[i] = math.Float64frombits(leU64(raw[16*i:]))
			out0[i] = math.Float64frombits(leU64(raw[16*i+8:]))
			ids[i] = leU64(raw[16*i:]) >> 1
		}
		a := math.Float64frombits(uint64(abits))
		ks := accKernels()
		k := ks[int(sel)%len(ks)]
		o1 := append([]float64(nil), out0...)
		o2 := append([]float64(nil), out0...)
		SetEnabled(true)
		k.asm(o1, col, a)
		SetEnabled(false)
		k.gen(o2, col, a)
		if !sameBits(o1, o2) {
			t.Fatalf("%s n=%d a=%v: asm and portable disagree\nasm=%v\ngen=%v", k.name, n, a, o1, o2)
		}
		d1 := make([]int32, n)
		d2 := make([]int32, n)
		SetEnabled(true)
		k1 := CompressNotLess(d1, col, a, 7)
		i1 := SelectBest(out0, ids)
		SetEnabled(false)
		k2 := CompressNotLess(d2, col, a, 7)
		i2 := SelectBest(out0, ids)
		if k1 != k2 {
			t.Fatalf("CompressNotLess count %d (asm) vs %d (portable)", k1, k2)
		}
		for i := 0; i < k1; i++ {
			if d1[i] != d2[i] {
				t.Fatalf("CompressNotLess survivor %d: %d vs %d", i, d1[i], d2[i])
			}
		}
		if i1 != i2 {
			t.Fatalf("SelectBest %d (asm) vs %d (portable)", i1, i2)
		}
	})
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
