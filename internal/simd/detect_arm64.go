//go:build arm64 && !purego

package simd

import (
	"encoding/binary"
	"os"
	"runtime"
)

// Runtime CPU-feature detection, hand-rolled (no golang.org/x/sys).
// Advanced SIMD (NEON) is architecturally mandatory in ARMv8-A — the Go
// runtime itself assumes it — so this is a formality, but on Linux the
// kernel's HWCAP word is consulted anyway, read straight from
// /proc/self/auxv.

const asmLevel = "neon"

var hasAsm = detectASIMD()

func detectASIMD() bool {
	if runtime.GOOS != "linux" {
		// Non-Linux arm64 (notably darwin) has no HWCAP; ASIMD is
		// part of the baseline everywhere Go runs.
		return true
	}
	buf, err := os.ReadFile("/proc/self/auxv")
	if err != nil {
		// auxv can be unreadable in locked-down sandboxes; NEON is
		// still the ARMv8 baseline.
		return true
	}
	const (
		atHWCAP    = 16
		hwcapASIMD = 1 << 1
	)
	for i := 0; i+16 <= len(buf); i += 16 {
		tag := binary.LittleEndian.Uint64(buf[i:])
		val := binary.LittleEndian.Uint64(buf[i+8:])
		if tag == atHWCAP {
			return val&hwcapASIMD != 0
		}
	}
	return true
}

// Assembly kernel bodies (kernels_arm64.s). Each processes the leading
// n &^ 3 elements in 2x2-wide NEON blocks and the remainder with scalar
// FP instructions, so the wrappers hand over whole slices.

//go:noescape
func axpyNEON(out, col *float64, a float64, n int)

//go:noescape
func axpyZNEON(out, col *float64, a float64, n int)

//go:noescape
func scaleMaxNEON(out, col *float64, a float64, n int)

//go:noescape
func scaleMaxZNEON(out, col *float64, a float64, n int)

//go:noescape
func axpySqClampNEON(out, col *float64, a float64, n int)

//go:noescape
func axpySqClampZNEON(out, col *float64, a float64, n int)

// compressNotLessNEON compacts the survivors of the leading n &^ 3
// elements only (the wrapper finishes the tail); it stores every
// candidate index and bumps the cursor by the survivor mask bit, so it
// may write one int32 past the last survivor — covered by the
// len(dst) >= len(col) slack.
//
//go:noescape
func compressNotLessNEON(dst *int32, col *float64, q float64, base int32, n int) int

// selectBestNEON runs the full-block portion of the 4-lane strided
// argmax (indexes 0 .. n&^3-1, n >= 4), lanes 0-1 and 2-3 living in one
// 2-lane vector register each, leaving the lane states in L.
//
//go:noescape
func selectBestNEON(L *SelLanes, scores *float64, ids *uint64, n int)

func Axpy(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		axpyNEON(&out[0], &col[0], a, len(col))
		return
	}
	axpyGeneric(out, col, a)
}

func AxpyZ(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		axpyZNEON(&out[0], &col[0], a, len(col))
		return
	}
	axpyZGeneric(out, col, a)
}

func ScaleMax(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		scaleMaxNEON(&out[0], &col[0], a, len(col))
		return
	}
	scaleMaxGeneric(out, col, a)
}

func ScaleMaxZ(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		scaleMaxZNEON(&out[0], &col[0], a, len(col))
		return
	}
	scaleMaxZGeneric(out, col, a)
}

func AxpySqClamp(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		axpySqClampNEON(&out[0], &col[0], a, len(col))
		return
	}
	axpySqClampGeneric(out, col, a)
}

func AxpySqClampZ(out, col []float64, a float64) {
	if len(col) >= minAsmLen && enabled.Load() {
		axpySqClampZNEON(&out[0], &col[0], a, len(col))
		return
	}
	axpySqClampZGeneric(out, col, a)
}

func CompressNotLess(dst []int32, col []float64, q float64, base int32) int {
	n := len(col)
	if n >= minAsmLen && enabled.Load() {
		n4 := n &^ 3
		k := compressNotLessNEON(&dst[0], &col[0], q, base, n4)
		for i := n4; i < n; i++ {
			if !(col[i] < q) {
				dst[k] = base + int32(i)
				k++
			}
		}
		return k
	}
	return compressNotLessGeneric(dst, col, q, base)
}

func selectBestBlocks(L *SelLanes, scores []float64, ids []uint64) {
	if len(scores) >= minAsmLen && enabled.Load() {
		selectBestNEON(L, &scores[0], &ids[0], len(scores))
		return
	}
	selectBestBlocksGeneric(L, scores, ids)
}
