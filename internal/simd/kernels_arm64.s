//go:build arm64 && !purego

#include "textflag.h"

// NEON kernels behind the columnar hot paths. Same bit-identity
// contracts as the AVX2 file: no FMA (separate FMUL/FADD, never VFMLA),
// vectorization across output elements only, unordered-true compare
// polarity where the scalar code's negated comparisons keep NaN, and
// blends via FCM* masks + BIT rather than FMAX (whose NaN propagation
// differs from the scalar `if p > acc` predicate).
//
// Go's arm64 assembler has no mnemonics for the vector FP arithmetic
// and compare instructions (only the fused VFMLA/VFMLS, which the
// contract forbids), so those are emitted as WORD-encoded A64 words via
// the macros below. Operand roles follow the ARM manual: Vd = Vn op Vm.
// Everything else (loads, stores, bitwise ops, integer adds, the BIT
// blend, scalar FP tails) uses native mnemonics.

#define VFMUL2D(vm, vn, vd) WORD $(0x6E60DC00 | ((vm)<<16) | ((vn)<<5) | (vd)) // FMUL Vd.2D, Vn.2D, Vm.2D
#define VFADD2D(vm, vn, vd) WORD $(0x4E60D400 | ((vm)<<16) | ((vn)<<5) | (vd)) // FADD Vd.2D, Vn.2D, Vm.2D
#define VFCMGT2D(vm, vn, vd) WORD $(0x6EE0E400 | ((vm)<<16) | ((vn)<<5) | (vd)) // FCMGT Vd.2D, Vn.2D, Vm.2D (Vn > Vm, NaN -> 0)
#define VFCMGE2D(vm, vn, vd) WORD $(0x6E60E400 | ((vm)<<16) | ((vn)<<5) | (vd)) // FCMGE Vd.2D, Vn.2D, Vm.2D (Vn >= Vm, NaN -> 0)
#define VFCMEQ2D(vm, vn, vd) WORD $(0x4E60E400 | ((vm)<<16) | ((vn)<<5) | (vd)) // FCMEQ Vd.2D, Vn.2D, Vm.2D (Vn == Vm, NaN -> 0)
#define VCMHS2D(vm, vn, vd) WORD $(0x6EE03C00 | ((vm)<<16) | ((vn)<<5) | (vd))  // CMHS Vd.2D, Vn.2D, Vm.2D (Vn >=u Vm)

// func axpyNEON(out, col *float64, a float64, n int)
TEXT ·axpyNEON(SB), NOSPLIT, $0-32
	MOVD out+0(FP), R0
	MOVD col+8(FP), R1
	FMOVD a+16(FP), F0
	VDUP V0.D[0], V0.D2
	MOVD n+24(FP), R2
	AND $-4, R2, R4
	MOVD $0, R3

axpy4:
	CMP R4, R3
	BGE axpytail
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1 (R0), [V3.D2, V4.D2]
	VFMUL2D(0, 1, 1)
	VFMUL2D(0, 2, 2)
	VFADD2D(3, 1, 1)
	VFADD2D(4, 2, 2)
	VST1.P [V1.D2, V2.D2], 32(R0)
	ADD $4, R3
	B axpy4

axpytail:
	CMP R2, R3
	BGE axpydone
	FMOVD (R1), F1
	FMULD F0, F1, F1
	FMOVD (R0), F2
	FADDD F2, F1, F1
	FMOVD F1, (R0)
	ADD $8, R0
	ADD $8, R1
	ADD $1, R3
	B axpytail

axpydone:
	RET

// func axpyZNEON(out, col *float64, a float64, n int)
TEXT ·axpyZNEON(SB), NOSPLIT, $0-32
	MOVD out+0(FP), R0
	MOVD col+8(FP), R1
	FMOVD a+16(FP), F0
	VDUP V0.D[0], V0.D2
	MOVD n+24(FP), R2
	VEOR V5.B16, V5.B16, V5.B16
	AND $-4, R2, R4
	MOVD $0, R3

axpyz4:
	CMP R4, R3
	BGE axpyztail
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VFMUL2D(0, 1, 1)
	VFMUL2D(0, 2, 2)
	VFADD2D(5, 1, 1)
	VFADD2D(5, 2, 2)
	VST1.P [V1.D2, V2.D2], 32(R0)
	ADD $4, R3
	B axpyz4

axpyztail:
	CMP R2, R3
	BGE axpyzdone
	FMOVD (R1), F1
	FMULD F0, F1, F1
	FADDD F5, F1, F1
	FMOVD F1, (R0)
	ADD $8, R0
	ADD $8, R1
	ADD $1, R3
	B axpyztail

axpyzdone:
	RET

// func scaleMaxNEON(out, col *float64, a float64, n int)
TEXT ·scaleMaxNEON(SB), NOSPLIT, $0-32
	MOVD out+0(FP), R0
	MOVD col+8(FP), R1
	FMOVD a+16(FP), F0
	VDUP V0.D[0], V0.D2
	MOVD n+24(FP), R2
	AND $-4, R2, R4
	MOVD $0, R3

smax4:
	CMP R4, R3
	BGE smaxtail
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1 (R0), [V3.D2, V4.D2]
	VFMUL2D(0, 1, 1)
	VFMUL2D(0, 2, 2)
	VFCMGT2D(3, 1, 6)
	VFCMGT2D(4, 2, 7)
	VBIT V6.B16, V1.B16, V3.B16
	VBIT V7.B16, V2.B16, V4.B16
	VST1.P [V3.D2, V4.D2], 32(R0)
	ADD $4, R3
	B smax4

smaxtail:
	CMP R2, R3
	BGE smaxdone
	FMOVD (R1), F1
	FMULD F0, F1, F1
	FMOVD (R0), F2
	FCMPD F2, F1
	BLE smaxskip
	FMOVD F1, (R0)

smaxskip:
	ADD $8, R0
	ADD $8, R1
	ADD $1, R3
	B smaxtail

smaxdone:
	RET

// func scaleMaxZNEON(out, col *float64, a float64, n int)
TEXT ·scaleMaxZNEON(SB), NOSPLIT, $0-32
	MOVD out+0(FP), R0
	MOVD col+8(FP), R1
	FMOVD a+16(FP), F0
	VDUP V0.D[0], V0.D2
	MOVD n+24(FP), R2
	VEOR V5.B16, V5.B16, V5.B16
	AND $-4, R2, R4
	MOVD $0, R3

smaxz4:
	CMP R4, R3
	BGE smaxztail
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VFMUL2D(0, 1, 1)
	VFMUL2D(0, 2, 2)
	VFCMGT2D(5, 1, 6)
	VFCMGT2D(5, 2, 7)
	VAND V6.B16, V1.B16, V1.B16
	VAND V7.B16, V2.B16, V2.B16
	VST1.P [V1.D2, V2.D2], 32(R0)
	ADD $4, R3
	B smaxz4

smaxztail:
	CMP R2, R3
	BGE smaxzdone
	FMOVD (R1), F1
	FMULD F0, F1, F1
	FCMPD F5, F1
	BGT smaxzp
	FMOVD F5, (R0)
	B smaxznext

smaxzp:
	FMOVD F1, (R0)

smaxznext:
	ADD $8, R0
	ADD $8, R1
	ADD $1, R3
	B smaxztail

smaxzdone:
	RET

// func axpySqClampNEON(out, col *float64, a float64, n int)
TEXT ·axpySqClampNEON(SB), NOSPLIT, $0-32
	MOVD out+0(FP), R0
	MOVD col+8(FP), R1
	FMOVD a+16(FP), F0
	VDUP V0.D[0], V0.D2
	MOVD n+24(FP), R2
	VEOR V5.B16, V5.B16, V5.B16
	VMOVI $255, V16.B16
	AND $-4, R2, R4
	MOVD $0, R3

sq4:
	CMP R4, R3
	BGE sqtail
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VFCMGE2D(1, 5, 6)
	VFCMGE2D(2, 5, 7)
	VEOR V16.B16, V6.B16, V6.B16
	VEOR V16.B16, V7.B16, V7.B16
	VFMUL2D(1, 1, 1)
	VFMUL2D(2, 2, 2)
	VAND V6.B16, V1.B16, V1.B16
	VAND V7.B16, V2.B16, V2.B16
	VFMUL2D(0, 1, 1)
	VFMUL2D(0, 2, 2)
	VLD1 (R0), [V3.D2, V4.D2]
	VFADD2D(3, 1, 1)
	VFADD2D(4, 2, 2)
	VST1.P [V1.D2, V2.D2], 32(R0)
	ADD $4, R3
	B sq4

sqtail:
	CMP R2, R3
	BGE sqdone
	FMOVD (R1), F1
	FCMPD F5, F1
	BGT sqsquare
	BVS sqsquare
	FMOVD F5, F1
	B sqmul

sqsquare:
	FMULD F1, F1, F1

sqmul:
	FMULD F0, F1, F1
	FMOVD (R0), F2
	FADDD F2, F1, F1
	FMOVD F1, (R0)
	ADD $8, R0
	ADD $8, R1
	ADD $1, R3
	B sqtail

sqdone:
	RET

// func axpySqClampZNEON(out, col *float64, a float64, n int)
TEXT ·axpySqClampZNEON(SB), NOSPLIT, $0-32
	MOVD out+0(FP), R0
	MOVD col+8(FP), R1
	FMOVD a+16(FP), F0
	VDUP V0.D[0], V0.D2
	MOVD n+24(FP), R2
	VEOR V5.B16, V5.B16, V5.B16
	VMOVI $255, V16.B16
	AND $-4, R2, R4
	MOVD $0, R3

sqz4:
	CMP R4, R3
	BGE sqztail
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VFCMGE2D(1, 5, 6)
	VFCMGE2D(2, 5, 7)
	VEOR V16.B16, V6.B16, V6.B16
	VEOR V16.B16, V7.B16, V7.B16
	VFMUL2D(1, 1, 1)
	VFMUL2D(2, 2, 2)
	VAND V6.B16, V1.B16, V1.B16
	VAND V7.B16, V2.B16, V2.B16
	VFMUL2D(0, 1, 1)
	VFMUL2D(0, 2, 2)
	VFADD2D(5, 1, 1)
	VFADD2D(5, 2, 2)
	VST1.P [V1.D2, V2.D2], 32(R0)
	ADD $4, R3
	B sqz4

sqztail:
	CMP R2, R3
	BGE sqzdone
	FMOVD (R1), F1
	FCMPD F5, F1
	BGT sqzsquare
	BVS sqzsquare
	FMOVD F5, F1
	B sqzmul

sqzsquare:
	FMULD F1, F1, F1

sqzmul:
	FMULD F0, F1, F1
	FADDD F5, F1, F1
	FMOVD F1, (R0)
	ADD $8, R0
	ADD $8, R1
	ADD $1, R3
	B sqztail

sqzdone:
	RET

// func compressNotLessNEON(dst *int32, col *float64, q float64, base int32, n int) int
// Per 2-lane block: one vector NLT compare (as NOT(q > v)), then each
// lane's index is stored unconditionally at dst[k] and k advances by
// the survivor bit — branchless, relying on the dst slack.
TEXT ·compressNotLessNEON(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD col+8(FP), R1
	FMOVD q+16(FP), F0
	VDUP V0.D[0], V0.D2
	MOVW base+24(FP), R3
	MOVD n+32(FP), R2
	MOVD $0, R5
	MOVD $0, R6

cmp2:
	CMP R2, R6
	BGE cmpdone
	VLD1.P 16(R1), [V1.D2]
	VFCMGT2D(1, 0, 6)
	VMOV V6.D[0], R7
	VMOV V6.D[1], R8
	ADDW R6, R3, R9
	MOVW R9, (R0)(R5<<2)
	AND $1, R7
	EOR $1, R7
	ADD R7, R5
	ADDW $1, R9
	MOVW R9, (R0)(R5<<2)
	AND $1, R8
	EOR $1, R8
	ADD R8, R5
	ADD $2, R6
	B cmp2

cmpdone:
	MOVD R5, ret+40(FP)
	RET

// func selectBestNEON(L *SelLanes, scores *float64, ids *uint64, n int)
// Lanes 0-1 live in {V20,V22,V24}, lanes 2-3 in {V21,V23,V25}; each
// block of 4 folds two element pairs under the replacement predicate
//   repl = !(s < bestS) && !(s == bestS && id >= bestID)
// built from FCMGT/FCMEQ/CMHS masks and applied with BIT blends — pure
// compares and selects, no arithmetic.
TEXT ·selectBestNEON(SB), NOSPLIT, $0-32
	MOVD L+0(FP), R0
	MOVD scores+8(FP), R1
	MOVD ids+16(FP), R2
	MOVD n+24(FP), R3
	AND $-4, R3
	VLD1.P 32(R1), [V20.D2, V21.D2]
	VLD1.P 32(R2), [V22.D2, V23.D2]
	MOVD $0, R5
	MOVD $1, R6
	VMOV R5, V24.D[0]
	VMOV R6, V24.D[1]
	MOVD $2, R5
	MOVD $3, R6
	VMOV R5, V25.D[0]
	VMOV R6, V25.D[1]
	VORR V24.B16, V24.B16, V26.B16
	VORR V25.B16, V25.B16, V27.B16
	MOVD $4, R5
	VDUP R5, V28.D2
	VMOVI $255, V16.B16
	MOVD $4, R4

sel4:
	CMP R3, R4
	BGE seldone
	VADD V28.D2, V26.D2, V26.D2
	VADD V28.D2, V27.D2, V27.D2
	VLD1.P 32(R1), [V1.D2, V2.D2]
	VLD1.P 32(R2), [V3.D2, V4.D2]
	VFCMGT2D(1, 20, 6)
	VEOR V16.B16, V6.B16, V6.B16
	VFCMEQ2D(20, 1, 7)
	VCMHS2D(22, 3, 8)
	VAND V8.B16, V7.B16, V7.B16
	VEOR V16.B16, V7.B16, V7.B16
	VAND V7.B16, V6.B16, V6.B16
	VBIT V6.B16, V1.B16, V20.B16
	VBIT V6.B16, V3.B16, V22.B16
	VBIT V6.B16, V26.B16, V24.B16
	VFCMGT2D(2, 21, 6)
	VEOR V16.B16, V6.B16, V6.B16
	VFCMEQ2D(21, 2, 7)
	VCMHS2D(23, 4, 8)
	VAND V8.B16, V7.B16, V7.B16
	VEOR V16.B16, V7.B16, V7.B16
	VAND V7.B16, V6.B16, V6.B16
	VBIT V6.B16, V2.B16, V21.B16
	VBIT V6.B16, V4.B16, V23.B16
	VBIT V6.B16, V27.B16, V25.B16
	ADD $4, R4
	B sel4

seldone:
	VST1.P [V20.D2, V21.D2], 32(R0)
	VST1.P [V22.D2, V23.D2], 32(R0)
	VST1 [V24.D2, V25.D2], (R0)
	RET
