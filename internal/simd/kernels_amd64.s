//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernels behind the columnar hot paths. Contracts that keep every
// result bit-identical to the portable kernels (see package doc):
//
//   - no FMA: products are rounded by VMULPD before VADDPD sees them;
//   - vectorization is across output elements only, so each out[i]
//     receives exactly the operations the scalar code performs;
//   - MAXPD operand order is chosen so the lane result is
//     (p > acc) ? p : acc with NaN products and both-zero ties
//     resolving to acc — the scalar `if p > acc` verbatim;
//   - compare predicates are the unordered-true forms (NLT_US, NLE_US)
//     exactly where the scalar code's negated comparisons make NaN
//     survive, and EQ_OQ where NaN must not compare equal.
//
// Loops run a 8- or 4-wide main block and finish with a scalar SSE/AVX
// tail using the same instruction per element, so remainders take the
// identical data path.

// func axpyAVX2(out, col *float64, a float64, n int)
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	MOVQ out+0(FP), DI
	MOVQ col+8(FP), SI
	VBROADCASTSD a+16(FP), Y0
	MOVQ n+24(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

axpy8:
	CMPQ AX, DX
	JGE  axpy4lim
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  axpy8

axpy4lim:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ AX, DX
	JGE  axpytail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX

axpytail:
	CMPQ AX, CX
	JGE  axpydone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  axpytail

axpydone:
	VZEROUPPER
	RET

// func axpyZAVX2(out, col *float64, a float64, n int)
// out[i] = 0 + a*col[i]: the explicit zero add normalizes -0.0
// products like the scalar fresh-sum accumulation does.
TEXT ·axpyZAVX2(SB), NOSPLIT, $0-32
	MOVQ out+0(FP), DI
	MOVQ col+8(FP), SI
	VBROADCASTSD a+16(FP), Y0
	MOVQ n+24(FP), CX
	VXORPD Y5, Y5, Y5
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

axpyz8:
	CMPQ AX, DX
	JGE  axpyz4lim
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  Y5, Y1, Y1
	VADDPD  Y5, Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  axpyz8

axpyz4lim:
	MOVQ CX, DX
	ANDQ $-4, DX
	CMPQ AX, DX
	JGE  axpyztail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  Y5, Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX

axpyztail:
	CMPQ AX, CX
	JGE  axpyzdone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VADDSD X5, X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  axpyztail

axpyzdone:
	VZEROUPPER
	RET

// func scaleMaxAVX2(out, col *float64, a float64, n int)
// out[i] = (a*col[i] > out[i]) ? a*col[i] : out[i]. MAXPD with the
// product as first source returns the second source (out) when the
// product is NaN or both compare equal — the scalar predicate exactly.
TEXT ·scaleMaxAVX2(SB), NOSPLIT, $0-32
	MOVQ out+0(FP), DI
	MOVQ col+8(FP), SI
	VBROADCASTSD a+16(FP), Y0
	MOVQ n+24(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

smax4:
	CMPQ AX, DX
	JGE  smaxtail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD (DI)(AX*8), Y2
	VMAXPD  Y2, Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  smax4

smaxtail:
	CMPQ AX, CX
	JGE  smaxdone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VMOVSD (DI)(AX*8), X2
	VMAXSD X2, X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  smaxtail

smaxdone:
	VZEROUPPER
	RET

// func scaleMaxZAVX2(out, col *float64, a float64, n int)
// out[i] = (a*col[i] > 0) ? a*col[i] : +0.
TEXT ·scaleMaxZAVX2(SB), NOSPLIT, $0-32
	MOVQ out+0(FP), DI
	MOVQ col+8(FP), SI
	VBROADCASTSD a+16(FP), Y0
	MOVQ n+24(FP), CX
	VXORPD Y5, Y5, Y5
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

smaxz4:
	CMPQ AX, DX
	JGE  smaxztail
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  Y0, Y1, Y1
	VMAXPD  Y5, Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  smaxz4

smaxztail:
	CMPQ AX, CX
	JGE  smaxzdone
	VMOVSD (SI)(AX*8), X1
	VMULSD X0, X1, X1
	VMAXSD X5, X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  smaxztail

smaxzdone:
	VZEROUPPER
	RET

// func axpySqClampAVX2(out, col *float64, a float64, n int)
// out[i] += a*sq(v), sq(v) = !(v <= 0) ? v*v : +0 (powNonNeg at p=2:
// NaN squares to NaN via the unordered-true NLE compare, negatives and
// zeros clamp to +0 through the mask AND).
TEXT ·axpySqClampAVX2(SB), NOSPLIT, $0-32
	MOVQ out+0(FP), DI
	MOVQ col+8(FP), SI
	VBROADCASTSD a+16(FP), Y0
	MOVQ n+24(FP), CX
	VXORPD Y5, Y5, Y5
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

sq4:
	CMPQ AX, DX
	JGE  sqtail
	VMOVUPD (SI)(AX*8), Y1
	VCMPPD  $6, Y5, Y1, Y2
	VMULPD  Y1, Y1, Y1
	VANDPD  Y2, Y1, Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  sq4

sqtail:
	CMPQ AX, CX
	JGE  sqdone
	VMOVSD (SI)(AX*8), X1
	VCMPSD $6, X5, X1, X2
	VMULSD X1, X1, X1
	VANDPD X2, X1, X1
	VMULSD X0, X1, X1
	VADDSD (DI)(AX*8), X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  sqtail

sqdone:
	VZEROUPPER
	RET

// func axpySqClampZAVX2(out, col *float64, a float64, n int)
TEXT ·axpySqClampZAVX2(SB), NOSPLIT, $0-32
	MOVQ out+0(FP), DI
	MOVQ col+8(FP), SI
	VBROADCASTSD a+16(FP), Y0
	MOVQ n+24(FP), CX
	VXORPD Y5, Y5, Y5
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

sqz4:
	CMPQ AX, DX
	JGE  sqztail
	VMOVUPD (SI)(AX*8), Y1
	VCMPPD  $6, Y5, Y1, Y2
	VMULPD  Y1, Y1, Y1
	VANDPD  Y2, Y1, Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  Y5, Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  sqz4

sqztail:
	CMPQ AX, CX
	JGE  sqzdone
	VMOVSD (SI)(AX*8), X1
	VCMPSD $6, X5, X1, X2
	VMULSD X1, X1, X1
	VANDPD X2, X1, X1
	VMULSD X0, X1, X1
	VADDSD X5, X1, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  sqztail

sqzdone:
	VZEROUPPER
	RET

// func compressNotLessAVX2(dst *int32, col *float64, q float64, base int32, n int) int
// Survivor compression: indexes i with !(col[i] < q) are written to dst
// in ascending order. Per 4-wide block: NLT_US compare, movmsk, then a
// 16-entry shuffle LUT compacts the int32 indexes; stores always write
// 16 bytes (caller provides len(dst) >= len(col) slack) and the cursor
// advances by popcount. n must be a multiple of 4.
TEXT ·compressNotLessAVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ col+8(FP), SI
	VBROADCASTSD q+16(FP), Y0
	MOVL base+24(FP), AX
	MOVQ n+32(FP), CX
	LEAQ permTable<>(SB), R8
	XORQ BX, BX
	XORQ R10, R10
	VMOVD AX, X1
	VPBROADCASTD X1, X1
	VPADDD iota4<>(SB), X1, X1
	VMOVDQU four4<>(SB), X2

cmp4:
	CMPQ BX, CX
	JGE  cmpdone
	VMOVUPD (SI)(BX*8), Y3
	VCMPPD  $5, Y0, Y3, Y4
	VMOVMSKPD Y4, R9
	MOVQ R9, R11
	SHLQ $4, R11
	VMOVDQU (R8)(R11*1), X5
	VPERMILPS X5, X1, X6
	VMOVDQU X6, (DI)(R10*4)
	POPCNTQ R9, R9
	ADDQ R9, R10
	VPADDD X2, X1, X1
	ADDQ $4, BX
	JMP  cmp4

cmpdone:
	MOVQ R10, ret+40(FP)
	VZEROUPPER
	RET

// func selectBestAVX2(L *SelLanes, scores *float64, ids *uint64, n int)
// Full-block portion of the 4-lane strided argmax: lanes seed from
// block 0, every further block folds lane-wise under
//   replace iff !(s < bestS) && !(s == bestS && id >= bestID)
// with the unsigned 64-bit id compare done via sign-flipped VPCMPGTQ.
// Pure compares and blends — no arithmetic — so lane states match the
// portable scan bit for bit. n >= 4; elements beyond n&^3 are ignored.
TEXT ·selectBestAVX2(SB), NOSPLIT, $0-32
	MOVQ L+0(FP), DI
	MOVQ scores+8(FP), SI
	MOVQ ids+16(FP), R8
	MOVQ n+24(FP), CX
	ANDQ $-4, CX
	VMOVUPD (SI), Y0           // bestS
	VMOVDQU (R8), Y1           // bestID
	VMOVDQU qiota<>(SB), Y2    // bestIdx
	VMOVDQU qfour<>(SB), Y3
	VMOVDQU signQ<>(SB), Y4
	VMOVDQU qiota<>(SB), Y5    // current index vector
	MOVQ $4, AX

sel4:
	CMPQ AX, CX
	JGE  seldone
	VPADDQ  Y3, Y5, Y5
	VMOVUPD (SI)(AX*8), Y6
	VMOVDQU (R8)(AX*8), Y7
	VCMPPD  $5, Y0, Y6, Y8     // m1 = !(s < bestS)
	VCMPPD  $0, Y0, Y6, Y9     // meq = s == bestS (ordered)
	VPXOR   Y4, Y7, Y10
	VPXOR   Y4, Y1, Y11
	VPCMPGTQ Y10, Y11, Y12     // gt = bestID > id (unsigned via flip)
	VPANDN  Y9, Y12, Y13       // skip = NOT(gt) AND meq = meq && id>=bestID
	VPANDN  Y8, Y13, Y14       // replace = NOT(skip) AND m1
	VBLENDVPD Y14, Y6, Y0, Y0
	VBLENDVPD Y14, Y7, Y1, Y1
	VBLENDVPD Y14, Y5, Y2, Y2
	ADDQ $4, AX
	JMP  sel4

seldone:
	VMOVUPD Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VZEROUPPER
	RET

DATA iota4<>+0(SB)/4, $0
DATA iota4<>+4(SB)/4, $1
DATA iota4<>+8(SB)/4, $2
DATA iota4<>+12(SB)/4, $3
GLOBL iota4<>(SB), RODATA|NOPTR, $16

DATA four4<>+0(SB)/4, $4
DATA four4<>+4(SB)/4, $4
DATA four4<>+8(SB)/4, $4
DATA four4<>+12(SB)/4, $4
GLOBL four4<>(SB), RODATA|NOPTR, $16

DATA qiota<>+0(SB)/8, $0
DATA qiota<>+8(SB)/8, $1
DATA qiota<>+16(SB)/8, $2
DATA qiota<>+24(SB)/8, $3
GLOBL qiota<>(SB), RODATA|NOPTR, $32

DATA qfour<>+0(SB)/8, $4
DATA qfour<>+8(SB)/8, $4
DATA qfour<>+16(SB)/8, $4
DATA qfour<>+24(SB)/8, $4
GLOBL qfour<>(SB), RODATA|NOPTR, $32

DATA signQ<>+0(SB)/8, $0x8000000000000000
DATA signQ<>+8(SB)/8, $0x8000000000000000
DATA signQ<>+16(SB)/8, $0x8000000000000000
DATA signQ<>+24(SB)/8, $0x8000000000000000
GLOBL signQ<>(SB), RODATA|NOPTR, $32

// permTable<>[m] is the VPERMILPS dword-selector compacting the lanes
// whose mask bits are set in m, in ascending lane order.
DATA permTable<>+0x00(SB)/4, $0
DATA permTable<>+0x04(SB)/4, $0
DATA permTable<>+0x08(SB)/4, $0
DATA permTable<>+0x0c(SB)/4, $0

DATA permTable<>+0x10(SB)/4, $0
DATA permTable<>+0x14(SB)/4, $0
DATA permTable<>+0x18(SB)/4, $0
DATA permTable<>+0x1c(SB)/4, $0

DATA permTable<>+0x20(SB)/4, $1
DATA permTable<>+0x24(SB)/4, $0
DATA permTable<>+0x28(SB)/4, $0
DATA permTable<>+0x2c(SB)/4, $0

DATA permTable<>+0x30(SB)/4, $0
DATA permTable<>+0x34(SB)/4, $1
DATA permTable<>+0x38(SB)/4, $0
DATA permTable<>+0x3c(SB)/4, $0

DATA permTable<>+0x40(SB)/4, $2
DATA permTable<>+0x44(SB)/4, $0
DATA permTable<>+0x48(SB)/4, $0
DATA permTable<>+0x4c(SB)/4, $0

DATA permTable<>+0x50(SB)/4, $0
DATA permTable<>+0x54(SB)/4, $2
DATA permTable<>+0x58(SB)/4, $0
DATA permTable<>+0x5c(SB)/4, $0

DATA permTable<>+0x60(SB)/4, $1
DATA permTable<>+0x64(SB)/4, $2
DATA permTable<>+0x68(SB)/4, $0
DATA permTable<>+0x6c(SB)/4, $0

DATA permTable<>+0x70(SB)/4, $0
DATA permTable<>+0x74(SB)/4, $1
DATA permTable<>+0x78(SB)/4, $2
DATA permTable<>+0x7c(SB)/4, $0

DATA permTable<>+0x80(SB)/4, $3
DATA permTable<>+0x84(SB)/4, $0
DATA permTable<>+0x88(SB)/4, $0
DATA permTable<>+0x8c(SB)/4, $0

DATA permTable<>+0x90(SB)/4, $0
DATA permTable<>+0x94(SB)/4, $3
DATA permTable<>+0x98(SB)/4, $0
DATA permTable<>+0x9c(SB)/4, $0

DATA permTable<>+0xa0(SB)/4, $1
DATA permTable<>+0xa4(SB)/4, $3
DATA permTable<>+0xa8(SB)/4, $0
DATA permTable<>+0xac(SB)/4, $0

DATA permTable<>+0xb0(SB)/4, $0
DATA permTable<>+0xb4(SB)/4, $1
DATA permTable<>+0xb8(SB)/4, $3
DATA permTable<>+0xbc(SB)/4, $0

DATA permTable<>+0xc0(SB)/4, $2
DATA permTable<>+0xc4(SB)/4, $3
DATA permTable<>+0xc8(SB)/4, $0
DATA permTable<>+0xcc(SB)/4, $0

DATA permTable<>+0xd0(SB)/4, $0
DATA permTable<>+0xd4(SB)/4, $2
DATA permTable<>+0xd8(SB)/4, $3
DATA permTable<>+0xdc(SB)/4, $0

DATA permTable<>+0xe0(SB)/4, $1
DATA permTable<>+0xe4(SB)/4, $2
DATA permTable<>+0xe8(SB)/4, $3
DATA permTable<>+0xec(SB)/4, $0

DATA permTable<>+0xf0(SB)/4, $0
DATA permTable<>+0xf4(SB)/4, $1
DATA permTable<>+0xf8(SB)/4, $2
DATA permTable<>+0xfc(SB)/4, $3
GLOBL permTable<>(SB), RODATA|NOPTR, $256
