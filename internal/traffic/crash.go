package traffic

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fairassign"
)

// CrashResult reports one crash-replay conformance run over a trace.
type CrashResult struct {
	// CrashAtMutation is the index in the trace's mutation stream where
	// the durable workspace was abandoned; TotalMutations is the full
	// stream length.
	CrashAtMutation int `json:"crash_at_mutation"`
	TotalMutations  int `json:"total_mutations"`
	// Recovery provenance: the snapshot generation restored and the WAL
	// records replayed past it (see fairassign.RecoveryInfo).
	SnapshotEpoch     uint64 `json:"snapshot_epoch"`
	BatchesReplayed   int    `json:"batches_replayed"`
	MutationsReplayed int    `json:"mutations_replayed"`
	TornTail          bool   `json:"torn_tail"`
	RecoveryNS        int64  `json:"recovery_ns"`
	// Identical is the conformance verdict: the recovered-and-finished
	// matching equals the uninterrupted twin's.
	Identical bool `json:"identical"`
}

// RunCrashReplay is the durability conformance mode: the trace's
// mutation stream is applied to a durable workspace that is abandoned
// mid-stream without Close — the write-ahead log's fsync barrier is all
// that preserved its acknowledged state — then recovered with
// OpenWorkspace, after which the stream is finished and the final
// matching is compared against an uninterrupted in-memory twin of the
// same trace. A snapshot is saved partway through the surviving prefix
// so recovery exercises both the snapshot restore and the WAL tail
// replay. Returns an error if any mutation is rejected or recovery
// fails; a clean run with a diverging matching reports Identical=false.
func RunCrashReplay(tr *Trace, walDir string) (*CrashResult, error) {
	muts := make([]fairassign.Mutation, 0, len(tr.Ops))
	for i := range tr.Ops {
		if tr.Ops[i].Class == ClassMutation {
			muts = append(muts, tr.Ops[i].Mut)
		}
	}
	res := &CrashResult{CrashAtMutation: len(muts) / 2, TotalMutations: len(muts)}
	if len(muts) < 4 {
		return nil, fmt.Errorf("traffic: crash replay needs >= 4 mutations in the trace, got %d", len(muts))
	}

	opts := fairassign.Options{Durable: true, WALDir: filepath.Join(walDir, "wal")}
	dur, err := fairassign.NewWorkspace(tr.Objects, tr.Functions, opts)
	if err != nil {
		return nil, fmt.Errorf("traffic: build durable workspace: %w", err)
	}
	defer dur.Close()
	twin, err := fairassign.NewWorkspace(tr.Objects, tr.Functions, fairassign.Options{})
	if err != nil {
		return nil, fmt.Errorf("traffic: build twin workspace: %w", err)
	}
	defer twin.Close()

	saveAt := res.CrashAtMutation / 2
	for i := 0; i < res.CrashAtMutation; i++ {
		if err := dur.Apply([]fairassign.Mutation{muts[i]}); err != nil {
			return nil, fmt.Errorf("traffic: durable mutation %d (%s): %w", i, muts[i], err)
		}
		if i == saveAt {
			if err := dur.SaveSnapshot(); err != nil {
				return nil, fmt.Errorf("traffic: snapshot at mutation %d: %w", i, err)
			}
		}
	}

	// Crash: abandon without Close, then recover from the directory.
	start := time.Now()
	rec, err := fairassign.OpenWorkspace(opts)
	if err != nil {
		return nil, fmt.Errorf("traffic: recovery: %w", err)
	}
	defer rec.Close()
	res.RecoveryNS = time.Since(start).Nanoseconds()
	if info := rec.Recovery(); info != nil {
		res.SnapshotEpoch = info.SnapshotEpoch
		res.BatchesReplayed = info.BatchesReplayed
		res.MutationsReplayed = info.MutationsReplayed
		res.TornTail = info.TornTail
	}

	// Finish the stream on the recovered side; the twin runs it
	// uninterrupted.
	for i := res.CrashAtMutation; i < len(muts); i++ {
		if err := rec.Apply([]fairassign.Mutation{muts[i]}); err != nil {
			return nil, fmt.Errorf("traffic: post-recovery mutation %d (%s): %w", i, muts[i], err)
		}
	}
	for i := range muts {
		if err := twin.Apply([]fairassign.Mutation{muts[i]}); err != nil {
			return nil, fmt.Errorf("traffic: twin mutation %d (%s): %w", i, muts[i], err)
		}
	}
	res.Identical = samePairMultiset(rec.Assignment(), twin.Assignment())
	return res, nil
}

// RunCrashReplayTemp runs RunCrashReplay in a fresh temporary
// directory, removed afterwards.
func RunCrashReplayTemp(tr *Trace) (*CrashResult, error) {
	dir, err := os.MkdirTemp("", "fairassign-loadgen-crash-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	return RunCrashReplay(tr, dir)
}

// samePairMultiset compares two assignments as multisets of
// (functionID, objectID) pairs.
func samePairMultiset(a, b []fairassign.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[[2]uint64]int, len(a))
	for _, p := range a {
		counts[[2]uint64{p.FunctionID, p.ObjectID}]++
	}
	for _, p := range b {
		k := [2]uint64{p.FunctionID, p.ObjectID}
		if counts[k] == 0 {
			return false
		}
		counts[k]--
	}
	return true
}
