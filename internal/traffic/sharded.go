package traffic

import (
	"fmt"
	"sync"
	"time"

	"fairassign"
)

// RunSharded drives an open-loop sharded trace (Spec.Shards > 1)
// against a ShardedWorkspace through a ShardedQueue — one group-commit
// lane per shard, so mutations tagged with different routing keys
// commit concurrently. Reads acquire global cross-shard snapshots. The
// report carries per-shard mutation percentiles alongside the global
// classes, and the final matching is returned for cross-mode identity
// checks (sharding is matching-invariant, so it must equal the
// sequential run's as a multiset).
func RunSharded(tr *Trace, maxBatch int) (*Result, []fairassign.Pair, error) {
	shards := tr.Spec.Shards
	if shards < 2 {
		return nil, nil, fmt.Errorf("traffic: sharded run needs Spec.Shards > 1, got %d", shards)
	}
	sw, err := fairassign.NewShardedWorkspace(tr.Objects, tr.Functions, fairassign.ShardedOptions{Shards: shards})
	if err != nil {
		return nil, nil, fmt.Errorf("traffic: build sharded workspace: %w", err)
	}
	defer sw.Close()
	queue := fairassign.NewShardedQueue(sw, maxBatch)

	rec := &recorder{}
	var readers sync.WaitGroup

	start := time.Now()
	for i := range tr.Ops {
		op := &tr.Ops[i]
		sched := start.Add(op.At)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		switch op.Class {
		case ClassMutation:
			ch := queue.Enqueue(op.Mut)
			readers.Add(1)
			go func() {
				defer readers.Done()
				if err := <-ch; err != nil {
					rec.fail()
				}
				rec.recordShard(op.Shard, time.Since(sched))
			}()
		case ClassSnapshot:
			readers.Add(1)
			go func() {
				defer readers.Done()
				v, err := sw.Snapshot()
				rec.record(ClassSnapshot, time.Since(sched))
				if err != nil {
					rec.fail()
					return
				}
				v.Close()
			}()
		default: // ClassQuery
			readers.Add(1)
			go func() {
				defer readers.Done()
				v, err := sw.Snapshot()
				if err != nil {
					rec.fail()
					return
				}
				defer v.Close()
				if _, err := v.TopK(op.Query, op.K); err != nil {
					rec.fail()
					return
				}
				rec.record(ClassQuery, time.Since(sched))
			}()
		}
	}
	readers.Wait()
	queue.Close()
	wall := time.Since(start)

	st := sw.Stats()
	pairs := sw.Assignment()
	res := &Result{
		Mode:           ModeSharded,
		WallNS:         int64(wall),
		Ops:            len(tr.Ops),
		AchievedRate:   float64(len(tr.Ops)) / wall.Seconds(),
		Mutations:      st.Mutations,
		Commits:        st.Commits,
		MutationErrors: rec.errs,
		Classes: map[string]ClassStats{
			ClassMutation.String(): summarize(rec.lat[ClassMutation]),
			ClassSnapshot.String(): summarize(rec.lat[ClassSnapshot]),
			ClassQuery.String():    summarize(rec.lat[ClassQuery]),
		},
		FinalPairs: len(pairs),
		Shards:     shards,
		PerShard:   perShardStats(rec, shards),
	}
	return res, pairs, nil
}

func perShardStats(rec *recorder, shards int) []ClassStats {
	out := make([]ClassStats, shards)
	for s := 0; s < shards; s++ {
		out[s] = summarize(rec.shard[s])
	}
	return out
}

// RunClosed drives the trace closed-loop: the arrival schedule is
// ignored, and a fixed client population issues each next operation
// only after the previous one completes. Latencies are therefore pure
// service times, and AchievedRate is the saturation throughput at this
// concurrency — sweeping the client count locates the knee where
// throughput stops scaling.
//
// Mutations keep their required ordering by draining in per-lane FIFO:
// one writer client per mutation lane. Unsharded traces have a single
// lane; sharded traces (Spec.Shards > 1) have one lane per shard plus
// a global lane for function mutations — lanes touch disjoint
// entities, so any interleaving of in-order lanes is valid and the
// final matching is score-identical regardless of schedule. The
// remaining `clients` clients drain the read operations.
func RunClosed(tr *Trace, clients, maxBatch int) (*Result, []fairassign.Pair, error) {
	if clients < 1 {
		clients = 1
	}
	shards := tr.Spec.Shards

	// Backend: sharded tier when the trace is sharded, else the single
	// workspace behind its group-commit queue.
	var (
		enqueue    func(m fairassign.Mutation) <-chan error
		query      func(op *Op) error
		acquire    func() error
		finish     func() (int64, int64, []fairassign.Pair)
		closeAll   func()
		laneOf     func(op *Op) int
		writeLanes int
	)
	if shards > 1 {
		sw, err := fairassign.NewShardedWorkspace(tr.Objects, tr.Functions, fairassign.ShardedOptions{Shards: shards})
		if err != nil {
			return nil, nil, fmt.Errorf("traffic: build sharded workspace: %w", err)
		}
		queue := fairassign.NewShardedQueue(sw, maxBatch)
		enqueue = queue.Enqueue
		query = func(op *Op) error {
			v, err := sw.Snapshot()
			if err != nil {
				return err
			}
			defer v.Close()
			_, err = v.TopK(op.Query, op.K)
			return err
		}
		acquire = func() error {
			v, err := sw.Snapshot()
			if err != nil {
				return err
			}
			v.Close()
			return nil
		}
		finish = func() (int64, int64, []fairassign.Pair) {
			st := sw.Stats()
			return st.Mutations, st.Commits, sw.Assignment()
		}
		closeAll = func() { queue.Close(); sw.Close() }
		// Lane = routing key; global function mutations get the extra
		// last lane (mirrors ShardedQueue's internal routing).
		writeLanes = shards + 1
		laneOf = func(op *Op) int {
			if op.Shard < 0 {
				return shards
			}
			return op.Shard
		}
	} else {
		ws, err := fairassign.NewWorkspace(tr.Objects, tr.Functions, fairassign.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("traffic: build workspace: %w", err)
		}
		queue := fairassign.NewMutationQueue(ws, maxBatch)
		enqueue = queue.Enqueue
		query = func(op *Op) error {
			v, err := ws.Snapshot()
			if err != nil {
				return err
			}
			defer v.Close()
			_, err = v.TopK(op.Query, op.K)
			return err
		}
		acquire = func() error {
			v, err := ws.Snapshot()
			if err != nil {
				return err
			}
			v.Close()
			return nil
		}
		finish = func() (int64, int64, []fairassign.Pair) {
			st := ws.Stats()
			return st.Mutations, st.Commits, ws.Assignment()
		}
		closeAll = func() { queue.Close(); ws.Close() }
		writeLanes = 1
		laneOf = func(*Op) int { return 0 }
	}

	// Split the trace: per-lane mutation streams (order within a lane
	// preserved) and the read stream.
	lanes := make([][]*Op, writeLanes)
	var reads []*Op
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Class == ClassMutation {
			l := laneOf(op)
			lanes[l] = append(lanes[l], op)
		} else {
			reads = append(reads, op)
		}
	}

	rec := &recorder{}
	var wg sync.WaitGroup
	start := time.Now()

	// One closed-loop writer client per lane.
	for _, lane := range lanes {
		if len(lane) == 0 {
			continue
		}
		wg.Add(1)
		go func(lane []*Op) {
			defer wg.Done()
			for _, op := range lane {
				t0 := time.Now()
				if err := <-enqueue(op.Mut); err != nil {
					rec.fail()
				}
				rec.recordShard(op.Shard, time.Since(t0))
			}
		}(lane)
	}

	// The read clients share one work queue.
	readCh := make(chan *Op)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range readCh {
				t0 := time.Now()
				var err error
				if op.Class == ClassSnapshot {
					err = acquire()
				} else {
					err = query(op)
				}
				if err != nil {
					rec.fail()
					continue
				}
				rec.record(op.Class, time.Since(t0))
			}
		}()
	}
	for _, op := range reads {
		readCh <- op
	}
	close(readCh)
	wg.Wait()
	wall := time.Since(start)

	mutations, commits, pairs := finish()
	closeAll()
	res := &Result{
		Mode:           ModeClosed,
		WallNS:         int64(wall),
		Ops:            len(tr.Ops),
		AchievedRate:   float64(len(tr.Ops)) / wall.Seconds(),
		Mutations:      mutations,
		Commits:        commits,
		MutationErrors: rec.errs,
		Classes: map[string]ClassStats{
			ClassMutation.String(): summarize(rec.lat[ClassMutation]),
			ClassSnapshot.String(): summarize(rec.lat[ClassSnapshot]),
			ClassQuery.String():    summarize(rec.lat[ClassQuery]),
		},
		FinalPairs: len(pairs),
		Clients:    clients,
	}
	if shards > 1 {
		res.Shards = shards
		res.PerShard = perShardStats(rec, shards)
	}
	return res, pairs, nil
}
