package traffic

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fairassign"
)

// Mode selects how the driver lands the trace's mutations.
type Mode string

const (
	// ModeSequential applies each mutation as its own commit through
	// the single-mutation path — the baseline.
	ModeSequential Mode = "sequential"
	// ModeBatch routes mutations through the group-commit
	// MutationQueue, coalescing concurrent arrivals into shared epochs.
	ModeBatch Mode = "batch"
	// ModeSharded routes mutations through a ShardedQueue into a
	// ShardedWorkspace — one group-commit lane per shard, so writes to
	// different shards commit concurrently. Reads are global
	// cross-shard snapshots.
	ModeSharded Mode = "sharded"
	// ModeClosed is the closed-loop driver: the open-loop schedule is
	// ignored and a fixed client population issues the next operation
	// only after the previous one completes, which finds the
	// saturation throughput instead of charging queueing delay.
	ModeClosed Mode = "closed"
)

// ClassStats summarizes the latency distribution of one operation
// class. Latency is completion time minus *scheduled* arrival time, so
// when the system falls behind the open-loop schedule the queueing
// delay is charged to the operation — the honest production metric.
type ClassStats struct {
	Count  int   `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Result is one driver run over a trace.
type Result struct {
	Mode   Mode  `json:"mode"`
	WallNS int64 `json:"wall_ns"`
	Ops    int   `json:"ops"`
	// AchievedRate is ops per second of wall time.
	AchievedRate float64 `json:"achieved_rate"`
	// Mutations/Commits come from the workspace: in batch mode Commits
	// < Mutations measures the group-commit coalescing.
	Mutations int64 `json:"mutations"`
	Commits   int64 `json:"commits"`
	// MutationErrors counts rejected mutations — zero for a well-formed
	// trace, so any non-zero value flags a harness or engine bug.
	MutationErrors int                   `json:"mutation_errors"`
	Classes        map[string]ClassStats `json:"classes"`
	// FinalPairs is the matching hash input: the assignment after the
	// full trace, used to assert mode-independence.
	FinalPairs int `json:"final_pairs"`

	// Shards is the shard count of a sharded run (0 otherwise), and
	// PerShard the per-shard mutation latency breakdown, indexed by
	// shard. Function mutations are global (they touch every shard's
	// frontier), so they appear in the global mutation class only.
	Shards   int          `json:"shards,omitempty"`
	PerShard []ClassStats `json:"per_shard,omitempty"`
	// Clients is the closed-loop client population (0 for open loop).
	// In closed loop, latencies are pure service times and
	// AchievedRate IS the saturation throughput at this concurrency.
	Clients int `json:"clients,omitempty"`
}

// recorder accumulates per-class latencies thread-safely, plus the
// per-shard mutation breakdown on sharded runs.
type recorder struct {
	mu    sync.Mutex
	lat   [3][]time.Duration
	shard map[int][]time.Duration
	errs  int
}

func (r *recorder) record(c OpClass, d time.Duration) {
	r.mu.Lock()
	r.lat[c] = append(r.lat[c], d)
	r.mu.Unlock()
}

// recordShard records a mutation latency under both the global class
// and its routing key (ignored for key < 0: global function ops).
func (r *recorder) recordShard(sh int, d time.Duration) {
	r.mu.Lock()
	r.lat[ClassMutation] = append(r.lat[ClassMutation], d)
	if sh >= 0 {
		if r.shard == nil {
			r.shard = make(map[int][]time.Duration)
		}
		r.shard[sh] = append(r.shard[sh], d)
	}
	r.mu.Unlock()
}

func (r *recorder) fail() {
	r.mu.Lock()
	r.errs++
	r.mu.Unlock()
}

// summarize computes nearest-rank percentiles.
func summarize(lat []time.Duration) ClassStats {
	if len(lat) == 0 {
		return ClassStats{}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	rank := func(p float64) int64 {
		i := int(p*float64(len(sorted))+0.9999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return int64(sorted[i])
	}
	return ClassStats{
		Count:  len(sorted),
		MeanNS: int64(sum) / int64(len(sorted)),
		P50NS:  rank(0.50),
		P95NS:  rank(0.95),
		P99NS:  rank(0.99),
		MaxNS:  int64(sorted[len(sorted)-1]),
	}
}

// Run drives one trace against a fresh Workspace in the given mode and
// returns the latency report plus the final assignment (for cross-mode
// identity checks). maxBatch caps the group-commit batch in ModeBatch
// (<= 0 uses the queue default); it is ignored in ModeSequential.
func Run(tr *Trace, mode Mode, maxBatch int) (*Result, []fairassign.Pair, error) {
	ws, err := fairassign.NewWorkspace(tr.Objects, tr.Functions, fairassign.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("traffic: build workspace: %w", err)
	}
	defer ws.Close()

	rec := &recorder{}
	var readers sync.WaitGroup

	// The mutation lane: a sequential writer goroutine, or the
	// group-commit queue. Both preserve the trace's FIFO mutation
	// order, so the final matching is identical across modes.
	type timedMut struct {
		m     fairassign.Mutation
		sched time.Time
	}
	var (
		seqCh   chan timedMut
		writerD chan struct{}
		queue   *fairassign.MutationQueue
	)
	if mode == ModeBatch {
		queue = fairassign.NewMutationQueue(ws, maxBatch)
	} else {
		seqCh = make(chan timedMut, len(tr.Ops))
		writerD = make(chan struct{})
		go func() {
			defer close(writerD)
			for tm := range seqCh {
				if err := ws.Apply([]fairassign.Mutation{tm.m}); err != nil {
					rec.fail()
				}
				rec.record(ClassMutation, time.Since(tm.sched))
			}
		}()
	}

	start := time.Now()
	for i := range tr.Ops {
		op := &tr.Ops[i]
		sched := start.Add(op.At)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		switch op.Class {
		case ClassMutation:
			if mode == ModeBatch {
				ch := queue.Enqueue(op.Mut)
				readers.Add(1)
				go func() {
					defer readers.Done()
					if err := <-ch; err != nil {
						rec.fail()
					}
					rec.record(ClassMutation, time.Since(sched))
				}()
			} else {
				seqCh <- timedMut{m: op.Mut, sched: sched}
			}
		case ClassSnapshot:
			readers.Add(1)
			go func() {
				defer readers.Done()
				v, err := ws.Snapshot()
				rec.record(ClassSnapshot, time.Since(sched))
				if err != nil {
					rec.fail()
					return
				}
				v.Close()
			}()
		default: // ClassQuery
			readers.Add(1)
			go func() {
				defer readers.Done()
				v, err := ws.Snapshot()
				if err != nil {
					rec.fail()
					return
				}
				defer v.Close()
				if _, err := v.TopK(op.Query, op.K); err != nil {
					rec.fail()
					return
				}
				rec.record(ClassQuery, time.Since(sched))
			}()
		}
	}
	if mode == ModeBatch {
		readers.Wait() // all enqueue completions observed
		queue.Close()
	} else {
		close(seqCh)
		<-writerD
		readers.Wait()
	}
	wall := time.Since(start)

	st := ws.Stats()
	pairs := ws.Assignment()
	res := &Result{
		Mode:           mode,
		WallNS:         int64(wall),
		Ops:            len(tr.Ops),
		AchievedRate:   float64(len(tr.Ops)) / wall.Seconds(),
		Mutations:      st.Mutations,
		Commits:        st.Commits,
		MutationErrors: rec.errs,
		Classes: map[string]ClassStats{
			ClassMutation.String(): summarize(rec.lat[ClassMutation]),
			ClassSnapshot.String(): summarize(rec.lat[ClassSnapshot]),
			ClassQuery.String():    summarize(rec.lat[ClassQuery]),
		},
		FinalPairs: len(pairs),
	}
	return res, pairs, nil
}
