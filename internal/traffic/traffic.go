// Package traffic is a replayable production-workload harness for the
// fairassign Workspace: it materializes a seeded trace of open-loop
// arrivals — mutations, snapshot acquires, and view queries with
// Zipf-skewed popularity and optional bursts — and drives the public
// API with it, reporting latency percentiles per operation class.
//
// The trace is fully deterministic: the generator maintains its own
// model of the live population, so every operation carries concrete
// IDs and the same Spec always yields byte-identical operation
// sequences. Mutations apply in trace order in every driver mode
// (the sequential writer and the group-commit queue both preserve
// FIFO), so the final matching is mode-independent — which is what
// lets a trace double as a conformance check for the batched path.
package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"fairassign"
	"fairassign/internal/assign"
	"fairassign/internal/geom"
	"fairassign/internal/shard"
)

// Spec describes one reproducible workload trace. Everything the trace
// contains is derived from these fields.
type Spec struct {
	Seed      int64 `json:"seed"`
	Dims      int   `json:"dims"`
	Objects   int   `json:"objects"`   // initial object population
	Functions int   `json:"functions"` // initial function population
	Ops       int   `json:"ops"`       // operations in the trace

	// Rate is the mean arrival rate in operations per second of the
	// open-loop schedule (arrivals do not wait for completions).
	Rate float64 `json:"rate"`
	// Burst > 1 modulates arrivals with a two-state on/off process:
	// bursts arrive at Rate·Burst, lulls at Rate/Burst. 0 or 1 keeps a
	// plain Poisson process at Rate.
	Burst float64 `json:"burst,omitempty"`
	// Zipf is the skew s of the popularity distribution over removal
	// targets and query functions ("hot users, hot objects"). Values
	// <= 1 mean uniform popularity.
	Zipf float64 `json:"zipf,omitempty"`

	// WriteFrac is the fraction of operations that are mutations; of
	// the reads, SnapshotFrac are bare snapshot acquires and the rest
	// run a top-K view query. Defaults: 0.2 writes, 0.25 snapshots.
	WriteFrac    float64 `json:"write_frac,omitempty"`
	SnapshotFrac float64 `json:"snapshot_frac,omitempty"`
	// TopK is the k of view queries (default 10).
	TopK int `json:"top_k,omitempty"`
	// MaxCap > 1 draws random capacities in [1, MaxCap] for arriving
	// objects and functions.
	MaxCap int `json:"max_cap,omitempty"`

	// Shards > 1 makes this a multi-tenant trace for the sharded tier:
	// every mutation is tagged with the shard routing key the
	// ShardedWorkspace would assign it (the generator derives the same
	// spatial partitioner from the initial population), and the driver
	// runs the trace against a ShardedWorkspace, reporting per-shard
	// mutation latency alongside the global percentiles. Reads are
	// global (cross-shard merges) and carry no routing key.
	Shards int `json:"shards,omitempty"`
}

func (s Spec) String() string {
	return fmt.Sprintf("traffic seed=%d dims=%d n=%d f=%d ops=%d rate=%g burst=%g zipf=%g write=%g",
		s.Seed, s.Dims, s.Objects, s.Functions, s.Ops, s.Rate, s.Burst, s.Zipf, s.WriteFrac)
}

// OpClass is the operation class a trace entry belongs to; latency is
// reported per class.
type OpClass uint8

const (
	ClassMutation OpClass = iota
	ClassSnapshot
	ClassQuery
)

// String returns the report key of the class.
func (c OpClass) String() string {
	switch c {
	case ClassMutation:
		return "mutation"
	case ClassSnapshot:
		return "snapshot_acquire"
	default:
		return "view_query"
	}
}

// Op is one scheduled operation: an arrival offset from trace start
// plus the concrete, pre-resolved payload of its class.
type Op struct {
	At    time.Duration
	Class OpClass

	Mut   fairassign.Mutation // ClassMutation
	Query fairassign.Function // ClassQuery
	K     int                 // ClassQuery

	// Shard is the routing key of a mutation on a sharded trace
	// (Spec.Shards > 1): the shard that owns the touched object. -1 for
	// reads, for function mutations (which are global), and everywhere
	// on unsharded traces.
	Shard int
}

// Trace is a fully materialized workload: the initial population plus
// the scheduled operation sequence.
type Trace struct {
	Spec      Spec
	Objects   []fairassign.Object
	Functions []fairassign.Function
	Ops       []Op
}

func (s Spec) writeFrac() float64 {
	if s.WriteFrac <= 0 {
		return 0.2
	}
	return s.WriteFrac
}

func (s Spec) snapshotFrac() float64 {
	if s.SnapshotFrac <= 0 {
		return 0.25
	}
	return s.SnapshotFrac
}

func (s Spec) topK() int {
	if s.TopK <= 0 {
		return 10
	}
	return s.TopK
}

// zipfPicker draws popularity ranks with skew s over a fixed domain;
// rank r is mapped onto a live population of size n as r mod n, so the
// low (hot) ranks concentrate on stable early indices.
type zipfPicker struct {
	z   *rand.Zipf
	rng *rand.Rand
}

func newZipfPicker(rng *rand.Rand, s float64) *zipfPicker {
	p := &zipfPicker{rng: rng}
	if s > 1 {
		p.z = rand.NewZipf(rng, s, 1, 1<<20)
	}
	return p
}

func (p *zipfPicker) pick(n int) int {
	if n <= 1 {
		return 0
	}
	if p.z == nil {
		return p.rng.Intn(n)
	}
	return int(p.z.Uint64()) % n
}

// NewTrace materializes the trace for a spec. The generator tracks the
// live population itself (arrivals append, departures remove), so all
// removal targets are valid under in-order application and the trace
// replays identically on every driver mode and run.
func NewTrace(spec Spec) (*Trace, error) {
	if spec.Dims < 1 {
		return nil, fmt.Errorf("traffic: dims must be >= 1, got %d", spec.Dims)
	}
	if spec.Objects < 4 || spec.Functions < 2 {
		return nil, fmt.Errorf("traffic: need at least 4 objects and 2 functions, got %d/%d", spec.Objects, spec.Functions)
	}
	if spec.Ops < 0 {
		return nil, fmt.Errorf("traffic: negative op count %d", spec.Ops)
	}
	if spec.Rate <= 0 {
		return nil, fmt.Errorf("traffic: rate must be positive, got %g", spec.Rate)
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	tr := &Trace{
		Spec:      spec,
		Objects:   fairassign.GenerateObjects(fairassign.Independent, spec.Objects, spec.Dims, spec.Seed+1),
		Functions: fairassign.GenerateFunctions(spec.Functions, spec.Dims, spec.Seed+2),
	}
	if spec.MaxCap > 1 {
		for i := range tr.Objects {
			tr.Objects[i].Capacity = 1 + rng.Intn(spec.MaxCap)
		}
		for i := range tr.Functions {
			tr.Functions[i].Capacity = 1 + rng.Intn(spec.MaxCap)
		}
	}

	// The generator's population model.
	liveO := make([]uint64, len(tr.Objects))
	for i, o := range tr.Objects {
		liveO[i] = o.ID
	}
	liveF := make([]uint64, len(tr.Functions))
	for i, f := range tr.Functions {
		liveF[i] = f.ID
	}
	nextID := uint64(10_000_000)

	// A small pool of query identities so popularity skew is visible:
	// a few hot query users, a long tail of cold ones.
	qpool := fairassign.GenerateFunctions(32, spec.Dims, spec.Seed+3)
	zipf := newZipfPicker(rng, spec.Zipf)

	// Sharded traces tag mutations with the routing key the sharded
	// tier will assign them. The generator builds the identical spatial
	// partitioner from the identical initial population, and routing is
	// a pure function of (point, ID), so generation-time tags agree
	// with drive-time ownership.
	var rt *router
	if spec.Shards > 1 {
		seedObjs := make([]assign.Object, len(tr.Objects))
		points := make(map[uint64]geom.Point, len(tr.Objects))
		for i, o := range tr.Objects {
			pt := geom.Point(o.Attributes)
			seedObjs[i] = assign.Object{ID: o.ID, Point: pt}
			points[o.ID] = pt
		}
		rt = &router{
			part:   shard.NewPartitioner(spec.Dims, spec.Shards, seedObjs, shard.PartitionAuto),
			points: points,
		}
	}

	// Two-state modulated Poisson arrivals.
	burst := spec.Burst
	if burst < 1 {
		burst = 1
	}
	high := true
	var at time.Duration
	tr.Ops = make([]Op, 0, spec.Ops)
	for i := 0; i < spec.Ops; i++ {
		lambda := spec.Rate
		if burst > 1 {
			if rng.Float64() < 0.05 {
				high = !high
			}
			if high {
				lambda = spec.Rate * burst
			} else {
				lambda = spec.Rate / burst
			}
		}
		at += time.Duration(rng.ExpFloat64() / lambda * float64(time.Second))
		op := Op{At: at, Shard: -1}

		switch u := rng.Float64(); {
		case u < spec.writeFrac():
			op.Class = ClassMutation
			op.Mut, op.Shard = nextMutation(spec, rng, zipf, rt, &liveO, &liveF, &nextID)
		case u < spec.writeFrac()+(1-spec.writeFrac())*spec.snapshotFrac():
			op.Class = ClassSnapshot
		default:
			op.Class = ClassQuery
			op.Query = qpool[zipf.pick(len(qpool))]
			op.K = spec.topK()
		}
		tr.Ops = append(tr.Ops, op)
	}
	return tr, nil
}

// router replicates the sharded tier's routing for the generator: the
// same spatial partitioner plus a point registry, because routing a
// departure needs the coordinates of the departing object.
type router struct {
	part   *shard.Partitioner
	points map[uint64]geom.Point
}

func (r *router) add(id uint64, attrs []float64) int {
	pt := geom.Point(attrs)
	r.points[id] = pt
	return r.part.Route(pt, id)
}

func (r *router) remove(id uint64) int {
	pt := r.points[id]
	delete(r.points, id)
	return r.part.Route(pt, id)
}

// nextMutation draws one mutation against the generator's population
// model and updates the model, returning the mutation and its shard
// routing key (-1 when unsharded or for global function mutations).
// Arrivals and departures are balanced so the population hovers around
// its initial size; departures target Zipf-popular entities.
func nextMutation(spec Spec, rng *rand.Rand, zipf *zipfPicker, rt *router, liveO, liveF *[]uint64, nextID *uint64) (fairassign.Mutation, int) {
	kind := rng.Float64()
	// Population floors flip departures into arrivals.
	if kind < 0.60 && kind >= 0.35 && len(*liveO) <= 4 {
		kind = 0.0 // add object instead
	}
	if kind >= 0.80 && len(*liveF) <= 2 {
		kind = 0.65 // add function instead
	}
	switch {
	case kind < 0.35: // object arrival
		*nextID++
		attrs := make([]float64, spec.Dims)
		for d := range attrs {
			attrs[d] = rng.Float64()
		}
		o := fairassign.Object{ID: *nextID, Attributes: attrs}
		if spec.MaxCap > 1 {
			o.Capacity = 1 + rng.Intn(spec.MaxCap)
		}
		*liveO = append(*liveO, o.ID)
		sh := -1
		if rt != nil {
			sh = rt.add(o.ID, attrs)
		}
		return fairassign.AddObjectOp(o), sh
	case kind < 0.60: // object departure (popularity-skewed)
		i := zipf.pick(len(*liveO))
		id := (*liveO)[i]
		*liveO = append((*liveO)[:i], (*liveO)[i+1:]...)
		sh := -1
		if rt != nil {
			sh = rt.remove(id)
		}
		return fairassign.RemoveObjectOp(id), sh
	case kind < 0.80: // function arrival
		*nextID++
		w := make([]float64, spec.Dims)
		sum := 0.0
		for d := range w {
			w[d] = 0.05 + rng.Float64()
			sum += w[d]
		}
		for d := range w {
			w[d] /= sum
		}
		f := fairassign.Function{ID: *nextID, Weights: w}
		if spec.MaxCap > 1 {
			f.Capacity = 1 + rng.Intn(spec.MaxCap)
		}
		*liveF = append(*liveF, f.ID)
		return fairassign.AddFunctionOp(f), -1
	default: // function departure (popularity-skewed)
		i := zipf.pick(len(*liveF))
		id := (*liveF)[i]
		*liveF = append((*liveF)[:i], (*liveF)[i+1:]...)
		return fairassign.RemoveFunctionOp(id), -1
	}
}
