package traffic

import (
	"reflect"
	"testing"
	"time"

	"fairassign"
)

func testSpec() Spec {
	return Spec{
		Seed:      42,
		Dims:      2,
		Objects:   50,
		Functions: 8,
		Ops:       300,
		Rate:      50_000, // compressed time: ~6ms of schedule
		Burst:     4,
		Zipf:      1.3,
		WriteFrac: 0.3,
	}
}

// TestTraceDeterminism asserts the same spec materializes byte-identical
// traces — the replayability contract.
func TestTraceDeterminism(t *testing.T) {
	a, err := NewTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two materializations of the same spec differ")
	}
	c, err := NewTrace(Spec{Seed: 43, Dims: 2, Objects: 50, Functions: 8, Ops: 300, Rate: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical op sequences")
	}
}

// TestTraceShape sanity-checks the generated mix: monotone schedule,
// all three classes present, and only valid mutation targets (asserted
// by replaying the mutations against a real workspace).
func TestTraceShape(t *testing.T) {
	tr, err := NewTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	counts := map[OpClass]int{}
	for i, op := range tr.Ops {
		if op.At < last {
			t.Fatalf("op %d scheduled at %v before predecessor %v", i, op.At, last)
		}
		last = op.At
		counts[op.Class]++
	}
	for _, c := range []OpClass{ClassMutation, ClassSnapshot, ClassQuery} {
		if counts[c] == 0 {
			t.Fatalf("trace has no %s operations", c)
		}
	}

	ws, err := fairassign.NewWorkspace(tr.Objects, tr.Functions, fairassign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	for i, op := range tr.Ops {
		if op.Class != ClassMutation {
			continue
		}
		if err := ws.Apply([]fairassign.Mutation{op.Mut}); err != nil {
			t.Fatalf("trace mutation %d invalid under in-order replay: %v", i, err)
		}
	}
	if err := ws.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizePercentiles pins the nearest-rank percentile math.
func TestSummarizePercentiles(t *testing.T) {
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(100-i) * time.Microsecond // 1..100µs, shuffled order
	}
	s := summarize(lat)
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P50NS != int64(50*time.Microsecond) {
		t.Fatalf("P50 = %d, want 50µs", s.P50NS)
	}
	if s.P95NS != int64(95*time.Microsecond) {
		t.Fatalf("P95 = %d, want 95µs", s.P95NS)
	}
	if s.P99NS != int64(99*time.Microsecond) {
		t.Fatalf("P99 = %d, want 99µs", s.P99NS)
	}
	if s.MaxNS != int64(100*time.Microsecond) {
		t.Fatalf("Max = %d, want 100µs", s.MaxNS)
	}
	if s.MeanNS != int64(50500*time.Nanosecond) {
		t.Fatalf("Mean = %d, want 50.5µs", s.MeanNS)
	}
	if z := summarize(nil); z.Count != 0 || z.MaxNS != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

// TestRunModesAgree drives the same trace in sequential and batch mode
// and asserts: no mutation errors, every class reports percentile
// fields, the final matchings are identical across modes, and batch
// mode publishes fewer commits than it applies mutations.
func TestRunModesAgree(t *testing.T) {
	tr, err := NewTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	seqRes, seqPairs, err := Run(tr, ModeSequential, 0)
	if err != nil {
		t.Fatal(err)
	}
	batchRes, batchPairs, err := Run(tr, ModeBatch, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{seqRes, batchRes} {
		if r.MutationErrors != 0 {
			t.Fatalf("%s: %d mutation errors", r.Mode, r.MutationErrors)
		}
		for class, cs := range r.Classes {
			if cs.Count == 0 {
				t.Fatalf("%s: class %s recorded no operations", r.Mode, class)
			}
			if cs.P50NS <= 0 || cs.P95NS < cs.P50NS || cs.P99NS < cs.P95NS || cs.MaxNS < cs.P99NS {
				t.Fatalf("%s: class %s percentiles inconsistent: %+v", r.Mode, class, cs)
			}
		}
	}
	if seqRes.Mutations != batchRes.Mutations {
		t.Fatalf("mutation counts differ: sequential %d, batch %d", seqRes.Mutations, batchRes.Mutations)
	}
	if batchRes.Commits > seqRes.Commits {
		t.Fatalf("batch mode published more commits (%d) than sequential (%d)", batchRes.Commits, seqRes.Commits)
	}
	if len(seqPairs) != len(batchPairs) {
		t.Fatalf("final matchings differ in size: %d vs %d", len(seqPairs), len(batchPairs))
	}
	key := func(p fairassign.Pair) [2]uint64 { return [2]uint64{p.FunctionID, p.ObjectID} }
	seen := make(map[[2]uint64]int, len(seqPairs))
	for _, p := range seqPairs {
		seen[key(p)]++
	}
	for _, p := range batchPairs {
		if seen[key(p)] == 0 {
			t.Fatalf("batch matching has pair f%d-o%d absent from sequential result", p.FunctionID, p.ObjectID)
		}
		seen[key(p)]--
	}
}
