package traffic

import (
	"testing"

	"fairassign"
)

func shardedSpec() Spec {
	s := testSpec()
	s.Shards = 3
	return s
}

// samePairs compares two matchings as (function, object) multisets.
func samePairs(a, b []fairassign.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[[2]uint64]int, len(a))
	for _, p := range a {
		m[[2]uint64{p.FunctionID, p.ObjectID}]++
	}
	for _, p := range b {
		k := [2]uint64{p.FunctionID, p.ObjectID}
		if m[k] == 0 {
			return false
		}
		m[k]--
	}
	return true
}

// TestShardedTraceRoutingKeys asserts sharded traces tag every object
// mutation with an in-range routing key and leave reads and function
// mutations untagged.
func TestShardedTraceRoutingKeys(t *testing.T) {
	tr, err := NewTrace(shardedSpec())
	if err != nil {
		t.Fatal(err)
	}
	tagged := 0
	for i, op := range tr.Ops {
		if op.Class != ClassMutation && op.Shard != -1 {
			t.Fatalf("op %d: read tagged with shard %d", i, op.Shard)
		}
		if op.Class == ClassMutation && op.Shard >= 0 {
			if op.Shard >= tr.Spec.Shards {
				t.Fatalf("op %d: routing key %d out of range", i, op.Shard)
			}
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("no mutation carried a routing key")
	}
	// Unsharded traces carry no keys at all.
	plain, err := NewTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range plain.Ops {
		if op.Shard != -1 {
			t.Fatalf("unsharded trace op %d tagged with shard %d", i, op.Shard)
		}
	}
}

// TestRunShardedMatchesSequential drives the same trace through the
// baseline sequential writer and the sharded tier and requires the
// identical final matching — the loadgen-level shard invariance check.
func TestRunShardedMatchesSequential(t *testing.T) {
	tr, err := NewTrace(shardedSpec())
	if err != nil {
		t.Fatal(err)
	}
	base, basePairs, err := Run(tr, ModeSequential, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, pairs, err := RunSharded(tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.MutationErrors > 0 {
		t.Fatalf("sharded run rejected %d mutations from a well-formed trace", res.MutationErrors)
	}
	if res.Shards != 3 || len(res.PerShard) != 3 {
		t.Fatalf("missing per-shard breakdown: %+v", res)
	}
	perShard := 0
	for _, cs := range res.PerShard {
		perShard += cs.Count
	}
	if perShard == 0 {
		t.Fatal("per-shard latency breakdown is empty")
	}
	if perShard > res.Classes[ClassMutation.String()].Count {
		t.Fatalf("per-shard mutation count %d exceeds global %d", perShard, res.Classes[ClassMutation.String()].Count)
	}
	if !samePairs(basePairs, pairs) {
		t.Fatalf("sharded final matching differs from sequential (%d vs %d pairs)", base.FinalPairs, res.FinalPairs)
	}
}

// TestRunClosedMatchesSequential drives the closed-loop mode (sharded
// backend, per-lane writers) and requires the same final matching as
// the baseline: lanes touch disjoint entities, so any in-order lane
// interleaving converges to the same stable matching.
func TestRunClosedMatchesSequential(t *testing.T) {
	tr, err := NewTrace(shardedSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, basePairs, err := Run(tr, ModeSequential, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, pairs, err := RunClosed(tr, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.MutationErrors > 0 {
		t.Fatalf("closed-loop run rejected %d mutations", res.MutationErrors)
	}
	if res.Mode != ModeClosed || res.Clients != 4 || res.Shards != 3 {
		t.Fatalf("result metadata: %+v", res)
	}
	if !samePairs(basePairs, pairs) {
		t.Fatal("closed-loop final matching differs from sequential")
	}
	// Closed loop on the unsharded backend too (single writer lane).
	plain, err := NewTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, plainBase, err := Run(plain, ModeSequential, 0)
	if err != nil {
		t.Fatal(err)
	}
	cres, cpairs, err := RunClosed(plain, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cres.MutationErrors > 0 || cres.Shards != 0 {
		t.Fatalf("plain closed-loop: %+v", cres)
	}
	if !samePairs(plainBase, cpairs) {
		t.Fatal("plain closed-loop final matching differs from sequential")
	}
}
