package traffic

import "testing"

// TestRunCrashReplay exercises the crash-replay conformance mode on a
// compressed trace: the recovery must replay the post-snapshot WAL
// tail, and the finished matching must equal the uninterrupted twin's.
func TestRunCrashReplay(t *testing.T) {
	tr, err := NewTrace(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCrashReplay(tr, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("crash-recovered matching differs from the uninterrupted run")
	}
	if res.CrashAtMutation == 0 || res.TotalMutations <= res.CrashAtMutation {
		t.Fatalf("degenerate crash point %d/%d", res.CrashAtMutation, res.TotalMutations)
	}
	// The snapshot lands at crashAt/2, so recovery must have replayed a
	// real WAL tail past it — and exactly the acknowledged mutations.
	if res.BatchesReplayed == 0 {
		t.Fatal("recovery replayed no WAL batches; the snapshot should predate the crash point")
	}
	if res.MutationsReplayed != res.BatchesReplayed {
		t.Fatalf("per-mutation commits: %d batches but %d mutations replayed", res.BatchesReplayed, res.MutationsReplayed)
	}
	if res.TornTail {
		t.Fatal("clean per-mutation commits left a torn WAL tail")
	}
}
