package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestIOCounter(t *testing.T) {
	var c IOCounter
	c.PhysicalReads = 3
	c.PhysicalWrites = 2
	c.LogicalReads = 10
	if got := c.Accesses(); got != 5 {
		t.Errorf("Accesses = %d, want 5", got)
	}
	var d IOCounter
	d.PhysicalReads = 1
	d.LogicalWrites = 4
	c.Add(d)
	if c.PhysicalReads != 4 || c.LogicalWrites != 4 {
		t.Errorf("Add failed: %+v", c)
	}
	if !strings.Contains(c.String(), "io{") {
		t.Error("String format broken")
	}
	c.Reset()
	if c.Accesses() != 0 || c.LogicalReads != 0 {
		t.Error("Reset failed")
	}
}

func TestMemTracker(t *testing.T) {
	var m MemTracker
	m.Grow(100)
	m.Grow(50)
	if m.Current != 150 || m.Peak != 150 {
		t.Errorf("after grows: %+v", m)
	}
	m.Shrink(120)
	if m.Current != 30 || m.Peak != 150 {
		t.Errorf("after shrink: %+v", m)
	}
	m.Grow(10)
	if m.Peak != 150 {
		t.Errorf("peak should persist: %+v", m)
	}
	m.Shrink(1000)
	if m.Current != 0 {
		t.Errorf("current should floor at 0: %+v", m)
	}
	m.Reset()
	if m.Peak != 0 {
		t.Error("Reset failed")
	}
}

func TestTimerAccumulates(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(5 * time.Millisecond)
	tm.Stop()
	first := tm.Total
	if first < 4*time.Millisecond {
		t.Errorf("first interval = %v", first)
	}
	tm.Start()
	time.Sleep(5 * time.Millisecond)
	tm.Stop()
	if tm.Total <= first {
		t.Errorf("Total should accumulate: %v then %v", first, tm.Total)
	}
	// Redundant stops/starts are safe.
	tm.Stop()
	tm.Start()
	tm.Start()
	tm.Stop()
}

func TestStatsString(t *testing.T) {
	s := Stats{Loops: 3, Pairs: 7}
	if !strings.Contains(s.String(), "loops=3") || !strings.Contains(s.String(), "pairs=7") {
		t.Errorf("Stats.String = %q", s.String())
	}
}
