// Package metrics collects the three evaluation axes used throughout the
// paper's experiments: I/O accesses (buffer misses on the simulated disk),
// CPU time, and the peak memory held by algorithm-owned search structures
// (priority queues, pruned lists, TA states).
package metrics

import (
	"fmt"
	"time"
)

// IOCounter tallies page-level activity. Logical counts every page
// request; Physical counts only the requests that missed the buffer pool
// and therefore hit the (simulated) disk. The paper's "I/O accesses"
// metric corresponds to Physical reads plus writes.
type IOCounter struct {
	LogicalReads   int64
	PhysicalReads  int64
	LogicalWrites  int64
	PhysicalWrites int64
}

// Reset zeroes all counters.
func (c *IOCounter) Reset() { *c = IOCounter{} }

// Accesses returns the paper's I/O metric: physical reads + writes.
func (c *IOCounter) Accesses() int64 { return c.PhysicalReads + c.PhysicalWrites }

// Add accumulates another counter into c.
func (c *IOCounter) Add(o IOCounter) {
	c.LogicalReads += o.LogicalReads
	c.PhysicalReads += o.PhysicalReads
	c.LogicalWrites += o.LogicalWrites
	c.PhysicalWrites += o.PhysicalWrites
}

func (c *IOCounter) String() string {
	return fmt.Sprintf("io{phys=%d logical=%d}", c.Accesses(), c.LogicalReads+c.LogicalWrites)
}

// MemTracker records the current and peak number of bytes held in search
// structures. Algorithms report growth/shrink analytically (entry count ×
// entry size), mirroring how the paper measures "maximum memory consumed
// by search structures during execution".
type MemTracker struct {
	Current int64
	Peak    int64
}

// Grow adds n bytes to the current footprint and updates the peak.
func (m *MemTracker) Grow(n int64) {
	m.Current += n
	if m.Current > m.Peak {
		m.Peak = m.Current
	}
}

// Shrink removes n bytes from the current footprint.
func (m *MemTracker) Shrink(n int64) {
	m.Current -= n
	if m.Current < 0 {
		m.Current = 0
	}
}

// Reset zeroes the tracker.
func (m *MemTracker) Reset() { *m = MemTracker{} }

// Stats aggregates everything a single algorithm run produces.
type Stats struct {
	IO        IOCounter
	CPUTime   time.Duration
	PeakMem   int64 // bytes, high-water mark of search structures
	Loops     int64 // outer iterations (SB loops, chain steps, ...)
	Pairs     int64 // stable pairs emitted
	TopKRuns  int64 // number of top-1 / TA searches issued
	TASorted  int64 // sorted accesses performed by TA
	TARandom  int64 // random accesses performed by TA
	NodeReads int64 // R-tree nodes visited (logical)
}

func (s *Stats) String() string {
	return fmt.Sprintf("stats{io=%d cpu=%v mem=%dB loops=%d pairs=%d}",
		s.IO.Accesses(), s.CPUTime, s.PeakMem, s.Loops, s.Pairs)
}

// Timer measures wall-clock CPU time of a run. Use Start/Stop around the
// measured region; nested Stop calls accumulate.
type Timer struct {
	start   time.Time
	running bool
	Total   time.Duration
}

// Start begins (or resumes) timing.
func (t *Timer) Start() {
	if !t.running {
		t.start = time.Now()
		t.running = true
	}
}

// Stop pauses timing and accumulates the elapsed interval.
func (t *Timer) Stop() {
	if t.running {
		t.Total += time.Since(t.start)
		t.running = false
	}
}
