// Package metrics collects the three evaluation axes used throughout the
// paper's experiments: I/O accesses (buffer misses on the simulated disk),
// CPU time, and the peak memory held by algorithm-owned search structures
// (priority queues, pruned lists, TA states).
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// IOCounter tallies page-level activity. Logical counts every page
// request; Physical counts only the requests that missed the buffer pool
// and therefore hit the (simulated) disk. The paper's "I/O accesses"
// metric corresponds to Physical reads plus writes.
//
// Increments go through the Inc methods, which are atomic, so one counter
// may be shared by concurrent readers of a store (the parallel solver
// engine and SolveBatch). Aggregate reads (Accesses, Snapshot, String)
// are likewise atomic; direct field access remains valid for
// single-threaded code and existing tests.
type IOCounter struct {
	LogicalReads   int64
	PhysicalReads  int64
	LogicalWrites  int64
	PhysicalWrites int64
}

// IncLogicalRead atomically counts one logical page read.
func (c *IOCounter) IncLogicalRead() { atomic.AddInt64(&c.LogicalReads, 1) }

// IncPhysicalRead atomically counts one physical page read.
func (c *IOCounter) IncPhysicalRead() { atomic.AddInt64(&c.PhysicalReads, 1) }

// IncLogicalWrite atomically counts one logical page write.
func (c *IOCounter) IncLogicalWrite() { atomic.AddInt64(&c.LogicalWrites, 1) }

// IncPhysicalWrite atomically counts one physical page write.
func (c *IOCounter) IncPhysicalWrite() { atomic.AddInt64(&c.PhysicalWrites, 1) }

// Reset zeroes all counters.
func (c *IOCounter) Reset() {
	atomic.StoreInt64(&c.LogicalReads, 0)
	atomic.StoreInt64(&c.PhysicalReads, 0)
	atomic.StoreInt64(&c.LogicalWrites, 0)
	atomic.StoreInt64(&c.PhysicalWrites, 0)
}

// Snapshot returns an atomically read copy, safe while writers are live.
func (c *IOCounter) Snapshot() IOCounter {
	return IOCounter{
		LogicalReads:   atomic.LoadInt64(&c.LogicalReads),
		PhysicalReads:  atomic.LoadInt64(&c.PhysicalReads),
		LogicalWrites:  atomic.LoadInt64(&c.LogicalWrites),
		PhysicalWrites: atomic.LoadInt64(&c.PhysicalWrites),
	}
}

// Accesses returns the paper's I/O metric: physical reads + writes.
func (c *IOCounter) Accesses() int64 {
	return atomic.LoadInt64(&c.PhysicalReads) + atomic.LoadInt64(&c.PhysicalWrites)
}

// Add accumulates another counter into c.
func (c *IOCounter) Add(o IOCounter) {
	atomic.AddInt64(&c.LogicalReads, o.LogicalReads)
	atomic.AddInt64(&c.PhysicalReads, o.PhysicalReads)
	atomic.AddInt64(&c.LogicalWrites, o.LogicalWrites)
	atomic.AddInt64(&c.PhysicalWrites, o.PhysicalWrites)
}

func (c *IOCounter) String() string {
	s := c.Snapshot()
	return fmt.Sprintf("io{phys=%d logical=%d}", s.PhysicalReads+s.PhysicalWrites, s.LogicalReads+s.LogicalWrites)
}

// MemTracker records the current and peak number of bytes held in search
// structures. Algorithms report growth/shrink analytically (entry count ×
// entry size), mirroring how the paper measures "maximum memory consumed
// by search structures during execution".
type MemTracker struct {
	Current int64
	Peak    int64
}

// Grow adds n bytes to the current footprint and updates the peak.
func (m *MemTracker) Grow(n int64) {
	m.Current += n
	if m.Current > m.Peak {
		m.Peak = m.Current
	}
}

// Shrink removes n bytes from the current footprint.
func (m *MemTracker) Shrink(n int64) {
	m.Current -= n
	if m.Current < 0 {
		m.Current = 0
	}
}

// Reset zeroes the tracker.
func (m *MemTracker) Reset() { *m = MemTracker{} }

// Stats aggregates everything a single algorithm run produces.
type Stats struct {
	IO        IOCounter
	CPUTime   time.Duration
	PeakMem   int64 // bytes, high-water mark of search structures
	Loops     int64 // outer iterations (SB loops, chain steps, ...)
	Pairs     int64 // stable pairs emitted
	TopKRuns  int64 // number of top-1 / TA searches issued
	TASorted  int64 // sorted accesses performed by TA
	TARandom  int64 // random accesses performed by TA
	NodeReads int64 // R-tree nodes visited (logical)
}

func (s *Stats) String() string {
	return fmt.Sprintf("stats{io=%d cpu=%v mem=%dB loops=%d pairs=%d}",
		s.IO.Accesses(), s.CPUTime, s.PeakMem, s.Loops, s.Pairs)
}

// Timer measures wall-clock CPU time of a run. Use Start/Stop around the
// measured region; nested Stop calls accumulate.
type Timer struct {
	start   time.Time
	running bool
	Total   time.Duration
}

// Start begins (or resumes) timing.
func (t *Timer) Start() {
	if !t.running {
		t.start = time.Now()
		t.running = true
	}
}

// Stop pauses timing and accumulates the elapsed interval.
func (t *Timer) Stop() {
	if t.running {
		t.Total += time.Since(t.start)
		t.running = false
	}
}
