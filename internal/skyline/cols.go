package skyline

import (
	"sync"

	"fairassign/internal/geom"
	"fairassign/internal/score"
	"fairassign/internal/simd"
)

// ColSet is a columnar (structure-of-arrays) point set: per-dimension
// contiguous []float64 columns plus the point IDs, with branch-free
// blocked kernels for the two operations every skyline hot loop reduces
// to — "does any member dominate q" and "which member scores best".
//
// The row-wise equivalents compare one geom.Point at a time, chasing a
// pointer per point; here each dimension is a sequential scan over a
// contiguous column that the compiler compiles to cmp+SETcc+add with no
// data-dependent branches, and dominance is decided from the per-item
// counters afterwards. Results are exactly those of geom.Point.Dominates
// and score.Eval member by member: the per-dimension comparisons are the
// same expressions, only the loop nest is transposed.
//
// A ColSet is single-goroutine (the counter scratch is part of the set);
// concurrent readers each take their own from the pool.
type ColSet struct {
	dims int
	n    int
	cols [][]float64
	ids  []uint64

	// blocked-kernel scratch for the dominance filter: the surviving-
	// candidate index buffer. (Best uses pooled scratch instead, so
	// concurrent readers may share one set.)
	cand []int32
}

// domBlock is the largest kernel tile: small enough that the candidate
// scratch stays L1-resident across the dimension passes, large enough
// to amortize the per-block verdict scan. Blocks grow geometrically
// from domBlockMin so probes dominated by an early member — the common
// case in BBS/SFS, where the first few skyline points (largest
// coordinate sum) prune most of the stream — exit after a tiny block
// instead of paying for a full tile.
const (
	domBlock    = 256
	domBlockMin = 16
)

// NewColSet returns an empty columnar set of the given dimensionality.
func NewColSet(dims int) *ColSet {
	c := &ColSet{}
	c.Reset(dims)
	return c
}

// Reset empties the set and re-shapes it for dims dimensions, keeping
// column capacity.
func (c *ColSet) Reset(dims int) {
	if dims > len(c.cols) {
		c.cols = append(c.cols, make([][]float64, dims-len(c.cols))...)
	}
	for d := range c.cols {
		c.cols[d] = c.cols[d][:0]
	}
	c.ids = c.ids[:0]
	c.dims = dims
	c.n = 0
	if len(c.cand) < domBlock {
		c.cand = make([]int32, domBlock)
	}
}

// Len returns the number of points in the set.
func (c *ColSet) Len() int { return c.n }

// ID returns the ID of point i.
func (c *ColSet) ID(i int) uint64 { return c.ids[i] }

// Append adds a point. The coordinates are copied into the columns, so
// the caller's slice may alias short-lived memory (decoded R-tree
// nodes).
func (c *ColSet) Append(id uint64, pt geom.Point) {
	for d := 0; d < c.dims; d++ {
		c.cols[d] = append(c.cols[d], pt[d])
	}
	c.ids = append(c.ids, id)
	c.n++
}

// SwapDelete removes point i by moving the last point into its slot.
func (c *ColSet) SwapDelete(i int) {
	last := c.n - 1
	for d := 0; d < c.dims; d++ {
		col := c.cols[d]
		col[i] = col[last]
		c.cols[d] = col[:last]
	}
	c.ids[i] = c.ids[last]
	c.ids = c.ids[:last]
	c.n = last
}

// Cols exposes the per-dimension columns (first Len() entries valid);
// callers must treat them as read-only.
func (c *ColSet) Cols() [][]float64 { return c.cols[:c.dims] }

// FirstDominator returns the lowest index whose point strictly
// dominates q — the exact per-point predicate is geom.Point.Dominates:
// no dimension with point < q, at least one with point > q — or -1 if
// none does.
//
// The kernel is a blocked column filter (database-style candidate
// compression): the first dimension's contiguous column is scanned once,
// compressing the indices that survive (`!(v < q[0])`, the complement of
// Dominates' failure test — NaN behavior included); each further
// dimension filters only the survivors. In skyline workloads the first
// pass eliminates nearly everything, so the cost is ~one comparison per
// member over sequential memory, with no per-point slice-header chase.
// Survivors satisfy >= in every dimension; the final scan returns the
// first with a strictly better dimension. Blocks are processed in
// ascending index order and candidates stay sorted within each block,
// so "first" is exact at any block schedule.
func (c *ColSet) FirstDominator(q []float64) int {
	// Row-wise prefix: in BBS/SFS streams the earliest members (largest
	// coordinate sums) dominate nearly every pruned probe, and for a hit
	// that early a per-member early-exit scan beats any batched kernel.
	// The predicate is geom.Point.Dominates verbatim: no dimension below
	// q, at least one strictly above.
	pre := c.n
	if pre > domBlockMin {
		pre = domBlockMin
	}
	for i := 0; i < pre; i++ {
		better := false
		d := 0
		for ; d < c.dims; d++ {
			v := c.cols[d][i]
			if v < q[d] {
				break
			}
			if v > q[d] {
				better = true
			}
		}
		if d == c.dims && better {
			return i
		}
	}
	bs := domBlockMin
	for lo := pre; lo < c.n; {
		hi := lo + bs
		if hi > c.n {
			hi = c.n
		}
		// Dimension 0 compresses the survivor indices with the SIMD
		// kernel (c.cand has domBlock capacity — at least the block
		// length, the slack the vector stores need); later dimensions
		// filter the few survivors in place.
		cand := c.cand[:simd.CompressNotLess(c.cand, c.cols[0][lo:hi], q[0], int32(lo))]
		for d := 1; d < c.dims && len(cand) > 0; d++ {
			cand = cand[:simd.FilterIdxNotLess(cand, c.cols[d], q[d])]
		}
		for _, ci := range cand {
			// A survivor with no strictly-better dimension is a
			// coincident duplicate — not a dominator.
			for d := 0; d < c.dims; d++ {
				if c.cols[d][ci] > q[d] {
					return int(ci)
				}
			}
		}
		lo = hi
		if bs < domBlock {
			bs *= 2
		}
	}
	return -1
}

// AnyDominates reports whether any member strictly dominates q.
func (c *ColSet) AnyDominates(q []float64) bool { return c.FirstDominator(q) >= 0 }

// Best returns the index of the member maximizing the scorer, ties to
// the lowest ID — the columnar form of BestUnder, scoring the whole set
// with one EvalBlock pass. ok is false on an empty set. Scores are
// bit-identical to sc.Score per member, and selection follows the same
// (score, lowest-ID) total order, so the winner matches BestUnder over
// the rows in any order. The score block is pooled, so concurrent
// readers (the parallel solver fan-outs) may call Best on one shared
// set — only mutation requires exclusion.
func (c *ColSet) Best(sc score.Scorer) (idx int, best float64, ok bool) {
	if c.n == 0 {
		return 0, 0, false
	}
	sb := scoreScratchPool.Get().(*scoreScratch)
	if cap(sb.out) < c.n {
		sb.out = make([]float64, c.n)
	}
	out := sb.out[:c.n]
	score.EvalBlock(sc.Fam, sc.W, c.cols, out)
	idx = simd.SelectBest(out, c.ids[:c.n])
	best, ok = out[idx], true
	scoreScratchPool.Put(sb)
	return idx, best, ok
}

type scoreScratch struct{ out []float64 }

var scoreScratchPool = sync.Pool{New: func() any { return new(scoreScratch) }}

// colSetPool recycles ColSets across skyline passes (Compute calls, SFS
// runs) the way entryHeapPool recycles heaps.
var colSetPool = sync.Pool{New: func() any { return new(ColSet) }}

func acquireColSet(dims int) *ColSet {
	c := colSetPool.Get().(*ColSet)
	c.Reset(dims)
	return c
}

func releaseColSet(c *ColSet) { colSetPool.Put(c) }
