package skyline

import (
	"math"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/score"
	"fairassign/internal/simd"
)

// Lane-tail edge cases for the columnar dominance and argmax kernels:
// set sizes covering every residue mod 4 (the SIMD lane width) around
// the dispatch threshold and the dominance block boundaries, plus exact
// score ties straddling lane boundaries, with dispatch on and off.

func TestColSetLaneTails(t *testing.T) {
	defer simd.SetEnabled(true)
	rng := rand.New(rand.NewSource(91))
	dims := 3
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 17, 18, 19, 253, 254, 257, 258} {
		cs := NewColSet(dims)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = make(geom.Point, dims)
			for d := range pts[i] {
				pts[i][d] = rng.Float64()
			}
			cs.Append(uint64(i), pts[i])
		}
		w := make([]float64, dims)
		for d := range w {
			w[d] = rng.Float64()
		}
		q := make(geom.Point, dims)
		for trial := 0; trial < 20; trial++ {
			for d := range q {
				q[d] = rng.Float64()
			}
			if trial%3 == 0 && n > 0 {
				copy(q, pts[rng.Intn(n)]) // coincident probe
			}
			wantFD := -1
			for i, p := range pts {
				if p.Dominates(q) {
					wantFD = i
					break
				}
			}
			for _, on := range []bool{true, false} {
				simd.SetEnabled(on)
				if got := cs.FirstDominator(q); got != wantFD {
					t.Fatalf("simd=%v n=%d trial=%d: FirstDominator=%d want %d", on, n, trial, got, wantFD)
				}
			}
		}
		if n == 0 {
			continue
		}
		// Exact score ties straddling the 4-lane boundaries: the lowest
		// ID must win under both kernel paths.
		sc := score.LinearScorer(w)
		wantIdx, wantBest := 0, sc.Score(pts[0])
		for i := 1; i < n; i++ {
			s := sc.Score(pts[i])
			if s > wantBest {
				wantIdx, wantBest = i, s
			}
		}
		if n > 5 {
			for d := range pts[n-1] {
				pts[n-1][d] = pts[wantIdx][d]
				cs.cols[d][n-1] = cs.cols[d][wantIdx]
			}
		}
		wantIdx, wantBest = 0, sc.Score(pts[0])
		for i := 1; i < n; i++ {
			s := sc.Score(pts[i])
			if s > wantBest || (s == wantBest && cs.ids[i] < cs.ids[wantIdx]) {
				wantIdx, wantBest = i, s
			}
		}
		for _, on := range []bool{true, false} {
			simd.SetEnabled(on)
			idx, best, ok := cs.Best(sc)
			if !ok || idx != wantIdx || math.Float64bits(best) != math.Float64bits(wantBest) {
				t.Fatalf("simd=%v n=%d: Best=(%d,%x,%v) want (%d,%x)",
					on, n, idx, math.Float64bits(best), ok, wantIdx, math.Float64bits(wantBest))
			}
		}
	}
}
