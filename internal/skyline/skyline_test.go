package skyline

import (
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
)

func randItems(rng *rand.Rand, n, dims int) []rtree.Item {
	items := make([]rtree.Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		items[i] = rtree.Item{ID: uint64(i + 1), Point: p}
	}
	return items
}

// antiItems generates anti-correlated points (the paper's hardest case:
// large skylines).
func antiItems(rng *rand.Rand, n, dims int) []rtree.Item {
	items := make([]rtree.Item, n)
	for i := range items {
		p := make(geom.Point, dims)
		c := 0.5 + 0.15*rng.NormFloat64()
		for d := range p {
			v := c + 0.3*(rng.Float64()-0.5)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			p[d] = v
		}
		// rotate mass so dimensions anti-correlate
		s := 0.0
		for _, v := range p {
			s += v
		}
		for d := range p {
			p[d] = p[d] * float64(dims) * c / (s + 1e-9)
			if p[d] > 1 {
				p[d] = 1
			}
		}
		items[i] = rtree.Item{ID: uint64(i + 1), Point: p}
	}
	return items
}

func buildTree(t *testing.T, items []rtree.Item, dims int) *rtree.Tree {
	t.Helper()
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 1<<20)
	tr, err := rtree.BulkLoad(pool, dims, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// naiveSkyline is the O(n²) oracle.
func naiveSkyline(items []rtree.Item) []rtree.Item {
	var out []rtree.Item
	for _, a := range items {
		dominated := false
		for _, b := range items {
			if b.Point.Dominates(a.Point) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

func idsOf(items []rtree.Item) []uint64 {
	ids := make([]uint64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDs(t *testing.T, got, want []rtree.Item, context string) {
	t.Helper()
	g, w := idsOf(got), idsOf(want)
	if len(g) != len(w) {
		t.Fatalf("%s: skyline size %d, want %d (got %v want %v)", context, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: skyline ids %v, want %v", context, g, w)
		}
	}
}

func TestComputeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []int{2, 3, 4} {
		for _, n := range []int{1, 10, 200, 1000} {
			items := randItems(rng, n, dims)
			tr := buildTree(t, items, dims)
			got, err := Compute(tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameIDs(t, got, naiveSkyline(items), "Compute")
		}
	}
}

func TestComputeAntiCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := antiItems(rng, 800, 3)
	tr := buildTree(t, items, 3)
	got, err := Compute(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, got, naiveSkyline(items), "Compute/anti")
	if len(got) < 5 {
		t.Fatalf("anti-correlated skyline suspiciously small: %d", len(got))
	}
}

func TestComputeWithSkipSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 300, 2)
	tr := buildTree(t, items, 2)
	full, err := Compute(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	skip := map[uint64]bool{full[0].ID: true}
	got, err := Compute(tr, skip)
	if err != nil {
		t.Fatal(err)
	}
	var remaining []rtree.Item
	for _, it := range items {
		if !skip[it.ID] {
			remaining = append(remaining, it)
		}
	}
	sameIDs(t, got, naiveSkyline(remaining), "Compute/skip")
}

func TestBNLAndSFSMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		dims := 2 + rng.Intn(4)
		n := 1 + rng.Intn(400)
		items := randItems(rng, n, dims)
		want := naiveSkyline(items)
		sameIDs(t, BNL(items), want, "BNL")
		sameIDs(t, SFS(items), want, "SFS")
	}
}

func TestDuplicatePointsBothOnSkyline(t *testing.T) {
	items := []rtree.Item{
		{ID: 1, Point: geom.Point{0.9, 0.9}},
		{ID: 2, Point: geom.Point{0.9, 0.9}},
		{ID: 3, Point: geom.Point{0.5, 0.5}},
	}
	want := []rtree.Item{items[0], items[1]}
	sameIDs(t, BNL(items), want, "BNL/dup")
	sameIDs(t, SFS(items), want, "SFS/dup")
	tr := buildTree(t, items, 2)
	got, err := Compute(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, got, want, "Compute/dup")
}

func TestEmptyTree(t *testing.T) {
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 64)
	tr, err := rtree.New(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Compute(tr, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty skyline: %v %v", got, err)
	}
	m, err := NewMaintainer(tr, nil)
	if err != nil || m.Size() != 0 {
		t.Fatalf("empty maintainer: %v", err)
	}
	d, err := NewDeltaSky(tr, nil)
	if err != nil || d.Size() != 0 {
		t.Fatalf("empty deltasky: %v", err)
	}
}

// skylineDriver abstracts the two maintainers for shared correctness tests.
type skylineDriver interface {
	Skyline() []rtree.Item
	Remove(ids ...uint64) error
	Size() int
}

func runRemovalSequence(t *testing.T, mk func(*rtree.Tree) skylineDriver, items []rtree.Item, dims int, batch int, seed int64) {
	t.Helper()
	tr := buildTree(t, items, dims)
	drv := mk(tr)
	remaining := make(map[uint64]rtree.Item, len(items))
	for _, it := range items {
		remaining[it.ID] = it
	}
	rng := rand.New(rand.NewSource(seed))
	for len(remaining) > 0 {
		var rem []rtree.Item
		for _, it := range remaining {
			rem = append(rem, it)
		}
		want := naiveSkyline(rem)
		sameIDs(t, drv.Skyline(), want, "removal sequence")

		// Remove up to `batch` random skyline objects.
		sky := drv.Skyline()
		rng.Shuffle(len(sky), func(i, j int) { sky[i], sky[j] = sky[j], sky[i] })
		k := batch
		if k > len(sky) {
			k = len(sky)
		}
		var ids []uint64
		for _, s := range sky[:k] {
			ids = append(ids, s.ID)
			delete(remaining, s.ID)
		}
		if err := drv.Remove(ids...); err != nil {
			t.Fatal(err)
		}
	}
	if drv.Size() != 0 {
		t.Fatalf("skyline should be empty at the end, has %d", drv.Size())
	}
}

func TestMaintainerFullDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 400, 2)
	runRemovalSequence(t, func(tr *rtree.Tree) skylineDriver {
		m, err := NewMaintainer(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, items, 2, 1, 50)
}

func TestMaintainerBatchedRemovals(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := antiItems(rng, 300, 3)
	runRemovalSequence(t, func(tr *rtree.Tree) skylineDriver {
		m, err := NewMaintainer(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, items, 3, 4, 60)
}

func TestDeltaSkyFullDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, 250, 2)
	runRemovalSequence(t, func(tr *rtree.Tree) skylineDriver {
		d, err := NewDeltaSky(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}, items, 2, 1, 70)
}

func TestDeltaSkyBatchedRemovals(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := antiItems(rng, 200, 3)
	runRemovalSequence(t, func(tr *rtree.Tree) skylineDriver {
		d, err := NewDeltaSky(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}, items, 3, 3, 80)
}

func TestTheorem1NodeReadsBounded(t *testing.T) {
	// Theorem 1: across the entire maintenance lifetime, UpdateSkyline
	// never reads an R-tree node twice, so total node visits <= pages.
	rng := rand.New(rand.NewSource(9))
	items := antiItems(rng, 2000, 3)
	tr := buildTree(t, items, 3)
	pages := tr.NumPages()
	m, err := NewMaintainer(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m.Size() > 0 {
		sky := m.Skyline()
		if err := m.Remove(sky[0].ID); err != nil {
			t.Fatal(err)
		}
	}
	if m.NodeReads > int64(pages) {
		t.Fatalf("maintainer read %d nodes, tree has only %d pages — Theorem 1 violated", m.NodeReads, pages)
	}
}

func TestDeltaSkyReadsMoreNodesThanMaintainer(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := antiItems(rng, 1500, 3)

	trA := buildTree(t, items, 3)
	m, err := NewMaintainer(trA, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m.Size() > 0 {
		if err := m.Remove(m.Skyline()[0].ID); err != nil {
			t.Fatal(err)
		}
	}

	trB := buildTree(t, items, 3)
	d, err := NewDeltaSky(trB, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d.Size() > 0 {
		if err := d.Remove(d.Skyline()[0].ID); err != nil {
			t.Fatal(err)
		}
	}

	if d.NodeReads < m.NodeReads {
		t.Fatalf("DeltaSky reads (%d) should not be fewer than UpdateSkyline reads (%d)",
			d.NodeReads, m.NodeReads)
	}
	if d.NodeReads < 2*m.NodeReads {
		t.Logf("note: DeltaSky/maintainer node-read ratio = %.1f (paper reports ~10x on I/O)",
			float64(d.NodeReads)/float64(m.NodeReads))
	}
}

func TestRemoveNonSkylineObjectFails(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	items := randItems(rng, 100, 2)
	tr := buildTree(t, items, 2)
	m, err := NewMaintainer(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(999999); err == nil {
		t.Fatal("removing unknown id should fail")
	}
	d, err := NewDeltaSky(buildTree(t, items, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(999999); err == nil {
		t.Fatal("removing unknown id should fail (deltasky)")
	}
}

func TestMaintainerMemTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	items := antiItems(rng, 500, 3)
	tr := buildTree(t, items, 3)
	var mem metrics.MemTracker
	m, err := NewMaintainer(tr, &mem)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Peak == 0 {
		t.Fatal("memory tracker should record heap/plist growth")
	}
	_ = m
}

func TestMaintainerPaperExampleShape(t *testing.T) {
	// A layout mirroring Figure 4: e dominates most of the space; after
	// removing e, the points it was hiding (c, d, i) surface alongside a.
	pts := map[string]geom.Point{
		"a": {0.15, 0.95},
		"e": {0.80, 0.80},
		"c": {0.55, 0.75}, // dominated by e only
		"d": {0.70, 0.60}, // dominated by e only
		"i": {0.80, 0.40}, // dominated by e only wait: e=(0.8,0.8) dominates (0.8,0.4)
		"j": {0.50, 0.50}, // dominated by e and c/d
	}
	names := []string{"a", "e", "c", "d", "i", "j"}
	var items []rtree.Item
	id := map[string]uint64{}
	for i, n := range names {
		id[n] = uint64(i + 1)
		items = append(items, rtree.Item{ID: uint64(i + 1), Point: pts[n]})
	}
	tr := buildTree(t, items, 2)
	m, err := NewMaintainer(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	sky0 := idsOf(m.Skyline())
	want0 := []uint64{id["a"], id["e"]}
	if len(sky0) != 2 || sky0[0] != want0[0] || sky0[1] != want0[1] {
		t.Fatalf("initial skyline = %v, want %v", sky0, want0)
	}
	if err := m.Remove(id["e"]); err != nil {
		t.Fatal(err)
	}
	got := idsOf(m.Skyline())
	want := idsOf([]rtree.Item{
		{ID: id["a"]}, {ID: id["c"]}, {ID: id["d"]}, {ID: id["i"]},
	})
	if len(got) != len(want) {
		t.Fatalf("after removing e: skyline = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("after removing e: skyline = %v, want %v", got, want)
		}
	}
}
