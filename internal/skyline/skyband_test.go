package skyline

import (
	"math/rand"
	"testing"

	"fairassign/internal/rtree"
)

// naiveSkyband: objects dominated by fewer than k others.
func naiveSkyband(items []rtree.Item, k int) []rtree.Item {
	var out []rtree.Item
	for _, a := range items {
		n := 0
		for _, b := range items {
			if b.Point.Dominates(a.Point) {
				n++
			}
		}
		if n < k {
			out = append(out, a)
		}
	}
	return out
}

func TestSkybandMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 5} {
		for _, n := range []int{1, 50, 400} {
			items := randItems(rng, n, 3)
			want := naiveSkyband(items, k)
			tr := buildTree(t, items, 3)
			got, err := Skyband(tr, k)
			if err != nil {
				t.Fatal(err)
			}
			sameIDs(t, got, want, "Skyband")
			sameIDs(t, SkybandMem(items, k), want, "SkybandMem")
		}
	}
}

func TestSkybandK1IsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := antiItems(rng, 500, 3)
	tr := buildTree(t, items, 3)
	band, err := Skyband(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	sky, err := Compute(buildTree(t, items, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, band, sky, "k=1 band vs skyline")
}

func TestSkybandGrowsWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 600, 2)
	tr := buildTree(t, items, 2)
	prev := -1
	for _, k := range []int{1, 2, 4, 8} {
		band, err := Skyband(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(band) < prev {
			t.Fatalf("k=%d: band shrank (%d < %d)", k, len(band), prev)
		}
		prev = len(band)
	}
}

func TestSkybandContainsEveryTopK(t *testing.T) {
	// The defining property: for any monotone linear function, the top-k
	// objects lie in the k-skyband.
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 300, 3)
	k := 4
	band := map[uint64]bool{}
	for _, it := range SkybandMem(items, k) {
		band[it.ID] = true
	}
	for trial := 0; trial < 40; trial++ {
		w := make([]float64, 3)
		sum := 0.0
		for d := range w {
			w[d] = rng.Float64()
			sum += w[d]
		}
		for d := range w {
			w[d] /= sum
		}
		scores := make([]float64, len(items))
		for i, it := range items {
			for d := range w {
				scores[i] += w[d] * it.Point[d]
			}
		}
		// Find the top-k by selection.
		for rank := 0; rank < k; rank++ {
			best, bestScore := -1, -1.0
			for i := range items {
				if scores[i] > bestScore {
					best, bestScore = i, scores[i]
				}
			}
			if !band[items[best].ID] {
				t.Fatalf("trial %d: top-%d object %d missing from %d-skyband",
					trial, rank+1, items[best].ID, k)
			}
			scores[best] = -2
		}
	}
}

func TestSkybandInvalidKAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 40, 2)
	tr := buildTree(t, items, 2)
	band, err := Skyband(tr, 0) // treated as k=1
	if err != nil {
		t.Fatal(err)
	}
	sameIDs(t, band, naiveSkyband(items, 1), "k=0")
	if got := SkybandMem(nil, 3); len(got) != 0 {
		t.Error("empty input should produce empty band")
	}
}
