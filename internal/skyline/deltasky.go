package skyline

import (
	"fmt"

	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
)

// DeltaSky is the comparison baseline for skyline maintenance (Wu et al.,
// ICDE 2007, as described in Section 2.2 of the paper). For every deleted
// skyline object it re-traverses the R-tree from the root with a
// constrained BBS that (i) only follows entries intersecting the deleted
// object's dominance region — the implicit EDR test that avoids
// materializing the exclusive dominance region — and (ii) prunes entries
// dominated by the surviving skyline. Because each deletion triggers its
// own root-to-leaf traversal, the same nodes are read many times across a
// full assignment run; this is precisely the I/O gap Fig. 8 measures.
type DeltaSky struct {
	tree    *rtree.Tree
	sky     map[uint64]rtree.Item
	removed map[uint64]bool
	mem     *metrics.MemTracker

	// NodeReads counts R-tree node visits (for comparison with Maintainer).
	NodeReads int64
}

// NewDeltaSky computes the initial skyline with plain BBS.
func NewDeltaSky(t *rtree.Tree, mem *metrics.MemTracker) (*DeltaSky, error) {
	d := &DeltaSky{
		tree:    t,
		sky:     make(map[uint64]rtree.Item),
		removed: make(map[uint64]bool),
		mem:     mem,
	}
	if t.Len() == 0 {
		return d, nil
	}
	h := acquireEntryHeap()
	defer releaseEntryHeap(h)
	root, err := d.readNode(t.Root())
	if err != nil {
		return nil, err
	}
	d.pushAll(h, root)
	for h.Len() > 0 {
		e := h.pop()
		trackMem(d.mem, -entryBytes(t.Dims()))
		if d.dominated(e) {
			continue
		}
		if e.isPoint() {
			// Clone: the sky map outlives the decoded node whose
			// coordinate array e.rect.Min aliases.
			d.sky[e.id] = rtree.Item{ID: e.id, Point: e.rect.Min.Clone()}
			continue
		}
		n, err := d.readNode(e.child)
		if err != nil {
			return nil, err
		}
		d.pushAll(h, n)
	}
	return d, nil
}

// Skyline returns the current skyline objects.
func (d *DeltaSky) Skyline() []rtree.Item {
	out := make([]rtree.Item, 0, len(d.sky))
	for _, s := range d.sky {
		out = append(out, s)
	}
	return out
}

// Size returns the number of current skyline objects.
func (d *DeltaSky) Size() int { return len(d.sky) }

// Contains reports whether the object is currently on the skyline.
func (d *DeltaSky) Contains(id uint64) bool {
	_, ok := d.sky[id]
	return ok
}

// Remove deletes skyline objects one at a time, running one EDR-
// constrained traversal per object — DeltaSky has no batching.
func (d *DeltaSky) Remove(ids ...uint64) error {
	for _, id := range ids {
		if err := d.removeOne(id); err != nil {
			return err
		}
	}
	return nil
}

func (d *DeltaSky) removeOne(id uint64) error {
	odel, ok := d.sky[id]
	if !ok {
		return fmt.Errorf("skyline: object %d is not on the skyline", id)
	}
	delete(d.sky, id)
	d.removed[id] = true

	// Constrained BBS: new skyline points must lie in the region dominated
	// by odel, so only entries intersecting that region are followed.
	h := acquireEntryHeap()
	defer releaseEntryHeap(h)
	root, err := d.readNode(d.tree.Root())
	if err != nil {
		return err
	}
	d.pushConstrained(h, root, odel)
	for h.Len() > 0 {
		e := h.pop()
		trackMem(d.mem, -entryBytes(d.tree.Dims()))
		if d.dominated(e) {
			continue
		}
		if e.isPoint() {
			if d.removed[e.id] {
				continue
			}
			if _, already := d.sky[e.id]; already {
				continue
			}
			d.sky[e.id] = rtree.Item{ID: e.id, Point: e.rect.Min.Clone()}
			continue
		}
		n, err := d.readNode(e.child)
		if err != nil {
			return err
		}
		d.pushConstrained(h, n, odel)
	}
	return nil
}

func (d *DeltaSky) dominated(e entry) bool {
	for _, s := range d.sky {
		if s.Point.Dominates(e.rect.Max) {
			return true
		}
	}
	return false
}

func (d *DeltaSky) pushAll(h *entryHeap, n *rtree.Node) {
	for _, ne := range n.Entries {
		h.push(entry{rect: ne.Rect, child: ne.Child, id: ne.ID, key: topCornerSum(ne.Rect)})
		trackMem(d.mem, entryBytes(d.tree.Dims()))
	}
}

func (d *DeltaSky) pushConstrained(h *entryHeap, n *rtree.Node, odel rtree.Item) {
	for _, ne := range n.Entries {
		if !ne.Rect.IntersectsDominanceRegion(odel.Point) {
			continue
		}
		h.push(entry{rect: ne.Rect, child: ne.Child, id: ne.ID, key: topCornerSum(ne.Rect)})
		trackMem(d.mem, entryBytes(d.tree.Dims()))
	}
}

func (d *DeltaSky) readNode(id pagestore.PageID) (*rtree.Node, error) {
	d.NodeReads++
	return d.tree.ReadNode(id)
}
