package skyline

import (
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
)

// BenchmarkBBS measures a warm branch-and-bound skyline pass over 5k
// anti-correlated-ish points with the whole index resident.
func BenchmarkBBS(b *testing.B) {
	for _, cache := range []bool{true, false} {
		name := "cache=on"
		if !cache {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			store := pagestore.NewMemStore(4096)
			pool := pagestore.NewBufferPool(store, 1<<20)
			pool.SetDecodedCache(cache)
			rng := rand.New(rand.NewSource(42))
			items := make([]rtree.Item, 5000)
			for i := range items {
				// Anti-correlation: points near the plane Σx = 1 make the
				// skyline non-trivial.
				x, y := rng.Float64(), rng.Float64()
				items[i] = rtree.Item{ID: uint64(i), Point: geom.Point{x, 1 - x + 0.1*y, rng.Float64()}}
			}
			tr, err := rtree.BulkLoad(pool, 3, items, 0.9)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Compute(tr, nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(tr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
