package skyline

import (
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/rtree"
)

func TestDiscardOnSkylineBehavesLikeRemove(t *testing.T) {
	items := []rtree.Item{
		{ID: 1, Point: geom.Point{0.5, 0.5}},
		{ID: 2, Point: geom.Point{0.2, 0.8}},
		{ID: 3, Point: geom.Point{0.4, 0.4}}, // dominated by 1
	}
	m, err := NewMaintainer(buildTree(t, items, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Discard(1); err != nil {
		t.Fatal(err)
	}
	got := idsOf(m.Skyline())
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("after discarding 1: %v, want [2 3]", got)
	}
}

func TestDiscardParkedObjectNeverResurfaces(t *testing.T) {
	items := []rtree.Item{
		{ID: 1, Point: geom.Point{0.5, 0.5}},
		{ID: 3, Point: geom.Point{0.4, 0.4}}, // dominated by 1
	}
	m, err := NewMaintainer(buildTree(t, items, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3 is parked under 1; discard it while hidden.
	if err := m.Discard(3); err != nil {
		t.Fatal(err)
	}
	if m.Contains(3) {
		t.Fatal("discarded object must not be on the skyline")
	}
	// Removing its dominator must not resurrect it.
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	if m.Contains(3) {
		t.Fatal("tombstoned object resurfaced after dominator removal")
	}
	if m.Size() != 0 {
		t.Fatalf("skyline should be empty, has %v", idsOf(m.Skyline()))
	}
}

func TestDiscardThenReinsertRevives(t *testing.T) {
	items := []rtree.Item{
		{ID: 1, Point: geom.Point{0.6, 0.6}},
		{ID: 3, Point: geom.Point{0.4, 0.4}},
	}
	m, err := NewMaintainer(buildTree(t, items, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Discard(3); err != nil { // parked: tombstone
		t.Fatal(err)
	}
	// The object comes back (same ID, same point): the tombstone clears.
	if err := m.Insert(rtree.Item{ID: 3, Point: geom.Point{0.4, 0.4}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	if !m.Contains(3) {
		t.Fatal("re-inserted object should resurface after dominator removal")
	}
	// Both the stale and the fresh parked copies of 3 pop during the
	// resume above; the live-slot guard must keep exactly one.
	if m.Size() != 1 {
		t.Fatalf("skyline size %d, want 1", m.Size())
	}
}

// TestDiscardRandomizedAgainstSFS drives a maintainer through a random
// interleaving of discards (of arbitrary live objects) and re-arrivals,
// checking the skyline against an SFS recomputation of the live set
// after every step.
func TestDiscardRandomizedAgainstSFS(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 120
	items := make([]rtree.Item, n)
	for i := range items {
		items[i] = rtree.Item{ID: uint64(i + 1), Point: geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}}
	}
	m, err := NewMaintainer(buildTree(t, items, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]rtree.Item, n)
	for _, it := range items {
		live[it.ID] = it
	}
	check := func(step int) {
		want := idsOf(SFS(liveItems(live)))
		got := idsOf(m.Skyline())
		if len(got) != len(want) {
			t.Fatalf("step %d: skyline %v, want %v", step, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: skyline %v, want %v", step, got, want)
			}
		}
	}
	check(-1)
	for step := 0; step < 200 && len(live) > 0; step++ {
		if rng.Intn(4) == 0 {
			// Revive a previously discarded object.
			var cand []rtree.Item
			for _, it := range items {
				if _, ok := live[it.ID]; !ok {
					cand = append(cand, it)
				}
			}
			if len(cand) == 0 {
				continue
			}
			sort.Slice(cand, func(i, j int) bool { return cand[i].ID < cand[j].ID })
			it := cand[rng.Intn(len(cand))]
			if !m.Contains(it.ID) {
				if err := m.Insert(it); err != nil {
					t.Fatalf("step %d: insert %d: %v", step, it.ID, err)
				}
				live[it.ID] = it
			}
		} else {
			ids := liveIDs(live)
			id := ids[rng.Intn(len(ids))]
			if err := m.Discard(id); err != nil {
				t.Fatalf("step %d: discard %d: %v", step, id, err)
			}
			delete(live, id)
		}
		check(step)
	}
}

func liveItems(live map[uint64]rtree.Item) []rtree.Item {
	out := make([]rtree.Item, 0, len(live))
	for _, it := range live {
		out = append(out, it)
	}
	return out
}

func liveIDs(live map[uint64]rtree.Item) []uint64 {
	out := make([]uint64, 0, len(live))
	for id := range live {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
