package skyline

import (
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/rtree"
)

func TestInsertIntoSkyline(t *testing.T) {
	items := []rtree.Item{
		{ID: 1, Point: geom.Point{0.5, 0.5}},
		{ID: 2, Point: geom.Point{0.2, 0.8}},
	}
	tr := buildTree(t, items, 2)
	m, err := NewMaintainer(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	// New non-dominated object joins the skyline.
	if err := m.Insert(rtree.Item{ID: 10, Point: geom.Point{0.8, 0.2}}); err != nil {
		t.Fatal(err)
	}
	if !m.Contains(10) || m.Size() != 3 {
		t.Fatalf("insert failed: size %d", m.Size())
	}
	// Dominated arrival is parked, not exposed.
	if err := m.Insert(rtree.Item{ID: 11, Point: geom.Point{0.1, 0.1}}); err != nil {
		t.Fatal(err)
	}
	if m.Contains(11) {
		t.Fatal("dominated arrival should not join the skyline")
	}
	// It resurfaces once its dominator goes away (whoever parked it).
	for _, id := range []uint64{1, 2, 10} {
		if m.Contains(11) {
			break
		}
		if err := m.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Contains(11) {
		t.Fatal("parked arrival should resurface after dominators leave")
	}
}

func TestInsertDominatingDemotesSkyline(t *testing.T) {
	items := []rtree.Item{
		{ID: 1, Point: geom.Point{0.5, 0.5}},
		{ID: 2, Point: geom.Point{0.2, 0.8}},
		{ID: 3, Point: geom.Point{0.4, 0.4}}, // dominated by 1
	}
	tr := buildTree(t, items, 2)
	m, err := NewMaintainer(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A new super-object dominates everything.
	if err := m.Insert(rtree.Item{ID: 99, Point: geom.Point{0.9, 0.9}}); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || !m.Contains(99) {
		t.Fatalf("super-object should be the whole skyline: %v", idsOf(m.Skyline()))
	}
	// Removing it restores the previous skyline (1 and 2; 3 stays hidden
	// under 1).
	if err := m.Remove(99); err != nil {
		t.Fatal(err)
	}
	got := idsOf(m.Skyline())
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("after removing super-object: %v, want [1 2]", got)
	}
}

func TestInsertDuplicateSkylineIDRejected(t *testing.T) {
	items := []rtree.Item{{ID: 1, Point: geom.Point{0.5, 0.5}}}
	m, err := NewMaintainer(buildTree(t, items, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(rtree.Item{ID: 1, Point: geom.Point{0.6, 0.6}}); err == nil {
		t.Fatal("duplicate skyline id should be rejected")
	}
}

func TestRandomInsertRemoveMatchesNaive(t *testing.T) {
	// Interleave removals of skyline objects with arrivals of new ones;
	// the maintained skyline must always equal the naive skyline of the
	// live set.
	rng := rand.New(rand.NewSource(123))
	initial := randItems(rng, 150, 3)
	tr := buildTree(t, initial, 3)
	m, err := NewMaintainer(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := map[uint64]rtree.Item{}
	for _, it := range initial {
		live[it.ID] = it
	}
	nextID := uint64(10000)
	for step := 0; step < 300 && len(live) > 0; step++ {
		if rng.Intn(3) == 0 {
			p := make(geom.Point, 3)
			for d := range p {
				p[d] = rng.Float64()
			}
			it := rtree.Item{ID: nextID, Point: p}
			nextID++
			// Only non-skyline-duplicate IDs arrive; Insert handles both
			// dominated and dominating cases.
			if err := m.Insert(it); err != nil {
				t.Fatal(err)
			}
			live[it.ID] = it
		} else {
			sky := m.Skyline()
			victim := sky[rng.Intn(len(sky))]
			if err := m.Remove(victim.ID); err != nil {
				t.Fatal(err)
			}
			delete(live, victim.ID)
		}
		var rem []rtree.Item
		for _, it := range live {
			rem = append(rem, it)
		}
		sameIDs(t, m.Skyline(), naiveSkyline(rem), "insert/remove step")
	}
}
