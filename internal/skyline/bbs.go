// Package skyline implements skyline computation and maintenance over
// R-tree indexed object sets:
//
//   - BBS (branch-and-bound skyline, Papadias et al.) for the initial
//     skyline, extended to keep each pruned entry in the pruned list
//     ("plist") of exactly one dominating skyline object (Section 5.2 of
//     the paper);
//   - UpdateSkyline (Algorithm 2): the paper's I/O-optimal incremental
//     maintenance under deletions of skyline objects — no R-tree node is
//     ever read twice across the entire assignment run (Theorem 1);
//   - DeltaSky: the state-of-the-art baseline that re-traverses the tree
//     once per deletion, used by the Fig. 8 comparison;
//   - BNL and SFS in-memory skylines, used as oracles and for the
//     function-side skyline of the prioritized variant (Section 6.2).
//
// All dominance tests use the strict definition (Section 2.2): p dominates
// q iff p >= q in every dimension and p != q; coincident duplicates are
// both on the skyline.
package skyline

import (
	"slices"
	"sync"

	"fairassign/internal/geom"
	"fairassign/internal/heaputil"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
)

// entry is a heap element: either an R-tree node reference or a data
// point, ordered by descending coordinate sum of its top corner —
// equivalent to BBS's ascending L1 distance from the sky point.
type entry struct {
	rect  geom.Rect
	child pagestore.PageID // InvalidPage for data points
	id    uint64           // object ID for data points
	key   float64          // sum of top-corner coordinates
}

func (e entry) isPoint() bool { return e.child == pagestore.InvalidPage }

func topCornerSum(r geom.Rect) float64 {
	s := 0.0
	for _, v := range r.Max {
		s += v
	}
	return s
}

// entryHeap is a boxing-free max-heap on key (closest to the sky point
// first).
type entryHeap []entry

func lessEntry(a, b entry) bool { return a.key > b.key }

func (h *entryHeap) push(e entry) { heaputil.Push((*[]entry)(h), lessEntry, e) }
func (h *entryHeap) pop() entry   { return heaputil.Pop((*[]entry)(h), lessEntry) }
func (h *entryHeap) Len() int     { return len(*h) }

// approximate per-entry memory footprint for the paper's memory metric.
func entryBytes(dims int) int64 { return int64(2*8*dims + 32) }

// entryHeapPool recycles branch-and-bound heaps across skyline passes
// (Compute calls, maintainer construction, and each Remove's resume).
var entryHeapPool = sync.Pool{New: func() any { return new(entryHeap) }}

func acquireEntryHeap() *entryHeap { return entryHeapPool.Get().(*entryHeap) }

// releaseEntryHeap scrubs the heap (so no R-tree node memory is retained
// through the pool) and returns it for reuse.
func releaseEntryHeap(h *entryHeap) {
	clear((*h)[:cap(*h)])
	*h = (*h)[:0]
	entryHeapPool.Put(h)
}

// Compute runs plain BBS over the tree and returns the skyline. It visits
// the minimum possible set of nodes (I/O-optimal for a single skyline
// computation). Deleted object IDs in skip are ignored. It accepts any
// rtree.NodeReader, so it runs equally over the live tree and over a
// frozen rtree.View (snapshot-addressable skyline queries).
func Compute(t rtree.NodeReader, skip map[uint64]bool) ([]rtree.Item, error) {
	if t.Len() == 0 {
		return nil, nil
	}
	var sky []rtree.Item
	h := acquireEntryHeap()
	defer releaseEntryHeap(h)
	root, err := t.ReadNode(t.Root())
	if err != nil {
		return nil, err
	}
	pushNodeEntries(h, root)
	var cs *ColSet // columnar mirror of sky, for the dominance kernel
	for len(*h) > 0 {
		e := h.pop()
		if cs != nil && cs.AnyDominates(e.rect.Max) {
			continue
		}
		if e.isPoint() {
			if skip != nil && skip[e.id] {
				continue
			}
			sky = append(sky, rtree.Item{ID: e.id, Point: e.rect.Min})
			if cs == nil {
				cs = acquireColSet(len(e.rect.Min))
				defer releaseColSet(cs)
			}
			cs.Append(e.id, e.rect.Min)
			continue
		}
		n, err := t.ReadNode(e.child)
		if err != nil {
			return nil, err
		}
		pushNodeEntries(h, n)
	}
	return sky, nil
}

func pushNodeEntries(h *entryHeap, n *rtree.Node) {
	for _, ne := range n.Entries {
		h.push(entry{
			rect:  ne.Rect,
			child: ne.Child,
			id:    ne.ID,
			key:   topCornerSum(ne.Rect),
		})
	}
}

// dominatedByAny reports whether e is strictly dominated by one of the
// skyline items: a node entry is prunable when its best corner is
// dominated; a point entry when the point itself is. This is the
// row-wise definitional form of ColSet.AnyDominates, retained as the
// oracle for the kernel differential tests.
func dominatedByAny(sky []rtree.Item, e entry) bool {
	for _, s := range sky {
		if s.Point.Dominates(e.rect.Max) {
			return true
		}
	}
	return false
}

// BNL computes the skyline of an in-memory point set with the
// block-nested-loops algorithm (Börzsönyi et al.). O(n²) worst case; used
// as a test oracle and for small function-side skylines.
func BNL(items []rtree.Item) []rtree.Item {
	var window []rtree.Item
	for _, it := range items {
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if w.Point.Dominates(it.Point) {
				dominated = true
			}
			if !it.Point.Dominates(w.Point) {
				keep = append(keep, w)
			}
		}
		if dominated {
			// restore pruned window (it cannot have dominated anything
			// if it is itself dominated, but keep is already correct)
			window = keep
			continue
		}
		window = append(keep, it)
	}
	return window
}

// SFS computes the skyline with sort-filter-skyline: items are sorted by
// descending coordinate sum (a topological order of dominance), after
// which each item needs comparing only against the accumulated skyline.
func SFS(items []rtree.Item) []rtree.Item {
	if len(items) == 0 {
		return nil
	}
	sorted := make([]rtree.Item, len(items))
	copy(sorted, items)
	sortBySumDesc(sorted)
	cs := acquireColSet(len(sorted[0].Point))
	defer releaseColSet(cs)
	var sky []rtree.Item
	for _, it := range sorted {
		if cs.AnyDominates(it.Point) {
			continue
		}
		sky = append(sky, it)
		cs.Append(it.ID, it.Point)
	}
	return sky
}

func sortBySumDesc(items []rtree.Item) {
	sum := func(p geom.Point) float64 {
		s := 0.0
		for _, v := range p {
			s += v
		}
		return s
	}
	// (sum desc, ID asc) is a total order, so the sorted permutation is
	// unique — slices.SortFunc (pdqsort, no reflection) must produce the
	// byte-identical sequence sort.Slice did.
	slices.SortFunc(items, func(a, b rtree.Item) int {
		sa, sb := sum(a.Point), sum(b.Point)
		switch {
		case sa > sb:
			return -1
		case sa < sb:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// trackMem grows/shrinks a tracker when one is attached.
func trackMem(m *metrics.MemTracker, delta int64) {
	if m == nil {
		return
	}
	if delta >= 0 {
		m.Grow(delta)
	} else {
		m.Shrink(-delta)
	}
}
