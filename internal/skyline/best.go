package skyline

import (
	"fairassign/internal/rtree"
	"fairassign/internal/score"
)

// BestUnder returns the item of items maximizing the scorer, with the
// deterministic tie-break every solver uses (lowest ID). ok is false
// when items is empty.
//
// This is the frontier best-score primitive: because every scoring
// family is monotone, the best object for a function among a set O is
// always attained on the skyline of O, so scanning a maintained
// frontier (the availability skyline, or the SB candidate skyline) with
// BestUnder answers "best object for f" without touching the index.
func BestUnder(sc score.Scorer, items []rtree.Item) (best rtree.Item, bestScore float64, ok bool) {
	for _, it := range items {
		s := sc.Score(it.Point)
		if !ok || s > bestScore || (s == bestScore && it.ID < best.ID) {
			best, bestScore, ok = it, s, true
		}
	}
	return best, bestScore, ok
}
