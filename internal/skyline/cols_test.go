package skyline

import (
	"math"
	"math/rand"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
)

func randPoint(rng *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	for d := range p {
		// Coarse grid: plenty of exact per-dimension ties and full
		// duplicates, the cases where dominance strictness matters.
		p[d] = float64(rng.Intn(8)) / 7
	}
	return p
}

// TestColSetDominanceMatchesRowwise: the blocked branch-free kernel must
// agree with geom.Point.Dominates member by member — same AnyDominates
// verdict, and FirstDominator returning the lowest dominating slot.
func TestColSetDominanceMatchesRowwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range []int{1, 2, 3, 5} {
		// Cross domBlock boundaries so the block loop's edges are hit.
		for _, n := range []int{0, 1, 7, domBlock - 1, domBlock, domBlock + 3, 3*domBlock + 17} {
			cs := NewColSet(dims)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = randPoint(rng, dims)
				cs.Append(uint64(i), pts[i])
			}
			for trial := 0; trial < 200; trial++ {
				q := randPoint(rng, dims)
				if trial%4 == 0 && n > 0 {
					q = pts[rng.Intn(n)] // exact member duplicate: never dominated by itself
				}
				want := -1
				for i, p := range pts {
					if p.Dominates(q) {
						want = i
						break
					}
				}
				if got := cs.FirstDominator(q); got != want {
					t.Fatalf("dims=%d n=%d: FirstDominator=%d rowwise=%d (q=%v)", dims, n, got, want, q)
				}
				if got := cs.AnyDominates(q); got != (want >= 0) {
					t.Fatalf("dims=%d n=%d: AnyDominates=%v rowwise=%v", dims, n, got, want >= 0)
				}
			}
		}
	}
}

// TestColSetSwapDelete: deleting members keeps kernel verdicts in sync
// with a row-wise mirror.
func TestColSetSwapDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dims, n = 3, 400
	cs := NewColSet(dims)
	type member struct {
		id uint64
		p  geom.Point
	}
	var rows []member
	for i := 0; i < n; i++ {
		p := randPoint(rng, dims)
		cs.Append(uint64(i), p)
		rows = append(rows, member{uint64(i), p})
	}
	for cs.Len() > 0 {
		i := rng.Intn(cs.Len())
		cs.SwapDelete(i)
		rows[i] = rows[len(rows)-1]
		rows = rows[:len(rows)-1]
		q := randPoint(rng, dims)
		want := false
		for _, m := range rows {
			if m.p.Dominates(q) {
				want = true
				break
			}
		}
		if got := cs.AnyDominates(q); got != want {
			t.Fatalf("after deletes (len=%d): AnyDominates=%v rowwise=%v", cs.Len(), got, want)
		}
		if cs.Len() != len(rows) {
			t.Fatalf("Len=%d mirror=%d", cs.Len(), len(rows))
		}
	}
}

// TestColSetBestMatchesBestUnder: the columnar Best must pick the same
// member with the same score bits as the row-wise BestUnder, for every
// scorer family and with exact score ties present.
func TestColSetBestMatchesBestUnder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fams := []score.Family{
		{Kind: score.Linear},
		{Kind: score.OWA},
		{Kind: score.Chebyshev},
		{Kind: score.Lp, P: 3},
	}
	for _, dims := range []int{2, 4} {
		cs := NewColSet(dims)
		var items []rtree.Item
		for i := 0; i < 500; i++ {
			p := randPoint(rng, dims)
			if i > 0 && rng.Intn(5) == 0 {
				p = items[rng.Intn(i)].Point // duplicate → exact score tie
			}
			it := rtree.Item{ID: uint64(3000 + i), Point: p}
			items = append(items, it)
			cs.Append(it.ID, it.Point)
		}
		for _, fam := range fams {
			w := make([]float64, dims)
			for d := range w {
				w[d] = rng.Float64()
			}
			sc := score.Scorer{Fam: fam, W: w}
			i, got, ok := cs.Best(sc)
			wantIt, want, wantOK := BestUnder(sc, items)
			if ok != wantOK || cs.ID(i) != wantIt.ID ||
				math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("fam=%v dims=%d: Best=(%d,%x) BestUnder=(%d,%x)",
					fam, dims, cs.ID(i), math.Float64bits(got), wantIt.ID, math.Float64bits(want))
			}
		}
	}
}

// TestMaintainerBestMatchesBestUnder: Maintainer.Best over the live
// columnar mirror equals BestUnder over Skyline() through a mutation
// churn (inserts, removals, discards).
func TestMaintainerBestMatchesBestUnder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const dims = 3
	var items []rtree.Item
	for i := 0; i < 300; i++ {
		items = append(items, rtree.Item{ID: uint64(i + 1), Point: randPoint(rng, dims)})
	}
	m := NewMaintainerFromItems(dims, items, nil)
	w := []float64{0.2, 0.5, 0.3}
	check := func(step string) {
		t.Helper()
		for _, sc := range []score.Scorer{
			{Fam: score.Family{Kind: score.Linear}, W: w},
			{Fam: score.Family{Kind: score.OWA}, W: w},
		} {
			gotIt, got, ok := m.Best(sc)
			wantIt, want, wantOK := BestUnder(sc, m.Skyline())
			if ok != wantOK || gotIt.ID != wantIt.ID ||
				math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: Best=(%d,%x,%v) BestUnder=(%d,%x,%v)", step,
					gotIt.ID, math.Float64bits(got), ok, wantIt.ID, math.Float64bits(want), wantOK)
			}
		}
	}
	check("initial")
	next := uint64(1000)
	for round := 0; round < 60; round++ {
		switch rng.Intn(3) {
		case 0:
			next++
			if err := m.Insert(rtree.Item{ID: next, Point: randPoint(rng, dims)}); err != nil {
				t.Fatal(err)
			}
		case 1:
			if sky := m.Skyline(); len(sky) > 0 {
				if err := m.Remove(sky[rng.Intn(len(sky))].ID); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			if err := m.Discard(uint64(rng.Intn(300) + 1)); err != nil {
				t.Fatal(err)
			}
		}
		check("churn")
	}
	_, _, ok := m.Best(score.Scorer{W: w})
	_ = ok
	// Empty-skyline contract.
	empty := NewMaintainerFromItems(dims, nil, nil)
	if _, _, ok := empty.Best(score.Scorer{W: w}); ok {
		t.Fatal("Best on empty maintainer reported ok")
	}
}

// TestDominanceKernelAllocs: the kernels allocate nothing at steady
// state.
func TestDominanceKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const dims = 4
	cs := NewColSet(dims)
	for i := 0; i < 2048; i++ {
		cs.Append(uint64(i), randPoint(rng, dims))
	}
	q := randPoint(rng, dims)
	if n := testing.AllocsPerRun(20, func() { cs.AnyDominates(q) }); n != 0 {
		t.Errorf("AnyDominates allocates %.1f/op, want 0", n)
	}
	sc := score.Scorer{W: []float64{0.1, 0.2, 0.3, 0.4}}
	cs.Best(sc) // warm the score scratch
	if n := testing.AllocsPerRun(20, func() { cs.Best(sc) }); n != 0 {
		t.Errorf("Best allocates %.1f/op, want 0", n)
	}
}

// BenchmarkDominanceKernel compares the blocked columnar dominance scan
// against the row-wise Point.Dominates loop over the same set. The
// query point is drawn so roughly half the probes find no dominator —
// the full-scan case where the kernel matters.
func BenchmarkDominanceKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{256, 4096} {
		const dims = 4
		cs := NewColSet(dims)
		pts := make([]geom.Point, n)
		for i := range pts {
			p := make(geom.Point, dims)
			for d := range p {
				p[d] = rng.Float64()
			}
			pts[i] = p
			cs.Append(uint64(i), p)
		}
		// High-coordinate probe: rarely dominated, forcing full scans.
		q := make(geom.Point, dims)
		for d := range q {
			q[d] = 0.95 + 0.05*rng.Float64()
		}
		b.Run(benchName("columnar", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs.AnyDominates(q)
			}
		})
		b.Run(benchName("rowwise", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				found := false
				for _, p := range pts {
					if p.Dominates(q) {
						found = true
						break
					}
				}
				_ = found
			}
		})
	}
}

// BenchmarkSkylineEntryPrune measures the dominance test as BBS uses it
// (entry pruning via rect top corners), columnar vs the retained
// row-wise oracle.
func BenchmarkSkylineEntryPrune(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	const n, dims = 1024, 4
	cs := NewColSet(dims)
	var sky []rtree.Item
	for i := 0; i < n; i++ {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		cs.Append(uint64(i), p)
		sky = append(sky, rtree.Item{ID: uint64(i), Point: p})
	}
	pt := make(geom.Point, dims)
	for d := range pt {
		pt[d] = 0.99
	}
	e := entry{rect: geom.RectFromPoint(pt), child: pagestore.InvalidPage, id: 1, key: topCornerSum(geom.RectFromPoint(pt))}
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cs.AnyDominates(e.rect.Max)
		}
	})
	b.Run("rowwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dominatedByAny(sky, e)
		}
	})
}

func benchName(kind string, n int) string {
	switch n {
	case 256:
		return kind + "/n256"
	case 4096:
		return kind + "/n4096"
	}
	return kind
}
