package skyline

import (
	"math"
	"testing"

	"fairassign/internal/geom"
	"fairassign/internal/score"
	"fairassign/internal/simd"
)

// FuzzDominanceSIMD bit-compares the SIMD and portable dominance filter
// on arbitrary raw float64 bit patterns: FirstDominator against both
// the other kernel path and the row-wise geom.Point.Dominates scan
// (exact on every input — the filter's !(v < q) predicate reproduces
// Dominates' NaN behavior), and ColSet.Best across kernel paths.
func FuzzDominanceSIMD(f *testing.F) {
	f.Add(uint8(2), []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 0, 0, 0, 0, 0, 0, 0xf8, 0xff})
	f.Add(uint8(3), make([]byte, 8*3*20))
	f.Add(uint8(4), []byte{0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xef, 0xff})
	f.Fuzz(func(t *testing.T, dimSel uint8, raw []byte) {
		if !simd.Available() {
			t.Skip("no assembly kernels for this CPU")
		}
		defer simd.SetEnabled(true)
		dims := 2 + int(dimSel)%4
		vals := make([]float64, len(raw)/8)
		for i := range vals {
			var u uint64
			for b := 0; b < 8; b++ {
				u |= uint64(raw[8*i+b]) << (8 * b)
			}
			vals[i] = math.Float64frombits(u)
		}
		if len(vals) < 2*dims {
			t.Skip("not enough data")
		}
		q := vals[:dims]
		rows := vals[dims:]
		n := len(rows) / dims
		cs := NewColSet(dims)
		pts := make([]geom.Point, n)
		for i := 0; i < n; i++ {
			pts[i] = geom.Point(rows[i*dims : (i+1)*dims])
			cs.Append(uint64(i), pts[i])
		}

		simd.SetEnabled(true)
		fd1 := cs.FirstDominator(q)
		simd.SetEnabled(false)
		fd2 := cs.FirstDominator(q)
		if fd1 != fd2 {
			t.Fatalf("dims=%d n=%d: FirstDominator %d (SIMD) vs %d (portable)\nq=%v", dims, n, fd1, fd2, q)
		}
		want := -1
		for i, p := range pts {
			if p.Dominates(geom.Point(q)) {
				want = i
				break
			}
		}
		if fd1 != want {
			t.Fatalf("dims=%d n=%d: FirstDominator %d, row-wise Dominates scan %d\nq=%v", dims, n, fd1, want, q)
		}

		sc := score.LinearScorer(q)
		simd.SetEnabled(true)
		i1, b1, ok1 := cs.Best(sc)
		simd.SetEnabled(false)
		i2, b2, ok2 := cs.Best(sc)
		if i1 != i2 || ok1 != ok2 {
			t.Fatalf("dims=%d n=%d: Best %d,%v (SIMD) vs %d,%v (portable)", dims, n, i1, ok1, i2, ok2)
		}
		if ok1 && math.Float64bits(b1) != math.Float64bits(b2) &&
			!(math.IsNaN(b1) && math.IsNaN(b2)) {
			t.Fatalf("dims=%d n=%d: Best score %x (SIMD) vs %x (portable)", dims, n, math.Float64bits(b1), math.Float64bits(b2))
		}
	})
}
