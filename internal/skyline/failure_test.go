package skyline

import (
	"math/rand"
	"testing"

	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
)

// TestMaintainerSurfacesIOErrors verifies that a buffer/store failure
// during the initial BBS propagates as an error.
func TestMaintainerSurfacesIOErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	items := randItems(rng, 300, 2)
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 1<<20)
	tr, err := rtree.BulkLoad(pool, 2, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Clear(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the store: free the root page.
	if err := store.Free(tr.Root()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMaintainer(tr, nil); err == nil {
		t.Fatal("maintainer construction should fail on a corrupted store")
	}
	if _, err := NewDeltaSky(tr, nil); err == nil {
		t.Fatal("deltasky construction should fail on a corrupted store")
	}
	if _, err := Compute(tr, nil); err == nil {
		t.Fatal("compute should fail on a corrupted store")
	}
	if _, err := Skyband(tr, 2); err == nil {
		t.Fatal("skyband should fail on a corrupted store")
	}
}
