package skyline

import (
	"fmt"

	"fairassign/internal/geom"
	"fairassign/internal/metrics"
	"fairassign/internal/pagestore"
	"fairassign/internal/rtree"
	"fairassign/internal/score"
)

// Maintainer implements the paper's incremental skyline maintenance
// (Section 5.2, Algorithm 2). During the initial BBS pass every pruned
// entry (node or object) is stored in the pruned list of exactly one
// dominating skyline object. When skyline objects are removed, their
// pruned lists are redistributed: entries dominated by a surviving
// skyline object move to that object's plist, the rest are re-examined by
// resuming the branch-and-bound search. Theorem 1: no R-tree node is read
// twice across the lifetime of the maintainer.
//
// A tree-backed maintainer (NewMaintainer) parks pruned subtrees by page
// reference and therefore requires the tree to stay physically unchanged
// for its lifetime; when the index itself absorbs inserts and deletes,
// use NewMaintainerFromItems, which materializes every entry as a point
// and never touches the tree again.
type Maintainer struct {
	tree *rtree.Tree // nil for materialized maintainers (no node entries)
	dims int
	sky  map[uint64]*skyObj
	mem  *metrics.MemTracker

	// order and cols mirror the sky map as dense arrays: order[i] is the
	// skyline object whose point sits at column row i (skyObj.slot keeps
	// the back-pointer). The columnar mirror feeds the branch-free
	// dominance kernel (dominator) and the batched scorer kernel (Best);
	// the map stays the ID-lookup path. As a side effect Skyline() and
	// the Insert demote scan now run in deterministic insertion order
	// instead of map order.
	order []*skyObj
	cols  *ColSet

	// lastDom caches the most recent successful dominator: consecutive
	// heap entries are spatially close, so the same skyline object
	// usually prunes runs of them, turning the O(|sky|) scan into O(D).
	lastDom *skyObj

	// free recycles skyObj slots of removed skyline objects (keeping
	// their plist capacity), and orphans is the Remove scratch buffer;
	// together they keep the steady-state removal loop of an assignment
	// run nearly allocation-free.
	free    []*skyObj
	orphans []entry

	// dead tombstones objects discarded while parked in a pruned list
	// (Discard): their stale entries cannot be deleted in place, so they
	// are dropped lazily if a dominator removal ever resurfaces them.
	// With a live-check installed (SetLiveCheck) stale entries are
	// detected directly and no tombstones accumulate.
	dead map[uint64]bool

	// liveCheck, when set, is consulted for every resurfacing point
	// entry: an entry whose (id, point) the oracle rejects is dropped.
	// This subsumes tombstoning — and unlike tombstones it stays correct
	// when an ID is reused for a different point.
	liveCheck func(id uint64, pt geom.Point) bool

	// NodeReads counts R-tree node visits performed by this maintainer
	// (used by tests to verify I/O optimality).
	NodeReads int64
}

// newSkyObj takes a recycled slot when one is available.
func (m *Maintainer) newSkyObj(it rtree.Item) *skyObj {
	if n := len(m.free); n > 0 {
		s := m.free[n-1]
		m.free = m.free[:n-1]
		s.item = it
		return s
	}
	return &skyObj{item: it}
}

// recycle returns a removed skyline slot to the free list. The caller
// must already have copied (or migrated) the plist contents; the slots
// are scrubbed so no R-tree node memory is retained through the free
// list.
func (m *Maintainer) recycle(s *skyObj) {
	if m.lastDom == s {
		m.lastDom = nil
	}
	s.item = rtree.Item{}
	clear(s.plist)
	s.plist = s.plist[:0]
	m.free = append(m.free, s)
}

type skyObj struct {
	item  rtree.Item
	plist []entry
	slot  int // index in Maintainer.order / Maintainer.cols
}

// addSky registers a skyline object in the map and the columnar mirror.
func (m *Maintainer) addSky(s *skyObj) {
	s.slot = len(m.order)
	m.order = append(m.order, s)
	m.cols.Append(s.item.ID, s.item.Point)
	m.sky[s.item.ID] = s
}

// delSky unregisters a skyline object (swap-delete in the mirror). The
// caller still owns s and its plist.
func (m *Maintainer) delSky(s *skyObj) {
	i, last := s.slot, len(m.order)-1
	if i != last {
		moved := m.order[last]
		m.order[i] = moved
		moved.slot = i
	}
	m.order = m.order[:last]
	m.cols.SwapDelete(i)
	delete(m.sky, s.item.ID)
}

// NewMaintainer computes the initial skyline of the tree with a
// plist-tracking BBS and returns a maintainer ready for removals. mem may
// be nil; when set, plist and heap footprints are tracked for the paper's
// memory metric.
func NewMaintainer(t *rtree.Tree, mem *metrics.MemTracker) (*Maintainer, error) {
	m := &Maintainer{tree: t, dims: t.Dims(), sky: make(map[uint64]*skyObj), dead: make(map[uint64]bool), mem: mem, cols: NewColSet(t.Dims())}
	if t.Len() == 0 {
		return m, nil
	}
	h := acquireEntryHeap()
	defer releaseEntryHeap(h)
	root, err := m.readNode(t.Root())
	if err != nil {
		return nil, err
	}
	m.pushChildren(h, root)
	if err := m.resume(h); err != nil {
		return nil, err
	}
	return m, nil
}

// NewMaintainerFromItems builds a maintainer over an in-memory item
// set, materializing every entry as a point. A tree-backed maintainer
// parks whole pruned subtrees by page reference, which is I/O-optimal
// but assumes the index never changes underneath it; a materialized
// maintainer holds no index references at all, so it stays correct
// while the index absorbs physical inserts and deletes — the dynamic
// Workspace regime. Item points are aliased, not copied: callers must
// treat them as immutable for the maintainer's lifetime.
func NewMaintainerFromItems(dims int, items []rtree.Item, mem *metrics.MemTracker) *Maintainer {
	m := &Maintainer{dims: dims, sky: make(map[uint64]*skyObj), dead: make(map[uint64]bool), mem: mem, cols: NewColSet(dims)}
	if len(items) == 0 {
		return m
	}
	// Seed the skyline with SFS (descending corner-sum visit order means
	// dominators precede what they dominate), then park the rest.
	for _, it := range SFS(items) {
		m.addSky(m.newSkyObj(rtree.Item{ID: it.ID, Point: it.Point.Clone()}))
	}
	for _, it := range items {
		if _, onSky := m.sky[it.ID]; onSky {
			continue
		}
		e := entry{
			rect:  geom.RectFromPoint(it.Point),
			child: pagestore.InvalidPage,
			id:    it.ID,
			key:   topCornerSum(geom.RectFromPoint(it.Point)),
		}
		o := m.dominator(e)
		if o == nil {
			// Non-strict domination ties (duplicate points) can leave an
			// item outside both sets; it belongs on the skyline.
			m.addSky(m.newSkyObj(rtree.Item{ID: it.ID, Point: it.Point.Clone()}))
			continue
		}
		o.plist = append(o.plist, e)
		trackMem(m.mem, entryBytes(m.dims))
	}
	return m
}

// Skyline returns the current skyline objects (insertion order).
func (m *Maintainer) Skyline() []rtree.Item {
	out := make([]rtree.Item, 0, len(m.order))
	for _, s := range m.order {
		out = append(out, s.item)
	}
	return out
}

// Best returns the skyline object maximizing the scorer, ties to the
// lowest ID — BestUnder over the maintained skyline without
// materializing the item slice, scored by the batched columnar kernel.
// ok is false on an empty skyline. Like every mutating method it must
// not be called concurrently with mutations (the kernel scratch lives
// on the maintainer).
func (m *Maintainer) Best(sc score.Scorer) (best rtree.Item, bestScore float64, ok bool) {
	i, s, ok := m.cols.Best(sc)
	if !ok {
		return rtree.Item{}, 0, false
	}
	return m.order[i].item, s, true
}

// Size returns the number of current skyline objects.
func (m *Maintainer) Size() int { return len(m.sky) }

// Contains reports whether the object is currently on the skyline.
func (m *Maintainer) Contains(id uint64) bool {
	_, ok := m.sky[id]
	return ok
}

// PlistLen returns the pruned-list length of a skyline object (tests).
func (m *Maintainer) PlistLen(id uint64) int {
	if s, ok := m.sky[id]; ok {
		return len(s.plist)
	}
	return 0
}

// Insert adds a newly arrived object to the maintained set (the dynamic
// scenario sketched as future work in Section 8, using the insertion
// rule of Section 2.2). If the object is dominated by a current skyline
// object it is parked in that object's pruned list and will resurface if
// its dominator is ever removed. Otherwise it joins the skyline, and any
// skyline objects it dominates are demoted into its pruned list together
// with their own pruned entries (everything they dominated is
// transitively dominated by the new object). No R-tree access is needed.
func (m *Maintainer) Insert(it rtree.Item) error {
	if _, dup := m.sky[it.ID]; dup {
		return fmt.Errorf("skyline: object %d already on the skyline", it.ID)
	}
	// A re-arrival revives a tombstoned object: any stale parked entry
	// for the same ID now represents the same live point again, so the
	// lazy-drop marker must go.
	delete(m.dead, it.ID)
	e := entry{
		rect:  geom.RectFromPoint(it.Point),
		child: pagestore.InvalidPage,
		id:    it.ID,
		key:   topCornerSum(geom.RectFromPoint(it.Point)),
	}
	if o := m.dominator(e); o != nil {
		o.plist = append(o.plist, e)
		trackMem(m.mem, entryBytes(m.dims))
		return nil
	}
	obj := m.newSkyObj(rtree.Item{ID: it.ID, Point: it.Point.Clone()})
	// Demote every skyline object the arrival dominates. The scan walks
	// the dense order slice; delSky swap-fills slot i with a not-yet-
	// visited object from the tail, so i is re-examined after a demotion
	// and every object is tested exactly once.
	for i := 0; i < len(m.order); {
		s := m.order[i]
		if !it.Point.Dominates(s.item.Point) {
			i++
			continue
		}
		demoted := entry{
			rect:  geom.RectFromPoint(s.item.Point),
			child: pagestore.InvalidPage,
			id:    s.item.ID,
			key:   topCornerSum(geom.RectFromPoint(s.item.Point)),
		}
		obj.plist = append(obj.plist, demoted)
		obj.plist = append(obj.plist, s.plist...)
		trackMem(m.mem, entryBytes(m.dims))
		m.delSky(s)
		m.recycle(s)
	}
	m.addSky(obj)
	return nil
}

// Remove deletes the given skyline objects (they have been assigned) and
// incrementally restores the skyline of the remaining data, per
// Algorithm 2. It is an error to remove an object that is not currently
// on the skyline.
func (m *Maintainer) Remove(ids ...uint64) error {
	return m.remove(ids, false)
}

// Discard deletes objects from the maintained set wherever they
// currently live — the general deletion the dynamic Workspace needs. An
// object on the skyline is removed exactly as Remove would; an object
// parked in a pruned list (or pruned away inside an unread subtree)
// cannot be deleted in place, so it is tombstoned and dropped lazily if
// a later dominator removal resurfaces it.
func (m *Maintainer) Discard(ids ...uint64) error {
	return m.remove(ids, true)
}

// SetLiveCheck installs the validity oracle. Call it before any
// Discard traffic; installing one later does not retroactively clear
// tombstones already taken.
func (m *Maintainer) SetLiveCheck(fn func(id uint64, pt geom.Point) bool) {
	m.liveCheck = fn
}

// stale reports whether a resurfacing point entry no longer represents
// a live object: tombstoned, or rejected by the live-check oracle.
func (m *Maintainer) stale(e entry) bool {
	if m.dead[e.id] {
		return true
	}
	return m.liveCheck != nil && !m.liveCheck(e.id, e.rect.Min)
}

func (m *Maintainer) remove(ids []uint64, lenient bool) error {
	if len(ids) == 0 {
		return nil
	}
	// Collect pruned lists of all removed objects, then drop the objects
	// (their slots are recycled for future skyline arrivals).
	orphans := m.orphans[:0]
	onSky := false
	for _, id := range ids {
		s, ok := m.sky[id]
		if !ok {
			if !lenient {
				m.orphans = orphans
				return fmt.Errorf("skyline: object %d is not on the skyline", id)
			}
			if m.liveCheck == nil {
				// Without an oracle the only way to drop the parked
				// entry later is a tombstone.
				m.dead[id] = true
			}
			continue
		}
		orphans = append(orphans, s.plist...)
		m.delSky(s)
		m.recycle(s)
		onSky = true
	}
	m.orphans = orphans
	if !onSky {
		return nil // only tombstones: the skyline is untouched
	}

	// Line 1 of UpdateSkyline: entries dominated by a surviving skyline
	// object migrate to that object's plist; the rest form Scand.
	// Stale point entries evaporate here instead of re-parking.
	h := acquireEntryHeap()
	defer releaseEntryHeap(h)
	for _, e := range orphans {
		if e.isPoint() && m.stale(e) {
			trackMem(m.mem, -entryBytes(m.dims))
			continue
		}
		if o := m.dominator(e); o != nil {
			o.plist = append(o.plist, e)
			continue
		}
		h.push(e)
	}
	// Scrub the scratch so it does not retain node memory between calls.
	clear(m.orphans)
	m.orphans = m.orphans[:0]
	// Memory neutral so far (entries moved between structures).
	return m.resume(h)
}

// resume is ResumeSkyline (Algorithm 2): branch-and-bound over the
// candidate heap against the current skyline, storing pruned entries in
// plists and visiting child nodes only when not dominated.
func (m *Maintainer) resume(h *entryHeap) error {
	for h.Len() > 0 {
		e := h.pop()
		trackMem(m.mem, -entryBytes(m.dims))
		if e.isPoint() {
			// Stale entries (tombstoned or oracle-rejected) evaporate on
			// resurfacing, and an ID already back on the skyline (a
			// stale copy from a Discard/Insert cycle) must not clobber
			// its live slot.
			if m.stale(e) {
				continue
			}
			if _, live := m.sky[e.id]; live {
				continue
			}
		}
		if o := m.dominator(e); o != nil {
			o.plist = append(o.plist, e)
			trackMem(m.mem, entryBytes(m.dims))
			continue
		}
		if e.isPoint() {
			// Clone at the long-lived retention boundary: e.rect.Min is a
			// sub-slice of the decoded node's whole coordinate array, and
			// skyline objects outlive the node cache.
			m.addSky(m.newSkyObj(rtree.Item{ID: e.id, Point: e.rect.Min.Clone()}))
			continue
		}
		n, err := m.readNode(e.child)
		if err != nil {
			return err
		}
		m.pushChildren(h, n)
	}
	return nil
}

// dominator returns a skyline object strictly dominating e's top corner,
// or nil. Entries are kept in the plist of exactly one dominator; any
// dominator is a correct choice (an entry is prunable iff one exists),
// so the columnar kernel's first-by-slot pick — like the map-order pick
// before it — never changes skyline evolution or node reads.
func (m *Maintainer) dominator(e entry) *skyObj {
	if d := m.lastDom; d != nil {
		if _, live := m.sky[d.item.ID]; live && d.item.Point.Dominates(e.rect.Max) {
			return d
		}
	}
	if i := m.cols.FirstDominator(e.rect.Max); i >= 0 {
		s := m.order[i]
		m.lastDom = s
		return s
	}
	return nil
}

func (m *Maintainer) readNode(id pagestore.PageID) (*rtree.Node, error) {
	if m.tree == nil {
		return nil, fmt.Errorf("skyline: materialized maintainer holds node entry for page %d", id)
	}
	m.NodeReads++
	return m.tree.ReadNode(id)
}

func (m *Maintainer) pushChildren(h *entryHeap, n *rtree.Node) {
	for _, ne := range n.Entries {
		h.push(entry{
			rect:  ne.Rect,
			child: ne.Child,
			id:    ne.ID,
			key:   topCornerSum(ne.Rect),
		})
		trackMem(m.mem, entryBytes(m.dims))
	}
}
