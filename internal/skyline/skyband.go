package skyline

import (
	"sort"

	"fairassign/internal/rtree"
)

// K-skyband support (Section 2.3 related work, Mouratidis et al. [16]):
// the k-skyband of O contains every object dominated by at most k-1
// others. For any monotone preference function the top-k results are a
// subset of the k-skyband, so it generalizes the skyline (k = 1) the way
// top-k generalizes top-1. The assignment library exposes it so that
// downstream systems can pre-filter candidate sets for multi-winner
// variants.

// Skyband computes the k-skyband of an R-tree indexed object set with a
// branch-and-bound traversal: an entry is pruned only when at least k
// found objects dominate its best corner.
func Skyband(t *rtree.Tree, k int) ([]rtree.Item, error) {
	if k < 1 {
		k = 1
	}
	if t.Len() == 0 {
		return nil, nil
	}
	var band []rtree.Item
	h := acquireEntryHeap()
	defer releaseEntryHeap(h)
	root, err := t.ReadNode(t.Root())
	if err != nil {
		return nil, err
	}
	pushNodeEntries(h, root)
	for h.Len() > 0 {
		e := h.pop()
		if dominatorCount(band, e, k) >= k {
			continue
		}
		if e.isPoint() {
			band = append(band, rtree.Item{ID: e.id, Point: e.rect.Min})
			continue
		}
		n, err := t.ReadNode(e.child)
		if err != nil {
			return nil, err
		}
		pushNodeEntries(h, n)
	}
	return band, nil
}

// dominatorCount counts band objects strictly dominating e's top corner,
// early-exiting at limit.
func dominatorCount(band []rtree.Item, e entry, limit int) int {
	n := 0
	for _, b := range band {
		if b.Point.Dominates(e.rect.Max) {
			n++
			if n >= limit {
				return n
			}
		}
	}
	return n
}

// SkybandMem computes the k-skyband of an in-memory item slice by a
// sort-and-filter pass (the SFS idea generalized): objects are visited in
// descending coordinate-sum order, so all potential dominators of an
// object are visited before it.
func SkybandMem(items []rtree.Item, k int) []rtree.Item {
	if k < 1 {
		k = 1
	}
	sorted := make([]rtree.Item, len(items))
	copy(sorted, items)
	sortBySumDesc(sorted)
	var band []rtree.Item
	for _, it := range sorted {
		n := 0
		for _, b := range band {
			if b.Point.Dominates(it.Point) {
				n++
				if n >= k {
					break
				}
			}
		}
		if n < k {
			band = append(band, it)
		}
	}
	sort.Slice(band, func(i, j int) bool { return band[i].ID < band[j].ID })
	return band
}
