package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"fairassign/internal/geom"
)

func TestNearestNeighborsMatchLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []int{2, 4} {
		tr := newTestTree(t, dims, 512, 1024)
		items := randItems(rng, 400, dims)
		for _, it := range items {
			if err := tr.Insert(it); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 25; trial++ {
			q := make(geom.Point, dims)
			for d := range q {
				q[d] = rng.Float64()
			}
			k := 1 + rng.Intn(10)
			got, dists, err := tr.NearestNeighbors(q, k, nil)
			if err != nil {
				t.Fatal(err)
			}
			type nd struct {
				id uint64
				d  float64
			}
			want := make([]nd, len(items))
			for i, it := range items {
				want[i] = nd{it.ID, math.Sqrt(distSq(q, it.Point))}
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].d != want[j].d {
					return want[i].d < want[j].d
				}
				return want[i].id < want[j].id
			})
			if len(got) != k {
				t.Fatalf("got %d neighbors, want %d", len(got), k)
			}
			for i := range got {
				if math.Abs(dists[i]-want[i].d) > 1e-9 {
					t.Fatalf("dims=%d trial %d rank %d: dist %v (id %d), want %v (id %d)",
						dims, trial, i, dists[i], got[i].ID, want[i].d, want[i].id)
				}
			}
		}
	}
}

func TestNearestNeighborWithSkip(t *testing.T) {
	tr := newTestTree(t, 2, 512, 64)
	pts := []geom.Point{{0.5, 0.5}, {0.52, 0.5}, {0.9, 0.9}}
	for i, p := range pts {
		if err := tr.Insert(Item{ID: uint64(i + 1), Point: p}); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Point{0.5, 0.5}
	it, d, ok, err := tr.NearestNeighbor(q, nil)
	if err != nil || !ok || it.ID != 1 || d != 0 {
		t.Fatalf("NN = %v %v %v %v", it, d, ok, err)
	}
	skip := func(id uint64) bool { return id == 1 }
	it, _, ok, err = tr.NearestNeighbor(q, skip)
	if err != nil || !ok || it.ID != 2 {
		t.Fatalf("NN with skip = %v %v %v", it, ok, err)
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	tr := newTestTree(t, 2, 512, 64)
	if items, _, err := tr.NearestNeighbors(geom.Point{0.5, 0.5}, 3, nil); err != nil || len(items) != 0 {
		t.Fatalf("empty tree: %v %v", items, err)
	}
	if err := tr.Insert(Item{ID: 1, Point: geom.Point{0.1, 0.1}}); err != nil {
		t.Fatal(err)
	}
	items, _, err := tr.NearestNeighbors(geom.Point{0.9, 0.9}, 10, nil)
	if err != nil || len(items) != 1 {
		t.Fatalf("k > size: %v %v", items, err)
	}
	if items, _, err := tr.NearestNeighbors(geom.Point{0.9, 0.9}, 0, nil); err != nil || items != nil {
		t.Fatalf("k=0: %v %v", items, err)
	}
}

func TestMinDistSq(t *testing.T) {
	r := geom.Rect{Min: geom.Point{0.2, 0.2}, Max: geom.Point{0.4, 0.4}}
	cases := []struct {
		q    geom.Point
		want float64
	}{
		{geom.Point{0.3, 0.3}, 0},           // inside
		{geom.Point{0.2, 0.2}, 0},           // corner
		{geom.Point{0.0, 0.3}, 0.04},        // left of box
		{geom.Point{0.5, 0.5}, 0.01 + 0.01}, // beyond max corner
		{geom.Point{0.0, 0.0}, 0.04 + 0.04}, // beyond min corner
	}
	for i, c := range cases {
		if got := minDistSq(c.q, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: minDistSq = %v, want %v", i, got, c.want)
		}
	}
}
