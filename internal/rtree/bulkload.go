package rtree

import (
	"fmt"
	"math"
	"sort"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// BulkLoad builds a tree from items using Sort-Tile-Recursive (STR)
// packing, which produces well-clustered pages in O(n log n) and is how
// the experiment harness constructs its 100k–400k object indexes.
// fillFactor in (0,1] controls node occupancy (0.9 default when <= 0).
func BulkLoad(pool *pagestore.BufferPool, dims int, items []Item, fillFactor float64) (*Tree, error) {
	t, err := New(pool, dims)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	if fillFactor <= 0 || fillFactor > 1 {
		fillFactor = 0.9
	}
	for _, it := range items {
		if len(it.Point) != dims {
			return nil, fmt.Errorf("rtree: item %d has %d dims, tree has %d", it.ID, len(it.Point), dims)
		}
	}

	leafFill := max(2, int(float64(t.maxLeaf)*fillFactor))
	internalFill := max(2, int(float64(t.maxInternal)*fillFactor))

	// Build leaf level. The degenerate leaf rectangles alias the item
	// points directly (no clones): entries only live until their page is
	// encoded, and nothing on the build path writes through Min/Max.
	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{Rect: geom.Rect{Min: it.Point, Max: it.Point}, ID: it.ID, Child: pagestore.InvalidPage}
	}
	level, err := t.packLevel(entries, true, leafFill)
	if err != nil {
		return nil, err
	}
	height := 1

	// Build internal levels until a single root remains.
	for len(level) > 1 {
		level, err = t.packLevel(level, false, internalFill)
		if err != nil {
			return nil, err
		}
		height++
	}

	// Replace the empty root created by New.
	oldRoot := t.root
	if _, err := t.ReadNode(level[0].Child); err != nil {
		return nil, err
	}
	if err := t.freeNode(oldRoot); err != nil {
		return nil, err
	}
	t.setRoot(level[0].Child)
	t.height = height
	t.size = len(items)
	return t, nil
}

// packLevel groups entries into nodes of the given occupancy using STR
// tiling and returns the parent entries for the next level up.
func (t *Tree) packLevel(entries []Entry, leaf bool, fill int) ([]Entry, error) {
	groups := strTile(entries, t.dims, fill, 0)
	parents := make([]Entry, 0, len(groups))
	for _, g := range groups {
		n := &Node{Leaf: leaf, Entries: g}
		if _, err := t.allocNode(n); err != nil {
			return nil, err
		}
		parents = append(parents, Entry{Rect: n.MBR(), Child: n.Page, ID: 0})
	}
	return parents, nil
}

// strTile recursively sorts entries by the center of dimension dim and
// partitions them into vertical slabs, recursing on the next dimension,
// finally chunking into groups of at most fill entries. Both slab and
// group partitions are evenly balanced so that no group drops below half
// the fill size — which keeps every packed node above the 40 % minimum
// occupancy the tree enforces.
func strTile(entries []Entry, dims, fill, dim int) [][]Entry {
	if len(entries) <= fill {
		return [][]Entry{entries}
	}
	if dim == dims-1 {
		sortByCenter(entries, dim)
		return evenChunks(entries, fill)
	}
	sortByCenter(entries, dim)
	// Number of leaf-size groups, spread across remaining dims.
	nGroups := int(math.Ceil(float64(len(entries)) / float64(fill)))
	slabs := int(math.Ceil(math.Pow(float64(nGroups), 1/float64(dims-dim))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	if slabSize < fill {
		slabSize = fill
	}
	var out [][]Entry
	for _, slab := range evenChunks(entries, slabSize) {
		out = append(out, strTile(slab, dims, fill, dim+1)...)
	}
	return out
}

// evenChunks partitions entries into ceil(n/maxSize) nearly equal chunks,
// each of size at most maxSize and at least floor(n/k) >= maxSize/2.
func evenChunks(entries []Entry, maxSize int) [][]Entry {
	n := len(entries)
	if n == 0 {
		return nil
	}
	k := (n + maxSize - 1) / maxSize
	base, extra := n/k, n%k
	out := make([][]Entry, 0, k)
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, entries[start:start+size])
		start += size
	}
	return out
}

func sortByCenter(entries []Entry, dim int) {
	sort.Slice(entries, func(i, j int) bool {
		ci := entries[i].Rect.Min[dim] + entries[i].Rect.Max[dim]
		cj := entries[j].Rect.Min[dim] + entries[j].Rect.Max[dim]
		if ci != cj {
			return ci < cj
		}
		return entries[i].ID < entries[j].ID
	})
}
