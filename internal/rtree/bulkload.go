package rtree

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// BulkLoad builds a tree from items using Sort-Tile-Recursive (STR)
// packing, which produces well-clustered pages in O(n log n) and is how
// the experiment harness constructs its 100k–400k object indexes.
// fillFactor in (0,1] controls node occupancy (0.9 default when <= 0).
// The build runs on all cores; use BulkLoadWorkers to bound it.
func BulkLoad(pool *pagestore.BufferPool, dims int, items []Item, fillFactor float64) (*Tree, error) {
	return BulkLoadWorkers(pool, dims, items, fillFactor, 0)
}

// BulkLoadWorkers is BulkLoad with an explicit parallelism bound:
// workers <= 0 uses all cores (GOMAXPROCS), workers == 1 restores the
// fully sequential build. The tree — page allocation order, page bytes,
// and buffer-pool write sequence — is byte-identical at every worker
// count: the STR sort key is a total order, so the sorted permutation
// is unique however it is sorted; page IDs are allocated sequentially
// in group order with only the pure per-node encoding fanned out; and
// encoded pages enter the buffer pool in that same order, so cache
// eviction (and therefore every physical I/O counter) cannot tell the
// builds apart.
func BulkLoadWorkers(pool *pagestore.BufferPool, dims int, items []Item, fillFactor float64, workers int) (*Tree, error) {
	t, err := New(pool, dims)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	if fillFactor <= 0 || fillFactor > 1 {
		fillFactor = 0.9
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, it := range items {
		if len(it.Point) != dims {
			return nil, fmt.Errorf("rtree: item %d has %d dims, tree has %d", it.ID, len(it.Point), dims)
		}
	}

	leafFill := max(2, int(float64(t.maxLeaf)*fillFactor))
	internalFill := max(2, int(float64(t.maxInternal)*fillFactor))

	// Build leaf level. The degenerate leaf rectangles alias the item
	// points directly (no clones): entries only live until their page is
	// encoded, and nothing on the build path writes through Min/Max.
	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{Rect: geom.Rect{Min: it.Point, Max: it.Point}, ID: it.ID, Child: pagestore.InvalidPage}
	}
	level, err := t.packLevel(entries, true, leafFill, workers)
	if err != nil {
		return nil, err
	}
	height := 1

	// Build internal levels until a single root remains.
	for len(level) > 1 {
		level, err = t.packLevel(level, false, internalFill, workers)
		if err != nil {
			return nil, err
		}
		height++
	}

	// Replace the empty root created by New.
	oldRoot := t.root
	if _, err := t.ReadNode(level[0].Child); err != nil {
		return nil, err
	}
	if err := t.freeNode(oldRoot); err != nil {
		return nil, err
	}
	t.setRoot(level[0].Child)
	t.height = height
	t.size = len(items)
	return t, nil
}

// packLevel groups entries into nodes of the given occupancy using STR
// tiling and returns the parent entries for the next level up.
//
// The deterministic skeleton is kept sequential and only the pure work
// is fanned out: page IDs are taken from the store one group at a time
// in group order (exactly the sequence the sequential build produces),
// the per-node page images are encoded concurrently (encodeNode writes
// a fresh buffer and reads shared entries only), and the finished
// images enter the buffer pool in group order again — so the pool's
// eviction state machine sees the identical Put sequence at any worker
// count.
func (t *Tree) packLevel(entries []Entry, leaf bool, fill, workers int) ([]Entry, error) {
	groups := strTile(entries, t.dims, fill, 0, workers)
	if workers <= 1 || len(groups) < 2 {
		parents := make([]Entry, 0, len(groups))
		for _, g := range groups {
			n := &Node{Leaf: leaf, Entries: g}
			if _, err := t.allocNode(n); err != nil {
				return nil, err
			}
			parents = append(parents, Entry{Rect: n.MBR(), Child: n.Page, ID: 0})
		}
		return parents, nil
	}

	ids := make([]pagestore.PageID, len(groups))
	for i := range groups {
		id, err := t.pool.Store().Allocate()
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}

	parents := make([]Entry, len(groups))
	bufs := make([][]byte, len(groups))
	errs := make([]error, workers)
	var next int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	cursor := func() int {
		mu.Lock()
		i := int(next)
		next++
		mu.Unlock()
		return i
	}
	pageSize := t.pool.PageSize()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := cursor()
				if i >= len(groups) {
					return
				}
				n := &Node{Leaf: leaf, Entries: groups[i], Page: ids[i]}
				buf, err := encodeNode(n, pageSize, t.dims)
				if err != nil {
					errs[w] = err
					return
				}
				bufs[i] = buf
				parents[i] = Entry{Rect: n.MBR(), Child: ids[i], ID: 0}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, buf := range bufs {
		if buf == nil {
			return nil, fmt.Errorf("rtree: bulk load worker died before encoding group %d", i)
		}
		if err := t.pool.Put(ids[i], buf); err != nil {
			return nil, err
		}
	}
	return parents, nil
}

// strTile recursively sorts entries by the center of dimension dim and
// partitions them into vertical slabs, recursing on the next dimension,
// finally chunking into groups of at most fill entries. Both slab and
// group partitions are evenly balanced so that no group drops below half
// the fill size — which keeps every packed node above the 40 % minimum
// occupancy the tree enforces.
//
// With workers > 1 the top-level sort runs as a parallel chunk sort +
// merge and the independent slabs recurse concurrently; the sort key is
// a total order (center, ID, Child), so the output grouping is the
// unique sorted permutation regardless of how the sorting was split.
func strTile(entries []Entry, dims, fill, dim, workers int) [][]Entry {
	if len(entries) <= fill {
		return [][]Entry{entries}
	}
	sortByCenter(entries, dim, workers)
	if dim == dims-1 {
		return evenChunks(entries, fill)
	}
	// Number of leaf-size groups, spread across remaining dims.
	nGroups := int(math.Ceil(float64(len(entries)) / float64(fill)))
	slabs := int(math.Ceil(math.Pow(float64(nGroups), 1/float64(dims-dim))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	if slabSize < fill {
		slabSize = fill
	}
	slabSlices := evenChunks(entries, slabSize)
	if workers <= 1 || len(slabSlices) < 2 {
		var out [][]Entry
		for _, slab := range slabSlices {
			out = append(out, strTile(slab, dims, fill, dim+1, 1)...)
		}
		return out
	}
	// Slabs are disjoint sub-slices: recurse concurrently under a
	// worker-count bound, then splice the per-slab groups in slab order.
	perSlab := make([][][]Entry, len(slabSlices))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, slab := range slabSlices {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, slab []Entry) {
			defer wg.Done()
			perSlab[i] = strTile(slab, dims, fill, dim+1, 1)
			<-sem
		}(i, slab)
	}
	wg.Wait()
	var out [][]Entry
	for _, groups := range perSlab {
		out = append(out, groups...)
	}
	return out
}

// evenChunks partitions entries into ceil(n/maxSize) nearly equal chunks,
// each of size at most maxSize and at least floor(n/k) >= maxSize/2.
func evenChunks(entries []Entry, maxSize int) [][]Entry {
	n := len(entries)
	if n == 0 {
		return nil
	}
	k := (n + maxSize - 1) / maxSize
	base, extra := n/k, n%k
	out := make([][]Entry, 0, k)
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, entries[start:start+size])
		start += size
	}
	return out
}

// centerCmp is the STR sort key: center along dim, then ID, then Child.
// ID breaks leaf-entry ties (IDs are unique) and Child breaks
// internal-entry ties (all internal entries carry ID 0 but reference
// distinct pages), so the order is total and the sorted permutation
// unique — the property the parallel chunk-sort + merge relies on, and
// what makes equal-center grouping deterministic at all (the former
// (center, ID) key left internal ties to the sort implementation).
func centerCmp(a, b Entry, dim int) int {
	ca := a.Rect.Min[dim] + a.Rect.Max[dim]
	cb := b.Rect.Min[dim] + b.Rect.Max[dim]
	switch {
	case ca < cb:
		return -1
	case ca > cb:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	case a.Child < b.Child:
		return -1
	case a.Child > b.Child:
		return 1
	}
	return 0
}

// parallelSortMin is the slice size below which a parallel sort cannot
// win back its goroutine and merge overhead.
const parallelSortMin = 1 << 13

func sortByCenter(entries []Entry, dim, workers int) {
	n := len(entries)
	if workers <= 1 || n < parallelSortMin {
		slices.SortFunc(entries, func(a, b Entry) int { return centerCmp(a, b, dim) })
		return
	}
	if workers > n/(parallelSortMin/8) {
		workers = max(2, n/(parallelSortMin/8))
	}
	// Chunk-sort concurrently, then merge pairs round by round between
	// entries and a scratch buffer. The key's total order means every
	// round preserves the unique final permutation.
	chunkSize := (n + workers - 1) / workers
	segs := make([][2]int, 0, workers)
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunkSize {
		hi := min(lo+chunkSize, n)
		segs = append(segs, [2]int{lo, hi})
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			slices.SortFunc(entries[lo:hi], func(a, b Entry) int { return centerCmp(a, b, dim) })
		}(lo, hi)
	}
	wg.Wait()

	src, dst := entries, make([]Entry, n)
	for len(segs) > 1 {
		nextSegs := make([][2]int, 0, (len(segs)+1)/2)
		var mw sync.WaitGroup
		for i := 0; i < len(segs); i += 2 {
			if i+1 == len(segs) {
				s := segs[i]
				copy(dst[s[0]:s[1]], src[s[0]:s[1]])
				nextSegs = append(nextSegs, s)
				continue
			}
			a, b := segs[i], segs[i+1]
			nextSegs = append(nextSegs, [2]int{a[0], b[1]})
			mw.Add(1)
			go func(a, b [2]int) {
				defer mw.Done()
				mergeEntries(dst[a[0]:b[1]], src[a[0]:a[1]], src[b[0]:b[1]], dim)
			}(a, b)
		}
		mw.Wait()
		src, dst = dst, src
		segs = nextSegs
	}
	if &src[0] != &entries[0] {
		copy(entries, src)
	}
}

// mergeEntries merges two sorted runs into out (len(out) == len(a)+len(b)).
// Ties cannot occur across runs — the key is a total order over distinct
// entries — so <= vs < is moot; <= keeps the merge stable anyway.
func mergeEntries(out, a, b []Entry, dim int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if centerCmp(a[i], b[j], dim) <= 0 {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}
