package rtree

import (
	"math/rand"
	"testing"

	"fairassign/internal/pagestore"
)

// TestFromMetaReattach builds a tree, detaches (keeping only the page
// bytes and the Meta header), reattaches with FromMeta over a fresh
// pool, and checks the reattached tree serves identical queries — the
// warm-start path recovery uses.
func TestFromMetaReattach(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 1024)
	items := randItems(rng, 300, 3)
	tr, err := BulkLoad(pool, 3, items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// A few deletes so the structure isn't pristine.
	for i := 0; i < 30; i++ {
		if err := tr.Delete(items[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	meta := tr.Meta()

	pool2 := pagestore.NewBufferPool(store, 1024)
	tr2, err := FromMeta(pool2, 3, meta)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != tr.Len() {
		t.Fatalf("size = %d, want %d", tr2.Len(), tr.Len())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatalf("reattached tree invariants: %v", err)
	}
	want := collect(t, tr)
	got := collect(t, tr2)
	if len(want) != len(got) {
		t.Fatalf("reattached tree has %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || !want[i].Point.Equal(got[i].Point) {
			t.Fatalf("item %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func collect(t *testing.T, tr *Tree) []Item {
	t.Helper()
	out, err := tr.Items()
	if err != nil {
		t.Fatal(err)
	}
	sortItems(out)
	return out
}

func TestFromMetaValidation(t *testing.T) {
	store := pagestore.NewMemStore(512)
	pool := pagestore.NewBufferPool(store, 8)
	if _, err := FromMeta(pool, 0, Meta{Root: 0, Height: 1}); err == nil {
		t.Fatal("dims 0 accepted")
	}
	if _, err := FromMeta(pool, 2, Meta{Root: pagestore.InvalidPage, Height: 1}); err == nil {
		t.Fatal("invalid root accepted")
	}
	if _, err := FromMeta(pool, 2, Meta{Root: 0, Height: 0}); err == nil {
		t.Fatal("height 0 accepted")
	}
	if _, err := FromMeta(pool, 2, Meta{Root: 0, Height: 1, Size: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
}
