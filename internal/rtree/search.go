package rtree

import (
	"fmt"

	"fairassign/internal/geom"
	"fairassign/internal/pagestore"
)

// Search visits every item whose point lies inside rect, calling fn for
// each. Returning false from fn stops the search early.
func (t *Tree) Search(rect geom.Rect, fn func(Item) bool) error {
	_, err := searchReader(t, t.root, rect, fn)
	return err
}

// searchReader is the window search over any read substrate (live tree
// or frozen view).
func searchReader(r NodeReader, id pagestore.PageID, rect geom.Rect, fn func(Item) bool) (bool, error) {
	n, err := r.ReadNode(id)
	if err != nil {
		return false, err
	}
	for _, e := range n.Entries {
		if !rect.Intersects(e.Rect) {
			continue
		}
		if n.Leaf {
			if !fn(Item{ID: e.ID, Point: e.Rect.Min}) {
				return false, nil
			}
		} else {
			cont, err := searchReader(r, e.Child, rect, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// allItems visits every stored item of a read substrate.
func allItems(r NodeReader, fn func(Item) bool) error {
	if r.Len() == 0 {
		return nil
	}
	root, err := r.ReadNode(r.Root())
	if err != nil {
		return err
	}
	_, err = searchReader(r, r.Root(), root.MBR(), fn)
	return err
}

// readerItems collects every stored item of a read substrate.
func readerItems(r NodeReader, size int) ([]Item, error) {
	out := make([]Item, 0, size)
	err := allItems(r, func(it Item) bool {
		out = append(out, Item{ID: it.ID, Point: it.Point.Clone()})
		return true
	})
	return out, err
}

// All visits every stored item (in page order). Returning false stops.
func (t *Tree) All(fn func(Item) bool) error { return allItems(t, fn) }

// Items returns every stored item as a slice (intended for tests and small
// trees).
func (t *Tree) Items() ([]Item, error) { return readerItems(t, t.size) }

// CheckInvariants walks the whole tree verifying structural invariants:
// entry MBRs contained in parent MBRs, uniform leaf depth, occupancy
// bounds, and the stored item count. It is used heavily by tests.
func (t *Tree) CheckInvariants() error {
	count, _, err := t.checkNode(t.root, t.height, t.height)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmtErr("item count %d != recorded size %d", count, t.size)
	}
	return nil
}

func (t *Tree) checkNode(id pagestore.PageID, depth, height int) (int, geom.Rect, error) {
	n, err := t.ReadNode(id)
	if err != nil {
		return 0, geom.Rect{}, err
	}
	if n.Leaf != (depth == 1) {
		return 0, geom.Rect{}, fmtErr("page %d: leaf flag %v at depth %d (height %d)", id, n.Leaf, depth, height)
	}
	capacity, minFill := t.maxInternal, t.minInternal
	if n.Leaf {
		capacity, minFill = t.maxLeaf, t.minLeaf
	}
	if len(n.Entries) > capacity {
		return 0, geom.Rect{}, fmtErr("page %d: %d entries exceed capacity %d", id, len(n.Entries), capacity)
	}
	isRoot := depth == height
	if !isRoot && len(n.Entries) < minFill {
		return 0, geom.Rect{}, fmtErr("page %d: %d entries below min fill %d", id, len(n.Entries), minFill)
	}
	if n.Leaf {
		return len(n.Entries), n.MBR(), nil
	}
	total := 0
	for i, e := range n.Entries {
		cnt, childMBR, err := t.checkNode(e.Child, depth-1, height)
		if err != nil {
			return 0, geom.Rect{}, err
		}
		if !e.Rect.ContainsRect(childMBR) {
			return 0, geom.Rect{}, fmtErr("page %d entry %d: MBR %v does not contain child MBR %v", id, i, e.Rect, childMBR)
		}
		total += cnt
	}
	return total, n.MBR(), nil
}

func fmtErr(format string, args ...any) error {
	return fmt.Errorf("rtree: invariant violated: "+format, args...)
}
